package engine

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ucc/internal/model"
)

type collect struct {
	mu   sync.Mutex
	tags []uint64
	done chan struct{}
	want int
}

func (c *collect) OnMessage(ctx Context, from Addr, msg model.Message) {
	c.mu.Lock()
	c.tags = append(c.tags, msg.(model.TickMsg).Tag)
	if len(c.tags) == c.want {
		close(c.done)
	}
	c.mu.Unlock()
}

type sender struct {
	to Addr
	n  int
}

func (s *sender) OnMessage(ctx Context, from Addr, msg model.Message) {
	for i := 0; i < s.n; i++ {
		ctx.Send(s.to, model.TickMsg{Tag: uint64(i)})
	}
}

func TestRuntimeDeliveryAndFIFO(t *testing.T) {
	rt := NewRuntime(UniformLatency{MinMicros: 0, MaxMicros: 2_000}, 1)
	defer rt.Shutdown()
	recv := &collect{done: make(chan struct{}), want: 100}
	rt.Register(RIAddr(2), recv)
	rt.Register(RIAddr(1), &sender{to: RIAddr(2), n: 100})
	rt.Inject(Envelope{From: RIAddr(1), To: RIAddr(1), Msg: model.TickMsg{}})
	select {
	case <-recv.done:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for deliveries")
	}
	recv.mu.Lock()
	defer recv.mu.Unlock()
	for i, tag := range recv.tags {
		if tag != uint64(i) {
			t.Fatalf("FIFO violated at %d: got %d", i, tag)
		}
	}
}

type timerActor struct {
	fired chan int64
	start time.Time
}

func (a *timerActor) OnMessage(ctx Context, from Addr, msg model.Message) {
	if msg.(model.TickMsg).Tag == 0 {
		a.start = time.Now()
		ctx.SetTimer(20_000, model.TickMsg{Tag: 1}) // 20ms
		return
	}
	a.fired <- time.Since(a.start).Microseconds()
}

func TestRuntimeTimers(t *testing.T) {
	rt := NewRuntime(FixedLatency{}, 1)
	defer rt.Shutdown()
	a := &timerActor{fired: make(chan int64, 1)}
	rt.Register(RIAddr(1), a)
	rt.Inject(Envelope{From: RIAddr(1), To: RIAddr(1), Msg: model.TickMsg{Tag: 0}})
	select {
	case elapsed := <-a.fired:
		if elapsed < 15_000 {
			t.Fatalf("timer fired after %dµs, want ≈20ms", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
}

type uplinkCounter struct{ n atomic.Int64 }

func TestRuntimeUplinkForUnknownActors(t *testing.T) {
	rt := NewRuntime(FixedLatency{}, 1)
	defer rt.Shutdown()
	var up uplinkCounter
	got := make(chan Envelope, 1)
	rt.SetUplink(func(e Envelope) {
		up.n.Add(1)
		got <- e
	})
	rt.Register(RIAddr(1), &sender{to: QMAddr(9), n: 1}) // QM 9 not local
	rt.Inject(Envelope{From: RIAddr(1), To: RIAddr(1), Msg: model.TickMsg{}})
	select {
	case e := <-got:
		if e.To != QMAddr(9) {
			t.Fatalf("uplinked to %v", e.To)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("uplink never called")
	}
}

// TestRuntimePostRoutesRemote: Post delivers to a local mailbox like Inject
// but forwards a remote destination through the uplink instead of dropping
// it — the path a node publishing a partition-map epoch to its peers relies
// on (an Injected MapInstallMsg to a remote QM used to vanish silently).
func TestRuntimePostRoutesRemote(t *testing.T) {
	rt := NewRuntime(FixedLatency{}, 1)
	defer rt.Shutdown()
	got := make(chan Envelope, 1)
	rt.SetUplink(func(e Envelope) { got <- e })
	recv := &collect{done: make(chan struct{}), want: 1}
	rt.Register(QMAddr(0), recv)

	rt.Post(Envelope{From: QMAddr(0), To: QMAddr(0), Msg: model.TickMsg{}})
	select {
	case <-recv.done:
	case <-time.After(5 * time.Second):
		t.Fatal("Post never delivered to the local actor")
	}

	rt.Post(Envelope{From: QMAddr(0), To: QMAddr(9), Msg: model.TickMsg{}})
	select {
	case e := <-got:
		if e.To != QMAddr(9) {
			t.Fatalf("uplinked to %v, want QM 9", e.To)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Post to a remote actor never reached the uplink")
	}
}

func TestRuntimeShutdownStopsDelivery(t *testing.T) {
	rt := NewRuntime(FixedLatency{}, 1)
	recv := &collect{done: make(chan struct{}), want: 1}
	rt.Register(RIAddr(1), recv)
	rt.Shutdown()
	rt.Inject(Envelope{From: RIAddr(1), To: RIAddr(1), Msg: model.TickMsg{}})
	select {
	case <-recv.done:
		t.Fatal("delivery after shutdown")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestLatencyModels(t *testing.T) {
	fixed := FixedLatency{RemoteMicros: 100, LocalMicros: 5}
	if fixed.DelayMicros(RIAddr(1), QMAddr(1), nil) != 5 {
		t.Fatal("same-site must be local")
	}
	if fixed.DelayMicros(RIAddr(1), QMAddr(2), nil) != 100 {
		t.Fatal("remote delay wrong")
	}
	rt := NewRuntime(FixedLatency{}, 7)
	defer rt.Shutdown()
	// UniformLatency bounds.
	u := UniformLatency{MinMicros: 10, MaxMicros: 20}
	rng := newTestRand()
	for i := 0; i < 100; i++ {
		d := u.DelayMicros(RIAddr(1), QMAddr(2), rng)
		if d < 10 || d > 20 {
			t.Fatalf("uniform delay %d out of bounds", d)
		}
	}
	// ExpLatency truncation at 10× mean.
	e := ExpLatency{MeanMicros: 100}
	for i := 0; i < 1000; i++ {
		d := e.DelayMicros(RIAddr(1), QMAddr(2), rng)
		if d < 0 || d > 1000 {
			t.Fatalf("exp delay %d out of [0,1000]", d)
		}
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(5)) }

// blockingActor wedges its mailbox goroutine on the first delivery until
// released — the stand-in for a queue-manager shard that cannot keep up.
type blockingActor struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
	handled atomic.Int64
}

func (a *blockingActor) OnMessage(ctx Context, from Addr, msg model.Message) {
	a.once.Do(func() { close(a.entered) })
	<-a.release
	a.handled.Add(1)
}

// busyCollector records BusyMsg NAKs delivered to the sending actor.
type busyCollector struct {
	mu    sync.Mutex
	busys []model.BusyMsg
}

func (c *busyCollector) OnMessage(ctx Context, from Addr, msg model.Message) {
	if b, ok := msg.(model.BusyMsg); ok {
		c.mu.Lock()
		c.busys = append(c.busys, b)
		c.mu.Unlock()
	}
}

// TestMailboxBoundNAKsSheddable is the full-mailbox overflow-policy test: a
// QM-shard mailbox at its bound NAKs sheddable requests back to the sender
// with BusyMsg, keeps admitting protocol-completion traffic (whose loss
// would strand locks), and never blocks anyone.
func TestMailboxBoundNAKsSheddable(t *testing.T) {
	const depth = 4
	rt := NewRuntime(FixedLatency{}, 1)
	rt.SetMailboxDepth(depth)
	qmAddr := QMShardAddr(0, 1)
	riAddr := RIAddr(3)
	blocked := &blockingActor{entered: make(chan struct{}), release: make(chan struct{})}
	sender := &busyCollector{}
	rt.Register(qmAddr, blocked)
	rt.Register(riAddr, sender)
	var unwedgeOnce sync.Once
	unwedge := func() { unwedgeOnce.Do(func() { close(blocked.release) }) }
	defer func() {
		unwedge()
		rt.Shutdown()
	}()

	req := func(seq uint64) Envelope {
		return Envelope{From: riAddr, To: qmAddr, Msg: model.RequestMsg{
			Txn:  model.TxnID{Site: 3, Seq: seq},
			Copy: model.CopyID{Item: model.ItemID(seq), Site: 0},
			Site: 3,
		}}
	}
	// Wedge the consumer: the first request is popped into OnMessage and
	// blocks there, leaving the mailbox itself empty.
	rt.Inject(req(0))
	select {
	case <-blocked.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer never entered OnMessage")
	}
	// Fill the mailbox to its bound, then overflow it.
	const overflow = 10
	for i := 1; i <= depth+overflow; i++ {
		rt.Inject(req(uint64(i)))
	}
	// Exactly the overflowing requests must be NAK'd (delivered through the
	// sender's own mailbox goroutine, hence the poll).
	deadline := time.Now().Add(5 * time.Second)
	for {
		sender.mu.Lock()
		got := len(sender.busys)
		sender.mu.Unlock()
		if got == overflow {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("busy NAKs = %d, want %d", got, overflow)
		}
		time.Sleep(time.Millisecond)
	}
	// A non-sheddable message (a release) must be admitted past the bound.
	rt.Inject(Envelope{From: riAddr, To: qmAddr, Msg: model.ReleaseMsg{
		Txn: model.TxnID{Site: 3, Seq: 99},
	}})
	overflows, high := rt.MailboxStats()
	if overflows != overflow {
		t.Fatalf("overflow counter = %d, want %d", overflows, overflow)
	}
	if high < depth+1 {
		t.Fatalf("mailbox high-water = %d, want ≥ %d (the non-sheddable release must pass the bound)", high, depth+1)
	}
	// The NAKs carry the refused request's identity.
	sender.mu.Lock()
	for i, b := range sender.busys {
		if b.Txn.Seq != uint64(depth+1+i) {
			sender.mu.Unlock()
			t.Fatalf("NAK %d names txn %v, want seq %d", i, b.Txn, depth+1+i)
		}
	}
	sender.mu.Unlock()
	// Unwedge the consumer and count what it actually processed: the first
	// request + exactly `depth` queued requests + the release — never the
	// NAK'd overflow.
	unwedge()
	want := int64(1 + depth + 1)
	deadline = time.Now().Add(5 * time.Second)
	for blocked.handled.Load() != want {
		if time.Now().After(deadline) {
			t.Fatalf("consumer handled %d messages, want %d", blocked.handled.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMailboxNAKReachesRemoteSenderViaUplink: a refused request from a
// remote site must NAK through the uplink (the TCP transport), not vanish.
func TestMailboxNAKReachesRemoteSenderViaUplink(t *testing.T) {
	rt := NewRuntime(FixedLatency{}, 1)
	rt.SetMailboxDepth(1)
	naks := make(chan Envelope, 16)
	rt.SetUplink(func(e Envelope) { naks <- e })
	blocked := &blockingActor{entered: make(chan struct{}), release: make(chan struct{})}
	rt.Register(QMAddr(0), blocked)
	defer func() {
		close(blocked.release)
		rt.Shutdown()
	}()

	remote := RIAddr(7) // not registered locally
	req := func(seq uint64) Envelope {
		return Envelope{From: remote, To: QMAddr(0), Msg: model.RequestMsg{
			Txn: model.TxnID{Site: 7, Seq: seq}, Site: 7,
		}}
	}
	rt.Inject(req(0))
	<-blocked.entered
	rt.Inject(req(1)) // fills the depth-1 mailbox
	rt.Inject(req(2)) // must NAK via uplink
	select {
	case e := <-naks:
		if e.To != remote {
			t.Fatalf("NAK addressed to %v, want %v", e.To, remote)
		}
		if b, ok := e.Msg.(model.BusyMsg); !ok || b.Txn.Seq != 2 {
			t.Fatalf("NAK payload = %+v", e.Msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("NAK never reached the uplink")
	}
}
