package ucc

import (
	"time"

	"ucc/internal/cluster"
	"ucc/internal/metrics"
	"ucc/internal/model"
	"ucc/internal/selector"
)

// Result exposes everything measured in one run.
type Result struct {
	inner cluster.Result
	cl    *cluster.Cluster
	dyn   *selector.Dynamic
	// allocs is the process-wide heap-allocation count (MemStats.Mallocs
	// delta) across Run, captured by the facade for AllocsPerCommittedTxn.
	allocs uint64
}

// AllocsPerCommittedTxn returns the heap allocations per committed
// transaction across the whole Run — every protocol message, queue entry, and
// bookkeeping object the run heap-allocated, divided by commits. The pooled
// hot path keeps this flat as load grows; a rising value is the first sign a
// pooled object started escaping. Returns 0 when nothing committed.
func (r Result) AllocsPerCommittedTxn() float64 {
	c := r.Committed()
	if c == 0 {
		return 0
	}
	return float64(r.allocs) / float64(c)
}

// Serializable reports whether the recorded execution passed the conflict
// graph check (Theorem 1/2). Always available: clusters record history.
func (r Result) Serializable() bool {
	return r.inner.Serializability != nil && r.inner.Serializability.Serializable
}

// SerializationOrder returns a witness serial order over committed
// transactions (empty if the execution was not serializable).
func (r Result) SerializationOrder() []TxnID {
	if r.inner.Serializability == nil {
		return nil
	}
	return r.inner.Serializability.Order
}

// ConflictCycle returns a witness cycle when the execution is not
// serializable (nil otherwise). A non-nil result indicates a protocol bug.
func (r Result) ConflictCycle() []TxnID {
	if r.inner.Serializability == nil {
		return nil
	}
	return r.inner.Serializability.Cycle
}

// Committed returns the number of committed transactions.
func (r Result) Committed() uint64 { return r.inner.Summary.TotalCommitted() }

// Unfinished returns transactions still live after the drain (should be 0).
func (r Result) Unfinished() int { return r.inner.Unfinished }

// MeanSystemTime is S averaged over every committed transaction.
func (r Result) MeanSystemTime() time.Duration {
	return time.Duration(r.inner.Summary.MeanSystemTimeMicros()) * time.Microsecond
}

// Throughput is committed transactions per second of simulated time.
func (r Result) Throughput() float64 { return r.inner.Summary.Throughput() }

// ProtocolStats summarizes one protocol's outcomes in a run.
type ProtocolStats struct {
	Protocol       Protocol
	Committed      uint64
	Restarts       uint64 // T/O rejections
	DeadlockAborts uint64 // 2PL victim events
	Backoffs       uint64 // PA backed-off requests
	MeanSystemTime time.Duration
	P95SystemTime  time.Duration
	MeanMessages   float64
}

// Stats returns per-protocol summaries. The ROSnapshot read-only class is
// reported like a protocol: Stats(ucc.ROSnapshot).
func (r Result) Stats(p Protocol) ProtocolStats {
	ps := r.inner.Summary.Protocols[p]
	return ProtocolStats{
		Protocol:       p,
		Committed:      ps.Committed,
		Restarts:       ps.Rejected,
		DeadlockAborts: ps.Victims,
		Backoffs:       ps.BackoffReads + ps.BackoffWrites,
		MeanSystemTime: time.Duration(ps.SystemTime.Mean()) * time.Microsecond,
		P95SystemTime:  time.Duration(ps.SystemTimeH.Quantile(0.95)) * time.Microsecond,
		MeanMessages:   ps.Messages.Mean(),
	}
}

// ClassStats summarizes one transaction class — read-only (the ROSnapshot
// fast path) or read-write (the three member protocols combined).
type ClassStats struct {
	Committed      uint64
	MeanSystemTime time.Duration
	P95SystemTime  time.Duration
}

// ReadOnly returns the latency of the read-only snapshot class.
func (r Result) ReadOnly() ClassStats {
	ps := r.inner.Summary.Protocols[model.ROSnapshot]
	return ClassStats{
		Committed:      ps.Committed,
		MeanSystemTime: time.Duration(ps.SystemTime.Mean()) * time.Microsecond,
		P95SystemTime:  time.Duration(ps.SystemTimeH.Quantile(0.95)) * time.Microsecond,
	}
}

// ReadWrite returns the combined latency of the read-write classes (2PL,
// T/O, and PA together): commit-weighted mean, and the p95 of the merged
// latency distribution.
func (r Result) ReadWrite() ClassStats {
	var out ClassStats
	var sum float64
	var merged metrics.Histogram
	for _, p := range model.Protocols {
		ps := r.inner.Summary.Protocols[p]
		out.Committed += ps.Committed
		sum += ps.SystemTime.Mean() * float64(ps.Committed)
		merged.Merge(ps.SystemTimeH)
	}
	if out.Committed > 0 {
		out.MeanSystemTime = time.Duration(sum/float64(out.Committed)) * time.Microsecond
		out.P95SystemTime = time.Duration(merged.Quantile(0.95)) * time.Microsecond
	}
	return out
}

// SnapshotReads reports how many reads the queue-bypassing fast path served
// and how many of those were inexact (version chain GC'd past the snapshot
// timestamp — should be zero under a sane ChainPolicy).
func (r Result) SnapshotReads() (served, inexact uint64) {
	qt := r.cl.QMTotals()
	return qt.SnapReads, qt.SnapStale
}

// OverloadStats reports what the backpressure machinery did in one run.
type OverloadStats struct {
	// Shed counts arrivals the admission controllers refused at submission
	// (never launched, no messages sent).
	Shed uint64
	// BusyNAKs counts BusyMsg congestion NAKs the issuers received from
	// saturated queue managers (each aborted one attempt).
	BusyNAKs uint64
	// BusySent counts requests the queue managers refused at a full data
	// queue (≥ BusyNAKs delivered; the difference is NAKs for already-stale
	// attempts).
	BusySent uint64
	// ROBusyShed counts read-only snapshot transactions terminated outright
	// after a saturated queue manager NAK'd their snapshot read (the fast
	// path has no lock state to retry under backoff, so a busy NAK sheds the
	// whole transaction).
	ROBusyShed uint64
	// Dropped counts transactions dropped at the Config.MaxAttempts restart
	// cap (0 without a cap: past-cap transactions retry forever).
	Dropped uint64
	// MaxQueueDepth is the deepest per-item data queue observed anywhere;
	// with Config.MaxQueueDepth configured it never exceeds that bound.
	MaxQueueDepth int
}

// Overload returns the run's backpressure/admission-control statistics (all
// zero when the knobs are off and the run never saturated).
func (r Result) Overload() OverloadStats {
	qt := r.cl.QMTotals()
	rt := r.cl.RITotals()
	return OverloadStats{
		Shed:          rt.Shed,
		BusyNAKs:      rt.BusyNAKs,
		BusySent:      qt.Busy,
		ROBusyShed:    rt.ROBusyShed,
		Dropped:       rt.Dropped,
		MaxQueueDepth: r.cl.DepthHighWater(),
	}
}

// PlacementStats reports what the versioned-placement machinery did in one
// run (all zero when the placement never changed).
type PlacementStats struct {
	// EpochsPublished counts partition-map epochs broadcast by the
	// controller (each AddSite/DrainSite/MoveItems publishes one).
	EpochsPublished uint64
	// ItemsMoved counts items whose primary owner changed across those
	// epochs.
	ItemsMoved uint64
	// WrongEpochNAKs counts requests that raced a placement change into a
	// queue manager that no longer owned the copy; each NAK carried the new
	// map back to the stale issuer and the attempt restarted correctly.
	WrongEpochNAKs uint64
	// MapUpdates counts newer partition maps installed at issuers (pushes
	// plus NAK piggybacks).
	MapUpdates uint64
	// TransferPulls / TransferApplied / TransferBytes measure the snapshot
	// transfer plane that seeded new owners: pull requests served, records
	// installed, and frame bytes shipped.
	TransferPulls   uint64
	TransferApplied uint64
	TransferBytes   uint64
}

// Placement returns the run's versioned-placement statistics.
func (r Result) Placement() PlacementStats {
	qt := r.cl.QMTotals()
	rt := r.cl.RITotals()
	rb := r.cl.Rebalance()
	return PlacementStats{
		EpochsPublished: rb.EpochsPublished,
		ItemsMoved:      rb.ItemsMoved,
		WrongEpochNAKs:  rt.WrongEpochNAKs,
		MapUpdates:      rt.MapUpdates,
		TransferPulls:   qt.TransferPulls,
		TransferApplied: qt.TransferApplied,
		TransferBytes:   qt.TransferBytes,
	}
}

// Offered returns the number of transactions submitted to the issuers.
// Every offered transaction ends committed, admission-shed, busy-shed (a
// read-only snapshot NAK'd by a saturated queue manager), dropped at
// MaxAttempts, or still unfinished at the drain — so offered equals
// committed + shed + unfinished only when the run has no RO share under
// overload and no attempt cap. Goodput is Committed()/time; the gap between
// offered and committed under overload is the load the system shed instead
// of melting.
func (r Result) Offered() uint64 {
	return r.cl.RITotals().Submitted
}

// Decisions returns how many transactions the dynamic selector routed to
// each protocol (zero-valued without DynamicSelection).
func (r Result) Decisions() (twoPL, to, pa uint64) {
	if r.dyn == nil {
		return 0, 0, 0
	}
	return r.dyn.Decisions[model.TwoPL], r.dyn.Decisions[model.TO], r.dyn.Decisions[model.PA]
}

// ReadOnlyDecisions returns how many transactions the dynamic selector
// routed to the ROSnapshot fast path.
func (r Result) ReadOnlyDecisions() uint64 {
	if r.dyn == nil {
		return 0
	}
	return r.dyn.Decisions[model.ROSnapshot]
}

// DeadlockCycles reports how many persistent deadlock cycles the coordinator
// broke and how many observed cycles contained no 2PL member (Corollary 2
// says the latter must all have been transient).
func (r Result) DeadlockCycles() (broken, no2PL uint64) {
	s := r.cl.Detector.Snapshot()
	return s.Victims, s.No2PLCycles
}
