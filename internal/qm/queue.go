package qm

import (
	"fmt"
	"sort"
	"sync"

	"ucc/internal/model"
)

// entryState distinguishes PA requests awaiting their agreed timestamp from
// everything else.
type entryState uint8

const (
	// stateAccepted entries participate in HD(j) selection.
	stateAccepted entryState = iota
	// stateBlocked entries (PA, backed off) stall HD(j) until the final
	// timestamp arrives (§3.4 step 2(e)ii.A).
	stateBlocked
)

// entry is one request resident in a data queue.
type entry struct {
	txn      model.TxnID
	attempt  model.Attempt
	protocol model.Protocol
	kind     model.OpKind
	prec     model.Precedence
	state    entryState

	granted    bool
	lock       model.LockKind
	preSched   bool
	normalSent bool
	semi       bool
	grantSeq   uint64
	// readRecorded marks T/O reads already logged at grant time (a T/O
	// read's SRL is born semi, so per §4.3 the operation is implemented —
	// and its value taken — at the grant).
	readRecorded bool
}

// entryPool recycles queue-table entries: one entry is acquired per admitted
// request attempt and released when the attempt leaves its queue (release,
// abort, stale-attempt replacement), so steady-state traffic allocates no
// entries at all. The lifetime is queue residency: acquireEntry → insert →
// ... → remove → recycleEntry. The poolsafe analyzer tracks acquireEntry
// results like pooled messages — an entry stored outside the queue tables or
// read after recycleEntry is a lint finding, not a production bug.
var entryPool = sync.Pool{New: func() any { return new(entry) }}

// acquireEntry returns a zeroed entry from the pool.
func acquireEntry() *entry {
	return entryPool.Get().(*entry)
}

// recycleEntry returns e to the pool. The caller must not touch e afterwards
// and must have removed it from every queue index first.
func recycleEntry(e *entry) {
	*e = entry{}
	entryPool.Put(e)
}

func (e *entry) String() string {
	g := " "
	if e.granted {
		g = fmt.Sprintf("%v", e.lock)
		if e.preSched && !e.normalSent {
			g += "*"
		}
	}
	return fmt.Sprintf("{%v %v %v prec=%v %s}", e.txn, e.protocol, e.kind, e.prec, g)
}

// prospectiveLock returns the lock kind the entry will hold once granted,
// per §4.2 rule 2.
func (e *entry) prospectiveLock() model.LockKind {
	if e.kind == model.OpWrite {
		return model.WL
	}
	if e.protocol == model.TO {
		return model.SRL
	}
	return model.RL
}

// grantDecision is what the queue decided for a candidate HD entry.
type grantDecision struct {
	ok       bool
	lock     model.LockKind
	preSched bool
}

// dataQueue is the per-copy queue + lock state (QUEUE(j), R-TS(j), W-TS(j)).
type dataQueue struct {
	copyID model.CopyID
	// entries sorted ascending by unified precedence.
	entries []*entry
	// byTxn indexes entries by transaction (one request per txn per copy).
	byTxn map[model.TxnID]*entry
	// granted lists live granted entries in grant order; lockCounts tracks
	// live granted locks by kind. Both exist so the semi-lock grant rules
	// are O(1) instead of O(queue depth) per decision.
	granted    []*entry
	lockCounts [4]int
	// rTS/wTS are the biggest timestamps of granted read/write requests
	// (§3.4 step 2(a)); in the unified queue every protocol's grant raises
	// them, which is what rejects late out-of-order T/O arrivals.
	rTS, wTS model.Timestamp
	// maxSeenTS is the biggest timestamp that has ever appeared in this
	// queue; 2PL precedences are assigned from it (§4.1).
	maxSeenTS model.Timestamp
	// arrivalSeq numbers arrivals for the 2PL/2PL tie-break.
	arrivalSeq uint64
	// grantSeq numbers lock grants: "previously granted" in the semi-lock
	// rules means smaller grantSeq.
	grantSeq uint64
	// semiLocksEnabled selects the §4.2 semi-lock protocol; when false the
	// queue uses the paper's simpler "lock everything" unified enforcement
	// (every grant is full and conversions are ignored) — ablation ABL-1.
	semiLocksEnabled bool

	// Cumulative grant counters (inputs to λr(j)/λw(j) estimation).
	readGrants, writeGrants uint64

	// promo is promotable's reused scratch: dispatch calls it after every
	// handled message, and the common empty result must not allocate.
	promo []*entry
}

func newDataQueue(c model.CopyID, semiLocks bool) *dataQueue {
	return &dataQueue{
		copyID: c, rTS: -1, wTS: -1,
		semiLocksEnabled: semiLocks,
		byTxn:            map[model.TxnID]*entry{},
	}
}

// find returns the entry for txn, or nil.
func (q *dataQueue) find(txn model.TxnID) *entry {
	return q.byTxn[txn]
}

// insert places e into precedence order.
func (q *dataQueue) insert(e *entry) {
	i := sort.Search(len(q.entries), func(i int) bool {
		return e.prec.Less(q.entries[i].prec)
	})
	q.entries = append(q.entries, nil)
	copy(q.entries[i+1:], q.entries[i:])
	q.entries[i] = e
	q.byTxn[e.txn] = e
	if e.prec.TS > q.maxSeenTS {
		q.maxSeenTS = e.prec.TS
	}
}

// remove deletes e from the queue and, if granted, drops its lock.
func (q *dataQueue) remove(e *entry) {
	for i, x := range q.entries {
		if x == e {
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			break
		}
	}
	delete(q.byTxn, e.txn)
	if e.granted {
		q.dropLock(e)
	}
}

// dropLock removes e from the live-grant bookkeeping.
func (q *dataQueue) dropLock(e *entry) {
	q.lockCounts[e.lock]--
	for i, g := range q.granted {
		if g == e {
			q.granted = append(q.granted[:i], q.granted[i+1:]...)
			break
		}
	}
}

// resort repositions e after its precedence changed (PA final timestamp).
func (q *dataQueue) resort(e *entry) {
	for i, x := range q.entries {
		if x == e {
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			break
		}
	}
	i := sort.Search(len(q.entries), func(i int) bool {
		return e.prec.Less(q.entries[i].prec)
	})
	q.entries = append(q.entries, nil)
	copy(q.entries[i+1:], q.entries[i:])
	q.entries[i] = e
	if e.prec.TS > q.maxSeenTS {
		q.maxSeenTS = e.prec.TS
	}
}

// arrivalOutcome describes how the queue disposed of a new request.
type arrivalOutcome struct {
	// rejected is set for out-of-order T/O requests (threshold carries the
	// value the request failed against).
	rejected  bool
	threshold model.Timestamp
	// backedOff is set for PA requests that could not be accepted; newTS is
	// TS' = TS + k·INT (§3.4 step 2(c)).
	backedOff bool
	newTS     model.Timestamp
}

// admit implements §3.4 step 2(b)–(c) generalized to the unified queue: it
// assigns the request's unified precedence and either accepts, rejects
// (T/O), or backs off (PA) the request. The entry is inserted except on
// rejection.
func (q *dataQueue) admit(e *entry, ts, interval model.Timestamp) arrivalOutcome {
	q.arrivalSeq++
	e.prec.Arrival = q.arrivalSeq

	switch e.protocol {
	case model.TwoPL:
		// §4.1: the biggest timestamp ever seen before arrival, 2PL flag set
		// so the request lands at the FCFS tail among equal timestamps.
		e.prec.TS = q.maxSeenTS
		e.prec.Is2PL = true
		q.insert(e)
		return arrivalOutcome{}

	case model.TO:
		if !q.acceptable(e.kind, ts) {
			return arrivalOutcome{rejected: true, threshold: q.threshold(e.kind)}
		}
		e.prec.TS = ts
		q.insert(e)
		return arrivalOutcome{}

	case model.PA:
		if q.acceptable(e.kind, ts) {
			e.prec.TS = ts
			e.state = stateAccepted
			q.insert(e)
			return arrivalOutcome{}
		}
		if interval <= 0 {
			interval = 1
		}
		th := q.threshold(e.kind)
		// Minimal TS' = ts + k·interval with TS' > th, k ∈ N.
		k := (th-ts)/interval + 1
		if k < 1 {
			k = 1
		}
		newTS := ts + k*interval
		e.prec.TS = newTS
		e.state = stateBlocked
		q.insert(e)
		return arrivalOutcome{backedOff: true, newTS: newTS}

	default:
		panic(fmt.Sprintf("qm: unknown protocol %v", e.protocol))
	}
}

// threshold returns the acceptance threshold for a request kind: W-TS for
// reads, max(W-TS, R-TS) for writes.
func (q *dataQueue) threshold(kind model.OpKind) model.Timestamp {
	if kind == model.OpRead {
		return q.wTS
	}
	if q.rTS > q.wTS {
		return q.rTS
	}
	return q.wTS
}

// acceptable reports whether a timestamped request passes the T/O test.
func (q *dataQueue) acceptable(kind model.OpKind, ts model.Timestamp) bool {
	return ts > q.threshold(kind)
}

// applyFinalTS implements §3.4 step 2(d): the transaction's agreed timestamp
// arrives; the request is re-stamped, marked accepted, and re-inserted into
// its proper position.
//
// If the request had already been granted against its pre-agreement
// timestamp, the grant is revoked: the entry returns to the ungranted
// accepted state and the thresholds are not raised. Revocation is what makes
// PA deadlock-free (Corollary 1): without it, two PA transactions whose
// provisional grants cross (each holding one item the other needs) would
// block forever. Revocation is safe because a transaction that receives any
// back-off never executes against its provisional grants — its issuer
// discards grants stamped with the superseded timestamp and waits for fresh
// ones.
//
// Returns true if a provisional grant was revoked.
func (q *dataQueue) applyFinalTS(e *entry, ts model.Timestamp) (revoked bool) {
	if ts > e.prec.TS {
		e.prec.TS = ts
	}
	e.state = stateAccepted
	if e.granted {
		q.dropLock(e)
		e.granted = false
		e.preSched = false
		e.normalSent = false
		e.grantSeq = 0
		if e.kind == model.OpRead {
			q.readGrants--
		} else {
			q.writeGrants--
		}
		revoked = true
	}
	q.resort(e)
	return revoked
}

// noteGrantTS raises R-TS/W-TS for a grant of the given kind.
func (q *dataQueue) noteGrantTS(kind model.OpKind, ts model.Timestamp) {
	if kind == model.OpRead {
		if ts > q.rTS {
			q.rTS = ts
		}
	} else if ts > q.wTS {
		q.wTS = ts
	}
}

// head returns HD(j): the first ungranted entry (every entry with smaller
// precedence is granted), or nil.
func (q *dataQueue) head() *entry {
	for _, e := range q.entries {
		if !e.granted {
			return e
		}
	}
	return nil
}

// decide evaluates the semi-lock grant rules (§4.2 rule 2) for HD(j).
func (q *dataQueue) decide(hd *entry) grantDecision {
	if hd.state == stateBlocked {
		return grantDecision{} // rule A: wait for the agreed timestamp
	}
	nRL := q.lockCounts[model.RL]
	nWL := q.lockCounts[model.WL]
	nSRL := q.lockCounts[model.SRL]
	nSWL := q.lockCounts[model.SWL]

	if !q.semiLocksEnabled {
		// ABL-1 "lock everything" enforcement: every request needs all
		// previously granted conflicting locks released; no pre-scheduling.
		if hd.kind == model.OpRead {
			if nWL+nSWL > 0 {
				return grantDecision{}
			}
			return grantDecision{ok: true, lock: model.RL}
		}
		if nRL+nWL+nSRL+nSWL > 0 {
			return grantDecision{}
		}
		return grantDecision{ok: true, lock: model.WL}
	}

	isTO := hd.protocol == model.TO
	switch {
	case hd.kind == model.OpRead && !isTO:
		// RL if all previously granted WL's and SWL's have been released.
		if nWL+nSWL > 0 {
			return grantDecision{}
		}
		return grantDecision{ok: true, lock: model.RL}

	case hd.kind == model.OpWrite && !isTO:
		// WL if all previously granted locks have been released.
		if nRL+nWL+nSRL+nSWL > 0 {
			return grantDecision{}
		}
		return grantDecision{ok: true, lock: model.WL}

	case hd.kind == model.OpRead && isTO:
		// SRL if all previously granted WL's have been released; an
		// outstanding SWL makes the grant pre-scheduled.
		if nWL > 0 {
			return grantDecision{}
		}
		return grantDecision{ok: true, lock: model.SRL, preSched: nSWL > 0}

	default: // T/O write
		// WL if all previously granted RL's and WL's have been released;
		// outstanding semi-locks make the grant pre-scheduled.
		if nRL+nWL > 0 {
			return grantDecision{}
		}
		return grantDecision{ok: true, lock: model.WL, preSched: nSRL+nSWL > 0}
	}
}

// grant marks hd granted per decision and updates thresholds/counters.
func (q *dataQueue) grant(hd *entry, d grantDecision) {
	q.grantSeq++
	hd.granted = true
	hd.lock = d.lock
	hd.preSched = d.preSched
	hd.normalSent = !d.preSched
	hd.grantSeq = q.grantSeq
	q.granted = append(q.granted, hd)
	q.lockCounts[d.lock]++
	q.noteGrantTS(hd.kind, hd.prec.TS)
	if hd.kind == model.OpRead {
		q.readGrants++
	} else {
		q.writeGrants++
	}
}

// promotable returns granted pre-scheduled entries whose conflicting earlier
// grants have all been released (§4.2 rule 2 case 5): they become normal.
// The returned slice is q's scratch, valid until the next promotable call.
func (q *dataQueue) promotable() []*entry {
	out := q.promo[:0]
	for _, e := range q.granted {
		if e.normalSent {
			continue
		}
		conflict := false
		for _, o := range q.granted {
			if o == e || o.grantSeq >= e.grantSeq {
				continue
			}
			if model.LocksConflict(e.lock, o.lock) {
				conflict = true
				break
			}
		}
		if !conflict {
			out = append(out, e)
		}
	}
	q.promo = out
	return out
}

// toSemi converts e's lock to its semi form (§4.2 rule 4).
func (q *dataQueue) toSemi(e *entry) {
	e.semi = true
	q.lockCounts[e.lock]--
	switch e.lock {
	case model.RL:
		e.lock = model.SRL
	case model.WL:
		e.lock = model.SWL
	}
	q.lockCounts[e.lock]++
}

// blocksUnderRule reports whether granted lock holder o blocks waiter e
// under e's grant rule (§4.2 rule 2).
func blocksUnderRule(e, o *entry) bool {
	isTO := e.protocol == model.TO
	switch {
	case e.kind == model.OpRead && !isTO:
		return o.lock.IsWrite()
	case e.kind == model.OpWrite && !isTO:
		return true
	case e.kind == model.OpRead && isTO:
		return o.lock == model.WL
	default:
		return o.lock == model.RL || o.lock == model.WL
	}
}

// waitEdges appends, for each ungranted entry, its wait-for edges: every
// live granted lock that blocks it under its grant rule, plus its nearest
// preceding ungranted entry (HD gating chains transitively, so the nearest
// predecessor suffices for cycle detection and keeps the edge count linear
// in queue depth).
//
// It also emits edges for granted pre-scheduled locks that have not become
// normal yet: their owner (a semi-converted T/O transaction, §4.2 rule 4)
// cannot release until every conflicting earlier grant releases, so those
// waits are part of the blocking structure Theorem 2's induction reasons
// about — omitting them hides deadlock cycles that thread through an
// await-normal transaction (e.g. T/O-awaiting-normal → T/O reader → 2PL →
// back).
func (q *dataQueue) waitEdges(emit func(waiter, holder *entry)) {
	var prevUngranted *entry
	for _, e := range q.entries {
		if e.granted {
			continue
		}
		for _, g := range q.granted {
			if g.txn != e.txn && blocksUnderRule(e, g) {
				emit(e, g)
			}
		}
		if prevUngranted != nil && prevUngranted.txn != e.txn {
			emit(e, prevUngranted)
		}
		prevUngranted = e
	}
	for _, e := range q.granted {
		if e.normalSent {
			continue
		}
		for _, o := range q.granted {
			if o.txn != e.txn && o.grantSeq < e.grantSeq && model.LocksConflict(e.lock, o.lock) {
				emit(e, o)
			}
		}
	}
}
