package qm

import (
	"testing"

	"ucc/internal/engine"
	"ucc/internal/model"
	"ucc/internal/storage"
)

// FuzzQueueMessages is the go-native fuzz target for the sharded queue
// manager: a byte string is decoded as a message script — interleaved
// requests across protocols and items, PA final timestamps, releases,
// semi-lock conversions, aborts, probes — driven into a sharded manager,
// with the structural queue invariants asserted after every message. The
// seed corpus covers each opcode; `go test -fuzz FuzzQueueMessages`
// explores interleavings CI's seed run cannot.
//
// The script grammar is 3 bytes per step:
//
//	b0 % 8  → opcode (0-3 request, 4 finalTS, 5-6 release, 7 abort/probe)
//	b1      → protocol/kind/item selector
//	b2      → timestamp delta / txn selector
func FuzzQueueMessages(f *testing.F) {
	// One seed per opcode family plus a mixed soup.
	f.Add(uint8(2), []byte{0, 0x00, 1, 1, 0x11, 2, 2, 0x22, 3, 3, 0x33, 4})
	f.Add(uint8(1), []byte{0, 0x02, 5, 4, 0x00, 0, 5, 0x00, 0})
	f.Add(uint8(4), []byte{0, 0x12, 3, 0, 0x21, 2, 6, 0x01, 1, 7, 0x00, 9})
	f.Add(uint8(3), []byte{
		0, 0x00, 1, 0, 0x11, 2, 0, 0x22, 3, 4, 0x00, 0,
		5, 0x00, 0, 5, 0x01, 1, 7, 0x02, 2, 0, 0x10, 4,
	})
	f.Fuzz(func(t *testing.T, shardsRaw uint8, script []byte) {
		const items = 4
		shards := 1 + int(shardsRaw%4)
		st := storage.NewStore(0)
		for i := 0; i < items; i++ {
			st.Create(model.ItemID(i), 0)
		}
		m := New(0, st, nil, Options{Shards: shards})
		ctx := newFakeCtx()

		type liveTxn struct {
			id       model.TxnID
			protocol model.Protocol
			kind     model.OpKind
			item     model.ItemID
			granted  bool
			preSched bool
			semi     bool
			backoff  model.Timestamp
		}
		var live []*liveTxn
		var nextSeq uint64
		ts := model.Timestamp(1)

		drain := func() {
			for _, env := range ctx.sent {
				switch v := env.Msg.(type) {
				case model.GrantMsg:
					for _, lt := range live {
						if lt.id == v.Txn {
							lt.granted = true
							lt.preSched = v.PreScheduled
						}
					}
				case model.BackoffMsg:
					for _, lt := range live {
						if lt.id == v.Txn {
							lt.backoff = v.NewTS
						}
					}
				case model.RejectMsg:
					for i, lt := range live {
						if lt.id == v.Txn {
							live = append(live[:i], live[i+1:]...)
							break
						}
					}
				}
			}
			ctx.sent = nil
		}
		remove := func(lt *liveTxn) {
			for i, x := range live {
				if x == lt {
					live = append(live[:i], live[i+1:]...)
					return
				}
			}
		}
		checkAll := func() {
			for i := 0; i < items; i++ {
				checkQueueInvariants(t, m.queueOf(model.ItemID(i)))
			}
		}

		for at := 0; at+2 < len(script); at += 3 {
			b0, b1, b2 := script[at], script[at+1], script[at+2]
			switch b0 % 8 {
			case 0, 1, 2, 3: // new request
				nextSeq++
				lt := &liveTxn{
					id:       model.TxnID{Site: model.SiteID(1 + b1%3), Seq: nextSeq},
					protocol: model.Protocol(b1 % 3),
					kind:     model.OpKind((b1 >> 4) % 2),
					item:     model.ItemID(b1 % items),
				}
				ts += model.Timestamp(b2 % 5)
				live = append(live, lt)
				m.OnMessage(ctx, engine.RIAddr(lt.id.Site), model.RequestMsg{
					Txn: lt.id, Protocol: lt.protocol, Kind: lt.kind,
					Copy: model.CopyID{Item: lt.item, Site: 0},
					TS:   ts, Interval: model.Timestamp(1 + b2%20),
					Site: lt.id.Site,
				})
			case 4: // final timestamp for a backed-off PA txn
				for _, lt := range live {
					if lt.protocol == model.PA && lt.backoff > 0 {
						m.OnMessage(ctx, engine.RIAddr(lt.id.Site), model.FinalTSMsg{
							Txn: lt.id, Copy: model.CopyID{Item: lt.item, Site: 0},
							TS: lt.backoff,
						})
						lt.backoff = 0
						lt.granted = false
						break
					}
				}
			case 5, 6: // release a granted txn (conversion first for T/O preSched)
				for _, lt := range live {
					if !lt.granted {
						continue
					}
					if lt.protocol == model.TO && lt.preSched && !lt.semi {
						m.OnMessage(ctx, engine.RIAddr(lt.id.Site), model.ReleaseMsg{
							Txn: lt.id, Copy: model.CopyID{Item: lt.item, Site: 0},
							ToSemi: true, HasWrite: lt.kind == model.OpWrite, Value: int64(b2),
						})
						lt.semi = true
						break
					}
					m.OnMessage(ctx, engine.RIAddr(lt.id.Site), model.ReleaseMsg{
						Txn: lt.id, Copy: model.CopyID{Item: lt.item, Site: 0},
						HasWrite: lt.kind == model.OpWrite && !lt.semi, Value: int64(b2),
					})
					remove(lt)
					break
				}
			case 7: // abort someone, or probe
				if b2%2 == 0 && len(live) > 0 {
					lt := live[int(b2/2)%len(live)]
					m.OnMessage(ctx, engine.RIAddr(lt.id.Site), model.AbortMsg{
						Txn: lt.id, Copy: model.CopyID{Item: lt.item, Site: 0},
					})
					remove(lt)
				} else {
					m.OnMessage(ctx, engine.RIAddr(0), model.ProbeWFGMsg{Round: uint64(at)})
				}
			}
			drain()
			checkAll()
		}

		// Abort everything; all queues must drain empty.
		for len(live) > 0 {
			lt := live[0]
			m.OnMessage(ctx, engine.RIAddr(lt.id.Site), model.AbortMsg{
				Txn: lt.id, Copy: model.CopyID{Item: lt.item, Site: 0},
			})
			remove(lt)
		}
		drain()
		checkAll()
		for i := 0; i < items; i++ {
			if d := m.QueueDepth(model.ItemID(i)); d != 0 {
				t.Fatalf("item %d queue not empty after abort-all: %d", i, d)
			}
		}
	})
}
