package selector

import (
	"sync"

	"ucc/internal/model"
	"ucc/internal/ri"
	"ucc/internal/stl"
)

// Static returns a ChooseFunc that always picks p (static concurrency
// control).
func Static(p model.Protocol) ri.ChooseFunc {
	return func(*model.Txn, model.EstimateMsg) model.Protocol { return p }
}

// Options tune the dynamic selector.
type Options struct {
	// Fallback is used while no estimates have arrived yet (cold start).
	Fallback model.Protocol
	// ReadOnlyFastPath routes pure-read transactions to the ROSnapshot
	// class (no queueing, no locks, snapshot reads) instead of evaluating
	// STL over the member protocols. The STL comparison is moot for such
	// transactions: a snapshot read has zero lock time and zero restart
	// probability, so no member protocol can beat it.
	ReadOnlyFastPath bool
	// ColdStart, when non-nil, replaces Fallback during warm-up with a full
	// min-STL decision over analytically derived parameters (§5.2's
	// "estimated through analytical methods"; see stl.Analytic).
	ColdStart *stl.SystemShape
	// Grid is the STL' evaluator resolution (0 → 32: selection needs
	// ranking, not precision).
	Grid int
	// MinLambdaA gates selection: below this measured system throughput the
	// estimates are noise and Fallback/ColdStart is used.
	MinLambdaA float64
	// CacheTTLMicros ages per-class cache entries (0 = 200ms).
	CacheTTLMicros int64
}

// Dynamic is the min-STL selector. One instance is shared by all issuers
// (its cache is protected by a mutex); the per-call cost is one STL'
// evaluation per protocol on a cache miss.
type Dynamic struct {
	mu   sync.Mutex
	opts Options

	cache map[classKey]cacheEntry
	// Decisions counts choices per protocol — including routes to the
	// ROSnapshot fast path at index model.ROSnapshot (observability for
	// EXP-6/EXP-10).
	Decisions [model.NumProtocols]uint64
}

type classKey struct {
	class string
	m, n  int
}

type cacheEntry struct {
	protocol model.Protocol
	stl      [3]float64
	atMicros int64
}

// NewDynamic builds a dynamic selector.
func NewDynamic(opts Options) *Dynamic {
	if opts.Grid <= 0 {
		opts.Grid = 32
	}
	if opts.CacheTTLMicros <= 0 {
		opts.CacheTTLMicros = 200_000
	}
	if opts.MinLambdaA <= 0 {
		opts.MinLambdaA = 1
	}
	return &Dynamic{opts: opts, cache: map[classKey]cacheEntry{}}
}

// Choose implements ri.ChooseFunc.
func (d *Dynamic) Choose(t *model.Txn, est model.EstimateMsg) model.Protocol {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.opts.ReadOnlyFastPath && t.NumWrites() == 0 {
		d.Decisions[model.ROSnapshot]++
		return model.ROSnapshot
	}
	// A preset ROSnapshot tag the fast path will not take (path disabled
	// here) simply falls through to normal min-STL selection, whose return
	// value replaces the tag at the issuer.
	if est.LambdaA < d.opts.MinLambdaA {
		p := d.opts.Fallback
		if d.opts.ColdStart != nil {
			p = d.coldChoose(t)
		}
		d.Decisions[p]++
		return p
	}
	key := classKey{class: t.Class, m: t.NumReads(), n: t.NumWrites()}
	if c, ok := d.cache[key]; ok && est.AtMicros-c.atMicros < d.opts.CacheTTLMicros {
		d.Decisions[c.protocol]++
		return c.protocol
	}
	vals, p := d.evaluate(t, est)
	d.cache[key] = cacheEntry{protocol: p, stl: vals, atMicros: est.AtMicros}
	d.Decisions[p]++
	return p
}

// Evaluate exposes the raw per-protocol STL values for a transaction (used
// by EXP-7 to compare predicted against measured rankings).
func (d *Dynamic) Evaluate(t *model.Txn, est model.EstimateMsg) [3]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	vals, _ := d.evaluate(t, est)
	return vals
}

// coldChoose runs min-STL over analytically derived parameters (no
// measurements yet).
func (d *Dynamic) coldChoose(t *model.Txn) model.Protocol {
	params, pp := stl.Analytic(*d.opts.ColdStart)
	ev, err := stl.NewEvaluator(params, d.opts.Grid)
	if err != nil {
		return d.opts.Fallback
	}
	var prof stl.TxnProfile
	for range t.ReadSet {
		prof.ReadItemsLambdaW = append(prof.ReadItemsLambdaW, params.LambdaW)
	}
	for range t.WriteSet {
		prof.WriteItemsLambdaW = append(prof.WriteItemsLambdaW, params.LambdaW)
		prof.WriteItemsLambdaR = append(prof.WriteItemsLambdaR, params.LambdaR)
	}
	return stl.Best(stl.ForTxn(ev, prof, pp))
}

func (d *Dynamic) evaluate(t *model.Txn, est model.EstimateMsg) ([3]float64, model.Protocol) {
	params := ParamsFromEstimates(est)
	ev, err := stl.NewEvaluator(params, d.opts.Grid)
	if err != nil {
		return [3]float64{}, d.opts.Fallback
	}
	prof := ProfileFromEstimates(t, est)
	pp := ProtocolParamsFromEstimates(est)
	vals := stl.ForTxn(ev, prof, pp)
	return vals, stl.Best(vals)
}

// ParamsFromEstimates converts a live estimate broadcast into STL model
// parameters.
func ParamsFromEstimates(est model.EstimateMsg) stl.Params {
	var sumR, sumW float64
	nR, nW := 0, 0
	for _, v := range est.LambdaR {
		sumR += v
		nR++
	}
	for _, v := range est.LambdaW {
		sumW += v
		nW++
	}
	p := stl.Params{LambdaA: est.LambdaA, Qr: est.Qr, K: est.K}
	if nR > 0 {
		p.LambdaR = sumR / float64(nR)
	}
	if nW > 0 {
		p.LambdaW = sumW / float64(nW)
	}
	if p.K < 1 {
		p.K = 1
	}
	return p
}

// ProfileFromEstimates builds the per-item rate profile of a transaction.
func ProfileFromEstimates(t *model.Txn, est model.EstimateMsg) stl.TxnProfile {
	var prof stl.TxnProfile
	for _, it := range t.ReadSet {
		prof.ReadItemsLambdaW = append(prof.ReadItemsLambdaW, est.LambdaW[it])
	}
	for _, it := range t.WriteSet {
		prof.WriteItemsLambdaW = append(prof.WriteItemsLambdaW, est.LambdaW[it])
		prof.WriteItemsLambdaR = append(prof.WriteItemsLambdaR, est.LambdaR[it])
	}
	return prof
}

// ProtocolParamsFromEstimates extracts the §5.2 per-protocol parameters.
// Missing lock-time estimates (a protocol nobody has run yet) default to a
// small optimistic value so the untried protocol gets explored.
func ProtocolParamsFromEstimates(est model.EstimateMsg) stl.ProtocolParams {
	u := func(p model.Protocol, fallback float64) float64 {
		if est.U[p] > 0 {
			return est.U[p]
		}
		return fallback
	}
	up := func(p model.Protocol, fallback float64) float64 {
		if est.UPrime[p] > 0 {
			return est.UPrime[p]
		}
		return fallback
	}
	const coldU = 0.005 // 5ms optimistic prior
	return stl.ProtocolParams{
		U2PL: u(model.TwoPL, coldU), U2PLAborted: up(model.TwoPL, coldU), PAbort: est.PAbort,
		UTO: u(model.TO, coldU), UTOAborted: up(model.TO, coldU), Pr: est.Pr, Pw: est.PwR,
		UPA: u(model.PA, coldU), UPABackoff: up(model.PA, coldU), PBr: est.PB, PBw: est.PBW,
	}
}
