// Package model defines the shared vocabulary of the unified concurrency
// control system: site/transaction/item identifiers, timestamps, the unified
// precedence space of Wang & Li (ICDE 1988) §4.1, transaction descriptors,
// and every message exchanged between Request Issuers (RI), data Queue
// Managers (QM), the deadlock detector, and the measurement plane.
//
// Beyond the paper's three member protocols (TwoPL, TO, PA), the package
// defines the ROSnapshot transaction class: pure-read transactions that
// bypass the queues entirely and read committed versions from the
// multi-version store at a snapshot timestamp (SnapReadMsg /
// SnapReadReplyMsg). ROSnapshot is not a member of the precedence space —
// it takes no locks and holds no queue position — which is why
// model.Protocols deliberately excludes it while model.NumProtocols sizes
// arrays that account for it.
//
// The package is deliberately free of behaviour beyond ordering, formatting,
// and serialization, so that every other package (simulator, runtime, TCP
// transport, WAL) can share one wire vocabulary. Serialization is the wire-v3
// contract (wire.go): a stable one-byte WireTag per message type — never
// renumbered — with explicit varint field encoders and error-latching
// decoding (WireReader), reused by internal/wire for envelope framing and by
// internal/wal for record payloads. Gob registration (RegisterGob) remains
// for the transport's legacy v2 fallback stream.
package model
