package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestBadModule runs the multichecker in-process over the known-bad
// fixture module and asserts a nonzero exit with at least one finding
// from every analyzer in the suite.
func TestBadModule(t *testing.T) {
	var buf strings.Builder
	code := run([]string{"-dir", filepath.Join("testdata", "badmod"), "./..."}, &buf)
	if code != 2 {
		t.Fatalf("ucclint over testdata/badmod: exit %d, want 2\noutput:\n%s", code, buf.String())
	}
	for _, a := range analyzers {
		if !strings.Contains(buf.String(), "("+a.Name+")") {
			t.Errorf("no %s finding over testdata/badmod\noutput:\n%s", a.Name, buf.String())
		}
	}
}

// TestRepoClean runs the full suite over this repository: the codebase
// must stay free of findings (violations are either fixed or carry an
// //ucclint:allow comment stating the argument).
func TestRepoClean(t *testing.T) {
	var buf strings.Builder
	code := run([]string{"-dir", filepath.Join("..", ".."), "./..."}, &buf)
	if code != 0 {
		t.Fatalf("ucclint over the repository: exit %d, want 0\noutput:\n%s", code, buf.String())
	}
}

// TestVetTool builds the binary and exercises the go vet -vettool
// protocol end to end against the bad module.
func TestVetTool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	bin := filepath.Join(t.TempDir(), "ucclint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building ucclint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = filepath.Join("testdata", "badmod")
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool over testdata/badmod succeeded, want failure\noutput:\n%s", out)
	}
	for _, name := range []string{"postnotinject", "sheddable", "wiretag", "poolsafe", "lockorder"} {
		if !strings.Contains(string(out), "("+name+")") {
			t.Errorf("go vet -vettool output missing %s finding\noutput:\n%s", name, out)
		}
	}
}
