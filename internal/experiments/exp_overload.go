package experiments

import (
	"fmt"

	"ucc/internal/cluster"
	"ucc/internal/deadlock"
	"ucc/internal/engine"
	"ucc/internal/metrics"
	"ucc/internal/model"
	"ucc/internal/qm"
	"ucc/internal/ri"
	"ucc/internal/workload"
)

// ---------------------------------------------------------------------------
// EXP-12: overload sweep
//
// The paper evaluates rising multiprogramming levels but assumes the system
// is always asked for less than it can do. This experiment asks the opposite
// question: what happens when open-loop arrivals exceed capacity? Without
// defenses the answer is divergence — every queue (data queues, mailboxes,
// send queues) grows for as long as the overload lasts, so latency and
// memory are unbounded and goodput collapses as the backlog is dragged to
// quiescence. With the backpressure stack — bounded data queues that NAK
// busy, plus per-site admission control (AIMD in-flight window fed by the
// NAK stream) — arrivals beyond capacity are shed at submission, the queues
// stay at their bound, and goodput plateaus near peak however far past
// saturation the offered load climbs.
// ---------------------------------------------------------------------------

// overloadQueueBound is the per-item data queue bound the defended runs use.
const overloadQueueBound = 32

// overloadSLOMicros is the latency budget goodput is counted against: a
// commit slower than this served nobody, however eventually the virtual-time
// drain completed it. ~25× the unloaded mean system time, placed exactly on
// a log₂ histogram bucket edge (2^19 µs = 524ms) so CountAtMost needs no
// within-bucket interpolation and the CI gate counts commits strictly
// faster than the edge exactly — an off-edge SLO is counted to
// bucket-fraction resolution.
const overloadSLOMicros = 524_288

// OverloadPoint is one offered-load multiple of the sweep, run twice:
// defended (admission control + bounded queues) and undefended (both off).
type OverloadPoint struct {
	Multiple      float64
	OfferedPerSec float64 // offered load, txn/s across the cluster
	Offered       uint64  // transactions submitted

	GoodputOn  float64 // committed txn/s, defended
	GoodputOff float64 // committed txn/s, undefended
	P99OnMs    float64
	P99OffMs   float64
	Shed       uint64 // admission-refused arrivals (defended run)
	Busy       uint64 // queue-manager busy NAKs sent (defended run)
	DepthOn    int    // deepest data queue, defended (≤ QueueBound)
	DepthOff   int    // deepest data queue, undefended
	QueueBound int

	SerializableOn  bool
	SerializableOff bool
}

// overloadBase is the cluster shape shared by the capacity measurement and
// both sweep arms; only the load and the defenses vary.
func overloadBase(seed int64) cluster.Config {
	return cluster.Config{
		Sites:   4,
		Items:   24,
		Seed:    seed,
		Record:  true,
		Latency: engine.UniformLatency{MinMicros: 1_000, MaxMicros: 5_000, LocalMicros: 50},
		RI: ri.Options{
			PAIntervalMicros:     2_000,
			RestartDelayMicros:   5_000,
			DefaultComputeMicros: 1_000,
		},
		Detector: deadlock.Options{PeriodMicros: 50_000, PersistRounds: 2},
	}
}

// MeasureOverloadCapacity measures the cluster's committed throughput at
// fixed closed-loop pressure — the "peak" the open-loop sweep offers
// multiples of. Closed loop is the right instrument here: it holds the
// system at saturation without ever overcommitting it.
func MeasureOverloadCapacity(seed int64, horizonMicros int64) float64 {
	cl, err := cluster.NewSim(overloadBase(seed))
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	for i := 0; i < 4; i++ {
		if err := cl.AddDriver(model.SiteID(i), workload.Spec{
			ClosedLoop:    16,
			HorizonMicros: horizonMicros,
			Items:         24,
			Size:          3,
			ReadFrac:      0.5,
			SharePA:       1,
			ComputeMicros: 1_000,
		}); err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
	}
	res := cl.Run(horizonMicros, 2_000_000)
	// Capacity is committed work per second of the arrival window, not of
	// the whole span — the settle/drain tail would dilute it by a constant.
	return float64(res.Summary.TotalCommitted()) / (float64(horizonMicros) / 1e6)
}

// OverloadSweep runs the open-loop overload sweep at the given multiples of
// measured capacity and returns one point per multiple. Exported so the
// acceptance test asserts on the numbers rather than on rendered strings.
func OverloadSweep(cfg RunConfig, multiples []float64, horizonMicros int64) []OverloadPoint {
	capacity := MeasureOverloadCapacity(cfg.Seed, horizonMicros)
	perSite := capacity / 4

	run := func(multiple float64, defended bool) (cluster.Result, *cluster.Cluster) {
		base := overloadBase(cfg.Seed)
		if defended {
			base.QM = qm.Options{MaxQueueDepth: overloadQueueBound}
			base.RI.Admission = ri.AdmissionOptions{Enabled: true}
		}
		cl, err := cluster.NewSim(base)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		scenario := workload.Overload(24, perSite, multiple)
		for i := 0; i < 4; i++ {
			spec := scenario.PerSite(i)
			spec.HorizonMicros = horizonMicros
			if err := cl.AddDriver(model.SiteID(i), spec); err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
		}
		return cl.Run(horizonMicros, 2_000_000), cl
	}

	horizonSec := float64(horizonMicros) / 1e6
	var out []OverloadPoint
	for _, m := range multiples {
		on, clOn := run(m, true)
		off, clOff := run(m, false)
		p := OverloadPoint{
			Multiple:        m,
			OfferedPerSec:   capacity * m,
			Offered:         clOn.RITotals().Submitted,
			GoodputOn:       float64(on.Summary.CommittedWithin(overloadSLOMicros)) / horizonSec,
			GoodputOff:      float64(off.Summary.CommittedWithin(overloadSLOMicros)) / horizonSec,
			P99OnMs:         on.Summary.Protocols[model.PA].SystemTimeH.Quantile(0.99) / 1000,
			P99OffMs:        off.Summary.Protocols[model.PA].SystemTimeH.Quantile(0.99) / 1000,
			Shed:            clOn.RITotals().Shed,
			Busy:            clOn.QMTotals().Busy,
			DepthOn:         clOn.DepthHighWater(),
			DepthOff:        clOff.DepthHighWater(),
			QueueBound:      overloadQueueBound,
			SerializableOn:  on.Serializability != nil && on.Serializability.Serializable,
			SerializableOff: off.Serializability != nil && off.Serializability.Serializable,
		}
		out = append(out, p)
	}
	return out
}

// Exp12 renders the overload sweep: goodput, tail latency, shed/NAK volume,
// and queue depth at rising multiples of measured capacity, defended vs
// undefended.
func Exp12(cfg RunConfig) Result {
	multiples := []float64{0.5, 1, 2, 4}
	horizon := int64(4_000_000)
	if cfg.Quick {
		multiples = []float64{1, 4}
		horizon = 2_000_000
	}
	points := OverloadSweep(cfg, multiples, horizon)

	table := &metrics.Table{Header: []string{
		"offered", "offered/s", "goodput on", "p99 on (ms)", "shed", "busy NAKs",
		"depth on", "goodput off", "p99 off (ms)", "depth off", "serializable",
	}}
	var peak float64
	for _, p := range points {
		if p.GoodputOn > peak {
			peak = p.GoodputOn
		}
	}
	var notes []string
	for _, p := range points {
		table.AddRow(
			fmt.Sprintf("%.1fx", p.Multiple),
			metrics.F(p.OfferedPerSec),
			metrics.F(p.GoodputOn),
			metrics.F(p.P99OnMs),
			fmt.Sprint(p.Shed),
			fmt.Sprint(p.Busy),
			fmt.Sprint(p.DepthOn),
			metrics.F(p.GoodputOff),
			metrics.F(p.P99OffMs),
			fmt.Sprint(p.DepthOff),
			yesNo(p.SerializableOn)+"/"+yesNo(p.SerializableOff),
		)
		if !p.SerializableOn || !p.SerializableOff {
			notes = append(notes, fmt.Sprintf("VIOLATION at %.1fx (on=%v off=%v)",
				p.Multiple, p.SerializableOn, p.SerializableOff))
		}
		if p.DepthOn > p.QueueBound {
			notes = append(notes, fmt.Sprintf("BOUND EXCEEDED at %.1fx: depth %d > %d",
				p.Multiple, p.DepthOn, p.QueueBound))
		}
		if p.Multiple >= 4 && peak > 0 && p.GoodputOn < 0.8*peak {
			notes = append(notes, fmt.Sprintf("GOODPUT COLLAPSE at %.1fx: %.0f < 80%% of peak %.0f",
				p.Multiple, p.GoodputOn, peak))
		}
	}
	notes = append(notes,
		"on = admission control (AIMD in-flight window fed by busy NAKs) + per-item queue bound of "+fmt.Sprint(overloadQueueBound),
		"off = unbounded queues, no admission: the queues absorb every over-capacity arrival, so system time grows with the backlog and p99 diverges with the horizon",
		fmt.Sprintf("goodput = commits within the %dms SLO per second of the arrival window (a commit the backlog delayed past the SLO served nobody)", overloadSLOMicros/1000),
		"offered/s is a multiple of capacity measured by a closed-loop run of the same cluster shape",
	)
	return Result{
		ID:     "EXP-12",
		Title:  "Overload: admission control and bounded queues",
		Claim:  "beyond the paper: with every queue bounded and an AIMD admission window shedding arrivals beyond capacity, goodput at 4x saturation stays within 20% of peak and p99 stays bounded, while the undefended system's backlog drags both off a cliff — and every execution, defended or not, stays conflict serializable",
		Tables: []*metrics.Table{table},
		Notes:  notes,
	}
}
