# Single source of truth for tool versions: CI jobs and local runs both
# install through these targets, so bumping a pin is a one-line change
# here instead of a hunt through workflow files.
STATICCHECK_VERSION := 2024.1.1
GOVULNCHECK_VERSION := v1.1.4

GOBIN := $(CURDIR)/bin

.PHONY: build test lint vet-lint staticcheck govulncheck fuzz-seeds

build:
	go build ./...

test:
	go test ./...

# The repo's own analyzer suite (internal/lint, driven by cmd/ucclint):
# wiretag, postnotinject, sheddable, poolsafe, lockorder. Exits nonzero
# on any finding.
lint:
	go run ./cmd/ucclint ./...

# The same suite through the go command's vet driver: incremental, cached
# per package, and proves the unitchecker protocol stays intact.
vet-lint:
	mkdir -p $(GOBIN)
	go build -o $(GOBIN)/ucclint ./cmd/ucclint
	go vet -vettool=$(GOBIN)/ucclint ./...

staticcheck:
	GOBIN=$(GOBIN) go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GOBIN)/staticcheck ./...

govulncheck:
	GOBIN=$(GOBIN) go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)
	$(GOBIN)/govulncheck ./...

# Seed corpora for every fuzz target (the quick, deterministic pass).
fuzz-seeds:
	go test ./internal/qm -run '^Fuzz'
	go test ./internal/wire -run '^Fuzz'
	go test ./internal/repl -run '^Fuzz'
