// Package ri implements the Request Issuer of the Precedence-Assignment
// Model (§3.1): the per-user-site actor that turns transactions into
// requests, runs the per-protocol lifecycles — static 2PL with deadlock
// aborts, Basic T/O with timestamped requests and restart-on-rejection, and
// the PA negotiation of §3.4 — and drives the semi-lock release discipline
// of §4.2 rule 3/4 for the unified system.
//
// Read-only snapshot transactions (model.ROSnapshot) run a fourth, trivial
// lifecycle: scatter one SnapReadMsg per item at a snapshot timestamp a
// configurable staleness margin in the past, gather the replies, compute,
// commit. No locks, no negotiation, no restarts. The margin must exceed the
// maximum network delay: then every release carrying an older commit stamp
// has already been implemented at every site when the reads arrive, so the
// snapshot observes a consistent cut of committed transactions. Releases of
// read-write transactions carry a single CommitMicros stamp per transaction
// (taken when the release round is sent), which is what the version chains
// — and therefore the snapshots — are ordered by.
//
// Overload defense: restarts back off exponentially (RestartDelayMicros
// doubling per failed attempt up to RestartDelayCapMicros, ±50% jitter —
// a flat delay re-collides every loser of a conflict round at the same rate
// forever), and an optional admission controller (Options.Admission) gates
// every new-transaction start behind a token bucket and an AIMD in-flight
// window. The window grows additively on in-target commits and shrinks
// multiplicatively on congestion signals — a commit over the latency
// target, or a model.BusyMsg NAK from a saturated queue manager. Refused
// arrivals are shed: reported with OutcomeShed, never launched, and (in
// closed-loop mode) their driver slot freed immediately. A BusyMsg for a
// launched read-write attempt aborts and restarts it under the backoff; a
// read-only snapshot transaction is shed outright (the fast path has no
// retry machinery by design).
package ri
