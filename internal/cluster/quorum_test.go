package cluster

import (
	"strings"
	"testing"

	"ucc/internal/model"
	"ucc/internal/workload"
)

// quorumCfg returns a recording 3-site cluster with N=3/W=2/R=2 quorum
// replication over in-memory WALs.
func quorumCfg(seed int64) Config {
	cfg := base(seed)
	cfg.Sites = 3
	cfg.Items = 24
	cfg.Replicas = 3
	cfg.Durability = &Durability{SnapshotEvery: 200}
	cfg.Quorum = &model.Quorum{N: 3, W: 2, R: 2}
	return cfg
}

// TestQuorumConfigValidation mirrors the scenario harness's strict knob
// rejection: every degenerate quorum shape is refused with a diagnosable
// error instead of clamped into something that silently loses the overlap
// properties.
func TestQuorumConfigValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string
	}{
		{"valid", func(c *Config) {}, ""},
		{"zero N", func(c *Config) { c.Quorum.N = 0 }, "must all be positive"},
		{"zero W", func(c *Config) { c.Quorum.W = 0 }, "must all be positive"},
		{"zero R", func(c *Config) { c.Quorum.R = 0 }, "must all be positive"},
		{"negative W", func(c *Config) { c.Quorum.W = -1 }, "must all be positive"},
		{"W exceeds N", func(c *Config) { c.Quorum.W = 4 }, "exceeds"},
		{"R exceeds N", func(c *Config) { c.Quorum.R = 4 }, "exceeds"},
		{"read-write quorums disjoint", func(c *Config) { c.Quorum.W = 1; c.Quorum.R = 2 }, "W+R"},
		{"write quorums disjoint", func(c *Config) { c.Quorum.N = 3; c.Quorum.W = 1; c.Quorum.R = 3 }, "2W"},
		{"N exceeds replicas", func(c *Config) { c.Replicas = 2; c.Quorum = &model.Quorum{N: 3, W: 2, R: 2} }, "replication factor"},
		{"N below replicas", func(c *Config) { c.Quorum = &model.Quorum{N: 2, W: 2, R: 1} }, "replication factor"},
		{"no durability", func(c *Config) { c.Durability = nil }, "requires Durability"},
		{"negative pull period", func(c *Config) { c.ReplPeriodMicros = -1 }, "ReplPeriodMicros"},
		{"negative batch bound", func(c *Config) { c.ReplBatchRecords = -1 }, "ReplBatchRecords"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := quorumCfg(1)
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestQuorumHealthyRun: with every site up, quorum mode must behave like a
// correct (serializable, fully drained) cluster, and the catch-up plane must
// be converging the laggard third copies that sat outside each write quorum.
func TestQuorumHealthyRun(t *testing.T) {
	cl, err := NewSim(quorumCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	addMixedDrivers(t, cl, 25, 2_000_000)
	res := cl.Run(2_000_000, 8_000_000)
	checkRun(t, "quorum-healthy", res, 100)

	qt := cl.QMTotals()
	if qt.ReplPulls == 0 {
		t.Fatal("no catch-up pulls served; the repl plane never ran")
	}
	if qt.ReplApplied == 0 {
		t.Fatal("no shipped records applied: every write quorum was full, so laggard copies had nothing to converge — the workload exercised nothing")
	}
	// Convergence: after the settle window every copy of every item agrees.
	for item := 0; item < cl.Cfg.Items; item++ {
		vals := cl.ReplicaValues(model.ItemID(item))
		for i := 1; i < len(vals); i++ {
			if vals[i] != vals[0] {
				t.Fatalf("item %d replicas diverged in healthy quorum run: %v", item, vals)
			}
		}
	}
}

// TestQuorumSurvivesDeadSite is the tentpole's core claim: with N=3/W=2/R=2,
// killing one site mid-run must not stall commits — the surviving pair forms
// every quorum — and after recovery the dead site converges via WAL log
// shipping from its peers, not via writes it never accepted.
func TestQuorumSurvivesDeadSite(t *testing.T) {
	cl, err := NewSim(quorumCfg(42))
	if err != nil {
		t.Fatal(err)
	}
	addMixedDrivers(t, cl, 25, 3_000_000)

	// Site 1 dies at t=1.0s and stays dead for a full second — several
	// hundred transactions' worth of traffic must commit against the
	// two-site quorum in between.
	cl.CrashSite(1, 1_000_000)
	cl.RecoverSite(1, 2_000_000)

	// Committed before the crash vs. committed by the end of the outage:
	// the dip must not be a stall.
	cl.Start()
	cl.Eng.RunUntil(1_000_000)
	preCrash := cl.RITotals().Committed
	cl.Eng.RunUntil(2_000_000)
	duringOutage := cl.RITotals().Committed - preCrash
	cl.Eng.RunUntil(3_000_000)
	res := cl.Finish()
	checkRun(t, "quorum-dead-site", res, 150)

	if preCrash == 0 {
		t.Fatal("nothing committed before the crash; workload mis-sized")
	}
	if duringOutage == 0 {
		t.Fatalf("commits stalled to zero during the outage: quorum did not mask the dead site (pre-crash %d)", preCrash)
	}

	qt := cl.QMTotals()
	if qt.Crashes != 1 || qt.Recoveries != 1 {
		t.Fatalf("crashes=%d recoveries=%d, want 1/1", qt.Crashes, qt.Recoveries)
	}
	if qt.ReplApplied == 0 {
		t.Fatal("recovered site applied no shipped records; catch-up never ran")
	}
	// Convergence after recovery + catch-up.
	for item := 0; item < cl.Cfg.Items; item++ {
		vals := cl.ReplicaValues(model.ItemID(item))
		if len(vals) != 3 {
			t.Fatalf("item %d: %d live copies, want 3", item, len(vals))
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] != vals[0] {
				t.Fatalf("item %d replicas diverged after catch-up: %v", item, vals)
			}
		}
	}
	// The recovered site's watermarks must have advanced for both peers.
	marks := cl.ReplWatermarks()[1]
	for peer, seq := range marks {
		if seq == 0 {
			t.Errorf("site 1 watermark for peer %d still zero after catch-up", peer)
		}
	}
	if len(marks) != 2 {
		t.Fatalf("site 1 tracks %d peers, want 2 (%v)", len(marks), marks)
	}
}

// TestQuorumBusyNAKExcludesNotRestarts: with a bounded queue at one site,
// quorum mode absorbs busy NAKs by excluding the saturated copy instead of
// restarting the whole attempt — excluded copies must show up in the issuer
// counters while the run still commits and stays serializable.
func TestQuorumBusyNAKExcludesNotRestarts(t *testing.T) {
	cfg := quorumCfg(3)
	cfg.QM.MaxQueueDepth = 2 // shallow queues: NAKs come easily under load
	cl, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < cfg.Sites; s++ {
		if err := cl.AddDriver(model.SiteID(s), workload.Spec{
			ArrivalPerSec: 120, // hot enough to hit depth 2 regularly
			HorizonMicros: 2_000_000,
			Items:         8, // few items: concentrated contention
			Size:          3,
			ReadFrac:      0.5,
			Share2PL:      1, ShareTO: 1, SharePA: 1,
			ComputeMicros: 500,
		}); err != nil {
			t.Fatal(err)
		}
	}
	res := cl.Run(2_000_000, 8_000_000)
	checkRun(t, "quorum-busy", res, 50)

	rt := cl.RITotals()
	if rt.BusyNAKs == 0 {
		t.Fatal("no busy NAKs; the bounded queue never saturated and the test exercised nothing")
	}
	if rt.QuorumExcluded == 0 {
		t.Fatal("no copies excluded: busy NAKs all fell through to whole-attempt restarts")
	}
	t.Logf("busyNAKs=%d excluded=%d committed=%d", rt.BusyNAKs, rt.QuorumExcluded, rt.Committed)
}
