package stl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEval(t *testing.T, p Params, grid int) *Evaluator {
	t.Helper()
	e, err := NewEvaluator(p, grid)
	if err != nil {
		t.Fatalf("NewEvaluator: %v", err)
	}
	return e
}

func TestEvaluateSaturation(t *testing.T) {
	p := Params{LambdaA: 100, LambdaW: 2, LambdaR: 3, Qr: 0.5, K: 4}
	e := mustEval(t, p, 32)
	// At or above λA the whole system throughput is lost: STL' = λA·U.
	for _, loss := range []float64{100, 150, 1e6} {
		got := e.Evaluate(loss, 0.5)
		if want := 100 * 0.5; math.Abs(got-want) > 1e-9 {
			t.Errorf("Evaluate(%v, 0.5) = %v, want %v", loss, got, want)
		}
	}
}

func TestEvaluateZeroHorizonAndLoss(t *testing.T) {
	p := Params{LambdaA: 100, LambdaW: 2, LambdaR: 3, Qr: 0.5, K: 4}
	e := mustEval(t, p, 32)
	if got := e.Evaluate(10, 0); got != 0 {
		t.Errorf("U=0 must give 0, got %v", got)
	}
	if got := e.Evaluate(-1, 1); got != 0 {
		t.Errorf("negative loss must give 0, got %v", got)
	}
}

func TestEvaluateNoAccretion(t *testing.T) {
	// λnew = 0 (no writes anywhere, Qr = 1): blocking adds nothing, so
	// STL' = λloss·U exactly.
	p := Params{LambdaA: 50, LambdaW: 0, LambdaR: 4, Qr: 1, K: 3}
	e := mustEval(t, p, 32)
	got := e.Evaluate(10, 0.2)
	if want := 10 * 0.2; math.Abs(got-want) > 1e-9 {
		t.Errorf("no-accretion: got %v want %v", got, want)
	}
}

func TestEvaluateK1NoBlocking(t *testing.T) {
	// K=1: a transaction with one request can never also hold a blocked
	// request, so λblock = 0 and STL' = λloss·U.
	p := Params{LambdaA: 80, LambdaW: 3, LambdaR: 3, Qr: 0.5, K: 1}
	e := mustEval(t, p, 64)
	got := e.Evaluate(8, 0.1)
	if want := 0.8; math.Abs(got-want) > 1e-6 {
		t.Errorf("K=1: got %v want %v", got, want)
	}
}

func TestEvaluateMonotoneInLoss(t *testing.T) {
	p := Params{LambdaA: 200, LambdaW: 5, LambdaR: 8, Qr: 0.6, K: 4}
	e := mustEval(t, p, 48)
	prev := -1.0
	for _, loss := range []float64{0, 10, 40, 80, 120, 160, 199} {
		got := e.Evaluate(loss, 0.05)
		if got < prev-1e-9 {
			t.Fatalf("STL' not monotone in λloss at %v: %v < %v", loss, got, prev)
		}
		prev = got
	}
}

func TestEvaluateMonotoneInU(t *testing.T) {
	p := Params{LambdaA: 200, LambdaW: 5, LambdaR: 8, Qr: 0.6, K: 4}
	e := mustEval(t, p, 48)
	prev := -1.0
	for _, u := range []float64{0.001, 0.005, 0.02, 0.1, 0.5} {
		got := e.Evaluate(30, u)
		if got < prev-1e-9 {
			t.Fatalf("STL' not monotone in U at %v: %v < %v", u, got, prev)
		}
		prev = got
	}
}

func TestEvaluateBounds(t *testing.T) {
	// λloss·U ≤ STL' ≤ λA·U for any valid inputs (loss only accretes, and
	// can never exceed the whole system throughput).
	p := Params{LambdaA: 150, LambdaW: 4, LambdaR: 6, Qr: 0.6, K: 5}
	e := mustEval(t, p, 48)
	f := func(lossRaw, uRaw uint16) bool {
		loss := float64(lossRaw%150) + 0.5
		u := 0.001 + float64(uRaw%500)/1000.0
		got := e.Evaluate(loss, u)
		return got >= loss*u-1e-6 && got <= p.LambdaA*u+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateGridConvergence(t *testing.T) {
	p := Params{LambdaA: 400, LambdaW: 4, LambdaR: 6, Qr: 0.6, K: 4}
	e64 := mustEval(t, p, 64)
	e256 := mustEval(t, p, 256)
	for _, loss := range []float64{20, 100, 250} {
		for _, u := range []float64{0.01, 0.05} {
			a, b := e64.Evaluate(loss, u), e256.Evaluate(loss, u)
			if b == 0 {
				continue
			}
			if rel := math.Abs(a-b) / b; rel > 0.02 {
				t.Errorf("grid 64 vs 256 differ by %.2f%% at (%v,%v)", 100*rel, loss, u)
			}
		}
	}
}

func TestLambdaBlockProperties(t *testing.T) {
	p := Params{LambdaA: 100, LambdaW: 2, LambdaR: 2, Qr: 0.5, K: 4}
	if got := p.LambdaBlock(0); got != 0 {
		t.Errorf("no loss → no blocking, got %v", got)
	}
	if got := p.LambdaBlock(100); got != 0 {
		t.Errorf("full loss → nothing left to grant, got %v", got)
	}
	mid := p.LambdaBlock(50)
	if mid <= 0 || mid >= 100 {
		t.Errorf("mid-loss blocking rate out of range: %v", mid)
	}
}

func TestLambdaNew(t *testing.T) {
	p := Params{LambdaA: 100, LambdaW: 3, LambdaR: 10, Qr: 0.75, K: 4}
	// λnew = λw + (1−Qr)·λr = 3 + 0.25·10 = 5.5
	if got := p.LambdaNew(); math.Abs(got-5.5) > 1e-12 {
		t.Errorf("LambdaNew = %v want 5.5", got)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{LambdaA: -1, K: 2},
		{LambdaA: 1, Qr: 2, K: 2},
		{LambdaA: 1, Qr: 0.5, K: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	ok := Params{LambdaA: 10, LambdaW: 1, LambdaR: 1, Qr: 0.5, K: 2}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}
