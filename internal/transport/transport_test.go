package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ucc/internal/engine"
	"ucc/internal/model"
)

type recorder struct {
	mu   sync.Mutex
	got  []model.Message
	done chan struct{}
	want int
}

func (r *recorder) OnMessage(ctx engine.Context, from engine.Addr, msg model.Message) {
	r.mu.Lock()
	r.got = append(r.got, msg)
	if len(r.got) == r.want {
		close(r.done)
	}
	r.mu.Unlock()
}

type relay struct{ to engine.Addr }

func (s *relay) OnMessage(ctx engine.Context, from engine.Addr, msg model.Message) {
	ctx.Send(s.to, msg)
}

// TestCrossProcessDelivery wires two runtimes over real TCP sockets and
// checks ordered delivery of typed messages in both directions.
func TestCrossProcessDelivery(t *testing.T) {
	rtA := engine.NewRuntime(engine.FixedLatency{}, 1)
	rtB := engine.NewRuntime(engine.FixedLatency{}, 2)
	defer rtA.Shutdown()
	defer rtB.Shutdown()

	// Peer A hosts RI(0)+QM(0); peer B hosts RI(1)+QM(1).
	assign := func(a engine.Addr) string {
		return fmt.Sprintf("site%d", a.ID)
	}
	topoA := Topology{Peers: map[string]string{}, Assign: assign}
	nodeA, err := NewNode(rtA, "site0", "127.0.0.1:0", topoA)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	topoB := Topology{Peers: map[string]string{"site0": nodeA.Addr()}, Assign: assign}
	nodeB, err := NewNode(rtB, "site1", "127.0.0.1:0", topoB)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	topoA.Peers["site1"] = nodeB.Addr()

	recv := &recorder{done: make(chan struct{}), want: 50}
	rtA.Register(engine.QMAddr(0), recv)
	rtB.Register(engine.RIAddr(1), &relay{to: engine.QMAddr(0)})

	// Drive 50 typed messages from B's actor to A's actor over the wire.
	for i := 0; i < 50; i++ {
		rtB.Inject(engine.Envelope{
			From: engine.RIAddr(1), To: engine.RIAddr(1),
			Msg: model.RequestMsg{
				Txn:      model.TxnID{Site: 1, Seq: uint64(i)},
				Protocol: model.PA,
				Kind:     model.OpWrite,
				Copy:     model.CopyID{Item: 3, Site: 0},
				TS:       model.Timestamp(i),
				Site:     1,
			},
		})
	}
	select {
	case <-recv.done:
	case <-time.After(10 * time.Second):
		recv.mu.Lock()
		n := len(recv.got)
		recv.mu.Unlock()
		t.Fatalf("timed out: got %d/50", n)
	}
	recv.mu.Lock()
	defer recv.mu.Unlock()
	for i, m := range recv.got {
		req, ok := m.(model.RequestMsg)
		if !ok {
			t.Fatalf("message %d has type %T", i, m)
		}
		if req.Txn.Seq != uint64(i) || req.TS != model.Timestamp(i) {
			t.Fatalf("order/content broken at %d: %+v", i, req)
		}
		if req.Copy != (model.CopyID{Item: 3, Site: 0}) {
			t.Fatalf("copy id corrupted: %+v", req.Copy)
		}
	}
}

func TestLocalAssignShortCircuits(t *testing.T) {
	rt := engine.NewRuntime(engine.FixedLatency{}, 1)
	defer rt.Shutdown()
	topo := Topology{
		Peers:  map[string]string{},
		Assign: func(engine.Addr) string { return "self" },
	}
	node, err := NewNode(rt, "self", "", topo) // outbound-only, no listener
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	recv := &recorder{done: make(chan struct{}), want: 1}
	rt.Register(engine.QMAddr(5), recv)
	rt.Register(engine.RIAddr(1), &relay{to: engine.QMAddr(5)})
	rt.Inject(engine.Envelope{From: engine.RIAddr(1), To: engine.RIAddr(1), Msg: model.TickMsg{}})
	select {
	case <-recv.done:
	case <-time.After(5 * time.Second):
		t.Fatal("local short-circuit failed")
	}
}

func TestUnknownPeerDropsSilently(t *testing.T) {
	rt := engine.NewRuntime(engine.FixedLatency{}, 1)
	defer rt.Shutdown()
	topo := Topology{
		Peers:  map[string]string{},
		Assign: func(engine.Addr) string { return "ghost" },
	}
	node, err := NewNode(rt, "self", "", topo)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	rt.Register(engine.RIAddr(1), &relay{to: engine.QMAddr(5)})
	rt.Inject(engine.Envelope{From: engine.RIAddr(1), To: engine.RIAddr(1), Msg: model.TickMsg{}})
	time.Sleep(50 * time.Millisecond) // must not panic or block
}

func TestStandardAssign(t *testing.T) {
	f := StandardAssign("client")
	if f(engine.QMAddr(2)) != "site2" || f(engine.RIAddr(0)) != "site0" {
		t.Fatal("site assignment wrong")
	}
	if f(engine.DetectorAddr()) != "site0" {
		t.Fatal("detector must live on site0")
	}
	if f(engine.CollectorAddr()) != "client" || f(engine.DriverAddr(3)) != "client" {
		t.Fatal("client-side assignment wrong")
	}
}

func TestWireRoundTrip(t *testing.T) {
	env := engine.Envelope{
		From: engine.RIAddr(3),
		To:   engine.QMAddr(7),
		Msg:  model.GrantMsg{Txn: model.TxnID{Site: 3, Seq: 9}, Lock: model.SWL, TS: 42},
	}
	got := fromWire(toWire(env))
	if got.From != env.From || got.To != env.To {
		t.Fatalf("addresses corrupted: %+v", got)
	}
	if g, ok := got.Msg.(model.GrantMsg); !ok || g.TS != 42 || g.Lock != model.SWL {
		t.Fatalf("payload corrupted: %+v", got.Msg)
	}
}
