package experiments

import (
	"fmt"

	"ucc/internal/metrics"
	"ucc/internal/model"
)

// Exp1 reproduces the paper's S-vs-λ curves (§5 ¶1): mean transaction
// system time for static 2PL, T/O, and PA across an arrival-rate sweep.
func Exp1(cfg RunConfig) Result {
	sweep := lambdaSweep(cfg.Quick)
	table := &metrics.Table{Header: []string{"λ/site (txn/s)", "S 2PL (ms)", "S T/O (ms)", "S PA (ms)", "winner"}}
	series := make([]metrics.Series, 3)
	for i, p := range model.Protocols {
		series[i].Label = p.String()
	}
	reps := 3
	if cfg.Quick {
		reps = 1
	}
	for _, lam := range sweep {
		var s [3]float64
		for _, p := range model.Protocols {
			// Average several seeds per point: a single unlucky deadlock at
			// low load otherwise dominates the small sample.
			var sum float64
			for r := 0; r < reps; r++ {
				spec := defaultSpec(cfg.Seed + int64(lam*10) + int64(r)*7919)
				spec.arrival = lam
				spec.share = pureShare(p)
				// A fast detector keeps a single unlucky deadlock's
				// resolution latency from dominating the small low-λ
				// samples (ABL-3 studies the period itself).
				spec.detPeriod = 10_000
				if cfg.Quick {
					spec.horizonUs = 2_000_000
				}
				out := mustExecute(spec)
				sum += meanS(out, p)
			}
			s[p] = sum / float64(reps)
			series[p].Add(lam, s[p])
		}
		table.AddRow(metrics.F(lam), metrics.F(s[0]), metrics.F(s[1]), metrics.F(s[2]),
			winner(s).String())
	}
	return Result{
		ID: "EXP-1", Title: "System time S vs arrival rate λ",
		Claim:  "2PL best at low λ, collapses at high λ; T/O steady, wins at high λ; PA best at moderate λ",
		Tables: []*metrics.Table{table},
		Series: series,
	}
}

func winner(s [3]float64) model.Protocol {
	best := model.TwoPL
	for _, p := range []model.Protocol{model.TO, model.PA} {
		if s[p] > 0 && (s[best] == 0 || s[p] < s[best]) {
			best = p
		}
	}
	return best
}

// Exp2 reproduces the S-vs-st claim: T/O degrades fastest as transaction
// size grows.
func Exp2(cfg RunConfig) Result {
	sweep := sizeSweep(cfg.Quick)
	table := &metrics.Table{Header: []string{"st", "S 2PL (ms)", "S T/O (ms)", "S PA (ms)", "T/O restarts/commit", "winner"}}
	series := make([]metrics.Series, 3)
	for i, p := range model.Protocols {
		series[i].Label = p.String()
	}
	reps := 3
	if cfg.Quick {
		reps = 1
	}
	for _, st := range sweep {
		var s [3]float64
		var restarts float64
		for _, p := range model.Protocols {
			var sum float64
			for r := 0; r < reps; r++ {
				spec := defaultSpec(cfg.Seed + int64(st) + int64(r)*104729)
				spec.size = st
				// Hold the offered operation load constant (~60 item-
				// accesses per second per site) so the sweep isolates
				// transaction size from total load, as the paper's size
				// comparison requires.
				spec.arrival = 60.0 / float64(st)
				// A fast detector keeps 2PL's deadlock-resolution latency
				// from masking the blocking-vs-restart comparison the claim
				// is about (ABL-3 studies the period itself).
				spec.detPeriod = 10_000
				spec.share = pureShare(p)
				if cfg.Quick {
					spec.horizonUs = 2_000_000
				}
				out := mustExecute(spec)
				sum += meanS(out, p)
				if p == model.TO {
					ps := out.res.Summary.Protocols[model.TO]
					if ps.Committed > 0 {
						restarts = float64(ps.Rejected) / float64(ps.Committed)
					}
				}
			}
			s[p] = sum / float64(reps)
			series[p].Add(float64(st), s[p])
		}
		table.AddRow(fmt.Sprint(st), metrics.F(s[0]), metrics.F(s[1]), metrics.F(s[2]),
			metrics.F(restarts), winner(s).String())
	}
	return Result{
		ID: "EXP-2", Title: "System time S vs transaction size st",
		Claim:  "T/O becomes worse than 2PL and PA as st increases (restart probability grows with st)",
		Tables: []*metrics.Table{table},
		Series: series,
	}
}

// Exp3 reproduces §5's observation that 2PL's collapse at high λ is driven
// by blocking behind deadlocked transactions, not by the deadlock count
// itself.
func Exp3(cfg RunConfig) Result {
	sweep := lambdaSweep(cfg.Quick)
	table := &metrics.Table{Header: []string{
		"λ/site", "commits", "deadlock victims", "victims/commit %", "S (ms)", "S p95 (ms)", "lock wait share %",
	}}
	var series metrics.Series
	series.Label = "victims per 100 commits"
	for _, lam := range sweep {
		spec := defaultSpec(cfg.Seed + int64(lam))
		spec.arrival = lam
		spec.share = pureShare(model.TwoPL)
		if cfg.Quick {
			spec.horizonUs = 2_000_000
		}
		out := mustExecute(spec)
		ps := out.res.Summary.Protocols[model.TwoPL]
		commits := float64(ps.Committed)
		victims := float64(ps.Victims)
		s := ps.SystemTime.Mean() / 1000
		p95 := ps.SystemTimeH.Quantile(0.95) / 1000
		// Lock wait share: time not spent computing or on the minimum
		// message round-trips, as a fraction of S.
		minService := float64(spec.compute) + 3*2_000 // compute + ~3 one-way hops
		waitShare := 0.0
		if ps.SystemTime.Mean() > 0 {
			waitShare = 100 * (ps.SystemTime.Mean() - minService) / ps.SystemTime.Mean()
			if waitShare < 0 {
				waitShare = 0
			}
		}
		ratio := 0.0
		if commits > 0 {
			ratio = 100 * victims / commits
		}
		table.AddRow(metrics.F(lam), metrics.F(commits), metrics.F(victims),
			metrics.F(ratio), metrics.F(s), metrics.F(p95), metrics.F(waitShare))
		series.Add(lam, ratio)
	}
	return Result{
		ID: "EXP-3", Title: "Deadlocks vs blocking under 2PL",
		Claim:  "directly deadlocked transactions stay few while S rises dramatically from blocking",
		Tables: []*metrics.Table{table},
		Series: []metrics.Series{series},
	}
}

// Exp4 measures each protocol's failure-and-messaging cost across load.
func Exp4(cfg RunConfig) Result {
	sweep := lambdaSweep(cfg.Quick)
	table := &metrics.Table{Header: []string{
		"λ/site", "T/O restarts/commit", "PA backoffs/commit", "2PL victims/commit",
		"msgs/commit 2PL", "msgs/commit T/O", "msgs/commit PA",
	}}
	for _, lam := range sweep {
		var restarts, backoffs, victims float64
		var msgs [3]float64
		for _, p := range model.Protocols {
			spec := defaultSpec(cfg.Seed + int64(lam*3))
			spec.arrival = lam
			spec.share = pureShare(p)
			if cfg.Quick {
				spec.horizonUs = 2_000_000
			}
			out := mustExecute(spec)
			ps := out.res.Summary.Protocols[p]
			if ps.Committed == 0 {
				continue
			}
			c := float64(ps.Committed)
			msgs[p] = ps.Messages.Mean()
			switch p {
			case model.TO:
				restarts = float64(ps.Rejected) / c
			case model.PA:
				backoffs = float64(ps.BackoffReads+ps.BackoffWrites) / c
			case model.TwoPL:
				victims = float64(ps.Victims) / c
			}
		}
		table.AddRow(metrics.F(lam), metrics.F(restarts), metrics.F(backoffs), metrics.F(victims),
			metrics.F(msgs[0]), metrics.F(msgs[1]), metrics.F(msgs[2]))
	}
	return Result{
		ID: "EXP-4", Title: "Restart/back-off/message costs vs load",
		Claim:  "PA trades restarts for negotiation messages whose count grows with load; T/O restarts grow with load; 2PL victims grow with load",
		Tables: []*metrics.Table{table},
	}
}
