// Quickstart: build a 3-site simulated cluster, run a mixed-protocol
// workload where every transaction picks its own concurrency control
// algorithm (the paper's headline capability), and verify the execution is
// conflict serializable.
package main

import (
	"fmt"
	"time"

	"ucc"
)

func main() {
	// A 3-site distributed database with 48 logical items, 2 physical
	// copies each (read-one/write-all), jittered 1–3ms network links.
	c, err := ucc.New(ucc.Config{
		Sites:    3,
		Items:    48,
		Replicas: 2,
		Seed:     7,
	})
	if err != nil {
		panic(err)
	}

	// One third of transactions use 2PL, one third Basic T/O, one third
	// Precedence Agreement — concurrently, against the same data.
	err = c.Workload(ucc.Workload{
		Rate:     25,
		Duration: 3 * time.Second,
		Size:     4,
		ReadFrac: 0.6,
		Mix:      ucc.Mix{TwoPL: 1, TO: 1, PA: 1},
	})
	if err != nil {
		panic(err)
	}

	res := c.Run()

	fmt.Printf("committed:     %d transactions (%.1f txn/s)\n", res.Committed(), res.Throughput())
	fmt.Printf("serializable:  %v\n", res.Serializable())
	fmt.Printf("mean S:        %v\n", res.MeanSystemTime())
	for _, p := range []ucc.Protocol{ucc.TwoPL, ucc.TO, ucc.PA} {
		s := res.Stats(p)
		fmt.Printf("  %-4v commits=%-4d S=%-10v restarts=%-3d deadlock-aborts=%-3d backoffs=%d\n",
			p, s.Committed, s.MeanSystemTime.Round(100*time.Microsecond),
			s.Restarts, s.DeadlockAborts, s.Backoffs)
	}
	broken, no2pl := res.DeadlockCycles()
	fmt.Printf("deadlock cycles broken: %d (cycles without a 2PL member: %d — Corollary 2 says these are transient)\n",
		broken, no2pl)

	if !res.Serializable() {
		fmt.Println("BUG: conflict cycle:", res.ConflictCycle())
	}
}
