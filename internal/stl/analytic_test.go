package stl

import (
	"testing"

	"ucc/internal/model"
)

func shape(arrival float64) SystemShape {
	return SystemShape{
		Sites:            4,
		ArrivalPerSec:    arrival,
		Items:            24,
		K:                4,
		Qr:               0.5,
		RoundTripSeconds: 0.006,
		ComputeSeconds:   0.003,
		DetectSeconds:    0.020,
		RestartSeconds:   0.020,
	}
}

func TestAnalyticBasicSanity(t *testing.T) {
	p, pp := Analytic(shape(20))
	if err := p.Validate(); err != nil {
		t.Fatalf("derived params invalid: %v", err)
	}
	if p.LambdaA != 4*20*4 {
		t.Fatalf("λA = %v want 320", p.LambdaA)
	}
	// Probabilities must be in [0, 0.95].
	for name, v := range map[string]float64{
		"PAbort": pp.PAbort, "Pr": pp.Pr, "Pw": pp.Pw, "PBr": pp.PBr, "PBw": pp.PBw,
	} {
		if v < 0 || v > 0.95 {
			t.Errorf("%s = %v out of range", name, v)
		}
	}
	// Lock times positive; aborted T/O attempts die earlier than committed.
	if pp.UTO <= 0 || pp.UTOAborted <= 0 || pp.UTOAborted >= pp.UTO {
		t.Errorf("UTO=%v UTOAborted=%v", pp.UTO, pp.UTOAborted)
	}
	// Deadlock victims pay detection latency on top.
	if pp.U2PLAborted <= pp.UTOAborted {
		t.Errorf("U2PLAborted=%v must exceed early-death T/O aborts", pp.U2PLAborted)
	}
}

func TestAnalyticProbabilitiesGrowWithLoad(t *testing.T) {
	_, lo := Analytic(shape(5))
	_, hi := Analytic(shape(60))
	if hi.Pr <= lo.Pr || hi.Pw <= lo.Pw {
		t.Errorf("rejection probabilities must grow with load: %v→%v, %v→%v",
			lo.Pr, hi.Pr, lo.Pw, hi.Pw)
	}
	if hi.PAbort <= lo.PAbort {
		t.Errorf("deadlock probability must grow with load: %v→%v", lo.PAbort, hi.PAbort)
	}
}

func TestAnalyticSelectionOrdering(t *testing.T) {
	// The analytic cold-start ordering must make lock-based protocols less
	// attractive as load grows — the coarse property the selector needs.
	cost := func(arrival float64) [3]float64 {
		p, pp := Analytic(shape(arrival))
		ev, err := NewEvaluator(p, 32)
		if err != nil {
			t.Fatal(err)
		}
		prof := TxnProfile{
			ReadItemsLambdaW:  []float64{p.LambdaW, p.LambdaW},
			WriteItemsLambdaW: []float64{p.LambdaW, p.LambdaW},
			WriteItemsLambdaR: []float64{p.LambdaR, p.LambdaR},
		}
		return ForTxn(ev, prof, pp)
	}
	lo := cost(5)
	hi := cost(60)
	// Relative 2PL cost (vs T/O) must worsen with load.
	if hi[model.TwoPL]/hi[model.TO] <= lo[model.TwoPL]/lo[model.TO] {
		t.Errorf("2PL relative cost must grow with load: lo=%v hi=%v", lo, hi)
	}
	for _, v := range append(lo[:], hi[:]...) {
		if !(v >= 0) {
			t.Fatalf("negative/NaN STL: lo=%v hi=%v", lo, hi)
		}
	}
}

func TestAnalyticDegenerateInputs(t *testing.T) {
	p, _ := Analytic(SystemShape{})
	if p.K < 1 {
		t.Fatalf("degenerate shape produced invalid K: %v", p.K)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("degenerate shape params invalid: %v", err)
	}
}
