// Command uccbench runs the paper-reproduction experiments and prints the
// tables/series of DESIGN.md's experiment index.
//
// Usage:
//
//	uccbench                 # run every experiment
//	uccbench -exp EXP-1      # run one experiment
//	uccbench -quick          # smaller sweeps (CI-scale)
//	uccbench -seed 7         # change the random seed
//	uccbench -list           # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ucc/internal/experiments"
)

func main() {
	var (
		expID = flag.String("exp", "", "run a single experiment by id (e.g. EXP-1)")
		quick = flag.Bool("quick", false, "smaller sweeps and horizons")
		seed  = flag.Int64("seed", 1988, "random seed")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-7s %s\n        claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	cfg := experiments.RunConfig{Quick: *quick, Seed: *seed}
	var todo []experiments.Experiment
	if *expID != "" {
		e, ok := experiments.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "uccbench: unknown experiment %q (try -list)\n", *expID)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	} else {
		todo = experiments.All()
	}

	for _, e := range todo {
		start := time.Now()
		res := e.Run(cfg)
		fmt.Print(res.String())
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
