// Package history records executions and checks conflict serializability.
//
// The paper models an execution as one log per physical data item giving the
// order in which operations are implemented there (§2), and takes Theorem 1
// conflict serializability as the correctness criterion: the execution is
// correct iff the conflict graph induced by the logs is acyclic. This
// package is the test oracle for Theorem 2 — every mixed-protocol execution
// the unified system allows must pass Check.
//
// Snapshot reads need one refinement: a read-only transaction that read an
// older version must sit in the log before the writes it did not see, or
// the conflict graph would grow inverted edges. ImplementedReadAt therefore
// inserts a snapshot read at the position of the version it observed (the
// k-th write entry in a copy's log is the write that produced version k),
// while ordinary lock-path operations append in implementation order as
// before.
package history
