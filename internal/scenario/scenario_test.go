package scenario

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"ucc/internal/cluster"
	"ucc/internal/engine"
	"ucc/internal/workload"
)

// tiny returns a minimal fast scenario for runner-behavior tests: 2 sites,
// one 300ms phase of light PA load, short settle.
func tiny() Scenario {
	return Scenario{
		Name:        "tiny",
		Description: "runner-behavior fixture",
		Cluster: cluster.Config{
			Sites: 2, Items: 8, Seed: 1,
			Latency: engine.UniformLatency{MinMicros: 500, MaxMicros: 1_500, LocalMicros: 50},
		},
		SettleMicros: 2_000_000,
		Phases: []Phase{{
			Name:           "only",
			DurationMicros: 300_000,
			Workload: func(int) workload.Spec {
				return workload.Spec{ArrivalPerSec: 40, Items: 8, Size: 2, SharePA: 1, ComputeMicros: 500}
			},
			Checks: []Check{MinCommitted(1)},
		}},
		Final: []Check{Serializable(), NoUnfinished(), OfferedAccounted()},
	}
}

// TestLibraryShape pins the library contract the CLI and EXP-13 rely on:
// at least six scenarios, unique names, each validating, each with final
// checks, ByName round-trips, and the smoke pair is a subset of the library.
func TestLibraryShape(t *testing.T) {
	lib := Library()
	if len(lib) < 6 {
		t.Fatalf("library has %d scenarios, want ≥6", len(lib))
	}
	seen := map[string]bool{}
	for i := range lib {
		sc := &lib[i]
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Description == "" {
			t.Errorf("scenario %q has no description", sc.Name)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("scenario %q invalid: %v", sc.Name, err)
		}
		if len(sc.Final) == 0 {
			t.Errorf("scenario %q declares no final checks", sc.Name)
		}
		got, ok := ByName(sc.Name)
		if !ok || got.Name != sc.Name {
			t.Errorf("ByName(%q) failed", sc.Name)
		}
	}
	for _, sc := range Smoke() {
		if !seen[sc.Name] {
			t.Errorf("smoke scenario %q is not in the library", sc.Name)
		}
	}
	if _, ok := ByName("no-such-scenario"); ok {
		t.Error("ByName invented a scenario")
	}
}

// TestRunTiny: the runner executes a valid scenario, all checks pass, and the
// record carries the phase metrics and JSON/text renderings.
func TestRunTiny(t *testing.T) {
	rec, err := Run(tiny(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Passed {
		t.Fatalf("tiny scenario failed: %v", rec.Failures)
	}
	if len(rec.Phases) != 1 || rec.Phases[0].Committed == 0 {
		t.Fatalf("phase record empty: %+v", rec.Phases)
	}
	if rec.Final.Committed == 0 || rec.Final.Serializable == nil || !*rec.Final.Serializable {
		t.Fatalf("final record wrong: %+v", rec.Final)
	}
	js, err := rec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(js, []byte(`"scenario": "tiny"`)) {
		t.Fatalf("JSON missing scenario name: %s", js[:120])
	}
	var sb strings.Builder
	rec.WriteText(&sb)
	if !strings.Contains(sb.String(), "only") {
		t.Fatalf("text report missing phase name:\n%s", sb.String())
	}
}

// TestDeterminism: same scenario + same seed → byte-identical JSON records;
// a different seed must change the numbers (or the seed isn't wired).
func TestDeterminism(t *testing.T) {
	a, err := Run(tiny(), Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tiny(), Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := a.JSON()
	jb, _ := b.JSON()
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same seed produced different records:\n%s\n---\n%s", ja, jb)
	}
	c, err := Run(tiny(), Options{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	jc, _ := c.JSON()
	if bytes.Equal(ja, jc) {
		t.Fatal("different seeds produced identical records — Options.Seed is not wired through")
	}
}

// TestCheckFailureIsData: an impossible checkpoint fails the run but is NOT a
// run error — later phases still execute and the report names the failure.
func TestCheckFailureIsData(t *testing.T) {
	sc := tiny()
	sc.Phases[0].Checks = []Check{MinCommitted(1 << 40)}
	sc.Phases = append(sc.Phases, Phase{
		Name:           "after",
		DurationMicros: 200_000,
		Workload:       sc.Phases[0].Workload,
		Checks:         []Check{MinCommitted(1)},
	})
	rec, err := Run(sc, Options{})
	if err != nil {
		t.Fatalf("a failed check must not be a run error: %v", err)
	}
	if rec.Passed {
		t.Fatal("run passed despite an impossible checkpoint")
	}
	if len(rec.Failures) == 0 || !strings.Contains(rec.Failures[0], "committed") {
		t.Fatalf("failures don't name the check: %v", rec.Failures)
	}
	if len(rec.Phases) != 2 {
		t.Fatalf("failure stopped the run: %d of 2 phases ran", len(rec.Phases))
	}
	if !rec.Phases[1].Checks[0].Passed {
		t.Fatal("the later phase's passing check was not evaluated")
	}
}

// TestMisplacedChecks: a phase check listed under Final (and vice versa) must
// fail with a message telling the author where the check belongs.
func TestMisplacedChecks(t *testing.T) {
	sc := tiny()
	sc.Phases[0].Checks = []Check{Serializable()}
	sc.Final = []Check{MinCommitted(1)}
	rec, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Passed {
		t.Fatal("misplaced checks passed")
	}
	joined := strings.Join(rec.Failures, "\n")
	if !strings.Contains(joined, "Scenario.Final") || !strings.Contains(joined, "Phase.Checks") {
		t.Fatalf("failures don't explain the misplacement:\n%s", joined)
	}
}

// TestRunValidationErrors: malformed scenarios error out of Run before any
// cluster is built.
func TestRunValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"no name", func(s *Scenario) { s.Name = "" }},
		{"no phases", func(s *Scenario) { s.Phases = nil }},
		{"no sites", func(s *Scenario) { s.Cluster.Sites = 0 }},
		{"nil workload", func(s *Scenario) { s.Phases[0].Workload = nil }},
		{"bad spec", func(s *Scenario) {
			s.Phases[0].Workload = func(int) workload.Spec {
				return workload.Spec{ArrivalPerSec: 10, Items: 8, ReadFrac: 2}
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := tiny()
			tc.mut(&sc)
			if _, err := Run(sc, Options{}); err == nil {
				t.Fatal("malformed scenario ran")
			}
		})
	}
}

// TestSmokeScenariosPass runs the CI smoke pair end to end — the same pair
// the scenario-smoke CI job runs via cmd/uccscenario. Skipped in -short (the
// crash scenario simulates ~17s of engine time).
func TestSmokeScenariosPass(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke scenarios skipped in -short")
	}
	for _, sc := range Smoke() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rec, err := Run(sc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !rec.Passed {
				t.Fatalf("smoke scenario %s failed:\n%s", sc.Name, strings.Join(rec.Failures, "\n"))
			}
		})
	}
}

// TestFaultClamping: fault offsets beyond the phase end are clamped into the
// phase, recorded at their actual fire time, and still applied.
func TestFaultClamping(t *testing.T) {
	sc := tiny()
	fired := false
	sc.Phases[0].Faults = []Fault{{
		Name:     "late",
		AtMicros: 10_000_000, // far past the 300ms phase
		Apply:    func(*cluster.Cluster) { fired = true },
	}}
	rec, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("clamped fault never applied")
	}
	fr := rec.Phases[0].Faults
	if len(fr) != 1 || fr[0].AtMicros > sc.Phases[0].DurationMicros {
		t.Fatalf("fault record not clamped into the phase: %+v", fr)
	}
}

// TestLiveRebalanceAcrossSeeds runs the online-rebalance scenario across the
// seed battery: the move of the hot set must preserve serializability,
// exactly-once commits, and final-map replica agreement under every arrival
// pattern, not just the library default.
func TestLiveRebalanceAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short")
	}
	sc, ok := ByName("live-rebalance")
	if !ok {
		t.Fatal("scenario live-rebalance missing")
	}
	for _, seed := range []int64{1, 2, 3, 7, 42, 1988} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rec, err := Run(sc, Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if !rec.Passed {
				t.Fatalf("seed %d failed:\n%s", seed, strings.Join(rec.Failures, "\n"))
			}
			// The move must actually have exercised the placement plane.
			var installs, moved uint64
			for _, p := range rec.Phases {
				installs += p.QM.MapInstalls
			}
			moved = rec.Phases[1].QM.ItemsGained
			if installs == 0 {
				t.Error("no map installs recorded — the move fault never published")
			}
			_ = moved // gained may be 0 if dst already held every copy; installs is the hard signal
		})
	}
}

// TestQuorumScenariosAcrossSeeds runs the two quorum scenarios across the
// seed battery: the failover and catch-up stories must hold under every
// arrival pattern, not just the library default.
func TestQuorumScenariosAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short")
	}
	for _, name := range []string{"quorum-failover", "replica-catchup"} {
		sc, ok := ByName(name)
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		for _, seed := range []int64{1, 2, 3, 7, 42, 1988} {
			sc, seed := sc, seed
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				rec, err := Run(sc, Options{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if !rec.Passed {
					t.Fatalf("seed %d failed:\n%s", seed, strings.Join(rec.Failures, "\n"))
				}
			})
		}
	}
}
