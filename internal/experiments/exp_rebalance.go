package experiments

import (
	"fmt"

	"ucc/internal/cluster"
	"ucc/internal/deadlock"
	"ucc/internal/engine"
	"ucc/internal/metrics"
	"ucc/internal/model"
	"ucc/internal/ri"
	"ucc/internal/workload"
)

// Exp15Point is one move fraction's measured outcome, exposed for the gate
// test so the acceptance thresholds read numbers, not rendered table cells.
type Exp15Point struct {
	Frac          float64 // fraction of items re-homed (0 = baseline, no move)
	MovedItems    int
	PreRate       float64 // commits/sec in the pre-move window
	MoveRate      float64 // commits/sec in the window containing the move
	PostRate      float64 // commits/sec after the move settles
	Committed     uint64
	Serializable  bool
	ReplicasAgree bool // against the FINAL map
	WrongEpoch    uint64
	MapInstalls   uint64
	TransferRecs  uint64
	TransferBytes uint64
}

// RebalanceSweep runs the online-rebalance experiment across move fractions:
// a hotspot workload (items 0..5 take 70% of accesses) runs while the first
// ceil(frac·items) items — the hot set included — move to one site mid-run.
// Virtual-time deterministic.
func RebalanceSweep(cfg RunConfig, fracs []float64) []Exp15Point {
	const items = 24
	horizon := int64(6_000_000)
	if cfg.Quick {
		horizon = 3_000_000
	}
	moveAt := horizon / 3

	var points []Exp15Point
	for _, frac := range fracs {
		cl, err := cluster.NewSim(cluster.Config{
			Sites:    3,
			Items:    items,
			Replicas: 2,
			Seed:     cfg.Seed,
			Record:   true,
			Latency:  engine.UniformLatency{MinMicros: 1_000, MaxMicros: 5_000, LocalMicros: 50},
			RI: ri.Options{
				PAIntervalMicros:     2_000,
				RestartDelayMicros:   20_000,
				DefaultComputeMicros: 1_000,
			},
			Detector:   deadlock.Options{PeriodMicros: 50_000, PersistRounds: 2},
			Durability: &cluster.Durability{SnapshotEvery: 200},
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		for i := 0; i < 3; i++ {
			if err := cl.AddDriver(model.SiteID(i), workload.Spec{
				ArrivalPerSec: 25,
				HorizonMicros: horizon,
				Items:         items,
				Size:          3,
				ReadFrac:      0.4,
				Share2PL:      1, ShareTO: 1, SharePA: 1,
				ComputeMicros: 1_000,
				Access:        workload.AccessHotspot,
				HotItems:      6,
				HotFrac:       0.7,
			}); err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
		}

		var moved []model.ItemID
		if frac > 0 {
			n := int(frac*items + 0.999999)
			for i := 0; i < n && i < items; i++ {
				moved = append(moved, model.ItemID(i))
			}
			if err := cl.MoveItems(moveAt, moved, 2); err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
		}

		// Windowed commit counts: the dip claim is a rate comparison across
		// equal-width windows (before / containing / after the move), not an
		// end-of-run total.
		cl.Start()
		cl.Eng.RunUntil(moveAt)
		pre := cl.RITotals().Committed
		cl.Eng.RunUntil(2 * moveAt)
		during := cl.RITotals().Committed - pre
		cl.Eng.RunUntil(horizon)
		post := cl.RITotals().Committed - pre - during
		res := cl.Finish()

		pm := cl.CurrentMap()
		agree := true
		for item := 0; item < items && agree; item++ {
			want := len(pm.Replicas(model.ItemID(item)))
			vals := cl.ReplicaValues(model.ItemID(item))
			if len(vals) != want {
				agree = false
			}
			for i := 1; i < len(vals); i++ {
				if vals[i] != vals[0] {
					agree = false
				}
			}
		}
		win := float64(moveAt) / 1e6
		qt := cl.QMTotals()
		points = append(points, Exp15Point{
			Frac:          frac,
			MovedItems:    len(moved),
			PreRate:       float64(pre) / win,
			MoveRate:      float64(during) / win,
			PostRate:      float64(post) / win,
			Committed:     res.Summary.TotalCommitted(),
			Serializable:  res.Serializability != nil && res.Serializability.Serializable,
			ReplicasAgree: agree,
			WrongEpoch:    qt.WrongEpoch,
			MapInstalls:   qt.MapInstalls,
			TransferRecs:  qt.TransferApplied,
			TransferBytes: qt.TransferBytes,
		})
	}
	return points
}

// Exp15 measures online rebalancing under load, beyond the paper's static
// placement: moving a quarter to half of the items — the hot set included —
// to one site mid-run must keep committed throughput flowing (the refusal
// window while transferred state is in flight is the only allowed dip), keep
// every execution conflict serializable across the ownership flip, and leave
// replicas agreeing under the new map.
func Exp15(cfg RunConfig) Result {
	fracs := []float64{0, 0.25, 0.5}
	if cfg.Quick {
		fracs = []float64{0, 0.25}
	}
	points := RebalanceSweep(cfg, fracs)

	dipTable := &metrics.Table{Header: []string{
		"moved frac", "items", "pre txn/s", "move-window txn/s", "post txn/s", "retained", "serializable", "replicas agree",
	}}
	planeTable := &metrics.Table{Header: []string{
		"moved frac", "wrong-epoch NAKs", "map installs", "transfer recs applied", "transfer bytes",
	}}
	var notes []string
	for _, p := range points {
		label := fmt.Sprintf("%.0f%%", p.Frac*100)
		if p.Frac == 0 {
			label = "none"
		}
		retained := "-"
		if p.PreRate > 0 {
			retained = fmt.Sprintf("%.0f%%", 100*p.MoveRate/p.PreRate)
		}
		dipTable.AddRow(label, fmt.Sprint(p.MovedItems),
			metrics.F(p.PreRate), metrics.F(p.MoveRate), metrics.F(p.PostRate),
			retained, yesNo(p.Serializable), yesNo(p.ReplicasAgree))
		planeTable.AddRow(label, fmt.Sprint(p.WrongEpoch), fmt.Sprint(p.MapInstalls),
			fmt.Sprint(p.TransferRecs), fmt.Sprint(p.TransferBytes))
		if !p.Serializable || !p.ReplicasAgree {
			notes = append(notes, fmt.Sprintf("VIOLATION at moved frac %s", label))
		}
	}

	notes = append(notes,
		"moved frac 'none' is the no-rebalance baseline; its move-window column is the same-width second window",
		"retained = move-window rate / pre-move rate: the online claim is that this stays well above zero while the hot set changes owner",
		"wrong-epoch NAKs count operations a queue manager refused because the issuer routed by a stale map — each carries the new map, so one NAK repairs its issuer",
		"transfer recs applied counts WAL records streamed from old owners into gained copies through the snapshot-transfer plane (catch-up plane pointed at a rebalance)",
		"replica agreement is judged against the FINAL partition map — the old owners' leftover state is not a copy any more")
	return Result{
		ID:     "EXP-15",
		Title:  "Online rebalance: the hot set changes owner under load",
		Claim:  "beyond the paper: a versioned partition map lets a quarter to half of the items — the hot set included — move to a new owner mid-run; commits keep flowing through the flip (bounded dip, never a stall), every execution stays conflict serializable, and replicas agree under the new map after snapshot transfer",
		Tables: []*metrics.Table{dipTable, planeTable},
		Notes:  notes,
	}
}
