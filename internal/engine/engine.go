package engine

import (
	"fmt"
	"math/rand"

	"ucc/internal/model"
)

// ActorKind partitions the address space by role.
type ActorKind uint8

const (
	// KindRI addresses the request issuer at a user site.
	KindRI ActorKind = iota
	// KindQM addresses the queue-manager host at a data site (one actor per
	// site manages all of that site's per-copy data queues).
	KindQM
	// KindDetector addresses the deadlock-detection coordinator.
	KindDetector
	// KindDriver addresses a workload driver.
	KindDriver
	// KindCollector addresses the metrics collector.
	KindCollector
)

func (k ActorKind) String() string {
	switch k {
	case KindRI:
		return "ri"
	case KindQM:
		return "qm"
	case KindDetector:
		return "det"
	case KindDriver:
		return "drv"
	case KindCollector:
		return "col"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Addr names an actor: a role plus a site/index. Sharded roles (the queue
// manager) additionally carry a shard index; the zero shard is the site's
// control shard and doubles as the whole-site address for unsharded roles.
type Addr struct {
	Kind ActorKind
	ID   model.SiteID
	// Shard selects a sub-actor within a sharded role (queue-manager shards).
	// Zero for every unsharded role and for shard 0 itself, so pre-sharding
	// addresses compare equal to their shard-0 successors.
	Shard uint8
}

func (a Addr) String() string {
	if a.Shard != 0 {
		return fmt.Sprintf("%s@%d/%d", a.Kind, a.ID, a.Shard)
	}
	return fmt.Sprintf("%s@%d", a.Kind, a.ID)
}

// RIAddr returns the address of site s's request issuer.
func RIAddr(s model.SiteID) Addr { return Addr{Kind: KindRI, ID: s} }

// QMAddr returns the address of site s's queue-manager control shard (shard
// 0): the destination for whole-site traffic — crash/recovery, stats ticks,
// deadlock probes — and for all data traffic when the site is unsharded.
func QMAddr(s model.SiteID) Addr { return Addr{Kind: KindQM, ID: s} }

// QMShardAddr returns the address of one queue-manager shard at site s. Each
// shard gets its own mailbox (and, on the real-time runtime, its own
// goroutine), so operations on items hashed to different shards execute in
// parallel. Shard 0 is identical to QMAddr(s).
func QMShardAddr(s model.SiteID, shard int) Addr {
	return Addr{Kind: KindQM, ID: s, Shard: uint8(shard)}
}

// DetectorAddr is the deadlock coordinator's address.
func DetectorAddr() Addr { return Addr{Kind: KindDetector} }

// DriverAddr returns the address of site s's workload driver.
func DriverAddr(s model.SiteID) Addr { return Addr{Kind: KindDriver, ID: s} }

// CollectorAddr is the metrics collector's address.
func CollectorAddr() Addr { return Addr{Kind: KindCollector} }

// Context is the capability surface an actor sees while handling a message.
// Implementations are not safe for use outside the handler invocation.
type Context interface {
	// NowMicros is the engine's current time in microseconds (virtual time
	// under the simulator, wall time under the runtime).
	NowMicros() int64
	// Self is the handling actor's own address.
	Self() Addr
	// Send delivers msg to the actor at 'to' after the engine's network
	// latency model. Delivery is FIFO per (sender, receiver) pair.
	Send(to Addr, msg model.Message)
	// SetTimer delivers msg back to this actor after delayMicros (no network
	// latency involved).
	SetTimer(delayMicros int64, msg model.Message)
	// Rand is a deterministic per-actor random source under the simulator.
	Rand() *rand.Rand
}

// Actor is a message-driven protocol state machine. OnMessage must not
// block, spawn goroutines, or retain ctx beyond the call.
type Actor interface {
	OnMessage(ctx Context, from Addr, msg model.Message)
}

// LatencyModel computes the one-way network delay for a message. The model
// must be deterministic given the rng stream it is handed.
type LatencyModel interface {
	// DelayMicros returns the delivery delay from src to dst.
	DelayMicros(src, dst Addr, rng *rand.Rand) int64
}

// FixedLatency delivers every remote message after a constant delay; actors
// co-located at the same site address pay the (smaller) local delay.
type FixedLatency struct {
	// RemoteMicros is the site-to-site one-way delay.
	RemoteMicros int64
	// LocalMicros is the same-site delay (default 0).
	LocalMicros int64
}

// DelayMicros implements LatencyModel.
func (f FixedLatency) DelayMicros(src, dst Addr, _ *rand.Rand) int64 {
	if src.ID == dst.ID {
		return f.LocalMicros
	}
	return f.RemoteMicros
}

// UniformLatency draws the remote delay uniformly from [Min,Max] microseconds.
type UniformLatency struct {
	MinMicros, MaxMicros int64
	LocalMicros          int64
}

// DelayMicros implements LatencyModel.
func (u UniformLatency) DelayMicros(src, dst Addr, rng *rand.Rand) int64 {
	if src.ID == dst.ID {
		return u.LocalMicros
	}
	if u.MaxMicros <= u.MinMicros {
		return u.MinMicros
	}
	return u.MinMicros + rng.Int63n(u.MaxMicros-u.MinMicros+1)
}

// ExpLatency draws the remote delay from MeanMicros·Exp(1), truncated at
// 10× the mean, modelling a queueing network hop.
type ExpLatency struct {
	MeanMicros  int64
	LocalMicros int64
}

// DelayMicros implements LatencyModel.
func (e ExpLatency) DelayMicros(src, dst Addr, rng *rand.Rand) int64 {
	if src.ID == dst.ID {
		return e.LocalMicros
	}
	d := int64(rng.ExpFloat64() * float64(e.MeanMicros))
	if max := 10 * e.MeanMicros; d > max {
		d = max
	}
	return d
}
