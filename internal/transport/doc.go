// Package transport carries engine envelopes between processes over TCP,
// turning the in-process actor system into the real distributed deployment
// (cmd/uccnode + cmd/uccclient).
//
// A Node binds one process's runtime to a static Topology (actor address →
// peer name → TCP address). Outbound envelopes are enqueued per peer and
// drained by one writer goroutine per peer, which gob-encodes the whole
// backlog through a persistent pipelined encoder into a buffered writer and
// flushes once per drained batch (plus at a byte threshold mid-batch) — one
// framed write instead of one syscall per envelope. Batching is purely
// load-adaptive: an idle connection flushes each lone envelope immediately;
// a busy one coalesces everything that queued during the previous flush.
//
// Wire format (version 2): every connection starts with a single version
// byte, then a gob stream of WireEnvelope values (addresses carry the
// queue-manager shard index). Readers drop connections with the wrong
// version byte rather than decode a misframed stream.
//
// Failure model: messages are best-effort with one retry. A batch that
// fails mid-write retires its connection — socket, buffered writer, and
// encoder are all discarded together, so a half-written frame cannot leak
// into a replacement connection's stream — and is re-sent whole on a fresh
// dial exactly once. A genuinely down peer drops traffic (the protocol
// tolerates that as a crashed site); a bounced peer may therefore see
// duplicates from the retried batch, which the protocol's attempt tagging
// absorbs. Per-peer FIFO is preserved end to end: one outbox, one writer,
// retry-before-next-batch.
package transport
