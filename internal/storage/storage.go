// Package storage implements the per-site data store: one versioned value
// per physical copy D_ij. The paper's model (§2) keeps a log per physical
// item recording the implementation order of operations; the log itself
// lives in internal/history (it is an observability/correctness artifact),
// while this package holds the current database state that grants and
// releases read and write.
package storage

import (
	"fmt"
	"sort"

	"ucc/internal/model"
)

// Copy is the stored state of one physical data item.
type Copy struct {
	ID model.CopyID
	// Value is the current value.
	Value int64
	// Version counts implemented writes (0 = initial value).
	Version uint64
	// Writer is the transaction whose write produced Version (zero TxnID for
	// the initial value).
	Writer model.TxnID
}

// Journal is the durability hook: when attached, every implemented Write is
// reported before the Store returns, so a write-ahead log (internal/wal) can
// journal it. Recovery-path installs (Restore, Apply) bypass the journal —
// they re-apply history that is already durable.
type Journal interface {
	RecordWrite(item model.ItemID, txn model.TxnID, value int64, version uint64)
}

// Store holds every physical copy resident at one data site.
type Store struct {
	site    model.SiteID
	copies  map[model.ItemID]*Copy
	journal Journal
}

// NewStore creates an empty store for a site.
func NewStore(site model.SiteID) *Store {
	return &Store{site: site, copies: map[model.ItemID]*Copy{}}
}

// Site returns the owning site.
func (s *Store) Site() model.SiteID { return s.site }

// SetJournal attaches (or detaches, with nil) the durability hook.
func (s *Store) SetJournal(j Journal) { s.journal = j }

// Create places a physical copy of item at this site with an initial value.
func (s *Store) Create(item model.ItemID, initial int64) {
	if _, dup := s.copies[item]; dup {
		panic(fmt.Sprintf("storage: duplicate copy of %v at site %d", item, s.site))
	}
	s.copies[item] = &Copy{ID: model.CopyID{Item: item, Site: s.site}, Value: initial}
}

// Has reports whether this site stores a copy of item.
func (s *Store) Has(item model.ItemID) bool {
	_, ok := s.copies[item]
	return ok
}

// Read returns the current value and version of item's copy.
func (s *Store) Read(item model.ItemID) (value int64, version uint64) {
	c := s.mustGet(item)
	return c.Value, c.Version
}

// Write installs a new value for item's copy on behalf of txn and returns
// the new version.
func (s *Store) Write(item model.ItemID, txn model.TxnID, value int64) uint64 {
	c := s.mustGet(item)
	c.Value = value
	c.Version++
	c.Writer = txn
	if s.journal != nil {
		s.journal.RecordWrite(item, txn, value, c.Version)
	}
	return c.Version
}

// Items returns the item ids stored here in ascending order.
func (s *Store) Items() []model.ItemID {
	out := make([]model.ItemID, 0, len(s.copies))
	for it := range s.copies {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of copies stored here.
func (s *Store) Len() int { return len(s.copies) }

// Copies returns a value snapshot of every physical copy, ascending by item
// (the input to a durability snapshot).
func (s *Store) Copies() []Copy {
	out := make([]Copy, 0, len(s.copies))
	for _, item := range s.Items() {
		out = append(out, *s.copies[item])
	}
	return out
}

// Wipe drops every copy: the volatile-state loss of a site crash. The store
// keeps its identity (queue managers hold a pointer) and is rebuilt through
// Restore/Apply during recovery.
func (s *Store) Wipe() {
	s.copies = map[model.ItemID]*Copy{}
}

// Restore installs a copy verbatim from a durability snapshot, bypassing the
// journal.
func (s *Store) Restore(c Copy) {
	cc := c
	s.copies[c.ID.Item] = &cc
}

// Apply re-installs one replayed journaled write verbatim (exact version,
// no journal hook). The copy must exist — every copy is present in the
// snapshot recovery starts from.
func (s *Store) Apply(item model.ItemID, txn model.TxnID, value int64, version uint64) {
	c := s.mustGet(item)
	c.Value = value
	c.Version = version
	c.Writer = txn
}

func (s *Store) mustGet(item model.ItemID) *Copy {
	c := s.copies[item]
	if c == nil {
		panic(fmt.Sprintf("storage: site %d has no copy of %v", s.site, item))
	}
	return c
}

// Catalog maps logical items to the sites holding their physical copies —
// the system's (static) directory, built once at cluster start.
type Catalog struct {
	sites map[model.ItemID][]model.SiteID
}

// NewCatalog builds a catalog placing each of items 0..items-1 on
// replicas consecutive data sites chosen round-robin from dataSites.
func NewCatalog(items int, dataSites []model.SiteID, replicas int) *Catalog {
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(dataSites) {
		replicas = len(dataSites)
	}
	c := &Catalog{sites: map[model.ItemID][]model.SiteID{}}
	for i := 0; i < items; i++ {
		var at []model.SiteID
		for r := 0; r < replicas; r++ {
			at = append(at, dataSites[(i+r)%len(dataSites)])
		}
		c.sites[model.ItemID(i)] = at
	}
	return c
}

// Replicas returns the sites holding copies of item (primary first).
func (c *Catalog) Replicas(item model.ItemID) []model.SiteID {
	s := c.sites[item]
	if len(s) == 0 {
		panic(fmt.Sprintf("storage: no replicas for %v", item))
	}
	return s
}

// Primary returns the first replica site for item; read-one/write-all reads
// go here (deterministically, so simulations are reproducible).
func (c *Catalog) Primary(item model.ItemID) model.SiteID { return c.sites[item][0] }

// Items returns the number of logical items.
func (c *Catalog) Items() int { return len(c.sites) }

// CopiesAt returns the items that have a copy at the given site.
func (c *Catalog) CopiesAt(site model.SiteID) []model.ItemID {
	var out []model.ItemID
	for it, sites := range c.sites {
		for _, s := range sites {
			if s == site {
				out = append(out, it)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
