package workload

import (
	"fmt"

	"ucc/internal/engine"
	"ucc/internal/model"
)

// Phase is one segment of a phased workload: the driver runs Spec's arrival
// process for DurationMicros of engine time, then switches to the next
// phase's spec at the boundary. Phases are what make workload shape *data*
// (the scenario harness's diurnal curves, flash-crowd spikes, and mix shifts
// are all just phase lists) instead of per-experiment driver code.
type Phase struct {
	// Name labels the phase in reports ("ramp", "peak", "trough").
	Name string
	// DurationMicros is the phase length in engine microseconds. Zero or
	// negative is a validation error: a zero-length phase is always a
	// data-entry mistake (its spec would silently never generate anything).
	DurationMicros int64
	// Spec is the workload during this phase. Phase specs are open-loop
	// only: ClosedLoop, HorizonMicros, and MaxTxns are rejected — the phase
	// boundary is the horizon, and a closed loop has no arrival process to
	// re-pace at a boundary.
	Spec Spec
}

// ValidatePhases validates a phase list for a phased driver.
func ValidatePhases(phases []Phase) error {
	if len(phases) == 0 {
		return fmt.Errorf("workload: phased driver needs at least one phase")
	}
	for i := range phases {
		p := &phases[i]
		if p.DurationMicros <= 0 {
			return fmt.Errorf("workload: phase %d (%q) has non-positive duration %d", i, p.Name, p.DurationMicros)
		}
		if p.Spec.ClosedLoop != 0 {
			return fmt.Errorf("workload: phase %d (%q) sets ClosedLoop; phases are open-loop only", i, p.Name)
		}
		if p.Spec.HorizonMicros != 0 {
			return fmt.Errorf("workload: phase %d (%q) sets HorizonMicros; the phase duration is the horizon", i, p.Name)
		}
		if p.Spec.MaxTxns != 0 {
			return fmt.Errorf("workload: phase %d (%q) sets MaxTxns; bound load with ArrivalPerSec and duration", i, p.Name)
		}
		if err := p.Spec.Validate(); err != nil {
			return fmt.Errorf("workload: phase %d (%q): %w", i, p.Name, err)
		}
	}
	return nil
}

// NewPhasedDriver builds a driver that walks the phase list in order,
// starting phase 0 at engine time zero. After the last phase ends the
// driver generates nothing more (the run's settle window drains in-flight
// work). Phase boundaries preserve the Poisson property: a drawn gap that
// would cross the boundary is discarded and the arrival process restarts at
// the boundary with the new phase's rate (exponential gaps are memoryless,
// so the clamp does not bias inter-arrival times).
func NewPhasedDriver(site model.SiteID, phases []Phase) (*Driver, error) {
	if err := ValidatePhases(phases); err != nil {
		return nil, err
	}
	d := &Driver{site: site, spec: phases[0].Spec, phases: phases}
	d.phaseEnd = phases[0].DurationMicros
	return d, nil
}

// Driver tick tags for phased mode: an arrival tick launches a transaction
// and reschedules; a boundary wake only reschedules (drawing the first gap
// of the new phase at the new rate).
const (
	tickArrival uint64 = 0
	tickWake    uint64 = 1
)

// onPhasedTick advances the phase clock and runs one step of the arrival
// process. Called only when d.phases is non-nil.
func (d *Driver) onPhasedTick(ctx engine.Context, tick model.TickMsg) {
	now := ctx.NowMicros()
	d.advancePhase(now)
	if d.stopped || d.phaseIdx >= len(d.phases) {
		return
	}
	if tick.Tag == tickArrival {
		d.launchOne(ctx)
	}
	// Schedule the next arrival, clamped at the phase boundary: a gap that
	// crosses it becomes a wake tick at the boundary, where the new rate
	// takes over.
	gap := int64(ctx.Rand().ExpFloat64() * 1e6 / d.spec.ArrivalPerSec)
	if gap < 1 {
		gap = 1
	}
	if now+gap >= d.phaseEnd {
		delay := d.phaseEnd - now
		if delay < 1 {
			delay = 1
		}
		ctx.SetTimer(delay, model.TickMsg{Tag: tickWake})
		return
	}
	ctx.SetTimer(gap, model.TickMsg{Tag: tickArrival})
}

// advancePhase switches specs while now has reached the current phase's end.
func (d *Driver) advancePhase(now int64) {
	for d.phaseIdx < len(d.phases) && now >= d.phaseEnd {
		d.phaseIdx++
		if d.phaseIdx >= len(d.phases) {
			return
		}
		d.spec = d.phases[d.phaseIdx].Spec
		d.phaseEnd += d.phases[d.phaseIdx].DurationMicros
		// The Zipf sampler is parameterized by the phase's Items/ZipfS;
		// rebuild it lazily for the new spec.
		d.zipf = nil
	}
}

// PhaseIndex reports which phase the driver is currently in (== len(phases)
// after the last phase ends). Observability for the scenario runner.
func (d *Driver) PhaseIndex() int { return d.phaseIdx }
