package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"ucc/internal/engine"
	"ucc/internal/model"
)

type event struct {
	at  int64 // virtual microseconds
	seq uint64
	env engine.Envelope
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is the virtual-time event engine. Not safe for concurrent use; all
// actors run on the caller's goroutine inside Run/Step.
type Engine struct {
	latency  engine.LatencyModel
	now      int64
	seq      uint64
	events   eventHeap
	actors   map[engine.Addr]engine.Actor
	ctxs     map[engine.Addr]*simContext
	lastSend map[pair]int64
	// free is the event freelist: the engine is single-threaded, so delivered
	// events recycle through a plain slice instead of a sync.Pool — one event
	// allocation per in-flight high-water mark rather than one per send.
	free []*event
	// Delivered counts delivered envelopes (a cheap progress/cost metric).
	Delivered uint64
}

type pair struct{ from, to engine.Addr }

// New builds a virtual-time engine with the given latency model.
func New(latency engine.LatencyModel) *Engine {
	if latency == nil {
		latency = engine.FixedLatency{}
	}
	return &Engine{
		latency:  latency,
		actors:   map[engine.Addr]engine.Actor{},
		ctxs:     map[engine.Addr]*simContext{},
		lastSend: map[pair]int64{},
	}
}

// Register adds an actor. Each actor gets its own seeded random stream so a
// run is reproducible regardless of registration order.
func (e *Engine) Register(addr engine.Addr, a engine.Actor, seed int64) {
	if _, dup := e.actors[addr]; dup {
		panic(fmt.Sprintf("sim: duplicate actor %v", addr))
	}
	e.actors[addr] = a
	e.ctxs[addr] = &simContext{
		eng:  e,
		self: addr,
		rng:  rand.New(rand.NewSource(seed ^ int64(addr.Kind)<<40 ^ int64(addr.ID)<<4 ^ 0x5bd1e995)),
	}
}

// NowMicros returns the current virtual time.
func (e *Engine) NowMicros() int64 { return e.now }

// SetLatency replaces the latency model for every send scheduled after this
// call — the fault hook behind asymmetric-latency and degraded-network
// scenarios. The engine is single-threaded, so calling between Step/RunUntil
// invocations is always safe; messages already in flight keep the delay they
// were scheduled with, exactly as a real link change would leave packets
// already on the wire untouched. Per-pair FIFO clamping still applies, so a
// latency drop cannot reorder a pair's messages.
func (e *Engine) SetLatency(m engine.LatencyModel) {
	if m == nil {
		m = engine.FixedLatency{}
	}
	e.latency = m
}

// Post injects a message from the outside world (e.g. the harness submitting
// the first timer) at the current virtual time.
func (e *Engine) Post(to engine.Addr, msg model.Message) {
	e.schedule(e.now, engine.Envelope{From: to, To: to, Msg: msg})
}

// PostAfter injects a message delayMicros into the virtual future (staggered
// workload submission from the harness).
func (e *Engine) PostAfter(delayMicros int64, to engine.Addr, msg model.Message) {
	if delayMicros < 0 {
		delayMicros = 0
	}
	e.schedule(e.now+delayMicros, engine.Envelope{From: to, To: to, Msg: msg})
}

func (e *Engine) schedule(at int64, env engine.Envelope) {
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = new(event)
	}
	*ev = event{at: at, seq: e.seq, env: env}
	heap.Push(&e.events, ev)
}

// Step delivers the next event. It reports false when the event heap is
// empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	if ev.at > e.now {
		e.now = ev.at
	}
	a := e.actors[ev.env.To]
	msg := ev.env.Msg
	from, to := ev.env.From, ev.env.To
	*ev = event{}
	e.free = append(e.free, ev)
	if a == nil {
		model.RecycleMessage(msg) // dropped: unknown destination
		return true
	}
	e.Delivered++
	a.OnMessage(e.ctxs[to], from, msg)
	// Ownership transferred at Send: pooled messages recycle once the
	// receiving actor returns (retainers copy via model.UnpoolMessage).
	model.RecycleMessage(msg)
	return true
}

// RunUntil processes events until the virtual clock would exceed tMicros or
// the system quiesces. The clock is left at min(tMicros, last event time).
func (e *Engine) RunUntil(tMicros int64) {
	for len(e.events) > 0 && e.events[0].at <= tMicros {
		e.Step()
	}
	if e.now < tMicros {
		e.now = tMicros
	}
}

// Drain processes every remaining event. Use after the workload drivers have
// stopped to let in-flight transactions finish. maxEvents bounds runaway
// protocols; Drain panics if exceeded (a liveness-bug canary for tests).
func (e *Engine) Drain(maxEvents uint64) {
	var n uint64
	for e.Step() {
		n++
		if maxEvents > 0 && n > maxEvents {
			panic("sim: Drain exceeded maxEvents; system is not quiescing")
		}
	}
}

// Pending reports the number of undelivered events.
func (e *Engine) Pending() int { return len(e.events) }

type simContext struct {
	eng  *Engine
	self engine.Addr
	rng  *rand.Rand
}

func (c *simContext) NowMicros() int64 { return c.eng.now }
func (c *simContext) Self() engine.Addr {
	return c.self
}
func (c *simContext) Rand() *rand.Rand { return c.rng }

func (c *simContext) Send(to engine.Addr, msg model.Message) {
	delay := c.eng.latency.DelayMicros(c.self, to, c.rng)
	at := c.eng.now + delay
	// Per-pair FIFO, mirroring the TCP transport.
	key := pair{c.self, to}
	if prev, ok := c.eng.lastSend[key]; ok && at < prev {
		at = prev
	}
	c.eng.lastSend[key] = at
	c.eng.schedule(at, engine.Envelope{From: c.self, To: to, Msg: msg})
}

func (c *simContext) SetTimer(delayMicros int64, msg model.Message) {
	if delayMicros < 0 {
		delayMicros = 0
	}
	c.eng.schedule(c.eng.now+delayMicros, engine.Envelope{From: c.self, To: c.self, Msg: msg})
}
