package ri

import (
	"math/rand"
	"testing"

	"ucc/internal/engine"
	"ucc/internal/history"
	"ucc/internal/model"
	"ucc/internal/placement"
)

// fakeCtx captures sends and timers so tests can play the QM side.
type fakeCtx struct {
	now    int64
	sent   []engine.Envelope
	timers []engine.Envelope
	delays []int64 // SetTimer delays, parallel to timers
	rng    *rand.Rand
}

func newCtx() *fakeCtx { return &fakeCtx{rng: rand.New(rand.NewSource(2))} }

func (c *fakeCtx) NowMicros() int64  { return c.now }
func (c *fakeCtx) Self() engine.Addr { return engine.RIAddr(0) }
func (c *fakeCtx) Rand() *rand.Rand  { return c.rng }
func (c *fakeCtx) Send(to engine.Addr, msg model.Message) {
	// The fake context is its own delivery layer: capture a value copy so the
	// take[M] matchers see value forms, and recycle the pooled pointer right
	// away (ownership transfers at Send; the issuer never touches it again).
	c.sent = append(c.sent, engine.Envelope{To: to, Msg: model.UnpoolMessage(msg)})
	model.RecycleMessage(msg)
}
func (c *fakeCtx) SetTimer(d int64, msg model.Message) {
	c.timers = append(c.timers, engine.Envelope{To: c.Self(), Msg: msg})
	c.delays = append(c.delays, d)
}

func take[M model.Message](c *fakeCtx) []M {
	var out []M
	var rest []engine.Envelope
	for _, e := range c.sent {
		if m, ok := e.Msg.(M); ok {
			out = append(out, m)
		} else {
			rest = append(rest, e)
		}
	}
	c.sent = rest
	return out
}

// fireTimers delivers all captured timer messages back to the issuer.
func fireTimers(ri *Issuer, c *fakeCtx) {
	timers := c.timers
	c.timers = nil
	c.delays = nil
	for _, e := range timers {
		ri.OnMessage(c, e.To, e.Msg)
	}
}

func testIssuer(items, sites, replicas int) (*Issuer, *fakeCtx) {
	siteIDs := make([]model.SiteID, sites)
	for i := range siteIDs {
		siteIDs[i] = model.SiteID(i)
	}
	pm := placement.Build(placement.RoundRobin, items, siteIDs, replicas)
	rec := history.NewRecorder()
	iss := New(0, pm, rec, Options{
		PAIntervalMicros:     10,
		RestartDelayMicros:   100,
		DefaultComputeMicros: 50,
	}, nil)
	return iss, newCtx()
}

func submit(iss *Issuer, c *fakeCtx, p model.Protocol, reads, writes []model.ItemID) *model.Txn {
	t := model.NewTxn(model.TxnID{Site: 0, Seq: 99}, p, reads, writes, 50)
	iss.OnMessage(c, engine.DriverAddr(0), model.SubmitTxnMsg{Txn: t})
	return t
}

func grant(iss *Issuer, c *fakeCtx, req model.RequestMsg, lock model.LockKind, pre bool) {
	iss.OnMessage(c, engine.QMAddr(req.Copy.Site), model.GrantMsg{
		Txn: req.Txn, Attempt: req.Attempt, Copy: req.Copy,
		Lock: lock, PreScheduled: pre, TS: req.TS, Value: 7,
	})
}

func TestRequestFanoutROWA(t *testing.T) {
	iss, c := testIssuer(8, 4, 2)
	submit(iss, c, model.TwoPL, []model.ItemID{0}, []model.ItemID{1})
	reqs := take[model.RequestMsg](c)
	// 1 read (primary only) + 2 write copies.
	if len(reqs) != 3 {
		t.Fatalf("requests = %d want 3: %+v", len(reqs), reqs)
	}
	var reads, writes int
	for _, r := range reqs {
		if r.Kind == model.OpRead {
			reads++
			if r.TS != model.NoTimestamp {
				t.Fatal("2PL request must carry NoTimestamp")
			}
		} else {
			writes++
		}
	}
	if reads != 1 || writes != 2 {
		t.Fatalf("reads=%d writes=%d", reads, writes)
	}
}

func TestTwoPLLifecycle(t *testing.T) {
	iss, c := testIssuer(8, 2, 1)
	submit(iss, c, model.TwoPL, []model.ItemID{0}, []model.ItemID{1})
	reqs := take[model.RequestMsg](c)
	for _, r := range reqs {
		lock := model.RL
		if r.Kind == model.OpWrite {
			lock = model.WL
		}
		grant(iss, c, r, lock, false)
	}
	fireTimers(iss, c) // compute done
	rels := take[model.ReleaseMsg](c)
	if len(rels) != 2 {
		t.Fatalf("releases = %d want 2", len(rels))
	}
	for _, r := range rels {
		if r.ToSemi {
			t.Fatal("2PL must not convert to semi-locks")
		}
	}
	dones := take[model.TxnDoneMsg](c)
	if len(dones) != 1 || dones[0].Outcome != model.OutcomeCommitted {
		t.Fatalf("done = %+v", dones)
	}
	if iss.Snapshot().Active != 0 {
		t.Fatal("state not cleaned up")
	}
}

func TestWriteValueSpecs(t *testing.T) {
	iss, c := testIssuer(8, 2, 1)
	tx := model.NewTxn(model.TxnID{Site: 0, Seq: 1}, model.TwoPL,
		nil, []model.ItemID{2, 3}, 50)
	tx.Specs = []model.WriteSpec{
		{Item: 2, UseSource: true, Source: 2, AddConst: -5}, // pre-image − 5
		{Item: 3, AddConst: 42},                             // constant
	}
	iss.OnMessage(c, engine.DriverAddr(0), model.SubmitTxnMsg{Txn: tx})
	for _, r := range take[model.RequestMsg](c) {
		grant(iss, c, r, model.WL, false) // pre-image value 7
	}
	fireTimers(iss, c)
	for _, r := range take[model.ReleaseMsg](c) {
		switch r.Copy.Item {
		case 2:
			if !r.HasWrite || r.Value != 2 { // 7−5
				t.Fatalf("item 2 release = %+v", r)
			}
		case 3:
			if !r.HasWrite || r.Value != 42 {
				t.Fatalf("item 3 release = %+v", r)
			}
		}
	}
}

func TestTORejectRestartsWithBiggerTS(t *testing.T) {
	iss, c := testIssuer(8, 2, 1)
	submit(iss, c, model.TO, []model.ItemID{0}, []model.ItemID{1})
	reqs := take[model.RequestMsg](c)
	origTS := reqs[0].TS
	// One queue rejects with a big threshold.
	iss.OnMessage(c, engine.QMAddr(reqs[0].Copy.Site), model.RejectMsg{
		Txn: reqs[0].Txn, Attempt: reqs[0].Attempt, Copy: reqs[0].Copy, Threshold: origTS + 1000,
	})
	aborts := take[model.AbortMsg](c)
	if len(aborts) != 1 { // the other copy is withdrawn
		t.Fatalf("aborts = %d want 1", len(aborts))
	}
	dones := take[model.TxnDoneMsg](c)
	if len(dones) != 1 || dones[0].Outcome != model.OutcomeRejected {
		t.Fatalf("done = %+v", dones)
	}
	fireTimers(iss, c) // restart timer
	retry := take[model.RequestMsg](c)
	if len(retry) != 2 {
		t.Fatalf("retry requests = %d", len(retry))
	}
	if retry[0].TS <= origTS+1000 {
		t.Fatalf("retry TS %d not past threshold %d", retry[0].TS, origTS+1000)
	}
	if retry[0].Attempt != 1 {
		t.Fatalf("attempt = %d want 1", retry[0].Attempt)
	}
}

func TestTOSemiLockLifecycle(t *testing.T) {
	iss, c := testIssuer(8, 2, 1)
	tx := submit(iss, c, model.TO, []model.ItemID{0}, []model.ItemID{1})
	reqs := take[model.RequestMsg](c)
	// Read grant is pre-scheduled; write grant normal.
	for _, r := range reqs {
		if r.Kind == model.OpRead {
			grant(iss, c, r, model.SRL, true)
		} else {
			grant(iss, c, r, model.WL, false)
		}
	}
	fireTimers(iss, c) // compute done → conversion round
	rels := take[model.ReleaseMsg](c)
	if len(rels) != 2 {
		t.Fatalf("conversion releases = %d", len(rels))
	}
	for _, r := range rels {
		if !r.ToSemi {
			t.Fatalf("expected ToSemi conversion: %+v", r)
		}
	}
	// Executed already (commit reported), but still awaiting normal grants.
	dones := take[model.TxnDoneMsg](c)
	if len(dones) != 1 || dones[0].Outcome != model.OutcomeCommitted {
		t.Fatalf("executed commit missing: %+v", dones)
	}
	if iss.Snapshot().Active != 1 {
		t.Fatal("transaction must remain active until normal grants arrive")
	}
	// Normal grant for the pre-scheduled read arrives → final releases.
	var readCopy model.CopyID
	for _, r := range reqs {
		if r.Kind == model.OpRead {
			readCopy = r.Copy
		}
	}
	iss.OnMessage(c, engine.QMAddr(readCopy.Site), model.NormalGrantMsg{
		Txn: tx.ID, Attempt: 0, Copy: readCopy,
	})
	final := take[model.ReleaseMsg](c)
	if len(final) != 2 {
		t.Fatalf("final releases = %d", len(final))
	}
	for _, r := range final {
		if r.ToSemi || r.HasWrite {
			t.Fatalf("final release must be plain: %+v", r)
		}
	}
	if iss.Snapshot().Active != 0 {
		t.Fatal("transaction not finished")
	}
}

func TestPANegotiation(t *testing.T) {
	iss, c := testIssuer(8, 2, 1)
	tx := submit(iss, c, model.PA, nil, []model.ItemID{0, 1})
	reqs := take[model.RequestMsg](c)
	if len(reqs) != 2 {
		t.Fatalf("requests = %d", len(reqs))
	}
	// Copy 0 grants provisionally; copy 1 backs off to TS+40.
	grant(iss, c, reqs[0], model.WL, false)
	iss.OnMessage(c, engine.QMAddr(reqs[1].Copy.Site), model.BackoffMsg{
		Txn: tx.ID, Attempt: 0, Copy: reqs[1].Copy, NewTS: reqs[1].TS + 40,
	})
	// All queues responded → FinalTS broadcast to both copies.
	finals := take[model.FinalTSMsg](c)
	if len(finals) != 2 {
		t.Fatalf("finalTS msgs = %d want 2", len(finals))
	}
	final := finals[0].TS
	if final != reqs[1].TS+40 {
		t.Fatalf("final TS = %d want %d", final, reqs[1].TS+40)
	}
	// A stale grant against the original timestamp must be ignored.
	grant(iss, c, reqs[0], model.WL, false)
	if got := take[model.ReleaseMsg](c); len(got) != 0 {
		t.Fatal("executed on a stale provisional grant")
	}
	// Fresh grants stamped with the final timestamp complete the txn.
	for _, f := range finals {
		iss.OnMessage(c, engine.QMAddr(f.Copy.Site), model.GrantMsg{
			Txn: tx.ID, Attempt: 0, Copy: f.Copy, Lock: model.WL, TS: final, Value: 1,
		})
	}
	fireTimers(iss, c)
	rels := take[model.ReleaseMsg](c)
	if len(rels) != 2 {
		t.Fatalf("releases = %d", len(rels))
	}
	dones := take[model.TxnDoneMsg](c)
	if len(dones) != 1 || dones[0].Outcome != model.OutcomeCommitted {
		t.Fatalf("dones = %+v", dones)
	}
	if dones[0].BackoffWrites != 1 {
		t.Fatalf("backoff accounting: %+v", dones[0])
	}
}

func TestVictimAbortsAndRestarts(t *testing.T) {
	iss, c := testIssuer(8, 2, 1)
	tx := submit(iss, c, model.TwoPL, nil, []model.ItemID{0, 1})
	reqs := take[model.RequestMsg](c)
	grant(iss, c, reqs[0], model.WL, false) // one lock held
	iss.OnMessage(c, engine.DetectorAddr(), model.VictimMsg{Txn: tx.ID, Attempt: 0})
	aborts := take[model.AbortMsg](c)
	if len(aborts) != 2 {
		t.Fatalf("aborts = %d want 2 (all copies withdrawn)", len(aborts))
	}
	dones := take[model.TxnDoneMsg](c)
	if len(dones) != 1 || dones[0].Outcome != model.OutcomeDeadlockVictim {
		t.Fatalf("dones = %+v", dones)
	}
	fireTimers(iss, c)
	if retry := take[model.RequestMsg](c); len(retry) != 2 {
		t.Fatalf("retry = %d", len(retry))
	}
}

func TestVictimIgnoredDuringCompute(t *testing.T) {
	iss, c := testIssuer(8, 2, 1)
	tx := submit(iss, c, model.TwoPL, nil, []model.ItemID{0})
	reqs := take[model.RequestMsg](c)
	grant(iss, c, reqs[0], model.WL, false)
	// Transaction is computing; a stale victim message must not abort it.
	iss.OnMessage(c, engine.DetectorAddr(), model.VictimMsg{Txn: tx.ID, Attempt: 0})
	if aborts := take[model.AbortMsg](c); len(aborts) != 0 {
		t.Fatal("aborted while computing")
	}
	fireTimers(iss, c)
	if rels := take[model.ReleaseMsg](c); len(rels) != 1 {
		t.Fatal("did not finish after ignored victim")
	}
}

func TestMaxAttemptsDrops(t *testing.T) {
	siteIDs := []model.SiteID{0, 1}
	pm := placement.Build(placement.RoundRobin, 4, siteIDs, 1)
	iss := New(0, pm, nil, Options{
		PAIntervalMicros: 10, RestartDelayMicros: 10, DefaultComputeMicros: 10,
		MaxAttempts: 1,
	}, nil)
	c := newCtx()
	tx := model.NewTxn(model.TxnID{Site: 0, Seq: 1}, model.TO, nil, []model.ItemID{0}, 10)
	iss.OnMessage(c, engine.DriverAddr(0), model.SubmitTxnMsg{Txn: tx})
	req := take[model.RequestMsg](c)[0]
	iss.OnMessage(c, engine.QMAddr(req.Copy.Site), model.RejectMsg{
		Txn: req.Txn, Attempt: 0, Copy: req.Copy, Threshold: 10,
	})
	if s := iss.Snapshot(); s.Dropped != 1 || s.Active != 0 {
		t.Fatalf("drop accounting: %+v", s)
	}
}

func TestChooseFuncOverridesProtocol(t *testing.T) {
	siteIDs := []model.SiteID{0}
	pm := placement.Build(placement.RoundRobin, 4, siteIDs, 1)
	iss := New(0, pm, nil, DefaultOptions(), func(*model.Txn, model.EstimateMsg) model.Protocol {
		return model.PA
	})
	c := newCtx()
	tx := model.NewTxn(model.TxnID{Site: 0, Seq: 1}, model.TwoPL, nil, []model.ItemID{0}, 10)
	iss.OnMessage(c, engine.DriverAddr(0), model.SubmitTxnMsg{Txn: tx})
	req := take[model.RequestMsg](c)[0]
	if req.Protocol != model.PA {
		t.Fatalf("selector not applied: %v", req.Protocol)
	}
}

func TestStaleMessagesIgnored(t *testing.T) {
	iss, c := testIssuer(8, 2, 1)
	tx := submit(iss, c, model.TO, nil, []model.ItemID{0})
	req := take[model.RequestMsg](c)[0]
	// A grant for a wrong attempt is dropped.
	iss.OnMessage(c, engine.QMAddr(req.Copy.Site), model.GrantMsg{
		Txn: tx.ID, Attempt: 7, Copy: req.Copy, Lock: model.WL, TS: req.TS,
	})
	if iss.Snapshot().Committed != 0 {
		t.Fatal("stale grant advanced the transaction")
	}
	// A grant for an unknown transaction is dropped.
	iss.OnMessage(c, engine.QMAddr(0), model.GrantMsg{
		Txn: model.TxnID{Site: 0, Seq: 12345}, Copy: req.Copy, Lock: model.WL,
	})
}

func TestSwitchOnRestart(t *testing.T) {
	// §6(4): a transaction may change its protocol when it restarts — here a
	// rejected T/O transaction escalates to PA (which cannot be rejected).
	siteIDs := []model.SiteID{0, 1}
	pm := placement.Build(placement.RoundRobin, 4, siteIDs, 1)
	iss := New(0, pm, nil, Options{
		PAIntervalMicros: 10, RestartDelayMicros: 10, DefaultComputeMicros: 10,
		SwitchOnRestart: func(cur model.Protocol, attempts int) model.Protocol {
			if cur == model.TO && attempts >= 1 {
				return model.PA
			}
			return cur
		},
	}, nil)
	c := newCtx()
	tx := model.NewTxn(model.TxnID{Site: 0, Seq: 1}, model.TO, nil, []model.ItemID{0}, 10)
	iss.OnMessage(c, engine.DriverAddr(0), model.SubmitTxnMsg{Txn: tx})
	req := take[model.RequestMsg](c)[0]
	if req.Protocol != model.TO {
		t.Fatalf("first attempt protocol = %v", req.Protocol)
	}
	iss.OnMessage(c, engine.QMAddr(req.Copy.Site), model.RejectMsg{
		Txn: req.Txn, Attempt: 0, Copy: req.Copy, Threshold: 100,
	})
	fireTimers(iss, c) // restart
	retry := take[model.RequestMsg](c)
	if len(retry) != 1 || retry[0].Protocol != model.PA {
		t.Fatalf("retry did not switch to PA: %+v", retry)
	}
}
