// Package model is badmod's stand-in for ucc/internal/model, with a
// message type missing from the wire switches (wiretag) and a completer
// implementing Sheddable (sheddable).
package model

// Message is the sealed message interface.
type Message interface{ isMessage() }

// Sheddable is the opt-in shedding interface.
type Sheddable interface {
	Message
	Busy() Message
}

// WireTag identifies a message type on the wire.
type WireTag byte

// Wire tags.
const (
	TagInvalid WireTag = 0
	TagPing    WireTag = 1
	TagLast            = TagPing
)

// PingMsg has the full wire contract.
type PingMsg struct{}

func (PingMsg) isMessage() {}

// BusyMsg is the NAK type.
type BusyMsg struct{}

func (BusyMsg) isMessage() {}

// LostMsg is missing from both wire switches.
type LostMsg struct{}

func (LostMsg) isMessage() {}

// ReleaseMsg is completion traffic; its Busy method below violates the
// sheddable rule.
type ReleaseMsg struct{}

func (ReleaseMsg) isMessage() {}

// Busy must never exist on a completer.
func (m ReleaseMsg) Busy() Message { return BusyMsg{} }

// AppendMessage is the encode switch.
func AppendMessage(b []byte, m Message) ([]byte, error) {
	switch m.(type) {
	case PingMsg:
		return append(b, byte(TagPing)), nil
	default:
		return b, nil
	}
}

// DecodeMessage is the decode switch.
func DecodeMessage(tag WireTag) (Message, error) {
	var m Message
	switch tag {
	case TagPing:
		m = PingMsg{}
	}
	return m, nil
}

// DecodeMessagePooled is the pool-backed decoder.
func DecodeMessagePooled(tag WireTag) (Message, error) {
	return DecodeMessage(tag)
}

// RecycleMessage returns a pooled message.
func RecycleMessage(m Message) {}
