package cluster

import (
	"testing"

	"ucc/internal/model"
	"ucc/internal/workload"
)

// TestDiagnosticsMechanisms verifies under stress that every protocol
// mechanism actually fires: 2PL deadlock victims, T/O rejections, PA
// back-offs, semi-lock conversions, and pre-scheduled grants — while the
// execution stays serializable.
func TestDiagnosticsMechanisms(t *testing.T) {
	cfg := base(42)
	cfg.Items = 16
	cfg.Replicas = 2
	cl, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < cfg.Sites; s++ {
		if err := cl.AddDriver(model.SiteID(s), workload.Spec{
			ArrivalPerSec: 30,
			HorizonMicros: 3_000_000,
			Items:         cfg.Items,
			Size:          3,
			ReadFrac:      0.5,
			Share2PL:      1, ShareTO: 1, SharePA: 1,
			ComputeMicros: 800,
		}); err != nil {
			t.Fatal(err)
		}
	}
	res := cl.Run(3_000_000, 6_000_000)
	checkRun(t, "stress", res, 200)

	qmc := cl.QMTotals()
	ric := cl.RITotals()
	det := cl.Detector.Snapshot()
	t.Logf("qm: %+v", qmc)
	t.Logf("ri: %+v", ric)
	t.Logf("detector: %+v", det)
	t.Logf("summary 2PL: commits=%d victims=%d S=%.0fµs",
		res.Summary.Protocols[model.TwoPL].Committed,
		res.Summary.Protocols[model.TwoPL].Victims,
		res.Summary.Protocols[model.TwoPL].SystemTime.Mean())
	t.Logf("summary T/O: commits=%d rejects=%d S=%.0fµs",
		res.Summary.Protocols[model.TO].Committed,
		res.Summary.Protocols[model.TO].Rejected,
		res.Summary.Protocols[model.TO].SystemTime.Mean())
	t.Logf("summary PA : commits=%d backoffsR=%d backoffsW=%d S=%.0fµs",
		res.Summary.Protocols[model.PA].Committed,
		res.Summary.Protocols[model.PA].BackoffReads,
		res.Summary.Protocols[model.PA].BackoffWrites,
		res.Summary.Protocols[model.PA].SystemTime.Mean())

	if ric.ReBackoffs != 0 {
		t.Errorf("PA re-backoffs = %d, want 0 (Lemma 1 at-most-once)", ric.ReBackoffs)
	}
	if qmc.Rejects == 0 {
		t.Error("no T/O rejections under stress; T/O path not exercised")
	}
	if qmc.Backoffs == 0 {
		t.Error("no PA back-offs under stress; PA path not exercised")
	}
	if qmc.PreGrants == 0 {
		t.Error("no pre-scheduled grants; semi-lock path not exercised")
	}
	if qmc.Conversion == 0 {
		t.Error("no semi-lock conversions; §4.2 rule 4 not exercised")
	}
	if det.Victims == 0 {
		t.Error("no deadlock victims; 2PL deadlock path not exercised")
	}
}
