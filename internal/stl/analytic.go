package stl

import "math"

// SystemShape describes a system a priori, before any measurements exist —
// the inputs a designer of 1988 would have estimated on paper. §5.2 allows
// the selection parameters to be "collected periodically or estimated
// through analytical methods [14,15,21,25]"; Analytic derives them with a
// mean-value model in the spirit of those references (Sevcik's comparative
// models and Tay/Suri/Goodman's no-waiting mean-value analysis).
type SystemShape struct {
	// Sites is the number of user sites, each submitting transactions at
	// ArrivalPerSec.
	Sites         int
	ArrivalPerSec float64
	// Items is the number of logical data items, accessed uniformly.
	Items int
	// K is the mean transaction size (requests per transaction).
	K float64
	// Qr is the read fraction.
	Qr float64
	// RoundTripSeconds is the mean request→grant→release network round trip
	// (two one-way delays).
	RoundTripSeconds float64
	// ComputeSeconds is the local computing phase duration.
	ComputeSeconds float64
	// DetectSeconds is the mean deadlock detection latency (probe period ×
	// persistence rounds).
	DetectSeconds float64
	// RestartSeconds is the mean restart delay after rejection/abort.
	RestartSeconds float64
}

// Analytic derives the STL model parameters and the per-protocol parameters
// of §5.2 from first principles:
//
//   - per-item request rate: ρ = Sites·λ·K / Items
//   - mean lock hold time:   H ≈ RTT + compute (static locking holds every
//     lock from grant to the post-compute release)
//   - conflict probability per request: the probability an arriving request
//     finds a conflicting lock held, P_c ≈ ρ·H·w, where w weights
//     write-write and read-write conflicts by the read mix
//   - T/O rejection probability per request: a conflicting op with a larger
//     timestamp was granted first ≈ half the conflicts, P_r ≈ P_c/2 scaled
//     by the fraction of the hold window still pending
//   - 2PL deadlock probability: the classic quadratic waiting-for-each-other
//     estimate P_A ≈ (K²·P_c)²-ish simplified to P_w², with P_w = K·P_c the
//     probability the transaction waits at all
//
// These are coarse (the paper's own references disagree on constants), but
// they give the dynamic selector a cold-start parameter set whose *ordering*
// matches measurement — which is all arg-min selection needs.
func Analytic(sh SystemShape) (Params, ProtocolParams) {
	if sh.Items <= 0 || sh.K <= 0 {
		return Params{LambdaA: 0, Qr: 0.5, K: 1}, ProtocolParams{}
	}
	hold := sh.RoundTripSeconds + sh.ComputeSeconds
	if hold <= 0 {
		hold = 1e-3
	}
	totalReq := float64(sh.Sites) * sh.ArrivalPerSec * sh.K // requests/sec
	perItem := totalReq / float64(sh.Items)

	p := Params{
		LambdaA: totalReq,
		LambdaW: perItem * (1 - sh.Qr),
		LambdaR: perItem * sh.Qr,
		Qr:      sh.Qr,
		K:       math.Max(sh.K, 1),
	}

	// Probability a given request conflicts with a currently-held lock:
	// held-locks-per-item × conflict weight. A read conflicts only with
	// writes; a write conflicts with everything.
	heldPerItem := perItem * hold
	pcRead := heldPerItem * (1 - sh.Qr)
	pcWrite := heldPerItem
	clamp := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 0.95 {
			return 0.95
		}
		return x
	}
	pcRead, pcWrite = clamp(pcRead), clamp(pcWrite)

	// T/O rejects roughly the conflicts that arrive "late" (conflicting
	// grant already made with a larger effective timestamp): half.
	pr := clamp(pcRead / 2)
	pw := clamp(pcWrite / 2)

	// A transaction waits if any request conflicts; two waiting
	// transactions deadlock if their waits cross: P_A ≈ P_wait²/2.
	pWait := clamp(1 - math.Pow(1-pcWrite, sh.K))
	pa := clamp(pWait * pWait / 2)

	// PA backs off in the same situations T/O rejects.
	pb, pbw := pr, pw

	pp := ProtocolParams{
		U2PL:        hold,
		U2PLAborted: hold/2 + sh.DetectSeconds, // victims wait for detection
		PAbort:      pa,
		UTO:         hold,
		UTOAborted:  hold / 2, // rejected attempts die early
		Pr:          pr,
		Pw:          pw,
		UPA:         hold + sh.RoundTripSeconds/2, // negotiation round share
		UPABackoff:  hold / 2,
		PBr:         pb,
		PBw:         pbw,
	}
	return p, pp
}
