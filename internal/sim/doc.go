// Package sim is the deterministic virtual-time engine. It runs the same
// actors as the real-time runtime but single-threaded over an event heap
// with a virtual microsecond clock, which makes experiments fast (no real
// sleeping) and exactly reproducible from a seed — the property the paper's
// own evaluation relies on ("a detailed simulation of the proposed method",
// §6 item 1).
package sim
