package sim

import (
	"testing"

	"ucc/internal/engine"
	"ucc/internal/model"
)

// echoActor records received messages with their virtual arrival times and
// optionally replies.
type echoActor struct {
	got     []model.Message
	times   []int64
	replyTo *engine.Addr
}

func (a *echoActor) OnMessage(ctx engine.Context, from engine.Addr, msg model.Message) {
	a.got = append(a.got, msg)
	a.times = append(a.times, ctx.NowMicros())
	if a.replyTo != nil {
		ctx.Send(*a.replyTo, model.TickMsg{Tag: 99})
	}
}

func TestVirtualTimeAdvancesWithLatency(t *testing.T) {
	eng := New(engine.FixedLatency{RemoteMicros: 500})
	a := &echoActor{}
	b := &echoActor{}
	addrA, addrB := engine.RIAddr(1), engine.RIAddr(2)
	bAddr := addrB
	a.replyTo = &bAddr
	eng.Register(addrA, a, 1)
	eng.Register(addrB, b, 1)

	eng.Post(addrA, model.TickMsg{Tag: 1})
	eng.Drain(0)

	if len(a.got) != 1 || len(b.got) != 1 {
		t.Fatalf("deliveries: a=%d b=%d", len(a.got), len(b.got))
	}
	if a.times[0] != 0 {
		t.Errorf("post delivered at %d, want 0", a.times[0])
	}
	if b.times[0] != 500 {
		t.Errorf("reply delivered at %d, want 500 (one hop)", b.times[0])
	}
}

func TestTimersFireInOrder(t *testing.T) {
	eng := New(nil)
	a := &timerActor{}
	eng.Register(engine.RIAddr(1), a, 1)
	eng.Post(engine.RIAddr(1), model.TickMsg{Tag: 0})
	eng.Drain(0)
	want := []uint64{0, 3, 2, 1} // scheduled at 0, then delays 10, 20, 30
	if len(a.tags) != 4 {
		t.Fatalf("tags=%v", a.tags)
	}
	for i, w := range want {
		if a.tags[i] != w {
			t.Fatalf("tags=%v want %v", a.tags, want)
		}
	}
	if eng.NowMicros() != 30 {
		t.Errorf("clock=%d want 30", eng.NowMicros())
	}
}

type timerActor struct{ tags []uint64 }

func (a *timerActor) OnMessage(ctx engine.Context, from engine.Addr, msg model.Message) {
	tick := msg.(model.TickMsg)
	a.tags = append(a.tags, tick.Tag)
	if tick.Tag == 0 {
		ctx.SetTimer(30, model.TickMsg{Tag: 1})
		ctx.SetTimer(20, model.TickMsg{Tag: 2})
		ctx.SetTimer(10, model.TickMsg{Tag: 3})
	}
}

func TestPerPairFIFOUnderJitter(t *testing.T) {
	// Even with heavily jittered latency, messages between one pair must
	// deliver in send order.
	eng := New(engine.UniformLatency{MinMicros: 1, MaxMicros: 10_000})
	recv := &orderActor{}
	eng.Register(engine.RIAddr(2), recv, 7)
	send := &burstActor{n: 200, to: engine.RIAddr(2)}
	eng.Register(engine.RIAddr(1), send, 7)
	eng.Post(engine.RIAddr(1), model.TickMsg{})
	eng.Drain(0)
	if len(recv.tags) != 200 {
		t.Fatalf("received %d", len(recv.tags))
	}
	for i, tag := range recv.tags {
		if tag != uint64(i) {
			t.Fatalf("FIFO violated at %d: got %d", i, tag)
		}
	}
}

type burstActor struct {
	n  int
	to engine.Addr
}

func (a *burstActor) OnMessage(ctx engine.Context, from engine.Addr, msg model.Message) {
	for i := 0; i < a.n; i++ {
		ctx.Send(a.to, model.TickMsg{Tag: uint64(i)})
	}
}

type orderActor struct{ tags []uint64 }

func (a *orderActor) OnMessage(ctx engine.Context, from engine.Addr, msg model.Message) {
	a.tags = append(a.tags, msg.(model.TickMsg).Tag)
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []uint64 {
		eng := New(engine.UniformLatency{MinMicros: 1, MaxMicros: 5000})
		recv := &orderActor{}
		eng.Register(engine.RIAddr(9), recv, 3)
		for i := 1; i <= 4; i++ {
			eng.Register(engine.RIAddr(model.SiteID(i)), &burstActor{n: 20, to: engine.RIAddr(9)}, 3)
			eng.Post(engine.RIAddr(model.SiteID(i)), model.TickMsg{})
		}
		eng.Drain(0)
		return recv.tags
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 80 {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func TestRunUntilStopsAtHorizon(t *testing.T) {
	eng := New(nil)
	a := &selfTicker{}
	eng.Register(engine.RIAddr(1), a, 1)
	eng.Post(engine.RIAddr(1), model.TickMsg{})
	eng.RunUntil(1000)
	if eng.NowMicros() != 1000 {
		t.Errorf("clock=%d want 1000", eng.NowMicros())
	}
	// The self-ticker ticks every 100µs: 11 deliveries in [0,1000].
	if a.n != 11 {
		t.Errorf("ticks=%d want 11", a.n)
	}
	if eng.Pending() == 0 {
		t.Error("the next tick should still be pending")
	}
}

type selfTicker struct{ n int }

func (a *selfTicker) OnMessage(ctx engine.Context, from engine.Addr, msg model.Message) {
	a.n++
	ctx.SetTimer(100, model.TickMsg{})
}

func TestDrainPanicsOnRunaway(t *testing.T) {
	eng := New(nil)
	eng.Register(engine.RIAddr(1), &selfTicker{}, 1)
	eng.Post(engine.RIAddr(1), model.TickMsg{})
	defer func() {
		if recover() == nil {
			t.Fatal("Drain must panic when maxEvents is exceeded")
		}
	}()
	eng.Drain(100)
}

func TestUnknownDestinationDropped(t *testing.T) {
	eng := New(nil)
	a := &echoActor{}
	other := engine.RIAddr(99)
	a.replyTo = &other // nobody there
	eng.Register(engine.RIAddr(1), a, 1)
	eng.Post(engine.RIAddr(1), model.TickMsg{})
	eng.Drain(0) // must terminate without panic
	if len(a.got) != 1 {
		t.Fatal("actor did not run")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	eng := New(nil)
	eng.Register(engine.RIAddr(1), &echoActor{}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	eng.Register(engine.RIAddr(1), &echoActor{}, 1)
}
