// BENCH_rebalance.json generation: the EXP-15 online-rebalance sweep as a
// machine-readable artifact, refreshed by the nightly job so move-window dip
// numbers at full horizons accumulate next to the code. Virtual-time
// deterministic per seed.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"ucc/internal/experiments"
)

type rebalanceReport struct {
	Recorded string         `json:"recorded"`
	Command  string         `json:"command"`
	Seed     int64          `json:"seed"`
	Shape    string         `json:"shape"`
	Rows     []rebalanceRow `json:"rows"`
	Note     string         `json:"note"`
}

type rebalanceRow struct {
	MovedFrac     float64 `json:"moved_frac"` // 0 = no-move baseline
	MovedItems    int     `json:"moved_items"`
	SteadyTxnS    float64 `json:"steady_txn_per_s"`
	MoveTxnS      float64 `json:"move_window_txn_per_s"`
	PostTxnS      float64 `json:"post_txn_per_s"`
	Retained      float64 `json:"retained"`
	Committed     uint64  `json:"committed"`
	Serializable  bool    `json:"serializable"`
	ReplicasAgree bool    `json:"replicas_agree"`
	WrongEpoch    uint64  `json:"wrong_epoch_naks"`
	MapInstalls   uint64  `json:"map_installs"`
	TransferRecs  uint64  `json:"transfer_recs_applied"`
	TransferBytes uint64  `json:"transfer_bytes"`
}

// writeRebalanceJSON runs the full-scale EXP-15 sweep and writes the report.
func writeRebalanceJSON(path string, seed int64) error {
	fracs := []float64{0, 0.125, 0.25, 0.5}
	points := experiments.RebalanceSweep(experiments.RunConfig{Seed: seed}, fracs)
	rep := rebalanceReport{
		Recorded: time.Now().UTC().Format("2006-01-02"),
		Command:  fmt.Sprintf("go run ./cmd/uccbench -rebalance-json %s", path),
		Seed:     seed,
		Shape:    "3 sites, 24 items x2 replicas, 70%-hot 6-item hot set; move the first ceil(frac*24) items to site 2 mid-run",
		Note: "retained = move-window commit rate / steady rate; the online-rebalance " +
			"claim is retained >= 0.5 at every move fraction with serializability and " +
			"final-map replica agreement preserved. Virtual-time deterministic per seed.",
	}
	for _, p := range points {
		retained := 0.0
		if p.PreRate > 0 {
			retained = round3(p.MoveRate / p.PreRate)
		}
		rep.Rows = append(rep.Rows, rebalanceRow{
			MovedFrac:     p.Frac,
			MovedItems:    p.MovedItems,
			SteadyTxnS:    round1(p.PreRate),
			MoveTxnS:      round1(p.MoveRate),
			PostTxnS:      round1(p.PostRate),
			Retained:      retained,
			Committed:     p.Committed,
			Serializable:  p.Serializable,
			ReplicasAgree: p.ReplicasAgree,
			WrongEpoch:    p.WrongEpoch,
			MapInstalls:   p.MapInstalls,
			TransferRecs:  p.TransferRecs,
			TransferBytes: p.TransferBytes,
		})
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
