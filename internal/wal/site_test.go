package wal

import (
	"sync"
	"testing"
	"time"

	"ucc/internal/model"
	"ucc/internal/storage"
)

func newStore(t *testing.T, site model.SiteID, items int, initial int64) *storage.Store {
	t.Helper()
	st := storage.NewStore(site)
	for i := 0; i < items; i++ {
		st.Create(model.ItemID(i), initial)
	}
	return st
}

func sameStores(t *testing.T, a, b *storage.Store) {
	t.Helper()
	ac, bc := a.Copies(), b.Copies()
	if len(ac) != len(bc) {
		t.Fatalf("store sizes differ: %d vs %d", len(ac), len(bc))
	}
	for i := range ac {
		if ac[i] != bc[i] {
			t.Fatalf("copy %d differs: %+v vs %+v", i, ac[i], bc[i])
		}
	}
}

// TestSiteLogCrashRecoverRoundTrip: write through the journal, crash the
// media, recover, and get the exact same store back.
func TestSiteLogCrashRecoverRoundTrip(t *testing.T) {
	media := NewMemMedia()
	st := newStore(t, 2, 8, 100)
	sl, err := Open(media, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.SetJournal(sl)

	txn := model.TxnID{Site: 0, Seq: 9}
	for i := 0; i < 8; i++ {
		st.Write(model.ItemID(i), txn, int64(1000+i), int64(i)*10)
	}
	st.Write(3, txn, 77, 90)
	if err := sl.Flush(); err != nil {
		t.Fatal(err)
	}
	want := storage.NewStore(2)
	for _, c := range st.Copies() {
		want.Restore(c)
	}

	// Crash: volatile store and unsynced media bytes are lost.
	st.Wipe()
	sl.Crash()
	if st.Len() != 0 {
		t.Fatal("wipe failed")
	}
	if err := sl.Recover(); err != nil {
		t.Fatal(err)
	}
	sameStores(t, st, want)
	stats := sl.Stats()
	if stats.Replayed != 9 {
		t.Errorf("replayed %d records, want 9", stats.Replayed)
	}
	if stats.RecoveredCopies != 8 {
		t.Errorf("recovered %d copies, want 8", stats.RecoveredCopies)
	}

	// The log is writable again after recovery.
	st.Write(5, txn, -1, 200)
	if err := sl.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestSiteLogCrashLosesUnflushedTail: records appended but not flushed do
// not survive — recovery returns the state as of the last sync.
func TestSiteLogCrashLosesUnflushedTail(t *testing.T) {
	media := NewMemMedia()
	st := newStore(t, 0, 4, 0)
	sl, _ := Open(media, st, Options{})
	st.SetJournal(sl)
	txn := model.TxnID{Site: 0, Seq: 1}

	st.Write(0, txn, 10, 10)
	st.Write(1, txn, 11, 20)
	if err := sl.Flush(); err != nil {
		t.Fatal(err)
	}
	st.Write(2, txn, 12, 30) // never flushed

	st.Wipe()
	sl.Crash()
	if err := sl.Recover(); err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Read(0); v != 10 {
		t.Errorf("item 0 = %d, want 10", v)
	}
	if v, ver := st.Read(2); v != 0 || ver != 0 {
		t.Errorf("unflushed write survived the crash: value=%d version=%d", v, ver)
	}
}

// TestSiteLogSnapshotTruncatesSegments: automatic snapshots keep the media
// bounded and recovery correct.
func TestSiteLogSnapshotTruncatesSegments(t *testing.T) {
	media := NewMemMedia()
	st := newStore(t, 1, 4, 0)
	sl, _ := Open(media, st, Options{SegmentBytes: 128, SnapshotEvery: 10})
	st.SetJournal(sl)
	txn := model.TxnID{Site: 1, Seq: 1}

	for i := 0; i < 55; i++ {
		st.Write(model.ItemID(i%4), txn, int64(i), int64(i)*5)
		if err := sl.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := sl.Stats().Snapshots; got < 4 {
		t.Errorf("snapshots taken: %d, want ≥ 4", got)
	}
	// Media must not accumulate obsolete objects: at most one snapshot and
	// a couple of live segments.
	names, _ := media.List()
	var snaps, segs int
	for _, n := range names {
		if isSnap(n) {
			snaps++
		}
		if isSeg(n) {
			segs++
		}
	}
	if snaps != 1 {
		t.Errorf("stale snapshots on media: %d (%v)", snaps, names)
	}
	if segs > 3 {
		t.Errorf("stale segments on media: %d (%v)", segs, names)
	}

	want := storage.NewStore(1)
	for _, c := range st.Copies() {
		want.Restore(c)
	}
	st.Wipe()
	sl.Crash()
	if err := sl.Recover(); err != nil {
		t.Fatal(err)
	}
	sameStores(t, st, want)
}

// TestSiteLogFileBackedReopen is the `kill -9` path: open a dir-backed log,
// write, drop the SiteLog without any graceful shutdown, then Open the same
// directory into a fresh store and find the flushed state.
func TestSiteLogFileBackedReopen(t *testing.T) {
	dir := t.TempDir()
	media, err := NewDirMedia(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := newStore(t, 5, 6, 50)
	sl, err := Open(media, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.SetJournal(sl)
	txn := model.TxnID{Site: 5, Seq: 3}
	st.Write(0, txn, 500, 50)
	st.Write(4, txn, 400, 60)
	if err := sl.Flush(); err != nil {
		t.Fatal(err)
	}
	want := storage.NewStore(5)
	for _, c := range st.Copies() {
		want.Restore(c)
	}
	// No Close, no shutdown: the process just dies.

	media2, err := NewDirMedia(dir)
	if err != nil {
		t.Fatal(err)
	}
	st2 := newStore(t, 5, 6, 50) // what the node would pre-create at boot
	sl2, err := Open(media2, st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameStores(t, st2, want)
	if sl2.Stats().Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", sl2.Stats().Recoveries)
	}
}

func TestSiteLogRejectsForeignMedia(t *testing.T) {
	media := NewMemMedia()
	st := newStore(t, 1, 2, 0)
	if _, err := Open(media, st, Options{}); err != nil {
		t.Fatal(err)
	}
	other := newStore(t, 2, 2, 0)
	if _, err := Open(media, other, Options{}); err == nil {
		t.Fatal("opened site-1 media for site 2")
	}
}

// TestGroupCommitBatchesSyncs is acceptance criterion: N concurrently
// committing writers share syncs — far fewer syncs than commits — and every
// committed record is durable.
func TestGroupCommitBatchesSyncs(t *testing.T) {
	media := NewMemMedia()
	media.SyncDelay = 200 * time.Microsecond // the fsync cost being amortized
	const items = 64
	st := newStore(t, 0, items, 0)
	sl, err := Open(media, st, Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	// Journal directly (bypassing Store.Write, which is not designed for
	// concurrent callers — under the real system the QM serializes it).
	const writers, perWriter = 16, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sl.RecordWrite(model.ItemID((w*perWriter+i)%items),
					model.TxnID{Site: 0, Seq: uint64(w + 1)}, int64(i), 1, 0)
				if err := sl.Flush(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	commits, syncs := sl.GroupStats()
	if commits != writers*perWriter {
		t.Fatalf("commits = %d, want %d", commits, writers*perWriter)
	}
	if syncs >= commits {
		t.Fatalf("group commit did not batch: %d syncs for %d commits", syncs, commits)
	}
	t.Logf("group commit: %d commits in %d syncs (%.1fx amortization)",
		commits, syncs, float64(commits)/float64(syncs))

	// Everything committed is durable.
	var n int
	if _, err := Replay(media, 0, func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", n, writers*perWriter)
	}
}

// TestRecoverWithEmptyTailKeepsSnapshot: recovery with nothing to replay
// must not rewrite the snapshot in place — truncating the only valid
// snapshot before resyncing it would brick the site if that write tore.
func TestRecoverWithEmptyTailKeepsSnapshot(t *testing.T) {
	media := NewMemMedia()
	st := newStore(t, 3, 4, 9)
	sl, err := Open(media, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.SetJournal(sl)
	st.Write(1, model.TxnID{Site: 3, Seq: 1}, 42, 70)
	if err := sl.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sl.Snapshot(); err != nil { // snapshot covers everything; log tail now empty
		t.Fatal(err)
	}
	snapsBefore := sl.Stats().Snapshots

	// Two crash/recover cycles with no intervening writes: no new snapshot
	// may be written (the existing one is the base), and state survives.
	for i := 0; i < 2; i++ {
		st.Wipe()
		sl.Crash()
		if err := sl.Recover(); err != nil {
			t.Fatalf("recovery %d: %v", i, err)
		}
	}
	if got := sl.Stats().Snapshots; got != snapsBefore {
		t.Errorf("empty-tail recovery rewrote the snapshot: %d → %d", snapsBefore, got)
	}
	if v, _ := st.Read(1); v != 42 {
		t.Errorf("item 1 = %d after double recovery, want 42", v)
	}

	// A forced snapshot with no new appends must also be a no-op.
	if err := sl.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := sl.Stats().Snapshots; got != snapsBefore {
		t.Errorf("no-op Snapshot rewrote the snapshot: %d → %d", snapsBefore, got)
	}
}

// TestSiteLogConcurrentShardTraffic models the sharded queue manager's
// durability shape: several goroutines (shards) journal writes to disjoint
// items and flush concurrently through the group committer, racing a
// periodic snapshotter. Everything synced must survive a crash, and the
// recovered store must equal the pre-crash store exactly.
func TestSiteLogConcurrentShardTraffic(t *testing.T) {
	const shards, perShard, writesEach = 4, 4, 200
	media := NewMemMedia()
	st := newStore(t, 1, shards*perShard, 0)
	sl, err := Open(media, st, Options{GroupCommit: true, SnapshotEvery: 150})
	if err != nil {
		t.Fatal(err)
	}
	st.SetJournal(sl)

	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for n := 0; n < writesEach; n++ {
				item := model.ItemID(s*perShard + n%perShard)
				// The store is safe for concurrent writes to DISTINCT items
				// (each shard owns its slice); the journal hook serializes
				// appends internally.
				st.Write(item, model.TxnID{Site: model.SiteID(s + 1), Seq: uint64(n + 1)},
					int64(s*1000+n), int64(n+1))
				if err := sl.Flush(); err != nil {
					panic(err)
				}
			}
		}(s)
	}
	wg.Wait()

	stats := sl.Stats()
	if stats.Appends != shards*writesEach {
		t.Fatalf("appends=%d want %d", stats.Appends, shards*writesEach)
	}
	commits, syncs := sl.GroupStats()
	if commits != shards*writesEach {
		t.Fatalf("commits=%d want %d", commits, shards*writesEach)
	}
	if syncs > commits {
		t.Fatalf("syncs=%d exceed commits=%d", syncs, commits)
	}
	t.Logf("concurrent shard flushes: %d commits in %d syncs (%.2f commits/sync)",
		commits, syncs, float64(commits)/float64(syncs))

	want := st.Copies()
	sl.Crash()
	st.Wipe()
	if err := sl.Recover(); err != nil {
		t.Fatal(err)
	}
	got := st.Copies()
	if len(got) != len(want) {
		t.Fatalf("recovered %d copies, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("copy %d: recovered %+v, want %+v", i, got[i], want[i])
		}
	}
}
