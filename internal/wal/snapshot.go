package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"ucc/internal/model"
	"ucc/internal/storage"
)

// snapshot is a point-in-time image of one site's store: every physical
// copy, plus the sequence number of the last journaled record already
// reflected in those copies. Records with Seq > AppliedSeq form the log
// tail that replays on top.
type snapshot struct {
	AppliedSeq uint64
	Site       model.SiteID
	Copies     []storage.Copy
}

const snapCopyBytes = 4 + 8 + 8 + 4 + 8 // item, value, version, writer site, writer seq

// encodeSnapshot renders: crc32C(body) | body, where body is
// appliedSeq | site | count | count × copy.
func encodeSnapshot(s snapshot) []byte {
	body := make([]byte, 0, 8+4+4+len(s.Copies)*snapCopyBytes)
	var u8 [8]byte
	var u4 [4]byte
	binary.LittleEndian.PutUint64(u8[:], s.AppliedSeq)
	body = append(body, u8[:]...)
	binary.LittleEndian.PutUint32(u4[:], uint32(s.Site))
	body = append(body, u4[:]...)
	binary.LittleEndian.PutUint32(u4[:], uint32(len(s.Copies)))
	body = append(body, u4[:]...)
	for _, c := range s.Copies {
		binary.LittleEndian.PutUint32(u4[:], uint32(c.ID.Item))
		body = append(body, u4[:]...)
		binary.LittleEndian.PutUint64(u8[:], uint64(c.Value))
		body = append(body, u8[:]...)
		binary.LittleEndian.PutUint64(u8[:], c.Version)
		body = append(body, u8[:]...)
		binary.LittleEndian.PutUint32(u4[:], uint32(c.Writer.Site))
		body = append(body, u4[:]...)
		binary.LittleEndian.PutUint64(u8[:], c.Writer.Seq)
		body = append(body, u8[:]...)
	}
	out := make([]byte, 4, 4+len(body))
	binary.LittleEndian.PutUint32(out, crc32.Checksum(body, crcTable))
	return append(out, body...)
}

// decodeSnapshot validates the checksum and decodes; a torn or corrupt
// snapshot returns an error (recovery then falls back to an older one).
func decodeSnapshot(data []byte) (snapshot, error) {
	var s snapshot
	if len(data) < 4+8+4+4 {
		return s, fmt.Errorf("wal: snapshot truncated (%d bytes)", len(data))
	}
	crc := binary.LittleEndian.Uint32(data)
	body := data[4:]
	if crc32.Checksum(body, crcTable) != crc {
		return s, fmt.Errorf("wal: snapshot checksum mismatch")
	}
	s.AppliedSeq = binary.LittleEndian.Uint64(body)
	s.Site = model.SiteID(binary.LittleEndian.Uint32(body[8:]))
	count := int(binary.LittleEndian.Uint32(body[12:]))
	body = body[16:]
	if len(body) != count*snapCopyBytes {
		return s, fmt.Errorf("wal: snapshot body %d bytes, want %d copies", len(body), count)
	}
	s.Copies = make([]storage.Copy, count)
	for i := 0; i < count; i++ {
		b := body[i*snapCopyBytes:]
		item := model.ItemID(binary.LittleEndian.Uint32(b))
		s.Copies[i] = storage.Copy{
			ID:      model.CopyID{Item: item, Site: s.Site},
			Value:   int64(binary.LittleEndian.Uint64(b[4:])),
			Version: binary.LittleEndian.Uint64(b[12:]),
			Writer: model.TxnID{
				Site: model.SiteID(binary.LittleEndian.Uint32(b[20:])),
				Seq:  binary.LittleEndian.Uint64(b[24:]),
			},
		}
	}
	return s, nil
}

// writeSnapshot persists a snapshot durably (create, write, sync, close).
func writeSnapshot(media Media, s snapshot) error {
	w, err := media.Create(snapName(s.AppliedSeq))
	if err != nil {
		return fmt.Errorf("wal: create snapshot: %w", err)
	}
	if _, err := w.Write(encodeSnapshot(s)); err != nil {
		w.Close()
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return fmt.Errorf("wal: sync snapshot: %w", err)
	}
	return w.Close()
}

// newestSnapshot loads the newest decodable snapshot, skipping damaged ones.
// ok is false when no valid snapshot exists.
func newestSnapshot(media Media) (snapshot, bool, error) {
	names, err := media.List()
	if err != nil {
		return snapshot{}, false, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		if !isSnap(names[i]) {
			continue
		}
		data, err := media.ReadAll(names[i])
		if err != nil {
			return snapshot{}, false, err
		}
		s, err := decodeSnapshot(data)
		if err != nil {
			continue // torn snapshot: fall back to an older one
		}
		return s, true, nil
	}
	return snapshot{}, false, nil
}

// pruneBefore removes every snapshot and sealed segment made obsolete by a
// new snapshot: snapshots other than snapName(appliedSeq) and segments whose
// name (first seq) precedes the current open segment — the snapshot covers
// all of them because it was taken after a roll.
func pruneBefore(media Media, appliedSeq uint64, keepSegment string) error {
	names, err := media.List()
	if err != nil {
		return err
	}
	keepSnap := snapName(appliedSeq)
	for _, n := range names {
		switch {
		case isSnap(n) && n != keepSnap:
			if err := media.Remove(n); err != nil {
				return err
			}
		case isSeg(n) && n < keepSegment:
			if err := media.Remove(n); err != nil {
				return err
			}
		}
	}
	return nil
}
