package model

import "fmt"

// PartitionMap is the versioned item→copies placement: the single source of
// truth for which sites hold which items, replacing the static startup
// catalog. A map value is immutable once published — rebalancing builds a new
// map with Epoch+1 and distributes it (MapInstallMsg to queue managers,
// MapUpdateMsg to issuers), so every component can compare epochs and a stale
// router is told it is stale (WrongEpochMsg carrying the new map) instead of
// silently reaching the wrong owner.
type PartitionMap struct {
	// Epoch orders map versions; higher wins everywhere a map is installed.
	Epoch uint64
	// Assignments[i] lists the sites holding copies of item i, primary
	// first. Every item has at least one copy; per-item copy counts may
	// differ after rebalancing.
	Assignments [][]SiteID
}

// Items returns the number of logical items the map places.
func (pm *PartitionMap) Items() int { return len(pm.Assignments) }

// Replicas returns the sites holding copies of item, primary first. The
// returned slice is the map's own backing array — callers must not mutate it.
func (pm *PartitionMap) Replicas(item ItemID) []SiteID {
	if int(item) >= len(pm.Assignments) || len(pm.Assignments[item]) == 0 {
		panic(fmt.Sprintf("partition map epoch %d: no copies for item %d", pm.Epoch, item))
	}
	return pm.Assignments[item]
}

// Primary returns the primary copy's site for item.
func (pm *PartitionMap) Primary(item ItemID) SiteID { return pm.Replicas(item)[0] }

// Owns reports whether site holds a copy of item. False for items outside the
// map (a router built against a larger map than this one must not panic).
func (pm *PartitionMap) Owns(item ItemID, site SiteID) bool {
	if int(item) >= len(pm.Assignments) {
		return false
	}
	for _, s := range pm.Assignments[item] {
		if s == site {
			return true
		}
	}
	return false
}

// CopiesAt returns the ascending list of items with a copy at site.
func (pm *PartitionMap) CopiesAt(site SiteID) []ItemID {
	var out []ItemID
	for i := range pm.Assignments {
		if pm.Owns(ItemID(i), site) {
			out = append(out, ItemID(i))
		}
	}
	return out
}

// Sites returns the ascending list of sites owning at least one copy.
func (pm *PartitionMap) Sites() []SiteID {
	seen := map[SiteID]bool{}
	for _, reps := range pm.Assignments {
		for _, s := range reps {
			seen[s] = true
		}
	}
	out := make([]SiteID, 0, len(seen))
	var max SiteID = -1
	for s := range seen {
		if s > max {
			max = s
		}
	}
	for s := SiteID(0); s <= max; s++ {
		if seen[s] {
			out = append(out, s)
		}
	}
	return out
}

// Clone deep-copies the map (planners mutate the copy, bump Epoch, publish).
func (pm *PartitionMap) Clone() *PartitionMap {
	out := &PartitionMap{Epoch: pm.Epoch, Assignments: make([][]SiteID, len(pm.Assignments))}
	for i, reps := range pm.Assignments {
		out.Assignments[i] = append([]SiteID(nil), reps...)
	}
	return out
}
