package scenario

import (
	"fmt"

	"ucc/internal/metrics"
	"ucc/internal/model"
)

// --- Phase checks: evaluated at a phase boundary over that phase's delta ---

// MinCommitted asserts at least n transactions committed during the phase.
func MinCommitted(n uint64) Check {
	return Check{
		Name: fmt.Sprintf("committed>=%d", n),
		Eval: func(c *Ctx) error {
			d, err := c.delta()
			if err != nil {
				return err
			}
			if got := d.TotalCommitted(); got < n {
				return fmt.Errorf("committed %d < %d", got, n)
			}
			return nil
		},
	}
}

// P99Below asserts the phase's p99 commit latency (system time, all
// protocols merged, histogram resolution) is at most micros.
func P99Below(micros int64) Check {
	return Check{
		Name: fmt.Sprintf("p99<=%dms", micros/1000),
		Eval: func(c *Ctx) error {
			d, err := c.delta()
			if err != nil {
				return err
			}
			h := mergedLatency(d)
			if h.Count() == 0 {
				return fmt.Errorf("no commits in phase to bound p99 over")
			}
			if got := h.Quantile(0.99); got > float64(micros) {
				return fmt.Errorf("p99 %.0fµs > %dµs", got, micros)
			}
			return nil
		},
	}
}

// P99Above asserts the phase's p99 commit latency is at least micros — the
// assertion that a degradation fault actually degraded service.
func P99Above(micros int64) Check {
	return Check{
		Name: fmt.Sprintf("p99>=%dms", micros/1000),
		Eval: func(c *Ctx) error {
			d, err := c.delta()
			if err != nil {
				return err
			}
			h := mergedLatency(d)
			if h.Count() == 0 {
				return fmt.Errorf("no commits in phase to bound p99 over")
			}
			if got := h.Quantile(0.99); got < float64(micros) {
				return fmt.Errorf("p99 %.0fµs < %dµs", got, micros)
			}
			return nil
		},
	}
}

// SLOGoodput asserts that of everything offered during the phase (committed
// + shed + busy-NAK'd), at least minFrac committed within sloMicros — the
// overload experiments' goodput measure (metrics.Summary.CommittedWithin)
// as a checkpoint.
func SLOGoodput(sloMicros int64, minFrac float64) Check {
	return Check{
		Name: fmt.Sprintf("goodput(SLO %dms)>=%.0f%%", sloMicros/1000, minFrac*100),
		Eval: func(c *Ctx) error {
			d, err := c.delta()
			if err != nil {
				return err
			}
			offered := d.TotalCommitted() + d.TotalShed() + d.TotalBusy()
			if offered == 0 {
				return fmt.Errorf("nothing offered in phase")
			}
			good := d.CommittedWithin(sloMicros)
			if frac := float64(good) / float64(offered); frac < minFrac {
				return fmt.Errorf("goodput %d/%d = %.1f%% < %.1f%%", good, offered, frac*100, minFrac*100)
			}
			return nil
		},
	}
}

// ShedsSome asserts admission control refused at least n arrivals during the
// phase — the positive assertion that an overload phase actually crossed the
// admission threshold.
func ShedsSome(n uint64) Check {
	return Check{
		Name: fmt.Sprintf("shed>=%d", n),
		Eval: func(c *Ctx) error {
			d, err := c.delta()
			if err != nil {
				return err
			}
			if got := d.TotalShed(); got < n {
				return fmt.Errorf("shed %d < %d", got, n)
			}
			return nil
		},
	}
}

// ShedsNone asserts admission control refused nothing during the phase — the
// under-threshold half of the diurnal curve.
func ShedsNone() Check {
	return Check{
		Name: "shed==0",
		Eval: func(c *Ctx) error {
			d, err := c.delta()
			if err != nil {
				return err
			}
			if got := d.TotalShed(); got != 0 {
				return fmt.Errorf("shed %d arrivals in a phase that must not shed", got)
			}
			return nil
		},
	}
}

// DepthWithinCap asserts no data queue has ever exceeded the configured
// qm.Options.MaxQueueDepth (a high-water mark, so by the last phase it
// covers the whole run). Errors if the cluster has no cap configured.
func DepthWithinCap() Check {
	return Check{
		Name: "queue-depth<=cap",
		Eval: func(c *Ctx) error {
			limit := c.Cluster.Cfg.QM.MaxQueueDepth
			if limit <= 0 {
				return fmt.Errorf("cluster has no MaxQueueDepth cap to check against")
			}
			if got := c.Cluster.DepthHighWater(); got > limit {
				return fmt.Errorf("queue depth high-water %d > cap %d", got, limit)
			}
			return nil
		},
	}
}

// ROFastPathUsed asserts at least n read-only snapshot transactions
// committed during the phase.
func ROFastPathUsed(n uint64) Check {
	return Check{
		Name: fmt.Sprintf("ro-committed>=%d", n),
		Eval: func(c *Ctx) error {
			if c.Phase == nil {
				return fmt.Errorf("phase check evaluated outside a phase")
			}
			if got := c.Phase.RI.ROCommitted; got < n {
				return fmt.Errorf("read-only fast-path commits %d < %d", got, n)
			}
			return nil
		},
	}
}

// WALBatchingAtLeast asserts the phase's WAL batching factor — journal
// appends per media sync — is at least factor. With a wide group-commit
// window many writes share one sync, so the factor rises well above the
// sync-per-write baseline of ~1: the slow-disk scenario's signature.
func WALBatchingAtLeast(factor float64) Check {
	return Check{
		Name: fmt.Sprintf("wal-appends/sync>=%.1f", factor),
		Eval: func(c *Ctx) error {
			if c.Phase == nil {
				return fmt.Errorf("phase check evaluated outside a phase")
			}
			appends, syncs := c.Phase.WAL.Appends, c.Phase.WAL.Syncs
			if syncs == 0 {
				return fmt.Errorf("no WAL syncs in phase (durability not configured?)")
			}
			if got := float64(appends) / float64(syncs); got < factor {
				return fmt.Errorf("%d appends / %d syncs = %.2f < %.2f", appends, syncs, got, factor)
			}
			return nil
		},
	}
}

// WALBatchingAtMost is the zero-window counterpart: every implemented write
// syncs before its effects are exposed, so appends track syncs ~1:1.
func WALBatchingAtMost(factor float64) Check {
	return Check{
		Name: fmt.Sprintf("wal-appends/sync<=%.1f", factor),
		Eval: func(c *Ctx) error {
			if c.Phase == nil {
				return fmt.Errorf("phase check evaluated outside a phase")
			}
			appends, syncs := c.Phase.WAL.Appends, c.Phase.WAL.Syncs
			if syncs == 0 {
				return fmt.Errorf("no WAL syncs in phase (durability not configured?)")
			}
			if got := float64(appends) / float64(syncs); got > factor {
				return fmt.Errorf("%d appends / %d syncs = %.2f > %.2f", appends, syncs, got, factor)
			}
			return nil
		},
	}
}

// --- Final checks: evaluated after the drain over the whole run ---

// Serializable asserts the recorded history has an acyclic conflict graph.
// Requires history recording (on by default; incompatible with NoHistory).
func Serializable() Check {
	return Check{
		Name: "serializable",
		Eval: func(c *Ctx) error {
			f, err := c.final()
			if err != nil {
				return err
			}
			if f.Serializability == nil {
				return fmt.Errorf("history recording was disabled (scenario sets NoHistory)")
			}
			if !f.Serializability.Serializable {
				return fmt.Errorf("conflict cycle over %d txns: %v", f.Serializability.Txns, f.Serializability.Cycle)
			}
			return nil
		},
	}
}

// NoUnfinished asserts the drain left no transaction live — nothing stuck in
// an undetected deadlock, nothing leaked.
func NoUnfinished() Check {
	return Check{
		Name: "no-unfinished",
		Eval: func(c *Ctx) error {
			f, err := c.final()
			if err != nil {
				return err
			}
			if f.Unfinished != 0 {
				return fmt.Errorf("%d transactions still live after drain", f.Unfinished)
			}
			return nil
		},
	}
}

// TotalCommittedAtLeast asserts the whole run committed at least n.
func TotalCommittedAtLeast(n uint64) Check {
	return Check{
		Name: fmt.Sprintf("total-committed>=%d", n),
		Eval: func(c *Ctx) error {
			f, err := c.final()
			if err != nil {
				return err
			}
			if got := f.Summary.TotalCommitted(); got < n {
				return fmt.Errorf("total committed %d < %d", got, n)
			}
			return nil
		},
	}
}

// ReplicasAgree asserts every item's live physical copies hold the same
// value and that every copy is live — after recovery, replicas must have
// converged and no site may still be down. Copies are counted against the
// cluster's FINAL partition map, not the static config: a rebalance mid-run
// may have changed which sites hold an item (the degree is preserved, but
// the old owner's leftover state is not a copy any more). Meaningful only
// after the drain (in-flight write-all updates would trip it mid-run).
func ReplicasAgree() Check {
	return Check{
		Name: "replicas-agree",
		Eval: func(c *Ctx) error {
			if _, err := c.final(); err != nil {
				return err
			}
			pm := c.Cluster.CurrentMap()
			for i := 0; i < c.Cluster.Cfg.Items; i++ {
				want := len(pm.Replicas(model.ItemID(i)))
				vals := c.Cluster.ReplicaValues(model.ItemID(i))
				if len(vals) != want {
					return fmt.Errorf("item %d: %d of %d copies live (a site is still crashed)", i, len(vals), want)
				}
				for _, v := range vals[1:] {
					if v != vals[0] {
						return fmt.Errorf("item %d replicas diverge: %v", i, vals)
					}
				}
			}
			return nil
		},
	}
}

// OfferedAccounted asserts the issuer ledger balances over the whole run:
// submitted = committed + shed + roBusyShed + dropped + active. The same
// identity Result.Offered documents; here it is an executable checkpoint.
func OfferedAccounted() Check {
	return Check{
		Name: "offered-accounted",
		Eval: func(c *Ctx) error {
			if _, err := c.final(); err != nil {
				return err
			}
			t := c.Cluster.RITotals()
			sum := t.Committed + t.Shed + t.ROBusyShed + t.Dropped + uint64(t.Active)
			if t.Submitted != sum {
				return fmt.Errorf("submitted %d != committed %d + shed %d + roBusyShed %d + dropped %d + active %d",
					t.Submitted, t.Committed, t.Shed, t.ROBusyShed, t.Dropped, t.Active)
			}
			return nil
		},
	}
}

// mergedLatency folds every protocol's per-phase system-time histogram into
// one distribution.
func mergedLatency(d metrics.Summary) metrics.Histogram {
	var h metrics.Histogram
	for i := range d.Protocols {
		h.Merge(d.Protocols[i].SystemTimeH)
	}
	return h
}
