package wire

import (
	"bytes"
	"reflect"
	"testing"

	"ucc/internal/engine"
	"ucc/internal/model"
)

// TestPooledDecodeEquivalence: over the whole corpus, the pooled decode path
// must produce messages field-for-field equal to the plain path (pooled
// pointers dereferenced to compare values), re-encode to the identical bytes,
// and return non-pooled types exactly as DecodeEnvelope would.
func TestPooledDecodeEquivalence(t *testing.T) {
	for i, env := range Corpus() {
		payload, err := AppendEnvelope(nil, env)
		if err != nil {
			t.Fatalf("envelope %d (%T): encode: %v", i, env.Msg, err)
		}
		plain, err := DecodeEnvelope(payload)
		if err != nil {
			t.Fatalf("envelope %d (%T): plain decode: %v", i, env.Msg, err)
		}
		pooled, err := DecodeEnvelopePooled(payload)
		if err != nil {
			t.Fatalf("envelope %d (%T): pooled decode: %v", i, env.Msg, err)
		}
		if pooled.From != plain.From || pooled.To != plain.To {
			t.Fatalf("envelope %d (%T): addresses differ: %+v vs %+v", i, env.Msg, pooled, plain)
		}
		got := pooled.Msg
		if rv := reflect.ValueOf(got); rv.Kind() == reflect.Pointer {
			got = rv.Elem().Interface().(model.Message)
		}
		if !reflect.DeepEqual(got, plain.Msg) {
			t.Fatalf("envelope %d (%T): pooled message differs:\n pooled: %+v\n  plain: %+v", i, env.Msg, got, plain.Msg)
		}
		// A pooled pointer must re-encode byte-identically to the value form.
		re, err := AppendEnvelope(nil, pooled)
		if err != nil {
			t.Fatalf("envelope %d (%T): re-encode pooled: %v", i, env.Msg, err)
		}
		if !bytes.Equal(payload, re) {
			t.Fatalf("envelope %d (%T): pooled re-encode differs from original bytes", i, env.Msg)
		}
		model.RecycleMessage(pooled.Msg)
	}
}

// TestPooledTypesAreHotSet pins WHICH corpus messages come back pooled: the
// eleven fixed-size protocol types and nothing else. A variable-size type
// showing up as a pointer here means someone pooled a message whose slices
// or maps would pin memory; a hot type showing up as a value means the pool
// silently stopped covering it.
func TestPooledTypesAreHotSet(t *testing.T) {
	pooled := map[reflect.Type]bool{
		reflect.TypeOf(model.RequestMsg{}):       true,
		reflect.TypeOf(model.FinalTSMsg{}):       true,
		reflect.TypeOf(model.ReleaseMsg{}):       true,
		reflect.TypeOf(model.AbortMsg{}):         true,
		reflect.TypeOf(model.GrantMsg{}):         true,
		reflect.TypeOf(model.NormalGrantMsg{}):   true,
		reflect.TypeOf(model.RejectMsg{}):        true,
		reflect.TypeOf(model.BackoffMsg{}):       true,
		reflect.TypeOf(model.BusyMsg{}):          true,
		reflect.TypeOf(model.SnapReadMsg{}):      true,
		reflect.TypeOf(model.SnapReadReplyMsg{}): true,
	}
	for i, env := range Corpus() {
		payload, err := AppendEnvelope(nil, env)
		if err != nil {
			t.Fatalf("envelope %d: encode: %v", i, err)
		}
		got, err := DecodeEnvelopePooled(payload)
		if err != nil {
			t.Fatalf("envelope %d: decode: %v", i, err)
		}
		rt := reflect.TypeOf(got.Msg)
		isPtr := rt.Kind() == reflect.Pointer
		wantPtr := pooled[reflect.TypeOf(env.Msg)]
		if isPtr != wantPtr {
			t.Errorf("envelope %d (%T): pooled=%v, want %v", i, env.Msg, isPtr, wantPtr)
		}
		model.RecycleMessage(got.Msg)
	}
}

// TestPoolReuseSafety: recycling must fully reset a struct so a later decode
// through the same pool slot cannot leak a previous message's fields. Decode
// a fully-populated request, recycle it, then decode a mostly-zero request —
// single-threaded, so the pool hands back the same struct — and every field
// must match the second message, not the first.
func TestPoolReuseSafety(t *testing.T) {
	full := model.RequestMsg{
		Txn: model.TxnID{Site: 3, Seq: 99}, Attempt: 7, Protocol: model.PA,
		Kind: model.OpWrite, Copy: model.CopyID{Item: 41, Site: 2},
		TS: 1 << 50, Interval: 999, Site: 3,
	}
	sparse := model.RequestMsg{Txn: model.TxnID{Site: 1, Seq: 1}}

	encode := func(m model.Message) []byte {
		payload, err := AppendEnvelope(nil, corpusEnvelopeWith(m))
		if err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		return payload
	}

	env1, err := DecodeEnvelopePooled(encode(full))
	if err != nil {
		t.Fatal(err)
	}
	p1, ok := env1.Msg.(*model.RequestMsg)
	if !ok {
		t.Fatalf("decoded %T, want *model.RequestMsg", env1.Msg)
	}
	if *p1 != full {
		t.Fatalf("first decode: got %+v, want %+v", *p1, full)
	}
	model.RecycleMessage(p1)

	env2, err := DecodeEnvelopePooled(encode(sparse))
	if err != nil {
		t.Fatal(err)
	}
	p2 := env2.Msg.(*model.RequestMsg)
	if *p2 != sparse {
		t.Fatalf("decode after recycle leaked prior fields: got %+v, want %+v", *p2, sparse)
	}
	model.RecycleMessage(p2)

	// Recycling non-pooled messages — values, variable-size types, nil — must
	// be a silent no-op, so mixed streams can recycle unconditionally.
	model.RecycleMessage(model.RequestMsg{})
	model.RecycleMessage(model.VictimMsg{Txn: full.Txn})
	model.RecycleMessage(nil)
}

// TestPooledDecodeErrorRecycles: a truncated payload must error on the pooled
// path exactly like the plain path, and return no message.
func TestPooledDecodeErrorRecycles(t *testing.T) {
	payload, err := AppendEnvelope(nil, corpusEnvelopeWith(model.RequestMsg{
		Txn: model.TxnID{Site: 1, Seq: 2}, TS: 1 << 40,
	}))
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(payload) - 1; cut > 0; cut-- {
		env, err := DecodeEnvelopePooled(payload[:cut])
		if err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
		if env.Msg != nil {
			t.Fatalf("truncation at %d returned a message alongside the error", cut)
		}
	}
}

// corpusEnvelopeWith wraps m in a fixed RI→QM envelope.
func corpusEnvelopeWith(m model.Message) engine.Envelope {
	return engine.Envelope{From: engine.RIAddr(1), To: engine.QMShardAddr(2, 0), Msg: m}
}
