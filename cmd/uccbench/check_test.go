package main

import (
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleBenchOutput = `
goos: linux
goarch: amd64
pkg: ucc
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkReadPathThroughput-4         	       3	 512345678 ns/op	       500.0 txn/s
BenchmarkReadWriteThroughput/shards=1-4 	       1	1844275177 ns/op	         0.38 allocs/committed_txn	    274599 txn/s
BenchmarkReadWriteThroughput/shards=4-4 	       1	 922137588 ns/op	    549198 txn/s
BenchmarkCommitGroup16-4              	    2000	    240193 ns/op	         4.706 commits/sync
PASS
ok  	ucc	3.753s
`

func parsedSamples(t *testing.T) []benchSample {
	t.Helper()
	samples, err := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestParseBenchOutput(t *testing.T) {
	samples := parsedSamples(t)
	if len(samples) != 4 {
		t.Fatalf("parsed %d samples, want 4: %+v", len(samples), samples)
	}
	byName := map[string]benchSample{}
	for _, s := range samples {
		byName[s.Name] = s
	}
	rp, ok := byName["BenchmarkReadPathThroughput"]
	if !ok {
		t.Fatalf("proc-count suffix not stripped: %+v", samples)
	}
	if rp.Metrics["txn_per_s"] != 500.0 {
		t.Fatalf("metric not normalized: %+v", rp.Metrics)
	}
	sub, ok := byName["BenchmarkReadWriteThroughput/shards=4"]
	if !ok || sub.Metrics["txn_per_s"] != 549198 {
		t.Fatalf("sub-benchmark parse wrong: %+v", sub)
	}
	if byName["BenchmarkCommitGroup16"].Metrics["commits_per_sync"] != 4.706 {
		t.Fatalf("ratio metric lost: %+v", byName["BenchmarkCommitGroup16"])
	}
}

func TestCheckPassesAgainstHonestBaseline(t *testing.T) {
	base := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkReadPathThroughput", NsPerOp: 500_000_000,
			Metrics: map[string]float64{"txn_per_s": 480}}, // we measure 500: improvement
		{Name: "BenchmarkCommitGroup16", NsPerOp: 250_000,
			Metrics: map[string]float64{"commits_per_sync": 4.5}},
		{Name: "BenchmarkNotRunThisTime", NsPerOp: 1, // scoped out by -require below
			Metrics: map[string]float64{"txn_per_s": 1e9}},
	}}
	results, err := runCheck(base, parsedSamples(t), 0.20, false,
		regexp.MustCompile("ReadPathThroughput|CommitGroup16"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.failed {
			t.Fatalf("unexpected failure: %+v", r)
		}
	}
}

// TestCheckFailsAgainstDegradedBaseline is the gate's own acceptance
// criterion: fed a baseline that claims much higher throughput than
// measured (equivalently: a PR that regressed throughput >20%), the check
// must fail.
func TestCheckFailsAgainstDegradedBaseline(t *testing.T) {
	base := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkReadPathThroughput",
			Metrics: map[string]float64{"txn_per_s": 1000}}, // measured 500 → −50%
	}}
	results, err := runCheck(base, parsedSamples(t), 0.20, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	for _, r := range results {
		if r.failed && r.name == "BenchmarkReadPathThroughput" && r.what == "txn_per_s" {
			failed = true
		}
	}
	if !failed {
		t.Fatalf("50%% throughput drop passed the 20%% gate: %+v", results)
	}
}

// TestCheckToleranceBoundary: a drop inside the tolerance passes, one just
// beyond fails.
func TestCheckToleranceBoundary(t *testing.T) {
	mk := func(baselineTxn float64) []checkResult {
		base := baselineFile{Benchmarks: []baselineEntry{
			{Name: "BenchmarkReadPathThroughput", Metrics: map[string]float64{"txn_per_s": baselineTxn}},
		}}
		res, err := runCheck(base, parsedSamples(t), 0.20, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, r := range mk(600) { // measured 500 = −16.7%: inside
		if r.failed {
			t.Fatalf("−16.7%% drop failed a 20%% gate: %+v", r)
		}
	}
	var sawFail bool
	for _, r := range mk(640) { // measured 500 = −21.9%: beyond
		if r.failed {
			sawFail = true
		}
	}
	if !sawFail {
		t.Fatal("−21.9% drop passed a 20% gate")
	}
}

// TestCheckNsOptIn: ns/op regressions are informational unless -gate-ns.
func TestCheckNsOptIn(t *testing.T) {
	base := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkCommitGroup16", NsPerOp: 100_000}, // measured 240193: 2.4x slower
	}}
	res, err := runCheck(base, parsedSamples(t), 0.20, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.failed {
			t.Fatalf("ns/op gated without -gate-ns: %+v", r)
		}
	}
	res, err = runCheck(base, parsedSamples(t), 0.20, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sawFail bool
	for _, r := range res {
		sawFail = sawFail || r.failed
	}
	if !sawFail {
		t.Fatal("-gate-ns did not gate a 2.4x ns/op regression")
	}
}

// TestCheckLowerIsBetterFailsOnIncrease is the allocs-gate acceptance
// criterion: a lower_is_better metric that GREW beyond tolerance (a PR that
// re-introduced per-txn allocations) must fail, even though the same delta
// would read as an improvement under throughput semantics.
func TestCheckLowerIsBetterFailsOnIncrease(t *testing.T) {
	base := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkReadWriteThroughput/shards=1",
			Metrics:       map[string]float64{"allocs_per_committed_txn": 0.2}, // measured 0.38 → +90%
			LowerIsBetter: []string{"allocs_per_committed_txn"}},
	}}
	results, err := runCheck(base, parsedSamples(t), 0.20, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	var failed bool
	for _, r := range results {
		if r.what == "allocs_per_committed_txn" {
			if !r.lower {
				t.Fatalf("direction not inverted: %+v", r)
			}
			failed = failed || r.failed
		}
	}
	if !failed {
		t.Fatalf("+90%% alloc growth passed the 20%% gate: %+v", results)
	}
}

// TestCheckLowerIsBetterPassesOnDecrease: shrinking a cost metric is an
// improvement, never a failure — the exact delta that would fail a
// throughput metric.
func TestCheckLowerIsBetterPassesOnDecrease(t *testing.T) {
	base := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkReadWriteThroughput/shards=1",
			Metrics:       map[string]float64{"allocs_per_committed_txn": 10}, // measured 0.38 → −96%
			LowerIsBetter: []string{"allocs_per_committed_txn"}},
	}}
	results, err := runCheck(base, parsedSamples(t), 0.20, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	var saw bool
	for _, r := range results {
		if r.what != "allocs_per_committed_txn" {
			continue
		}
		saw = true
		if r.failed {
			t.Fatalf("−96%% alloc drop failed a lower-is-better gate: %+v", r)
		}
		if !r.improved() {
			t.Fatalf("alloc drop not counted as an improvement: %+v", r)
		}
	}
	if !saw {
		t.Fatalf("allocs_per_committed_txn not compared: %+v", results)
	}
}

// TestCheckLowerIsBetterDirectionIsPerEntry: the same metric key in an entry
// WITHOUT lower_is_better keeps throughput semantics — the direction flag is
// per-baseline-entry data, not a global metric-name registry.
func TestCheckLowerIsBetterDirectionIsPerEntry(t *testing.T) {
	base := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkReadWriteThroughput/shards=1",
			Metrics: map[string]float64{"allocs_per_committed_txn": 10}}, // measured 0.38 → −96%
	}}
	results, err := runCheck(base, parsedSamples(t), 0.20, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sawFail bool
	for _, r := range results {
		if r.what == "allocs_per_committed_txn" {
			sawFail = sawFail || r.failed
		}
	}
	if !sawFail {
		t.Fatal("undeclared direction treated a −96% drop as passing under higher-is-better semantics")
	}
}

// TestCheckLowerIsBetterMissingFailsUnderRequire: a lower_is_better baseline
// entry whose benchmark never ran must fail loudly when -require names it —
// an alloc gate that silently stops running is an alloc gate that silently
// stopped gating.
func TestCheckLowerIsBetterMissingFailsUnderRequire(t *testing.T) {
	base := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkAllocGateRenamedAway",
			Metrics:       map[string]float64{"allocs_per_committed_txn": 0.4},
			LowerIsBetter: []string{"allocs_per_committed_txn"}},
		{Name: "BenchmarkReadPathThroughput",
			Metrics: map[string]float64{"txn_per_s": 480}},
	}}
	results, err := runCheck(base, parsedSamples(t), 0.20, false,
		regexp.MustCompile("AllocGate|ReadPathThroughput"))
	if err != nil {
		t.Fatal(err)
	}
	var missFailed bool
	for _, r := range results {
		if r.name == "BenchmarkAllocGateRenamedAway" {
			if !r.failed || r.kind != "missing" {
				t.Fatalf("missing alloc-gated benchmark not failed: %+v", r)
			}
			missFailed = true
		}
	}
	if !missFailed {
		t.Fatal("missing alloc-gated benchmark was silently skipped under -require")
	}
}

// TestCheckEmptyIntersectionFails: a typo'd -bench regex must not produce a
// silently green gate.
func TestCheckEmptyIntersectionFails(t *testing.T) {
	base := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkSomethingElse", NsPerOp: 1},
	}}
	if _, err := runCheck(base, parsedSamples(t), 0.20, false, nil); err == nil {
		t.Fatal("empty baseline∩output intersection must error")
	}
}

// TestCheckMissingBaselineFailsLoudly: a baseline entry absent from the
// candidate run must FAIL the gate by default — a silently skipped benchmark
// is a silently ungated one (the renamed-benchmark / typo'd-regex trap).
func TestCheckMissingBaselineFailsLoudly(t *testing.T) {
	base := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkReadPathThroughput",
			Metrics: map[string]float64{"txn_per_s": 480}},
		{Name: "BenchmarkRenamedAway",
			Metrics: map[string]float64{"txn_per_s": 100}},
	}}
	results, err := runCheck(base, parsedSamples(t), 0.20, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	var missFailed bool
	for _, r := range results {
		if r.name == "BenchmarkRenamedAway" {
			if !r.failed || r.kind != "missing" {
				t.Fatalf("missing baseline not failed: %+v", r)
			}
			missFailed = true
		}
	}
	if !missFailed {
		t.Fatal("missing baseline entry was silently skipped")
	}
}

// TestCheckRequireScopesMissing: -require lets a deliberate-subset CI job
// name what it owes; baseline entries outside the scope may be absent, ones
// inside may not.
func TestCheckRequireScopesMissing(t *testing.T) {
	base := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkReadPathThroughput",
			Metrics: map[string]float64{"txn_per_s": 480}},
		{Name: "BenchmarkNightlyOnly",
			Metrics: map[string]float64{"txn_per_s": 100}},
	}}
	results, err := runCheck(base, parsedSamples(t), 0.20, false,
		regexp.MustCompile("^BenchmarkReadPath"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.failed {
			t.Fatalf("out-of-scope absence failed the gate: %+v", r)
		}
	}
	// The same scope with the required benchmark absent must fail.
	base2 := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkReadPathGone",
			Metrics: map[string]float64{"txn_per_s": 480}},
		{Name: "BenchmarkCommitGroup16",
			Metrics: map[string]float64{"commits_per_sync": 4.5}},
	}}
	results, err = runCheck(base2, parsedSamples(t), 0.20, false,
		regexp.MustCompile("^BenchmarkReadPath"))
	if err != nil {
		t.Fatal(err)
	}
	var sawMiss bool
	for _, r := range results {
		sawMiss = sawMiss || (r.failed && r.kind == "missing")
	}
	if !sawMiss {
		t.Fatal("in-scope missing benchmark did not fail")
	}
}

// TestCheckReportsNewBenchmarks: a run benchmark without a baseline entry
// appears as an informational "new" row (never a failure) so fresh
// benchmarks are visible in CI logs before their baseline lands.
func TestCheckReportsNewBenchmarks(t *testing.T) {
	base := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkReadPathThroughput", Metrics: map[string]float64{"txn_per_s": 480}},
	}}
	results, err := runCheck(base, parsedSamples(t), 0.20, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	newRows := map[string]bool{}
	for _, r := range results {
		if r.kind == "new" {
			if r.failed {
				t.Fatalf("a new benchmark failed the gate: %+v", r)
			}
			newRows[r.name] = true
		}
	}
	for _, want := range []string{"BenchmarkCommitGroup16", "BenchmarkReadWriteThroughput/shards=1", "BenchmarkReadWriteThroughput/shards=4"} {
		if !newRows[want] {
			t.Fatalf("%s not reported as new; rows: %+v", want, results)
		}
	}
}

// TestCheckResultsSorted: the delta table is sorted by benchmark name so
// successive CI logs diff cleanly (the perf-trajectory reading the table
// exists for).
func TestCheckResultsSorted(t *testing.T) {
	base := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkReadPathThroughput", Metrics: map[string]float64{"txn_per_s": 480}},
		{Name: "BenchmarkCommitGroup16", Metrics: map[string]float64{"commits_per_sync": 4.5}},
	}}
	results, err := runCheck(base, parsedSamples(t), 0.20, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if results[i].name < results[i-1].name {
			t.Fatalf("results out of order at %d: %q after %q", i, results[i].name, results[i-1].name)
		}
	}
}

// TestCheckPrintsDeltaTableOnPass: the fix this PR carries — a passing gate
// must still print every per-benchmark delta, not just the verdict.
func TestCheckPrintsDeltaTableOnPass(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench.out")
	basePath := filepath.Join(dir, "base.json")
	if err := os.WriteFile(benchPath, []byte(sampleBenchOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	baseJSON := `{"benchmarks": [
		{"name": "BenchmarkReadPathThroughput", "ns_per_op": 500000000, "metrics": {"txn_per_s": 480}},
		{"name": "BenchmarkCommitGroup16", "ns_per_op": 250000, "metrics": {"commits_per_sync": 4.5}}
	]}`
	if err := os.WriteFile(basePath, []byte(baseJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := check(benchPath, basePath, 0.20, false, "ReadPathThroughput|CommitGroup16")
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("gate failed (exit %d):\n%s", code, out)
	}
	text := string(out)
	for _, want := range []string{
		"BenchmarkReadPathThroughput", "txn_per_s",
		"BenchmarkCommitGroup16", "commits_per_sync",
		"NEW", "BenchmarkReadWriteThroughput/shards=4",
		"improved", "bench gate: pass",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("pass output missing %q:\n%s", want, text)
		}
	}
}

// TestCheckZeroMatchesStillPrintsTable: when nothing in the output matches
// the baseline (renamed suite, typo'd -bench regex), the gate fails AND the
// MISS/NEW rows print — they are exactly what reveals the rename.
func TestCheckZeroMatchesStillPrintsTable(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench.out")
	basePath := filepath.Join(dir, "base.json")
	if err := os.WriteFile(benchPath, []byte(sampleBenchOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	baseJSON := `{"benchmarks": [{"name": "BenchmarkRenamedAway", "metrics": {"txn_per_s": 100}}]}`
	if err := os.WriteFile(basePath, []byte(baseJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := check(benchPath, basePath, 0.20, false, "")
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("zero-intersection gate exited %d, want 1", code)
	}
	for _, want := range []string{"MISS", "BenchmarkRenamedAway", "NEW", "BenchmarkReadPathThroughput"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("zero-matches output missing %q:\n%s", want, out)
		}
	}
}
