package ri

import (
	"fmt"
	"sort"
	"sync"

	"ucc/internal/engine"
	"ucc/internal/history"
	"ucc/internal/model"
)

// Options configure an issuer.
type Options struct {
	// PAIntervalMicros is the default back-off interval INT_i attached to PA
	// transactions (§3.4).
	PAIntervalMicros model.Timestamp
	// RestartDelayMicros is the base delay before a rejected, victimized, or
	// busy-NAK'd transaction attempt is retried (randomized ±50%). The delay
	// doubles with every failed attempt up to RestartDelayCapMicros: a flat
	// delay re-collides every loser of a conflict at the same rate forever
	// (the restart storm), while exponential backoff spreads them out.
	RestartDelayMicros int64
	// RestartDelayCapMicros caps the exponential restart backoff; 0 selects
	// 32× RestartDelayMicros. The ±50% jitter applies after the cap.
	RestartDelayCapMicros int64
	// MaxAttempts caps restarts; 0 means unlimited. When the cap is hit the
	// transaction is dropped (reported as its last failure outcome).
	MaxAttempts int
	// DefaultComputeMicros is used when a transaction does not specify its
	// local computing phase duration.
	DefaultComputeMicros int64
	// SwitchOnRestart, when non-nil, lets a restarting transaction change
	// its concurrency control protocol (the paper's future-work item §6(4)):
	// it receives the current protocol and the number of failed attempts
	// and returns the protocol for the next attempt. The unified system
	// makes this safe — each attempt is a fresh set of requests under the
	// unified precedence space.
	SwitchOnRestart func(current model.Protocol, failedAttempts int) model.Protocol
	// SnapshotStalenessMicros is the read-only snapshot margin: an
	// ROSnapshot transaction reads at (submission time − this margin). It
	// must exceed the maximum one-way network delay — then every write with
	// an older commit stamp has already been implemented at every site when
	// the snapshot read arrives, and the snapshot is a consistent cut.
	// Default 15ms (simulated latencies top out at 5ms). On the real
	// runtime clocks are wall-anchored per process, so the margin must also
	// absorb inter-machine clock skew — size it to NTP error + max delay.
	SnapshotStalenessMicros int64
	// DisableROFastPath demotes ROSnapshot transactions to PA read-only
	// transactions that queue and lock like everyone else (the EXP-10
	// baseline and an operational escape hatch).
	DisableROFastPath bool
	// Admission configures the admission controller: token-bucket + AIMD
	// in-flight window gating on new-transaction starts, the front-door
	// defense that sheds offered load beyond capacity instead of queueing
	// it. Disabled by default.
	Admission AdmissionOptions
	// QMShards is the number of queue-manager shards per data site; every
	// per-item message is addressed to the shard mailbox its item hashes to
	// (engine.QMShardAddr + model.ShardOfItem). Must match qm.Options.Shards
	// cluster-wide. Zero or one addresses the site's single shard-0 mailbox,
	// the pre-sharding behaviour.
	QMShards int
	// Quorum switches replica access from the default read-primary/write-all
	// to quorum mode: reads are requested at every copy and proceed on any R
	// grants (the issuer keeps the value with the highest commit stamp),
	// writes proceed on any W of N, and a copy that NAKs busy is excluded
	// from the attempt's quorum instead of aborting the whole attempt — the
	// attempt only restarts (as overload, through the admission controller's
	// backoff) when an item drops below quorum. Nil keeps write-all.
	Quorum *model.Quorum
}

// DefaultOptions returns sensible defaults for simulation-scale runs.
func DefaultOptions() Options {
	return Options{
		PAIntervalMicros:        2_000,
		RestartDelayMicros:      4_000,
		DefaultComputeMicros:    1_000,
		SnapshotStalenessMicros: 15_000,
	}
}

// ChooseFunc picks the concurrency control protocol for a new transaction
// given the latest system-parameter estimates; nil means "use txn.Protocol".
type ChooseFunc func(t *model.Txn, est model.EstimateMsg) model.Protocol

// phase is the lifecycle stage of one transaction attempt.
type phase uint8

const (
	phaseNegotiating phase = iota // requests out; collecting grant/backoff/reject
	phaseAwaitGrants              // PA finalized; awaiting fresh grants
	phaseComputing                // all locks held; local computing phase
	phaseAwaitNormal              // T/O semi-converted; awaiting normal grants
)

// copyReq tracks one physical request of the active attempt.
type copyReq struct {
	copyID  model.CopyID
	kind    model.OpKind
	granted bool
	// normal is true once a normal (non-pre-scheduled) grant or a
	// NormalGrantMsg has been received.
	normal bool
	// preSched records that the current grant was pre-scheduled.
	preSched bool
	// responded is true once this copy sent grant/backoff (PA negotiation).
	responded bool
	value     int64
	// commitMicros is the commit stamp of the granted value. Quorum mode
	// compares grants from different copies of an item by stamp — per-copy
	// version ordinals diverge under quorum writes, stamps do not.
	commitMicros int64
	// excluded drops this copy from the attempt's quorum (busy NAK, or a
	// straggler back-off after PA finalization): its request was withdrawn
	// and its responses no longer count toward any gate.
	excluded bool
}

// copyReqPool recycles per-copy attempt state: every attempt acquires one
// copyReq per physical request at launch and releases the set when the
// attempt's bookkeeping is torn down (re-launch, commit, or drop), so
// steady-state traffic allocates none. The lifetime is attempt residency —
// s.reqs/s.order hold the only references — and the poolsafe analyzer tracks
// acquireCopyReq results like pooled messages.
var copyReqPool = sync.Pool{New: func() any { return new(copyReq) }}

// acquireCopyReq returns a zeroed copyReq from the pool.
func acquireCopyReq() *copyReq {
	return copyReqPool.Get().(*copyReq)
}

// recycleCopyReq returns r to the pool. The caller must not touch r
// afterwards and must have dropped it from s.reqs/s.order first.
func recycleCopyReq(r *copyReq) {
	*r = copyReq{}
	copyReqPool.Put(r)
}

// txnState is the issuer-side state of one in-flight transaction.
type txnState struct {
	txn     *model.Txn
	attempt model.Attempt
	ts      model.Timestamp
	// expectTS filters stale PA grants: only grants stamped with expectTS
	// count after the agreed timestamp was finalized.
	expectTS model.Timestamp
	phase    phase
	reqs     map[model.CopyID]*copyReq
	// order lists the requests in deterministic (item, site) order:
	// iterating the reqs map directly would reorder network sends between
	// runs and break seed-reproducibility.
	order []*copyReq

	firstArrival  int64
	arrival       int64
	firstGrant    int64
	messages      int64
	backoffMax    model.Timestamp
	anyBackoff    bool
	finalized     bool
	backoffReads  int
	backoffWrites int
	attempts      int
	preSchedAny   bool
}

func predGranted(r *copyReq) bool   { return r.granted }
func predResponded(r *copyReq) bool { return r.responded }
func predNormal(r *copyReq) bool    { return r.normal }

// gate evaluates an attempt-progress condition. In write-all mode every
// request must satisfy pred. In quorum mode each item group needs pred on at
// least its quorum — W of the item's copies for writes, R for reads — among
// the copies not excluded from the attempt; the group's need is counted even
// when every copy is excluded, so a fully-excluded item can never pass
// vacuously.
func (ri *Issuer) gate(s *txnState, pred func(*copyReq) bool) bool {
	if ri.opts.Quorum == nil {
		for _, r := range s.reqs {
			if !pred(r) {
				return false
			}
		}
		return true
	}
	needs, got := ri.gateScratch()
	for _, r := range s.reqs {
		needs[r.copyID.Item] = ri.quorumNeed(r.kind)
		if !r.excluded && pred(r) {
			got[r.copyID.Item]++
		}
	}
	for item, need := range needs {
		if got[item] < need {
			return false
		}
	}
	return true
}

// gateScratch returns the cleared reusable need/got maps for one quorum-gate
// evaluation. Gates run under ri.mu and never nest, so two maps suffice for
// the whole issuer — quorum mode stops allocating a pair per grant event.
func (ri *Issuer) gateScratch() (needs, got map[model.ItemID]int) {
	if ri.gateNeeds == nil {
		ri.gateNeeds = map[model.ItemID]int{}
		ri.gateGot = map[model.ItemID]int{}
	}
	clear(ri.gateNeeds)
	clear(ri.gateGot)
	return ri.gateNeeds, ri.gateGot
}

// quorumNeed returns the per-item grant quorum for a request kind.
func (ri *Issuer) quorumNeed(kind model.OpKind) int {
	if kind == model.OpWrite {
		return ri.opts.Quorum.W
	}
	return ri.opts.Quorum.R
}

// quorumSatisfiable reports whether every item group can still reach its
// quorum among the copies not yet excluded. False means the attempt is
// blocked below quorum and must restart as overload.
func (ri *Issuer) quorumSatisfiable(s *txnState) bool {
	needs, left := ri.gateScratch()
	for _, r := range s.reqs {
		needs[r.copyID.Item] = ri.quorumNeed(r.kind)
		if !r.excluded {
			left[r.copyID.Item]++
		}
	}
	for item, need := range needs {
		if left[item] < need {
			return false
		}
	}
	return true
}

// roState is the issuer-side state of one in-flight read-only snapshot
// transaction: no locks, no negotiation, no restarts — just a scatter of
// snapshot reads and a gather of their replies.
type roState struct {
	txn      *model.Txn
	snapTS   int64
	arrival  int64
	pending  map[model.CopyID]bool
	messages int64
}

// Issuer is the request-issuer actor for one user site.
type Issuer struct {
	mu   sync.Mutex
	site model.SiteID
	// pmap is the issuer's current view of the versioned partition map. It
	// may lag the cluster's: every request carries pmap.Epoch, and a queue
	// manager that no longer owns the addressed copy answers with a
	// WrongEpochMsg carrying the newer map, which installs here before the
	// attempt restarts against the fresh placement.
	pmap     *model.PartitionMap
	recorder *history.Recorder
	opts     Options
	choose   ChooseFunc

	clock     model.Timestamp
	active    map[model.TxnID]*txnState
	roActive  map[model.TxnID]*roState
	estimates model.EstimateMsg
	// notifyDriver sends TxnFinishedMsg to the site's workload driver on
	// every terminal transaction event (closed-loop pacing). Only set when
	// a closed-loop driver is actually registered at this site.
	notifyDriver bool
	// finalTS remembers the committed timestamp of T/O and PA transactions
	// (test oracle for the timestamp-order invariant).
	finalTS map[model.TxnID]model.Timestamp

	// adm is the admission controller (nil when Options.Admission is off).
	adm *admission

	// gateNeeds/gateGot are gateScratch's reusable maps (quorum mode only);
	// guarded by mu like the rest of the issuer state.
	gateNeeds map[model.ItemID]int
	gateGot   map[model.ItemID]int

	// Stats (monotone counters).
	submitted   uint64
	committed   uint64
	roCommitted uint64 // committed via the read-only snapshot fast path
	roStale     uint64 // snapshot replies served inexactly (chain GC'd past ts)
	rejects     uint64
	victims     uint64
	dropped     uint64
	shed        uint64 // arrivals refused by the admission controller
	busyNAKs    uint64 // BusyMsg NAKs received from saturated queue managers
	roBusyShed  uint64 // read-only snapshot txns shed terminally by a BusyMsg NAK
	rebackoffs  uint64 // PA back-offs received after finalization (must stay 0)
	// quorumExcluded counts copies dropped from an attempt's quorum (busy
	// NAKs and post-finalize stragglers); zero outside quorum mode.
	quorumExcluded uint64
	// wrongEpochNAKs counts WrongEpochMsg NAKs — requests that raced a
	// placement change and reached a queue manager that no longer owns the
	// copy. mapUpdates counts newer partition maps installed here (from
	// NAK piggybacks and MapUpdateMsg pushes).
	wrongEpochNAKs uint64
	mapUpdates     uint64
}

// New creates an issuer for site routing by pm, its initial view of the
// versioned partition map (the issuer keeps a private clone and follows
// later epochs via WrongEpochMsg NAKs and MapUpdateMsg pushes). recorder may
// be nil; choose may be nil to honour each transaction's preset protocol.
func New(site model.SiteID, pm *model.PartitionMap, recorder *history.Recorder, opts Options, choose ChooseFunc) *Issuer {
	if opts.PAIntervalMicros <= 0 {
		opts.PAIntervalMicros = 1
	}
	if opts.DefaultComputeMicros < 0 {
		opts.DefaultComputeMicros = 0
	}
	if opts.SnapshotStalenessMicros <= 0 {
		opts.SnapshotStalenessMicros = DefaultOptions().SnapshotStalenessMicros
	}
	iss := &Issuer{
		site:     site,
		pmap:     pm.Clone(),
		recorder: recorder,
		opts:     opts,
		choose:   choose,
		active:   map[model.TxnID]*txnState{},
		roActive: map[model.TxnID]*roState{},
		finalTS:  map[model.TxnID]model.Timestamp{},
	}
	if opts.Admission.Enabled {
		iss.adm = newAdmission(opts.Admission)
	}
	return iss
}

// Stats is a snapshot of issuer counters.
type Stats struct {
	Submitted, Committed, ROCommitted, ROStale, Rejects, Victims, Dropped, ReBackoffs uint64
	// Shed counts arrivals refused by the admission controller; BusyNAKs
	// counts BusyMsg congestion NAKs received from saturated queue managers.
	Shed, BusyNAKs uint64
	// ROBusyShed counts read-only snapshot transactions shed outright by a
	// BusyMsg NAK — the fast path has no restart machinery, so a NAK is
	// terminal for it. A subset of BusyNAKs (which also counts NAKs that
	// merely aborted one read-write attempt), and a terminal outcome in the
	// Offered identity: submitted = committed + shed + roBusyShed + dropped
	// + active.
	ROBusyShed uint64
	// QuorumExcluded counts copies dropped from an attempt's quorum (busy
	// NAKs and post-finalize stragglers); zero outside quorum mode.
	QuorumExcluded uint64
	// WrongEpochNAKs counts WrongEpochMsg NAKs received for requests that
	// raced a placement change; MapUpdates counts newer partition maps
	// installed at this issuer (NAK piggybacks plus MapUpdateMsg pushes).
	WrongEpochNAKs, MapUpdates uint64
	Active                     int
	// Window is the admission controller's current in-flight window (0 when
	// admission control is disabled).
	Window float64
}

// Snapshot returns current counters; safe for concurrent use.
func (ri *Issuer) Snapshot() Stats {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	s := Stats{
		Submitted: ri.submitted, Committed: ri.committed, ROCommitted: ri.roCommitted,
		ROStale: ri.roStale,
		Rejects: ri.rejects, Victims: ri.victims, Dropped: ri.dropped, ReBackoffs: ri.rebackoffs,
		Shed: ri.shed, BusyNAKs: ri.busyNAKs, ROBusyShed: ri.roBusyShed,
		QuorumExcluded: ri.quorumExcluded,
		WrongEpochNAKs: ri.wrongEpochNAKs, MapUpdates: ri.mapUpdates,
		Active: len(ri.active) + len(ri.roActive),
	}
	if ri.adm != nil {
		s.Window = ri.adm.window
	}
	return s
}

// ActiveTxn describes one in-flight transaction (observability/debugging).
type ActiveTxn struct {
	ID       model.TxnID
	Protocol model.Protocol
	Attempt  model.Attempt
	Phase    string
	// Waiting lists copies that have not yet granted (or, in the
	// await-normal phase, not yet normalized).
	Waiting []model.CopyID
}

// ActiveTxns snapshots the in-flight transactions at this issuer.
func (ri *Issuer) ActiveTxns() []ActiveTxn {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	var out []ActiveTxn
	for _, s := range ri.active {
		at := ActiveTxn{
			ID:       s.txn.ID,
			Protocol: s.txn.Protocol,
			Attempt:  s.attempt,
		}
		switch s.phase {
		case phaseNegotiating:
			at.Phase = "negotiating"
		case phaseAwaitGrants:
			at.Phase = "await-grants"
		case phaseComputing:
			at.Phase = "computing"
		case phaseAwaitNormal:
			at.Phase = "await-normal"
		}
		for _, r := range s.reqs {
			if s.phase == phaseAwaitNormal {
				if !r.normal {
					at.Waiting = append(at.Waiting, r.copyID)
				}
			} else if !r.granted {
				at.Waiting = append(at.Waiting, r.copyID)
			}
		}
		out = append(out, at)
	}
	for _, s := range ri.roActive {
		at := ActiveTxn{ID: s.txn.ID, Protocol: model.ROSnapshot, Phase: "snapshot-read"}
		for c := range s.pending {
			at.Waiting = append(at.Waiting, c)
		}
		out = append(out, at)
	}
	return out
}

// SetNotifyDriver makes the issuer report terminal transaction events to the
// site's workload driver (closed-loop pacing). Call before the engine starts.
func (ri *Issuer) SetNotifyDriver(on bool) {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	ri.notifyDriver = on
}

// qmAddr returns the shard mailbox serving one physical copy: the queue
// manager of the copy's site, shard chosen by the item hash every routing
// party agrees on.
func (ri *Issuer) qmAddr(c model.CopyID) engine.Addr {
	return engine.QMShardAddr(c.Site, model.ShardOfItem(c.Item, ri.opts.QMShards))
}

// finished reports a terminal event to the driver when asked to.
func (ri *Issuer) finished(ctx engine.Context, id model.TxnID) {
	if ri.notifyDriver {
		ctx.Send(engine.DriverAddr(ri.site), model.TxnFinishedMsg{Txn: id})
	}
}

// FinalTimestamp reports the committed timestamp of a T/O or PA transaction.
func (ri *Issuer) FinalTimestamp(id model.TxnID) (model.Timestamp, bool) {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	ts, ok := ri.finalTS[id]
	return ts, ok
}

// OnMessage implements engine.Actor.
func (ri *Issuer) OnMessage(ctx engine.Context, from engine.Addr, msg model.Message) {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	switch v := msg.(type) {
	case model.SubmitTxnMsg:
		ri.onSubmit(ctx, v.Txn)
	case model.GrantMsg:
		ri.onGrant(ctx, v)
	case *model.GrantMsg:
		// Pooled pointer forms deref to stack copies: the pointer stays owned
		// by the delivery layer, which recycles it after OnMessage returns.
		ri.onGrant(ctx, *v)
	case model.SnapReadReplyMsg:
		ri.onSnapReply(ctx, v)
	case *model.SnapReadReplyMsg:
		ri.onSnapReply(ctx, *v)
	case model.NormalGrantMsg:
		ri.onNormalGrant(ctx, v)
	case *model.NormalGrantMsg:
		ri.onNormalGrant(ctx, *v)
	case model.RejectMsg:
		ri.onReject(ctx, v)
	case *model.RejectMsg:
		ri.onReject(ctx, *v)
	case model.BackoffMsg:
		ri.onBackoff(ctx, v)
	case *model.BackoffMsg:
		ri.onBackoff(ctx, *v)
	case model.VictimMsg:
		ri.onVictim(ctx, v)
	case model.BusyMsg:
		ri.onBusy(ctx, v)
	case *model.BusyMsg:
		ri.onBusy(ctx, *v)
	case model.WrongEpochMsg:
		ri.onWrongEpoch(ctx, v)
	case model.MapUpdateMsg:
		ri.onMapUpdate(v)
	case model.ComputeDoneMsg:
		ri.onComputeDone(ctx, v)
	case model.RestartMsg:
		ri.onRestart(ctx, v)
	case model.EstimateMsg:
		ri.estimates = v
	case model.StopMsg:
		// No periodic work to stop; present for symmetry.
	default:
		panic(fmt.Sprintf("ri: site %d: unexpected message %T", ri.site, msg))
	}
}

// nextTS draws a fresh timestamp: monotone per issuer and loosely coupled to
// engine time so timestamps are comparable across sites (as wall-clock-based
// timestamps would be in a deployment).
func (ri *Issuer) nextTS(ctx engine.Context) model.Timestamp {
	now := model.Timestamp(ctx.NowMicros())
	if now > ri.clock {
		ri.clock = now
	}
	ri.clock++
	return ri.clock
}

func (ri *Issuer) onSubmit(ctx engine.Context, t *model.Txn) {
	if t.Size() == 0 {
		return // nothing to do; vacuous transaction
	}
	if ri.choose != nil {
		t.Protocol = ri.choose(t, ri.estimates)
	}
	if t.Protocol == model.ROSnapshot && (t.NumWrites() > 0 || ri.opts.DisableROFastPath) {
		// The fast path is read-only by construction; writers (and every
		// transaction when the path is disabled) fall back to PA, the
		// restart-free member protocol.
		t.Protocol = model.PA
	}
	ri.submitted++
	if ri.adm != nil {
		now := ctx.NowMicros()
		if !ri.adm.admit(now, len(ri.active)+len(ri.roActive)) {
			// Shed at the front door: no request is ever issued, the
			// collector records the refusal, and (in closed-loop mode) the
			// driver slot frees immediately.
			ri.shed++
			ctx.Send(engine.CollectorAddr(), model.TxnDoneMsg{
				Txn:                t.ID,
				Protocol:           t.Protocol,
				Outcome:            model.OutcomeShed,
				ArrivalMicros:      now,
				DoneMicros:         now,
				FirstArrivalMicros: now,
				Size:               t.Size(),
				Reads:              t.NumReads(),
				Writes:             t.NumWrites(),
			})
			ri.finished(ctx, t.ID)
			return
		}
	}
	if t.Protocol == model.ROSnapshot {
		ri.launchRO(ctx, t)
		return
	}
	s := &txnState{
		txn:          t,
		firstArrival: ctx.NowMicros(),
	}
	ri.active[t.ID] = s
	ri.launch(ctx, s)
}

// launchRO starts a read-only snapshot transaction: one SnapReadMsg per item
// to its primary copy, at a snapshot timestamp safely in the past. There is
// no negotiation and no lock: the transaction cannot be rejected, backed
// off, victimized, or restarted, and it never re-enters launch.
func (ri *Issuer) launchRO(ctx engine.Context, t *model.Txn) {
	now := ctx.NowMicros()
	snap := now - ri.opts.SnapshotStalenessMicros
	if snap < 0 {
		snap = 0
	}
	s := &roState{
		txn:     t,
		snapTS:  snap,
		arrival: now,
		pending: map[model.CopyID]bool{},
	}
	ri.roActive[t.ID] = s
	// ReadSet is sorted, so the send order is deterministic (map iteration
	// would reorder same-timestamp events between runs).
	for _, item := range t.ReadSet {
		c := model.CopyID{Item: item, Site: ri.pmap.Primary(item)}
		s.pending[c] = true
		s.messages++
		ctx.Send(ri.qmAddr(c), model.PooledSnapRead(model.SnapReadMsg{
			Txn:        t.ID,
			Copy:       c,
			SnapMicros: snap,
			Site:       ri.site,
			Epoch:      ri.pmap.Epoch,
		}))
	}
	if len(s.pending) == 0 {
		// Unreachable via onSubmit (zero-op transactions return before the
		// RO branch), but a hang here would leak a closed-loop slot forever,
		// so go straight to the compute phase defensively.
		ri.startROCompute(ctx, s)
	}
}

// startROCompute runs the local computing phase like any other transaction
// (the fast path removes queueing, not work), then finishes via
// onComputeDone.
func (ri *Issuer) startROCompute(ctx engine.Context, s *roState) {
	d := s.txn.ComputeMicros
	if d <= 0 {
		d = ri.opts.DefaultComputeMicros
	}
	ctx.SetTimer(d, model.ComputeDoneMsg{Txn: s.txn.ID})
}

func (ri *Issuer) onSnapReply(ctx engine.Context, v model.SnapReadReplyMsg) {
	s := ri.roActive[v.Txn]
	if s == nil || !s.pending[v.Copy] {
		return
	}
	delete(s.pending, v.Copy)
	if !v.Exact {
		ri.roStale++
	}
	if len(s.pending) == 0 {
		ri.startROCompute(ctx, s)
	}
}

// finishRO commits a read-only snapshot transaction.
func (ri *Issuer) finishRO(ctx engine.Context, s *roState) {
	ri.committed++
	ri.roCommitted++
	if ri.adm != nil {
		ri.adm.onCommit(ctx.NowMicros(), ctx.NowMicros()-s.arrival)
	}
	if ri.recorder != nil {
		ri.recorder.Committed(s.txn.ID, model.ROSnapshot)
	}
	now := ctx.NowMicros()
	ctx.Send(engine.CollectorAddr(), model.TxnDoneMsg{
		Txn:                s.txn.ID,
		Protocol:           model.ROSnapshot,
		Outcome:            model.OutcomeCommitted,
		ArrivalMicros:      s.arrival,
		DoneMicros:         now,
		FirstArrivalMicros: s.arrival,
		Attempts:           1,
		Size:               s.txn.Size(),
		Reads:              s.txn.NumReads(),
		Messages:           s.messages,
	})
	delete(ri.roActive, s.txn.ID)
	ri.finished(ctx, s.txn.ID)
}

// launch sends the attempt's requests to every queue manager involved:
// reads go to the primary copy, writes to every replica (read-one/write-all).
func (ri *Issuer) launch(ctx engine.Context, s *txnState) {
	t := s.txn
	s.attempts++
	s.arrival = ctx.NowMicros()
	s.phase = phaseNegotiating
	ri.releaseAttempt(s)
	s.firstGrant = 0
	s.backoffMax = 0
	s.anyBackoff = false
	s.finalized = false
	s.preSchedAny = false
	s.backoffReads = 0
	s.backoffWrites = 0

	switch t.Protocol {
	case model.TwoPL:
		s.ts = model.NoTimestamp
	default:
		s.ts = ri.nextTS(ctx)
	}
	s.expectTS = s.ts

	add := func(item model.ItemID, site model.SiteID, kind model.OpKind) {
		c := model.CopyID{Item: item, Site: site}
		r := acquireCopyReq()
		r.copyID = c
		r.kind = kind
		// The attempt's bookkeeping is the pool lifetime: these two stores are
		// the only references, both torn down through releaseAttempt.
		//ucclint:allow poolsafe -- attempt-scoped retention; releaseAttempt recycles every copyReq it stores before the next acquire
		s.reqs[c] = r
		//ucclint:allow poolsafe -- same attempt-scoped retention as the map store above
		s.order = append(s.order, r)
	}
	for _, item := range t.ReadSet {
		if ri.opts.Quorum != nil {
			// Quorum reads go to every copy and proceed on any R grants: the
			// read must intersect every write quorum, and any single copy —
			// the primary included — may be dead or lagging.
			for _, site := range ri.pmap.Replicas(item) {
				add(item, site, model.OpRead)
			}
			continue
		}
		add(item, ri.pmap.Primary(item), model.OpRead)
	}
	for _, item := range t.WriteSet {
		for _, site := range ri.pmap.Replicas(item) {
			add(item, site, model.OpWrite)
		}
	}
	sort.Slice(s.order, func(i, j int) bool {
		a, b := s.order[i].copyID, s.order[j].copyID
		if a.Item != b.Item {
			return a.Item < b.Item
		}
		return a.Site < b.Site
	})
	for _, r := range s.order {
		ri.send(ctx, s, ri.qmAddr(r.copyID), model.PooledRequest(model.RequestMsg{
			Txn:      t.ID,
			Attempt:  s.attempt,
			Protocol: t.Protocol,
			Kind:     r.kind,
			Copy:     r.copyID,
			TS:       s.ts,
			Interval: ri.opts.PAIntervalMicros,
			Site:     ri.site,
			Epoch:    ri.pmap.Epoch,
		}))
	}
}

func (ri *Issuer) send(ctx engine.Context, s *txnState, to engine.Addr, msg model.Message) {
	s.messages++
	ctx.Send(to, msg)
}

// releaseAttempt recycles every copyReq the attempt's bookkeeping holds and
// resets s.reqs/s.order for reuse. Called at re-launch (the new attempt
// builds a fresh set), at commit, and at the MaxAttempts drop — the three
// points after which no stale grant/NAK can resolve to a recycled copyReq
// (stateFor filters by attempt, and the terminal paths delete ri.active
// before returning to the delivery loop).
func (ri *Issuer) releaseAttempt(s *txnState) {
	for _, r := range s.order {
		recycleCopyReq(r)
	}
	s.order = s.order[:0]
	if s.reqs == nil {
		s.reqs = map[model.CopyID]*copyReq{}
	} else {
		clear(s.reqs)
	}
}

// stateFor returns the live state matching (txn, attempt), or nil for stale
// messages addressed to a completed or aborted attempt.
func (ri *Issuer) stateFor(id model.TxnID, attempt model.Attempt) *txnState {
	s := ri.active[id]
	if s == nil || s.attempt != attempt {
		return nil
	}
	return s
}

func (ri *Issuer) onGrant(ctx engine.Context, v model.GrantMsg) {
	s := ri.stateFor(v.Txn, v.Attempt)
	if s == nil {
		return
	}
	if s.txn.Protocol == model.PA && s.finalized && v.TS != s.expectTS {
		return // stale provisional grant, revoked at the QM
	}
	r := s.reqs[v.Copy]
	if r == nil || r.excluded || (r.granted && r.normal) {
		return
	}
	if s.firstGrant == 0 {
		s.firstGrant = ctx.NowMicros()
	}
	r.granted = true
	r.responded = true
	r.preSched = v.PreScheduled
	r.normal = !v.PreScheduled
	r.value = v.Value
	r.commitMicros = v.CommitMicros
	if v.PreScheduled {
		s.preSchedAny = true
	}
	ri.advance(ctx, s)
}

func (ri *Issuer) onNormalGrant(ctx engine.Context, v model.NormalGrantMsg) {
	s := ri.stateFor(v.Txn, v.Attempt)
	if s == nil {
		return
	}
	if r := s.reqs[v.Copy]; r != nil && !r.excluded {
		r.normal = true
	}
	if s.phase == phaseAwaitNormal && ri.gate(s, predNormal) {
		ri.releaseAll(ctx, s, false)
		ri.finish(ctx, s)
	}
}

// advance checks whether the attempt can move to its next phase.
func (ri *Issuer) advance(ctx engine.Context, s *txnState) {
	switch s.phase {
	case phaseNegotiating:
		if s.txn.Protocol == model.PA && s.anyBackoff {
			// §3.4 step 1(c)-(e): wait for grant-or-backoff from every
			// queue, then agree on TS' = max TS'_ij and broadcast it.
			if ri.gate(s, predResponded) && !s.finalized {
				ri.finalizePA(ctx, s)
			}
			return
		}
		if ri.gate(s, predGranted) {
			ri.startCompute(ctx, s)
		}
	case phaseAwaitGrants:
		if ri.gate(s, predGranted) {
			ri.startCompute(ctx, s)
		}
	}
}

// finalizePA broadcasts the agreed timestamp and discards provisional grants
// (the QMs revoke them on re-insertion, per §3.4 step 2(d)).
func (ri *Issuer) finalizePA(ctx engine.Context, s *txnState) {
	s.finalized = true
	final := s.backoffMax
	if final <= s.ts {
		final = s.ts + 1
	}
	s.expectTS = final
	if final > ri.clock {
		ri.clock = final
	}
	for _, r := range s.order {
		if r.excluded {
			continue // withdrawn from the quorum; its entry is already gone
		}
		r.granted = false
		r.normal = false
		r.preSched = false
		ri.send(ctx, s, ri.qmAddr(r.copyID), model.PooledFinalTS(model.FinalTSMsg{
			Txn: s.txn.ID, Attempt: s.attempt, Copy: r.copyID, TS: final,
		}))
	}
	s.phase = phaseAwaitGrants
}

func (ri *Issuer) onBackoff(ctx engine.Context, v model.BackoffMsg) {
	s := ri.stateFor(v.Txn, v.Attempt)
	if s == nil {
		return
	}
	r := s.reqs[v.Copy]
	if r == nil || r.excluded {
		return
	}
	if s.finalized {
		if ri.opts.Quorum != nil {
			// Quorum finalization waits for W responses, not N, so a
			// straggler backing off at the provisional timestamp after the
			// agreed one was broadcast is expected, not a Lemma 1 violation.
			// The straggler leaves the quorum; only dropping an item below
			// quorum restarts the attempt (overload semantics, like a busy
			// NAK).
			ri.excludeCopy(ctx, s, r)
			if !ri.quorumSatisfiable(s) {
				if ri.adm != nil {
					ri.adm.onBusy(ctx.NowMicros())
				}
				ri.reportAttempt(ctx, s, model.OutcomeBusy, r.kind)
				ri.abortAttempt(ctx, s, withdrawNone)
				ri.scheduleRestart(ctx, s)
			}
			return
		}
		// Lemma 1 guarantees at most one back-off per transaction; count
		// any violation (tests assert zero) but recover by re-finalizing.
		ri.rebackoffs++
		s.finalized = false
		s.phase = phaseNegotiating
	}
	r.responded = true
	r.granted = false
	s.anyBackoff = true
	if v.NewTS > s.backoffMax {
		s.backoffMax = v.NewTS
	}
	if r.kind == model.OpRead {
		s.backoffReads++
	} else {
		s.backoffWrites++
	}
	ri.advance(ctx, s)
}

func (ri *Issuer) onReject(ctx engine.Context, v model.RejectMsg) {
	s := ri.stateFor(v.Txn, v.Attempt)
	if s == nil || s.txn.Protocol != model.TO {
		return
	}
	if s.phase == phaseComputing || s.phase == phaseAwaitNormal {
		return // already executing; rejection cannot occur past full grant
	}
	ri.rejects++
	if v.Threshold >= ri.clock {
		ri.clock = v.Threshold + 1
	}
	var kind model.OpKind
	if r := s.reqs[v.Copy]; r != nil {
		kind = r.kind
	}
	ri.reportAttempt(ctx, s, model.OutcomeRejected, kind)
	ri.abortAttempt(ctx, s, v.Copy)
	ri.scheduleRestart(ctx, s)
}

func (ri *Issuer) onVictim(ctx engine.Context, v model.VictimMsg) {
	s := ri.stateFor(v.Txn, v.Attempt)
	if s == nil || s.txn.Protocol != model.TwoPL {
		return
	}
	if s.phase == phaseComputing || s.phase == phaseAwaitNormal {
		return // already past lock acquisition; let it finish
	}
	ri.victims++
	ri.reportAttempt(ctx, s, model.OutcomeDeadlockVictim, model.OpRead)
	ri.abortAttempt(ctx, s, withdrawNone)
	ri.scheduleRestart(ctx, s)
}

// onBusy handles a congestion NAK: the request was refused — by a saturated
// queue manager (full mailbox or data queue), or by the local transport
// (send-queue eviction or a batch dropped on an unreachable peer). Read-
// write attempts abort and restart under exponential backoff; read-only
// snapshot transactions are shed outright (the fast path has no restart
// machinery by design — the client retries). Either way the admission
// window shrinks: BusyMsg is the remote half of the AIMD feedback loop. The
// window decrease is applied only after the NAK proves to target a live
// attempt — reconnect-retried batches and dropped-batch NAKs can duplicate
// BusyMsgs for attempts already aborted and restarted, and a phantom NAK
// must not cut the window for traffic that no longer exists.
func (ri *Issuer) onBusy(ctx engine.Context, v model.BusyMsg) {
	now := ctx.NowMicros()
	if ro := ri.roActive[v.Txn]; ro != nil && ro.pending[v.Copy] {
		if ri.adm != nil {
			ri.adm.onBusy(now)
		}
		ri.busyNAKs++
		ri.roBusyShed++
		delete(ri.roActive, v.Txn)
		ctx.Send(engine.CollectorAddr(), model.TxnDoneMsg{
			Txn:                v.Txn,
			Protocol:           model.ROSnapshot,
			Outcome:            model.OutcomeBusy,
			ArrivalMicros:      ro.arrival,
			DoneMicros:         now,
			FirstArrivalMicros: ro.arrival,
			Attempts:           1,
			Size:               ro.txn.Size(),
			Reads:              ro.txn.NumReads(),
			Messages:           ro.messages,
		})
		ri.finished(ctx, v.Txn)
		return
	}
	s := ri.stateFor(v.Txn, v.Attempt)
	if s == nil {
		return
	}
	if s.phase == phaseComputing || s.phase == phaseAwaitNormal {
		return // already executing; a NAK cannot reach here (defensive)
	}
	if ri.adm != nil {
		ri.adm.onBusy(now)
	}
	ri.busyNAKs++
	if ri.opts.Quorum != nil {
		r := s.reqs[v.Copy]
		if r == nil || r.excluded {
			return // duplicate NAK for a copy already withdrawn
		}
		ri.excludeCopy(ctx, s, r)
		if ri.quorumSatisfiable(s) {
			// The quorum absorbs one busy copy: the attempt keeps waiting on
			// the remaining members instead of restarting. The admission
			// window still shrank above — congestion at any member is real
			// AIMD feedback even when this attempt survives it.
			return
		}
		// Below quorum: fall through to the overload restart.
	}
	var kind model.OpKind
	if r := s.reqs[v.Copy]; r != nil {
		kind = r.kind
	}
	ri.reportAttempt(ctx, s, model.OutcomeBusy, kind)
	// Withdraw EVERY request, including the NAK'd copy: a transport-
	// synthesized NAK (eviction, dropped batch) cannot know whether the
	// request reached the queue manager — a partially-received batch may
	// have left a resident entry that nothing else would ever retire if
	// this was the transaction's final attempt (MaxAttempts). A genuine QM
	// NAK queued nothing, and the QM treats an abort for an entry it never
	// held as a no-op, so the extra message is harmless there.
	ri.abortAttempt(ctx, s, withdrawNone)
	ri.scheduleRestart(ctx, s)
}

// installMap adopts m if it is newer than the issuer's current view. The
// clone matters: under the simulator every recipient shares one message
// value, and the issuer must not alias assignment slices with other actors.
func (ri *Issuer) installMap(m *model.PartitionMap) {
	if m.Epoch <= ri.pmap.Epoch {
		return
	}
	ri.pmap = m.Clone()
	ri.mapUpdates++
}

// onWrongEpoch handles a placement NAK: the request raced a partition-map
// change and reached a queue manager that no longer owns the addressed copy.
// The NAK piggybacks the authoritative map, so the issuer installs it and
// restarts the attempt against the new placement. Unlike a busy NAK this is
// not congestion feedback — the admission window is left alone: the cluster
// has capacity, the router was merely stale. Read-only snapshot transactions
// are shed terminally, exactly as under onBusy — the fast path has no
// restart machinery, the client retries against the (now corrected) map.
func (ri *Issuer) onWrongEpoch(ctx engine.Context, v model.WrongEpochMsg) {
	ri.installMap(&v.Map)
	now := ctx.NowMicros()
	if ro := ri.roActive[v.Txn]; ro != nil && ro.pending[v.Copy] {
		ri.wrongEpochNAKs++
		delete(ri.roActive, v.Txn)
		ctx.Send(engine.CollectorAddr(), model.TxnDoneMsg{
			Txn:                v.Txn,
			Protocol:           model.ROSnapshot,
			Outcome:            model.OutcomeBusy,
			ArrivalMicros:      ro.arrival,
			DoneMicros:         now,
			FirstArrivalMicros: ro.arrival,
			Attempts:           1,
			Size:               ro.txn.Size(),
			Reads:              ro.txn.NumReads(),
			Messages:           ro.messages,
		})
		ri.finished(ctx, v.Txn)
		return
	}
	s := ri.stateFor(v.Txn, v.Attempt)
	if s == nil {
		return // stale NAK for an attempt already finished or restarted
	}
	if s.phase == phaseComputing || s.phase == phaseAwaitNormal {
		// Every needed grant arrived before the flip: the old owner admitted
		// this attempt as a resident and will serve its releases through the
		// drain, so let it finish rather than waste the held locks.
		return
	}
	ri.wrongEpochNAKs++
	var kind model.OpKind
	if r := s.reqs[v.Copy]; r != nil {
		kind = r.kind
	}
	ri.reportAttempt(ctx, s, model.OutcomeBusy, kind)
	// Withdraw every request: entries parked at still-owned copies must not
	// outlive the attempt, and the old owner treats an abort for an entry it
	// never held (or already NAK'd) as a no-op.
	ri.abortAttempt(ctx, s, withdrawNone)
	ri.scheduleRestart(ctx, s)
}

// onMapUpdate installs a pushed partition map (the cluster publishes one to
// every issuer when an epoch is bumped, so routers converge without waiting
// to trip over a NAK first).
func (ri *Issuer) onMapUpdate(v model.MapUpdateMsg) {
	ri.installMap(&v.Map)
}

// excludeCopy drops one copy from the attempt's quorum and withdraws its
// request: any entry it holds is retired so it cannot block other
// transactions, and none of its past or future responses count toward a
// gate. The copy converges later via log shipping.
func (ri *Issuer) excludeCopy(ctx engine.Context, s *txnState, r *copyReq) {
	r.excluded = true
	ri.quorumExcluded++
	ri.send(ctx, s, ri.qmAddr(r.copyID), model.PooledAbort(model.AbortMsg{
		Txn: s.txn.ID, Attempt: s.attempt, Copy: r.copyID,
	}))
}

// withdrawNone is abortAttempt's skip sentinel meaning "withdraw every
// copy": Item -1 can never name a real copy (item ids are non-negative).
var withdrawNone = model.CopyID{Item: -1}

// abortAttempt withdraws every outstanding request except skip (the copy
// that rejected us holds no entry); pass withdrawNone to withdraw all.
func (ri *Issuer) abortAttempt(ctx engine.Context, s *txnState, skip model.CopyID) {
	for _, r := range s.order {
		if r.copyID == skip {
			continue
		}
		ri.send(ctx, s, ri.qmAddr(r.copyID), model.PooledAbort(model.AbortMsg{
			Txn: s.txn.ID, Attempt: s.attempt, Copy: r.copyID,
		}))
	}
}

// defaultRestartCapFactor sizes the exponential-backoff cap when
// RestartDelayCapMicros is unset: 32× the base delay (5 doublings).
const defaultRestartCapFactor = 32

// rawRestartDelay returns the pre-jitter restart delay after `attempts`
// failed attempts: exponential from RestartDelayMicros, capped. A flat delay
// is the restart-storm bug — under contention every loser of a round returns
// after the same mean delay and the round re-collides indefinitely; doubling
// per failure spreads the retries over an ever-wider horizon until the
// conflict drains.
func (ri *Issuer) rawRestartDelay(attempts int) int64 {
	base := ri.opts.RestartDelayMicros
	if base <= 0 {
		return 0
	}
	cap := ri.opts.RestartDelayCapMicros
	if cap <= 0 {
		cap = defaultRestartCapFactor * base
	}
	delay := base
	for i := 1; i < attempts && delay < cap; i++ {
		delay *= 2
	}
	if delay > cap {
		delay = cap
	}
	return delay
}

func (ri *Issuer) scheduleRestart(ctx engine.Context, s *txnState) {
	if ri.opts.MaxAttempts > 0 && s.attempts >= ri.opts.MaxAttempts {
		ri.dropped++
		delete(ri.active, s.txn.ID)
		ri.releaseAttempt(s)
		ri.finished(ctx, s.txn.ID)
		return
	}
	s.attempt++
	delay := ri.rawRestartDelay(s.attempts)
	if delay > 0 {
		delay = delay/2 + ctx.Rand().Int63n(delay) // ±50% jitter, kept from the flat scheme
	}
	ctx.SetTimer(delay, model.RestartMsg{Txn: s.txn.ID, Attempt: s.attempt})
}

func (ri *Issuer) onRestart(ctx engine.Context, v model.RestartMsg) {
	s := ri.stateFor(v.Txn, v.Attempt)
	if s == nil {
		return
	}
	if ri.opts.SwitchOnRestart != nil {
		s.txn.Protocol = ri.opts.SwitchOnRestart(s.txn.Protocol, s.attempts)
	}
	ri.launch(ctx, s)
}

func (ri *Issuer) startCompute(ctx engine.Context, s *txnState) {
	s.phase = phaseComputing
	d := s.txn.ComputeMicros
	if d <= 0 {
		d = ri.opts.DefaultComputeMicros
	}
	ctx.SetTimer(d, model.ComputeDoneMsg{Txn: s.txn.ID, Attempt: s.attempt})
}

func (ri *Issuer) onComputeDone(ctx engine.Context, v model.ComputeDoneMsg) {
	if ro := ri.roActive[v.Txn]; ro != nil {
		if len(ro.pending) == 0 {
			ri.finishRO(ctx, ro)
		}
		return
	}
	s := ri.stateFor(v.Txn, v.Attempt)
	if s == nil || s.phase != phaseComputing {
		return
	}
	if s.txn.Protocol == model.TO && s.preSchedAny {
		// §4.2 rule 4: convert all locks to semi-locks; the transaction is
		// executed now, but releases wait for one normal grant per item.
		ri.releaseAll(ctx, s, true)
		if ri.gate(s, predNormal) {
			ri.releaseAll(ctx, s, false)
			ri.finish(ctx, s)
			return
		}
		s.phase = phaseAwaitNormal
		ri.markExecuted(ctx, s)
		return
	}
	ri.releaseAll(ctx, s, false)
	ri.finish(ctx, s)
}

// writeValue evaluates the write-phase value for item from the attempt's
// collected pre-images (default: pre-image + 1).
func (ri *Issuer) writeValue(s *txnState, item model.ItemID) int64 {
	pre := func(it model.ItemID) int64 {
		if ri.opts.Quorum != nil {
			// The freshest granted copy wins: quorum intersection guarantees
			// at least one member of any R- or W-sized grant set carries the
			// newest committed write, and the commit stamp identifies it.
			var best *copyReq
			for _, r := range s.order {
				if r.copyID.Item != it || r.excluded || !r.granted {
					continue
				}
				if best == nil || r.commitMicros > best.commitMicros {
					best = r
				}
			}
			if best != nil {
				return best.value
			}
			return 0
		}
		// Prefer the primary copy's value.
		if r, ok := s.reqs[model.CopyID{Item: it, Site: ri.pmap.Primary(it)}]; ok {
			return r.value
		}
		for _, r := range s.order {
			if r.copyID.Item == it {
				return r.value
			}
		}
		return 0
	}
	if spec, ok := s.txn.SpecFor(item); ok {
		if spec.UseSource {
			return pre(spec.Source) + spec.AddConst
		}
		return spec.AddConst
	}
	return pre(item) + 1
}

// releaseAll sends the write-phase releases. toSemi selects the semi-lock
// conversion round; the final round (toSemi=false) after a conversion does
// not resend values (writes were implemented at conversion). Every release
// of the round carries the same CommitMicros stamp — the transaction's
// single commit point, which versions the writes for snapshot reads.
func (ri *Issuer) releaseAll(ctx engine.Context, s *txnState, toSemi bool) {
	converted := s.phase == phaseAwaitNormal || (s.txn.Protocol == model.TO && s.preSchedAny && !toSemi)
	commit := ctx.NowMicros()
	for _, r := range s.order {
		if ri.opts.Quorum != nil {
			if s.reqs[r.copyID] != r {
				continue // superseded by the write request for the same copy
			}
			if r.excluded {
				continue // already withdrawn from the quorum
			}
			if !r.granted {
				// Outside the quorum that carried the commit: withdraw the
				// pending request instead of releasing a grant that never
				// came. The copy converges through log shipping, never
				// through a write it did not accept.
				ri.send(ctx, s, ri.qmAddr(r.copyID), model.PooledAbort(model.AbortMsg{
					Txn: s.txn.ID, Attempt: s.attempt, Copy: r.copyID,
				}))
				continue
			}
		}
		msg := model.ReleaseMsg{
			Txn: s.txn.ID, Attempt: s.attempt, Copy: r.copyID, ToSemi: toSemi,
			CommitMicros: commit,
		}
		if r.kind == model.OpWrite && !converted {
			msg.HasWrite = true
			msg.Value = ri.writeValue(s, r.copyID.Item)
		}
		ri.send(ctx, s, ri.qmAddr(r.copyID), model.PooledRelease(msg))
	}
}

// markExecuted reports commit metrics at the execution point (§4.3: a
// semi-converted T/O transaction "is considered executed" at conversion).
func (ri *Issuer) markExecuted(ctx engine.Context, s *txnState) {
	ri.committed++
	if ri.adm != nil {
		ri.adm.onCommit(ctx.NowMicros(), ctx.NowMicros()-s.firstArrival)
	}
	if ri.recorder != nil {
		ri.recorder.Committed(s.txn.ID, s.txn.Protocol)
	}
	if s.txn.Protocol != model.TwoPL {
		ri.finalTS[s.txn.ID] = s.expectTS
	}
	ri.reportAttempt(ctx, s, model.OutcomeCommitted, model.OpRead)
}

// finish completes a transaction whose releases have all been sent.
func (ri *Issuer) finish(ctx engine.Context, s *txnState) {
	if s.phase != phaseAwaitNormal {
		// Not already reported by markExecuted.
		ri.committed++
		if ri.adm != nil {
			ri.adm.onCommit(ctx.NowMicros(), ctx.NowMicros()-s.firstArrival)
		}
		if ri.recorder != nil {
			ri.recorder.Committed(s.txn.ID, s.txn.Protocol)
		}
		if s.txn.Protocol != model.TwoPL {
			ri.finalTS[s.txn.ID] = s.expectTS
		}
		ri.reportAttempt(ctx, s, model.OutcomeCommitted, model.OpRead)
	}
	delete(ri.active, s.txn.ID)
	ri.releaseAttempt(s)
	ri.finished(ctx, s.txn.ID)
}

// reportAttempt emits a TxnDoneMsg for this attempt's terminal event.
func (ri *Issuer) reportAttempt(ctx engine.Context, s *txnState, outcome model.TxnOutcome, rejectKind model.OpKind) {
	now := ctx.NowMicros()
	locked := int64(0)
	if s.firstGrant > 0 {
		locked = now - s.firstGrant
	}
	ctx.Send(engine.CollectorAddr(), model.TxnDoneMsg{
		Txn:                s.txn.ID,
		Protocol:           s.txn.Protocol,
		Outcome:            outcome,
		ArrivalMicros:      s.arrival,
		DoneMicros:         now,
		FirstArrivalMicros: s.firstArrival,
		Attempts:           s.attempts,
		Size:               s.txn.Size(),
		Reads:              s.txn.NumReads(),
		Writes:             s.txn.NumWrites(),
		Messages:           s.messages,
		RejectKind:         rejectKind,
		BackoffReads:       s.backoffReads,
		BackoffWrites:      s.backoffWrites,
		LockedMicros:       locked,
	})
}
