package qm

import (
	"fmt"
	"sync"

	"ucc/internal/engine"
	"ucc/internal/model"
)

// shard is one partition of a site's queue manager: the data queues, lock
// state, counters, and group-commit batch for the items hashed to it
// (model.ShardOfItem). Each shard is independently lockable — operations on
// items in different shards never contend — which is what lets one site's
// conflict-free traffic execute in parallel when the shards run on separate
// mailbox goroutines.
type shard struct {
	m   *Manager
	idx int

	mu       sync.Mutex
	queues   map[model.ItemID]*dataQueue
	counters Counters
	// depthHigh is the deepest any of this shard's queues has ever been.
	depthHigh int

	// Versioned-placement transition state. pending seals items this site
	// gained at a map install until their snapshot transfer completes (new
	// openers get a busy NAK — the state is not here yet); retiring marks
	// items it lost whose queues still hold in-flight transactions (new
	// openers get the wrong-epoch NAK, residents drain to completion, and
	// the emptied queue deletes).
	pending  map[model.ItemID]bool
	retiring map[model.ItemID]bool

	dirty      bool // journaled writes await a sync
	flushArmed bool // a group-commit FlushMsg timer is pending for this shard
	down       bool // site crashed: messages defer until recovery
	deferred   []pendingMsg
}

// onMessage handles one delivery for this shard. Crashed shards defer
// everything (durable message queues redeliver after a restart — the
// simulation's stand-in for the transport's reconnect-and-resend).
func (sh *shard) onMessage(ctx engine.Context, from engine.Addr, msg model.Message) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.down {
		// Deferred counts real protocol traffic held back by the outage; the
		// shard's own group-commit flush timers are deferred too but are not
		// traffic.
		if _, timer := msg.(model.FlushMsg); !timer {
			sh.counters.Deferred++
		}
		// The deferred list outlives this delivery, but the delivery layer
		// recycles pooled messages when OnMessage returns — hold a value copy.
		sh.deferred = append(sh.deferred, pendingMsg{from: from, msg: model.UnpoolMessage(msg)})
		return
	}
	sh.handle(ctx, from, msg)
	sh.maybeFlush(ctx)
}

// handle dispatches one message. Callers hold sh.mu. Pooled pointer forms
// deref to the value handlers — the pointer stays owned by the delivery
// layer, which recycles it after OnMessage returns, so handlers only ever
// see a stack copy.
func (sh *shard) handle(ctx engine.Context, from engine.Addr, msg model.Message) {
	switch v := msg.(type) {
	case model.RequestMsg:
		sh.onRequest(ctx, v)
	case *model.RequestMsg:
		sh.onRequest(ctx, *v)
	case model.FinalTSMsg:
		sh.onFinalTS(ctx, v)
	case *model.FinalTSMsg:
		sh.onFinalTS(ctx, *v)
	case model.ReleaseMsg:
		sh.onRelease(ctx, v)
	case *model.ReleaseMsg:
		sh.onRelease(ctx, *v)
	case model.AbortMsg:
		sh.onAbort(ctx, v)
	case *model.AbortMsg:
		sh.onAbort(ctx, *v)
	case model.SnapReadMsg:
		sh.onSnapRead(ctx, v)
	case *model.SnapReadMsg:
		sh.onSnapRead(ctx, *v)
	case model.FlushMsg:
		sh.onFlushTimer()
	default:
		panic(fmt.Sprintf("qm: site %d shard %d: unexpected message %T", sh.m.site, sh.idx, msg))
	}
}

// maybeFlush is the commit-path durability policy, run after every handled
// message: with no group-commit window the writes this delivery implemented
// are synced now (one commit-sequencer pass per delivery, already batched
// across a transaction's co-resident copies and coalesced with concurrently
// flushing shards); with a window, the sync is deferred to a per-shard
// FlushMsg timer so concurrently committing transactions share it.
func (sh *shard) maybeFlush(ctx engine.Context) {
	if !sh.dirty || sh.m.dur == nil {
		return
	}
	if sh.m.opts.GroupCommitMicros > 0 {
		if !sh.flushArmed {
			sh.flushArmed = true
			ctx.SetTimer(sh.m.opts.GroupCommitMicros, model.FlushMsg{Shard: int32(sh.idx)})
		}
		return
	}
	sh.flushNow()
}

func (sh *shard) onFlushTimer() {
	sh.flushArmed = false
	if sh.dirty && sh.m.dur != nil {
		sh.flushNow()
	}
}

// flushNow drains this shard's dirty batch through the site's commit
// sequencer: it returns once every record the shard journaled before the
// call is durable. Concurrent shards coalesce into one media sync.
func (sh *shard) flushNow() {
	if err := sh.m.seq.commit(); err != nil {
		// Losing the WAL means losing the durability contract; there is no
		// meaningful way to continue serving writes.
		panic(fmt.Sprintf("qm: site %d shard %d: wal flush: %v", sh.m.site, sh.idx, err))
	}
	sh.dirty = false
}

func (sh *shard) queue(item model.ItemID) *dataQueue {
	q := sh.queues[item]
	if q == nil {
		panic(fmt.Sprintf("qm: site %d shard %d has no queue for %v", sh.m.site, sh.idx, item))
	}
	return q
}

func (sh *shard) onRequest(ctx engine.Context, v model.RequestMsg) {
	sh.counters.Requests++
	if !sh.owns(v.Copy.Item) {
		// The issuer routed by a stale map (or raced an ownership flip, if
		// the item is mid-retirement here — new openers are refused either
		// way; only residents drain). The NAK carries the installed map.
		sh.wrongEpoch(ctx, v.Site, v.Txn, v.Attempt, v.Copy)
		return
	}
	if sh.pending[v.Copy.Item] {
		// Gained but not yet transferred: the authoritative state is still in
		// flight from the old owner. Busy is the right refusal — the routing
		// was correct, the issuer just needs to retry under backoff.
		sh.counters.Busy++
		ctx.Send(engine.RIAddr(v.Site), model.PooledBusy(model.BusyMsg{Txn: v.Txn, Attempt: v.Attempt, Copy: v.Copy}))
		return
	}
	q := sh.queue(v.Copy.Item)
	if bound := sh.m.opts.MaxQueueDepth; bound > 0 && len(q.entries) >= bound && q.find(v.Txn) == nil {
		// The queue is full and this transaction is not already resident:
		// refuse the request rather than queue without bound. The issuer
		// aborts the attempt and restarts it under backoff — shedding load
		// at the source instead of diverging here.
		sh.counters.Busy++
		ctx.Send(engine.RIAddr(v.Site), model.PooledBusy(model.BusyMsg{
			Txn: v.Txn, Attempt: v.Attempt, Copy: v.Copy,
		}))
		return
	}
	if old := q.find(v.Txn); old != nil {
		// A stale entry from a previous attempt whose abort raced ahead of
		// us cannot exist under FIFO delivery, but drop defensively.
		if old.attempt >= v.Attempt {
			return
		}
		if old.readRecorded && sh.m.recorder != nil {
			sh.m.recorder.Discard(q.copyID, old.txn)
		}
		q.remove(old)
		recycleEntry(old)
	}
	e := acquireEntry()
	e.txn = v.Txn
	e.attempt = v.Attempt
	e.protocol = v.Protocol
	e.kind = v.Kind
	e.prec = model.Precedence{
		Site:  v.Site,
		Txn:   v.Txn,
		Is2PL: v.Protocol == model.TwoPL,
	}
	out := q.admit(e, v.TS, v.Interval)
	if d := len(q.entries); d > sh.depthHigh {
		sh.depthHigh = d
	}
	issuer := engine.RIAddr(v.Site)
	switch {
	case out.rejected:
		// Rejected requests are never inserted: the entry goes straight back.
		recycleEntry(e)
		sh.counters.Rejects++
		ctx.Send(issuer, model.PooledReject(model.RejectMsg{
			Txn: v.Txn, Attempt: v.Attempt, Copy: v.Copy, Threshold: out.threshold,
		}))
	case out.backedOff:
		sh.counters.Backoffs++
		ctx.Send(issuer, model.PooledBackoff(model.BackoffMsg{
			Txn: v.Txn, Attempt: v.Attempt, Copy: v.Copy, NewTS: out.newTS,
		}))
	}
	sh.dispatch(ctx, q)
}

func (sh *shard) onFinalTS(ctx engine.Context, v model.FinalTSMsg) {
	q := sh.queues[v.Copy.Item]
	if q == nil {
		// The item moved away and its queue drained (or never lived here):
		// the completer path's wrong-epoch NAK, so a transaction straddling
		// an ownership flip learns its attempt died instead of hanging.
		sh.wrongEpoch(ctx, v.Txn.Site, v.Txn, v.Attempt, v.Copy)
		return
	}
	e := q.find(v.Txn)
	if e == nil || e.attempt != v.Attempt {
		return // attempt was aborted; stale message
	}
	if q.applyFinalTS(e, v.TS) {
		sh.counters.Revokes++
	}
	sh.dispatch(ctx, q)
}

func (sh *shard) onRelease(ctx engine.Context, v model.ReleaseMsg) {
	q := sh.queues[v.Copy.Item]
	if q == nil {
		sh.wrongEpoch(ctx, v.Txn.Site, v.Txn, v.Attempt, v.Copy) // see onFinalTS
		return
	}
	e := q.find(v.Txn)
	if e == nil || e.attempt != v.Attempt || !e.granted {
		return
	}
	if v.ToSemi {
		// §4.2 rule 4: the T/O transaction received a pre-scheduled lock;
		// its operations are implemented now, and the lock becomes a
		// semi-lock until every item has issued a normal grant.
		if !e.semi {
			sh.implement(e, v)
			q.toSemi(e)
			sh.counters.Conversion++
		}
		// Sync before dispatch: the grants dispatch sends carry the value
		// just implemented, and on the real runtime they hit the wire
		// before OnMessage returns — a write another site observed must
		// not be lost by a crash.
		sh.maybeFlush(ctx)
		sh.dispatch(ctx, q)
		return
	}
	if !e.semi {
		// Implemented at release (§4.3: 2PL/PA always; T/O when it received
		// no pre-scheduled lock and released directly).
		sh.implement(e, v)
	}
	q.remove(e)
	recycleEntry(e)
	sh.counters.Releases++
	sh.maybeFlush(ctx) // before dispatch exposes the write (see above)
	sh.dispatch(ctx, q)
	sh.maybeRetire(v.Copy.Item, q)
}

// onSnapRead serves a read-only snapshot read directly from the store's
// version chain: no queue entry, no lock, no threshold check, and therefore
// no way to be rejected, backed off, or deadlocked. The read is recorded in
// the history log at the position of the version it observed, so the
// serializability checker sees the true dataflow order.
func (sh *shard) onSnapRead(ctx engine.Context, v model.SnapReadMsg) {
	if !sh.owns(v.Copy.Item) {
		sh.wrongEpoch(ctx, v.Site, v.Txn, v.Attempt, v.Copy) // see onRequest
		return
	}
	if sh.pending[v.Copy.Item] {
		// Sealed mid-transfer: the version chain here is still the fresh
		// initial copy, not the moved history — refuse rather than serve a
		// stale snapshot.
		sh.counters.Busy++
		ctx.Send(engine.RIAddr(v.Site), model.PooledBusy(model.BusyMsg{Txn: v.Txn, Attempt: v.Attempt, Copy: v.Copy}))
		return
	}
	sh.counters.SnapReads++
	ver, exact := sh.m.store.ReadAt(v.Copy.Item, v.SnapMicros)
	if !exact {
		sh.counters.SnapStale++
	}
	if sh.m.recorder != nil {
		sh.m.recorder.ImplementedReadAt(model.CopyID{Item: v.Copy.Item, Site: sh.m.site}, v.Txn, ver.Version)
	}
	ctx.Send(engine.RIAddr(v.Site), model.PooledSnapReadReply(model.SnapReadReplyMsg{
		Txn:          v.Txn,
		Attempt:      v.Attempt,
		Copy:         v.Copy,
		Value:        ver.Value,
		Version:      ver.Version,
		CommitMicros: ver.CommitMicros,
		Exact:        exact,
	}))
}

// implement applies the operation to the store and the history log.
func (sh *shard) implement(e *entry, v model.ReleaseMsg) {
	c := model.CopyID{Item: v.Copy.Item, Site: sh.m.site}
	if e.kind == model.OpWrite {
		if v.HasWrite {
			sh.m.store.Write(v.Copy.Item, e.txn, v.Value, v.CommitMicros) // journaled via the store's hook
			sh.dirty = true
		}
		if sh.m.recorder != nil {
			sh.m.recorder.Implemented(c, e.txn, model.OpWrite)
		}
	} else if sh.m.recorder != nil && !e.readRecorded {
		sh.m.recorder.Implemented(c, e.txn, model.OpRead)
	}
}

func (sh *shard) onAbort(ctx engine.Context, v model.AbortMsg) {
	q := sh.queues[v.Copy.Item]
	if q == nil {
		sh.wrongEpoch(ctx, v.Txn.Site, v.Txn, v.Attempt, v.Copy) // see onFinalTS
		return
	}
	e := q.find(v.Txn)
	if e == nil || e.attempt != v.Attempt {
		return
	}
	if e.readRecorded && sh.m.recorder != nil {
		// The grant-time read never took effect; drop it from the log so it
		// cannot fabricate conflict edges.
		sh.m.recorder.Discard(q.copyID, e.txn)
	}
	q.remove(e)
	recycleEntry(e)
	sh.counters.Aborts++
	sh.dispatch(ctx, q)
	sh.maybeRetire(v.Copy.Item, q)
}

// dispatch grants every grantable head in sequence and then promotes
// pre-scheduled locks whose earlier conflicts have all been released.
func (sh *shard) dispatch(ctx engine.Context, q *dataQueue) {
	for {
		hd := q.head()
		if hd == nil {
			break
		}
		d := q.decide(hd)
		if !d.ok {
			break
		}
		q.grant(hd, d)
		sh.counters.Grants++
		if d.preSched {
			sh.counters.PreGrants++
		}
		if hd.protocol == model.TO && hd.kind == model.OpRead && sh.m.recorder != nil {
			// A T/O read is implemented at its grant: the SRL it receives
			// is already a semi-lock (§4.3) and the value travels with the
			// grant. Recording it at release would order it after any
			// pre-scheduled write that converts in between, inverting the
			// conflict edge relative to the actual dataflow.
			sh.m.recorder.Implemented(q.copyID, hd.txn, model.OpRead)
			hd.readRecorded = true
		}
		ver := sh.m.store.Latest(q.copyID.Item)
		ctx.Send(engine.RIAddr(hd.prec.Site), model.PooledGrant(model.GrantMsg{
			Txn:          hd.txn,
			Attempt:      hd.attempt,
			Copy:         q.copyID,
			Lock:         d.lock,
			PreScheduled: d.preSched,
			TS:           hd.prec.TS,
			Value:        ver.Value,
			Version:      ver.Version,
			CommitMicros: ver.CommitMicros,
		}))
	}
	for _, e := range q.promotable() {
		e.normalSent = true
		sh.counters.Promotions++
		ctx.Send(engine.RIAddr(e.prec.Site), model.PooledNormalGrant(model.NormalGrantMsg{
			Txn: e.txn, Attempt: e.attempt, Copy: q.copyID,
		}))
	}
}
