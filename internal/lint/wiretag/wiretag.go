// Package wiretag pins the wire contract for message types: every
// model.Message implementation must have a stable WireTag pinned in the
// AppendMessage encode switch, a matching DecodeMessage case producing the
// same type, and a committed fuzz-corpus seed file so FuzzWireRoundTrip
// exercises it on its very first iteration. A new message type that misses
// any of these used to surface as a runtime "no wire encoder" error (or a
// silently unfuzzed codec path) on a multi-node deployment; now it fails
// go vet.
//
// The analyzer also checks that TagLast equals the highest tag pinned in
// AppendMessage, because the corpus-coverage loops range over
// TagRequest..TagLast.
package wiretag

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"

	"ucc/internal/lint"
)

// Analyzer checks the model package's wire-contract completeness.
var Analyzer = &lint.Analyzer{
	Name: "wiretag",
	Doc: "every model.Message implementation needs a pinned WireTag in AppendMessage, a " +
		"matching DecodeMessage case, and a fuzz-corpus seed file (tag-NN-*) under " +
		"internal/wire/testdata/fuzz/FuzzWireRoundTrip",
	Run: run,
}

// seedDirRel locates the fuzz seed corpus relative to the model package
// directory.
var seedDirRel = filepath.Join("..", "wire", "testdata", "fuzz", "FuzzWireRoundTrip")

func run(pass *lint.Pass) error {
	if !lint.PathHasSuffix(pass.Pkg.Path(), "internal/model") {
		return nil
	}
	msgObj := pass.Pkg.Scope().Lookup("Message")
	tagObj := pass.Pkg.Scope().Lookup("WireTag")
	if msgObj == nil || tagObj == nil {
		return nil
	}
	msgIface, ok := msgObj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	appendFn := findFunc(pass, "AppendMessage")
	decodeFn := findFunc(pass, "DecodeMessage")
	if appendFn == nil || decodeFn == nil {
		return nil
	}

	enc := encodeArms(pass, appendFn, tagObj.Type())
	dec := decodeArms(pass, decodeFn, tagObj.Type())

	// Seed corpus: resolved relative to the package directory. When the
	// tree is not present (sources analyzed outside a checkout) the seed
	// check is skipped; CI runs from a full checkout.
	var seeds map[int64]bool
	if pass.Dir != "" {
		if entries, err := os.ReadDir(filepath.Join(pass.Dir, seedDirRel)); err == nil {
			seeds = map[int64]bool{}
			for _, e := range entries {
				var n int64
				if _, err := fmt.Sscanf(e.Name(), "tag-%d-", &n); err == nil {
					seeds[n] = true
				}
			}
		}
	}

	maxTag := int64(0)
	for _, arm := range enc {
		if arm.value > maxTag {
			maxTag = arm.value
		}
	}

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if !types.Implements(named, msgIface) && !types.Implements(types.NewPointer(named), msgIface) {
			continue
		}
		arm, ok := enc[tn]
		if !ok {
			pass.Reportf(tn.Pos(),
				"model.Message %s has no AppendMessage case: every message type must pin a WireTag "+
					"in the encode switch (the transport NAKs and drops messages outside the wire contract)",
				name)
			continue
		}
		decType, ok := dec[arm.value]
		switch {
		case !ok:
			pass.Reportf(tn.Pos(),
				"%s encodes as %s but DecodeMessage has no case for that tag: the message cannot "+
					"round-trip and a peer decoding it gets ErrWireUnknownTag", name, arm.constName)
		case decType != tn:
			pass.Reportf(tn.Pos(),
				"%s encodes as %s but DecodeMessage decodes that tag into %s: the round-trip "+
					"changes the message type", name, arm.constName, decType.Name())
		}
		if seeds != nil && !seeds[arm.value] {
			pass.Reportf(tn.Pos(),
				"%s (tag %d) has no fuzz corpus seed: add a tag-%02d-* seed file under %s so "+
					"FuzzWireRoundTrip covers it from its first iteration",
				name, arm.value, arm.value, seedDirRel)
		}
	}

	// TagLast must track the highest pinned tag.
	if lastObj, ok := scope.Lookup("TagLast").(*types.Const); ok && maxTag > 0 {
		if v, exact := constant.Int64Val(constant.ToInt(lastObj.Val())); exact && v != maxTag {
			pass.Reportf(lastObj.Pos(),
				"TagLast is %d but the highest tag pinned in AppendMessage is %d: corpus-coverage "+
					"loops range over TagRequest..TagLast and would miss the new tag", v, maxTag)
		}
	}
	return nil
}

// findFunc returns the package-level function declaration with the given
// name, or nil.
func findFunc(pass *lint.Pass, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// encArm records one encode switch arm: the tag constant's name and value.
type encArm struct {
	constName string
	value     int64
}

// encodeArms maps message type (by TypeName) → the tag constant pinned in
// its AppendMessage case. Pointer arms (the pooled re-encode cases) fold
// into their element type.
func encodeArms(pass *lint.Pass, fn *ast.FuncDecl, tagType types.Type) map[*types.TypeName]encArm {
	out := map[*types.TypeName]encArm{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.TypeSwitchStmt)
		if !ok {
			return true
		}
		for _, stmt := range sw.Body.List {
			cc := stmt.(*ast.CaseClause)
			arm, armOK := tagConstIn(pass, cc.Body, tagType)
			for _, te := range cc.List {
				tn := namedTypeName(pass.TypesInfo.Types[te].Type)
				if tn == nil || !armOK {
					continue
				}
				if prev, dup := out[tn]; !dup || prev.value == 0 {
					out[tn] = arm
				}
			}
		}
		return false
	})
	return out
}

// decodeArms maps tag value → the message type its DecodeMessage case
// produces.
func decodeArms(pass *lint.Pass, fn *ast.FuncDecl, tagType types.Type) map[int64]*types.TypeName {
	out := map[int64]*types.TypeName{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		for _, stmt := range sw.Body.List {
			cc := stmt.(*ast.CaseClause)
			var produced *types.TypeName
			for _, body := range cc.Body {
				as, ok := body.(*ast.AssignStmt)
				if !ok || len(as.Rhs) != 1 {
					continue
				}
				if tn := namedTypeName(pass.TypesInfo.Types[as.Rhs[0]].Type); tn != nil {
					produced = tn
				}
			}
			if produced == nil {
				continue
			}
			for _, ce := range cc.List {
				tv := pass.TypesInfo.Types[ce]
				if tv.Value == nil || !types.Identical(tv.Type, tagType) {
					continue
				}
				if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
					out[v] = produced
				}
			}
		}
		return false
	})
	return out
}

// tagConstIn finds the WireTag constant referenced inside a case body.
func tagConstIn(pass *lint.Pass, body []ast.Stmt, tagType types.Type) (encArm, bool) {
	var arm encArm
	found := false
	for _, stmt := range body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || found {
				return !found
			}
			c, ok := pass.TypesInfo.Uses[id].(*types.Const)
			if !ok || !types.Identical(c.Type(), tagType) {
				return true
			}
			if v, exact := constant.Int64Val(constant.ToInt(c.Val())); exact && v > 0 {
				arm = encArm{constName: c.Name(), value: v}
				found = true
			}
			return !found
		})
	}
	return arm, found
}

// namedTypeName unwraps pointers and returns the type's TypeName, or nil
// for unnamed and interface types.
func namedTypeName(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, isIface := named.Underlying().(*types.Interface); isIface {
		return nil
	}
	return named.Obj()
}
