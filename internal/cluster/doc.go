// Package cluster wires the full distributed system — request issuers, queue
// managers with their multi-version stores, the deadlock coordinator, the
// metrics collector, per-site workload drivers, and (optionally) per-site
// durability pipelines — over the deterministic virtual-time simulator
// (experiments, tests). The same actors run unchanged on the real-time
// runtime and TCP transport (cmd/uccnode, cmd/uccclient).
//
// The cluster is where cross-cutting configuration meets: the version-chain
// bounds every store enforces (Config.Chain), the snapshot staleness margin
// the issuers read at (Config.RI), the queue-manager shard count both the
// managers and the issuers must agree on (Config.Shards), the WAL each
// store journals into (Config.Durability), and the fault-injection schedule
// (CrashSite/RecoverSite). Run executes the standard experiment schedule
// and returns a Result with the summary, the event count, and — when
// recording — the serializability verdict.
package cluster
