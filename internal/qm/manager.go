package qm

import (
	"fmt"
	"sync"

	"ucc/internal/engine"
	"ucc/internal/history"
	"ucc/internal/model"
	"ucc/internal/storage"
)

// Options configure a queue-manager site.
type Options struct {
	// DisableSemiLocks falls back from the §4.2 semi-lock enforcement (the
	// paper's contribution, the zero-value default) to the simpler "lock
	// everything" unified enforcement (ablation ABL-1). Inverted so the
	// zero value of Options selects the paper's protocol.
	DisableSemiLocks bool
	// StatsPeriodMicros, when positive, makes the manager push cumulative
	// per-item grant counters to the collector on this period.
	StatsPeriodMicros int64
	// GroupCommitMicros, when positive and a Durable is attached, defers
	// WAL syncs by up to this window so writes implemented by concurrently
	// committing transactions share one sync (group commit). Zero syncs a
	// write immediately after it is implemented, before any grant exposing
	// it is sent — the write-ahead ordering a crash cannot violate. The
	// window trades that guarantee for fewer syncs: writes inside an
	// unexpired window are lost by a crash even though their effects may
	// already have been observed elsewhere.
	GroupCommitMicros int64
}

// DefaultOptions returns the production configuration.
func DefaultOptions() Options {
	return Options{}
}

// Counters aggregate one site's protocol events (monotone).
type Counters struct {
	Requests   uint64
	Grants     uint64
	PreGrants  uint64 // pre-scheduled grants issued
	Promotions uint64 // pre-scheduled → normal transitions
	Rejects    uint64 // T/O rejections
	Backoffs   uint64 // PA back-offs
	Revokes    uint64 // provisional PA grants revoked at final-timestamp
	Releases   uint64
	Conversion uint64 // lock → semi-lock conversions
	Aborts     uint64
	SnapReads  uint64 // read-only snapshot reads served (queue bypassed)
	SnapStale  uint64 // snapshot reads served inexactly (chain GC'd past ts)
	WALSyncs   uint64 // durable flushes of the site's write-ahead log
	Crashes    uint64 // injected site crashes
	Recoveries uint64 // completed crash recoveries
	Deferred   uint64 // messages queued while the site was down
}

// Durable is the durability subsystem a manager drives (internal/wal's
// SiteLog): Flush makes every journaled write durable; Crash and Recover
// implement simulated fault injection. The manager journals nothing itself —
// the store's Journal hook does — it only decides when to sync and how a
// crashed site behaves.
type Durable interface {
	Flush() error
	Crash()
	Recover() error
}

// Manager is the queue-manager actor for one data site: it owns the site's
// store and one dataQueue per physical copy, and speaks the unified
// concurrency control protocol with every request issuer.
type Manager struct {
	mu       sync.Mutex
	site     model.SiteID
	store    *storage.Store
	recorder *history.Recorder
	opts     Options
	queues   map[model.ItemID]*dataQueue
	counters Counters

	// Durability state (nil dur = volatile site, the pre-WAL behaviour).
	dur        Durable
	dirty      bool // journaled writes await a sync
	flushArmed bool // a group-commit FlushMsg timer is pending
	down       bool // crashed: volatile state lost, messages deferred
	deferred   []pendingMsg
}

// pendingMsg is a message that arrived while the site was down; it is
// processed in arrival order at recovery.
type pendingMsg struct {
	from engine.Addr
	msg  model.Message
}

// New creates the manager for a site. Every item already present in store
// gets a data queue; recorder may be nil to skip history recording.
func New(site model.SiteID, store *storage.Store, recorder *history.Recorder, opts Options) *Manager {
	m := &Manager{
		site:     site,
		store:    store,
		recorder: recorder,
		opts:     opts,
		queues:   map[model.ItemID]*dataQueue{},
	}
	for _, item := range store.Items() {
		m.queues[item] = newDataQueue(model.CopyID{Item: item, Site: site}, !opts.DisableSemiLocks)
	}
	return m
}

// Site returns the manager's site id.
func (m *Manager) Site() model.SiteID { return m.site }

// SetDurable attaches the durability subsystem. Call before the engine
// starts delivering messages. The store's Journal hook must be attached
// separately (storage.Store.SetJournal) — the manager only schedules syncs
// and drives crash/recovery.
func (m *Manager) SetDurable(d Durable) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dur = d
}

// Down reports whether the site is currently crashed (tests).
func (m *Manager) Down() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down
}

// Snapshot returns the current counter values. Safe to call concurrently
// with message handling.
func (m *Manager) Snapshot() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters
}

// DumpQueue renders item's queue for debugging: one line per entry in
// precedence order.
func (m *Manager) DumpQueue(item model.ItemID) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	q := m.queues[item]
	if q == nil {
		return nil
	}
	out := make([]string, 0, len(q.entries))
	for _, e := range q.entries {
		out = append(out, e.String())
	}
	return out
}

// QueueDepth returns the number of resident entries for item (tests).
func (m *Manager) QueueDepth(item model.ItemID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	q := m.queues[item]
	if q == nil {
		return 0
	}
	return len(q.entries)
}

// OnMessage implements engine.Actor.
func (m *Manager) OnMessage(ctx engine.Context, from engine.Addr, msg model.Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		// The site is crashed. Recovery brings it back; everything else
		// waits (durable message queues redeliver after a restart — the
		// simulation's stand-in for the transport's reconnect-and-resend).
		if _, ok := msg.(model.RecoverMsg); ok {
			m.onRecover(ctx)
		} else {
			// Deferred counts real protocol traffic held back by the
			// outage; the site's own timers (stats ticks, group-commit
			// flushes) are deferred too but are not traffic.
			switch msg.(type) {
			case model.TickMsg, model.FlushMsg, model.StopMsg:
			default:
				m.counters.Deferred++
			}
			m.deferred = append(m.deferred, pendingMsg{from: from, msg: msg})
		}
		return
	}
	m.handle(ctx, from, msg)
	m.maybeFlush(ctx)
}

func (m *Manager) handle(ctx engine.Context, from engine.Addr, msg model.Message) {
	switch v := msg.(type) {
	case model.RequestMsg:
		m.onRequest(ctx, v)
	case model.FinalTSMsg:
		m.onFinalTS(ctx, v)
	case model.ReleaseMsg:
		m.onRelease(ctx, v)
	case model.AbortMsg:
		m.onAbort(ctx, v)
	case model.SnapReadMsg:
		m.onSnapRead(ctx, v)
	case model.ProbeWFGMsg:
		m.onProbe(ctx, from, v)
	case model.TickMsg:
		m.onStatsTick(ctx)
	case model.FlushMsg:
		m.onFlushTimer()
	case model.CrashMsg:
		m.onCrash()
	case model.RecoverMsg:
		// Already up: stale recovery for an outage that never happened.
	case model.StopMsg:
		m.opts.StatsPeriodMicros = 0 // stop re-arming the stats timer
	default:
		panic(fmt.Sprintf("qm: site %d: unexpected message %T", m.site, msg))
	}
}

// maybeFlush is the commit-path durability policy, run after every handled
// message: with no group-commit window the writes this delivery implemented
// are synced now (one sync per delivery, already batched across a
// transaction's co-resident copies); with a window, the sync is deferred to
// a FlushMsg timer so concurrently committing transactions share it.
func (m *Manager) maybeFlush(ctx engine.Context) {
	if !m.dirty || m.dur == nil {
		return
	}
	if m.opts.GroupCommitMicros > 0 {
		if !m.flushArmed {
			m.flushArmed = true
			ctx.SetTimer(m.opts.GroupCommitMicros, model.FlushMsg{})
		}
		return
	}
	m.flushNow()
}

func (m *Manager) onFlushTimer() {
	m.flushArmed = false
	if m.dirty && m.dur != nil {
		m.flushNow()
	}
}

func (m *Manager) flushNow() {
	if err := m.dur.Flush(); err != nil {
		// Losing the WAL means losing the durability contract; there is no
		// meaningful way to continue serving writes.
		panic(fmt.Sprintf("qm: site %d: wal flush: %v", m.site, err))
	}
	m.dirty = false
	m.counters.WALSyncs++
}

// onCrash injects a site crash (CrashMsg, simulation only): the volatile
// store and the unsynced WAL tail are destroyed; the synced prefix and
// snapshot survive on the durable media. Until RecoverMsg arrives the site
// defers every message.
func (m *Manager) onCrash() {
	if m.dur == nil {
		panic(fmt.Sprintf("qm: site %d: CrashMsg without durability configured", m.site))
	}
	m.down = true
	m.dirty = false
	m.flushArmed = false
	m.store.Wipe()
	m.dur.Crash()
	m.counters.Crashes++
}

// onRecover rebuilds the store from snapshot + WAL replay and then processes
// the messages that queued up during the outage, in arrival order.
func (m *Manager) onRecover(ctx engine.Context) {
	if err := m.dur.Recover(); err != nil {
		panic(fmt.Sprintf("qm: site %d: recovery failed: %v", m.site, err))
	}
	m.down = false
	m.counters.Recoveries++
	for len(m.deferred) > 0 {
		p := m.deferred[0]
		m.deferred = m.deferred[1:]
		m.handle(ctx, p.from, p.msg)
		if m.down {
			// Crashed again while draining; the rest stays deferred.
			return
		}
	}
	m.deferred = nil
	m.maybeFlush(ctx)
}

// onStatsTick pushes the cumulative per-item grant counters to the metrics
// collector and re-arms the timer. The cluster posts the first TickMsg.
func (m *Manager) onStatsTick(ctx engine.Context) {
	if m.opts.StatsPeriodMicros <= 0 {
		return
	}
	read := map[model.ItemID]uint64{}
	write := map[model.ItemID]uint64{}
	for item, q := range m.queues {
		read[item] = q.readGrants
		write[item] = q.writeGrants
	}
	ctx.Send(engine.CollectorAddr(), model.QueueStatsMsg{
		From:        m.site,
		AtMicros:    ctx.NowMicros(),
		ReadGrants:  read,
		WriteGrants: write,
	})
	ctx.SetTimer(m.opts.StatsPeriodMicros, model.TickMsg{})
}

func (m *Manager) queue(item model.ItemID) *dataQueue {
	q := m.queues[item]
	if q == nil {
		panic(fmt.Sprintf("qm: site %d has no queue for %v", m.site, item))
	}
	return q
}

func (m *Manager) onRequest(ctx engine.Context, v model.RequestMsg) {
	q := m.queue(v.Copy.Item)
	m.counters.Requests++
	if old := q.find(v.Txn); old != nil {
		// A stale entry from a previous attempt whose abort raced ahead of
		// us cannot exist under FIFO delivery, but drop defensively.
		if old.attempt >= v.Attempt {
			return
		}
		if old.readRecorded && m.recorder != nil {
			m.recorder.Discard(q.copyID, old.txn)
		}
		q.remove(old)
	}
	e := &entry{
		txn:      v.Txn,
		attempt:  v.Attempt,
		protocol: v.Protocol,
		kind:     v.Kind,
		interval: v.Interval,
		prec: model.Precedence{
			Site:  v.Site,
			Txn:   v.Txn,
			Is2PL: v.Protocol == model.TwoPL,
		},
	}
	out := q.admit(e, v.TS, v.Interval)
	issuer := engine.RIAddr(v.Site)
	switch {
	case out.rejected:
		m.counters.Rejects++
		ctx.Send(issuer, model.RejectMsg{
			Txn: v.Txn, Attempt: v.Attempt, Copy: v.Copy, Threshold: out.threshold,
		})
	case out.backedOff:
		m.counters.Backoffs++
		ctx.Send(issuer, model.BackoffMsg{
			Txn: v.Txn, Attempt: v.Attempt, Copy: v.Copy, NewTS: out.newTS,
		})
	}
	m.dispatch(ctx, q)
}

func (m *Manager) onFinalTS(ctx engine.Context, v model.FinalTSMsg) {
	q := m.queue(v.Copy.Item)
	e := q.find(v.Txn)
	if e == nil || e.attempt != v.Attempt {
		return // attempt was aborted; stale message
	}
	if q.applyFinalTS(e, v.TS) {
		m.counters.Revokes++
	}
	m.dispatch(ctx, q)
}

func (m *Manager) onRelease(ctx engine.Context, v model.ReleaseMsg) {
	q := m.queue(v.Copy.Item)
	e := q.find(v.Txn)
	if e == nil || e.attempt != v.Attempt || !e.granted {
		return
	}
	if v.ToSemi {
		// §4.2 rule 4: the T/O transaction received a pre-scheduled lock;
		// its operations are implemented now, and the lock becomes a
		// semi-lock until every item has issued a normal grant.
		if !e.semi {
			m.implement(e, v)
			q.toSemi(e)
			m.counters.Conversion++
		}
		// Sync before dispatch: the grants dispatch sends carry the value
		// just implemented, and on the real runtime they hit the wire
		// before OnMessage returns — a write another site observed must
		// not be lost by a crash.
		m.maybeFlush(ctx)
		m.dispatch(ctx, q)
		return
	}
	if !e.semi {
		// Implemented at release (§4.3: 2PL/PA always; T/O when it received
		// no pre-scheduled lock and released directly).
		m.implement(e, v)
	}
	q.remove(e)
	m.counters.Releases++
	m.maybeFlush(ctx) // before dispatch exposes the write (see above)
	m.dispatch(ctx, q)
}

// onSnapRead serves a read-only snapshot read directly from the store's
// version chain: no queue entry, no lock, no threshold check, and therefore
// no way to be rejected, backed off, or deadlocked. The read is recorded in
// the history log at the position of the version it observed, so the
// serializability checker sees the true dataflow order.
func (m *Manager) onSnapRead(ctx engine.Context, v model.SnapReadMsg) {
	m.counters.SnapReads++
	ver, exact := m.store.ReadAt(v.Copy.Item, v.SnapMicros)
	if !exact {
		m.counters.SnapStale++
	}
	if m.recorder != nil {
		m.recorder.ImplementedReadAt(model.CopyID{Item: v.Copy.Item, Site: m.site}, v.Txn, ver.Version)
	}
	ctx.Send(engine.RIAddr(v.Site), model.SnapReadReplyMsg{
		Txn:          v.Txn,
		Attempt:      v.Attempt,
		Copy:         v.Copy,
		Value:        ver.Value,
		Version:      ver.Version,
		CommitMicros: ver.CommitMicros,
		Exact:        exact,
	})
}

// implement applies the operation to the store and the history log.
func (m *Manager) implement(e *entry, v model.ReleaseMsg) {
	c := model.CopyID{Item: v.Copy.Item, Site: m.site}
	if e.kind == model.OpWrite {
		if v.HasWrite {
			m.store.Write(v.Copy.Item, e.txn, v.Value, v.CommitMicros) // journaled via the store's hook
			m.dirty = true
		}
		if m.recorder != nil {
			m.recorder.Implemented(c, e.txn, model.OpWrite)
		}
	} else if m.recorder != nil && !e.readRecorded {
		m.recorder.Implemented(c, e.txn, model.OpRead)
	}
}

func (m *Manager) onAbort(ctx engine.Context, v model.AbortMsg) {
	q := m.queue(v.Copy.Item)
	e := q.find(v.Txn)
	if e == nil || e.attempt != v.Attempt {
		return
	}
	if e.readRecorded && m.recorder != nil {
		// The grant-time read never took effect; drop it from the log so it
		// cannot fabricate conflict edges.
		m.recorder.Discard(q.copyID, e.txn)
	}
	q.remove(e)
	m.counters.Aborts++
	m.dispatch(ctx, q)
}

// dispatch grants every grantable head in sequence and then promotes
// pre-scheduled locks whose earlier conflicts have all been released.
func (m *Manager) dispatch(ctx engine.Context, q *dataQueue) {
	for {
		hd := q.head()
		if hd == nil {
			break
		}
		d := q.decide(hd)
		if !d.ok {
			break
		}
		q.grant(hd, d)
		m.counters.Grants++
		if d.preSched {
			m.counters.PreGrants++
		}
		if hd.protocol == model.TO && hd.kind == model.OpRead && m.recorder != nil {
			// A T/O read is implemented at its grant: the SRL it receives
			// is already a semi-lock (§4.3) and the value travels with the
			// grant. Recording it at release would order it after any
			// pre-scheduled write that converts in between, inverting the
			// conflict edge relative to the actual dataflow.
			m.recorder.Implemented(q.copyID, hd.txn, model.OpRead)
			hd.readRecorded = true
		}
		value, version := m.store.Read(q.copyID.Item)
		ctx.Send(engine.RIAddr(hd.prec.Site), model.GrantMsg{
			Txn:          hd.txn,
			Attempt:      hd.attempt,
			Copy:         q.copyID,
			Lock:         d.lock,
			PreScheduled: d.preSched,
			TS:           hd.prec.TS,
			Value:        value,
			Version:      version,
		})
	}
	for _, e := range q.promotable() {
		e.normalSent = true
		m.counters.Promotions++
		ctx.Send(engine.RIAddr(e.prec.Site), model.NormalGrantMsg{
			Txn: e.txn, Attempt: e.attempt, Copy: q.copyID,
		})
	}
}

func (m *Manager) onProbe(ctx engine.Context, from engine.Addr, v model.ProbeWFGMsg) {
	var edges []model.WaitEdge
	for _, q := range m.queues {
		q.waitEdges(func(e, b *entry) {
			edges = append(edges, model.WaitEdge{
				Waiter:       e.txn,
				Holder:       b.txn,
				Waiter2PL:    e.protocol == model.TwoPL,
				Holder2PL:    b.protocol == model.TwoPL,
				WaiterSite:   e.prec.Site,
				WaiterSeq:    e.attempt,
				Copy:         q.copyID,
				WaiterIssuer: e.prec.Site,
			})
		})
	}
	ctx.Send(from, model.WFGReportMsg{From: m.site, Round: v.Round, Edges: edges})
}
