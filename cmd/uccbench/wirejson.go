// BENCH_wire.json generation: the wire-v3 codec vs gob comparison as a
// machine-readable artifact, refreshed by the bench-gate CI job on every PR
// so codec numbers from real runners accumulate next to the code (the same
// contract as BENCH_shards.json for shard scaling).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"ucc/internal/wire"
)

type wireReport struct {
	Recorded string     `json:"recorded"`
	Command  string     `json:"command"`
	Host     shardsHost `json:"host"`
	// Report is the measured comparison: per-codec msgs/sec, ns/msg,
	// allocs/msg, bytes/msg over the mixed-message corpus, plus the
	// speedup and allocation ratios the acceptance gate holds
	// (TestWireCodecGate: speedup ≥ 1.5x, alloc ratio ≤ 0.10).
	Report wire.CodecReport `json:"report"`
	Note   string           `json:"note"`
}

// writeWireJSON verifies the codec round-trips its corpus, measures both
// codecs, and writes the artifact.
func writeWireJSON(path string) error {
	if err := wire.Verify(); err != nil {
		return fmt.Errorf("codec self-check: %w", err)
	}
	rep, err := wire.CompareWithGob(300)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(wireReport{
		Recorded: time.Now().UTC().Format("2006-01-02"),
		Command:  fmt.Sprintf("go run ./cmd/uccbench -wire-json %s", path),
		Host: shardsHost{
			GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
			NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
			Go: runtime.Version(),
		},
		Report: rep,
		Note: "full encode→decode round trip per envelope over the mixed-message corpus " +
			"(internal/wire Corpus): wire v3 explicit binary codec vs the legacy encoding/gob " +
			"stream. msgs/sec is host-bound; bytes/msg is corpus-deterministic; the ratios are " +
			"what the CI gate (TestWireCodecGate) holds.",
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
