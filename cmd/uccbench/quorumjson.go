// BENCH_quorum.json generation: the EXP-14 kill-one-site sweep as a
// machine-readable artifact, refreshed by the nightly job so quorum failover
// numbers at full horizons accumulate next to the code. Virtual-time
// deterministic — unlike the shard sweep, no median-of-three is needed.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"ucc/internal/experiments"
)

type quorumReport struct {
	Recorded string      `json:"recorded"`
	Command  string      `json:"command"`
	Seed     int64       `json:"seed"`
	Shape    string      `json:"shape"`
	Rows     []quorumRow `json:"rows"`
	Note     string      `json:"note"`
}

type quorumRow struct {
	OutageMs      float64 `json:"outage_ms"` // -0.001 = no-crash baseline
	PreCrashTxnS  float64 `json:"pre_crash_txn_per_s"`
	OutageTxnS    float64 `json:"outage_txn_per_s"`
	Retained      float64 `json:"retained"`
	Committed     uint64  `json:"committed"`
	Serializable  bool    `json:"serializable"`
	ReplicasAgree bool    `json:"replicas_agree"`
	ReplApplied   uint64  `json:"repl_applied"`
	PartialRounds uint64  `json:"detector_partial_rounds"`
}

// writeQuorumJSON runs the full-scale EXP-14 sweep and writes the report.
func writeQuorumJSON(path string, seed int64) error {
	outages := []int64{-1, 200_000, 500_000, 1_000_000, 2_000_000}
	points := experiments.QuorumFailoverSweep(experiments.RunConfig{Seed: seed}, outages)
	rep := quorumReport{
		Recorded: time.Now().UTC().Format("2006-01-02"),
		Command:  fmt.Sprintf("go run ./cmd/uccbench -quorum-json %s", path),
		Seed:     seed,
		Shape:    "N=3 W=2 R=2 over 3 sites, full replication, kill site 1 mid-run",
		Note: "retained = outage-window commit rate / pre-crash rate; the bounded-dip " +
			"claim is retained > 0 at every outage length with serializability and " +
			"replica agreement preserved. Virtual-time deterministic per seed.",
	}
	for _, p := range points {
		retained := 0.0
		if p.PreRate > 0 {
			retained = round3(p.OutageRate / p.PreRate)
		}
		rep.Rows = append(rep.Rows, quorumRow{
			OutageMs:      float64(p.OutageUs) / 1000,
			PreCrashTxnS:  round1(p.PreRate),
			OutageTxnS:    round1(p.OutageRate),
			Retained:      retained,
			Committed:     p.Committed,
			Serializable:  p.Serializable,
			ReplicasAgree: p.ReplicasAgree,
			ReplApplied:   p.ReplApplied,
			PartialRounds: p.PartialRounds,
		})
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
