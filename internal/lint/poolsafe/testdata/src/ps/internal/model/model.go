// Package model is a miniature stand-in for ucc/internal/model's pooled
// decode surface; the analyzer recognises it by import-path suffix.
package model

// Message mirrors the real sealed message interface.
type Message interface{ isMessage() }

// WireTag identifies a message type on the wire.
type WireTag byte

// RequestMsg is a pooled hot type.
type RequestMsg struct{ Item string }

func (*RequestMsg) isMessage() {}

// GrantMsg is a second pooled hot type (the send side's reply shape).
type GrantMsg struct{ Item string }

func (*GrantMsg) isMessage() {}

// DecodeMessagePooled mirrors the real pool-backed decoder.
func DecodeMessagePooled(tag WireTag) (Message, error) {
	return &RequestMsg{}, nil
}

// PooledRequest mirrors the real send-side boxing constructor.
func PooledRequest(v RequestMsg) *RequestMsg { return &v }

// PooledGrant mirrors the real send-side boxing constructor.
func PooledGrant(v GrantMsg) *GrantMsg { return &v }

// RecycleMessage mirrors the real pool return.
func RecycleMessage(m Message) {}
