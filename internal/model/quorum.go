package model

import "fmt"

// Quorum configures per-partition quorum replication: every item is stored
// at N copies, a write commits once any W of them have granted, and a read
// consults any R (the issuer takes the value with the highest commit stamp).
// Overlap makes it sound: W+R > N puts the freshest committed write in every
// read quorum, and 2W > N makes any two write quorums share a copy, so the
// commit stamps of conflicting writes are strictly ordered through it — the
// property the log-shipping catch-up plane's stamp-gated apply relies on.
type Quorum struct {
	N int // copies per item; must equal the cluster's replication factor
	W int // write quorum
	R int // read quorum
}

// Validate rejects configurations that break the overlap properties or the
// catalog layout (replicas is the cluster's replication factor).
func (q Quorum) Validate(replicas int) error {
	if q.N <= 0 || q.W <= 0 || q.R <= 0 {
		return fmt.Errorf("quorum: N, W, R must all be positive (got N=%d W=%d R=%d)", q.N, q.W, q.R)
	}
	if q.W > q.N {
		return fmt.Errorf("quorum: write quorum W=%d exceeds N=%d copies", q.W, q.N)
	}
	if q.R > q.N {
		return fmt.Errorf("quorum: read quorum R=%d exceeds N=%d copies", q.R, q.N)
	}
	if q.W+q.R <= q.N {
		return fmt.Errorf("quorum: W+R=%d must exceed N=%d or read and write quorums may not intersect", q.W+q.R, q.N)
	}
	if 2*q.W <= q.N {
		return fmt.Errorf("quorum: 2W=%d must exceed N=%d or two write quorums may not intersect", 2*q.W, q.N)
	}
	if q.N != replicas {
		return fmt.Errorf("quorum: N=%d must equal the replication factor %d (every copy of an item is a quorum member)", q.N, replicas)
	}
	return nil
}
