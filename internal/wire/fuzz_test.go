package wire

import (
	"bytes"
	"testing"
)

// FuzzWireRoundTrip feeds arbitrary bytes to the envelope decoder. The
// invariants:
//
//  1. Decode never panics or hangs, whatever the input (hardening).
//  2. Decode is INJECTIVE: an input that decodes IS the canonical encoding,
//     so re-encoding the result reproduces the input byte-for-byte. Every
//     non-canonical shape — overlong varints, bool bytes other than 0/1,
//     out-of-range 32-bit fields, unsorted or duplicate map keys, trailing
//     bytes — must instead be rejected. One message, one encoding is the
//     property the WAL's checksummed frames and the compat matrix rely on.
//
// The seed corpus under testdata/fuzz/FuzzWireRoundTrip holds one encoded
// payload per wire-contract message type (generated from Corpus(); see
// TestWriteSeedCorpus in seed_test.go).
func FuzzWireRoundTrip(f *testing.F) {
	for _, env := range Corpus() {
		payload, err := AppendEnvelope(nil, env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeEnvelope(data)
		if err != nil {
			return // malformed input rejected cleanly: that's a pass
		}
		e1, err := AppendEnvelope(nil, env)
		if err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v\nenvelope: %+v", err, env)
		}
		if !bytes.Equal(data, e1) {
			t.Fatalf("accepted input is not the canonical encoding (decode not injective):\n in: %x\nout: %x\nenvelope: %+v", data, e1, env)
		}
		if _, err := DecodeEnvelope(e1); err != nil {
			t.Fatalf("re-encoded envelope failed to decode: %v\nbytes: %x", err, e1)
		}
	})
}
