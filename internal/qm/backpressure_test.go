package qm

import (
	"testing"

	"ucc/internal/model"
	"ucc/internal/storage"
)

// boundedManager builds a single-site manager with a data-queue bound.
func boundedManager(items, bound int) *Manager {
	st := storage.NewStore(0)
	for i := 0; i < items; i++ {
		st.Create(model.ItemID(i), 100)
	}
	return New(0, st, nil, Options{MaxQueueDepth: bound})
}

// TestQueueBoundNAKsBusy: a request landing on a full data queue must be
// refused with BusyMsg (carrying the request's identity) and not admitted;
// the queue never exceeds its bound, and releases reopen it.
func TestQueueBoundNAKsBusy(t *testing.T) {
	const bound = 3
	m := boundedManager(4, bound)
	ctx := newFakeCtx()

	// 2PL writers conflict, so entries 2..bound stay queued behind the first
	// grant and the queue fills to exactly the bound.
	for i := uint64(1); i <= bound; i++ {
		m.OnMessage(ctx, ctx.self, req(i, model.TwoPL, model.OpWrite, 0, model.NoTimestamp))
	}
	if got := m.QueueDepth(0); got != bound {
		t.Fatalf("depth = %d, want %d", got, bound)
	}
	if busys := take[model.BusyMsg](ctx); len(busys) != 0 {
		t.Fatalf("premature NAKs: %+v", busys)
	}

	// One past the bound: refused, not admitted, counted.
	m.OnMessage(ctx, ctx.self, req(99, model.TwoPL, model.OpWrite, 0, model.NoTimestamp))
	busys := take[model.BusyMsg](ctx)
	if len(busys) != 1 {
		t.Fatalf("busy NAKs = %d, want 1", len(busys))
	}
	if busys[0].Txn.Seq != 99 || busys[0].Copy.Item != 0 {
		t.Fatalf("NAK identity wrong: %+v", busys[0])
	}
	if got := m.QueueDepth(0); got != bound {
		t.Fatalf("depth after NAK = %d, want %d (refused request must not be admitted)", got, bound)
	}
	if s := m.Snapshot(); s.Busy != 1 {
		t.Fatalf("Busy counter = %d, want 1", s.Busy)
	}
	if high := m.DepthHighWater(); high > bound {
		t.Fatalf("depth high-water %d exceeded bound %d", high, bound)
	}

	// Another item's queue is empty: no NAK there.
	m.OnMessage(ctx, ctx.self, req(100, model.TwoPL, model.OpWrite, 1, model.NoTimestamp))
	if busys := take[model.BusyMsg](ctx); len(busys) != 0 {
		t.Fatalf("NAK on an empty queue: %+v", busys)
	}

	// Release the head: the queue reopens and the retry is admitted.
	m.OnMessage(ctx, ctx.self, release(1, 0, true, 7))
	m.OnMessage(ctx, ctx.self, req(99, model.TwoPL, model.OpWrite, 0, model.NoTimestamp))
	if busys := take[model.BusyMsg](ctx); len(busys) != 0 {
		t.Fatalf("retry after release still NAK'd: %+v", busys)
	}
	if got := m.QueueDepth(0); got != bound {
		t.Fatalf("depth after retry = %d, want %d", got, bound)
	}
}

// TestQueueBoundSparesResidentTxns: a transaction already resident in the
// queue (a PA re-request, an attempt replacement) is never NAK'd by the
// bound — re-admission does not grow the queue, and refusing it would strand
// the negotiation.
func TestQueueBoundSparesResidentTxns(t *testing.T) {
	const bound = 2
	m := boundedManager(2, bound)
	ctx := newFakeCtx()

	m.OnMessage(ctx, ctx.self, req(1, model.TwoPL, model.OpWrite, 0, model.NoTimestamp))
	m.OnMessage(ctx, ctx.self, req(2, model.TwoPL, model.OpWrite, 0, model.NoTimestamp))
	take[model.BusyMsg](ctx)

	// Txn 2 re-requests with a higher attempt: resident, so admitted even at
	// the bound.
	r := req(2, model.TwoPL, model.OpWrite, 0, model.NoTimestamp)
	r.Attempt = 1
	m.OnMessage(ctx, ctx.self, r)
	if busys := take[model.BusyMsg](ctx); len(busys) != 0 {
		t.Fatalf("resident re-request NAK'd: %+v", busys)
	}
	if got := m.QueueDepth(0); got != bound {
		t.Fatalf("depth = %d, want %d", got, bound)
	}
}
