package deadlock

import (
	"math/rand"
	"testing"

	"ucc/internal/engine"
	"ucc/internal/model"
)

type fakeCtx struct {
	now    int64
	sent   []engine.Envelope
	timers int
	rng    *rand.Rand
}

func (c *fakeCtx) NowMicros() int64  { return c.now }
func (c *fakeCtx) Self() engine.Addr { return engine.DetectorAddr() }
func (c *fakeCtx) Rand() *rand.Rand  { return c.rng }
func (c *fakeCtx) Send(to engine.Addr, msg model.Message) {
	c.sent = append(c.sent, engine.Envelope{To: to, Msg: msg})
}
func (c *fakeCtx) SetTimer(d int64, msg model.Message) { c.timers++ }

func tid(n uint64) model.TxnID { return model.TxnID{Site: 1, Seq: n} }

func edge(waiter, holder uint64, w2pl, h2pl bool) model.WaitEdge {
	return model.WaitEdge{
		Waiter: tid(waiter), Holder: tid(holder),
		Waiter2PL: w2pl, Holder2PL: h2pl,
		WaiterSite: 1, WaiterIssuer: 1,
	}
}

// runRound probes and feeds one synthetic report per site.
func runRound(d *Detector, ctx *fakeCtx, edges []model.WaitEdge) []model.VictimMsg {
	before := len(ctx.sent)
	d.OnMessage(ctx, engine.DetectorAddr(), model.TickMsg{})
	// Answer the probes: site 0 reports the edges, site 1 reports none.
	round := d.round
	d.OnMessage(ctx, engine.QMAddr(0), model.WFGReportMsg{From: 0, Round: round, Edges: edges})
	d.OnMessage(ctx, engine.QMAddr(1), model.WFGReportMsg{From: 1, Round: round})
	var victims []model.VictimMsg
	for _, e := range ctx.sent[before:] {
		if v, ok := e.Msg.(model.VictimMsg); ok {
			victims = append(victims, v)
		}
	}
	return victims
}

func newTest() (*Detector, *fakeCtx) {
	d := New([]model.SiteID{0, 1}, Options{PeriodMicros: 1000, PersistRounds: 2})
	return d, &fakeCtx{rng: rand.New(rand.NewSource(1))}
}

func TestCyclePersistenceRequired(t *testing.T) {
	d, ctx := newTest()
	cycle := []model.WaitEdge{edge(1, 2, true, true), edge(2, 1, true, true)}
	if v := runRound(d, ctx, cycle); len(v) != 0 {
		t.Fatalf("victim chosen on first sighting: %+v", v)
	}
	v := runRound(d, ctx, cycle)
	if len(v) != 1 {
		t.Fatalf("no victim after persistence: %+v", v)
	}
	// Youngest 2PL member: t1.2.
	if v[0].Txn != tid(2) {
		t.Fatalf("victim = %v want t1.2 (youngest)", v[0].Txn)
	}
	if len(v[0].Cycle) != 2 {
		t.Fatalf("cycle witness = %v", v[0].Cycle)
	}
}

func TestTransientCycleIgnored(t *testing.T) {
	d, ctx := newTest()
	cycle := []model.WaitEdge{edge(1, 2, true, true), edge(2, 1, true, true)}
	runRound(d, ctx, cycle)
	// The cycle resolves by itself before the second sighting.
	if v := runRound(d, ctx, nil); len(v) != 0 {
		t.Fatalf("victim for vanished cycle: %+v", v)
	}
	if d.Snapshot().TransientCycles != 1 {
		t.Fatalf("transient not counted: %+v", d.Snapshot())
	}
}

func TestNo2PLCycleNeverVictimized(t *testing.T) {
	// Corollary 2: a cycle without a 2PL member must be transient; the
	// detector watches it but never kills.
	d, ctx := newTest()
	cycle := []model.WaitEdge{edge(1, 2, false, false), edge(2, 1, false, false)}
	for i := 0; i < 5; i++ {
		if v := runRound(d, ctx, cycle); len(v) != 0 {
			t.Fatalf("round %d: victimized a no-2PL cycle: %+v", i, v)
		}
	}
	if d.Snapshot().No2PLCycles == 0 {
		t.Fatal("no-2PL cycles not counted")
	}
}

func TestMixedCyclePicks2PLMember(t *testing.T) {
	d, ctx := newTest()
	// t3 (T/O) → t9 (2PL) → t3: only t9 is eligible even though t3... wait,
	// t3 is younger. Victim must be the youngest *2PL* member.
	cycle := []model.WaitEdge{edge(9, 3, true, false), edge(3, 9, false, true)}
	runRound(d, ctx, cycle)
	v := runRound(d, ctx, cycle)
	if len(v) != 1 || v[0].Txn != tid(9) {
		t.Fatalf("victim = %+v want t1.9 (the 2PL member)", v)
	}
}

func TestRestartedAttemptIsFreshVictim(t *testing.T) {
	// The detector must be able to victimize attempt 1 of a transaction it
	// already victimized at attempt 0 (regression test for the unbreakable-
	// cycle bug).
	d, ctx := newTest()
	mk := func(att model.Attempt) []model.WaitEdge {
		e1 := edge(1, 2, true, true)
		e1.WaiterSeq = att
		e2 := edge(2, 1, true, true)
		e2.WaiterSeq = att
		return []model.WaitEdge{e1, e2}
	}
	runRound(d, ctx, mk(0))
	v := runRound(d, ctx, mk(0))
	if len(v) != 1 {
		t.Fatal("first victimization missing")
	}
	// The victim restarted (attempt 1) and deadlocked again with the same
	// partner; the cycle must be breakable again.
	runRound(d, ctx, mk(1))
	v = runRound(d, ctx, mk(1))
	if len(v) != 1 {
		t.Fatalf("restarted attempt not victimized: %+v", d.Snapshot())
	}
	if v[0].Attempt != 1 {
		t.Fatalf("victim attempt = %d want 1", v[0].Attempt)
	}
}

func TestLateReportsIgnored(t *testing.T) {
	d, ctx := newTest()
	d.OnMessage(ctx, engine.DetectorAddr(), model.TickMsg{})
	round := d.round
	// A stale report from a previous round must not complete this round.
	d.OnMessage(ctx, engine.QMAddr(0), model.WFGReportMsg{From: 0, Round: round - 1})
	if len(d.expect) != 2 {
		t.Fatal("stale report consumed")
	}
	d.OnMessage(ctx, engine.QMAddr(0), model.WFGReportMsg{From: 0, Round: round})
	d.OnMessage(ctx, engine.QMAddr(1), model.WFGReportMsg{From: 1, Round: round})
	if len(d.expect) != 0 {
		t.Fatal("round did not complete")
	}
}

func TestDrainModeStopsWhenIdle(t *testing.T) {
	d, ctx := newTest()
	runRound(d, ctx, []model.WaitEdge{edge(1, 2, true, true)})
	d.OnMessage(ctx, engine.DetectorAddr(), model.StopMsg{})
	// Still edges → keeps probing.
	timersBefore := ctx.timers
	runRound(d, ctx, []model.WaitEdge{edge(1, 2, true, true)})
	if ctx.timers == timersBefore {
		t.Fatal("drain mode stopped while edges remain")
	}
	// Idle round → next tick does not re-arm.
	runRound(d, ctx, nil)
	timersBefore = ctx.timers
	d.OnMessage(ctx, engine.DetectorAddr(), model.TickMsg{})
	if ctx.timers != timersBefore {
		t.Fatal("detector re-armed after idle drain round")
	}
}

func TestTarjanFindsNestedSCCs(t *testing.T) {
	adj := map[model.TxnID]map[model.TxnID]bool{
		tid(1): {tid(2): true},
		tid(2): {tid(3): true},
		tid(3): {tid(1): true, tid(4): true},
		tid(4): {tid(5): true},
		tid(5): {tid(4): true},
		tid(6): {tid(1): true},
	}
	sccs := tarjanSCC(adj)
	sizes := map[int]int{}
	for _, s := range sccs {
		sizes[len(s)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Fatalf("scc sizes = %v want one 3-cycle, one 2-cycle, one singleton", sizes)
	}
}

func TestVictimPolicyOldest(t *testing.T) {
	d := New([]model.SiteID{0, 1}, Options{
		PeriodMicros: 1000, PersistRounds: 2, Policy: VictimOldest,
	})
	ctx := &fakeCtx{rng: rand.New(rand.NewSource(1))}
	cycle := []model.WaitEdge{edge(1, 2, true, true), edge(2, 1, true, true)}
	runRound(d, ctx, cycle)
	v := runRound(d, ctx, cycle)
	if len(v) != 1 || v[0].Txn != tid(1) {
		t.Fatalf("victim = %+v want t1.1 (oldest)", v)
	}
}
