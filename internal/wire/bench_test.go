package wire

import (
	"testing"
)

// BenchmarkWireCodec measures a full encode→decode round trip per envelope
// over the mixed-message corpus — what the transport pays on the two ends of
// the wire — for the v3 codec and for the legacy gob stream, driving the
// SAME per-pass harnesses CompareWithGob uses (so this bench gate and the
// TestWireCodecGate ratio gate measure one code path). The hardware-robust
// custom metrics:
//
//	msgs/KB  — corpus envelopes per KiB of encoded stream (wire density;
//	           deterministic given the corpus, so the CI bench gate holds it)
//
// ReportAllocs covers allocs/op; msgs/sec is wall-clock and host-bound, so
// the ≥1.5×-over-gob floor is gated as a ratio by TestWireCodecGate instead.
func BenchmarkWireCodec(b *testing.B) {
	corpus := Corpus()

	b.Run("v3", func(b *testing.B) {
		h := NewV3Harness()
		defer h.Release()
		var streamBytes int
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n, err := h.Pass(corpus)
			if err != nil {
				b.Fatal(err)
			}
			streamBytes = n
		}
		b.StopTimer()
		reportCodecMetrics(b, len(corpus), streamBytes)
	})

	// v3-pooled adds the decode-side message struct pool: hot fixed-size
	// messages decode into pooled structs recycled right after the read, so
	// the interface boxing that is v3's last steady-state decode allocation
	// disappears. Compare allocs/op against plain v3: the delta is one alloc
	// per pooled message in the corpus.
	b.Run("v3-pooled", func(b *testing.B) {
		h := NewV3Harness()
		defer h.Release()
		var streamBytes int
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n, err := h.PassPooled(corpus)
			if err != nil {
				b.Fatal(err)
			}
			streamBytes = n
		}
		b.StopTimer()
		reportCodecMetrics(b, len(corpus), streamBytes)
	})

	b.Run("gob", func(b *testing.B) {
		h := NewGobHarness()
		var streamBytes int
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n, err := h.Pass(corpus)
			if err != nil {
				b.Fatal(err)
			}
			streamBytes = n
		}
		b.StopTimer()
		reportCodecMetrics(b, len(corpus), streamBytes)
	})
}

func reportCodecMetrics(b *testing.B, corpusMsgs, streamBytes int) {
	if streamBytes > 0 {
		b.ReportMetric(float64(corpusMsgs)/(float64(streamBytes)/1024), "msgs/KB")
	}
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(corpusMsgs*b.N)/b.Elapsed().Seconds(), "msgs/s")
	}
}

// TestWireCodecGate is the acceptance floor the CI bench-gate job runs: the
// v3 codec must beat gob by ≥1.5× msgs/sec and use ≤10% of gob's allocations
// per message over the mixed corpus. Measured numbers are far beyond both
// bars (typically ≥8× and ≤5%), so the gate trips only on a genuine codec
// regression, not runner noise.
func TestWireCodecGate(t *testing.T) {
	if raceEnabled {
		t.Skip("timing/alloc ratios are distorted under -race; the bench-gate job runs without it")
	}
	if testing.Short() {
		t.Skip("codec gate skipped in -short")
	}
	rep, err := CompareWithGob(300)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("v3: %.0f msgs/s, %.2f allocs/msg, %.1f B/msg; gob: %.0f msgs/s, %.2f allocs/msg, %.1f B/msg; speedup %.2fx, alloc ratio %.3f",
		rep.V3.MsgsPerSec, rep.V3.AllocsPerMsg, rep.V3.BytesPerMsg,
		rep.Gob.MsgsPerSec, rep.Gob.AllocsPerMsg, rep.Gob.BytesPerMsg,
		rep.Speedup, rep.AllocRatio)
	if rep.Speedup < 1.5 {
		t.Errorf("v3 codec speedup over gob is %.2fx, want ≥ 1.5x", rep.Speedup)
	}
	if rep.AllocRatio > 0.10 {
		t.Errorf("v3 codec allocates %.1f%% of gob's allocs/msg, want ≤ 10%%", rep.AllocRatio*100)
	}
}
