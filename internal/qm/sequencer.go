package qm

import "sync"

// commitSequencer is the per-site commit point the shards drain through: a
// transaction's writes become durable at one atomic site-wide sync no matter
// how many shards implemented them. Each committing shard calls commit();
// one caller at a time becomes the leader and performs the underlying flush
// for everyone waiting, so N concurrently expiring shard batches cost far
// fewer than N media syncs (the same leader/follower shape as the WAL's
// GroupCommitter, kept separate so qm depends only on the Durable
// interface, not on internal/wal).
//
// Correctness contract: commit() returns only after a flush that STARTED
// after the call completes. A flush already in flight may have snapshotted
// the log buffer before this shard's last append, so the caller waits for
// the next generation instead — that is what makes the sequencer a valid
// write-ahead barrier: when a shard's commit() returns, every record it
// journaled is on durable media, and only then are grants exposing those
// writes sent.
type commitSequencer struct {
	mu    sync.Mutex
	cond  *sync.Cond
	flush func() error
	busy  bool
	gen   uint64 // completed sync generations
	err   error  // result of the most recent sync

	commits uint64
	syncs   uint64
}

func newCommitSequencer(flush func() error) *commitSequencer {
	s := &commitSequencer{flush: flush}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// commit blocks until every record appended before the call is durable.
func (s *commitSequencer) commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commits++
	need := s.gen + 1
	if s.busy {
		need = s.gen + 2 // the in-flight sync may predate our appends
	}
	for s.gen < need {
		if s.busy {
			s.cond.Wait()
			continue
		}
		s.busy = true
		s.mu.Unlock()
		err := s.flush()
		s.mu.Lock()
		s.busy = false
		s.gen++
		s.syncs++
		s.err = err
		s.cond.Broadcast()
	}
	return s.err
}

// stats returns cumulative (commits, syncs). syncs ≤ commits; the gap is the
// cross-shard batching win.
func (s *commitSequencer) stats() (commits, syncs uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commits, s.syncs
}
