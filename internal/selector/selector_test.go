package selector

import (
	"testing"
	"ucc/internal/stl"

	"ucc/internal/model"
)

func estimate() model.EstimateMsg {
	est := model.EstimateMsg{
		AtMicros: 1000,
		LambdaR:  map[model.ItemID]float64{0: 6, 1: 6, 2: 6, 3: 6},
		LambdaW:  map[model.ItemID]float64{0: 4, 1: 4, 2: 4, 3: 4},
		Qr:       0.6,
		K:        4,
	}
	for _, v := range est.LambdaR {
		est.LambdaA += v
	}
	for _, v := range est.LambdaW {
		est.LambdaA += v
	}
	est.U = [3]float64{0.010, 0.010, 0.010}
	est.UPrime = [3]float64{0.020, 0.005, 0.004}
	return est
}

func probeTxn() *model.Txn {
	return model.NewTxn(model.TxnID{Site: 1, Seq: 1}, model.TwoPL,
		[]model.ItemID{0, 1}, []model.ItemID{2, 3}, 1000)
}

func TestStaticAlwaysReturnsProtocol(t *testing.T) {
	for _, p := range model.Protocols {
		f := Static(p)
		for i := 0; i < 3; i++ {
			if got := f(probeTxn(), estimate()); got != p {
				t.Fatalf("Static(%v) chose %v", p, got)
			}
		}
	}
}

func TestDynamicFallbackBeforeWarmup(t *testing.T) {
	d := NewDynamic(Options{Fallback: model.PA})
	cold := model.EstimateMsg{} // no throughput measured yet
	if got := d.Choose(probeTxn(), cold); got != model.PA {
		t.Fatalf("cold choice = %v want fallback PA", got)
	}
	if d.Decisions[model.PA] != 1 {
		t.Fatal("decision not counted")
	}
}

func TestDynamicAvoidsDeadlockProne2PL(t *testing.T) {
	d := NewDynamic(Options{Fallback: model.TwoPL})
	est := estimate()
	est.PAbort = 0.6 // 2PL attempts die in deadlocks 60% of the time
	if got := d.Choose(probeTxn(), est); got == model.TwoPL {
		vals := d.Evaluate(probeTxn(), est)
		t.Fatalf("chose 2PL despite PAbort=0.6; stl=%v", vals)
	}
}

func TestDynamicAvoidsRestartProneTO(t *testing.T) {
	d := NewDynamic(Options{Fallback: model.TwoPL})
	est := estimate()
	est.Pr, est.PwR = 0.5, 0.5 // T/O rejects half of everything
	est.PAbort = 0.3           // 2PL not great either
	if got := d.Choose(probeTxn(), est); got == model.TO {
		vals := d.Evaluate(probeTxn(), est)
		t.Fatalf("chose T/O despite Pr=Pw=0.5; stl=%v", vals)
	}
}

func TestDynamicPrefersCleanProtocol(t *testing.T) {
	d := NewDynamic(Options{Fallback: model.PA})
	est := estimate()
	// Everything clean and equal lock times → 2PL wins ties (paper order).
	if got := d.Choose(probeTxn(), est); got != model.TwoPL {
		vals := d.Evaluate(probeTxn(), est)
		t.Fatalf("clean system choice = %v, stl=%v", got, vals)
	}
}

func TestDynamicClassCache(t *testing.T) {
	d := NewDynamic(Options{Fallback: model.PA, CacheTTLMicros: 1_000_000})
	est := estimate()
	tx := probeTxn()
	tx.Class = "hot"
	first := d.Choose(tx, est)
	// Same class+shape within TTL → cached (same answer, one evaluation).
	for i := 0; i < 5; i++ {
		if got := d.Choose(tx, est); got != first {
			t.Fatal("cached choice changed")
		}
	}
	// TTL expiry forces re-evaluation (observable via the time bump).
	est2 := est
	est2.AtMicros = est.AtMicros + 2_000_000
	if got := d.Choose(tx, est2); got != first {
		t.Fatal("re-evaluation with identical estimates changed the answer")
	}
}

func TestParamsFromEstimates(t *testing.T) {
	p := ParamsFromEstimates(estimate())
	if p.LambdaA != 40 {
		t.Fatalf("λA = %v", p.LambdaA)
	}
	if p.LambdaR != 6 || p.LambdaW != 4 {
		t.Fatalf("per-queue rates: r=%v w=%v", p.LambdaR, p.LambdaW)
	}
	if p.K != 4 || p.Qr != 0.6 {
		t.Fatalf("K=%v Qr=%v", p.K, p.Qr)
	}
}

func TestProfileFromEstimates(t *testing.T) {
	prof := ProfileFromEstimates(probeTxn(), estimate())
	if prof.M() != 2 || prof.N() != 2 {
		t.Fatalf("m=%d n=%d", prof.M(), prof.N())
	}
	// λt = 2 reads × λw(4) + 2 writes × (λw(4)+λr(6)) = 8 + 20 = 28.
	if got := prof.LambdaT(); got != 28 {
		t.Fatalf("λt = %v want 28", got)
	}
}

func TestProtocolParamsColdDefaults(t *testing.T) {
	pp := ProtocolParamsFromEstimates(model.EstimateMsg{})
	if pp.U2PL <= 0 || pp.UTO <= 0 || pp.UPA <= 0 {
		t.Fatalf("cold priors missing: %+v", pp)
	}
}

func TestColdStartAnalytic(t *testing.T) {
	shape := &stl.SystemShape{
		Sites: 4, ArrivalPerSec: 60, Items: 24, K: 4, Qr: 0.5,
		RoundTripSeconds: 0.006, ComputeSeconds: 0.003,
		DetectSeconds: 0.05, RestartSeconds: 0.02,
	}
	d := NewDynamic(Options{Fallback: model.TwoPL, ColdStart: shape})
	// With no measurements, the analytic model must drive the choice (at
	// this heavy load it must not pick deadlock-prone 2PL even though 2PL
	// is the fallback).
	got := d.Choose(probeTxn(), model.EstimateMsg{})
	if got == model.TwoPL {
		t.Fatalf("cold-start analytic chose 2PL at heavy load")
	}
}
