// Package model is a miniature stand-in for ucc/internal/model: the
// sheddable analyzer recognises it by import-path suffix.
package model

// Message mirrors the real sealed message interface.
type Message interface{ isMessage() }

// Sheddable mirrors the real opt-in shedding interface.
type Sheddable interface {
	Message
	Busy() Message
}

// BusyMsg is the NAK completers are converted into; it is itself
// completion traffic.
type BusyMsg struct{}

func (BusyMsg) isMessage() {}

// RequestMsg is a grandfathered opener.
type RequestMsg struct{}

func (RequestMsg) isMessage() {}

// Busy converts the request into a busy NAK.
func (m RequestMsg) Busy() Message { return BusyMsg{} }

// SnapReadMsg is the other grandfathered opener.
type SnapReadMsg struct{}

func (SnapReadMsg) isMessage() {}

// Busy converts the snapshot read into a busy NAK.
func (m SnapReadMsg) Busy() Message { return BusyMsg{} }

// ReleaseMsg is completion traffic: shedding it would strand a lock.
type ReleaseMsg struct{}

func (ReleaseMsg) isMessage() {}

func (m ReleaseMsg) Busy() Message { return BusyMsg{} } // want `completion traffic`

// WithdrawMsg is also completion traffic, even with a marker: the
// completer rule is not overridable.
type WithdrawMsg struct{}

func (WithdrawMsg) isMessage() {}

//ucclint:sheddable -- markers do not override the completer rule
func (m WithdrawMsg) Busy() Message { return BusyMsg{} } // want `completion traffic`

// ProbeMsg is a new opener with no marker: flagged until someone writes
// down the shed-safety argument.
type ProbeMsg struct{}

func (ProbeMsg) isMessage() {}

func (m ProbeMsg) Busy() Message { return BusyMsg{} } // want `newly implements model\.Sheddable`

// ScanMsg is a new opener whose author stated the argument.
type ScanMsg struct{}

func (ScanMsg) isMessage() {}

// Busy converts the scan into a busy NAK.
//
//ucclint:sheddable -- scans are idempotent reads; the client retries from scratch
func (m ScanMsg) Busy() Message { return BusyMsg{} }

// notAMessage has a Busy method but does not implement Message, so the
// analyzer ignores it.
type notAMessage struct{}

func (n notAMessage) Busy() Message { return BusyMsg{} }
