// Package scenario turns whole-system experiments into data: a Scenario is a
// declarative phase list — workload shapes, scheduled faults, and invariant
// checkpoints — executed against a live cluster by Run. See doc.go.
package scenario

import (
	"fmt"

	"ucc/internal/cluster"
	"ucc/internal/metrics"
	"ucc/internal/workload"
)

// Scenario is a complete declarative system test: a cluster shape, a phased
// workload with scheduled faults, per-phase checkpoints, and final (post-
// drain) checks. Scenarios are plain data — the library in library.go is a
// list of them, and building a new one needs no runner code.
type Scenario struct {
	// Name identifies the scenario (`uccscenario -run <name>`).
	Name string
	// Description is one line for -list output.
	Description string

	// Cluster is the system under test. Run forces Record=true unless
	// NoHistory is set (serializability checking is the point of the
	// harness); Seed may be overridden per run.
	Cluster cluster.Config

	// Phases execute in order from engine time zero. Every site runs the
	// same phase clock; per-site workload differences come from the
	// Workload(site) function.
	Phases []Phase

	// SettleMicros runs the cluster past the last phase before the drain,
	// letting in-flight transactions finish on their own clock (default
	// 5s of engine time).
	SettleMicros int64

	// Final checks run after the drain against the complete run —
	// serializability, replica agreement, unfinished-transaction counts.
	Final []Check

	// NoHistory disables history recording for scenarios outside the checked
	// envelope (e.g. crash faults combined with a nonzero group-commit
	// window — see cluster.Durability.GroupCommitMicros).
	NoHistory bool
}

// Phase is one segment of scenario time: a workload shape held for a
// duration, faults injected at offsets within it, and checkpoints evaluated
// over exactly the events of this phase (metric deltas, not run cumulatives).
type Phase struct {
	// Name labels the phase in reports ("calm", "spike", "aftermath").
	Name string
	// DurationMicros is the phase length in engine time.
	DurationMicros int64
	// Workload returns the spec site `site` runs during this phase
	// (heterogeneous mixes return different specs per site). Phase specs
	// are open-loop; see workload.ValidatePhases.
	Workload func(site int) workload.Spec
	// Faults fire at their offsets within the phase, in offset order.
	Faults []Fault
	// Checks run at the phase boundary against this phase's metric delta.
	Checks []Check
}

// Fault is a scheduled intervention: at AtMicros past the phase start the
// runner advances the engine to that instant and calls Apply on the live
// cluster (crash a site, widen a WAL window, swap the latency model).
type Fault struct {
	// Name labels the fault in reports.
	Name string
	// AtMicros is the offset from the phase start (clamped into the phase).
	AtMicros int64
	// Apply performs the intervention. It runs between engine steps, so it
	// may mutate sim-side state directly (cluster.SetLatency,
	// cluster.SetGroupCommitWindow) or post events (cluster.CrashSite with
	// atMicros 0 fires at the current virtual instant).
	Apply func(*cluster.Cluster)
}

// Check is a named invariant evaluated by the runner: nil error = pass.
// Phase checks see the phase's metric delta; final checks see the drained
// cluster.Result. A failed check marks the run failed but never stops it —
// later phases still execute, so one report shows every violated invariant.
type Check struct {
	Name string
	Eval func(*Ctx) error
}

// Ctx is what a check can see. Phase checks get Phase (with its metric
// delta) and a nil Final; final checks get Final and a nil Phase. Cluster is
// always the live cluster (post-drain for final checks), and Run holds every
// phase record completed so far — a check may compare its phase against an
// earlier one.
type Ctx struct {
	Scenario *Scenario
	Cluster  *cluster.Cluster
	Run      *RunRecord
	Phase    *PhaseRecord
	Final    *cluster.Result
}

// delta returns the phase's metric delta, or an error for a check placed in
// the wrong position.
func (c *Ctx) delta() (metrics.Summary, error) {
	if c.Phase == nil {
		return metrics.Summary{}, fmt.Errorf("phase check evaluated outside a phase (list it under Phase.Checks, not Scenario.Final)")
	}
	return c.Phase.delta, nil
}

// final returns the run result, or an error for a misplaced check.
func (c *Ctx) final() (*cluster.Result, error) {
	if c.Final == nil {
		return nil, fmt.Errorf("final check evaluated inside a phase (list it under Scenario.Final, not Phase.Checks)")
	}
	return c.Final, nil
}

// Validate checks the scenario is well-formed: named, at least one phase,
// every phase with a workload function, and every per-site phase list
// accepted by workload.ValidatePhases (strict knob validation). The cluster
// config itself is validated by cluster.NewSim at run time.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: Name is empty")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %s: no phases", s.Name)
	}
	if s.Cluster.Sites <= 0 {
		return fmt.Errorf("scenario %s: Cluster.Sites must be positive", s.Name)
	}
	for i := range s.Phases {
		if s.Phases[i].Workload == nil {
			return fmt.Errorf("scenario %s: phase %d (%q) has no Workload function", s.Name, i, s.Phases[i].Name)
		}
	}
	for site := 0; site < s.Cluster.Sites; site++ {
		if err := workload.ValidatePhases(s.sitePhases(site)); err != nil {
			return fmt.Errorf("scenario %s: site %d: %w", s.Name, site, err)
		}
	}
	return nil
}

// sitePhases materializes the per-site workload phase list.
func (s *Scenario) sitePhases(site int) []workload.Phase {
	out := make([]workload.Phase, len(s.Phases))
	for i, p := range s.Phases {
		out[i] = workload.Phase{
			Name:           p.Name,
			DurationMicros: p.DurationMicros,
			Spec:           p.Workload(site),
		}
	}
	return out
}

// TotalMicros is the scheduled scenario length (sum of phase durations,
// excluding the settle window).
func (s *Scenario) TotalMicros() int64 {
	var t int64
	for i := range s.Phases {
		t += s.Phases[i].DurationMicros
	}
	return t
}
