// Package sheddable pins the PR 4 deadlock-freedom argument: only
// new-work openers may implement model.Sheddable. Bounded mailboxes and
// queues refuse sheddable messages with a busy NAK at the bound but admit
// everything else past it; that policy is deadlock-free precisely because
// messages that complete in-flight protocol work — releases, aborts,
// grants, final timestamps, busy NAKs themselves — can never be shed.
// Marking a completer Sheddable would let a saturated site drop a lock
// release and strand the item's queue forever.
//
// The analyzer inspects the model package (any package whose import path
// ends in internal/model) for methods that make a message type satisfy
// Sheddable (a Busy method on a Message implementation) and reports:
//
//   - any implementation on a type whose name marks it as protocol
//     completion traffic (Release, Abort, Grant, FinalTS, Reject, Backoff,
//     Victim, Busy, Finished, Done, Withdraw, Revoke);
//   - any implementation on a new type that does not carry a
//     "//ucclint:sheddable" marker in its doc comment stating why shedding
//     that message cannot strand protocol state.
//
// The two grandfathered openers, RequestMsg and SnapReadMsg, carry the
// marker in internal/model/messages.go.
package sheddable

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"ucc/internal/lint"
)

// Analyzer flags Sheddable implementations that break the completer rule.
var Analyzer = &lint.Analyzer{
	Name: "sheddable",
	Doc: "no completer/withdraw/release message type may be marked Sheddable (shedding a " +
		"completion strands locks forever); new sheddable openers need a //ucclint:sheddable " +
		"marker stating the shed-safety argument",
	Run: run,
}

// completerRE matches message type names that denote completion traffic.
var completerRE = regexp.MustCompile(`(Release|Abort|Grant|FinalTS|Reject|Backoff|Victim|Busy|Finished|Done|Withdraw|Revoke)`)

// marker is the doc-comment opt-in for new sheddable openers.
const marker = "//ucclint:sheddable"

func run(pass *lint.Pass) error {
	if !lint.PathHasSuffix(pass.Pkg.Path(), "internal/model") {
		return nil
	}
	msgIface := messageInterface(pass.Pkg)
	if msgIface == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Busy" || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recv := pass.TypesInfo.Defs[fd.Name]
			if recv == nil {
				continue
			}
			named := receiverNamed(recv.(*types.Func))
			if named == nil || !implementsMessage(named, msgIface) {
				continue
			}
			name := named.Obj().Name()
			switch {
			case completerRE.MatchString(name):
				pass.Reportf(fd.Name.Pos(),
					"%s is completion traffic and must never implement model.Sheddable: "+
						"shedding a completer strands in-flight protocol state (locks, grants) forever — "+
						"the bounded-queue policy is only deadlock-free because completers always pass the bound",
					name)
			case name == "RequestMsg" || name == "SnapReadMsg":
				// The two openers the PR 4 argument was made for.
			case !hasMarker(fd.Doc):
				pass.Reportf(fd.Name.Pos(),
					"%s newly implements model.Sheddable; add a %q marker to Busy's doc comment "+
						"stating why shedding this message cannot strand protocol state",
					name, marker)
			}
		}
	}
	return nil
}

// messageInterface returns the package's Message interface (the one with
// the unexported isMessage method), or nil.
func messageInterface(pkg *types.Package) *types.Interface {
	obj := pkg.Scope().Lookup("Message")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	iface, ok := tn.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	return iface
}

func receiverNamed(fn *types.Func) *types.Named {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func implementsMessage(named *types.Named, iface *types.Interface) bool {
	return types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface)
}

func hasMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, marker) {
			return true
		}
	}
	return false
}
