// Command uccnode runs one data/user site of the distributed system as a
// real process: the site's queue manager (with its storage partition), its
// request issuer, and — on site 0 — the deadlock-detection coordinator. The
// metrics collector and workload drivers live in cmd/uccclient.
//
// Example 3-site cluster on one machine:
//
//	uccnode -site 0 -sites 3 -listen :7700 -peers :7700,:7701,:7702 &
//	uccnode -site 1 -sites 3 -listen :7701 -peers :7700,:7701,:7702 &
//	uccnode -site 2 -sites 3 -listen :7702 -peers :7700,:7701,:7702 &
//	uccclient -peers :7700,:7701,:7702 -listen :7709 -rate 50 -duration 5s
//
// Every process must agree on -sites/-items/-replicas/-shards (they derive
// the same static catalog and the same item→shard routing).
//
// With -data-dir the site journals every committed write to a file-backed
// write-ahead log (group-committed) and snapshots its partition; after a
// crash — `kill -9` included — restarting with the same -data-dir rebuilds
// the partition from snapshot + log replay instead of reinitializing it.
//
// Overload defense defaults ON for a real node: mailboxes, per-item data
// queues, and per-peer send queues are all bounded (-mailbox-depth,
// -queue-depth, -send-queue-cap), requests past a bound are NAK'd busy
// rather than queued, and the issuer's admission controller (-admission,
// -admission-window, -admission-rate, -admission-target-ms) sheds arrivals
// beyond capacity so goodput plateaus instead of the node melting. Restart
// delays back off exponentially to -restart-delay-cap-us.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"ucc/internal/deadlock"
	"ucc/internal/engine"
	"ucc/internal/model"
	"ucc/internal/placement"
	"ucc/internal/qm"
	"ucc/internal/repl"
	"ucc/internal/ri"
	"ucc/internal/storage"
	"ucc/internal/transport"
	"ucc/internal/wal"
)

func main() {
	var (
		site      = flag.Int("site", 0, "this node's site id (0-based)")
		sites     = flag.Int("sites", 3, "total number of sites")
		items     = flag.Int("items", 64, "number of logical data items")
		replicas  = flag.Int("replicas", 1, "physical copies per item")
		placeFlag = flag.String("placement", "round-robin", "epoch-0 placement policy: round-robin, range, or hash (all processes must agree)")
		shards    = flag.Int("shards", 1, "queue-manager shards per site (item-hash partitioned; all processes must agree)")
		initial   = flag.Int64("initial", 100, "initial value of every item")
		listen    = flag.String("listen", ":7700", "TCP listen address")
		peers     = flag.String("peers", "", "comma-separated site TCP addresses, index = site id")
		client    = flag.String("client", "", "client peer TCP address (collector/driver host); may be empty until a client connects inbound")
		detector  = flag.Int64("detector-period-ms", 50, "deadlock detection period (site 0 only)")
		paInt     = flag.Int64("pa-interval-us", 2000, "PA back-off interval INT (µs)")
		restart   = flag.Int64("restart-delay-us", 10000, "base restart delay after rejection/victim/busy (µs); doubles per failed attempt")
		restCap   = flag.Int64("restart-delay-cap-us", 0, "exponential restart backoff cap (µs); 0 = 32× the base delay")

		mailboxDepth = flag.Int("mailbox-depth", 8192, "actor mailbox bound: requests to a full QM-shard mailbox are NAK'd busy (0 = unbounded)")
		queueDepth   = flag.Int("queue-depth", 1024, "per-item data queue bound: requests beyond it are NAK'd busy (0 = unbounded)")
		sendCap      = flag.Int("send-queue-cap", 65536, "per-peer transport send-queue bound, drop-oldest beyond it (0 = unbounded)")

		admission = flag.Bool("admission", true, "enable the admission controller (AIMD in-flight window on new-transaction starts)")
		admWindow = flag.Int("admission-window", 128, "initial admission in-flight window per site")
		admRate   = flag.Float64("admission-rate", 0, "token-bucket cap on new-transaction starts per second (0 = no rate gate)")
		admTarget = flag.Int64("admission-target-ms", 0, "commit-latency target (ms); commits slower than this shrink the window (0 = busy-NAK signal only)")

		quorumN      = flag.Int("quorum-n", 0, "quorum replication: copies per item (0 with -quorum-w/-r = read-one/write-all; all processes must agree)")
		quorumW      = flag.Int("quorum-w", 0, "quorum replication: write quorum size (W of N grants commit a write)")
		quorumR      = flag.Int("quorum-r", 0, "quorum replication: read quorum size (R copies answer a read, highest commit stamp wins)")
		replPeriodMS = flag.Int64("repl-period-ms", 150, "WAL log-shipping catch-up pull period (ms)")
		replBatch    = flag.Int("repl-batch", 512, "records per catch-up batch (a cut batch re-pulls immediately)")

		dataDir  = flag.String("data-dir", "", "durability root: write-ahead log + snapshots under <dir>/site<N> (empty = volatile)")
		gcWindow = flag.Int64("wal-group-commit-us", 0, "group-commit window (µs); 0 (default) syncs each write before exposing it — a nonzero window amortizes syncs but a crash inside it loses writes other sites may have observed")
		segBytes = flag.Int("wal-segment-bytes", 1<<20, "WAL segment roll threshold")
		snapN    = flag.Uint64("wal-snapshot-every", 10000, "snapshot + truncate the WAL after this many journaled writes (0 = never)")

		moveAfter = flag.Duration("move-after", 0, "publish an online rebalance this long after startup: -move-items become primaried at -move-to (run on ONE node only — the epoch bump must have a single author)")
		moveItems = flag.String("move-items", "", "comma-separated item ids to move with -move-after")
		moveTo    = flag.Int("move-to", -1, "destination site id for -move-after/-move-items")
	)
	flag.Parse()

	peerList, err := parsePeers(*peers, *sites)
	if err != nil {
		log.Fatalf("uccnode: %v", err)
	}
	if *shards < 1 {
		*shards = 1
	}
	if *shards > 256 {
		// engine.Addr carries the shard index in a byte and QMShardAddr
		// truncates with uint8: above 256 shards, traffic for the high
		// shards would silently land in the wrong mailbox. Refuse, exactly
		// as cluster.Config.Validate does, so every entry point agrees.
		log.Fatalf("uccnode: -shards %d exceeds the maximum of 256 (shard index travels in one byte)", *shards)
	}
	topo := siteTopology(peerList, *client)
	quorum, err := quorumFromFlags(*quorumN, *quorumW, *quorumR, *replicas, *dataDir != "")
	if err != nil {
		log.Fatalf("uccnode: %v", err)
	}
	policy, err := placementFromFlag(*placeFlag)
	if err != nil {
		log.Fatalf("uccnode: %v", err)
	}

	// Build this site's slice of the system. Latency is the real network;
	// the runtime adds nothing on top.
	rt := engine.NewRuntime(engine.FixedLatency{}, int64(*site)+1)
	// Bound every mailbox registered below: new-work requests beyond the
	// bound are NAK'd busy rather than queued without limit.
	rt.SetMailboxDepth(*mailboxDepth)

	siteIDs := make([]model.SiteID, *sites)
	for i := range siteIDs {
		siteIDs[i] = model.SiteID(i)
	}
	pmap := placement.Build(policy, *items, siteIDs, *replicas)
	self := model.SiteID(*site)

	store := storage.NewStore(self)
	for _, item := range pmap.CopiesAt(self) {
		store.Create(item, *initial)
	}

	var siteLog *wal.SiteLog
	if *dataDir != "" {
		media, err := wal.NewDirMedia(filepath.Join(*dataDir, fmt.Sprintf("site%d", *site)))
		if err != nil {
			log.Fatalf("uccnode: %v", err)
		}
		siteLog, err = wal.Open(media, store, wal.Options{
			SegmentBytes:  *segBytes,
			SnapshotEvery: *snapN,
			GroupCommit:   true,
		})
		if err != nil {
			log.Fatalf("uccnode: open wal: %v", err)
		}
		store.SetJournal(siteLog)
		if st := siteLog.Stats(); st.Recoveries > 0 {
			log.Printf("uccnode: site %d recovered %d copies from snapshot, replayed %d WAL records",
				*site, st.RecoveredCopies, st.Replayed)
		} else {
			log.Printf("uccnode: site %d initialized fresh durable partition", *site)
		}
	}

	qmOpts := qm.Options{StatsPeriodMicros: 200_000, Shards: *shards, MaxQueueDepth: *queueDepth}
	if siteLog != nil {
		qmOpts.GroupCommitMicros = *gcWindow
	}
	qmOpts.InitialValue = *initial
	mgr := qm.New(self, store, nil, qmOpts)
	if siteLog != nil {
		mgr.SetDurable(siteLog)
	}
	mgr.SetPartitionMap(pmap)
	if quorum != nil {
		mgr.SetReplication(repl.NewPuller(repl.Options{
			Site:         self,
			Peers:        replPeersFor(pmap, self),
			PeriodMicros: *replPeriodMS * 1000,
			BatchRecords: *replBatch,
		}), siteLog)
	}
	// One mailbox goroutine per shard: items hash to shard addresses, so
	// conflict-free operations on this site's partition execute in parallel.
	for i := 0; i < mgr.NumShards(); i++ {
		rt.Register(engine.QMShardAddr(self, i), mgr)
	}

	issuer := ri.New(self, pmap, nil, ri.Options{
		PAIntervalMicros:      model.Timestamp(*paInt),
		RestartDelayMicros:    *restart,
		RestartDelayCapMicros: *restCap,
		DefaultComputeMicros:  1000,
		QMShards:              *shards,
		Quorum:                quorum,
		Admission: ri.AdmissionOptions{
			Enabled:             *admission,
			InitialWindow:       *admWindow,
			TokensPerSec:        *admRate,
			TargetLatencyMicros: *admTarget * 1000,
		},
	}, nil)
	rt.Register(engine.RIAddr(self), issuer)

	if self == 0 {
		det := deadlock.New(siteIDs, deadlock.Options{
			PeriodMicros:  *detector * 1000,
			PersistRounds: 2,
		})
		rt.Register(engine.DetectorAddr(), det)
		rt.Post(engine.Envelope{From: engine.DetectorAddr(), To: engine.DetectorAddr(), Msg: model.TickMsg{}})
	}
	// Start the QM stats push (reports flow to the client's collector).
	rt.Post(engine.Envelope{From: engine.QMAddr(self), To: engine.QMAddr(self), Msg: model.TickMsg{}})
	if quorum != nil {
		// Start the catch-up pull chain (tagged tick; re-arms itself).
		rt.Post(engine.Envelope{From: engine.QMAddr(self), To: engine.QMAddr(self), Msg: model.TickMsg{Tag: qm.ReplTickTag}})
	}

	node, err := transport.NewNode(rt, fmt.Sprintf("site%d", *site), *listen, topo)
	if err != nil {
		log.Fatalf("uccnode: %v", err)
	}
	node.SetSendQueueCap(*sendCap)
	log.Printf("uccnode: site %d up on %s (%d items stored, %d sites, %d replicas, placement=%s, %d qm shards, durability=%v, admission=%v)",
		*site, node.Addr(), store.Len(), *sites, *replicas, policy, mgr.NumShards(), siteLog != nil, *admission)

	if *moveAfter > 0 {
		moved, err := parseItems(*moveItems)
		if err != nil {
			log.Fatalf("uccnode: -move-items: %v", err)
		}
		if len(moved) == 0 || *moveTo < 0 || *moveTo >= *sites {
			log.Fatalf("uccnode: -move-after requires -move-items and a -move-to in [0,%d)", *sites)
		}
		next, err := placement.PlanMove(pmap, moved, model.SiteID(*moveTo))
		if err != nil {
			log.Fatalf("uccnode: plan move: %v", err)
		}
		time.AfterFunc(*moveAfter, func() {
			log.Printf("uccnode: site %d publishing epoch %d: %d items -> site %d", *site, next.Epoch, len(moved), *moveTo)
			// Install order mirrors the simulated controller: queue managers
			// first (owners flip and start transfers), then issuers (routers
			// re-aim). Post, not Inject: remote queue managers and issuers
			// are reached through the transport uplink.
			for _, s := range siteIDs {
				rt.Post(engine.Envelope{From: engine.QMAddr(self), To: engine.QMAddr(s), Msg: model.MapInstallMsg{Map: *next}})
			}
			for _, s := range siteIDs {
				rt.Post(engine.Envelope{From: engine.QMAddr(self), To: engine.RIAddr(s), Msg: model.MapUpdateMsg{Map: *next}})
			}
		})
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("uccnode: site %d shutting down", *site)
	ovf, mbHigh := rt.MailboxStats()
	dropped, sqHigh := node.QueueStats()
	st := issuer.Snapshot()
	log.Printf("uccnode: site %d backpressure: mailbox NAKs=%d high=%d, send-queue drops=%d high=%d, shed=%d, busy NAKs=%d",
		*site, ovf, mbHigh, dropped, sqHigh, st.Shed, st.BusyNAKs)
	ws := node.Wire().Snapshot()
	log.Printf("uccnode: site %d wire: out %d msgs/%d B (%.1f B/msg), in %d msgs/%d B (%.1f B/msg), conns v3=%d v2-fallback=%d",
		*site, ws.MsgsOut, ws.BytesOut, ws.BytesPerMsgOut(), ws.MsgsIn, ws.BytesIn, ws.BytesPerMsgIn(), ws.V3Conns, ws.V2Fallbacks)
	if quorum != nil {
		qc := mgr.Snapshot()
		log.Printf("uccnode: site %d repl: pulls served=%d, applied=%d, dup-skipped=%d, snapshot resets=%d, watermarks=%v",
			*site, qc.ReplPulls, qc.ReplApplied, qc.ReplSkipped, qc.ReplResets, mgr.ReplWatermarks())
	}
	qc := mgr.Snapshot()
	log.Printf("uccnode: site %d placement: epoch=%d, map installs=%d, items gained=%d, wrong-epoch NAKs sent=%d, transfer pulls=%d applied=%d bytes=%d; issuer wrong-epoch NAKs=%d, map updates=%d",
		*site, mgr.CurrentMap().Epoch, qc.MapInstalls, qc.ItemsGained, qc.WrongEpoch,
		qc.TransferPulls, qc.TransferApplied, qc.TransferBytes, st.WrongEpochNAKs, st.MapUpdates)
	node.Close()
	rt.Shutdown()
	if siteLog != nil {
		// Final sync so a graceful shutdown loses nothing (an unclean one
		// falls back to snapshot + synced log prefix).
		if err := siteLog.Flush(); err != nil {
			log.Printf("uccnode: final wal flush: %v", err)
		}
	}
}
