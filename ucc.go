// Package ucc is a from-scratch Go implementation of the unified
// concurrency control algorithm of C. P. Wang and Victor O. K. Li (ICDE
// 1988): a distributed database concurrency control subsystem in which every
// transaction chooses — or is dynamically assigned — its own protocol among
// Two-Phase Locking, Basic Timestamp Ordering, and Precedence Agreement,
// while the system guarantees one conflict-serializable execution across the
// mix.
//
// The package is a facade over the internal engine. A Cluster simulates a
// multi-site distributed database in deterministic virtual time: each site
// hosts a Request Issuer and a Data Queue Manager; items may be replicated
// (read-one/write-all); a coordinator detects 2PL deadlocks; the STL cost
// model (§5 of the paper) drives optional per-transaction protocol
// selection.
//
// Quick start:
//
//	c, _ := ucc.New(ucc.Config{Sites: 3, Items: 64})
//	c.Workload(ucc.Workload{Rate: 25, Duration: 2 * time.Second, Mix: ucc.Mix{TO: 1}})
//	res := c.Run()
//	fmt.Println(res.MeanSystemTime(), res.Serializable())
//
// For a real multi-process deployment over TCP, see cmd/uccnode and
// cmd/uccclient.
package ucc

import (
	"fmt"
	"runtime"
	"time"

	"ucc/internal/cluster"
	"ucc/internal/deadlock"
	"ucc/internal/engine"
	"ucc/internal/metrics"
	"ucc/internal/model"
	"ucc/internal/placement"
	"ucc/internal/qm"
	"ucc/internal/ri"
	"ucc/internal/selector"
	"ucc/internal/workload"
)

// Protocol selects a member concurrency control algorithm.
type Protocol = model.Protocol

// The member protocols of the unified scheme, plus the read-only snapshot
// class layered on top of it.
const (
	TwoPL = model.TwoPL // static two-phase locking (deadlock-prone, FCFS)
	TO    = model.TO    // basic timestamp ordering (restart-prone)
	PA    = model.PA    // precedence agreement (negotiated, restart-free)
	// ROSnapshot runs a pure-read transaction on the snapshot fast path: it
	// reads committed versions at a recent snapshot timestamp straight from
	// the multi-version store — no queueing, no locks, no restarts. A
	// transaction with writes tagged ROSnapshot silently runs under PA.
	ROSnapshot = model.ROSnapshot
)

// ItemID names a logical data item.
type ItemID = model.ItemID

// TxnID identifies a transaction.
type TxnID = model.TxnID

// Config describes a simulated cluster.
type Config struct {
	// Sites is the number of computer sites; each hosts a request issuer
	// and a queue manager (default 3).
	Sites int
	// Items is the number of logical data items (default 64).
	Items int
	// Replicas is the number of physical copies per item, accessed
	// read-one/write-all (default 1).
	Replicas int
	// Placement selects the epoch-0 layout policy: "round-robin" (the
	// default, the historical layout), "range" (contiguous balanced
	// splits), or "hash" (FNV of the item id). Items can move afterwards:
	// AddSite, DrainSite, and MoveItems publish new partition-map epochs
	// and rebalance online.
	Placement string
	// DataSites restricts the initial placement to sites 0..DataSites-1,
	// leaving the rest standby (join them later with AddSite). 0 places
	// data everywhere.
	DataSites int
	// Shards partitions each site's queue manager into this many
	// independent shards (hash of item → shard), each with its own queue
	// table, lock state, and WAL group-commit batch, so conflict-free
	// operations at one site execute in parallel on multi-core hardware
	// (default 1, maximum 256 — engine addresses carry the shard index in
	// one byte, and New returns an error rather than misroute above it).
	// Sharding never changes what commits — only which mailbox serves an
	// item — so any Shards value yields the same serializable executions;
	// EXP-11 measures the wall-clock scaling.
	Shards int
	// InitialValue seeds every item (default 0).
	InitialValue int64
	// Seed makes the whole run reproducible (default 1).
	Seed int64

	// NetDelayMin/Max bound the uniformly jittered one-way network delay
	// (defaults 1ms/3ms). Jitter matters: it is what makes requests arrive
	// out of timestamp order, exercising T/O rejections and PA back-offs.
	NetDelayMin time.Duration
	NetDelayMax time.Duration

	// DeadlockPeriod is the detection probe period for the 2PL member
	// (default 50ms; 0 disables detection).
	DeadlockPeriod time.Duration
	// PAInterval is the back-off interval INT attached to PA transactions
	// (default 2ms).
	PAInterval time.Duration
	// RestartDelay is the base delay before retrying a rejected, victimized,
	// or busy-NAK'd transaction (default 10ms). The delay doubles with every
	// failed attempt (±50% jitter throughout) up to RestartDelayCap.
	RestartDelay time.Duration
	// RestartDelayCap bounds the exponential restart backoff (default 32×
	// RestartDelay). A flat restart delay is a restart storm under
	// contention: every loser of a conflict round retries at the same rate
	// and the round re-collides forever.
	RestartDelayCap time.Duration
	// SemiLocks selects the §4.2 semi-lock enforcement; disabling it falls
	// back to the paper's simpler lock-everything unification (default on).
	DisableSemiLocks bool

	// DisableReadOnlyFastPath demotes every ROSnapshot transaction to a PA
	// read-only transaction that queues and locks like everyone else — the
	// measured baseline of EXP-10 and an operational escape hatch. Default
	// off: read-only transactions tagged (or routed) ROSnapshot use the
	// multi-version snapshot fast path.
	DisableReadOnlyFastPath bool
	// SnapshotStaleness is how far in the past ROSnapshot transactions
	// read (default 15ms). It must exceed the maximum network delay so a
	// snapshot is a consistent cut of committed transactions; larger values
	// trade staleness for safety margin.
	SnapshotStaleness time.Duration

	// DynamicSelection installs the min-STL per-transaction protocol
	// selector (§5.2); transactions' preset protocols are then ignored —
	// except that pure-read transactions are routed to the ROSnapshot fast
	// path (unless DisableReadOnlyFastPath).
	DynamicSelection bool
	// SelectionFallback is used before estimates warm up (default PA).
	SelectionFallback Protocol
	// EscalateRestartsToPA switches a T/O transaction to PA after two
	// rejected attempts (the paper's future-work item §6(4): transactions
	// changing their concurrency control method). PA cannot be rejected, so
	// escalation bounds restart storms.
	EscalateRestartsToPA bool

	// MaxQueueDepth bounds every per-item data queue at every queue manager:
	// a request arriving at a full queue is refused with a BusyMsg NAK (the
	// issuer aborts the attempt and retries under backoff) instead of
	// queueing without bound. 0 (the default) keeps queues unbounded — the
	// paper's failure-free, overload-free model.
	MaxQueueDepth int
	// Admission enables per-site admission control: a token bucket plus an
	// AIMD in-flight window gate every new-transaction start, shedding
	// arrivals beyond capacity (reported per-protocol as Shed) so goodput
	// plateaus near peak instead of latency and memory diverging. EXP-12
	// measures the effect.
	Admission bool
	// AdmissionWindow is the initial in-flight window per site (default 64).
	AdmissionWindow int
	// AdmissionRate, when positive, caps new-transaction starts per site at
	// this many per second (the token bucket; burst = max(16, rate/4)).
	AdmissionRate float64
	// AdmissionTargetLatency, when positive, also treats commits slower than
	// this as congestion (multiplicative window decrease).
	AdmissionTargetLatency time.Duration
	// MaxAttempts caps how many times a rejected, victimized, or busy-NAK'd
	// transaction is restarted; past the cap it is dropped and counted
	// (never silently retried forever). 0 = unlimited, the paper's model.
	MaxAttempts int

	// Durability attaches a write-ahead log + snapshots to every site
	// (deterministic in-memory media) and enables CrashSite/RecoverSite
	// fault injection. Default off — the paper's failure-free model.
	Durability bool
	// QuorumN/W/R, when all set, switch replicated items from
	// read-one/write-all to quorum replication: writes commit on any W of N
	// grants, reads consult R copies and adopt the highest commit stamp, and
	// copies outside a write's quorum converge through WAL log shipping from
	// their peers. Requires Durability (the catch-up plane streams the WAL)
	// and N == Replicas; W+R > N and 2W > N are enforced. A single dead
	// site of a 3-way quorum is masked: commits continue on the surviving
	// pair and the dead site catches up after recovery.
	QuorumN, QuorumW, QuorumR int
	// ReplPullPeriod is the catch-up pull period (default 150ms).
	ReplPullPeriod time.Duration
	// GroupCommitWindow, with Durability, defers WAL syncs by up to this
	// window so concurrently committing transactions share one sync. Leave
	// it 0 (sync at every commit batch) when also injecting CrashSite: a
	// crash inside a nonzero window loses writes whose effects other sites
	// already observed, so the recovered site can diverge from its
	// replicas (there is no commit-ack gating effects on the sync).
	GroupCommitWindow time.Duration
}

func (c *Config) fill() {
	if c.Sites <= 0 {
		c.Sites = 3
	}
	if c.Items <= 0 {
		c.Items = 64
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NetDelayMin <= 0 {
		c.NetDelayMin = time.Millisecond
	}
	if c.NetDelayMax < c.NetDelayMin {
		c.NetDelayMax = 3 * time.Millisecond
	}
	if c.DeadlockPeriod == 0 {
		c.DeadlockPeriod = 50 * time.Millisecond
	}
	if c.PAInterval <= 0 {
		c.PAInterval = 2 * time.Millisecond
	}
	if c.RestartDelay <= 0 {
		c.RestartDelay = 10 * time.Millisecond
	}
	if c.SnapshotStaleness <= 0 {
		c.SnapshotStaleness = 15 * time.Millisecond
	}
}

// Mix is a protocol share vector for generated workloads. ReadOnly is the
// share of pure-read snapshot transactions (the ROSnapshot class); the other
// three split the read-write remainder.
type Mix struct {
	TwoPL, TO, PA, ReadOnly float64
}

// AllWrites is the ReadFrac sentinel for a 0% read (all-write) workload.
// The zero value of Workload.ReadFrac selects the default of 0.6, so "no
// reads" needs an explicit marker; any negative value works.
const AllWrites = -1.0

// Workload describes one site-spanning generated workload.
type Workload struct {
	// Rate is the Poisson arrival rate per site (txn/s; default 20).
	// Ignored when Concurrency is set.
	Rate float64
	// Concurrency switches to closed-loop load: this many transactions are
	// kept in flight per site, each completion launching the next. Use it
	// to measure capacity — an open-loop run that drains to quiescence
	// commits every arrival eventually, whatever the path costs.
	Concurrency int
	// Duration is how long arrivals continue (default 2s).
	Duration time.Duration
	// Size is the number of items per transaction (default 4).
	Size int
	// ReadFrac is the probability an accessed item is read. The zero value
	// selects the default of 0.6; pass AllWrites (or any negative value)
	// for an all-write workload, which a literal 0 cannot express.
	ReadFrac float64
	// Mix sets the protocol shares (default all-PA). Ignored when the
	// cluster uses DynamicSelection — except Mix.ReadOnly, which still
	// shapes generation (the selector routes pure reads to the fast path).
	Mix Mix
	// ReadOnlySize is the item count of read-only snapshot transactions
	// (default: Size); analytic scans are typically larger than updates.
	ReadOnlySize int
	// Compute is the local computing phase duration (default 1ms).
	Compute time.Duration
	// Hotspot, if >0, sends 80% of accesses to the first Hotspot items.
	Hotspot int
}

// Cluster is a wired simulated system.
type Cluster struct {
	cfg   Config
	inner *cluster.Cluster
	dyn   *selector.Dynamic
	wl    *Workload
	seq   uint64
	ran   bool
}

// New builds a cluster. Shards above 256 are rejected (by the cluster
// layer's validation, surfaced here): engine addresses carry the shard index
// in one byte, so a larger count would silently alias shard mailboxes and
// misroute traffic.
func New(cfg Config) (*Cluster, error) {
	cfg.fill()
	policy, err := placement.ParsePolicy(cfg.Placement)
	if err != nil {
		return nil, fmt.Errorf("ucc: %w", err)
	}
	var dyn *selector.Dynamic
	var choose ri.ChooseFunc
	if cfg.DynamicSelection {
		dyn = selector.NewDynamic(selector.Options{
			Fallback:         cfg.SelectionFallback,
			ReadOnlyFastPath: !cfg.DisableReadOnlyFastPath,
		})
		choose = dyn.Choose
	}
	var durability *cluster.Durability
	if cfg.Durability {
		durability = &cluster.Durability{
			SnapshotEvery:     500,
			GroupCommitMicros: cfg.GroupCommitWindow.Microseconds(),
		}
	}
	var quorum *model.Quorum
	if cfg.QuorumN != 0 || cfg.QuorumW != 0 || cfg.QuorumR != 0 {
		quorum = &model.Quorum{N: cfg.QuorumN, W: cfg.QuorumW, R: cfg.QuorumR}
	}
	inner, err := cluster.NewSim(cluster.Config{
		Sites:            cfg.Sites,
		Items:            cfg.Items,
		Replicas:         cfg.Replicas,
		Placement:        policy,
		DataSites:        cfg.DataSites,
		Shards:           cfg.Shards,
		InitialValue:     cfg.InitialValue,
		Seed:             cfg.Seed,
		Record:           true,
		Durability:       durability,
		Quorum:           quorum,
		ReplPeriodMicros: cfg.ReplPullPeriod.Microseconds(),
		Latency: engine.UniformLatency{
			MinMicros:   cfg.NetDelayMin.Microseconds(),
			MaxMicros:   cfg.NetDelayMax.Microseconds(),
			LocalMicros: 50,
		},
		QM: qm.Options{
			DisableSemiLocks:  cfg.DisableSemiLocks,
			StatsPeriodMicros: 100_000,
			MaxQueueDepth:     cfg.MaxQueueDepth,
		},
		RI: ri.Options{
			PAIntervalMicros:        model.Timestamp(cfg.PAInterval.Microseconds()),
			RestartDelayMicros:      cfg.RestartDelay.Microseconds(),
			RestartDelayCapMicros:   cfg.RestartDelayCap.Microseconds(),
			DefaultComputeMicros:    1000,
			SwitchOnRestart:         escalation(cfg.EscalateRestartsToPA),
			SnapshotStalenessMicros: cfg.SnapshotStaleness.Microseconds(),
			DisableROFastPath:       cfg.DisableReadOnlyFastPath,
			MaxAttempts:             cfg.MaxAttempts,
			Admission: ri.AdmissionOptions{
				Enabled:             cfg.Admission,
				InitialWindow:       cfg.AdmissionWindow,
				TokensPerSec:        cfg.AdmissionRate,
				TargetLatencyMicros: cfg.AdmissionTargetLatency.Microseconds(),
			},
		},
		Detector: deadlock.Options{
			PeriodMicros:  cfg.DeadlockPeriod.Microseconds(),
			PersistRounds: 2,
		},
		Collector: metrics.CollectorOptions{EstimatePeriodMicros: 100_000},
		Choose:    choose,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{cfg: cfg, inner: inner, dyn: dyn}, nil
}

// Workload attaches a generated workload to every site. Call before Run.
func (c *Cluster) Workload(w Workload) error {
	if c.ran {
		return fmt.Errorf("ucc: cluster already ran")
	}
	if w.Rate <= 0 {
		w.Rate = 20
	}
	if w.Duration <= 0 {
		w.Duration = 2 * time.Second
	}
	if w.Size <= 0 {
		w.Size = 4
	}
	if w.ReadFrac < 0 {
		w.ReadFrac = 0 // AllWrites sentinel: a genuine 0% read share
	} else if w.ReadFrac == 0 {
		w.ReadFrac = 0.6 // unset: the documented default
	}
	if w.Mix == (Mix{}) {
		w.Mix = Mix{PA: 1}
	}
	if w.Compute <= 0 {
		w.Compute = time.Millisecond
	}
	c.wl = &w
	spec := workload.Spec{
		ArrivalPerSec: w.Rate,
		ClosedLoop:    w.Concurrency,
		HorizonMicros: w.Duration.Microseconds(),
		Items:         c.cfg.Items,
		Size:          w.Size,
		ROSize:        w.ReadOnlySize,
		ReadFrac:      w.ReadFrac,
		Share2PL:      w.Mix.TwoPL,
		ShareTO:       w.Mix.TO,
		SharePA:       w.Mix.PA,
		ShareRO:       w.Mix.ReadOnly,
		ComputeMicros: w.Compute.Microseconds(),
	}
	if w.Hotspot > 0 {
		spec.Access = workload.AccessHotspot
		spec.HotItems = w.Hotspot
		spec.HotFrac = 0.8
	}
	for s := 0; s < c.cfg.Sites; s++ {
		if err := c.inner.AddDriver(model.SiteID(s), spec); err != nil {
			return err
		}
	}
	return nil
}

// Submit injects one hand-built transaction (see NewTxn). Submitted
// transactions run alongside any attached workload when Run is called.
func (c *Cluster) Submit(t *Txn) {
	c.inner.Submit(t.inner)
}

// CrashSite schedules a site crash `at` into the simulated run: the site's
// volatile store and any unsynced WAL tail are destroyed, and the site
// defers all traffic until RecoverSite. Requires Config.Durability. Call
// before Run.
func (c *Cluster) CrashSite(site int, at time.Duration) {
	c.inner.CrashSite(model.SiteID(site), at.Microseconds())
}

// RecoverSite schedules the site's recovery `at` into the simulated run:
// its partition is rebuilt from the durable snapshot plus WAL replay, then
// traffic deferred during the outage is processed in order. Call before Run.
func (c *Cluster) RecoverSite(site int, at time.Duration) {
	c.inner.RecoverSite(model.SiteID(site), at.Microseconds())
}

// MoveItems schedules an online rebalance `at` into the simulated run: a new
// partition-map epoch making `to` the primary owner of items is published to
// every site, the old owners drain their in-flight transactions and
// snapshot-transfer the item state, and stale routers are corrected by
// wrong-epoch NAKs carrying the new map. Call before Run.
func (c *Cluster) MoveItems(items []ItemID, to int, at time.Duration) error {
	return c.inner.MoveItems(at.Microseconds(), items, model.SiteID(to))
}

// AddSite schedules site's entry into the active placement `at` into the
// simulated run: a new epoch assigns it a share of items, seeded by snapshot
// transfer from the current owners. Pair with Config.DataSites to start the
// site empty. Call before Run.
func (c *Cluster) AddSite(site int, at time.Duration) error {
	return c.inner.AddSite(at.Microseconds(), model.SiteID(site))
}

// DrainSite schedules site's removal from the active placement `at` into the
// simulated run: surviving copies are promoted, replacement copies are
// seeded elsewhere, and the site keeps serving until each item's in-flight
// transactions drain. Call before Run.
func (c *Cluster) DrainSite(site int, at time.Duration) error {
	return c.inner.DrainSite(at.Microseconds(), model.SiteID(site))
}

// SubmitAt injects a transaction that arrives `at` into the simulated run
// (Submit arrives at time zero; staggering arrivals gives meaningful system
// times).
func (c *Cluster) SubmitAt(t *Txn, at time.Duration) {
	c.inner.Eng.PostAfter(at.Microseconds(),
		engineRIAddr(t.inner.ID.Site), model.SubmitTxnMsg{Txn: t.inner})
}

// NewTxn builds a transaction issued at the given site.
func (c *Cluster) NewTxn(site int, p Protocol) *Txn {
	c.seq++
	return &Txn{
		cluster: c,
		inner: &model.Txn{
			ID:       model.TxnID{Site: model.SiteID(site), Seq: c.seq},
			Protocol: p,
		},
	}
}

// Run executes everything to quiescence and returns the results.
func (c *Cluster) Run() Result {
	c.ran = true
	horizon := int64(0)
	if c.wl != nil {
		horizon = c.wl.Duration.Microseconds()
	}
	// Mallocs delta across the run feeds Result.AllocsPerCommittedTxn. The
	// counter is process-wide, so concurrent non-cluster work inflates it —
	// acceptable for a facade-level observability number (benchmarks run one
	// cluster at a time).
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res := c.inner.Run(horizon, 2_000_000)
	runtime.ReadMemStats(&after)
	return Result{inner: res, cl: c.inner, dyn: c.dyn, allocs: after.Mallocs - before.Mallocs}
}

// Value returns the current value of an item's primary copy (after Run),
// resolved against the cluster's current partition map — after a rebalance
// that is the new owner. If the primary site is still crashed (CrashSite
// without RecoverSite), the first surviving replica answers instead.
func (c *Cluster) Value(item ItemID) int64 {
	for _, s := range c.inner.CurrentMap().Replicas(item) {
		if st := c.inner.Stores[s]; st.Has(item) {
			v, _ := st.Read(item)
			return v
		}
	}
	panic(fmt.Sprintf("ucc: no live copy of %v (every replica site crashed and unrecovered)", item))
}

// ReplicaValues returns the current value of every live physical copy of
// item, primary first (after Run; replica-divergence checks). Copies on
// sites still crashed at the end of the run are skipped.
func (c *Cluster) ReplicaValues(item ItemID) []int64 {
	return c.inner.ReplicaValues(model.ItemID(item))
}

func engineRIAddr(s model.SiteID) engine.Addr { return engine.RIAddr(s) }

// escalation returns the §6(4) restart-protocol policy: T/O transactions
// switch to PA after two rejected attempts.
func escalation(enabled bool) func(model.Protocol, int) model.Protocol {
	if !enabled {
		return nil
	}
	return func(cur model.Protocol, failedAttempts int) model.Protocol {
		if cur == model.TO && failedAttempts >= 2 {
			return model.PA
		}
		return cur
	}
}

// Txn is a fluent transaction builder.
type Txn struct {
	cluster *Cluster
	inner   *model.Txn
}

// Read adds items to the read set.
func (t *Txn) Read(items ...ItemID) *Txn {
	t.inner.ReadSet = append(t.inner.ReadSet, items...)
	return t
}

// Write adds items to the write set (installing pre-image+1 unless a Set or
// Add spec overrides it).
func (t *Txn) Write(items ...ItemID) *Txn {
	t.inner.WriteSet = append(t.inner.WriteSet, items...)
	return t
}

// Set makes the write phase install a constant value for item.
func (t *Txn) Set(item ItemID, value int64) *Txn {
	t.inner.WriteSet = append(t.inner.WriteSet, item)
	t.inner.Specs = append(t.inner.Specs, model.WriteSpec{Item: item, AddConst: value})
	return t
}

// Add makes the write phase install read(source)+delta for item (transfer
// and increment patterns).
func (t *Txn) Add(item ItemID, source ItemID, delta int64) *Txn {
	t.inner.WriteSet = append(t.inner.WriteSet, item)
	t.inner.Specs = append(t.inner.Specs, model.WriteSpec{
		Item: item, UseSource: true, Source: source, AddConst: delta,
	})
	return t
}

// Compute sets the local computing phase duration.
func (t *Txn) Compute(d time.Duration) *Txn {
	t.inner.ComputeMicros = d.Microseconds()
	return t
}

// Class labels the transaction for per-class STL caching.
func (t *Txn) Class(name string) *Txn {
	t.inner.Class = name
	return t
}

// Build normalizes the transaction (dedup, overlap → write set) and returns
// it for Submit.
func (t *Txn) Build() *Txn {
	n := model.NewTxn(t.inner.ID, t.inner.Protocol, t.inner.ReadSet, t.inner.WriteSet, t.inner.ComputeMicros)
	n.Specs = t.inner.Specs
	n.Class = t.inner.Class
	t.inner = n
	return t
}

// ID returns the transaction id.
func (t *Txn) ID() TxnID { return t.inner.ID }
