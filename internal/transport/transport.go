package transport

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ucc/internal/engine"
	"ucc/internal/metrics"
	"ucc/internal/model"
	"ucc/internal/wire"
)

func init() { model.RegisterGob() }

// WireVersion is the first byte a dialer writes on a fresh connection.
// Version 3 is the hand-rolled binary codec (internal/wire): length-prefixed
// frames of explicitly-encoded envelopes, no reflection, pooled buffers.
// Version 2 — pipelined gob streams — remains fully supported in both
// directions for rolling upgrades: a v3 listener speaks gob to a v2 dialer,
// and a v3 dialer falls back to a v2 gob stream when the peer never
// acknowledges v3 (see negotiation below). A reader that sees any other
// version byte closes the connection instead of feeding misframed bytes to a
// decoder.
const WireVersion byte = 3

// WireVersionV2 is the legacy gob-stream version byte (protocol era of the
// batched-wire PR). Spoken, never preferred.
const WireVersionV2 byte = 2

// wireAckV3 is the single byte a v3-capable listener writes back after
// reading a v3 version byte. Its absence is how a dialer detects an older
// peer: a v2 listener reads the unknown version byte and closes the
// connection, so the dialer's ack read fails immediately and it redials
// speaking v2. An ack is only ever written for v3 (v2 dialers never read
// their outbound connections, so writing to them would be wasted but
// harmless — it still isn't done, to keep the v2 byte stream exactly as the
// old implementation produced it).
const wireAckV3 byte = 0xC3

// negotiateTimeout bounds the dialer's wait for the v3 ack. A live v3 peer
// acks in one RTT and a v2 peer closes in one RTT, so this only fires
// against a peer that accepted the connection and then stalled — treated as
// an old peer, which is safe either way: a v3 listener speaks v2 fine.
var negotiateTimeout = 3 * time.Second

// reprobeInterval bounds how long a fallback (gob) connection may live
// before the writer voluntarily retires it between batches to re-negotiate.
// Version choice is normally re-probed per dial, but a long-lived fallback
// conn under steady traffic never redials — so a v3 peer that merely
// STALLED through negotiation (startup storm, CPU starvation) would
// otherwise pin the link to the ~16x-slower legacy codec forever. Old peers
// pay one extra probe dial per interval, which is noise.
var reprobeInterval = 5 * time.Minute

// defaultBatchBytes is the mid-batch flush threshold: while draining a large
// backlog the writer flushes whenever this much is buffered, bounding memory
// and keeping the pipe busy instead of building one giant frame.
const defaultBatchBytes = 64 << 10

// WireEnvelope is the on-the-wire form of engine.Envelope for the legacy v2
// gob stream. The v3 path encodes engine.Envelope directly through
// internal/wire and never touches this struct, but its shape (and the gob
// registrations in model.RegisterGob) must stay byte-compatible with old
// builds for as long as v2 fallback is supported.
type WireEnvelope struct {
	FromKind  uint8
	FromID    int32
	FromShard uint8
	ToKind    uint8
	ToID      int32
	ToShard   uint8
	Msg       model.Message
}

func toWire(e engine.Envelope) WireEnvelope {
	return WireEnvelope{
		FromKind: uint8(e.From.Kind), FromID: int32(e.From.ID), FromShard: e.From.Shard,
		ToKind: uint8(e.To.Kind), ToID: int32(e.To.ID), ToShard: e.To.Shard,
		Msg: e.Msg,
	}
}

func fromWire(w WireEnvelope) engine.Envelope {
	return engine.Envelope{
		From: engine.Addr{Kind: engine.ActorKind(w.FromKind), ID: model.SiteID(w.FromID), Shard: w.FromShard},
		To:   engine.Addr{Kind: engine.ActorKind(w.ToKind), ID: model.SiteID(w.ToID), Shard: w.ToShard},
		Msg:  w.Msg,
	}
}

// Topology statically assigns every actor address to a named peer.
type Topology struct {
	// Peers maps peer name → TCP address.
	Peers map[string]string
	// Assign returns the peer name hosting an actor address.
	Assign func(engine.Addr) string
}

// ParsePeerList splits a comma-separated site address list (index = site
// id): at least one entry, none empty, whitespace trimmed.
func ParsePeerList(csv string) ([]string, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, fmt.Errorf("transport: peer list is empty")
	}
	parts := strings.Split(csv, ",")
	out := make([]string, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("transport: peer list entry %d is empty", i)
		}
		out[i] = p
	}
	return out, nil
}

// StandardTopology builds the topology cmd/uccnode and cmd/uccclient share:
// site i's actors on peer "site<i>", the collector (plus drivers and
// anything unknown) on "client". clientAddr may be empty for a node that
// has not yet learned the client's address (the client connects inbound).
func StandardTopology(peers []string, clientAddr string) Topology {
	topo := Topology{
		Peers:  map[string]string{},
		Assign: StandardAssign("client"),
	}
	for i, addr := range peers {
		topo.Peers[fmt.Sprintf("site%d", i)] = addr
	}
	if clientAddr != "" {
		topo.Peers["client"] = clientAddr
	}
	return topo
}

// StandardAssign places QM(i)/RI(i)/Driver(i) on peer "site<i>" (every QM
// shard of a site lives with the site), the deadlock detector on "site0",
// and the collector (plus anything unknown) on clientPeer — the layout
// cmd/uccnode and cmd/uccclient use.
func StandardAssign(clientPeer string) func(engine.Addr) string {
	return func(a engine.Addr) string {
		switch a.Kind {
		case engine.KindQM, engine.KindRI:
			return fmt.Sprintf("site%d", a.ID)
		case engine.KindDetector:
			return "site0"
		default:
			return clientPeer
		}
	}
}

// Node connects one process's runtime to the topology.
//
// Outbound wire path: envelopes for a peer are enqueued on that peer's
// outbox and drained by one writer goroutine, which encodes every queued
// envelope through a persistent pipelined gob encoder into a buffered
// writer and flushes once per drained batch (or at BatchBytes mid-batch) —
// one framed write instead of one syscall-sized write per envelope. Under
// load the batch size grows naturally; when idle, a lone envelope flushes
// immediately, adding no latency.
type Node struct {
	self       string
	topo       Topology
	rt         *engine.Runtime
	batchBytes int
	// batchDelay, when positive, makes the writer linger once per batch for
	// this long before flushing, trading latency for bigger coalesced
	// writes. Zero (the default) flushes as soon as the outbox drains.
	batchDelay time.Duration
	// preferVersion is the wire version outbound connections open with
	// (default WireVersion). Tests and benchmarks set WireVersionV2 to pin a
	// connection to the legacy gob stream without a legacy peer.
	preferVersion byte

	mu       sync.Mutex
	senders  map[string]*peerSender
	outbound map[net.Conn]bool
	inbound  map[net.Conn]bool
	ln       net.Listener
	closed   bool
	wg       sync.WaitGroup

	// sendQueueCap bounds each peer outbox (0 = unbounded): when an enqueue
	// would exceed it, the OLDEST queued sheddable envelope is dropped to
	// make room and its BusyMsg NAK is injected back to the local sender —
	// the same refusal the engine delivers for a full mailbox, so the
	// issuer's attempt aborts (releasing its requests elsewhere) instead of
	// stranding in negotiation. Oldest-first is the right policy for this
	// protocol: a stale request is re-sent by its issuer's restart machinery
	// anyway, while the newest traffic is most likely to still matter. Only
	// sheddable messages
	// (model.Sheddable — new-work openers) are ever evicted, mirroring the
	// engine's mailbox policy: dropping a release or grant to a live-but-slow
	// peer would strand its locks forever, so completer traffic rides past
	// the cap (it is protocol-bounded by the in-flight work the openers
	// admitted). The cap counts only the outbox — a batch the writer has
	// already taken (and may be retrying across a reconnect) is in flight,
	// not queued, so a reconnect cannot double-shrink the budget or lose
	// accounting.
	sendQueueCap int

	// Batching observability (tests, diagnostics).
	sentEnvelopes atomic.Uint64
	flushes       atomic.Uint64
	// wireStats counts codec-level traffic: envelopes/bytes each way and
	// how outbound connections negotiated (v3 vs v2 fallback).
	wireStats metrics.WireCounters
	// droppedSends counts every envelope the transport discarded — cap
	// evictions plus whole batches dropped on an unreachable peer;
	// queueHigh is the deepest any peer outbox has ever been.
	droppedSends atomic.Uint64
	queueHigh    atomic.Int64
}

// peerSender owns the outbox and the single writer goroutine for one peer.
// The writer is the only goroutine that ever touches the peer's connection
// or encoder, which is what makes reconnection safe: a retired connection's
// half-written frame dies with its socket and its encoder; the replacement
// gets a fresh socket, a fresh buffered writer, and a fresh gob stream, so
// no stale bytes can interleave with the new connection's first batch.
type peerSender struct {
	n    *Node
	peer string

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []engine.Envelope
	closed bool
	// shedHint is the index where the eviction scan for the oldest sheddable
	// envelope resumes. Everything before it is known non-sheddable: completers
	// are never evicted and only leave the queue when the writer takes the
	// whole backlog (which resets the hint), so the hint only moves forward
	// between takes and eviction is O(1) amortized instead of an O(n) scan per
	// enqueue at the cap.
	shedHint int
}

// NewNode wires rt's uplink into the topology and starts listening on
// listenAddr (empty string = outbound-only peer, e.g. a client that other
// peers never dial).
func NewNode(rt *engine.Runtime, self, listenAddr string, topo Topology) (*Node, error) {
	if topo.Assign == nil {
		return nil, fmt.Errorf("transport: topology needs an Assign function")
	}
	n := &Node{
		self: self, topo: topo, rt: rt,
		batchBytes:    defaultBatchBytes,
		preferVersion: WireVersion,
		senders:       map[string]*peerSender{},
		outbound:      map[net.Conn]bool{},
		inbound:       map[net.Conn]bool{},
	}
	rt.SetUplink(n.forward)
	if listenAddr != "" {
		ln, err := net.Listen("tcp", listenAddr)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
		}
		n.ln = ln
		n.wg.Add(1)
		go n.acceptLoop()
	}
	return n, nil
}

// SetBatching overrides the outbound batching knobs: flushBytes is the
// mid-batch flush threshold (≤0 keeps the default), delay an optional linger
// before each flush. Call before traffic flows.
func (n *Node) SetBatching(flushBytes int, delay time.Duration) {
	if flushBytes > 0 {
		n.batchBytes = flushBytes
	}
	n.batchDelay = delay
}

// BatchStats reports (envelopes sent over the wire, flushes performed). The
// ratio is the coalescing factor; envelopes/flushes = 1 means no batching
// happened (idle traffic), larger means the pipelined encoder amortized
// syscalls across that many envelopes.
func (n *Node) BatchStats() (envelopes, flushes uint64) {
	return n.sentEnvelopes.Load(), n.flushes.Load()
}

// Wire exposes the codec-level counters: envelopes and bytes each way, plus
// how outbound connections negotiated (v3 binary vs v2 gob fallback).
func (n *Node) Wire() *metrics.WireCounters { return &n.wireStats }

// SetSendQueueCap bounds every peer outbox to cap envelopes; an enqueue at
// the cap drops the oldest queued sheddable envelope to make room (counted
// in QueueStats) and NAKs it back to the local sender with its BusyMsg, so
// the issuing attempt aborts instead of waiting forever on a reply that
// will never come. Completion traffic is never evicted and may ride past
// the cap. Zero (the default) keeps outboxes unbounded. Call before traffic
// flows.
func (n *Node) SetSendQueueCap(cap int) {
	n.mu.Lock()
	n.sendQueueCap = cap
	n.mu.Unlock()
}

// QueueStats reports (envelopes the transport discarded — send-queue-cap
// evictions plus batches dropped on an unreachable peer — and the deepest
// any peer outbox has ever been). With a cap configured, sheddable traffic
// can never push the high-water mark past it — including while a writer is
// stuck dialing a dead peer or retrying a batch across a reconnect, the
// exact regimes where unbounded outboxes used to melt the node; only
// protocol-completion messages (never evicted by design) can exceed it, by
// the protocol-bounded amount of work in flight.
func (n *Node) QueueStats() (dropped uint64, highWater int) {
	return n.droppedSends.Load(), int(n.queueHigh.Load())
}

// Addr returns the bound listen address (tests pass ":0").
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			c.Close()
			return
		}
		n.inbound[c] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(c)
	}
}

// readLoop serves one inbound connection. The first byte selects the
// protocol era: v3 acks and reads binary frames; v2 reads the legacy gob
// stream (an old dialer never learns the listener upgraded — that is the
// point); anything else is dropped. Both eras feed the same Inject path, so
// the rest of the node cannot tell which codec a message arrived through.
func (n *Node) readLoop(c net.Conn) {
	defer n.wg.Done()
	defer func() {
		c.Close()
		n.mu.Lock()
		delete(n.inbound, c)
		n.mu.Unlock()
	}()
	// The version byte is read raw, before any bufio exists: the v2 branch
	// must arm its byte counter before the first buffered fill, or a short
	// stream prefetched alongside the version byte would go uncounted.
	var vb [1]byte
	if _, err := io.ReadFull(c, vb[:]); err != nil {
		return
	}
	cr := &countingReader{r: c}
	br := bufio.NewReader(cr)
	switch vb[0] {
	case WireVersion:
		// Ack v3 so the dialer knows not to fall back (an older listener
		// would have closed the connection instead of answering).
		if _, err := c.Write([]byte{wireAckV3}); err != nil {
			return
		}
		rd := wire.NewReader(br)
		defer rd.Release()
		for {
			// BytesIn counts decoded frame bytes — the frame layer, matching
			// BytesOut on the sending side — not raw socket reads, which
			// would include read-ahead for frames never decoded.
			env, frameBytes, err := rd.ReadEnvelope()
			if errors.Is(err, model.ErrWireUnknownTag) {
				// A message type appended by a NEWER build: the frame was
				// fully consumed (length-prefixed for exactly this reason),
				// so skip it and keep the stream — severing would drop the
				// whole batch around it and melt a mixed-version v3 fleet
				// into a redial loop during rolling upgrades. This node
				// couldn't have processed the message anyway. Skipped frames
				// count only in UnknownIn — adding their bytes to BytesIn
				// with no MsgsIn would skew B/msg.
				n.wireStats.UnknownIn.Add(1)
				continue
			}
			if err != nil {
				return // EOF, torn frame, or corrupt input: drop the conn
			}
			n.wireStats.BytesIn.Add(uint64(frameBytes))
			n.wireStats.MsgsIn.Add(1)
			//ucclint:allow postnotinject -- terminal inbound delivery: this node is the envelope's destination; Post would re-route through the topology
			n.rt.Inject(env)
		}
	case WireVersionV2:
		// The legacy gob stream has no frame sizes; count at the socket
		// layer instead (approximate: includes gob's type dictionaries).
		cr.n = &n.wireStats.BytesIn
		dec := gob.NewDecoder(br)
		for {
			var w WireEnvelope
			if err := dec.Decode(&w); err != nil {
				return
			}
			n.wireStats.MsgsIn.Add(1)
			//ucclint:allow postnotinject -- terminal inbound delivery on the legacy stream: same argument as the v3 read loop above
			n.rt.Inject(fromWire(w))
		}
	default:
		return // wrong protocol era (or a port scanner); drop the conn
	}
}

// countingReader counts bytes as they leave the kernel for the decoder —
// while n is nil, reads pass through uncounted (the v3 path counts decoded
// frames instead; only the read loop's own goroutine ever sets n).
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 && c.n != nil {
		c.n.Add(uint64(n))
	}
	return n, err
}

// countingWriter counts bytes as the buffered writer flushes them toward the
// kernel.
type countingWriter struct {
	w io.Writer
	n *atomic.Uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if n > 0 {
		c.n.Add(uint64(n))
	}
	return n, err
}

// forward routes an envelope produced by the local runtime: local
// destinations short-circuit into the runtime; remote ones enqueue on the
// destination peer's outbox for its writer goroutine to batch onto the wire.
func (n *Node) forward(env engine.Envelope) {
	peer := n.topo.Assign(env.To)
	if peer == n.self {
		//ucclint:allow postnotinject -- forward IS Post's routing backend; the local short-circuit must Inject or it would recurse
		n.rt.Inject(env)
		return
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	ps := n.senders[peer]
	if ps == nil {
		ps = &peerSender{n: n, peer: peer}
		ps.cond = sync.NewCond(&ps.mu)
		n.senders[peer] = ps
		n.wg.Add(1)
		go ps.run()
	}
	cap := n.sendQueueCap
	n.mu.Unlock()

	ps.mu.Lock()
	var nak engine.Envelope
	haveNak := false
	if !ps.closed {
		if cap > 0 && len(ps.queue) >= cap {
			// Evict the oldest SHEDDABLE envelope (in place, so the backing
			// array is reused), resuming the scan at shedHint — everything
			// before it is completers, which never leave except by a whole-
			// queue take. If the backlog is all completers, grow past the cap
			// instead — the bound is hard for openers, soft for completion
			// traffic whose loss would wedge the protocol.
			for i := ps.shedHint; i < len(ps.queue); i++ {
				if b, ok := busyNAK(ps.queue[i]); ok {
					nak = b
					haveNak = true
					copy(ps.queue[i:], ps.queue[i+1:])
					ps.queue = ps.queue[:len(ps.queue)-1]
					n.droppedSends.Add(1)
					ps.shedHint = i
					break
				}
				ps.shedHint = i + 1
			}
		}
		ps.queue = append(ps.queue, env)
		for d := int64(len(ps.queue)); ; {
			prev := n.queueHigh.Load()
			if d <= prev || n.queueHigh.CompareAndSwap(prev, d) {
				break
			}
		}
		ps.cond.Signal()
	}
	ps.mu.Unlock()
	if haveNak {
		// NAK the evicted envelope back to its (local) sender, exactly as the
		// engine NAKs a sheddable refused at a full mailbox (Runtime.nak):
		// silence here would strand the issuer's attempt in negotiation
		// forever — its already-admitted requests at other sites would hold
		// queue entries with no wait-cycle for the deadlock detector to break.
		// The BusyMsg is not itself sheddable, so Inject always delivers it.
		//ucclint:allow postnotinject -- NAK to the evicted envelope's local sender: busyNAK only produces locally-addressed envelopes
		n.rt.Inject(nak)
	}
}

// take blocks until the outbox is non-empty (or the sender is closed) and
// returns the whole backlog.
func (ps *peerSender) take() ([]engine.Envelope, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for len(ps.queue) == 0 && !ps.closed {
		ps.cond.Wait()
	}
	if len(ps.queue) == 0 {
		return nil, false // closed and drained
	}
	batch := ps.queue
	ps.queue = nil
	ps.shedHint = 0
	return batch, true
}

// tryTake returns any backlog without blocking (batch growth between
// encoding and flushing).
func (ps *peerSender) tryTake() []engine.Envelope {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	batch := ps.queue
	ps.queue = nil
	ps.shedHint = 0
	return batch
}

// conn bundles the per-connection encoding state. It is rebuilt from scratch
// on every (re)dial — see peerSender for why reuse would corrupt the stream.
// Exactly one of (v3, enc) is non-nil: the codec this connection negotiated.
type peerConn struct {
	c   net.Conn
	bw  *bufio.Writer
	v3  *wire.Writer // wire v3 framed binary
	enc *gob.Encoder // legacy v2 gob fallback
	// reprobeAt, set only on fallback connections, is when the writer
	// retires this conn between batches to re-negotiate (see
	// reprobeInterval). Zero on v3 and pinned-v2 connections.
	reprobeAt time.Time
}

// connect dials the peer and negotiates the wire version. The dialer writes
// its preferred version byte (3) raw on the socket and waits briefly for the
// listener's ack byte:
//
//   - ack arrives  → the peer is v3-capable; speak binary frames.
//   - the peer closes (or never answers) → it is an older build whose read
//     loop rejected the unknown version byte; redial and speak the v2 gob
//     stream it expects. The fallback is re-probed on every dial, so a peer
//     that restarts upgraded is picked up at the next reconnect.
//
// A mistaken fallback (slow ack) is safe: v3 listeners keep the full v2 read
// path. The close-detection drain goroutine starts only after negotiation —
// the ack is the one byte a peer ever sends on a dialer's connection, and
// the negotiation read must be the one to consume it.
func (ps *peerSender) connect() (*peerConn, error) {
	n := ps.n
	fellBack := false
	if n.preferVersion != WireVersionV2 {
		c, err := n.dialRaw(ps.peer)
		if err != nil {
			return nil, err
		}
		if _, err := c.Write([]byte{WireVersion}); err != nil {
			n.unregister(c)
			return nil, err
		}
		var ack [1]byte
		c.SetReadDeadline(time.Now().Add(negotiateTimeout))
		_, ackErr := io.ReadFull(c, ack[:])
		c.SetReadDeadline(time.Time{})
		if ackErr == nil && ack[0] == wireAckV3 {
			n.startDrain(c)
			// No counting writer: v3 BytesOut is counted per frame on batch
			// success (writeBatch), matching the receiver's frame-layer
			// count — socket-layer counting would re-count a batch retried
			// across a reconnect after a mid-batch flush.
			bw := bufio.NewWriterSize(c, n.batchBytes)
			n.wireStats.V3Conns.Add(1)
			return &peerConn{c: c, bw: bw, v3: wire.NewWriter(bw)}, nil
		}
		// No ack: an older peer closed on the v3 byte. Redial speaking v2.
		n.unregister(c)
		fellBack = true
	}
	c2, err := n.dialRaw(ps.peer)
	if err != nil {
		return nil, err
	}
	if _, err := c2.Write([]byte{WireVersionV2}); err != nil {
		n.unregister(c2)
		return nil, err
	}
	n.startDrain(c2)
	// The gob stream has no frames, so v2 bytes are counted at the socket
	// layer (approximate, and may re-count a retried batch — the stream
	// being measured is the legacy cost).
	bw := bufio.NewWriterSize(&countingWriter{w: c2, n: &n.wireStats.BytesOut}, n.batchBytes)
	pc := &peerConn{c: c2, bw: bw, enc: gob.NewEncoder(bw)}
	if fellBack {
		// Only a real failed negotiation counts: a caller that PINNED v2
		// (preferVersion knob) never fell back, and the counter's meaning —
		// "old peers still in the fleet" — must survive the knob. Fallback
		// conns also carry a re-probe deadline so a stalled-but-v3 peer is
		// not pinned to the legacy codec for the connection's lifetime.
		n.wireStats.V2Fallbacks.Add(1)
		pc.reprobeAt = time.Now().Add(reprobeInterval)
	}
	return pc, nil
}

// run is the writer loop: take the backlog, encode it all, flush once.
// A send that fails on a stale connection (the peer crashed and restarted
// since the dial) is retried once on a fresh dial: without retransmission in
// the protocol, a single lost request would leave its transaction hung
// holding locks for the rest of the run. A peer that is genuinely down still
// drops the batch — the protocol tolerates that as a crashed site — but the
// batch's sheddable envelopes are NAK'd back to their local senders first
// (nakBatch): a silently dropped RequestMsg would strand its attempt in
// negotiation forever, the same wedge the send-queue cap's eviction NAK
// closes. A batch that was partially received before its connection died is
// re-sent whole, so a reconnect may duplicate envelopes; the protocol's
// attempt tagging absorbs duplicates (queue managers drop stale re-requests
// defensively, and supersede a resident entry when a newer attempt's request
// arrives — which also retires any entry a NAK'd-but-partially-delivered
// request left behind once its restart re-requests the copy).
func (ps *peerSender) run() {
	defer ps.n.wg.Done()
	var pc *peerConn
	retire := func() {
		if pc != nil {
			if pc.v3 != nil {
				pc.v3.Release() // scratch buffer back to the codec pool
			}
			pc.c.Close()
			ps.n.mu.Lock()
			delete(ps.n.outbound, pc.c)
			ps.n.mu.Unlock()
			pc = nil
		}
	}
	defer retire()
	for {
		batch, ok := ps.take()
		if !ok {
			return
		}
		if ps.n.batchDelay > 0 {
			// Optional linger: let the batch grow before it is framed. The
			// grown batch is still retried as a unit on a dead connection.
			time.Sleep(ps.n.batchDelay)
			batch = append(batch, ps.tryTake()...)
		}
		sent := false
		for attempt := 0; attempt < 2; attempt++ {
			if pc == nil {
				var err error
				if pc, err = ps.connect(); err != nil {
					break // unreachable peer: drop the batch (NAK'd below)
				}
			}
			var err error
			if batch, err = ps.writeBatch(pc, batch); err == nil {
				sent = true
				break
			}
			// The connection is dead: retire it — along with its encoder and
			// any half-written frame buffered for it — and retry the whole
			// batch exactly once on a fresh dial.
			retire()
		}
		if !sent {
			ps.n.droppedSends.Add(uint64(len(batch)))
			ps.n.nakBatch(batch)
		}
		if sent && pc != nil && !pc.reprobeAt.IsZero() && time.Now().After(pc.reprobeAt) {
			// The fallback conn aged out: retire it at a batch boundary so
			// the next batch redials and re-negotiates — an upgraded (or
			// merely recovered) peer gets its v3 stream back without waiting
			// for an I/O error that steady traffic may never produce.
			retire()
		}
	}
}

// nakBatch answers every sheddable envelope of a dropped batch with its
// BusyMsg NAK to the local sender, exactly as forward does for a cap
// eviction: the peer is unreachable (dead dial, or a write that failed twice)
// and the issuer has no attempt timeout, so silence would strand each
// dropped request's attempt forever while its admitted requests at other
// sites hold queue entries. Completers are dropped without a NAK — that is
// the crashed-site semantics the protocol tolerates, and they have no Busy
// form. The NAKs are best-effort abort triggers: if a request in a
// partially-received batch did reach the peer, the restarted attempt's
// re-request supersedes the resident entry at the queue manager.
func (n *Node) nakBatch(batch []engine.Envelope) {
	for _, env := range batch {
		if nak, ok := busyNAK(env); ok {
			//ucclint:allow postnotinject -- NAK to the dead batch's local sender: busyNAK only produces locally-addressed envelopes
			n.rt.Inject(nak)
		}
	}
}

// busyNAK inverts a sheddable envelope into its BusyMsg NAK toward the
// sender (the same inversion engine.Runtime.nak performs for a refused
// mailbox push); ok is false for non-sheddable messages, which have no Busy
// form and are never refused.
func busyNAK(env engine.Envelope) (engine.Envelope, bool) {
	sh, ok := env.Msg.(model.Sheddable)
	if !ok {
		return engine.Envelope{}, false
	}
	return engine.Envelope{From: env.To, To: env.From, Msg: sh.Busy()}, true
}

// writeBatch encodes one batch through the connection's pipelined encoder
// and flushes once at the end, plus at BatchBytes boundaries so a huge
// backlog cannot buffer unboundedly. Envelopes that arrive while encoding
// simply form the next batch — the writer loop takes them on its next
// iteration, so they are never orphaned by a retry of the current batch.
// Stats are counted only on success, so a retried batch is not
// double-counted and the envelopes/flushes ratio keeps meaning "coalescing
// on the wire" even across reconnects.
// writeBatch returns the batch with permanently-dropped envelopes removed:
// an envelope that failed ENCODING is a property of the envelope, not the
// connection, so it is NAK'd/counted exactly once here and excluded from the
// slice the caller retries (or terminally NAKs via nakBatch) — otherwise a
// batch retry would double-count the drop and inject duplicate NAKs for the
// same attempt. An I/O error, by contrast, returns the (possibly compacted)
// batch for a whole-batch retry on a fresh connection.
func (ps *peerSender) writeBatch(pc *peerConn, batch []engine.Envelope) ([]engine.Envelope, error) {
	flushes := uint64(0)
	frameBytes := uint64(0)
	for i := 0; i < len(batch); {
		env := batch[i]
		if pc.v3 != nil {
			nb, err := pc.v3.WriteEnvelope(env)
			if err != nil {
				var ee *wire.EncodeError
				if errors.As(err, &ee) {
					// Unencodable (no wire tag, oversized frame): drop it and
					// keep the stream alive — a retry would fail identically
					// and melt the writer into a redial loop. Like every other
					// transport drop, a sheddable envelope is NAK'd back to
					// its local sender; silence would strand the issuer's
					// attempt in negotiation forever.
					ps.n.droppedSends.Add(1)
					if nak, ok := busyNAK(env); ok {
						//ucclint:allow postnotinject -- NAK to the unencodable envelope's local sender: busyNAK only produces locally-addressed envelopes
						ps.n.rt.Inject(nak)
					}
					batch = append(batch[:i], batch[i+1:]...)
					continue
				}
				return batch, err
			}
			frameBytes += uint64(nb)
		} else {
			if err := pc.enc.Encode(toWire(env)); err != nil {
				return batch, err
			}
		}
		i++
		if pc.bw.Buffered() >= ps.n.batchBytes {
			flushes++
			if err := pc.bw.Flush(); err != nil {
				return batch, err
			}
		}
	}
	if err := pc.bw.Flush(); err != nil {
		return batch, err
	}
	ps.n.sentEnvelopes.Add(uint64(len(batch)))
	ps.n.wireStats.MsgsOut.Add(uint64(len(batch)))
	// Frame-layer byte count, success-only like MsgsOut, so a batch retried
	// across a reconnect is never double-counted and sender/receiver B/msg
	// agree (the v2 gob path counts at the socket via countingWriter instead).
	ps.n.wireStats.BytesOut.Add(frameBytes)
	ps.n.flushes.Add(flushes + 1)
	return batch, nil
}

// dialRaw opens a fresh connection to peer and registers it for Close()
// teardown, but starts no reader: the caller negotiates the wire version
// first (the negotiation read must be the one that consumes the listener's
// ack byte), then hands the connection to startDrain.
func (n *Node) dialRaw(peer string) (net.Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("transport: node closed")
	}
	addr, ok := n.topo.Peers[peer]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: unknown peer %q", peer)
	}
	c, err := net.DialTimeout("tcp", addr, 3*time.Second)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("transport: node closed")
	}
	n.outbound[c] = true
	n.mu.Unlock()
	return c, nil
}

// unregister closes and forgets a connection that never reached startDrain
// (failed negotiation, failed version-byte write).
func (n *Node) unregister(c net.Conn) {
	c.Close()
	n.mu.Lock()
	delete(n.outbound, c)
	n.mu.Unlock()
}

// startDrain attaches the close-detection reader to a negotiated outbound
// connection. Outbound connections carry no inbound traffic after the
// negotiation ack (each peer sends on its own dials), so a blocked read
// detects the peer closing — crash or restart — the moment it happens.
// Without it, writes into a dead connection keep "succeeding" until the
// kernel surfaces the RST, silently losing every message in between.
func (n *Node) startDrain(c net.Conn) {
	n.wg.Add(1)
	go n.drainLoop(c)
}

// drainLoop blocks reading an outbound connection; EOF/RST closes it so the
// owning writer's next flush fails fast and redials the (possibly
// restarted) peer.
func (n *Node) drainLoop(c net.Conn) {
	defer n.wg.Done()
	buf := make([]byte, 256)
	for {
		if _, err := c.Read(buf); err != nil {
			break
		}
	}
	c.Close()
	n.mu.Lock()
	delete(n.outbound, c)
	n.mu.Unlock()
}

// Close shuts the node down, closing the listener and every outbound and
// inbound connection (read loops block in Decode until their connection
// closes, so inbound sockets must be closed too or Close would hang), and
// waking every writer goroutine so it can drain and exit.
func (n *Node) Close() {
	n.mu.Lock()
	n.closed = true
	if n.ln != nil {
		n.ln.Close()
	}
	senders := make([]*peerSender, 0, len(n.senders))
	for _, ps := range n.senders {
		senders = append(senders, ps)
	}
	for c := range n.outbound {
		c.Close()
	}
	for c := range n.inbound {
		c.Close()
	}
	n.mu.Unlock()
	for _, ps := range senders {
		ps.mu.Lock()
		ps.closed = true
		ps.queue = nil
		ps.cond.Broadcast()
		ps.mu.Unlock()
	}
	n.wg.Wait()
}
