package wal

import "sync"

// GroupCommitter amortizes sync cost across concurrently committing
// transactions. Each committer appends its records first, then calls Commit;
// Commit returns once a sync that began after the call covers those records.
// One caller at a time becomes the leader and performs the sync for everyone
// waiting, so N concurrent commits cost far fewer than N syncs — the classic
// group-commit batching.
type GroupCommitter struct {
	mu   sync.Mutex
	cond *sync.Cond
	sync func() error
	busy bool
	gen  uint64 // completed sync generations
	err  error  // result of the most recent sync

	commits uint64
	syncs   uint64
}

// NewGroupCommitter wraps a sync function (typically SiteLog.flush).
func NewGroupCommitter(syncFn func() error) *GroupCommitter {
	g := &GroupCommitter{sync: syncFn}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Commit blocks until every record appended before the call is durable.
func (g *GroupCommitter) Commit() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.commits++
	// A sync that begins after this point covers our records. One already in
	// flight may have snapshotted the buffer before our append, so it does
	// not count — we then need the generation after it.
	need := g.gen + 1
	if g.busy {
		need = g.gen + 2
	}
	for g.gen < need {
		if g.busy {
			g.cond.Wait()
			continue
		}
		g.busy = true
		g.mu.Unlock()
		err := g.sync()
		g.mu.Lock()
		g.busy = false
		g.gen++
		g.syncs++
		g.err = err
		g.cond.Broadcast()
	}
	return g.err
}

// Stats returns cumulative (commits, syncs). syncs ≤ commits; the gap is
// the batching win.
func (g *GroupCommitter) Stats() (commits, syncs uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.commits, g.syncs
}
