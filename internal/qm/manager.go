package qm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ucc/internal/engine"
	"ucc/internal/history"
	"ucc/internal/model"
	"ucc/internal/repl"
	"ucc/internal/storage"
)

// Options configure a queue-manager site.
type Options struct {
	// Shards partitions the site's queue manager into this many independent
	// shards (hash of data item → shard, model.ShardOfItem). Each shard owns
	// its slice of the queue tables, its own lock state, and its own
	// group-commit batch, and is addressable as its own actor
	// (engine.QMShardAddr) — so on the real-time runtime, conflict-free
	// operations at one site execute in parallel. Zero or one keeps the
	// pre-sharding single-partition behaviour.
	Shards int
	// DisableSemiLocks falls back from the §4.2 semi-lock enforcement (the
	// paper's contribution, the zero-value default) to the simpler "lock
	// everything" unified enforcement (ablation ABL-1). Inverted so the
	// zero value of Options selects the paper's protocol.
	DisableSemiLocks bool
	// StatsPeriodMicros, when positive, makes the manager push cumulative
	// per-item grant counters to the collector on this period.
	StatsPeriodMicros int64
	// MaxQueueDepth bounds every per-item data queue: a RequestMsg arriving
	// when the item's queue already holds this many entries is NAK'd with
	// model.BusyMsg instead of admitted, so past saturation the queues stop
	// growing and the issuers' admission controllers see the congestion
	// signal. Zero (the default) keeps queues unbounded, the paper's model.
	// Re-requests by transactions already resident (PA re-insertion, attempt
	// replacement) are never NAK'd — they do not grow the queue.
	MaxQueueDepth int
	// GroupCommitMicros, when positive and a Durable is attached, defers
	// WAL syncs by up to this window so writes implemented by concurrently
	// committing transactions share one sync (group commit). Zero syncs a
	// write immediately after it is implemented, before any grant exposing
	// it is sent — the write-ahead ordering a crash cannot violate. The
	// window trades that guarantee for fewer syncs: writes inside an
	// unexpired window are lost by a crash even though their effects may
	// already have been observed elsewhere. Each shard defers its own batch;
	// the per-site commit sequencer coalesces the expiring windows.
	GroupCommitMicros int64
	// InitialValue seeds copies this site gains at a map install before
	// their transfer stream arrives (matching cluster.Config.InitialValue,
	// so an item the old owner never wrote transfers as a no-op).
	InitialValue int64
}

// DefaultOptions returns the production configuration.
func DefaultOptions() Options {
	return Options{}
}

// Counters aggregate one site's protocol events (monotone).
type Counters struct {
	Requests   uint64
	Grants     uint64
	PreGrants  uint64 // pre-scheduled grants issued
	Promotions uint64 // pre-scheduled → normal transitions
	Rejects    uint64 // T/O rejections
	Backoffs   uint64 // PA back-offs
	Revokes    uint64 // provisional PA grants revoked at final-timestamp
	Releases   uint64
	Conversion uint64 // lock → semi-lock conversions
	Aborts     uint64
	SnapReads  uint64 // read-only snapshot reads served (queue bypassed)
	SnapStale  uint64 // snapshot reads served inexactly (chain GC'd past ts)
	Busy       uint64 // requests NAK'd because the item's queue was at MaxQueueDepth
	WALSyncs   uint64 // durable flushes of the site's write-ahead log
	Commits    uint64 // commit-sequencer passes (≥ WALSyncs; the gap is batching)
	Crashes    uint64 // injected site crashes
	Recoveries uint64 // completed crash recoveries
	Deferred   uint64 // messages queued while the site was down

	// Log-shipping catch-up (internal/repl; zero unless quorum replication
	// is configured).
	ReplPulls   uint64 // pulls served to peers from this site's durable log
	ReplApplied uint64 // shipped records this site installed during catch-up
	ReplSkipped uint64 // shipped records skipped as stale or duplicate (idempotence)
	ReplResets  uint64 // snapshot-image resets taken because a peer truncated its log

	// Versioned placement / online rebalance.
	WrongEpoch      uint64 // operations NAK'd because the installed map disowns the copy
	MapInstalls     uint64 // newer partition maps installed
	ItemsGained     uint64 // copies created at map installs (awaiting or skipping transfer)
	TransferPulls   uint64 // transfer pulls served to new owners
	TransferApplied uint64 // transfer records installed (stamp-gated, like ReplApplied)
	TransferBytes   uint64 // transfer frame bytes received
}

// Durable is the durability subsystem a manager drives (internal/wal's
// SiteLog): Flush makes every journaled write durable; Crash and Recover
// implement simulated fault injection. The manager journals nothing itself —
// the store's Journal hook does — it only decides when to sync and how a
// crashed site behaves.
type Durable interface {
	Flush() error
	Crash()
	Recover() error
}

// Manager is the queue-manager host for one data site. It owns the site's
// store and partitions the site's per-copy data queues across Shards
// independent shards; each shard speaks the unified concurrency control
// protocol for the items hashed to it and may be registered at its own
// engine address (engine.QMShardAddr) for a private mailbox.
//
// The manager itself holds only the site-wide concerns the shards must not
// split: the commit sequencer (one atomic site-wide sync point), crash and
// recovery (a site fails as a unit), deadlock probes (the detector wants one
// report per site), and the stats tick.
type Manager struct {
	site     model.SiteID
	store    *storage.Store
	recorder *history.Recorder
	opts     Options
	shards   []*shard

	// Durability state (nil dur = volatile site, the pre-WAL behaviour).
	// Set once via SetDurable before traffic flows.
	dur Durable
	seq *commitSequencer

	// Control plane: crash/recovery and the stats tick serialize here so
	// they cannot interleave; the per-item fast path never touches ctlMu.
	ctlMu        sync.Mutex
	statsStopped bool
	pendingTick  bool // a stats tick arrived during an outage

	// Log-shipping catch-up plane (internal/repl), set once via
	// SetReplication before traffic flows; nil puller = no quorum catch-up.
	// The puller tracks per-peer watermarks, replSrc serves peers' pulls
	// from this site's durable log. Both are guarded by ctlMu.
	puller      *repl.Puller
	replSrc     repl.Source
	replStopped bool

	// Versioned placement. pmap is read lock-free on the request fast path
	// (atomic pointer; nil = legacy mode, ownership is queue existence) and
	// replaced only inside onMapInstall's site-wide critical section. The
	// transfer sessions and their retry timer are control-plane state under
	// ctlMu like the puller.
	pmap              atomic.Pointer[model.PartitionMap]
	sessions          []*transferSession
	transferTickArmed bool
}

// pendingMsg is a message that arrived at a shard while the site was down;
// it is processed in arrival order at recovery.
type pendingMsg struct {
	from engine.Addr
	msg  model.Message
}

// New creates the manager for a site. Every item already present in store
// gets a data queue in the shard it hashes to; recorder may be nil to skip
// history recording.
func New(site model.SiteID, store *storage.Store, recorder *history.Recorder, opts Options) *Manager {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	m := &Manager{
		site:     site,
		store:    store,
		recorder: recorder,
		opts:     opts,
	}
	m.shards = make([]*shard, opts.Shards)
	for i := range m.shards {
		m.shards[i] = &shard{
			m:        m,
			idx:      i,
			queues:   map[model.ItemID]*dataQueue{},
			pending:  map[model.ItemID]bool{},
			retiring: map[model.ItemID]bool{},
		}
	}
	for _, item := range store.Items() {
		sh := m.shards[model.ShardOfItem(item, opts.Shards)]
		sh.queues[item] = newDataQueue(model.CopyID{Item: item, Site: site}, !opts.DisableSemiLocks)
	}
	return m
}

// Site returns the manager's site id.
func (m *Manager) Site() model.SiteID { return m.site }

// NumShards returns the shard count (≥1). The cluster registers the manager
// at engine.QMShardAddr(site, 0..NumShards-1); on the real-time runtime each
// address gets its own mailbox goroutine, which is where the parallelism
// comes from.
func (m *Manager) NumShards() int { return len(m.shards) }

// SetDurable attaches the durability subsystem and builds the per-site
// commit sequencer the shards drain through. Call before the engine starts
// delivering messages. The store's Journal hook must be attached separately
// (storage.Store.SetJournal) — the manager only schedules syncs and drives
// crash/recovery.
func (m *Manager) SetDurable(d Durable) {
	m.dur = d
	m.seq = newCommitSequencer(d.Flush)
}

// SetGroupCommitMicros changes the group-commit window at runtime — the
// slow-disk fault hook: a degraded disk is modeled as forced sync batching
// (a wide window amortizes many writes per sync, at the documented cost of
// a longer unsynced tail). Shards read the option on every maybeFlush, so
// the new window governs the next delivery. Simulator-only discipline: call
// between engine steps (the scenario runner applies it at a phase-boundary
// fault point); on the real-time runtime shards read the field without
// synchronization, so it must not change while traffic flows.
func (m *Manager) SetGroupCommitMicros(window int64) {
	if window < 0 {
		window = 0
	}
	m.opts.GroupCommitMicros = window
}

// Down reports whether the site is currently crashed (tests).
func (m *Manager) Down() bool {
	sh := m.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.down
}

// Snapshot returns the current counter values aggregated across shards.
// Safe to call concurrently with message handling.
func (m *Manager) Snapshot() Counters {
	var t Counters
	for _, sh := range m.shards {
		sh.mu.Lock()
		c := sh.counters
		sh.mu.Unlock()
		t.Requests += c.Requests
		t.Grants += c.Grants
		t.PreGrants += c.PreGrants
		t.Promotions += c.Promotions
		t.Rejects += c.Rejects
		t.Backoffs += c.Backoffs
		t.Revokes += c.Revokes
		t.Releases += c.Releases
		t.Conversion += c.Conversion
		t.Aborts += c.Aborts
		t.SnapReads += c.SnapReads
		t.SnapStale += c.SnapStale
		t.Busy += c.Busy
		t.Crashes += c.Crashes
		t.Recoveries += c.Recoveries
		t.Deferred += c.Deferred
		t.ReplPulls += c.ReplPulls
		t.ReplApplied += c.ReplApplied
		t.ReplSkipped += c.ReplSkipped
		t.ReplResets += c.ReplResets
		t.WrongEpoch += c.WrongEpoch
		t.MapInstalls += c.MapInstalls
		t.ItemsGained += c.ItemsGained
		t.TransferPulls += c.TransferPulls
		t.TransferApplied += c.TransferApplied
		t.TransferBytes += c.TransferBytes
	}
	if m.seq != nil {
		t.Commits, t.WALSyncs = m.seq.stats()
	}
	return t
}

// shardFor returns the shard owning item's queue.
func (m *Manager) shardFor(item model.ItemID) *shard {
	return m.shards[model.ShardOfItem(item, len(m.shards))]
}

// queueOf returns item's data queue (tests).
func (m *Manager) queueOf(item model.ItemID) *dataQueue {
	return m.shardFor(item).queues[item]
}

// DumpQueue renders item's queue for debugging: one line per entry in
// precedence order.
func (m *Manager) DumpQueue(item model.ItemID) []string {
	sh := m.shardFor(item)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	q := sh.queues[item]
	if q == nil {
		return nil
	}
	out := make([]string, 0, len(q.entries))
	for _, e := range q.entries {
		out = append(out, e.String())
	}
	return out
}

// DepthHighWater returns the deepest any data queue at this site has ever
// been. With MaxQueueDepth configured it never exceeds that bound — the
// assertion EXP-12 makes after an overload run.
func (m *Manager) DepthHighWater() int {
	high := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		if sh.depthHigh > high {
			high = sh.depthHigh
		}
		sh.mu.Unlock()
	}
	return high
}

// QueueDepth returns the number of resident entries for item (tests).
func (m *Manager) QueueDepth(item model.ItemID) int {
	sh := m.shardFor(item)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	q := sh.queues[item]
	if q == nil {
		return 0
	}
	return len(q.entries)
}

// OnMessage implements engine.Actor. Item-bearing messages route to the
// owning shard (the same routing the issuers use to pick a shard mailbox, so
// a message is handled by the shard it was addressed to); site-wide control
// messages — crash, recovery, deadlock probes, the stats tick — are handled
// at the manager. The manager may be registered at every shard address: the
// routing is by content, not by mailbox, so delivery stays correct whether
// the site runs one mailbox (simulator) or one per shard (runtime).
func (m *Manager) OnMessage(ctx engine.Context, from engine.Addr, msg model.Message) {
	switch v := msg.(type) {
	case model.RequestMsg:
		m.shardFor(v.Copy.Item).onMessage(ctx, from, msg)
	case *model.RequestMsg:
		m.shardFor(v.Copy.Item).onMessage(ctx, from, msg)
	case model.FinalTSMsg:
		m.shardFor(v.Copy.Item).onMessage(ctx, from, msg)
	case *model.FinalTSMsg:
		m.shardFor(v.Copy.Item).onMessage(ctx, from, msg)
	case model.ReleaseMsg:
		m.shardFor(v.Copy.Item).onMessage(ctx, from, msg)
	case *model.ReleaseMsg:
		m.shardFor(v.Copy.Item).onMessage(ctx, from, msg)
	case model.AbortMsg:
		m.shardFor(v.Copy.Item).onMessage(ctx, from, msg)
	case *model.AbortMsg:
		m.shardFor(v.Copy.Item).onMessage(ctx, from, msg)
	case model.SnapReadMsg:
		m.shardFor(v.Copy.Item).onMessage(ctx, from, msg)
	case *model.SnapReadMsg:
		m.shardFor(v.Copy.Item).onMessage(ctx, from, msg)
	case model.FlushMsg:
		if int(v.Shard) < len(m.shards) {
			m.shards[v.Shard].onMessage(ctx, from, msg)
		}
	case model.ProbeWFGMsg:
		m.onProbe(ctx, from, v)
	case model.TickMsg:
		switch v.Tag {
		case ReplTickTag:
			m.onReplTick(ctx)
		case ReplSettleTickTag:
			m.onReplSettle(ctx)
		case TransferTickTag:
			m.onTransferTick(ctx)
		default:
			m.onStatsTick(ctx)
		}
	case model.ReplPullMsg:
		m.onReplPull(ctx, v)
	case model.ReplRecordsMsg:
		m.onReplRecords(ctx, v)
	case model.MapInstallMsg:
		m.onMapInstall(ctx, v)
	case model.TransferPullMsg:
		m.onTransferPull(ctx, v)
	case model.TransferRecordsMsg:
		m.onTransferRecords(ctx, v)
	case model.CrashMsg:
		m.onCrash()
	case model.RecoverMsg:
		m.onRecover(ctx)
	case model.StopMsg:
		m.onStop()
	default:
		panic(fmt.Sprintf("qm: site %d: unexpected message %T", m.site, msg))
	}
}

// lockAll acquires every shard lock in index order (the site-wide critical
// section used by crash and recovery; index order prevents lock cycles with
// other all-shard holders — per-item handlers only ever hold one).
func (m *Manager) lockAll() {
	for _, sh := range m.shards {
		//ucclint:allow lockorder -- the one all-shard critical section: index-order acquisition prevents cycles, and per-item handlers never hold more than one
		sh.mu.Lock()
	}
}

func (m *Manager) unlockAll() {
	for i := len(m.shards) - 1; i >= 0; i-- {
		m.shards[i].mu.Unlock()
	}
}

// onCrash injects a site crash (CrashMsg, simulation only): the volatile
// store and the unsynced WAL tail are destroyed; the synced prefix and
// snapshot survive on the durable media. The site fails as a unit — every
// shard goes down together — and until RecoverMsg arrives each shard defers
// its messages. Crashing an already-down site is a no-op (the volatile state
// is already gone).
func (m *Manager) onCrash() {
	if m.dur == nil {
		panic(fmt.Sprintf("qm: site %d: CrashMsg without durability configured", m.site))
	}
	m.ctlMu.Lock()
	defer m.ctlMu.Unlock()
	m.lockAll()
	defer m.unlockAll()
	if m.shards[0].down {
		return
	}
	for _, sh := range m.shards {
		sh.down = true
		sh.dirty = false
		sh.flushArmed = false
	}
	m.store.Wipe()
	m.dur.Crash()
	if m.puller != nil {
		// Shipped records applied since the last sync are lost with the rest
		// of the volatile tail: zero the watermarks so every peer's log is
		// offered again from the start (or from its snapshot image, via the
		// Reset path). Stamp-gating makes the re-shipment idempotent.
		m.puller.ResetAll()
	}
	for _, s := range m.sessions {
		// Transfer records applied but not yet synced are gone with the rest
		// of the volatile state; re-pull each incomplete session from the
		// start after recovery (stamp-gating absorbs the overlap).
		if !s.done {
			s.afterSeq = 0
		}
	}
	m.shards[0].counters.Crashes++
}

// onRecover rebuilds the store from snapshot + WAL replay and then processes
// the messages that queued up during the outage, shard by shard in arrival
// order. Per-shard arrival order is the order the protocol needs: messages
// for one item always route to one shard, so its FIFO is preserved exactly.
func (m *Manager) onRecover(ctx engine.Context) {
	m.ctlMu.Lock()
	defer m.ctlMu.Unlock()
	if !m.Down() {
		return // already up: stale recovery for an outage that never happened
	}
	// All shards are down, so no shard handler can touch the store while
	// recovery rebuilds it (down shards only append to their deferred list).
	if err := m.dur.Recover(); err != nil {
		panic(fmt.Sprintf("qm: site %d: recovery failed: %v", m.site, err))
	}
	for _, sh := range m.shards {
		sh.mu.Lock()
		sh.down = false
		for len(sh.deferred) > 0 {
			p := sh.deferred[0]
			sh.deferred = sh.deferred[1:]
			sh.handle(ctx, p.from, p.msg)
		}
		sh.deferred = nil
		sh.maybeFlush(ctx)
		sh.mu.Unlock()
	}
	m.shards[0].mu.Lock()
	m.shards[0].counters.Recoveries++
	m.shards[0].mu.Unlock()
	if m.pendingTick {
		m.pendingTick = false
		m.statsTickLocked(ctx)
	}
}

// onStatsTick pushes the cumulative per-item grant counters to the metrics
// collector and re-arms the timer. The cluster posts the first TickMsg. A
// tick that lands during an outage is parked and re-fired at recovery so the
// timer chain survives the crash.
func (m *Manager) onStatsTick(ctx engine.Context) {
	m.ctlMu.Lock()
	defer m.ctlMu.Unlock()
	if m.Down() {
		m.pendingTick = true
		return
	}
	m.statsTickLocked(ctx)
}

func (m *Manager) statsTickLocked(ctx engine.Context) {
	if m.statsStopped || m.opts.StatsPeriodMicros <= 0 {
		return
	}
	read := map[model.ItemID]uint64{}
	write := map[model.ItemID]uint64{}
	for _, sh := range m.shards {
		sh.mu.Lock()
		for item, q := range sh.queues {
			read[item] = q.readGrants
			write[item] = q.writeGrants
		}
		sh.mu.Unlock()
	}
	ctx.Send(engine.CollectorAddr(), model.QueueStatsMsg{
		From:        m.site,
		AtMicros:    ctx.NowMicros(),
		ReadGrants:  read,
		WriteGrants: write,
	})
	ctx.SetTimer(m.opts.StatsPeriodMicros, model.TickMsg{})
}

func (m *Manager) onStop() {
	m.ctlMu.Lock()
	m.statsStopped = true // stop re-arming the stats timer
	m.replStopped = true  // stop re-arming the pull timer
	m.ctlMu.Unlock()
}

// onProbe reports the site's wait-for edges across every shard as one
// report (the deadlock detector reasons per site, not per shard). A down
// site does not answer — the detector's persistence rounds absorb the gap.
func (m *Manager) onProbe(ctx engine.Context, from engine.Addr, v model.ProbeWFGMsg) {
	m.ctlMu.Lock()
	defer m.ctlMu.Unlock()
	if m.Down() {
		return
	}
	var edges []model.WaitEdge
	for _, sh := range m.shards {
		sh.mu.Lock()
		for _, q := range sh.queues {
			q.waitEdges(func(e, b *entry) {
				edges = append(edges, model.WaitEdge{
					Waiter:       e.txn,
					Holder:       b.txn,
					Waiter2PL:    e.protocol == model.TwoPL,
					Holder2PL:    b.protocol == model.TwoPL,
					WaiterSite:   e.prec.Site,
					WaiterSeq:    e.attempt,
					Copy:         q.copyID,
					WaiterIssuer: e.prec.Site,
				})
			})
		}
		sh.mu.Unlock()
	}
	ctx.Send(from, model.WFGReportMsg{From: m.site, Round: v.Round, Edges: edges})
}
