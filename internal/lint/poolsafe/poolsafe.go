// Package poolsafe enforces the message/object-pool lifetime contract
// (internal/model/wirepool.go and the per-package hot-path pools): a value
// obtained from a pooled constructor — the decode side
// (DecodeMessagePooled, DecodeEnvelopePooled, ReadEnvelopePooled), the send
// side (model.PooledRequest and its ten siblings), or a package-local
// acquire (qm's acquireEntry, ri's acquireCopyReq) — is valid only until
// its recycle call (RecycleMessage, recycleEntry, recycleCopyReq), and a
// recycled value must never be touched again — the pool will hand the same
// struct to a concurrent caller and the "retained" object silently mutates.
//
// The analyzer taints the results of the pooled constructors inside each
// function and flags the retention vectors that outlive the call frame:
//
//   - stores through a pointer, into a package-level variable, or into a
//     struct reached from a receiver/parameter (assignment propagation
//     through function-local values is tracked, not flagged);
//   - channel sends;
//   - goroutine launches whose arguments or captured variables are
//     tainted;
//   - append into a slice.
//
// It also flags any use of a value after the RecycleMessage call that
// returned it to the pool (branch-sensitive: recycling on an error path
// that returns does not poison the happy path). The analysis is
// intra-procedural and deliberately conservative in what it reports —
// returning a pooled value to the caller, as the wire package's own
// plumbing does, transfers ownership and is not a diagnostic.
package poolsafe

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"ucc/internal/lint"
)

// Analyzer flags pooled-message lifetime violations.
var Analyzer = &lint.Analyzer{
	Name: "poolsafe",
	Doc: "values from pooled constructors (DecodeMessagePooled/DecodeEnvelopePooled, the send-side " +
		"model.PooledX family, qm's acquireEntry, ri's acquireCopyReq) must not be retained past " +
		"their recycle call (no stores through pointers/globals, channel sends, goroutine captures, " +
		"or appends), and recycled values must not be re-read",
	Run: run,
}

// pooledConstructors names the taint sources; they must be declared in a
// package whose import path ends in one of pooledPackages. The decode-side
// trio returns wire-decoded pooled messages; the PooledX family is the
// send-side boxing used on the transaction hot path; acquireEntry and
// acquireCopyReq are the queue-table and attempt-state pools.
var pooledConstructors = map[string]bool{
	"DecodeMessagePooled":  true,
	"DecodeEnvelopePooled": true,
	"ReadEnvelopePooled":   true,

	"PooledRequest":       true,
	"PooledFinalTS":       true,
	"PooledRelease":       true,
	"PooledAbort":         true,
	"PooledGrant":         true,
	"PooledNormalGrant":   true,
	"PooledReject":        true,
	"PooledBackoff":       true,
	"PooledBusy":          true,
	"PooledSnapRead":      true,
	"PooledSnapReadReply": true,

	"acquireEntry":   true,
	"acquireCopyReq": true,
}

// recycleFuncs names the calls that return a pooled value to its pool; the
// argument becomes poison for the rest of the path. Each must be declared in
// a package whose import path ends in one of pooledPackages.
var recycleFuncs = map[string]bool{
	"RecycleMessage": true,
	"recycleEntry":   true,
	"recycleCopyReq": true,
}

// pooledPackages are the import-path suffixes that may declare taint sources
// and recycle calls — the packages owning a hot-path pool.
var pooledPackages = []string{
	"internal/model",
	"internal/wire",
	"internal/qm",
	"internal/ri",
}

func inPooledPackage(path string) bool {
	for _, suffix := range pooledPackages {
		if lint.PathHasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				analyzeFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

// analyzeFunc runs both checks over one function body.
func analyzeFunc(pass *lint.Pass, body *ast.BlockStmt) {
	fn := &funcState{pass: pass, tainted: map[types.Object]bool{}}
	fn.collectTaint(body)
	if len(fn.tainted) > 0 {
		fn.flagEscapes(body)
	}
	fn.scanRecycle(body.List, map[string]token.Pos{})
}

type funcState struct {
	pass    *lint.Pass
	tainted map[types.Object]bool
}

// isPooledCall reports whether e is a call to one of the pooled
// constructors.
func (fn *funcState) isPooledCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return false
	}
	if !pooledConstructors[id.Name] {
		return false
	}
	obj := fn.pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return inPooledPackage(obj.Pkg().Path())
}

// isRecycleCall matches a recycle call (model.RecycleMessage, qm's
// recycleEntry, ri's recycleCopyReq) and returns the recycled arg.
func (fn *funcState) isRecycleCall(e ast.Expr) (ast.Expr, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, false
	}
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil, false
	}
	if !recycleFuncs[id.Name] {
		return nil, false
	}
	obj := fn.pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pkg() == nil || !inPooledPackage(obj.Pkg().Path()) {
		return nil, false
	}
	return call.Args[0], true
}

// collectTaint walks the body in source order, tainting variables assigned
// from pooled constructors and propagating through local value copies.
func (fn *funcState) collectTaint(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		fromPooled := len(as.Rhs) == 1 && fn.isPooledCall(as.Rhs[0])
		fromTainted := false
		for _, rhs := range as.Rhs {
			if fn.exprTainted(rhs) {
				fromTainted = true
			}
		}
		if !fromPooled && !fromTainted {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := fn.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = fn.pass.TypesInfo.Uses[id]
			}
			if obj == nil || isErrorType(obj.Type()) || isBasic(obj.Type()) {
				continue
			}
			fn.tainted[obj] = true
		}
		return true
	})
}

// exprTainted reports whether the expression mentions a tainted variable.
func (fn *funcState) exprTainted(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := fn.pass.TypesInfo.Uses[id]; obj != nil && fn.tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// flagEscapes reports the retention vectors.
func (fn *funcState) flagEscapes(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				var rhs ast.Expr
				if len(v.Rhs) == len(v.Lhs) {
					rhs = v.Rhs[i]
				} else if len(v.Rhs) == 1 {
					rhs = v.Rhs[0]
				}
				if rhs == nil || !fn.exprTainted(rhs) {
					continue
				}
				if base, escapes := fn.escapingStore(lhs); escapes {
					fn.pass.Reportf(v.Pos(),
						"pooled message stored into %s, which outlives the call frame: the value is "+
							"only valid until RecycleMessage (use DecodeMessage/DecodeEnvelope for "+
							"messages that are retained)", base)
				}
			}
		case *ast.SendStmt:
			if fn.exprTainted(v.Value) {
				fn.pass.Reportf(v.Pos(),
					"pooled message sent on a channel: the receiver may read it after RecycleMessage "+
						"returns it to the pool (use DecodeMessage/DecodeEnvelope instead)")
			}
		case *ast.GoStmt:
			if fn.goTainted(v) {
				fn.pass.Reportf(v.Pos(),
					"pooled message captured by a goroutine: it may run after RecycleMessage returns "+
						"the struct to the pool (use DecodeMessage/DecodeEnvelope instead)")
			}
		case *ast.CallExpr:
			id, isIdent := v.Fun.(*ast.Ident)
			if !isIdent || id.Name != "append" {
				break
			}
			if _, isBuiltin := fn.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(v.Args) > 1 {
				for _, arg := range v.Args[1:] {
					if fn.exprTainted(arg) {
						fn.pass.Reportf(v.Pos(),
							"pooled message appended to a slice: the slice retains it past RecycleMessage "+
								"(use DecodeMessage/DecodeEnvelope instead)")
						break
					}
				}
			}
		}
		return true
	})
}

// escapingStore decides whether assigning into lhs retains the value
// beyond the function frame. Stores into function-local value variables
// only propagate taint (handled by collectTaint); everything else —
// pointer dereferences, package-level variables, fields reached through a
// pointer base — escapes.
func (fn *funcState) escapingStore(lhs ast.Expr) (string, bool) {
	switch l := lhs.(type) {
	case *ast.Ident:
		// Plain local variable: propagation. Package-level variable: escape.
		if obj, ok := fn.pass.TypesInfo.Uses[l].(*types.Var); ok &&
			obj.Pkg() != nil && obj.Pkg().Scope().Lookup(obj.Name()) == obj {
			return "package-level variable " + l.Name, true
		}
		return "", false
	case *ast.StarExpr:
		return render(fn.pass.Fset, lhs), true
	case *ast.SelectorExpr, *ast.IndexExpr:
		base := rootExpr(lhs)
		id, ok := base.(*ast.Ident)
		if !ok {
			return render(fn.pass.Fset, l), true
		}
		obj, ok := fn.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return render(fn.pass.Fset, l), true
		}
		// Package-level variable: escapes.
		if obj.Pkg() != nil && obj.Pkg().Scope().Lookup(obj.Name()) == obj {
			return render(fn.pass.Fset, l), true
		}
		// Local pointer base: the store lands in memory someone else sees.
		if _, ptr := obj.Type().Underlying().(*types.Pointer); ptr {
			return render(fn.pass.Fset, l), true
		}
		return "", false // field/element of a local value: propagation
	default:
		return "", false
	}
}

// goTainted reports whether a go statement's call references a tainted
// variable in its arguments or its function-literal body.
func (fn *funcState) goTainted(g *ast.GoStmt) bool {
	for _, arg := range g.Call.Args {
		if fn.exprTainted(arg) {
			return true
		}
	}
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				obj := fn.pass.TypesInfo.Uses[id]
				// Only variables DECLARED outside the literal are captures; a
				// pooled value acquired inside the goroutine body is
				// goroutine-local and its lifetime is that frame's problem.
				if obj != nil && fn.tainted[obj] &&
					(obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
					found = true
				}
			}
			return !found
		})
		return found
	}
	return false
}

// scanRecycle walks statements in order tracking which expressions have
// been recycled, reporting later uses. Branches that terminate (return or
// panic) do not leak their recycled set into the fallthrough path.
func (fn *funcState) scanRecycle(stmts []ast.Stmt, recycled map[string]token.Pos) bool {
	terminated := false
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if arg, ok := fn.isRecycleCall(s.X); ok {
				recycled[render(fn.pass.Fset, arg)] = s.Pos()
				continue
			}
			fn.checkRecycledUse(s, recycled)
		case *ast.ReturnStmt:
			fn.checkRecycledUse(s, recycled)
			terminated = true
		case *ast.AssignStmt:
			// Reading a recycled value on the right is a use; assigning a
			// fresh value over it makes the variable valid again.
			for _, rhs := range s.Rhs {
				fn.checkRecycledUse(rhs, recycled)
			}
			for _, lhs := range s.Lhs {
				key := render(fn.pass.Fset, lhs)
				for k := range recycled {
					if k == key || strings.HasPrefix(k, key+".") || strings.HasPrefix(k, key+"[") {
						delete(recycled, k)
					}
				}
			}
		case *ast.IfStmt:
			if s.Init != nil {
				fn.checkRecycledUse(s.Init, recycled)
			}
			fn.checkRecycledUseExpr(s.Cond, recycled)
			thenRec := copyMap(recycled)
			thenTerm := fn.scanRecycle(s.Body.List, thenRec)
			var elseRec map[string]token.Pos
			elseTerm := false
			if s.Else != nil {
				elseRec = copyMap(recycled)
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					elseTerm = fn.scanRecycle(e.List, elseRec)
				case *ast.IfStmt:
					elseTerm = fn.scanRecycle([]ast.Stmt{e}, elseRec)
				}
			}
			if !thenTerm {
				merge(recycled, thenRec)
			}
			if elseRec != nil && !elseTerm {
				merge(recycled, elseRec)
			}
			if thenTerm && s.Else != nil && elseTerm {
				terminated = true
			}
		case *ast.ForStmt:
			inner := copyMap(recycled)
			fn.scanRecycle(s.Body.List, inner)
			merge(recycled, inner)
		case *ast.RangeStmt:
			inner := copyMap(recycled)
			fn.scanRecycle(s.Body.List, inner)
			merge(recycled, inner)
		case *ast.BlockStmt:
			if fn.scanRecycle(s.List, recycled) {
				terminated = true
			}
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// Each clause scans against a copy; non-terminating clauses merge.
			ast.Inspect(stmt, func(n ast.Node) bool {
				if cc, ok := n.(*ast.CaseClause); ok {
					inner := copyMap(recycled)
					if !fn.scanRecycle(cc.Body, inner) {
						merge(recycled, inner)
					}
					return false
				}
				if cc, ok := n.(*ast.CommClause); ok {
					inner := copyMap(recycled)
					if !fn.scanRecycle(cc.Body, inner) {
						merge(recycled, inner)
					}
					return false
				}
				return true
			})
		default:
			fn.checkRecycledUse(stmt, recycled)
			if isPanic(stmt) {
				terminated = true
			}
		}
	}
	return terminated
}

// checkRecycledUse reports any reference within n to an expression that
// was recycled earlier on this path.
func (fn *funcState) checkRecycledUse(n ast.Node, recycled map[string]token.Pos) {
	if len(recycled) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		e, ok := m.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			if _, done := recycled[render(fn.pass.Fset, e)]; done {
				fn.pass.Reportf(e.Pos(),
					"%s is used after RecycleMessage returned it to the pool: a concurrent decode "+
						"may already be rewriting the struct", render(fn.pass.Fset, e))
				return false
			}
		}
		return true
	})
}

func (fn *funcState) checkRecycledUseExpr(e ast.Expr, recycled map[string]token.Pos) {
	if e != nil {
		fn.checkRecycledUse(e, recycled)
	}
}

func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return e
		}
	}
}

func render(fset *token.FileSet, n ast.Node) string {
	var sb strings.Builder
	printer.Fprint(&sb, fset, n)
	return sb.String()
}

func copyMap(m map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func merge(dst, src map[string]token.Pos) {
	for k, v := range src {
		dst[k] = v
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func isBasic(t types.Type) bool {
	_, ok := t.Underlying().(*types.Basic)
	return ok
}

func isPanic(stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
