package repl

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"ucc/internal/wal"
)

const seedDir = "testdata/fuzz/FuzzReplStream"

// seedStreams are the committed fuzz seeds: a clean multi-record batch, a
// batch with duplicate and overlapping ranges (the re-ship case), a
// mid-frame truncation, a corrupted checksum, and raw garbage. One seed per
// shape, so the first fuzz iteration already walks every decode branch.
func seedStreams() map[string][]byte {
	clean := frames(rec(1, 1, 10, 100), rec(2, 2, 20, 200), rec(3, 3, 30, 300))
	dup := frames(rec(1, 1, 10, 100), rec(1, 1, 10, 100), rec(2, 1, 11, 90), rec(3, 2, 20, 200), rec(2, 1, 11, 90))
	torn := append([]byte(nil), clean[:len(clean)-5]...)
	corrupt := append([]byte(nil), clean...)
	corrupt[len(corrupt)-1] ^= 0xFF
	return map[string][]byte{
		"clean":    clean,
		"dup":      dup,
		"torn":     torn,
		"corrupt":  corrupt,
		"garbage":  {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02, 0x03},
		"empty":    {},
		"one-byte": {0x7F},
	}
}

// TestWriteSeedCorpus regenerates the committed seed corpus when
// REPL_WRITE_CORPUS=1 (same workflow as internal/wire's corpus):
//
//	REPL_WRITE_CORPUS=1 go test ./internal/repl -run TestWriteSeedCorpus
func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("REPL_WRITE_CORPUS") == "" {
		t.Skip("set REPL_WRITE_CORPUS=1 to regenerate the seed corpus")
	}
	if err := os.MkdirAll(seedDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seedStreams() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(seedDir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSeedCorpusCommitted fails if the checked-in corpus is missing — the CI
// fuzz job depends on seeds existing.
func TestSeedCorpusCommitted(t *testing.T) {
	entries, err := os.ReadDir(seedDir)
	if err != nil {
		t.Fatalf("seed corpus missing (run REPL_WRITE_CORPUS=1 go test -run TestWriteSeedCorpus ./internal/repl): %v", err)
	}
	if want := len(seedStreams()); len(entries) < want {
		t.Fatalf("seed corpus has %d entries, want ≥ %d", len(entries), want)
	}
}

// FuzzReplStream hardens the shipped-batch decode→replay path against
// arbitrary bytes off the wire. For every input, whatever its shape:
//
//   - Apply must not panic and must account for every decoded record
//     (Applied + Skipped = decode count, Torn = trailing damage).
//   - Replaying the same bytes against the same replica must apply nothing —
//     duplicate and overlapping re-ships are absorbed by the stamp gate.
//   - Truncating the input at any point must only ever shorten the applied
//     prefix, never change or reorder what was applied before the cut.
func FuzzReplStream(f *testing.F) {
	for _, data := range seedStreams() {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var decoded int
		torn := wal.DecodeRecordFrames(data, func(wal.Record) { decoded++ })

		m := applyModel{}
		st := Apply(data, m.apply)
		if st.Applied+st.Skipped != decoded {
			t.Fatalf("stats %+v do not account for %d decoded records", st, decoded)
		}
		if st.Torn != torn {
			t.Fatalf("torn mismatch: Apply=%d decode=%d", st.Torn, torn)
		}

		// Idempotence: the identical batch re-shipped is all skips.
		again := Apply(data, m.apply)
		if again.Applied != 0 || again.Skipped != decoded {
			t.Fatalf("replay not idempotent: %+v (decoded %d)", again, decoded)
		}

		// Truncation at an arbitrary interior point (derived from the data
		// itself to stay deterministic): the prefix replayed into a fresh
		// replica must agree with the full replay on every item it reached.
		if len(data) > 0 {
			cut := int(data[0]) % (len(data) + 1)
			pm := applyModel{}
			var prefixOrder []wal.Record
			Apply(data[:cut], func(r wal.Record) bool {
				prefixOrder = append(prefixOrder, r)
				return pm.apply(r)
			})
			var fullOrder []wal.Record
			fm := applyModel{}
			Apply(data, func(r wal.Record) bool {
				fullOrder = append(fullOrder, r)
				return fm.apply(r)
			})
			if len(prefixOrder) > len(fullOrder) {
				t.Fatalf("truncation grew the stream: %d > %d", len(prefixOrder), len(fullOrder))
			}
			for i, r := range prefixOrder {
				if fullOrder[i] != r {
					t.Fatalf("record %d differs between prefix and full replay", i)
				}
			}
		}

		// Round-trip: re-encoding every decoded record reproduces the
		// intact prefix byte for byte.
		var reenc []byte
		wal.DecodeRecordFrames(data, func(r wal.Record) { reenc = append(reenc, wal.AppendRecordFrame(nil, r)...) })
		if !bytes.Equal(reenc, data[:len(data)-torn]) && decoded > 0 {
			// Legacy fixed-width frames re-encode into varint frames, so
			// byte equality only holds for varint-era input; tolerate a
			// mismatch only if re-decoding reproduces the same records.
			var rr []wal.Record
			wal.DecodeRecordFrames(reenc, func(r wal.Record) { rr = append(rr, r) })
			if len(rr) != decoded {
				t.Fatalf("re-encode lost records: %d != %d", len(rr), decoded)
			}
		}
	})
}
