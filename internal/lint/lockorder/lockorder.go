// Package lockorder pins the queue manager's shard locking discipline:
// per-item code paths hold at most ONE shard lock at a time. Shards are
// independently lockable precisely so that conflict-free traffic runs in
// parallel; a handler that acquires a second shard's mutex while holding
// one creates a lock-order cycle with any other such handler running the
// opposite order — the classic ABBA deadlock, which the repl.Apply
// replay and the storage barrier were both designed to avoid (catch-up
// replays records under one shard lock at a time, releasing between
// items).
//
// The one legitimate exception is the site-wide critical section used by
// crash/recovery and map installs (Manager.lockAll), which acquires every
// shard lock in index order under the commit sequencer's drain; it is
// allow-listed in place with a //ucclint:allow lockorder comment stating
// that argument.
//
// Detection is intra-procedural: within one function body (function
// literals are separate bodies — a callback runs per invocation), a
// Lock() on a mutex field of a shard struct while another shard mutex is
// held is a diagnostic, as is a Lock() inside a loop whose body does not
// release it (that is "acquire one lock per iteration" — the lockAll
// shape). A mutex counts as a shard lock when it is a field of a struct
// type named "shard" or ending in "Shard".
package lockorder

import (
	"go/ast"
	"go/printer"
	"go/types"
	"strings"

	"ucc/internal/lint"
)

// Analyzer flags second shard-lock acquisitions.
var Analyzer = &lint.Analyzer{
	Name: "lockorder",
	Doc: "never acquire a second shard lock while holding one (ABBA deadlock with the opposite " +
		"order); the all-shard crash/recovery critical section is allow-listed in place",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		// Every function body — declarations and literals — is analyzed as
		// its own scope: lock state does not flow into callbacks.
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				if v.Body != nil {
					s := &scanner{pass: pass}
					s.block(v.Body.List, map[string]bool{})
				}
			case *ast.FuncLit:
				s := &scanner{pass: pass}
				s.block(v.Body.List, map[string]bool{})
			}
			return true
		})
	}
	return nil
}

type scanner struct {
	pass *lint.Pass
}

// shardLockCall classifies a statement's expression as Lock/Unlock on a
// shard mutex and returns the lock's identity (the rendered receiver
// expression, e.g. "sh.mu" or "m.shards[0].mu").
func (s *scanner) shardLockCall(e ast.Expr) (key, op string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	op = sel.Sel.Name
	if op != "Lock" && op != "Unlock" {
		return "", "", false
	}
	// Receiver must be a field selector whose base is a shard struct.
	field, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	baseType := s.pass.TypesInfo.Types[field.X].Type
	if baseType == nil {
		return "", "", false
	}
	if p, isPtr := baseType.(*types.Pointer); isPtr {
		baseType = p.Elem()
	}
	named, isNamed := baseType.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	name := named.Obj().Name()
	if name != "shard" && !strings.HasSuffix(name, "Shard") {
		return "", "", false
	}
	var sb strings.Builder
	printer.Fprint(&sb, s.pass.Fset, sel.X)
	return sb.String(), op, true
}

// block scans statements in order, tracking held shard locks. It mutates
// held and returns nothing; callers pass copies across branches.
func (s *scanner) block(stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch v := stmt.(type) {
		case *ast.ExprStmt:
			if key, op, ok := s.shardLockCall(v.X); ok {
				switch op {
				case "Lock":
					s.acquire(v, key, held)
				case "Unlock":
					delete(held, key)
				}
			}
		case *ast.DeferStmt:
			// defer X.mu.Unlock() releases at function exit: the lock stays
			// held for the remainder of this scan, which is the point.
			continue
		case *ast.IfStmt:
			thenHeld := copySet(held)
			s.block(v.Body.List, thenHeld)
			if v.Else != nil {
				elseHeld := copySet(held)
				switch e := v.Else.(type) {
				case *ast.BlockStmt:
					s.block(e.List, elseHeld)
				case *ast.IfStmt:
					s.block([]ast.Stmt{e}, elseHeld)
				}
				mergeInto(held, elseHeld)
			}
			mergeInto(held, thenHeld)
		case *ast.ForStmt:
			s.loop(v.Body, held)
		case *ast.RangeStmt:
			s.loop(v.Body, held)
		case *ast.BlockStmt:
			s.block(v.List, held)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			ast.Inspect(stmt, func(n ast.Node) bool {
				switch cc := n.(type) {
				case *ast.CaseClause:
					inner := copySet(held)
					s.block(cc.Body, inner)
					mergeInto(held, inner)
					return false
				case *ast.CommClause:
					inner := copySet(held)
					s.block(cc.Body, inner)
					mergeInto(held, inner)
					return false
				}
				return true
			})
		}
	}
}

// loop scans a loop body: a shard lock acquired inside the body and still
// held at the body's end accumulates one lock per iteration.
func (s *scanner) loop(body *ast.BlockStmt, held map[string]bool) {
	entry := copySet(held)
	inner := copySet(held)
	s.lockInLoop(body, entry, inner)
	mergeInto(held, inner)
}

// lockInLoop is block() plus the per-iteration accumulation check.
func (s *scanner) lockInLoop(body *ast.BlockStmt, entry, held map[string]bool) {
	var acquiredPos []ast.Stmt
	for _, stmt := range body.List {
		if v, ok := stmt.(*ast.ExprStmt); ok {
			if key, op, ok := s.shardLockCall(v.X); ok && op == "Lock" && !entry[key] {
				acquiredPos = append(acquiredPos, stmt)
			}
		}
	}
	s.block(body.List, held)
	for k := range held {
		if !entry[k] {
			// Still held at end of one abstract iteration: the next
			// iteration acquires another shard's lock on top.
			for _, stmt := range acquiredPos {
				s.pass.Reportf(stmt.Pos(),
					"shard lock acquired inside a loop and held past the iteration: this "+
						"accumulates one shard lock per iteration (the all-shard critical section "+
						"must be allow-listed with its ordering argument)")
			}
			return
		}
	}
}

// acquire reports a second acquisition and records the new hold.
func (s *scanner) acquire(at ast.Stmt, key string, held map[string]bool) {
	if len(held) > 0 {
		others := make([]string, 0, len(held))
		for k := range held {
			others = append(others, k)
		}
		s.pass.Reportf(at.Pos(),
			"second shard lock %s acquired while holding %s: shard locks are one-at-a-time "+
				"(ABBA deadlock with any path locking the opposite order); release the first lock, "+
				"or route through the allow-listed all-shard critical section", key, strings.Join(others, ", "))
	}
	held[key] = true
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func mergeInto(dst, src map[string]bool) {
	for k, v := range src {
		if v {
			dst[k] = v
		}
	}
}
