package qm

import (
	"fmt"

	"ucc/internal/engine"
	"ucc/internal/model"
	"ucc/internal/repl"
	"ucc/internal/wal"
)

// ReplTickTag is the TickMsg.Tag of the periodic pull timer (the stats tick
// keeps the zero tag). The cluster posts the first tagged tick; the manager
// re-arms it.
const ReplTickTag = 1

// ReplSettleTickTag is the TickMsg.Tag of a one-shot settle pull: one fan-out
// to every peer with no timer re-arm, posted by the cluster after the main
// drain so writes that committed while the periodic chain was already
// stopped still ship before the run is summarized. It ignores replStopped
// for exactly that reason.
const ReplSettleTickTag = 2

// SetReplication attaches the log-shipping catch-up plane: the puller that
// tracks this site's per-peer watermarks, and the source (the site's
// wal.SiteLog) its peers' pulls are served from. Call before the engine
// starts delivering messages; the cluster posts the first pull tick.
func (m *Manager) SetReplication(p *repl.Puller, src repl.Source) {
	m.puller = p
	m.replSrc = src
}

// ReplWatermarks returns a copy of the per-peer catch-up watermarks (nil
// when replication is not configured) — the convergence probe the cluster
// and the experiments assert on.
func (m *Manager) ReplWatermarks() map[model.SiteID]uint64 {
	m.ctlMu.Lock()
	defer m.ctlMu.Unlock()
	if m.puller == nil {
		return nil
	}
	return m.puller.Watermarks()
}

// onReplTick sends one pull to every peer and re-arms the timer. The timer
// chain keeps running through an outage (a down site neither pulls nor
// serves, but must resume pulling the moment it recovers — catch-up after
// the crash is the whole point).
func (m *Manager) onReplTick(ctx engine.Context) {
	m.ctlMu.Lock()
	defer m.ctlMu.Unlock()
	if m.puller == nil || m.replStopped {
		return
	}
	ctx.SetTimer(m.puller.PeriodMicros(), model.TickMsg{Tag: ReplTickTag})
	if m.Down() {
		return
	}
	for _, peer := range m.puller.Peers() {
		ctx.Send(engine.QMAddr(peer), model.ReplPullMsg{From: m.site, AfterSeq: m.puller.Mark(peer)})
	}
}

// onReplSettle sends one pull to every peer without re-arming anything —
// the drain-time convergence sweep. Safe to post repeatedly; each post is
// one round.
func (m *Manager) onReplSettle(ctx engine.Context) {
	m.ctlMu.Lock()
	defer m.ctlMu.Unlock()
	if m.puller == nil || m.Down() {
		return
	}
	for _, peer := range m.puller.Peers() {
		ctx.Send(engine.QMAddr(peer), model.ReplPullMsg{From: m.site, AfterSeq: m.puller.Mark(peer)})
	}
}

// onReplPull serves one peer's pull from the durable log. A down or
// unconfigured site stays silent — the puller simply retries next period.
func (m *Manager) onReplPull(ctx engine.Context, v model.ReplPullMsg) {
	m.ctlMu.Lock()
	defer m.ctlMu.Unlock()
	if m.replSrc == nil || m.Down() {
		return
	}
	max := repl.DefaultBatchRecords
	if m.puller != nil {
		max = m.puller.BatchRecords()
	}
	batch, err := repl.BuildBatch(m.site, m.replSrc, v.AfterSeq, max)
	if err != nil {
		// The durable log is unreadable on an up site: the same broken
		// contract flushNow panics on.
		panic(fmt.Sprintf("qm: site %d: repl pull from site %d after seq %d: %v", m.site, v.From, v.AfterSeq, err))
	}
	m.shards[0].mu.Lock()
	m.shards[0].counters.ReplPulls++
	m.shards[0].mu.Unlock()
	ctx.Send(engine.QMAddr(v.From), batch)
}

// onReplRecords replays one shipped batch: each record is applied under the
// owning shard's lock through the store's stamp-gated ApplyShipped (stale
// and duplicate records skip — the idempotence the protocol leans on), dirty
// shards are flushed so catch-up progress is itself durable, and the peer's
// watermark advances. Only one shard lock is ever held at a time, so there
// is no cycle against crash/recovery's lockAll. A torn batch applies its
// intact prefix but does not advance the watermark — the tail re-ships next
// pull. More (a batch cut at the bound, or a Reset image) re-pulls
// immediately instead of waiting out a period per batch.
func (m *Manager) onReplRecords(ctx engine.Context, v model.ReplRecordsMsg) {
	m.ctlMu.Lock()
	defer m.ctlMu.Unlock()
	if m.puller == nil || m.Down() {
		return // a down site's applies would be wiped anyway; marks re-zero at crash
	}
	st := repl.Apply(v.Frames, func(r wal.Record) bool {
		sh := m.shardFor(r.Item)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if !m.store.ApplyShipped(r.Item, r.Txn, r.Value, r.CommitMicros) {
			return false
		}
		sh.dirty = true
		return true
	})
	for _, sh := range m.shards {
		sh.mu.Lock()
		sh.maybeFlush(ctx)
		sh.mu.Unlock()
	}
	m.shards[0].mu.Lock()
	m.shards[0].counters.ReplApplied += uint64(st.Applied)
	m.shards[0].counters.ReplSkipped += uint64(st.Skipped)
	if v.Reset {
		m.shards[0].counters.ReplResets++
	}
	m.shards[0].mu.Unlock()
	if st.Torn == 0 {
		m.puller.Advance(v.From, v.NextAfterSeq)
	}
	if v.More {
		ctx.Send(engine.QMAddr(v.From), model.ReplPullMsg{From: m.site, AfterSeq: m.puller.Mark(v.From)})
	}
}
