package main

import (
	"fmt"
	"strconv"
	"strings"

	"ucc/internal/model"
	"ucc/internal/placement"
	"ucc/internal/transport"
)

// parsePeers parses -peers and enforces the node invariant: exactly one
// address per site, index = site id.
func parsePeers(csv string, sites int) ([]string, error) {
	peers, err := transport.ParsePeerList(csv)
	if err != nil {
		return nil, fmt.Errorf("-peers: %w", err)
	}
	if len(peers) != sites {
		return nil, fmt.Errorf("-peers must list exactly %d addresses, got %d", sites, len(peers))
	}
	return peers, nil
}

// siteTopology builds the node's topology; clientAddr may be empty until a
// client connects inbound.
func siteTopology(peers []string, clientAddr string) transport.Topology {
	return transport.StandardTopology(peers, clientAddr)
}

// quorumFromFlags validates the -quorum-n/-w/-r triple against the node's
// replication factor and durability setting. All three zero means quorum
// mode is off (read-one/write-all); a partial triple is a config error, not
// a default — every process must agree on the quorum shape, so silence is
// the only safe fallback.
func quorumFromFlags(n, w, r, replicas int, durable bool) (*model.Quorum, error) {
	if n == 0 && w == 0 && r == 0 {
		return nil, nil
	}
	q := &model.Quorum{N: n, W: w, R: r}
	if err := q.Validate(replicas); err != nil {
		return nil, err
	}
	if !durable {
		return nil, fmt.Errorf("quorum replication requires -data-dir: a lagging replica catches up by streaming peers' WALs")
	}
	return q, nil
}

// placementFromFlag validates -placement the same way cluster.Config and
// ucc.Config do — every process must derive the identical epoch-0 map, so an
// unknown policy is fatal, never silently defaulted.
func placementFromFlag(s string) (placement.Policy, error) {
	p, err := placement.ParsePolicy(s)
	if err != nil {
		return "", fmt.Errorf("-placement: %w", err)
	}
	return p, nil
}

// parseItems parses a comma-separated item-id list (for -move-items).
func parseItems(csv string) ([]model.ItemID, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	var out []model.ItemID
	for _, part := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad item id %q", part)
		}
		out = append(out, model.ItemID(n))
	}
	return out, nil
}

// replPeersFor returns the sites this one pulls WAL records from: every
// other site holding a copy of an item this site also holds (ascending, for
// a deterministic pull order).
func replPeersFor(pm *model.PartitionMap, self model.SiteID) []model.SiteID {
	seen := map[model.SiteID]bool{}
	for item := 0; item < pm.Items(); item++ {
		reps := pm.Replicas(model.ItemID(item))
		mine := false
		for _, s := range reps {
			if s == self {
				mine = true
				break
			}
		}
		if !mine {
			continue
		}
		for _, s := range reps {
			if s != self {
				seen[s] = true
			}
		}
	}
	peers := make([]model.SiteID, 0, len(seen))
	for s := range seen {
		peers = append(peers, s)
	}
	for i := 1; i < len(peers); i++ {
		for j := i; j > 0 && peers[j] < peers[j-1]; j-- {
			peers[j], peers[j-1] = peers[j-1], peers[j]
		}
	}
	return peers
}
