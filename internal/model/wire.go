package model

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Wire format v3: every message type carries a stable one-byte tag and an
// explicit, hand-rolled field encoder — varint integers, IEEE-754 bits for
// floats, length-prefixed strings and slices, sorted map keys so encoding is
// deterministic. No reflection anywhere on the path, which is what lets the
// transport and the WAL encode and decode messages with zero steady-state
// allocations (see internal/wire for framing and buffer pooling).
//
// The tag values are part of the persistent wire contract: peers of different
// builds negotiate v3 against each other, so tags must NEVER be renumbered or
// reused — new message types append new tags.

// WireTag identifies a message type on the wire.
type WireTag byte

const (
	// TagInvalid is reserved so the zero byte never decodes as a message.
	TagInvalid WireTag = 0

	TagRequest       WireTag = 1
	TagFinalTS       WireTag = 2
	TagRelease       WireTag = 3
	TagAbort         WireTag = 4
	TagGrant         WireTag = 5
	TagNormalGrant   WireTag = 6
	TagReject        WireTag = 7
	TagBackoff       WireTag = 8
	TagBusy          WireTag = 9
	TagVictim        WireTag = 10
	TagSnapRead      WireTag = 11
	TagSnapReadReply WireTag = 12
	TagWFGReport     WireTag = 13
	TagProbeWFG      WireTag = 14
	TagSubmitTxn     WireTag = 15
	TagTxnDone       WireTag = 16
	TagQueueStats    WireTag = 17
	TagEstimate      WireTag = 18
	TagTick          WireTag = 19
	TagComputeDone   WireTag = 20
	TagRestart       WireTag = 21
	TagTxnFinished   WireTag = 22
	TagStop          WireTag = 23
	TagCrash         WireTag = 24
	TagRecover       WireTag = 25
	TagFlush         WireTag = 26
	TagReplPull      WireTag = 27
	TagReplRecords   WireTag = 28

	TagWrongEpoch      WireTag = 29
	TagMapInstall      WireTag = 30
	TagMapUpdate       WireTag = 31
	TagTransferPull    WireTag = 32
	TagTransferRecords WireTag = 33

	// TagLast is the highest assigned tag (corpus-coverage loops range over
	// TagRequest..TagLast). Update when appending a tag.
	TagLast = TagTransferRecords
)

// MessageTag returns the wire tag of a message; ok is false for message types
// that are not (yet) part of the wire contract. Implemented on top of
// AppendMessage — the one type switch in the encode direction — so a message
// type can never have a tag without an encoder or vice versa. Not for hot
// paths (it encodes the message to learn the tag); the hot paths only ever
// need AppendMessage itself.
func MessageTag(m Message) (WireTag, bool) {
	var scratch [1]byte
	b, err := AppendMessage(scratch[:0], m)
	if err != nil || len(b) == 0 {
		return TagInvalid, false
	}
	return WireTag(b[0]), true
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

// ErrWireTruncated reports a decode that ran off the end of its payload.
var ErrWireTruncated = errors.New("model: wire payload truncated")

// ErrWireCorrupt reports a structurally invalid payload (an element count
// larger than the bytes that could possibly back it, an over-long varint, a
// bool that is neither 0 nor 1).
var ErrWireCorrupt = errors.New("model: wire payload corrupt")

// ErrWireUnknownTag reports a message tag this build does not know.
var ErrWireUnknownTag = errors.New("model: unknown wire message tag")

// AppendUvarint appends v in unsigned LEB128.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendVarint appends v zig-zag encoded.
func AppendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// AppendWireBool appends a bool as one byte (0 or 1).
func AppendWireBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendWireF64 appends a float64 as its IEEE-754 bits, little-endian. Fixed
// width (not varint) so every bit pattern — including NaNs — round-trips to
// identical bytes.
func AppendWireF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendWireString appends a uvarint length prefix followed by the bytes.
func AppendWireString(b []byte, s string) []byte {
	b = AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// WireReader decodes the primitives with error latching: the first failure
// sticks, every later read returns zero values, and the caller checks Err()
// once at the end. That keeps per-field decode branch-free and makes
// truncated or corrupt payloads fail cleanly instead of panicking.
type WireReader struct {
	b   []byte
	err error
}

// NewWireReader wraps a payload for decoding.
func NewWireReader(b []byte) WireReader { return WireReader{b: b} }

// Err returns the first decode failure, or nil.
func (r *WireReader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *WireReader) Remaining() int { return len(r.b) }

func (r *WireReader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Byte decodes one byte.
func (r *WireReader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail(ErrWireTruncated)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

// Uvarint decodes an unsigned LEB128 integer, rejecting overlong encodings
// (a continuation group that contributes no bits, e.g. 0x80 0x00 for zero):
// like the bool rule below, each value has exactly one accepted encoding, so
// decode is injective and re-encoding a decoded payload reproduces its bytes.
func (r *WireReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		if n == 0 {
			r.fail(ErrWireTruncated)
		} else {
			r.fail(ErrWireCorrupt) // 64-bit overflow
		}
		return 0
	}
	if n > 1 && v>>(7*(n-1)) == 0 {
		r.fail(ErrWireCorrupt) // overlong: the last group was all padding
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Varint decodes a zig-zag integer (layered on Uvarint, so it inherits the
// overlong-encoding rejection).
func (r *WireReader) Varint() int64 {
	ux := r.Uvarint()
	return int64(ux>>1) ^ -int64(ux&1)
}

// Varint32 decodes a zig-zag integer that must fit in 32 bits (site ids,
// item ids, shard indexes). Out-of-range values are corrupt, not silently
// truncated — truncation would decode two distinct byte strings to the same
// message, breaking the one-encoding-per-message invariant.
func (r *WireReader) Varint32() int32 {
	v := r.Varint()
	if v < math.MinInt32 || v > math.MaxInt32 {
		r.fail(ErrWireCorrupt)
		return 0
	}
	return int32(v)
}

// Uvarint32 decodes an unsigned integer that must fit in 32 bits (attempt
// counters); see Varint32 for why overflow is corrupt.
func (r *WireReader) Uvarint32() uint32 {
	v := r.Uvarint()
	if v > math.MaxUint32 {
		r.fail(ErrWireCorrupt)
		return 0
	}
	return uint32(v)
}

// Bool decodes a one-byte bool, rejecting values other than 0 and 1 (so the
// canonical encoding is unique and re-encoding reproduces input bytes).
func (r *WireReader) Bool() bool {
	switch r.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(ErrWireCorrupt)
		return false
	}
}

// F64 decodes fixed-width IEEE-754 bits.
func (r *WireReader) F64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail(ErrWireTruncated)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

// String decodes a length-prefixed string.
func (r *WireReader) String() string {
	n := r.Count(1)
	if r.err != nil || n == 0 {
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// Bytes decodes a length-prefixed byte slice (zero length decodes to nil, the
// same value a nil slice encodes from, so the encoding stays canonical).
func (r *WireReader) Bytes() []byte {
	n := r.Count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[:n])
	r.b = r.b[n:]
	return out
}

// Count decodes a uvarint element count and validates it against the bytes
// actually remaining (each element needs at least elemMin bytes). An
// oversized length prefix — the classic decompression-bomb shape — therefore
// errors immediately instead of driving a giant allocation.
func (r *WireReader) Count(elemMin int) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if v > uint64(len(r.b)/elemMin) {
		r.fail(ErrWireCorrupt)
		return 0
	}
	return int(v)
}

// ---------------------------------------------------------------------------
// Shared sub-encoders
// ---------------------------------------------------------------------------

func appendTxnID(b []byte, id TxnID) []byte {
	b = AppendVarint(b, int64(id.Site))
	return AppendUvarint(b, id.Seq)
}

func (r *WireReader) txnID() TxnID {
	return TxnID{Site: SiteID(r.Varint32()), Seq: r.Uvarint()}
}

func appendCopyID(b []byte, c CopyID) []byte {
	b = AppendVarint(b, int64(c.Item))
	return AppendVarint(b, int64(c.Site))
}

func (r *WireReader) copyID() CopyID {
	return CopyID{Item: ItemID(r.Varint32()), Site: SiteID(r.Varint32())}
}

// appendHdr encodes the (Txn, Attempt, Copy) triple most protocol messages
// open with.
func appendHdr(b []byte, txn TxnID, at Attempt, c CopyID) []byte {
	b = appendTxnID(b, txn)
	b = AppendUvarint(b, uint64(at))
	return appendCopyID(b, c)
}

func (r *WireReader) hdr() (TxnID, Attempt, CopyID) {
	txn := r.txnID()
	at := Attempt(r.Uvarint32())
	return txn, at, r.copyID()
}

func appendItemU64Map(b []byte, m map[ItemID]uint64) []byte {
	keys := make([]ItemID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	b = AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = AppendVarint(b, int64(k))
		b = AppendUvarint(b, m[k])
	}
	return b
}

func (r *WireReader) itemU64Map() map[ItemID]uint64 {
	n := r.Count(2)
	if r.err != nil {
		return nil
	}
	m := make(map[ItemID]uint64, n)
	var prev ItemID
	for i := 0; i < n; i++ {
		k := ItemID(r.Varint32())
		if i > 0 && k <= prev {
			// Keys must be strictly ascending — the order the encoder emits.
			// Accepting any other order (or duplicates) would give one map
			// two byte encodings, breaking decode injectivity.
			r.fail(ErrWireCorrupt)
			return nil
		}
		prev = k
		m[k] = r.Uvarint()
	}
	return m
}

func appendItemF64Map(b []byte, m map[ItemID]float64) []byte {
	keys := make([]ItemID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	b = AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = AppendVarint(b, int64(k))
		b = AppendWireF64(b, m[k])
	}
	return b
}

func (r *WireReader) itemF64Map() map[ItemID]float64 {
	n := r.Count(9)
	if r.err != nil {
		return nil
	}
	m := make(map[ItemID]float64, n)
	var prev ItemID
	for i := 0; i < n; i++ {
		k := ItemID(r.Varint32())
		if i > 0 && k <= prev {
			r.fail(ErrWireCorrupt) // see itemU64Map: canonical key order only
			return nil
		}
		prev = k
		m[k] = r.F64()
	}
	return m
}

func appendItems(b []byte, items []ItemID) []byte {
	b = AppendUvarint(b, uint64(len(items)))
	for _, it := range items {
		b = AppendVarint(b, int64(it))
	}
	return b
}

func (r *WireReader) items() []ItemID {
	n := r.Count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]ItemID, n)
	for i := range out {
		out[i] = ItemID(r.Varint32())
	}
	return out
}

// ---------------------------------------------------------------------------
// Per-message encoders (the wire contract; field order is frozen per tag)
// ---------------------------------------------------------------------------

// AppendWire encodes the message body (no tag) onto b.
func (m RequestMsg) AppendWire(b []byte) []byte {
	b = appendHdr(b, m.Txn, m.Attempt, m.Copy)
	b = append(b, byte(m.Protocol), byte(m.Kind))
	b = AppendVarint(b, int64(m.TS))
	b = AppendVarint(b, int64(m.Interval))
	b = AppendVarint(b, int64(m.Site))
	return AppendUvarint(b, m.Epoch)
}

func decodeRequest(r *WireReader) (m RequestMsg) {
	m.Txn, m.Attempt, m.Copy = r.hdr()
	m.Protocol = Protocol(r.Byte())
	m.Kind = OpKind(r.Byte())
	m.TS = Timestamp(r.Varint())
	m.Interval = Timestamp(r.Varint())
	m.Site = SiteID(r.Varint32())
	m.Epoch = r.Uvarint()
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m FinalTSMsg) AppendWire(b []byte) []byte {
	b = appendHdr(b, m.Txn, m.Attempt, m.Copy)
	return AppendVarint(b, int64(m.TS))
}

func decodeFinalTS(r *WireReader) (m FinalTSMsg) {
	m.Txn, m.Attempt, m.Copy = r.hdr()
	m.TS = Timestamp(r.Varint())
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m ReleaseMsg) AppendWire(b []byte) []byte {
	b = appendHdr(b, m.Txn, m.Attempt, m.Copy)
	b = AppendWireBool(b, m.ToSemi)
	b = AppendWireBool(b, m.HasWrite)
	b = AppendVarint(b, m.Value)
	return AppendVarint(b, m.CommitMicros)
}

func decodeRelease(r *WireReader) (m ReleaseMsg) {
	m.Txn, m.Attempt, m.Copy = r.hdr()
	m.ToSemi = r.Bool()
	m.HasWrite = r.Bool()
	m.Value = r.Varint()
	m.CommitMicros = r.Varint()
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m AbortMsg) AppendWire(b []byte) []byte {
	return appendHdr(b, m.Txn, m.Attempt, m.Copy)
}

func decodeAbort(r *WireReader) (m AbortMsg) {
	m.Txn, m.Attempt, m.Copy = r.hdr()
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m GrantMsg) AppendWire(b []byte) []byte {
	b = appendHdr(b, m.Txn, m.Attempt, m.Copy)
	b = append(b, byte(m.Lock))
	b = AppendWireBool(b, m.PreScheduled)
	b = AppendVarint(b, int64(m.TS))
	b = AppendVarint(b, m.Value)
	b = AppendUvarint(b, m.Version)
	return AppendVarint(b, m.CommitMicros)
}

func decodeGrant(r *WireReader) (m GrantMsg) {
	m.Txn, m.Attempt, m.Copy = r.hdr()
	m.Lock = LockKind(r.Byte())
	m.PreScheduled = r.Bool()
	m.TS = Timestamp(r.Varint())
	m.Value = r.Varint()
	m.Version = r.Uvarint()
	m.CommitMicros = r.Varint()
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m NormalGrantMsg) AppendWire(b []byte) []byte {
	return appendHdr(b, m.Txn, m.Attempt, m.Copy)
}

func decodeNormalGrant(r *WireReader) (m NormalGrantMsg) {
	m.Txn, m.Attempt, m.Copy = r.hdr()
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m RejectMsg) AppendWire(b []byte) []byte {
	b = appendHdr(b, m.Txn, m.Attempt, m.Copy)
	return AppendVarint(b, int64(m.Threshold))
}

func decodeReject(r *WireReader) (m RejectMsg) {
	m.Txn, m.Attempt, m.Copy = r.hdr()
	m.Threshold = Timestamp(r.Varint())
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m BackoffMsg) AppendWire(b []byte) []byte {
	b = appendHdr(b, m.Txn, m.Attempt, m.Copy)
	return AppendVarint(b, int64(m.NewTS))
}

func decodeBackoff(r *WireReader) (m BackoffMsg) {
	m.Txn, m.Attempt, m.Copy = r.hdr()
	m.NewTS = Timestamp(r.Varint())
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m BusyMsg) AppendWire(b []byte) []byte {
	return appendHdr(b, m.Txn, m.Attempt, m.Copy)
}

func decodeBusy(r *WireReader) (m BusyMsg) {
	m.Txn, m.Attempt, m.Copy = r.hdr()
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m VictimMsg) AppendWire(b []byte) []byte {
	b = appendTxnID(b, m.Txn)
	b = AppendUvarint(b, uint64(m.Attempt))
	b = AppendUvarint(b, uint64(len(m.Cycle)))
	for _, t := range m.Cycle {
		b = appendTxnID(b, t)
	}
	return b
}

func decodeVictim(r *WireReader) (m VictimMsg) {
	m.Txn = r.txnID()
	m.Attempt = Attempt(r.Uvarint32())
	n := r.Count(2)
	if r.err != nil || n == 0 {
		return m
	}
	m.Cycle = make([]TxnID, n)
	for i := range m.Cycle {
		m.Cycle[i] = r.txnID()
	}
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m SnapReadMsg) AppendWire(b []byte) []byte {
	b = appendHdr(b, m.Txn, m.Attempt, m.Copy)
	b = AppendVarint(b, m.SnapMicros)
	b = AppendVarint(b, int64(m.Site))
	return AppendUvarint(b, m.Epoch)
}

func decodeSnapRead(r *WireReader) (m SnapReadMsg) {
	m.Txn, m.Attempt, m.Copy = r.hdr()
	m.SnapMicros = r.Varint()
	m.Site = SiteID(r.Varint32())
	m.Epoch = r.Uvarint()
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m SnapReadReplyMsg) AppendWire(b []byte) []byte {
	b = appendHdr(b, m.Txn, m.Attempt, m.Copy)
	b = AppendVarint(b, m.Value)
	b = AppendUvarint(b, m.Version)
	b = AppendVarint(b, m.CommitMicros)
	return AppendWireBool(b, m.Exact)
}

func decodeSnapReadReply(r *WireReader) (m SnapReadReplyMsg) {
	m.Txn, m.Attempt, m.Copy = r.hdr()
	m.Value = r.Varint()
	m.Version = r.Uvarint()
	m.CommitMicros = r.Varint()
	m.Exact = r.Bool()
	return m
}

func appendWaitEdge(b []byte, e WaitEdge) []byte {
	b = appendTxnID(b, e.Waiter)
	b = appendTxnID(b, e.Holder)
	b = AppendWireBool(b, e.Waiter2PL)
	b = AppendWireBool(b, e.Holder2PL)
	b = AppendVarint(b, int64(e.WaiterSite))
	b = AppendUvarint(b, uint64(e.WaiterSeq))
	b = appendCopyID(b, e.Copy)
	return AppendVarint(b, int64(e.WaiterIssuer))
}

func (r *WireReader) waitEdge() (e WaitEdge) {
	e.Waiter = r.txnID()
	e.Holder = r.txnID()
	e.Waiter2PL = r.Bool()
	e.Holder2PL = r.Bool()
	e.WaiterSite = SiteID(r.Varint32())
	e.WaiterSeq = Attempt(r.Uvarint32())
	e.Copy = r.copyID()
	e.WaiterIssuer = SiteID(r.Varint32())
	return e
}

// AppendWire encodes the message body (no tag) onto b.
func (m WFGReportMsg) AppendWire(b []byte) []byte {
	b = AppendVarint(b, int64(m.From))
	b = AppendUvarint(b, m.Round)
	b = AppendUvarint(b, uint64(len(m.Edges)))
	for _, e := range m.Edges {
		b = appendWaitEdge(b, e)
	}
	return b
}

func decodeWFGReport(r *WireReader) (m WFGReportMsg) {
	m.From = SiteID(r.Varint32())
	m.Round = r.Uvarint()
	n := r.Count(10)
	if r.err != nil || n == 0 {
		return m
	}
	m.Edges = make([]WaitEdge, n)
	for i := range m.Edges {
		m.Edges[i] = r.waitEdge()
	}
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m ProbeWFGMsg) AppendWire(b []byte) []byte { return AppendUvarint(b, m.Round) }

func decodeProbeWFG(r *WireReader) (m ProbeWFGMsg) {
	m.Round = r.Uvarint()
	return m
}

// AppendWire encodes the transaction body: identity, protocol, item sets,
// compute time, class label, and write specs.
func (t *Txn) AppendWire(b []byte) []byte {
	b = appendTxnID(b, t.ID)
	b = append(b, byte(t.Protocol))
	b = appendItems(b, t.ReadSet)
	b = appendItems(b, t.WriteSet)
	b = AppendVarint(b, t.ComputeMicros)
	b = AppendWireString(b, t.Class)
	b = AppendUvarint(b, uint64(len(t.Specs)))
	for _, s := range t.Specs {
		b = AppendVarint(b, int64(s.Item))
		b = AppendWireBool(b, s.UseSource)
		b = AppendVarint(b, int64(s.Source))
		b = AppendVarint(b, s.AddConst)
	}
	return b
}

func decodeTxn(r *WireReader) *Txn {
	t := &Txn{}
	t.ID = r.txnID()
	t.Protocol = Protocol(r.Byte())
	t.ReadSet = r.items()
	t.WriteSet = r.items()
	t.ComputeMicros = r.Varint()
	t.Class = r.String()
	n := r.Count(4)
	if r.err != nil {
		return t
	}
	if n > 0 {
		t.Specs = make([]WriteSpec, n)
		for i := range t.Specs {
			t.Specs[i].Item = ItemID(r.Varint32())
			t.Specs[i].UseSource = r.Bool()
			t.Specs[i].Source = ItemID(r.Varint32())
			t.Specs[i].AddConst = r.Varint()
		}
	}
	return t
}

// AppendWire encodes the message body (no tag) onto b. A nil Txn encodes a
// presence bit of 0 and decodes back to nil.
func (m SubmitTxnMsg) AppendWire(b []byte) []byte {
	if m.Txn == nil {
		return AppendWireBool(b, false)
	}
	b = AppendWireBool(b, true)
	return m.Txn.AppendWire(b)
}

func decodeSubmitTxn(r *WireReader) (m SubmitTxnMsg) {
	if !r.Bool() || r.err != nil {
		return m
	}
	m.Txn = decodeTxn(r)
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m TxnDoneMsg) AppendWire(b []byte) []byte {
	b = appendTxnID(b, m.Txn)
	b = append(b, byte(m.Protocol), byte(m.Outcome))
	b = AppendVarint(b, m.ArrivalMicros)
	b = AppendVarint(b, m.DoneMicros)
	b = AppendVarint(b, m.FirstArrivalMicros)
	b = AppendVarint(b, int64(m.Attempts))
	b = AppendVarint(b, int64(m.Size))
	b = AppendVarint(b, int64(m.Reads))
	b = AppendVarint(b, int64(m.Writes))
	b = AppendVarint(b, m.Messages)
	b = append(b, byte(m.RejectKind))
	b = AppendVarint(b, int64(m.BackoffReads))
	b = AppendVarint(b, int64(m.BackoffWrites))
	return AppendVarint(b, m.LockedMicros)
}

func decodeTxnDone(r *WireReader) (m TxnDoneMsg) {
	m.Txn = r.txnID()
	m.Protocol = Protocol(r.Byte())
	m.Outcome = TxnOutcome(r.Byte())
	m.ArrivalMicros = r.Varint()
	m.DoneMicros = r.Varint()
	m.FirstArrivalMicros = r.Varint()
	m.Attempts = int(r.Varint())
	m.Size = int(r.Varint())
	m.Reads = int(r.Varint())
	m.Writes = int(r.Varint())
	m.Messages = r.Varint()
	m.RejectKind = OpKind(r.Byte())
	m.BackoffReads = int(r.Varint())
	m.BackoffWrites = int(r.Varint())
	m.LockedMicros = r.Varint()
	return m
}

// AppendWire encodes the message body (no tag) onto b. Map entries are
// emitted in sorted key order so the encoding is canonical (re-encoding a
// decoded message reproduces the bytes exactly).
func (m QueueStatsMsg) AppendWire(b []byte) []byte {
	b = AppendVarint(b, int64(m.From))
	b = AppendVarint(b, m.AtMicros)
	b = appendItemU64Map(b, m.ReadGrants)
	return appendItemU64Map(b, m.WriteGrants)
}

func decodeQueueStats(r *WireReader) (m QueueStatsMsg) {
	m.From = SiteID(r.Varint32())
	m.AtMicros = r.Varint()
	m.ReadGrants = r.itemU64Map()
	m.WriteGrants = r.itemU64Map()
	return m
}

// AppendWire encodes the message body (no tag) onto b (sorted map keys, see
// QueueStatsMsg).
func (m EstimateMsg) AppendWire(b []byte) []byte {
	b = AppendVarint(b, m.AtMicros)
	b = appendItemF64Map(b, m.LambdaR)
	b = appendItemF64Map(b, m.LambdaW)
	b = AppendWireF64(b, m.LambdaA)
	b = AppendWireF64(b, m.Qr)
	b = AppendWireF64(b, m.K)
	for _, v := range m.U {
		b = AppendWireF64(b, v)
	}
	for _, v := range m.UPrime {
		b = AppendWireF64(b, v)
	}
	b = AppendWireF64(b, m.PAbort)
	b = AppendWireF64(b, m.Pr)
	b = AppendWireF64(b, m.PwR)
	b = AppendWireF64(b, m.PB)
	return AppendWireF64(b, m.PBW)
}

func decodeEstimate(r *WireReader) (m EstimateMsg) {
	m.AtMicros = r.Varint()
	m.LambdaR = r.itemF64Map()
	m.LambdaW = r.itemF64Map()
	m.LambdaA = r.F64()
	m.Qr = r.F64()
	m.K = r.F64()
	for i := range m.U {
		m.U[i] = r.F64()
	}
	for i := range m.UPrime {
		m.UPrime[i] = r.F64()
	}
	m.PAbort = r.F64()
	m.Pr = r.F64()
	m.PwR = r.F64()
	m.PB = r.F64()
	m.PBW = r.F64()
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m TickMsg) AppendWire(b []byte) []byte { return AppendUvarint(b, m.Tag) }

func decodeTick(r *WireReader) (m TickMsg) {
	m.Tag = r.Uvarint()
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m ComputeDoneMsg) AppendWire(b []byte) []byte {
	b = appendTxnID(b, m.Txn)
	return AppendUvarint(b, uint64(m.Attempt))
}

func decodeComputeDone(r *WireReader) (m ComputeDoneMsg) {
	m.Txn = r.txnID()
	m.Attempt = Attempt(r.Uvarint32())
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m RestartMsg) AppendWire(b []byte) []byte {
	b = appendTxnID(b, m.Txn)
	return AppendUvarint(b, uint64(m.Attempt))
}

func decodeRestart(r *WireReader) (m RestartMsg) {
	m.Txn = r.txnID()
	m.Attempt = Attempt(r.Uvarint32())
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m TxnFinishedMsg) AppendWire(b []byte) []byte { return appendTxnID(b, m.Txn) }

func decodeTxnFinished(r *WireReader) (m TxnFinishedMsg) {
	m.Txn = r.txnID()
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m StopMsg) AppendWire(b []byte) []byte { return b }

// AppendWire encodes the message body (no tag) onto b.
func (m CrashMsg) AppendWire(b []byte) []byte { return b }

// AppendWire encodes the message body (no tag) onto b.
func (m RecoverMsg) AppendWire(b []byte) []byte { return b }

// AppendWire encodes the message body (no tag) onto b.
func (m FlushMsg) AppendWire(b []byte) []byte { return AppendVarint(b, int64(m.Shard)) }

func decodeFlush(r *WireReader) (m FlushMsg) {
	m.Shard = r.Varint32()
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m ReplPullMsg) AppendWire(b []byte) []byte {
	b = AppendVarint(b, int64(m.From))
	return AppendUvarint(b, m.AfterSeq)
}

func decodeReplPull(r *WireReader) (m ReplPullMsg) {
	m.From = SiteID(r.Varint32())
	m.AfterSeq = r.Uvarint()
	return m
}

// AppendWire encodes the message body (no tag) onto b. Frames is opaque here:
// the record framing (and its own per-record checksums) is internal/wal's
// codec, carried length-prefixed like any byte string.
func (m ReplRecordsMsg) AppendWire(b []byte) []byte {
	b = AppendVarint(b, int64(m.From))
	b = AppendUvarint(b, uint64(len(m.Frames)))
	b = append(b, m.Frames...)
	b = AppendUvarint(b, m.NextAfterSeq)
	b = AppendWireBool(b, m.Reset)
	return AppendWireBool(b, m.More)
}

func decodeReplRecords(r *WireReader) (m ReplRecordsMsg) {
	m.From = SiteID(r.Varint32())
	m.Frames = r.Bytes()
	m.NextAfterSeq = r.Uvarint()
	m.Reset = r.Bool()
	m.More = r.Bool()
	return m
}

// appendPartitionMap encodes a partition map: epoch, item count, then each
// item's copy list (count + sites, primary first — the order is semantic, so
// no sorting here).
func appendPartitionMap(b []byte, pm PartitionMap) []byte {
	b = AppendUvarint(b, pm.Epoch)
	b = AppendUvarint(b, uint64(len(pm.Assignments)))
	for _, reps := range pm.Assignments {
		b = AppendUvarint(b, uint64(len(reps)))
		for _, s := range reps {
			b = AppendVarint(b, int64(s))
		}
	}
	return b
}

func (r *WireReader) partitionMap() (pm PartitionMap) {
	pm.Epoch = r.Uvarint()
	n := r.Count(1)
	if r.err != nil || n == 0 {
		return pm
	}
	pm.Assignments = make([][]SiteID, n)
	for i := range pm.Assignments {
		k := r.Count(1)
		if r.err != nil {
			return pm
		}
		reps := make([]SiteID, k)
		for j := range reps {
			reps[j] = SiteID(r.Varint32())
		}
		pm.Assignments[i] = reps
	}
	return pm
}

// AppendWire encodes the message body (no tag) onto b.
func (m WrongEpochMsg) AppendWire(b []byte) []byte {
	b = appendHdr(b, m.Txn, m.Attempt, m.Copy)
	return appendPartitionMap(b, m.Map)
}

func decodeWrongEpoch(r *WireReader) (m WrongEpochMsg) {
	m.Txn, m.Attempt, m.Copy = r.hdr()
	m.Map = r.partitionMap()
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m MapInstallMsg) AppendWire(b []byte) []byte { return appendPartitionMap(b, m.Map) }

func decodeMapInstall(r *WireReader) (m MapInstallMsg) {
	m.Map = r.partitionMap()
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m MapUpdateMsg) AppendWire(b []byte) []byte { return appendPartitionMap(b, m.Map) }

func decodeMapUpdate(r *WireReader) (m MapUpdateMsg) {
	m.Map = r.partitionMap()
	return m
}

// AppendWire encodes the message body (no tag) onto b.
func (m TransferPullMsg) AppendWire(b []byte) []byte {
	b = AppendVarint(b, int64(m.From))
	b = AppendUvarint(b, m.Epoch)
	return AppendUvarint(b, m.AfterSeq)
}

func decodeTransferPull(r *WireReader) (m TransferPullMsg) {
	m.From = SiteID(r.Varint32())
	m.Epoch = r.Uvarint()
	m.AfterSeq = r.Uvarint()
	return m
}

// AppendWire encodes the message body (no tag) onto b (Frames is the WAL's
// framed codec, opaque here — see ReplRecordsMsg).
func (m TransferRecordsMsg) AppendWire(b []byte) []byte {
	b = AppendVarint(b, int64(m.From))
	b = AppendUvarint(b, m.Epoch)
	b = AppendUvarint(b, uint64(len(m.Frames)))
	b = append(b, m.Frames...)
	b = AppendUvarint(b, m.NextAfterSeq)
	b = AppendWireBool(b, m.Reset)
	b = AppendWireBool(b, m.More)
	b = AppendWireBool(b, m.NotReady)
	return AppendWireBool(b, m.Done)
}

func decodeTransferRecords(r *WireReader) (m TransferRecordsMsg) {
	m.From = SiteID(r.Varint32())
	m.Epoch = r.Uvarint()
	m.Frames = r.Bytes()
	m.NextAfterSeq = r.Uvarint()
	m.Reset = r.Bool()
	m.More = r.Bool()
	m.NotReady = r.Bool()
	m.Done = r.Bool()
	return m
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

// AppendMessage appends tag + body. This switch is the single source of the
// type→tag mapping in the encode direction (MessageTag reads tags back out
// of it); each arm pairs one tag constant with that type's AppendWire, so a
// tag without an encoder cannot exist. Message types outside the wire
// contract return an error (the transport NAKs, counts, and drops them
// rather than wedging the writer).
func AppendMessage(b []byte, m Message) ([]byte, error) {
	switch v := m.(type) {
	case RequestMsg:
		return v.AppendWire(append(b, byte(TagRequest))), nil
	case FinalTSMsg:
		return v.AppendWire(append(b, byte(TagFinalTS))), nil
	case ReleaseMsg:
		return v.AppendWire(append(b, byte(TagRelease))), nil
	case AbortMsg:
		return v.AppendWire(append(b, byte(TagAbort))), nil
	case GrantMsg:
		return v.AppendWire(append(b, byte(TagGrant))), nil
	case NormalGrantMsg:
		return v.AppendWire(append(b, byte(TagNormalGrant))), nil
	case RejectMsg:
		return v.AppendWire(append(b, byte(TagReject))), nil
	case BackoffMsg:
		return v.AppendWire(append(b, byte(TagBackoff))), nil
	case BusyMsg:
		return v.AppendWire(append(b, byte(TagBusy))), nil
	case VictimMsg:
		return v.AppendWire(append(b, byte(TagVictim))), nil
	case SnapReadMsg:
		return v.AppendWire(append(b, byte(TagSnapRead))), nil
	case SnapReadReplyMsg:
		return v.AppendWire(append(b, byte(TagSnapReadReply))), nil
	// Pooled pointer forms (DecodeMessagePooled): same bytes as the value
	// arms above, so a pooled message re-encodes identically.
	case *RequestMsg:
		return v.AppendWire(append(b, byte(TagRequest))), nil
	case *FinalTSMsg:
		return v.AppendWire(append(b, byte(TagFinalTS))), nil
	case *ReleaseMsg:
		return v.AppendWire(append(b, byte(TagRelease))), nil
	case *AbortMsg:
		return v.AppendWire(append(b, byte(TagAbort))), nil
	case *GrantMsg:
		return v.AppendWire(append(b, byte(TagGrant))), nil
	case *NormalGrantMsg:
		return v.AppendWire(append(b, byte(TagNormalGrant))), nil
	case *RejectMsg:
		return v.AppendWire(append(b, byte(TagReject))), nil
	case *BackoffMsg:
		return v.AppendWire(append(b, byte(TagBackoff))), nil
	case *BusyMsg:
		return v.AppendWire(append(b, byte(TagBusy))), nil
	case *SnapReadMsg:
		return v.AppendWire(append(b, byte(TagSnapRead))), nil
	case *SnapReadReplyMsg:
		return v.AppendWire(append(b, byte(TagSnapReadReply))), nil
	case WFGReportMsg:
		return v.AppendWire(append(b, byte(TagWFGReport))), nil
	case ProbeWFGMsg:
		return v.AppendWire(append(b, byte(TagProbeWFG))), nil
	case SubmitTxnMsg:
		return v.AppendWire(append(b, byte(TagSubmitTxn))), nil
	case TxnDoneMsg:
		return v.AppendWire(append(b, byte(TagTxnDone))), nil
	case QueueStatsMsg:
		return v.AppendWire(append(b, byte(TagQueueStats))), nil
	case EstimateMsg:
		return v.AppendWire(append(b, byte(TagEstimate))), nil
	case TickMsg:
		return v.AppendWire(append(b, byte(TagTick))), nil
	case ComputeDoneMsg:
		return v.AppendWire(append(b, byte(TagComputeDone))), nil
	case RestartMsg:
		return v.AppendWire(append(b, byte(TagRestart))), nil
	case TxnFinishedMsg:
		return v.AppendWire(append(b, byte(TagTxnFinished))), nil
	case StopMsg:
		return v.AppendWire(append(b, byte(TagStop))), nil
	case CrashMsg:
		return v.AppendWire(append(b, byte(TagCrash))), nil
	case RecoverMsg:
		return v.AppendWire(append(b, byte(TagRecover))), nil
	case FlushMsg:
		return v.AppendWire(append(b, byte(TagFlush))), nil
	case ReplPullMsg:
		return v.AppendWire(append(b, byte(TagReplPull))), nil
	case ReplRecordsMsg:
		return v.AppendWire(append(b, byte(TagReplRecords))), nil
	case WrongEpochMsg:
		return v.AppendWire(append(b, byte(TagWrongEpoch))), nil
	case MapInstallMsg:
		return v.AppendWire(append(b, byte(TagMapInstall))), nil
	case MapUpdateMsg:
		return v.AppendWire(append(b, byte(TagMapUpdate))), nil
	case TransferPullMsg:
		return v.AppendWire(append(b, byte(TagTransferPull))), nil
	case TransferRecordsMsg:
		return v.AppendWire(append(b, byte(TagTransferRecords))), nil
	default:
		return b, fmt.Errorf("model: message %T has no wire encoder", m)
	}
}

// DecodeMessage decodes the body for tag from r. Unknown tags error cleanly
// (ErrWireUnknownTag) so a newer peer's message cannot misparse as garbage.
// The caller is responsible for checking r.Err() and for rejecting trailing
// bytes if the payload is supposed to be exactly one message.
func DecodeMessage(tag WireTag, r *WireReader) (Message, error) {
	var m Message
	switch tag {
	case TagRequest:
		m = decodeRequest(r)
	case TagFinalTS:
		m = decodeFinalTS(r)
	case TagRelease:
		m = decodeRelease(r)
	case TagAbort:
		m = decodeAbort(r)
	case TagGrant:
		m = decodeGrant(r)
	case TagNormalGrant:
		m = decodeNormalGrant(r)
	case TagReject:
		m = decodeReject(r)
	case TagBackoff:
		m = decodeBackoff(r)
	case TagBusy:
		m = decodeBusy(r)
	case TagVictim:
		m = decodeVictim(r)
	case TagSnapRead:
		m = decodeSnapRead(r)
	case TagSnapReadReply:
		m = decodeSnapReadReply(r)
	case TagWFGReport:
		m = decodeWFGReport(r)
	case TagProbeWFG:
		m = decodeProbeWFG(r)
	case TagSubmitTxn:
		m = decodeSubmitTxn(r)
	case TagTxnDone:
		m = decodeTxnDone(r)
	case TagQueueStats:
		m = decodeQueueStats(r)
	case TagEstimate:
		m = decodeEstimate(r)
	case TagTick:
		m = decodeTick(r)
	case TagComputeDone:
		m = decodeComputeDone(r)
	case TagRestart:
		m = decodeRestart(r)
	case TagTxnFinished:
		m = decodeTxnFinished(r)
	case TagStop:
		m = StopMsg{}
	case TagCrash:
		m = CrashMsg{}
	case TagRecover:
		m = RecoverMsg{}
	case TagFlush:
		m = decodeFlush(r)
	case TagReplPull:
		m = decodeReplPull(r)
	case TagReplRecords:
		m = decodeReplRecords(r)
	case TagWrongEpoch:
		m = decodeWrongEpoch(r)
	case TagMapInstall:
		m = decodeMapInstall(r)
	case TagMapUpdate:
		m = decodeMapUpdate(r)
	case TagTransferPull:
		m = decodeTransferPull(r)
	case TagTransferRecords:
		m = decodeTransferRecords(r)
	default:
		return nil, fmt.Errorf("%w: %d", ErrWireUnknownTag, tag)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return m, nil
}
