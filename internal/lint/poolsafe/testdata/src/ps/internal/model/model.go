// Package model is a miniature stand-in for ucc/internal/model's pooled
// decode surface; the analyzer recognises it by import-path suffix.
package model

// Message mirrors the real sealed message interface.
type Message interface{ isMessage() }

// WireTag identifies a message type on the wire.
type WireTag byte

// RequestMsg is a pooled hot type.
type RequestMsg struct{ Item string }

func (*RequestMsg) isMessage() {}

// DecodeMessagePooled mirrors the real pool-backed decoder.
func DecodeMessagePooled(tag WireTag) (Message, error) {
	return &RequestMsg{}, nil
}

// RecycleMessage mirrors the real pool return.
func RecycleMessage(m Message) {}
