// Package storage implements the per-site data store as a multi-version
// store: each physical copy D_ij keeps a short, bounded chain of committed
// versions, newest last, each stamped with its writer's commit point.
//
// The paper's model (§2) holds one versioned value per physical copy; the
// chain is a strictly additive extension. The lock-protected read/write path
// (Read, Write) still sees exactly the newest committed state — the unified
// 2PL/T/O/PA machinery is unchanged — while ReadAt serves the read-only
// snapshot fast path: the newest version whose commit stamp is at or below a
// snapshot timestamp. Because a writer stamps every version it installs (at
// every copy, at every site) with one commit point, version selection by
// stamp is all-or-nothing per transaction, which is what makes a snapshot a
// consistent cut.
//
// Chains are bounded by a ChainPolicy with two rules: a watermark (a version
// may be pruned only once a newer version is KeepMicros old, so every
// snapshot read within the staleness window finds its exact version) and a
// hard cap (MaxVersions, memory safety; a read older than the capped chain
// is served the oldest version and reported inexact).
//
// The paper's per-item operation log lives in internal/history (it is an
// observability/correctness artifact); this package holds the state that
// grants and releases read and write. The Journal hook reports every
// implemented write — with its version ordinal and commit stamp — to the
// durability subsystem (internal/wal) before Write returns, and the
// recovery-path installs (Restore, RestoreChain, Apply) bypass it.
package storage
