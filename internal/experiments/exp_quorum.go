package experiments

import (
	"fmt"

	"ucc/internal/cluster"
	"ucc/internal/deadlock"
	"ucc/internal/engine"
	"ucc/internal/metrics"
	"ucc/internal/model"
	"ucc/internal/ri"
	"ucc/internal/workload"
)

// Exp14Point is one outage length's measured outcome, exposed for the gate
// test so the acceptance thresholds read numbers, not rendered table cells.
type Exp14Point struct {
	OutageUs      int64 // -1 = no crash (baseline)
	PreRate       float64
	OutageRate    float64 // commits/sec while the site was down (pre-crash rate for baseline)
	Committed     uint64
	Serializable  bool
	ReplicasAgree bool
	ReplApplied   uint64
	PartialRounds uint64
	DeadSiteMarks int // peers whose watermark advanced on the recovered site
}

// QuorumFailoverSweep runs the N=3/W=2/R=2 kill-one-site experiment across
// outage lengths and returns the raw points. Virtual-time deterministic.
func QuorumFailoverSweep(cfg RunConfig, outages []int64) []Exp14Point {
	horizon := int64(6_000_000)
	crashAt := int64(2_000_000)
	if cfg.Quick {
		horizon = 3_000_000
		crashAt = 1_000_000
	}

	var points []Exp14Point
	for _, outage := range outages {
		cl, err := cluster.NewSim(cluster.Config{
			Sites:    3,
			Items:    24,
			Replicas: 3,
			Seed:     cfg.Seed,
			Record:   true,
			Latency:  engine.UniformLatency{MinMicros: 1_000, MaxMicros: 5_000, LocalMicros: 50},
			RI: ri.Options{
				PAIntervalMicros:     2_000,
				RestartDelayMicros:   20_000,
				DefaultComputeMicros: 1_000,
			},
			Detector:   deadlock.Options{PeriodMicros: 50_000, PersistRounds: 2},
			Durability: &cluster.Durability{SnapshotEvery: 200},
			Quorum:     &model.Quorum{N: 3, W: 2, R: 2},
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		for i := 0; i < 3; i++ {
			if err := cl.AddDriver(model.SiteID(i), workload.Spec{
				ArrivalPerSec: 25,
				HorizonMicros: horizon,
				Items:         24,
				Size:          3,
				ReadFrac:      0.4,
				Share2PL:      1, ShareTO: 1, SharePA: 1,
				ComputeMicros: 1_000,
			}); err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
		}

		recoverAt := crashAt + outage
		if outage >= 0 {
			cl.CrashSite(1, crashAt)
			cl.RecoverSite(1, recoverAt)
		}

		// Windowed commit counts: the dip is a rate comparison between the
		// pre-crash window and the outage window, not an end-of-run total.
		cl.Start()
		cl.Eng.RunUntil(crashAt)
		preCrash := cl.RITotals().Committed
		var during uint64
		outageWindow := outage
		if outage > 0 {
			cl.Eng.RunUntil(recoverAt)
			during = cl.RITotals().Committed - preCrash
		} else {
			// Baseline (or zero-length outage): measure the same-width window
			// so the rates stay comparable.
			outageWindow = crashAt
			cl.Eng.RunUntil(2 * crashAt)
			during = cl.RITotals().Committed - preCrash
		}
		cl.Eng.RunUntil(horizon)
		res := cl.Finish()

		agree := true
		for item := 0; item < 24 && agree; item++ {
			vals := cl.ReplicaValues(model.ItemID(item))
			if len(vals) != 3 {
				agree = false
			}
			for i := 1; i < len(vals); i++ {
				if vals[i] != vals[0] {
					agree = false
				}
			}
		}
		marks := 0
		if outage >= 0 {
			for _, seq := range cl.ReplWatermarks()[1] {
				if seq > 0 {
					marks++
				}
			}
		}
		points = append(points, Exp14Point{
			OutageUs:      outage,
			PreRate:       float64(preCrash) / (float64(crashAt) / 1e6),
			OutageRate:    float64(during) / (float64(outageWindow) / 1e6),
			Committed:     res.Summary.TotalCommitted(),
			Serializable:  res.Serializability != nil && res.Serializability.Serializable,
			ReplicasAgree: agree,
			ReplApplied:   cl.QMTotals().ReplApplied,
			PartialRounds: cl.Detector.Snapshot().PartialRounds,
			DeadSiteMarks: marks,
		})
	}
	return points
}

// Exp14 measures quorum replication under a dead site, beyond the paper's
// write-all failure-free model: with per-partition Quorum{3,2,2}, killing one
// of three full replicas mid-run must leave the surviving pair forming every
// read and write quorum — committed throughput dips but never stalls — and
// after recovery the dead site converges by streaming its peers' WALs, not by
// replaying writes it never accepted.
func Exp14(cfg RunConfig) Result {
	outages := []int64{-1, 200_000, 500_000, 1_000_000, 2_000_000}
	if cfg.Quick {
		outages = []int64{-1, 500_000, 1_000_000}
	}
	points := QuorumFailoverSweep(cfg, outages)

	dipTable := &metrics.Table{Header: []string{
		"outage (ms)", "pre-crash txn/s", "outage txn/s", "retained", "committed", "serializable", "replicas agree",
	}}
	catchupTable := &metrics.Table{Header: []string{
		"outage (ms)", "shipped recs applied", "detector partial rounds", "dead-site marks advanced",
	}}
	var notes []string
	for _, p := range points {
		label := "none"
		if p.OutageUs >= 0 {
			label = fmt.Sprintf("%.0f", float64(p.OutageUs)/1000)
		}
		retained := "-"
		if p.PreRate > 0 {
			retained = fmt.Sprintf("%.0f%%", 100*p.OutageRate/p.PreRate)
		}
		dipTable.AddRow(label,
			metrics.F(p.PreRate), metrics.F(p.OutageRate), retained,
			fmt.Sprint(p.Committed), yesNo(p.Serializable), yesNo(p.ReplicasAgree))
		catchupTable.AddRow(label,
			fmt.Sprint(p.ReplApplied), fmt.Sprint(p.PartialRounds), fmt.Sprint(p.DeadSiteMarks))
		if !p.Serializable || !p.ReplicasAgree {
			notes = append(notes, fmt.Sprintf("VIOLATION at outage %s ms", label))
		}
	}

	notes = append(notes,
		"outage 'none' is the all-up quorum baseline; its outage column is the same-width second window",
		"retained = outage-window rate / pre-crash rate: the bounded-dip claim is that this never goes to zero",
		"shipped recs applied counts WAL records replayed through log-shipping catch-up (laggard third copies converge even with all sites up)",
		"detector partial rounds: deadlock probe rounds analyzed without the dead site's report — 2PL cycles among survivors are still broken mid-outage")
	return Result{
		ID:     "EXP-14",
		Title:  "Quorum replication survives a dead site",
		Claim:  "beyond the paper: with per-partition Quorum{N:3,W:2,R:2}, one dead site leaves every quorum formable — committed throughput keeps a bounded dip instead of stalling, every execution stays conflict serializable, and the dead site converges after recovery via WAL log shipping from its peers",
		Tables: []*metrics.Table{dipTable, catchupTable},
		Notes:  notes,
	}
}
