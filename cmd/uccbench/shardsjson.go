// BENCH_shards.json generation: the EXP-11 shard sweep as a machine-readable
// artifact, refreshed by the bench-gate CI job on every PR so shard-scaling
// numbers from real multi-core runners accumulate next to the code.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"ucc/internal/experiments"
)

type shardsReport struct {
	Recorded   string      `json:"recorded"`
	Command    string      `json:"command"`
	Host       shardsHost  `json:"host"`
	Workers    int         `json:"workers"`
	TxnsPerRun uint64      `json:"txns_per_run"`
	Rows       []shardsRow `json:"rows"`
	Note       string      `json:"note"`
}

type shardsHost struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Go         string `json:"go"`
}

type shardsRow struct {
	Shards         int     `json:"shards"`
	UniformTxnPerS float64 `json:"uniform_txn_per_s"`
	UniformSpeedup float64 `json:"uniform_speedup"`
	HotTxnPerS     float64 `json:"hot_shard_txn_per_s"`
	HotSpeedup     float64 `json:"hot_shard_speedup"`
	Serializable   bool    `json:"serializable"`
}

// writeShardsJSON runs the wall-clock shard sweep and writes the report.
func writeShardsJSON(path string, seed int64) error {
	const workers, txns = 4, 3000
	sweep := []int{1, 2, 4, 8}
	rep := shardsReport{
		Recorded: time.Now().UTC().Format("2006-01-02"),
		Command:  fmt.Sprintf("go run ./cmd/uccbench -shards-json %s", path),
		Host: shardsHost{
			GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
			NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
			Go: runtime.Version(),
		},
		Workers:    workers,
		TxnsPerRun: uint64(workers * txns),
		Note: "wall-clock harness (see internal/experiments ShardThroughput): " +
			"uniform items hash across shards; hot-shard restricts all traffic to shard 0's items. " +
			"Speedups are relative to shards=1 on the same host and need cores ≥ shards.",
	}
	// Median of three runs per cell: wall-clock throughput on shared
	// runners is noisy, and a single outlier run should not be what gets
	// checked in next to the code.
	measure := func(shards int, hot bool, seed int64) (float64, bool) {
		thr := make([]float64, 0, 3)
		ser := true
		for r := 0; r < 3; r++ {
			res := experiments.ShardThroughput(shards, workers, txns, hot, seed+int64(r)*101)
			thr = append(thr, res.Throughput)
			ser = ser && res.Serializable
		}
		sort.Float64s(thr)
		return thr[1], ser
	}
	var baseUniform, baseHot float64
	for _, s := range sweep {
		u, uSer := measure(s, false, seed)
		h, hSer := measure(s, true, seed+7)
		if s == sweep[0] {
			baseUniform, baseHot = u, h
		}
		rep.Rows = append(rep.Rows, shardsRow{
			Shards:         s,
			UniformTxnPerS: round1(u),
			UniformSpeedup: round3(u / baseUniform),
			HotTxnPerS:     round1(h),
			HotSpeedup:     round3(h / baseHot),
			Serializable:   uSer && hSer,
		})
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func round1(v float64) float64 { return float64(int64(v*10+0.5)) / 10 }
func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }
