// Inventory: order processing against a skewed catalog — the workload shape
// the paper's introduction motivates for dynamic concurrency control.
//
// A few "hot" SKUs absorb most of the traffic (flash-sale items), the rest
// form a cold tail. Small write-heavy order transactions compete with large
// read-mostly restock-report transactions. The example runs the same stream
// three times — statically under each protocol — and once with the paper's
// min-STL dynamic selection, then compares mean system time S.
package main

import (
	"fmt"
	"time"

	"ucc"
)

func run(name string, dynamic bool, mix ucc.Mix) {
	c, err := ucc.New(ucc.Config{
		Sites:             4,
		Items:             40,
		Seed:              5,
		DynamicSelection:  dynamic,
		SelectionFallback: ucc.PA,
	})
	if err != nil {
		panic(err)
	}
	// 80% of accesses hit the 5 hot SKUs.
	err = c.Workload(ucc.Workload{
		Rate:     30,
		Duration: 3 * time.Second,
		Size:     3,
		ReadFrac: 0.4, // order-heavy: decrement stock, append to ledger
		Mix:      mix,
		Hotspot:  5,
		Compute:  800 * time.Microsecond,
	})
	if err != nil {
		panic(err)
	}
	res := c.Run()
	line := fmt.Sprintf("%-12s S=%-10v commits=%-5d serializable=%v",
		name, res.MeanSystemTime().Round(100*time.Microsecond), res.Committed(), res.Serializable())
	if dynamic {
		n2, nt, np := res.Decisions()
		line += fmt.Sprintf("  (selector chose 2PL:%d T/O:%d PA:%d)", n2, nt, np)
	}
	fmt.Println(line)
}

func main() {
	fmt.Println("flash-sale inventory workload (5 hot SKUs out of 40, write-heavy):")
	run("static 2PL", false, ucc.Mix{TwoPL: 1})
	run("static T/O", false, ucc.Mix{TO: 1})
	run("static PA", false, ucc.Mix{PA: 1})
	run("dynamic", true, ucc.Mix{PA: 1}) // preset ignored; selector decides
}
