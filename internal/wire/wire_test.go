package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"ucc/internal/engine"
	"ucc/internal/model"
)

// TestRoundTripCorpus: every corpus envelope (which covers every wire-
// contract message type) must decode back exactly equal, and re-encoding the
// decoded envelope must reproduce the identical bytes (canonical encoding).
func TestRoundTripCorpus(t *testing.T) {
	for i, env := range Corpus() {
		payload, err := AppendEnvelope(nil, env)
		if err != nil {
			t.Fatalf("envelope %d (%T): encode: %v", i, env.Msg, err)
		}
		got, err := DecodeEnvelope(payload)
		if err != nil {
			t.Fatalf("envelope %d (%T): decode: %v", i, env.Msg, err)
		}
		if !reflect.DeepEqual(env, got) {
			t.Fatalf("envelope %d (%T): round trip mismatch:\n in: %+v\nout: %+v", i, env.Msg, env, got)
		}
		re, err := AppendEnvelope(nil, got)
		if err != nil {
			t.Fatalf("envelope %d (%T): re-encode: %v", i, env.Msg, err)
		}
		if !bytes.Equal(payload, re) {
			t.Fatalf("envelope %d (%T): re-encode differs from original bytes", i, env.Msg)
		}
	}
}

// TestCorpusCoversEveryTag guards the corpus itself: a message type added to
// the wire contract without a corpus entry would silently escape the round-
// trip, fuzz-seed, and benchmark coverage.
func TestCorpusCoversEveryTag(t *testing.T) {
	seen := map[model.WireTag]bool{}
	for _, env := range Corpus() {
		tag, ok := model.MessageTag(env.Msg)
		if !ok {
			t.Fatalf("corpus message %T has no wire tag", env.Msg)
		}
		seen[tag] = true
	}
	for tag := model.TagRequest; tag <= model.TagLast; tag++ {
		if !seen[tag] {
			t.Errorf("no corpus envelope carries tag %d", tag)
		}
	}
}

// TestDecodeTruncated: every strict prefix of every valid payload must error
// cleanly — no panic, no success on partial data.
func TestDecodeTruncated(t *testing.T) {
	for i, env := range Corpus() {
		payload, err := AppendEnvelope(nil, env)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(payload); cut++ {
			if _, err := DecodeEnvelope(payload[:cut]); err == nil {
				t.Fatalf("envelope %d (%T): decode of %d/%d-byte prefix succeeded", i, env.Msg, cut, len(payload))
			}
		}
	}
}

// TestDecodeTrailingBytes: extra bytes after a valid message are an error,
// not silently ignored — a frame is exactly one message.
func TestDecodeTrailingBytes(t *testing.T) {
	payload, err := AppendEnvelope(nil, Corpus()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeEnvelope(append(payload, 0)); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("trailing byte: got %v, want ErrTrailingBytes", err)
	}
}

// TestDecodeUnknownTag: a tag from a future build errors with
// ErrWireUnknownTag instead of misparsing.
func TestDecodeUnknownTag(t *testing.T) {
	b := []byte{0, 2, 0, 1, 4, 0, 200} // addresses + tag 200
	if _, err := DecodeEnvelope(b); !errors.Is(err, model.ErrWireUnknownTag) {
		t.Fatalf("unknown tag: got %v, want ErrWireUnknownTag", err)
	}
	if _, err := DecodeEnvelope([]byte{0, 2, 0, 1, 4, 0, 0}); !errors.Is(err, model.ErrWireUnknownTag) {
		t.Fatalf("tag 0 must be invalid: got %v", err)
	}
}

// TestOversizedElementCounts: a length prefix claiming more elements than
// the payload could possibly back must error immediately (no giant
// allocation, no hang). Construct a WFG report whose edge count is huge.
func TestOversizedElementCounts(t *testing.T) {
	b := []byte{0, 4, 0, 1, 4, 0, byte(model.TagWFGReport)}
	b = model.AppendVarint(b, 2)      // From
	b = model.AppendUvarint(b, 1)     // Round
	b = model.AppendUvarint(b, 1<<40) // Edges count: absurd
	if _, err := DecodeEnvelope(b); !errors.Is(err, model.ErrWireCorrupt) {
		t.Fatalf("oversized edge count: got %v, want ErrWireCorrupt", err)
	}

	// Same for a string length (Txn.Class) far past the payload end.
	b = []byte{8, 2, 0, 1, 4, 0, byte(model.TagSubmitTxn), 1}
	b = model.AppendVarint(b, 1)      // ID.Site
	b = model.AppendUvarint(b, 9)     // ID.Seq
	b = append(b, 0)                  // Protocol
	b = model.AppendUvarint(b, 0)     // ReadSet
	b = model.AppendUvarint(b, 0)     // WriteSet
	b = model.AppendVarint(b, 100)    // ComputeMicros
	b = model.AppendUvarint(b, 1<<50) // Class length: absurd
	if _, err := DecodeEnvelope(b); !errors.Is(err, model.ErrWireCorrupt) {
		t.Fatalf("oversized string length: got %v, want ErrWireCorrupt", err)
	}
}

// TestFrameTooLarge: a stream whose frame header claims more than
// MaxFrameBytes is abandoned with ErrFrameTooLarge before any allocation.
func TestFrameTooLarge(t *testing.T) {
	var b []byte
	b = binary.AppendUvarint(b, MaxFrameBytes+1)
	r := NewReader(bufio.NewReader(bytes.NewReader(b)))
	defer r.Release()
	if _, _, err := r.ReadEnvelope(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}
}

// TestFrameTornMidPayload: a stream that ends anywhere inside a frame —
// length prefix or payload — must error (never a clean io.EOF, never a
// hang); io.EOF is reserved for exact frame boundaries.
func TestFrameTornMidPayload(t *testing.T) {
	frame, err := EncodeEnvelope(Corpus()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ReleaseFrame(frame)
	for cut := 1; cut < len(frame); cut++ {
		r := NewReader(bufio.NewReader(bytes.NewReader(frame[:cut])))
		_, _, err := r.ReadEnvelope()
		r.Release()
		if err == nil {
			t.Fatalf("torn frame at %d/%d bytes decoded successfully", cut, len(frame))
		}
		if err == io.EOF {
			t.Fatalf("torn frame at %d/%d bytes reported a clean EOF", cut, len(frame))
		}
	}
	// A stream that dies inside a multi-byte length prefix is torn too.
	r := NewReader(bufio.NewReader(bytes.NewReader([]byte{0x80})))
	defer r.Release()
	if _, _, err := r.ReadEnvelope(); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn length prefix: got %v, want ErrUnexpectedEOF", err)
	}
}

// TestWriterReaderStream: many envelopes through one Writer/Reader pair over
// a single buffered stream, interleaved with flushes, all arrive in order.
func TestWriterReaderStream(t *testing.T) {
	corpus := Corpus()
	var sink bytes.Buffer
	bw := bufio.NewWriter(&sink)
	w := NewWriter(bw)
	defer w.Release()
	for _, env := range corpus {
		if _, err := w.WriteEnvelope(env); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bufio.NewReader(&sink))
	defer r.Release()
	for i, want := range corpus {
		got, _, err := r.ReadEnvelope()
		if err != nil {
			t.Fatalf("envelope %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("envelope %d mismatch:\n in: %+v\nout: %+v", i, want, got)
		}
	}
	if _, _, err := r.ReadEnvelope(); err != io.EOF {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}
}

// TestEncodeUnknownMessageType: an envelope carrying a message outside the
// wire contract errors instead of emitting a bogus frame.
func TestEncodeUnknownMessageType(t *testing.T) {
	type rogueMsg struct{ model.StopMsg }
	env := engine.Envelope{Msg: rogueMsg{}}
	if _, err := AppendEnvelope(nil, env); err == nil {
		t.Fatal("encoding a non-contract message type succeeded")
	}
}

// TestVerify exercises the self-check used by uccbench -wire-json.
func TestVerify(t *testing.T) {
	if err := Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeSteadyStateAllocs: after warm-up, encoding through a Writer must
// not allocate at all.
func TestEncodeSteadyStateAllocs(t *testing.T) {
	corpus := Corpus()
	var sink bytes.Buffer
	bw := bufio.NewWriter(&sink)
	w := NewWriter(bw)
	defer w.Release()
	// Only the fixed-shape hot-path messages: map-carrying control messages
	// legitimately allocate their sorted-key scratch.
	hot := corpus[:0:0]
	for _, env := range corpus {
		switch env.Msg.(type) {
		case model.QueueStatsMsg, model.EstimateMsg, model.SubmitTxnMsg:
		default:
			hot = append(hot, env)
		}
	}
	run := func() {
		sink.Reset()
		bw.Reset(&sink)
		for _, env := range hot {
			if _, err := w.WriteEnvelope(env); err != nil {
				t.Fatal(err)
			}
		}
		bw.Flush()
	}
	run() // warm the scratch buffer
	if allocs := testing.AllocsPerRun(50, run); allocs > 0 {
		t.Fatalf("steady-state encode allocates %.1f allocs per corpus pass, want 0", allocs)
	}
}
