package lockorder_test

import (
	"testing"

	"ucc/internal/lint/linttest"
	"ucc/internal/lint/lockorder"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, "testdata", "lk")
}
