// Package wire is the v3 binary codec for everything the cluster exchanges:
// a hand-rolled, length-prefixed framing of engine.Envelope over the
// per-message field encoders in internal/model (stable one-byte tags, varint
// integers, no reflection anywhere on the path).
//
// # Frame layout
//
// A v3 stream is a sequence of frames, each:
//
//	uvarint payloadLen | payload
//
// where payload is:
//
//	fromKind(1) fromID(varint) fromShard(1)
//	toKind(1)   toID(varint)   toShard(1)
//	msgTag(1)   msgBody…
//
// payloadLen is capped at MaxFrameBytes; a reader that sees a larger prefix
// abandons the stream instead of allocating for it, and a payload that
// decodes short, long, or to an unknown tag errors cleanly — truncated or
// hostile input can never panic or hang the read loop (see the hardening and
// fuzz tests).
//
// # Pooling lifecycle
//
// The codec is allocation-free at steady state for the fixed-shape hot-path
// messages (the request/grant/release cycle that dominates traffic); the
// rare map- or Txn-carrying control messages allocate their sorted-key
// scratch per encode. A Writer owns one scratch
// buffer, drawn from a package pool at construction and returned by Release
// when its connection retires; every WriteEnvelope encodes into that scratch
// and copies it to the underlying buffered writer, so the per-message cost is
// pure byte appends. A Reader likewise owns one payload buffer that grows to
// the largest frame seen and is reused for every subsequent frame. Decoded
// messages are built on the stack by the model decoders; the one residual
// allocation per message is boxing the struct into the model.Message
// interface as it enters the runtime (plus the payload-owned slices of the
// rare control-plane messages that carry them).
//
// Version negotiation against older gob-speaking peers lives in
// internal/transport; the WAL reuses the same model primitives for its
// record payloads.
package wire
