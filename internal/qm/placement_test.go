package qm

import (
	"testing"

	"ucc/internal/engine"
	"ucc/internal/model"
	"ucc/internal/storage"
	"ucc/internal/wal"
)

// pmapManager builds a single-site manager whose store holds exactly the
// given items (the site's copies under the initial map), volatile, no
// recorder.
func pmapManager(items ...model.ItemID) *Manager {
	st := storage.NewStore(0)
	for _, it := range items {
		st.Create(it, 100)
	}
	return New(0, st, nil, Options{InitialValue: 100})
}

// TestRequestWrongEpochNAK pins the request-path refusal: a request routed to
// a site the installed map says does not own the copy is answered with a
// WrongEpochMsg carrying that map — even though (as here) a legacy queue for
// the item still exists.
func TestRequestWrongEpochNAK(t *testing.T) {
	m, _ := testManager(4, true)
	m.SetPartitionMap(&model.PartitionMap{
		Epoch:       1,
		Assignments: [][]model.SiteID{{0}, {0}, {1}, {1}},
	})
	ctx := newFakeCtx()

	// Owned item: normal grant, no NAK.
	m.OnMessage(ctx, engine.RIAddr(1), req(1, model.TwoPL, model.OpRead, 0, model.NoTimestamp))
	if g := take[model.GrantMsg](ctx); len(g) != 1 {
		t.Fatalf("owned item: grants=%d want 1", len(g))
	}

	// Disowned item: NAK with the installed map attached, nothing granted.
	m.OnMessage(ctx, engine.RIAddr(1), req(2, model.TwoPL, model.OpWrite, 2, model.NoTimestamp))
	naks := take[model.WrongEpochMsg](ctx)
	if len(naks) != 1 {
		t.Fatalf("naks=%d want 1", len(naks))
	}
	if naks[0].Map.Epoch != 1 || naks[0].Map.Primary(2) != 1 {
		t.Fatalf("NAK map = %+v, want the installed epoch-1 map", naks[0].Map)
	}
	if g := take[model.GrantMsg](ctx); len(g) != 0 {
		t.Fatalf("disowned item granted: %+v", g)
	}
	if c := m.Snapshot(); c.WrongEpoch != 1 {
		t.Fatalf("WrongEpoch counter = %d want 1", c.WrongEpoch)
	}
}

// TestSnapReadWrongEpochNAK pins the same refusal on the read-only snapshot
// path.
func TestSnapReadWrongEpochNAK(t *testing.T) {
	m, _ := testManager(2, true)
	m.SetPartitionMap(&model.PartitionMap{
		Epoch:       3,
		Assignments: [][]model.SiteID{{0}, {1}},
	})
	ctx := newFakeCtx()
	m.OnMessage(ctx, engine.RIAddr(1), model.SnapReadMsg{
		Txn:  model.TxnID{Site: 1, Seq: 7},
		Copy: model.CopyID{Item: 1, Site: 0},
		Site: 1,
	})
	naks := take[model.WrongEpochMsg](ctx)
	if len(naks) != 1 || naks[0].Map.Epoch != 3 {
		t.Fatalf("naks=%+v want one with the epoch-3 map", naks)
	}
}

// TestCompleterWrongEpochNAK pins the completer-path refusal: after an
// ownership flip drains an item away, a Release or Abort for it (from a
// transaction that straddled the flip) gets the wrong-epoch NAK instead of
// silently vanishing or panicking.
func TestCompleterWrongEpochNAK(t *testing.T) {
	m := pmapManager(0, 1)
	m.SetPartitionMap(&model.PartitionMap{
		Epoch:       1,
		Assignments: [][]model.SiteID{{0}, {0}},
	})
	ctx := newFakeCtx()

	// Epoch 2 moves item 1 to site 1; its queue is empty, so it deletes
	// immediately.
	m.OnMessage(ctx, ctx.self, model.MapInstallMsg{Map: model.PartitionMap{
		Epoch:       2,
		Assignments: [][]model.SiteID{{0}, {1}},
	}})
	if c := m.Snapshot(); c.MapInstalls != 1 {
		t.Fatalf("MapInstalls = %d want 1", c.MapInstalls)
	}

	m.OnMessage(ctx, engine.RIAddr(1), release(9, 1, true, 42))
	naks := take[model.WrongEpochMsg](ctx)
	if len(naks) != 1 || naks[0].Map.Epoch != 2 {
		t.Fatalf("release naks=%+v want one with the epoch-2 map", naks)
	}

	m.OnMessage(ctx, engine.RIAddr(1), model.AbortMsg{
		Txn:  model.TxnID{Site: 1, Seq: 10},
		Copy: model.CopyID{Item: 1, Site: 0},
	})
	naks = take[model.WrongEpochMsg](ctx)
	if len(naks) != 1 || naks[0].Map.Epoch != 2 {
		t.Fatalf("abort naks=%+v want one with the epoch-2 map", naks)
	}
	if c := m.Snapshot(); c.WrongEpoch != 2 {
		t.Fatalf("WrongEpoch counter = %d want 2", c.WrongEpoch)
	}
}

// TestMapInstallGainSealsUntilTransfer walks the gaining side of a flip: the
// gained item is created sealed (requests get Busy, not a grant and not a
// NAK — the routing is correct, the state is in flight), a transfer pull goes
// to the old primary, and the item opens with the transferred value once the
// session completes.
func TestMapInstallGainSealsUntilTransfer(t *testing.T) {
	m := pmapManager(0)
	m.SetPartitionMap(&model.PartitionMap{
		Epoch:       1,
		Assignments: [][]model.SiteID{{0}, {1}},
	})
	ctx := newFakeCtx()

	m.OnMessage(ctx, ctx.self, model.MapInstallMsg{Map: model.PartitionMap{
		Epoch:       2,
		Assignments: [][]model.SiteID{{0}, {0}},
	}})
	pulls := take[model.TransferPullMsg](ctx)
	if len(pulls) != 1 || pulls[0].Epoch != 2 || pulls[0].From != 0 {
		t.Fatalf("pulls=%+v want one for epoch 2 from site 0", pulls)
	}
	if c := m.Snapshot(); c.ItemsGained != 1 {
		t.Fatalf("ItemsGained = %d want 1", c.ItemsGained)
	}
	if !m.TransfersPending() {
		t.Fatal("TransfersPending() = false during transfer")
	}

	// Sealed: correct routing, so Busy rather than WrongEpoch.
	m.OnMessage(ctx, engine.RIAddr(1), req(1, model.TwoPL, model.OpRead, 1, model.NoTimestamp))
	if b := take[model.BusyMsg](ctx); len(b) != 1 {
		t.Fatalf("busy=%d want 1 while transfer pending", len(b))
	}
	if n := take[model.WrongEpochMsg](ctx); len(n) != 0 {
		t.Fatalf("unexpected NAK on a gained item: %+v", n)
	}

	// The old owner's answer: one record for item 1 at commit stamp 5, done.
	frames := wal.AppendRecordFrame(nil, wal.Record{
		Item: 1, Txn: model.TxnID{Site: 1, Seq: 3}, Value: 777, Version: 1, CommitMicros: 5,
	})
	m.OnMessage(ctx, ctx.self, model.TransferRecordsMsg{
		From: 1, Epoch: 2, Frames: frames, NextAfterSeq: 4, Done: true,
	})
	if m.TransfersPending() {
		t.Fatal("TransfersPending() = true after Done")
	}
	if c := m.Snapshot(); c.TransferApplied != 1 || c.TransferBytes == 0 {
		t.Fatalf("transfer counters = %+v want 1 applied, >0 bytes", c)
	}

	m.OnMessage(ctx, engine.RIAddr(1), req(2, model.TwoPL, model.OpRead, 1, model.NoTimestamp))
	grants := take[model.GrantMsg](ctx)
	if len(grants) != 1 || grants[0].Value != 777 {
		t.Fatalf("grants=%+v want one with the transferred value 777", grants)
	}
}

// TestTransferPullNotReadyWhileDraining pins the handoff discipline that
// makes the flip atomic per item: the losing site refuses to serve transfer
// state while a transaction granted under the old epoch is still resident,
// and serves it once the item drains.
func TestTransferPullNotReadyWhileDraining(t *testing.T) {
	m := pmapManager(0)
	m.SetPartitionMap(&model.PartitionMap{
		Epoch:       1,
		Assignments: [][]model.SiteID{{0}},
	})
	ctx := newFakeCtx()

	// Resident transaction under epoch 1.
	m.OnMessage(ctx, engine.RIAddr(1), req(1, model.TwoPL, model.OpWrite, 0, model.NoTimestamp))
	if g := take[model.GrantMsg](ctx); len(g) != 1 {
		t.Fatalf("setup grant missing")
	}

	// Epoch 2 moves item 0 away; the resident keeps it retiring.
	m.OnMessage(ctx, ctx.self, model.MapInstallMsg{Map: model.PartitionMap{
		Epoch:       2,
		Assignments: [][]model.SiteID{{1}},
	}})
	m.OnMessage(ctx, ctx.self, model.TransferPullMsg{From: 1, Epoch: 2})
	recs := take[model.TransferRecordsMsg](ctx)
	if len(recs) != 1 || !recs[0].NotReady {
		t.Fatalf("recs=%+v want one NotReady while draining", recs)
	}

	// New openers are refused with the NAK even mid-retirement.
	m.OnMessage(ctx, engine.RIAddr(1), req(2, model.TwoPL, model.OpRead, 0, model.NoTimestamp))
	if n := take[model.WrongEpochMsg](ctx); len(n) != 1 {
		t.Fatalf("naks=%d want 1 for a new opener on a retiring item", len(n))
	}

	// The resident releases; the queue drains and retires.
	m.OnMessage(ctx, engine.RIAddr(1), release(1, 0, true, 555))
	m.OnMessage(ctx, ctx.self, model.TransferPullMsg{From: 1, Epoch: 2})
	recs = take[model.TransferRecordsMsg](ctx)
	if len(recs) != 1 || recs[0].NotReady {
		t.Fatalf("recs=%+v want a served batch after drain", recs)
	}
	if len(recs[0].Frames) == 0 || !recs[0].Reset {
		t.Fatalf("recs=%+v want a non-empty Reset snapshot batch", recs[0])
	}

	// The follow-up pull for the tail: volatile sites have none, so Done.
	m.OnMessage(ctx, ctx.self, model.TransferPullMsg{From: 1, Epoch: 2, AfterSeq: recs[0].NextAfterSeq})
	recs = take[model.TransferRecordsMsg](ctx)
	if len(recs) != 1 || !recs[0].Done {
		t.Fatalf("recs=%+v want a Done tail batch", recs)
	}
	if c := m.Snapshot(); c.TransferPulls != 2 {
		t.Fatalf("TransferPulls = %d want 2", c.TransferPulls)
	}
}
