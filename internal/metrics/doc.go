// Package metrics provides streaming statistics (mean/variance, log-scale
// histograms with quantiles) and the Collector actor that turns the
// transaction-event and queue-stats streams into the performance measures of
// §5 — average transaction system time S, throughput, restart/back-off
// rates — and into the live system-parameter estimates the dynamic selector
// consumes.
//
// Per-protocol statistics are kept for all of model.NumProtocols classes:
// the three member protocols plus the ROSnapshot read-only class. The
// estimate stream (Qr, K, U, U′) deliberately excludes the ROSnapshot class
// — the §5 STL model describes queued, lock-taking traffic, and snapshot
// reads never enter a queue.
package metrics
