package model

import "sync"

// Decode-side struct pooling (opt-in).
//
// DecodeMessage returns value-typed messages; storing one in the Message
// interface boxes it — one small heap allocation per decoded message, the
// last steady-state allocation on the wire-v3 decode path. For consumers
// that can bound a message's lifetime (decode → dispatch → done, never
// retaining it), DecodeMessagePooled removes that allocation: the eleven
// hot fixed-size protocol types decode into pooled structs returned as
// pointers, and RecycleMessage puts them back.
//
// The contract is strict and deliberately opt-in:
//
//   - A pooled message is valid only until RecycleMessage. Callers that
//     retain messages, forward them to actors, or let them escape must use
//     DecodeMessage instead (the engine's actor type switches match value
//     types, not pointers).
//   - RecycleMessage accepts any Message and ignores everything that is not
//     a pooled pointer type, so a mixed stream can be recycled blindly.
//   - Variable-size messages (slices, maps, strings: VictimMsg, WFGReport,
//     SubmitTxn, QueueStats, Estimate, TxnDone, ...) are NOT pooled — their
//     backing arrays would pin arbitrary memory in the pool. They fall back
//     to the plain decoder.
//
// AppendMessage accepts both forms (a pooled *RequestMsg encodes byte-for-
// byte identically to the RequestMsg it holds), so round-trip paths —
// decode pooled, re-encode, recycle — need no copies.

var (
	requestPool       = sync.Pool{New: func() any { return new(RequestMsg) }}
	finalTSPool       = sync.Pool{New: func() any { return new(FinalTSMsg) }}
	releasePool       = sync.Pool{New: func() any { return new(ReleaseMsg) }}
	abortPool         = sync.Pool{New: func() any { return new(AbortMsg) }}
	grantPool         = sync.Pool{New: func() any { return new(GrantMsg) }}
	normalGrantPool   = sync.Pool{New: func() any { return new(NormalGrantMsg) }}
	rejectPool        = sync.Pool{New: func() any { return new(RejectMsg) }}
	backoffPool       = sync.Pool{New: func() any { return new(BackoffMsg) }}
	busyPool          = sync.Pool{New: func() any { return new(BusyMsg) }}
	snapReadPool      = sync.Pool{New: func() any { return new(SnapReadMsg) }}
	snapReadReplyPool = sync.Pool{New: func() any { return new(SnapReadReplyMsg) }}
)

// DecodeMessagePooled decodes the body for tag from r like DecodeMessage,
// but returns the hot fixed-size protocol messages as pooled pointers
// (*RequestMsg, *GrantMsg, ...). Pass every decoded message to
// RecycleMessage when done with it; see the package comment above for the
// lifetime contract. Tags outside the pooled set defer to DecodeMessage.
func DecodeMessagePooled(tag WireTag, r *WireReader) (Message, error) {
	var m Message
	switch tag {
	case TagRequest:
		v := requestPool.Get().(*RequestMsg)
		*v = decodeRequest(r)
		m = v
	case TagFinalTS:
		v := finalTSPool.Get().(*FinalTSMsg)
		*v = decodeFinalTS(r)
		m = v
	case TagRelease:
		v := releasePool.Get().(*ReleaseMsg)
		*v = decodeRelease(r)
		m = v
	case TagAbort:
		v := abortPool.Get().(*AbortMsg)
		*v = decodeAbort(r)
		m = v
	case TagGrant:
		v := grantPool.Get().(*GrantMsg)
		*v = decodeGrant(r)
		m = v
	case TagNormalGrant:
		v := normalGrantPool.Get().(*NormalGrantMsg)
		*v = decodeNormalGrant(r)
		m = v
	case TagReject:
		v := rejectPool.Get().(*RejectMsg)
		*v = decodeReject(r)
		m = v
	case TagBackoff:
		v := backoffPool.Get().(*BackoffMsg)
		*v = decodeBackoff(r)
		m = v
	case TagBusy:
		v := busyPool.Get().(*BusyMsg)
		*v = decodeBusy(r)
		m = v
	case TagSnapRead:
		v := snapReadPool.Get().(*SnapReadMsg)
		*v = decodeSnapRead(r)
		m = v
	case TagSnapReadReply:
		v := snapReadReplyPool.Get().(*SnapReadReplyMsg)
		*v = decodeSnapReadReply(r)
		m = v
	default:
		return DecodeMessage(tag, r)
	}
	if err := r.Err(); err != nil {
		// A failed decode still recycles its struct: the caller gets no
		// message to return.
		RecycleMessage(m)
		return nil, err
	}
	return m, nil
}

// RecycleMessage returns a message obtained from DecodeMessagePooled to its
// pool. Non-pooled messages (value types, variable-size types, nil) are
// ignored, so callers can recycle a mixed stream unconditionally. The caller
// must not touch the message afterwards.
func RecycleMessage(m Message) {
	switch v := m.(type) {
	case *RequestMsg:
		*v = RequestMsg{}
		requestPool.Put(v)
	case *FinalTSMsg:
		*v = FinalTSMsg{}
		finalTSPool.Put(v)
	case *ReleaseMsg:
		*v = ReleaseMsg{}
		releasePool.Put(v)
	case *AbortMsg:
		*v = AbortMsg{}
		abortPool.Put(v)
	case *GrantMsg:
		*v = GrantMsg{}
		grantPool.Put(v)
	case *NormalGrantMsg:
		*v = NormalGrantMsg{}
		normalGrantPool.Put(v)
	case *RejectMsg:
		*v = RejectMsg{}
		rejectPool.Put(v)
	case *BackoffMsg:
		*v = BackoffMsg{}
		backoffPool.Put(v)
	case *BusyMsg:
		*v = BusyMsg{}
		busyPool.Put(v)
	case *SnapReadMsg:
		*v = SnapReadMsg{}
		snapReadPool.Put(v)
	case *SnapReadReplyMsg:
		*v = SnapReadReplyMsg{}
		snapReadReplyPool.Put(v)
	}
}
