package workload

import (
	"math"
	"math/rand"
	"testing"

	"ucc/internal/engine"
	"ucc/internal/model"
)

// fakeCtx is a minimal engine.Context for driving the generator.
type fakeCtx struct {
	now    int64
	sent   []engine.Envelope
	timers []int64
	rng    *rand.Rand
}

func (c *fakeCtx) NowMicros() int64  { return c.now }
func (c *fakeCtx) Self() engine.Addr { return engine.DriverAddr(0) }
func (c *fakeCtx) Rand() *rand.Rand  { return c.rng }
func (c *fakeCtx) Send(to engine.Addr, msg model.Message) {
	c.sent = append(c.sent, engine.Envelope{To: to, Msg: msg})
}
func (c *fakeCtx) SetTimer(d int64, msg model.Message) {
	c.timers = append(c.timers, d)
	c.now += d
}

func drive(t *testing.T, spec Spec, n int) []*model.Txn {
	t.Helper()
	d, err := NewDriver(0, spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &fakeCtx{rng: rand.New(rand.NewSource(42))}
	for i := 0; i < n; i++ {
		d.OnMessage(ctx, engine.DriverAddr(0), model.TickMsg{})
	}
	var out []*model.Txn
	for _, e := range ctx.sent {
		if m, ok := e.Msg.(model.SubmitTxnMsg); ok {
			out = append(out, m.Txn)
		}
	}
	return out
}

func TestValidateDefaults(t *testing.T) {
	s := Spec{ArrivalPerSec: 1, Items: 10}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Size != 4 || s.Share2PL != 1 {
		t.Fatalf("defaults not applied: %+v", s)
	}
	bad := Spec{Items: 10}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero arrival must fail")
	}
	bad2 := Spec{ArrivalPerSec: 1}
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero items must fail")
	}
}

func TestFixedSizeAndUniqueness(t *testing.T) {
	txns := drive(t, Spec{
		ArrivalPerSec: 100, Items: 20, Size: 5, ReadFrac: 0.5, ShareTO: 1,
	}, 200)
	if len(txns) != 200 {
		t.Fatalf("generated %d", len(txns))
	}
	seen := map[model.TxnID]bool{}
	for _, tx := range txns {
		if tx.Size() != 5 {
			t.Fatalf("size = %d want 5", tx.Size())
		}
		if seen[tx.ID] {
			t.Fatalf("duplicate id %v", tx.ID)
		}
		seen[tx.ID] = true
		if tx.Protocol != model.TO {
			t.Fatalf("protocol = %v", tx.Protocol)
		}
	}
}

func TestUniformSizeInRange(t *testing.T) {
	txns := drive(t, Spec{
		ArrivalPerSec: 100, Items: 30, SizeDist: SizeUniform,
		SizeMin: 2, SizeMax: 6, ReadFrac: 0.5, SharePA: 1,
	}, 500)
	for _, tx := range txns {
		if tx.Size() < 2 || tx.Size() > 6 {
			t.Fatalf("size %d out of [2,6]", tx.Size())
		}
	}
}

func TestGeometricSizeMean(t *testing.T) {
	txns := drive(t, Spec{
		ArrivalPerSec: 100, Items: 100, SizeDist: SizeGeometric,
		Size: 4, SizeMax: 40, ReadFrac: 0.5, Share2PL: 1,
	}, 3000)
	var sum float64
	for _, tx := range txns {
		sum += float64(tx.Size())
	}
	mean := sum / float64(len(txns))
	if mean < 3 || mean > 5 {
		t.Fatalf("geometric mean size = %.2f, want ≈4", mean)
	}
}

func TestReadFraction(t *testing.T) {
	txns := drive(t, Spec{
		ArrivalPerSec: 100, Items: 50, Size: 4, ReadFrac: 0.7, ShareTO: 1,
	}, 2000)
	var reads, total float64
	for _, tx := range txns {
		reads += float64(tx.NumReads())
		total += float64(tx.Size())
	}
	if frac := reads / total; math.Abs(frac-0.7) > 0.05 {
		t.Fatalf("read fraction = %.3f want ≈0.7", frac)
	}
}

func TestProtocolShares(t *testing.T) {
	d, err := NewDriver(0, Spec{
		ArrivalPerSec: 100, Items: 20, Size: 2, ReadFrac: 0.5,
		Share2PL: 1, ShareTO: 1, SharePA: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &fakeCtx{rng: rand.New(rand.NewSource(9))}
	for i := 0; i < 4000; i++ {
		d.OnMessage(ctx, engine.DriverAddr(0), model.TickMsg{})
	}
	tot := float64(d.Generated[0] + d.Generated[1] + d.Generated[2])
	if pa := float64(d.Generated[model.PA]) / tot; math.Abs(pa-0.5) > 0.05 {
		t.Fatalf("PA share = %.3f want ≈0.5", pa)
	}
}

func TestHotspotSkew(t *testing.T) {
	txns := drive(t, Spec{
		ArrivalPerSec: 100, Items: 100, Size: 2, ReadFrac: 0.5, ShareTO: 1,
		Access: AccessHotspot, HotItems: 10, HotFrac: 0.8,
	}, 2000)
	hot := 0
	total := 0
	for _, tx := range txns {
		for _, op := range tx.Ops() {
			total++
			if op.Item < 10 {
				hot++
			}
		}
	}
	frac := float64(hot) / float64(total)
	if frac < 0.6 || frac > 0.9 {
		t.Fatalf("hot fraction = %.3f want ≈0.8", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	txns := drive(t, Spec{
		ArrivalPerSec: 100, Items: 100, Size: 2, ReadFrac: 0.5, ShareTO: 1,
		Access: AccessZipf, ZipfS: 1.5,
	}, 2000)
	counts := map[model.ItemID]int{}
	total := 0
	for _, tx := range txns {
		for _, op := range tx.Ops() {
			counts[op.Item]++
			total++
		}
	}
	// Item 0 must dominate under Zipf(1.5).
	if frac := float64(counts[0]) / float64(total); frac < 0.15 {
		t.Fatalf("item 0 fraction = %.3f, too uniform for Zipf", frac)
	}
}

func TestHorizonStopsArrivals(t *testing.T) {
	d, err := NewDriver(0, Spec{
		ArrivalPerSec: 100, Items: 10, Size: 2, ReadFrac: 0.5, Share2PL: 1,
		HorizonMicros: 1, // expires immediately
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &fakeCtx{now: 10, rng: rand.New(rand.NewSource(1))}
	d.OnMessage(ctx, engine.DriverAddr(0), model.TickMsg{})
	if len(ctx.sent) != 0 {
		t.Fatal("driver generated past its horizon")
	}
}

func TestMaxTxnsCap(t *testing.T) {
	txns := drive(t, Spec{
		ArrivalPerSec: 100, Items: 10, Size: 2, ReadFrac: 0.5, Share2PL: 1,
		MaxTxns: 7,
	}, 50)
	if len(txns) != 7 {
		t.Fatalf("generated %d want 7", len(txns))
	}
}

func TestStopMessage(t *testing.T) {
	d, _ := NewDriver(0, Spec{ArrivalPerSec: 100, Items: 10, Size: 2, Share2PL: 1})
	ctx := &fakeCtx{rng: rand.New(rand.NewSource(1))}
	d.OnMessage(ctx, engine.DriverAddr(0), model.StopMsg{})
	d.OnMessage(ctx, engine.DriverAddr(0), model.TickMsg{})
	if len(ctx.sent) != 0 {
		t.Fatal("driver generated after StopMsg")
	}
}

func TestPoissonGapsMatchRate(t *testing.T) {
	d, _ := NewDriver(0, Spec{ArrivalPerSec: 50, Items: 10, Size: 2, ReadFrac: 0.5, Share2PL: 1})
	ctx := &fakeCtx{rng: rand.New(rand.NewSource(4))}
	for i := 0; i < 3000; i++ {
		d.OnMessage(ctx, engine.DriverAddr(0), model.TickMsg{})
	}
	var sum float64
	for _, gap := range ctx.timers {
		sum += float64(gap)
	}
	meanGap := sum / float64(len(ctx.timers))
	want := 1e6 / 50.0
	if math.Abs(meanGap-want)/want > 0.1 {
		t.Fatalf("mean gap %.0fµs want ≈%.0fµs", meanGap, want)
	}
}
