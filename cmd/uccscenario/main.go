// Command uccscenario runs declarative system scenarios from the
// internal/scenario library: phased workloads, scheduled faults, and
// invariant checkpoints, reported as a console table or a machine-diffable
// JSON run record.
//
// Usage:
//
//	uccscenario -list                 # list scenarios
//	uccscenario -run flash-crowd      # run one scenario
//	uccscenario -smoke                # run the CI smoke pair
//	uccscenario -all                  # run the whole library
//	uccscenario -run diurnal -json    # emit the JSON run record on stdout
//	uccscenario -all -out dir/        # also write one JSON record per run
//	uccscenario -run ycsb-a -seed 7   # override the scenario seed
//
// Exit status: 0 when every executed scenario passed its checkpoints, 1 when
// any check failed, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ucc/internal/scenario"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list scenarios and exit")
		run    = flag.String("run", "", "run a single scenario by name")
		all    = flag.Bool("all", false, "run every scenario in the library")
		smoke  = flag.Bool("smoke", false, "run the CI smoke pair (fault-free overload + crash-and-recover)")
		asJSON = flag.Bool("json", false, "emit JSON run records on stdout instead of console tables")
		outDir = flag.String("out", "", "also write one <scenario>.json run record per scenario into this directory")
		seed   = flag.Int64("seed", 0, "override the scenario seed (0 keeps each scenario's own)")
	)
	flag.Parse()

	if *list {
		for _, s := range scenario.Library() {
			fmt.Printf("%-16s %s\n", s.Name, s.Description)
		}
		return
	}

	var todo []scenario.Scenario
	switch {
	case *run != "":
		s, ok := scenario.ByName(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "uccscenario: unknown scenario %q (try -list)\n", *run)
			os.Exit(2)
		}
		todo = []scenario.Scenario{s}
	case *smoke:
		todo = scenario.Smoke()
	case *all:
		todo = scenario.Library()
	default:
		fmt.Fprintln(os.Stderr, "uccscenario: nothing to do (use -list, -run <name>, -smoke, or -all)")
		os.Exit(2)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "uccscenario: %v\n", err)
			os.Exit(2)
		}
	}

	failed := false
	for _, s := range todo {
		start := time.Now()
		rec, err := scenario.Run(s, scenario.Options{Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "uccscenario: %s: %v\n", s.Name, err)
			os.Exit(2)
		}
		if !rec.Passed {
			failed = true
		}
		if *asJSON {
			b, err := rec.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "uccscenario: %s: %v\n", s.Name, err)
				os.Exit(2)
			}
			fmt.Println(string(b))
		} else {
			rec.WriteText(os.Stdout)
			fmt.Printf("(%s in %.1fs)\n\n", s.Name, time.Since(start).Seconds())
		}
		if *outDir != "" {
			b, err := rec.JSON()
			if err == nil {
				err = os.WriteFile(filepath.Join(*outDir, s.Name+".json"), append(b, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "uccscenario: %s: %v\n", s.Name, err)
				os.Exit(2)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
