package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ucc/internal/engine"
	"ucc/internal/model"
)

func TestWelfordAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var w Welford
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*5 + 10
		xs = append(xs, x)
		w.Add(x)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs)-1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Fatalf("mean %v vs %v", w.Mean(), mean)
	}
	if math.Abs(w.Var()-variance)/variance > 1e-9 {
		t.Fatalf("var %v vs %v", w.Var(), variance)
	}
	if w.N() != 1000 {
		t.Fatalf("n = %d", w.N())
	}
}

func TestWelfordMinMaxEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Min() != 0 || w.Max() != 0 || w.Std() != 0 {
		t.Fatal("empty accumulator must read zero")
	}
	w.Add(5)
	w.Add(-2)
	if w.Min() != -2 || w.Max() != 5 {
		t.Fatalf("min/max: %v/%v", w.Min(), w.Max())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i))
	}
	// Log buckets are coarse: accept a factor-2 band.
	p50 := h.Quantile(0.5)
	if p50 < 250 || p50 > 1000 {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Fatal("p99 < p50")
	}
	if math.Abs(h.Mean()-500.5) > 1e-9 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		for i := 0; i < 200; i++ {
			h.Add(rng.Float64() * 1e6)
		}
		prev := -1.0
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 1} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Header: []string{"a", "long-header"}}
	tb.AddRow("1", "2")
	tb.AddRow("wide-cell", "x")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Fatalf("columns not aligned:\n%s", s)
	}
}

type colCtx struct {
	now  int64
	sent []engine.Envelope
	rng  *rand.Rand
}

func (c *colCtx) NowMicros() int64  { return c.now }
func (c *colCtx) Self() engine.Addr { return engine.CollectorAddr() }
func (c *colCtx) Rand() *rand.Rand  { return c.rng }
func (c *colCtx) Send(to engine.Addr, msg model.Message) {
	c.sent = append(c.sent, engine.Envelope{To: to, Msg: msg})
}
func (c *colCtx) SetTimer(d int64, msg model.Message) {}

func done(p model.Protocol, outcome model.TxnOutcome, sMicros int64) model.TxnDoneMsg {
	return model.TxnDoneMsg{
		Txn: model.TxnID{Site: 1, Seq: 1}, Protocol: p, Outcome: outcome,
		ArrivalMicros: 0, DoneMicros: sMicros, FirstArrivalMicros: 0,
		Attempts: 1, Size: 4, Reads: 2, Writes: 2, Messages: 8,
		LockedMicros: sMicros / 2,
	}
}

func TestCollectorAggregation(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	ctx := &colCtx{rng: rand.New(rand.NewSource(1))}
	c.OnMessage(ctx, engine.CollectorAddr(), done(model.TO, model.OutcomeCommitted, 10_000))
	ctx.now = 20_000
	c.OnMessage(ctx, engine.CollectorAddr(), done(model.TO, model.OutcomeCommitted, 20_000))
	c.OnMessage(ctx, engine.CollectorAddr(), done(model.TO, model.OutcomeRejected, 5_000))
	sum := c.Summarize()
	to := sum.Protocols[model.TO]
	if to.Committed != 2 || to.Rejected != 1 {
		t.Fatalf("counts: %+v", to)
	}
	if math.Abs(to.SystemTime.Mean()-15_000) > 1e-9 {
		t.Fatalf("S mean = %v", to.SystemTime.Mean())
	}
	if sum.TotalCommitted() != 2 {
		t.Fatalf("total = %d", sum.TotalCommitted())
	}
}

func TestCollectorRateEstimation(t *testing.T) {
	c := NewCollector(CollectorOptions{EWMAAlpha: 1}) // no smoothing
	ctx := &colCtx{rng: rand.New(rand.NewSource(1))}
	c.OnMessage(ctx, engine.CollectorAddr(), model.QueueStatsMsg{
		From: 0, AtMicros: 0,
		ReadGrants:  map[model.ItemID]uint64{1: 0},
		WriteGrants: map[model.ItemID]uint64{1: 0},
	})
	c.OnMessage(ctx, engine.CollectorAddr(), model.QueueStatsMsg{
		From: 0, AtMicros: 1_000_000, // 1s window
		ReadGrants:  map[model.ItemID]uint64{1: 50},
		WriteGrants: map[model.ItemID]uint64{1: 20},
	})
	est := c.Estimates(1_000_000)
	if math.Abs(est.LambdaR[1]-50) > 1e-9 || math.Abs(est.LambdaW[1]-20) > 1e-9 {
		t.Fatalf("rates: r=%v w=%v", est.LambdaR[1], est.LambdaW[1])
	}
	if math.Abs(est.LambdaA-70) > 1e-9 {
		t.Fatalf("λA = %v", est.LambdaA)
	}
}

func TestCollectorProbabilities(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	ctx := &colCtx{rng: rand.New(rand.NewSource(1))}
	// 2 committed 2PL, 1 victim → PAbort = 1/3.
	c.OnMessage(ctx, engine.CollectorAddr(), done(model.TwoPL, model.OutcomeCommitted, 1000))
	c.OnMessage(ctx, engine.CollectorAddr(), done(model.TwoPL, model.OutcomeCommitted, 1000))
	c.OnMessage(ctx, engine.CollectorAddr(), done(model.TwoPL, model.OutcomeDeadlockVictim, 500))
	// T/O: one committed attempt (2 reads), one read-rejection.
	c.OnMessage(ctx, engine.CollectorAddr(), done(model.TO, model.OutcomeCommitted, 1000))
	rej := done(model.TO, model.OutcomeRejected, 400)
	rej.RejectKind = model.OpRead
	c.OnMessage(ctx, engine.CollectorAddr(), rej)
	est := c.Estimates(0)
	if math.Abs(est.PAbort-1.0/3) > 1e-9 {
		t.Fatalf("PAbort = %v", est.PAbort)
	}
	// read rejects / read requests = 1 / (2+2).
	if math.Abs(est.Pr-0.25) > 1e-9 {
		t.Fatalf("Pr = %v", est.Pr)
	}
}

func TestCollectorBroadcast(t *testing.T) {
	c := NewCollector(CollectorOptions{
		EstimatePeriodMicros: 1000,
		RISites:              []model.SiteID{0, 1, 2},
	})
	ctx := &colCtx{rng: rand.New(rand.NewSource(1))}
	c.OnMessage(ctx, engine.CollectorAddr(), model.TickMsg{})
	n := 0
	for _, e := range ctx.sent {
		if _, ok := e.Msg.(model.EstimateMsg); ok {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("broadcasts = %d want 3", n)
	}
	// After StopMsg no further broadcasts.
	c.OnMessage(ctx, engine.CollectorAddr(), model.StopMsg{})
	before := len(ctx.sent)
	c.OnMessage(ctx, engine.CollectorAddr(), model.TickMsg{})
	if len(ctx.sent) != before {
		t.Fatal("broadcast after stop")
	}
}

func TestFFormat(t *testing.T) {
	cases := map[float64]string{0: "0", 12345: "12345", 42.123: "42.1", 1.23456: "1.235"}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Errorf("F(%v) = %q want %q", v, got, want)
		}
	}
}

// TestCountAtMostInterpolates: an SLO cut inside a log₂ bucket must count
// only the fraction of that bucket below the cut, not the whole bucket —
// a 400ms SLO must not admit 524ms commits (the bucket's upper edge) as
// "within budget", which would inflate the EXP-12 goodput gate by ~31%
// right at the boundary.
func TestCountAtMostInterpolates(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Add(300_000) // bucket [262144, 524288)
	}
	if got := h.CountAtMost(524_288); got != 100 {
		t.Fatalf("cut above the bucket: got %d, want all 100", got)
	}
	// 400ms is 52.6% of the way through [262144, 524288): the interpolated
	// count is 53, where whole-bucket counting returned 100.
	if got := h.CountAtMost(400_000); got != 53 {
		t.Fatalf("cut at 400ms: got %d, want 53 (linear within the bucket)", got)
	}
	if got := h.CountAtMost(262_144); got != 0 {
		t.Fatalf("cut at the bucket's lower edge: got %d, want 0", got)
	}
	if got := h.CountAtMost(-1); got != 0 {
		t.Fatalf("negative cut: got %d, want 0", got)
	}
	// Bucket 0 spans [0,1): the cut interpolates there too.
	var h0 Histogram
	for i := 0; i < 10; i++ {
		h0.Add(0.9)
	}
	if got := h0.CountAtMost(0.5); got != 5 {
		t.Fatalf("bucket-0 cut at 0.5: got %d, want 5", got)
	}
}

// TestWireCounters: the codec counters snapshot consistently and derive
// bytes-per-message correctly (including the zero-traffic case).
func TestWireCounters(t *testing.T) {
	var w WireCounters
	if s := w.Snapshot(); s.BytesPerMsgOut() != 0 || s.BytesPerMsgIn() != 0 {
		t.Fatalf("zero traffic must derive 0 B/msg, got %+v", s)
	}
	w.MsgsOut.Add(4)
	w.BytesOut.Add(100)
	w.MsgsIn.Add(2)
	w.BytesIn.Add(50)
	w.V3Conns.Add(1)
	w.V2Fallbacks.Add(3)
	s := w.Snapshot()
	if s.MsgsOut != 4 || s.BytesOut != 100 || s.MsgsIn != 2 || s.BytesIn != 50 || s.V3Conns != 1 || s.V2Fallbacks != 3 {
		t.Fatalf("snapshot lost counts: %+v", s)
	}
	if s.BytesPerMsgOut() != 25 || s.BytesPerMsgIn() != 25 {
		t.Fatalf("B/msg: out=%.1f in=%.1f, want 25 both", s.BytesPerMsgOut(), s.BytesPerMsgIn())
	}
}
