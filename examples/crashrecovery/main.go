// Crash recovery: run a replicated mixed-protocol workload with per-site
// write-ahead logs, kill a site mid-run, bring it back, and verify the
// recovered partition converges with the surviving replicas while the
// execution stays conflict serializable.
//
// The paper's model (§2) assumes failure-free sites; the durability
// subsystem (internal/wal) lifts that assumption: every committed write is
// journaled, the site's partition is snapshotted periodically, and recovery
// replays snapshot + log tail.
package main

import (
	"fmt"
	"time"

	"ucc"
)

func main() {
	// 4 sites, 2 copies per item (read-one/write-all), durable sites.
	c, err := ucc.New(ucc.Config{
		Sites:      4,
		Items:      32,
		Replicas:   2,
		Seed:       42,
		Durability: true,
	})
	if err != nil {
		panic(err)
	}

	err = c.Workload(ucc.Workload{
		Rate:     25,
		Duration: 3 * time.Second,
		Size:     3,
		ReadFrac: 0.5,
		Mix:      ucc.Mix{TwoPL: 1, TO: 1, PA: 1},
	})
	if err != nil {
		panic(err)
	}

	// Site 2 loses power at t=1.2s: its in-memory partition and any
	// unsynced WAL tail are gone. At t=1.5s it restarts and rebuilds the
	// partition from its snapshot plus the checksummed log prefix, then
	// works through the traffic that queued up during the outage.
	c.CrashSite(2, 1200*time.Millisecond)
	c.RecoverSite(2, 1500*time.Millisecond)

	res := c.Run()

	fmt.Printf("committed:    %d transactions (%.1f txn/s)\n", res.Committed(), res.Throughput())
	fmt.Printf("serializable: %v (across a full site crash)\n", res.Serializable())
	fmt.Printf("unfinished:   %d\n", res.Unfinished())

	// The recovered site's copies must agree with the surviving replicas.
	diverged := 0
	for item := 0; item < 32; item++ {
		if !replicasAgree(c, ucc.ItemID(item)) {
			diverged++
		}
	}
	fmt.Printf("replicas:     %d/32 items diverged after recovery\n", diverged)
	if diverged > 0 || !res.Serializable() {
		panic("crash recovery violated an invariant")
	}
	fmt.Println("crash + recovery preserved every invariant")
}

func replicasAgree(c *ucc.Cluster, item ucc.ItemID) bool {
	vals := c.ReplicaValues(item)
	for _, v := range vals[1:] {
		if v != vals[0] {
			return false
		}
	}
	return true
}
