// Read path: the same read-heavy closed-loop workload run twice — once with
// the read-only snapshot fast path on (pure-read transactions read committed
// versions at a site-local snapshot timestamp, never entering the data
// queues) and once with it off (the same transactions demoted to PA read
// locks) — to show where the capacity goes on a ≥90%-read mix.
//
// The paper's model gives every read a queue position, semi-locks or T/O
// checks, and writer contention. The multi-version store (internal/storage)
// keeps a short bounded version chain per physical copy, so a read-only
// transaction can read a consistent snapshot with zero queueing and zero
// restarts while the unified 2PL/T/O/PA machinery governs read-write
// transactions unchanged.
package main

import (
	"fmt"
	"time"

	"ucc"
)

func run(fastPath bool) ucc.Result {
	c, err := ucc.New(ucc.Config{
		Sites:                   4,
		Items:                   16,
		Seed:                    7,
		DisableReadOnlyFastPath: !fastPath,
	})
	if err != nil {
		panic(err)
	}
	// Closed loop: 8 transactions in flight per site. 90% are read-only
	// scans of 8 items; the remaining 10% are small update transactions.
	// Closed-loop load measures capacity — completions per second at fixed
	// pressure — which is the number the fast path moves.
	err = c.Workload(ucc.Workload{
		Concurrency:  8,
		Duration:     3 * time.Second,
		Size:         3,
		ReadOnlySize: 8,
		ReadFrac:     0.2,
		Mix:          ucc.Mix{PA: 0.1, ReadOnly: 0.9},
	})
	if err != nil {
		panic(err)
	}
	return c.Run()
}

func main() {
	on := run(true)
	off := run(false)

	fmt.Println("read-heavy closed loop (90% read-only scans, 4 sites × 8 in flight):")
	fmt.Printf("  fast path ON : %6.0f txn/s   RO mean %v   read-write mean %v\n",
		on.Throughput(), on.ReadOnly().MeanSystemTime, on.ReadWrite().MeanSystemTime)
	fmt.Printf("  fast path OFF: %6.0f txn/s   RO mean %v   read-write mean %v\n",
		off.Throughput(), off.ReadOnly().MeanSystemTime, off.ReadWrite().MeanSystemTime)
	fmt.Printf("  speedup      : %.1fx\n", on.Throughput()/off.Throughput())

	served, inexact := on.SnapshotReads()
	fmt.Printf("\nsnapshot reads served: %d (inexact: %d)\n", served, inexact)
	fmt.Printf("serializable on/off: %v/%v\n", on.Serializable(), off.Serializable())

	// With the path OFF every "read-only" transaction commits as PA (it
	// queued and locked); its contention shows up as back-offs. With the
	// path ON, the RO class by construction has no contention events.
	fmt.Printf("RO-class contention events (on): restarts=%d backoffs=%d\n",
		on.Stats(ucc.ROSnapshot).Restarts, on.Stats(ucc.ROSnapshot).Backoffs)
}
