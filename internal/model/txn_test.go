package model

import (
	"testing"
	"testing/quick"
)

func TestNewTxnDedupAndOverlap(t *testing.T) {
	tx := NewTxn(TxnID{Site: 1, Seq: 1}, TwoPL,
		[]ItemID{1, 2, 3, 3, 2}, []ItemID{3, 4, 4}, 100)
	if got := tx.NumReads(); got != 2 {
		t.Fatalf("reads=%d want 2 (overlap with writes removed, dups removed)", got)
	}
	if got := tx.NumWrites(); got != 2 {
		t.Fatalf("writes=%d want 2", got)
	}
	if !tx.Writes(3) {
		t.Fatal("item read+written must land in the write set")
	}
	if tx.Size() != 4 {
		t.Fatalf("size=%d want 4", tx.Size())
	}
}

func TestTxnOpsOrder(t *testing.T) {
	tx := NewTxn(TxnID{}, TO, []ItemID{5, 1}, []ItemID{3}, 0)
	ops := tx.Ops()
	if len(ops) != 3 {
		t.Fatalf("ops=%d want 3", len(ops))
	}
	// Reads first (sorted), then writes.
	if ops[0].Kind != OpRead || ops[0].Item != 1 || ops[1].Item != 5 || ops[2].Kind != OpWrite {
		t.Fatalf("unexpected op order: %v", ops)
	}
}

func TestTxnAccessors(t *testing.T) {
	tx := NewTxn(TxnID{}, PA, []ItemID{1}, []ItemID{2}, 0)
	if !tx.Accesses(1) || !tx.Accesses(2) || tx.Accesses(3) {
		t.Fatal("Accesses wrong")
	}
	if tx.Writes(1) || !tx.Writes(2) {
		t.Fatal("Writes wrong")
	}
}

func TestSpecFor(t *testing.T) {
	tx := NewTxn(TxnID{}, PA, nil, []ItemID{2, 7}, 0)
	tx.Specs = []WriteSpec{{Item: 7, UseSource: true, Source: 7, AddConst: -5}}
	if _, ok := tx.SpecFor(2); ok {
		t.Fatal("item 2 has no spec")
	}
	s, ok := tx.SpecFor(7)
	if !ok || s.AddConst != -5 {
		t.Fatalf("SpecFor(7) = %+v, %v", s, ok)
	}
}

// Property: NewTxn always produces disjoint sorted sets whose union covers
// the inputs.
func TestNewTxnProperties(t *testing.T) {
	f := func(reads, writes []uint8) bool {
		var rs, ws []ItemID
		for _, r := range reads {
			rs = append(rs, ItemID(r%16))
		}
		for _, w := range writes {
			ws = append(ws, ItemID(w%16))
		}
		tx := NewTxn(TxnID{Site: 1, Seq: 2}, TO, rs, ws, 0)
		// Disjoint.
		for _, r := range tx.ReadSet {
			for _, w := range tx.WriteSet {
				if r == w {
					return false
				}
			}
		}
		// Sorted, unique.
		for i := 1; i < len(tx.ReadSet); i++ {
			if tx.ReadSet[i-1] >= tx.ReadSet[i] {
				return false
			}
		}
		for i := 1; i < len(tx.WriteSet); i++ {
			if tx.WriteSet[i-1] >= tx.WriteSet[i] {
				return false
			}
		}
		// Coverage: every input item is accessed.
		for _, r := range rs {
			if !tx.Accesses(r) {
				return false
			}
		}
		for _, w := range ws {
			if !tx.Writes(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormats(t *testing.T) {
	// Smoke-test the fmt.Stringer implementations (they feed logs/tables).
	if TwoPL.String() != "2PL" || TO.String() != "T/O" || PA.String() != "PA" {
		t.Fatal("protocol strings")
	}
	if OpRead.String() != "r" || OpWrite.String() != "w" {
		t.Fatal("op kind strings")
	}
	if RL.String() != "RL" || SWL.String() != "SWL" {
		t.Fatal("lock strings")
	}
	id := TxnID{Site: 3, Seq: 9}
	if id.String() != "t3.9" {
		t.Fatalf("txn id string = %q", id.String())
	}
	if OutcomeCommitted.String() != "committed" {
		t.Fatal("outcome string")
	}
}
