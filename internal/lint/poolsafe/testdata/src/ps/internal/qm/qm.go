// Package qm is a miniature stand-in for ucc/internal/qm's queue-entry pool:
// a package-local acquire/recycle pair the analyzer recognises by the
// import-path suffix. The flagged and allowed shapes live in the same
// package because the pool is unexported, exactly like the real one.
package qm

// entry mirrors the real queue-table entry.
type entry struct {
	item string
	next *entry
}

// acquireEntry mirrors the real pool acquire.
func acquireEntry() *entry { return &entry{} }

// recycleEntry mirrors the real pool return.
func recycleEntry(e *entry) {}

var table = map[string]*entry{}

func inspect(e *entry) {}

// okQueueLifetime is the real shard shape: acquire, hand to the queue by
// call (ownership transfer), recycle when the queue removes it.
func okQueueLifetime() {
	e := acquireEntry()
	e.item = "a"
	inspect(e)
	recycleEntry(e)
}

func entryMapEscape() {
	e := acquireEntry()
	table[e.item] = e // want `stored into table\[e\.item\]`
	recycleEntry(e)
}

func entryLinkEscape(head *entry) {
	e := acquireEntry()
	head.next = e // want `stored into head\.next`
}

func entryUseAfterRecycle() {
	e := acquireEntry()
	recycleEntry(e)
	inspect(e) // want `used after RecycleMessage`
}

func entryAppendEscape(wait []*entry) []*entry {
	e := acquireEntry()
	return append(wait, e) // want `appended to a slice`
}

func allowListedRetention() {
	e := acquireEntry()
	//ucclint:allow poolsafe -- queue residency: recycleEntry runs at remove()
	table[e.item] = e
}
