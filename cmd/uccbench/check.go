// Bench-gate mode: compare a `go test -bench` output file against the
// checked-in baseline (BENCH_baseline.json) and fail on a >tolerance
// throughput drop. This is what turns BENCH_baseline.json from a write-only
// artifact into a CI gate.
//
// What is gated: the benchmarks' custom metrics (txn/s, txns/op,
// commits/sync, …) — throughput-like, higher-is-better numbers by default. A
// baseline entry can list metric keys under "lower_is_better" (cost metrics
// like allocs_per_committed_txn) to invert the gate: those fail when the
// candidate value GROWS beyond tolerance. For the
// simulator benchmarks they measure virtual-time throughput and are
// near-deterministic across hardware; for ratio metrics (commits per sync)
// they are hardware-robust by construction. ns/op is reported for context
// and only gated with -gate-ns, because wall-clock per-op cost does not
// transfer between runner generations the way the gated metrics do.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchSample is one parsed `go test -bench` result line.
type benchSample struct {
	Name    string
	NsPerOp float64
	Metrics map[string]float64
}

// baselineFile mirrors BENCH_baseline.json's flat benchmark list (the extra
// sections of that file are documentation; the gate reads only this).
type baselineFile struct {
	Benchmarks []baselineEntry `json:"benchmarks"`
}

type baselineEntry struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// LowerIsBetter lists the metric keys (normalized form, e.g.
	// "allocs_per_committed_txn") whose gate direction is inverted: an
	// INCREASE beyond tolerance fails, a decrease is an improvement. Metrics
	// not listed keep the default higher-is-better throughput semantics.
	LowerIsBetter []string `json:"lower_is_better,omitempty"`
}

// lowerIsBetter reports whether the entry gates key in the inverted
// direction.
func (b baselineEntry) lowerIsBetter(key string) bool {
	for _, k := range b.LowerIsBetter {
		if k == key {
			return true
		}
	}
	return false
}

// benchLine matches e.g.
//
//	BenchmarkReadPathThroughput-4   3   123456 ns/op   456.7 txn/s
//	BenchmarkReadWriteThroughput/shards=4-8   1   99 ns/op   1000 txn/s
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.e+]+) ns/op((?:\s+[\d.e+]+ \S+)*)\s*$`)

// metricPair matches the trailing custom metrics of a bench line.
var metricPair = regexp.MustCompile(`([\d.e+]+) (\S+)`)

// normalizeMetric converts a go-bench metric unit to a baseline JSON key:
// "txns/op" → "txns_per_op", "txn/s" → "txn_per_s".
func normalizeMetric(unit string) string {
	return strings.ReplaceAll(unit, "/", "_per_")
}

// parseBenchOutput extracts samples from `go test -bench` output. Repeated
// runs of the same benchmark keep the LAST sample (matching `-count`
// semantics where later runs are warmed).
func parseBenchOutput(r io.Reader) ([]benchSample, error) {
	byName := map[string]int{}
	var out []benchSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		s := benchSample{Name: m[1], NsPerOp: ns, Metrics: map[string]float64{}}
		for _, mp := range metricPair.FindAllStringSubmatch(m[3], -1) {
			if v, err := strconv.ParseFloat(mp[1], 64); err == nil {
				s.Metrics[normalizeMetric(mp[2])] = v
			}
		}
		if i, dup := byName[s.Name]; dup {
			out[i] = s
		} else {
			byName[s.Name] = len(out)
			out = append(out, s)
		}
	}
	return out, sc.Err()
}

// checkResult is one delta-table row: a metric comparison (kind empty, what
// names the metric), a "missing" row (baseline entry absent from the run:
// fails unless scoped out), or a "new" row (run benchmark absent from the
// baseline: informational, so freshly added benchmarks are visible in the
// log before their baseline lands). kind is a separate field so a metric
// that happens to be named "missing" or "new" cannot collide with the row
// types.
type checkResult struct {
	name   string
	kind   string // "" (metric comparison), "missing", or "new"
	what   string // metric key, or "ns/op"
	base   float64
	got    float64
	change float64 // relative change of the measured value vs the baseline
	lower  bool    // gate direction: true = an increase is the regression
	failed bool
}

// improved reports whether the change moved in the metric's good direction.
func (r checkResult) improved() bool {
	if r.change == 0 {
		return false
	}
	return (r.change > 0) != r.lower
}

// runCheck compares samples against the baseline. A baseline entry missing
// from the candidate output FAILS the gate (reported as "MISS") unless its
// name is excluded by `require`: a benchmark silently skipped is a benchmark
// silently ungated, which is how a renamed or typo'd bench regex turns the
// gate green while gating nothing. `require` (nil = every baseline entry)
// lets a CI job that deliberately runs a subset say which entries it owes.
func runCheck(base baselineFile, samples []benchSample, tolerance float64, gateNs bool, require *regexp.Regexp) ([]checkResult, error) {
	byName := map[string]benchSample{}
	for _, s := range samples {
		byName[s.Name] = s
	}
	var out []checkResult
	matched := 0
	for _, b := range base.Benchmarks {
		s, ok := byName[b.Name]
		if !ok {
			if require == nil || require.MatchString(b.Name) {
				out = append(out, checkResult{
					name: b.Name, kind: "missing", failed: true,
				})
			}
			continue
		}
		matched++
		for key, bv := range b.Metrics {
			gv, ok := s.Metrics[key]
			if !ok || bv <= 0 {
				continue
			}
			change := gv/bv - 1
			lower := b.lowerIsBetter(key)
			failed := change < -tolerance
			if lower {
				// Inverted direction (cost metrics like allocs per committed
				// txn): growing beyond tolerance is the regression.
				failed = change > tolerance
			}
			out = append(out, checkResult{
				name: b.Name, what: key, base: bv, got: gv, change: change,
				lower: lower, failed: failed,
			})
		}
		if b.NsPerOp > 0 && s.NsPerOp > 0 {
			change := b.NsPerOp/s.NsPerOp - 1 // faster = positive improvement
			out = append(out, checkResult{
				name: b.Name, what: "ns/op", base: b.NsPerOp, got: s.NsPerOp, change: change,
				failed: gateNs && change < -tolerance,
			})
		}
	}
	// Samples without a baseline entry print as informational "new" rows:
	// the full delta table always shows everything the run measured, so CI
	// logs carry the perf trajectory of fresh benchmarks from day one.
	known := map[string]bool{}
	for _, b := range base.Benchmarks {
		known[b.Name] = true
	}
	for _, s := range samples {
		// parseBenchOutput already dedupes by name; the known-map guard also
		// keeps this loop one-row-per-benchmark for any direct caller.
		if !known[s.Name] {
			known[s.Name] = true
			out = append(out, checkResult{name: s.Name, kind: "new", got: s.NsPerOp})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].what < out[j].what
	})
	if matched == 0 {
		return out, fmt.Errorf("no benchmark in the output matches any baseline entry")
	}
	return out, nil
}

// check is the -check entry point; returns the process exit code.
// requireExpr scopes which baseline entries MUST be present in the bench
// output ("" requires all of them — missing is a loud failure, not a skip).
func check(benchFile, basePath string, tolerance float64, gateNs bool, requireExpr string) int {
	var require *regexp.Regexp
	if requireExpr != "" {
		re, err := regexp.Compile(requireExpr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uccbench: -require: %v\n", err)
			return 2
		}
		require = re
	}
	f, err := os.Open(benchFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uccbench: %v\n", err)
		return 2
	}
	defer f.Close()
	samples, err := parseBenchOutput(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uccbench: parse %s: %v\n", benchFile, err)
		return 2
	}
	raw, err := os.ReadFile(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uccbench: %v\n", err)
		return 2
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "uccbench: parse %s: %v\n", basePath, err)
		return 2
	}
	results, checkErr := runCheck(base, samples, tolerance, gateNs, require)
	// The full delta table prints on pass AND fail — including the
	// zero-matches failure, where the MISS/NEW rows are exactly what reveals
	// a renamed suite or typo'd -bench regex.
	// A green gate whose log
	// shows only "pass" hides the perf trajectory — steady −5% drifts that
	// never individually trip the tolerance stay invisible until they have
	// compounded into a regression nobody can bisect.
	failures, compared, improved, regressed, fresh := 0, 0, 0, 0, 0
	fmt.Printf("bench gate: %s vs %s (tolerance %.0f%%, ns/op gated: %v)\n",
		benchFile, basePath, tolerance*100, gateNs)
	for _, r := range results {
		switch r.kind {
		case "missing":
			failures++
			fmt.Printf("  MISS %-45s not in the bench output (renamed? typo'd -bench regex? scope with -require)\n", r.name)
			continue
		case "new":
			fresh++
			fmt.Printf("  NEW  %-45s %-16s %32.1f ns/op (no baseline entry yet)\n", r.name, "", r.got)
			continue
		}
		compared++
		switch {
		case r.improved():
			improved++
		case r.change != 0:
			regressed++
		}
		verdict := "ok"
		if r.failed {
			verdict = "FAIL"
			failures++
		} else if !r.lower && r.change < -tolerance {
			verdict = "info" // ns/op drift outside tolerance but not gated
		}
		what := r.what
		if r.lower {
			what += " (lower=better)"
		}
		fmt.Printf("  %-4s %-45s %-30s base %14.1f  got %14.1f  (%+.1f%%)\n",
			verdict, r.name, what, r.base, r.got, r.change*100)
	}
	fmt.Printf("bench gate: %d comparison(s): %d improved, %d regressed, %d new benchmark(s) without baseline\n",
		compared, improved, regressed, fresh)
	if checkErr != nil {
		fmt.Fprintf(os.Stderr, "uccbench: check: %v\n", checkErr)
		return 1
	}
	if failures > 0 {
		fmt.Printf("bench gate: %d failure(s) (regressions beyond %.0f%% or missing benchmarks)\n", failures, tolerance*100)
		return 1
	}
	fmt.Println("bench gate: pass")
	return 0
}
