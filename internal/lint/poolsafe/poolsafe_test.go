package poolsafe_test

import (
	"testing"

	"ucc/internal/lint/linttest"
	"ucc/internal/lint/poolsafe"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, poolsafe.Analyzer, "testdata", "ps/internal/model", "ps/consumer", "ps/internal/qm")
}
