package metrics

import "sync/atomic"

// WireCounters aggregate the transport's codec-level traffic: envelopes and
// bytes each way, and how every outbound connection negotiated (v3 binary
// frames vs the legacy v2 gob fallback). The transport owns one instance and
// bumps it from its reader and writer goroutines; everything is atomic so
// snapshots are safe from any goroutine. Bytes are counted at the frame
// layer (encoded frames, before the kernel) in both directions for v3
// traffic, so BytesOut/MsgsOut and BytesIn/MsgsIn are the real wire cost per
// message the codec achieves and the two ends of a link agree. The one
// exception is a legacy v2 gob stream, which has no frames: its bytes (both
// directions) are counted at the socket layer, so they include gob's type
// dictionaries and may re-count a batch retried across a reconnect
// (approximate by nature — the stream being measured is the legacy cost).
type WireCounters struct {
	MsgsOut  atomic.Uint64
	BytesOut atomic.Uint64
	MsgsIn   atomic.Uint64
	BytesIn  atomic.Uint64
	// V3Conns counts outbound connections that negotiated wire v3;
	// V2Fallbacks counts outbound connections that fell back to the legacy
	// gob stream because the peer never acknowledged v3 (an older build —
	// or, rarely, a live v3 peer whose ack stalled past the negotiation
	// timeout; the fallback still interoperates and the next dial re-probes).
	V3Conns     atomic.Uint64
	V2Fallbacks atomic.Uint64
	// UnknownIn counts v3 frames skipped because they carried a message tag
	// this build doesn't know — traffic from a NEWER peer during a rolling
	// upgrade. Skipped frames are excluded from MsgsIn/BytesIn (they are
	// not decoded messages, and counting their bytes without a message
	// would skew B/msg). Persistent growth outside an upgrade window means
	// version skew worth investigating.
	UnknownIn atomic.Uint64
}

// WireSnapshot is a point-in-time copy of WireCounters.
type WireSnapshot struct {
	MsgsOut, BytesOut    uint64
	MsgsIn, BytesIn      uint64
	V3Conns, V2Fallbacks uint64
	UnknownIn            uint64
}

// Snapshot copies the counters.
func (w *WireCounters) Snapshot() WireSnapshot {
	return WireSnapshot{
		MsgsOut: w.MsgsOut.Load(), BytesOut: w.BytesOut.Load(),
		MsgsIn: w.MsgsIn.Load(), BytesIn: w.BytesIn.Load(),
		V3Conns: w.V3Conns.Load(), V2Fallbacks: w.V2Fallbacks.Load(),
		UnknownIn: w.UnknownIn.Load(),
	}
}

// BytesPerMsgOut is the average encoded size of an outbound envelope (0 when
// nothing was sent).
func (s WireSnapshot) BytesPerMsgOut() float64 {
	if s.MsgsOut == 0 {
		return 0
	}
	return float64(s.BytesOut) / float64(s.MsgsOut)
}

// BytesPerMsgIn is the average encoded size of an inbound envelope.
func (s WireSnapshot) BytesPerMsgIn() float64 {
	if s.MsgsIn == 0 {
		return 0
	}
	return float64(s.BytesIn) / float64(s.MsgsIn)
}
