package model

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// genPrec draws a random precedence with small coordinates so collisions
// (ties) actually occur and exercise the tie-break chain.
func genPrec(r *rand.Rand) Precedence {
	is2pl := r.Intn(2) == 0
	p := Precedence{
		TS:      Timestamp(r.Intn(5)),
		Is2PL:   is2pl,
		Site:    SiteID(r.Intn(3)),
		Arrival: uint64(r.Intn(4)),
		Txn:     TxnID{Site: SiteID(r.Intn(3)), Seq: uint64(r.Intn(4))},
	}
	return p
}

func TestPrecedenceTimestampDominates(t *testing.T) {
	a := Precedence{TS: 1, Is2PL: true, Arrival: 99}
	b := Precedence{TS: 2, Site: 1, Txn: TxnID{Site: 1, Seq: 1}}
	if !a.Less(b) {
		t.Fatal("smaller timestamp must precede regardless of other fields")
	}
}

func TestPrecedence2PLIsBiggestSite(t *testing.T) {
	// §4.1 step 2: with equal timestamps a 2PL request sorts after every
	// non-2PL request, whatever the site ids.
	to := Precedence{TS: 7, Site: 1000, Txn: TxnID{Site: 1000, Seq: 5}}
	twopl := Precedence{TS: 7, Is2PL: true, Arrival: 0}
	if !to.Less(twopl) {
		t.Fatal("2PL must compare as the biggest site id")
	}
	if twopl.Less(to) {
		t.Fatal("2PL before T/O with equal TS")
	}
}

func TestPrecedence2PLArrivalOrder(t *testing.T) {
	a := Precedence{TS: 3, Is2PL: true, Arrival: 1}
	b := Precedence{TS: 3, Is2PL: true, Arrival: 2}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("2PL pairs with equal TS must order by arrival")
	}
}

func TestPrecedenceNonTwoPLSiteThenTxn(t *testing.T) {
	a := Precedence{TS: 3, Site: 1, Txn: TxnID{Site: 1, Seq: 9}}
	b := Precedence{TS: 3, Site: 2, Txn: TxnID{Site: 2, Seq: 1}}
	if !a.Less(b) {
		t.Fatal("equal TS: smaller site id first")
	}
	c := Precedence{TS: 3, Site: 1, Txn: TxnID{Site: 1, Seq: 1}}
	if !c.Less(a) {
		t.Fatal("equal TS and site: smaller txn id first")
	}
}

// TestPrecedenceTotalOrderProperties checks antisymmetry and transitivity on
// random triples (testing/quick).
func TestPrecedenceTotalOrderProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 5000}
	anti := func(seedA, seedB int64) bool {
		ra, rb := rand.New(rand.NewSource(seedA)), rand.New(rand.NewSource(seedB))
		a, b := genPrec(ra), genPrec(rb)
		ab, ba := a.Compare(b), b.Compare(a)
		return (ab == 0) == (ba == 0) && (ab < 0) == (ba > 0)
	}
	if err := quick.Check(anti, cfg); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}
	trans := func(s1, s2, s3 int64) bool {
		a := genPrec(rand.New(rand.NewSource(s1)))
		b := genPrec(rand.New(rand.NewSource(s2)))
		c := genPrec(rand.New(rand.NewSource(s3)))
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 {
			return a.Compare(c) <= 0
		}
		return true
	}
	if err := quick.Check(trans, cfg); err != nil {
		t.Errorf("transitivity: %v", err)
	}
}

// TestPrecedenceSortStability: sorting any shuffle of distinct precedences
// yields the same order (total order ⇒ unique sort).
func TestPrecedenceSortStability(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var ps []Precedence
	for i := 0; i < 200; i++ {
		p := genPrec(r)
		p.Txn.Seq = uint64(i) // force distinctness
		p.Arrival = uint64(i)
		ps = append(ps, p)
	}
	sortPs := func(in []Precedence) []Precedence {
		out := append([]Precedence(nil), in...)
		sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
		return out
	}
	ref := sortPs(ps)
	for trial := 0; trial < 10; trial++ {
		shuf := append([]Precedence(nil), ps...)
		r.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		got := sortPs(shuf)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: sort unstable at %d: %v vs %v", trial, i, got[i], ref[i])
			}
		}
	}
}

func TestTxnIDCompare(t *testing.T) {
	a := TxnID{Site: 1, Seq: 5}
	b := TxnID{Site: 1, Seq: 6}
	c := TxnID{Site: 2, Seq: 1}
	if a.Compare(b) >= 0 || b.Compare(c) >= 0 || a.Compare(a) != 0 {
		t.Fatal("TxnID ordering broken")
	}
	if c.Compare(a) <= 0 {
		t.Fatal("reverse comparison broken")
	}
}

func TestLockConflictMatrix(t *testing.T) {
	cases := []struct {
		a, b LockKind
		want bool
	}{
		{RL, RL, false}, {RL, SRL, false}, {SRL, SRL, false},
		{RL, WL, true}, {RL, SWL, true}, {SRL, WL, true}, {SRL, SWL, true},
		{WL, WL, true}, {WL, SWL, true}, {SWL, SWL, true},
	}
	for _, c := range cases {
		if got := LocksConflict(c.a, c.b); got != c.want {
			t.Errorf("LocksConflict(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
		if got := LocksConflict(c.b, c.a); got != c.want {
			t.Errorf("LocksConflict(%v,%v)=%v want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestOpKindConflicts(t *testing.T) {
	if OpRead.Conflicts(OpRead) {
		t.Fatal("read/read must not conflict")
	}
	if !OpRead.Conflicts(OpWrite) || !OpWrite.Conflicts(OpRead) || !OpWrite.Conflicts(OpWrite) {
		t.Fatal("write conflicts missing")
	}
}
