package ucc

import (
	"testing"
	"time"

	"ucc/internal/model"
)

func TestFacadeWorkloadRun(t *testing.T) {
	c, err := New(Config{Sites: 3, Items: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Workload(Workload{
		Rate: 30, Duration: 2 * time.Second, Mix: Mix{TwoPL: 1, TO: 1, PA: 1},
	}); err != nil {
		t.Fatal(err)
	}
	res := c.Run()
	if res.Committed() < 100 {
		t.Fatalf("committed %d", res.Committed())
	}
	if !res.Serializable() {
		t.Fatalf("not serializable: %v", res.ConflictCycle())
	}
	if res.Unfinished() != 0 {
		t.Fatalf("unfinished: %d", res.Unfinished())
	}
	if res.MeanSystemTime() <= 0 || res.Throughput() <= 0 {
		t.Fatal("metrics empty")
	}
	if len(res.SerializationOrder()) == 0 {
		t.Fatal("no witness order")
	}
	for _, p := range []Protocol{TwoPL, TO, PA} {
		if res.Stats(p).Committed == 0 {
			t.Fatalf("protocol %v committed nothing", p)
		}
	}
}

// TestFacadeReadOnlyFastPath: a Mix with a ReadOnly share runs pure-read
// transactions on the snapshot fast path — committed under the RO class,
// served from version chains without queueing, still one serializable
// execution, and visible as a separate latency class in the result.
func TestFacadeReadOnlyFastPath(t *testing.T) {
	c, err := New(Config{Sites: 3, Items: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Workload(Workload{
		Rate: 40, Duration: 2 * time.Second,
		Mix: Mix{TwoPL: 0.2, TO: 0.2, PA: 0.2, ReadOnly: 0.4},
	}); err != nil {
		t.Fatal(err)
	}
	res := c.Run()
	if !res.Serializable() {
		t.Fatalf("not serializable: %v", res.ConflictCycle())
	}
	if res.Unfinished() != 0 {
		t.Fatalf("unfinished: %d", res.Unfinished())
	}
	ro := res.ReadOnly()
	if ro.Committed == 0 {
		t.Fatal("no read-only snapshot transactions committed")
	}
	if ro.MeanSystemTime <= 0 {
		t.Fatal("read-only latency class empty")
	}
	rw := res.ReadWrite()
	if rw.Committed == 0 || rw.MeanSystemTime <= 0 {
		t.Fatal("read-write latency class empty")
	}
	if res.Stats(ROSnapshot).Committed != ro.Committed {
		t.Fatal("Stats(ROSnapshot) disagrees with ReadOnly()")
	}
	served, inexact := res.SnapshotReads()
	if served == 0 {
		t.Fatal("no snapshot reads served at the QMs")
	}
	if inexact != 0 {
		t.Fatalf("%d snapshot reads were inexact", inexact)
	}
	// Restarts cannot happen on the fast path.
	if s := res.Stats(ROSnapshot); s.Restarts != 0 || s.DeadlockAborts != 0 || s.Backoffs != 0 {
		t.Fatalf("read-only class saw contention events: %+v", s)
	}
}

// TestFacadeLargeStalenessStaysConsistent: a snapshot staleness larger than
// the default chain retention window must not produce inexact reads or
// non-serializable executions — the cluster sizes the chain policy up to
// cover the configured staleness.
func TestFacadeLargeStalenessStaysConsistent(t *testing.T) {
	c, err := New(Config{
		Sites: 3, Items: 16, Seed: 9,
		SnapshotStaleness: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Workload(Workload{
		Rate: 60, Duration: 2 * time.Second,
		ReadFrac: 0.2, // write-heavy remainder churns the chains
		Mix:      Mix{PA: 0.5, ReadOnly: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	res := c.Run()
	if !res.Serializable() {
		t.Fatalf("not serializable with 400ms staleness: %v", res.ConflictCycle())
	}
	served, inexact := res.SnapshotReads()
	if served == 0 {
		t.Fatal("no snapshot reads served")
	}
	if inexact != 0 {
		t.Fatalf("%d of %d snapshot reads inexact: chain retention did not cover the staleness margin", inexact, served)
	}
}

// TestFacadeReadOnlySeesCommittedWrites: a hand-built snapshot read observes
// a write committed comfortably before its snapshot timestamp.
func TestFacadeReadOnlySeesCommittedWrites(t *testing.T) {
	c, err := New(Config{Sites: 2, Items: 8, InitialValue: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	c.SubmitAt(c.NewTxn(0, TwoPL).Set(3, 77).Build(), 0)
	// 500ms later (snapshot staleness is 15ms), a read-only transaction
	// must see the committed value.
	c.SubmitAt(c.NewTxn(1, ROSnapshot).Read(3).Build(), 500*time.Millisecond)
	res := c.Run()
	if res.Committed() != 2 {
		t.Fatalf("committed %d, want 2", res.Committed())
	}
	if !res.Serializable() {
		t.Fatal("not serializable")
	}
	if res.ReadOnly().Committed != 1 {
		t.Fatalf("RO committed = %d, want 1", res.ReadOnly().Committed)
	}
}

// TestFacadeDynamicSelectionRoutesReadsToFastPath: with dynamic selection
// on, pure-read transactions go to the ROSnapshot class without any Mix or
// protocol tagging.
func TestFacadeDynamicSelectionRoutesReadsToFastPath(t *testing.T) {
	c, err := New(Config{Sites: 3, Items: 32, Seed: 6, DynamicSelection: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Workload(Workload{
		Rate: 40, Duration: 2 * time.Second,
		Size: 4, ReadFrac: 0.95, // high read share → frequent pure-read draws
		Mix: Mix{PA: 1},
	}); err != nil {
		t.Fatal(err)
	}
	res := c.Run()
	if !res.Serializable() {
		t.Fatalf("not serializable: %v", res.ConflictCycle())
	}
	if res.ReadOnlyDecisions() == 0 {
		t.Fatal("selector never routed a pure-read transaction to the fast path")
	}
	if res.ReadOnly().Committed == 0 {
		t.Fatal("no routed read-only transactions committed")
	}
}

func TestFacadeHandBuiltTransactions(t *testing.T) {
	c, err := New(Config{Sites: 2, Items: 8, InitialValue: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// t1 sets item 0 to 100; t2 moves 30 from item 0 to item 1.
	c.SubmitAt(c.NewTxn(0, TwoPL).Set(0, 100).Build(), 0)
	c.SubmitAt(c.NewTxn(1, PA).Add(0, 0, -30).Add(1, 1, +30).Build(), 200*time.Millisecond)
	res := c.Run()
	if res.Committed() != 2 {
		t.Fatalf("committed %d", res.Committed())
	}
	if !res.Serializable() {
		t.Fatal("not serializable")
	}
	if got := c.Value(0); got != 70 {
		t.Fatalf("item0 = %d want 70", got)
	}
	if got := c.Value(1); got != 40 {
		t.Fatalf("item1 = %d want 40 (10+30)", got)
	}
}

func TestFacadeDynamicSelection(t *testing.T) {
	c, err := New(Config{
		Sites: 3, Items: 24, Seed: 4,
		DynamicSelection:  true,
		SelectionFallback: PA,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Workload(Workload{Rate: 25, Duration: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	res := c.Run()
	if !res.Serializable() {
		t.Fatal("not serializable")
	}
	n2, nt, np := res.Decisions()
	if n2+nt+np == 0 {
		t.Fatal("selector made no decisions")
	}
}

func TestFacadeReplicaConsistency(t *testing.T) {
	// With write-all replication every replica of every item must hold the
	// same value once the system quiesces.
	c, err := New(Config{Sites: 4, Items: 16, Replicas: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Workload(Workload{
		Rate: 20, Duration: 2 * time.Second, ReadFrac: 0.3, Mix: Mix{TwoPL: 1, TO: 1, PA: 1},
	}); err != nil {
		t.Fatal(err)
	}
	res := c.Run()
	if !res.Serializable() {
		t.Fatal("not serializable")
	}
	for item := 0; item < 16; item++ {
		var vals []int64
		for _, site := range c.inner.CurrentMap().Replicas(model.ItemID(item)) {
			v, _ := c.inner.Stores[site].Read(model.ItemID(item))
			vals = append(vals, v)
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] != vals[0] {
				t.Fatalf("item %d replicas diverged: %v", item, vals)
			}
		}
	}
}

// TestSerializabilityAcrossSeeds is the headline property test: every seed,
// every mix, every contention level must produce a conflict-serializable
// execution (Theorem 2), with PA never restarting (Corollary 1).
func TestSerializabilityAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	for seed := int64(1); seed <= 12; seed++ {
		cfg := Config{Sites: 4, Items: 10 + int(seed%3)*8, Seed: seed}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Workload(Workload{
			Rate:     35,
			Duration: 2 * time.Second,
			Size:     3 + int(seed%3),
			ReadFrac: 0.5,
			Mix:      Mix{TwoPL: 1, TO: 1, PA: 1},
		}); err != nil {
			t.Fatal(err)
		}
		res := c.Run()
		if !res.Serializable() {
			t.Fatalf("seed %d: NOT serializable: %v", seed, res.ConflictCycle())
		}
		if res.Unfinished() != 0 {
			t.Errorf("seed %d: %d unfinished", seed, res.Unfinished())
		}
		if r := res.Stats(PA).Restarts; r != 0 {
			t.Errorf("seed %d: PA restarted %d times (Corollary 1)", seed, r)
		}
		if v := res.Stats(PA).DeadlockAborts; v != 0 {
			t.Errorf("seed %d: PA deadlock-aborted %d times (Corollary 1)", seed, v)
		}
		if v := res.Stats(TO).DeadlockAborts; v != 0 {
			t.Errorf("seed %d: T/O deadlock-aborted %d times", seed, v)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	cfg.fill()
	if cfg.Sites != 3 || cfg.Items != 64 || cfg.Replicas != 1 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.NetDelayMin <= 0 || cfg.NetDelayMax < cfg.NetDelayMin {
		t.Fatal("latency defaults")
	}
}

func TestWorkloadAfterRunRejected(t *testing.T) {
	c, _ := New(Config{Seed: 9, Items: 8})
	c.Run()
	if err := c.Workload(Workload{}); err == nil {
		t.Fatal("Workload after Run must fail")
	}
}

func TestDeterministicRuns(t *testing.T) {
	// Same seed → byte-identical outcome (commit count, mean S, decisions).
	run := func() (uint64, time.Duration) {
		c, err := New(Config{Sites: 3, Items: 24, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Workload(Workload{
			Rate: 30, Duration: 2 * time.Second, Mix: Mix{TwoPL: 1, TO: 1, PA: 1},
		}); err != nil {
			t.Fatal(err)
		}
		res := c.Run()
		return res.Committed(), res.MeanSystemTime()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%d, %v) vs (%d, %v)", c1, s1, c2, s2)
	}
}

func TestDisableSemiLocks(t *testing.T) {
	c, err := New(Config{Sites: 3, Items: 16, Seed: 8, DisableSemiLocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Workload(Workload{
		Rate: 30, Duration: 2 * time.Second, Mix: Mix{TO: 1}, ReadFrac: 0.6,
	}); err != nil {
		t.Fatal(err)
	}
	res := c.Run()
	if !res.Serializable() {
		t.Fatal("lock-everything enforcement must still be serializable")
	}
	// No pre-scheduled grants can exist in this mode.
	if got := c.inner.QMTotals().PreGrants; got != 0 {
		t.Fatalf("pre-scheduled grants in lock-everything mode: %d", got)
	}
}

func TestEscalateRestartsToPA(t *testing.T) {
	c, err := New(Config{
		Sites: 4, Items: 8, Seed: 31,
		EscalateRestartsToPA: true,
		NetDelayMin:          500 * time.Microsecond,
		NetDelayMax:          8 * time.Millisecond, // heavy jitter → rejections
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Workload(Workload{
		Rate: 40, Duration: 3 * time.Second, Size: 3, ReadFrac: 0.4, Mix: Mix{TO: 1},
	}); err != nil {
		t.Fatal(err)
	}
	res := c.Run()
	if !res.Serializable() {
		t.Fatal("not serializable")
	}
	// Escalated transactions commit under PA even though the workload was
	// generated as pure T/O.
	if res.Stats(PA).Committed == 0 {
		t.Skip("no transaction needed escalation at this seed")
	}
}

func TestAllWritesWorkload(t *testing.T) {
	c, err := New(Config{Sites: 3, Items: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// ReadFrac: AllWrites must request a genuine 0% read share — the zero
	// value's 0.6 default used to make this impossible.
	if err := c.Workload(Workload{
		Rate: 25, Duration: 2 * time.Second, ReadFrac: AllWrites, Mix: Mix{PA: 1},
	}); err != nil {
		t.Fatal(err)
	}
	res := c.Run()
	if res.Committed() < 100 {
		t.Fatalf("committed %d", res.Committed())
	}
	ps := res.inner.Summary.Protocols[model.PA]
	if ps.ReadReqs != 0 {
		t.Fatalf("all-write workload issued %d read requests", ps.ReadReqs)
	}
	if ps.WriteReqs == 0 {
		t.Fatal("all-write workload issued no writes")
	}
}

func TestReadFracZeroStillDefaults(t *testing.T) {
	c, err := New(Config{Sites: 3, Items: 32, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Workload(Workload{
		Rate: 25, Duration: time.Second, Mix: Mix{PA: 1}, // ReadFrac unset
	}); err != nil {
		t.Fatal(err)
	}
	res := c.Run()
	ps := res.inner.Summary.Protocols[model.PA]
	if ps.ReadReqs == 0 {
		t.Fatal("unset ReadFrac no longer defaults to a read-mostly mix")
	}
}

func TestFacadeCrashRecovery(t *testing.T) {
	c, err := New(Config{Sites: 3, Items: 24, Replicas: 2, Seed: 11, Durability: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Workload(Workload{
		Rate: 25, Duration: 3 * time.Second, Size: 3, Mix: Mix{TwoPL: 1, TO: 1, PA: 1},
	}); err != nil {
		t.Fatal(err)
	}
	c.CrashSite(1, 1200*time.Millisecond)
	c.RecoverSite(1, 1500*time.Millisecond)
	res := c.Run()
	if !res.Serializable() {
		t.Fatalf("not serializable across the crash: %v", res.ConflictCycle())
	}
	if res.Committed() < 100 {
		t.Fatalf("committed %d", res.Committed())
	}
	qt := c.inner.QMTotals()
	if qt.Crashes != 1 || qt.Recoveries != 1 {
		t.Fatalf("crashes=%d recoveries=%d, want 1/1", qt.Crashes, qt.Recoveries)
	}
	// Replicas converge after recovery.
	for item := 0; item < 24; item++ {
		sites := c.inner.CurrentMap().Replicas(model.ItemID(item))
		v0, _ := c.inner.Stores[sites[0]].Read(model.ItemID(item))
		for _, s := range sites[1:] {
			v, _ := c.inner.Stores[s].Read(model.ItemID(item))
			if v != v0 {
				t.Fatalf("item %d replicas diverged after facade crash/recovery", item)
			}
		}
	}
}

// TestFacadeShardsOver256Rejected: the shard index travels in one byte, so
// a shard count the address space cannot represent must be an error at the
// facade, not a silent misroute.
func TestFacadeShardsOver256Rejected(t *testing.T) {
	if _, err := New(Config{Sites: 2, Items: 16, Shards: 300}); err == nil {
		t.Fatal("Shards=300 accepted")
	}
	if _, err := New(Config{Sites: 2, Items: 16, Shards: 256}); err != nil {
		t.Fatalf("Shards=256 rejected: %v", err)
	}
}

// TestFacadeAdmissionControlSheds: with the overload knobs on, a far-over-
// capacity open-loop workload commits a bounded-latency subset, sheds the
// rest, keeps every data queue inside its bound, and stays serializable.
func TestFacadeAdmissionControlSheds(t *testing.T) {
	c, err := New(Config{
		Sites: 3, Items: 12, Seed: 4,
		Admission:       true,
		AdmissionWindow: 16,
		MaxQueueDepth:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Workload(Workload{
		Rate: 400, Duration: 2 * time.Second, Size: 3, Mix: Mix{PA: 1},
	}); err != nil {
		t.Fatal(err)
	}
	res := c.Run()
	if !res.Serializable() {
		t.Fatalf("not serializable: %v", res.ConflictCycle())
	}
	ov := res.Overload()
	if ov.Shed == 0 {
		t.Fatal("admission shed nothing at 400 txn/s/site")
	}
	if ov.MaxQueueDepth > 8 {
		t.Fatalf("data queue depth %d exceeded the configured bound 8", ov.MaxQueueDepth)
	}
	if res.Committed() == 0 {
		t.Fatal("admission shed everything")
	}
	if res.Offered() != res.Committed()+ov.Shed+uint64(res.Unfinished()) {
		t.Fatalf("offered %d != committed %d + shed %d + unfinished %d",
			res.Offered(), res.Committed(), ov.Shed, res.Unfinished())
	}
}

// TestFacadeOfferedIdentityUnderOverload pins the issuer ledger identity
// Result.Offered documents, with EVERY term live at once: offered =
// committed + admission-shed + RO-busy-shed + dropped-at-MaxAttempts +
// unfinished. The workload is built so the interesting terms are provably
// nonzero — far-over-capacity arrivals against admission control (shed > 0),
// a tiny hot T/O-heavy item set behind shallow bounded queues so restarts
// exhaust the attempt cap (dropped > 0) — because an identity test whose
// terms are all zero pins nothing. A read-only share rides along so the
// RO-busy-shed path is at least reachable; its count may legitimately be
// zero (snapshot reads only shed when a saturated queue NAKs them).
func TestFacadeOfferedIdentityUnderOverload(t *testing.T) {
	c, err := New(Config{
		Sites: 3, Items: 8, Seed: 11,
		Admission:     true,
		AdmissionRate: 50,
		MaxQueueDepth: 4,
		MaxAttempts:   2,
		RestartDelay:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Workload(Workload{
		Rate: 300, Duration: 2 * time.Second, Size: 3,
		Mix:     Mix{TO: 0.8, PA: 0.1, ReadOnly: 0.1},
		Hotspot: 2,
	}); err != nil {
		t.Fatal(err)
	}
	res := c.Run()
	ov := res.Overload()

	if ov.Shed == 0 {
		t.Fatal("admission shed nothing at 300 txn/s/site against a 50/s token bucket")
	}
	if ov.Dropped == 0 {
		t.Fatal("nothing hit the MaxAttempts=2 cap on a 2-item hotspot behind depth-4 queues")
	}
	if res.Committed() == 0 {
		t.Fatal("overload machinery shed everything")
	}
	got := res.Committed() + ov.Shed + ov.ROBusyShed + ov.Dropped + uint64(res.Unfinished())
	if res.Offered() != got {
		t.Fatalf("offered %d != committed %d + shed %d + roBusyShed %d + dropped %d + unfinished %d = %d",
			res.Offered(), res.Committed(), ov.Shed, ov.ROBusyShed, ov.Dropped, res.Unfinished(), got)
	}
	// The cap drops transactions mid-flight; the run must still drain clean
	// and serializable (a dropped transaction releases everything it held).
	if res.Unfinished() != 0 {
		t.Fatalf("%d transactions leaked past the drain", res.Unfinished())
	}
	if !res.Serializable() {
		t.Fatalf("not serializable under overload + attempt cap: %v", res.ConflictCycle())
	}
}

// TestFacadeQuorumFailover drives the quorum + catch-up stack through the
// public facade: a 3-way quorum cluster loses a site mid-run, keeps
// committing, and converges every replica after the site recovers.
func TestFacadeQuorumFailover(t *testing.T) {
	c, err := New(Config{
		Sites: 3, Items: 16, Replicas: 3, Seed: 9,
		Durability: true,
		QuorumN:    3, QuorumW: 2, QuorumR: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Workload(Workload{
		Rate: 20, Duration: 3 * time.Second, ReadFrac: 0.4, Mix: Mix{TwoPL: 1, TO: 1, PA: 1},
	}); err != nil {
		t.Fatal(err)
	}
	c.CrashSite(1, time.Second)
	c.RecoverSite(1, 2*time.Second)
	res := c.Run()
	if !res.Serializable() {
		t.Fatalf("not serializable: %v", res.ConflictCycle())
	}
	if res.Unfinished() != 0 {
		t.Fatalf("%d unfinished", res.Unfinished())
	}
	for item := 0; item < 16; item++ {
		vals := c.ReplicaValues(ItemID(item))
		if len(vals) != 3 {
			t.Fatalf("item %d: %d live copies, want 3", item, len(vals))
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] != vals[0] {
				t.Fatalf("item %d replicas diverged after failover: %v", item, vals)
			}
		}
	}
}

// TestFacadeQuorumRejectsBadShape: facade-level quorum knobs surface the
// validation errors instead of silently running write-all.
func TestFacadeQuorumRejectsBadShape(t *testing.T) {
	bad := []Config{
		{Sites: 3, Replicas: 3, Durability: true, QuorumN: 3, QuorumW: 1, QuorumR: 2}, // W+R ≤ N
		{Sites: 3, Replicas: 3, Durability: true, QuorumN: 3, QuorumW: 4, QuorumR: 2}, // W > N
		{Sites: 3, Replicas: 2, Durability: true, QuorumN: 3, QuorumW: 2, QuorumR: 2}, // N ≠ replicas
		{Sites: 3, Replicas: 3, QuorumN: 3, QuorumW: 2, QuorumR: 2},                   // no durability
		{Sites: 3, Replicas: 3, Durability: true, QuorumN: 3},                         // partial triple
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
