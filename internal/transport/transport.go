package transport

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ucc/internal/engine"
	"ucc/internal/model"
)

func init() { model.RegisterGob() }

// WireVersion is the first byte a dialer writes on a fresh connection, before
// the gob stream starts. Version 2 introduced batched (pipelined-encoder)
// framing and shard-qualified addresses; a reader that sees any other value
// closes the connection instead of feeding misframed bytes to the decoder.
const WireVersion byte = 2

// defaultBatchBytes is the mid-batch flush threshold: while draining a large
// backlog the writer flushes whenever this much is buffered, bounding memory
// and keeping the pipe busy instead of building one giant frame.
const defaultBatchBytes = 64 << 10

// WireEnvelope is the on-the-wire form of engine.Envelope.
type WireEnvelope struct {
	FromKind  uint8
	FromID    int32
	FromShard uint8
	ToKind    uint8
	ToID      int32
	ToShard   uint8
	Msg       model.Message
}

func toWire(e engine.Envelope) WireEnvelope {
	return WireEnvelope{
		FromKind: uint8(e.From.Kind), FromID: int32(e.From.ID), FromShard: e.From.Shard,
		ToKind: uint8(e.To.Kind), ToID: int32(e.To.ID), ToShard: e.To.Shard,
		Msg: e.Msg,
	}
}

func fromWire(w WireEnvelope) engine.Envelope {
	return engine.Envelope{
		From: engine.Addr{Kind: engine.ActorKind(w.FromKind), ID: model.SiteID(w.FromID), Shard: w.FromShard},
		To:   engine.Addr{Kind: engine.ActorKind(w.ToKind), ID: model.SiteID(w.ToID), Shard: w.ToShard},
		Msg:  w.Msg,
	}
}

// Topology statically assigns every actor address to a named peer.
type Topology struct {
	// Peers maps peer name → TCP address.
	Peers map[string]string
	// Assign returns the peer name hosting an actor address.
	Assign func(engine.Addr) string
}

// ParsePeerList splits a comma-separated site address list (index = site
// id): at least one entry, none empty, whitespace trimmed.
func ParsePeerList(csv string) ([]string, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, fmt.Errorf("transport: peer list is empty")
	}
	parts := strings.Split(csv, ",")
	out := make([]string, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("transport: peer list entry %d is empty", i)
		}
		out[i] = p
	}
	return out, nil
}

// StandardTopology builds the topology cmd/uccnode and cmd/uccclient share:
// site i's actors on peer "site<i>", the collector (plus drivers and
// anything unknown) on "client". clientAddr may be empty for a node that
// has not yet learned the client's address (the client connects inbound).
func StandardTopology(peers []string, clientAddr string) Topology {
	topo := Topology{
		Peers:  map[string]string{},
		Assign: StandardAssign("client"),
	}
	for i, addr := range peers {
		topo.Peers[fmt.Sprintf("site%d", i)] = addr
	}
	if clientAddr != "" {
		topo.Peers["client"] = clientAddr
	}
	return topo
}

// StandardAssign places QM(i)/RI(i)/Driver(i) on peer "site<i>" (every QM
// shard of a site lives with the site), the deadlock detector on "site0",
// and the collector (plus anything unknown) on clientPeer — the layout
// cmd/uccnode and cmd/uccclient use.
func StandardAssign(clientPeer string) func(engine.Addr) string {
	return func(a engine.Addr) string {
		switch a.Kind {
		case engine.KindQM, engine.KindRI:
			return fmt.Sprintf("site%d", a.ID)
		case engine.KindDetector:
			return "site0"
		default:
			return clientPeer
		}
	}
}

// Node connects one process's runtime to the topology.
//
// Outbound wire path: envelopes for a peer are enqueued on that peer's
// outbox and drained by one writer goroutine, which encodes every queued
// envelope through a persistent pipelined gob encoder into a buffered
// writer and flushes once per drained batch (or at BatchBytes mid-batch) —
// one framed write instead of one syscall-sized write per envelope. Under
// load the batch size grows naturally; when idle, a lone envelope flushes
// immediately, adding no latency.
type Node struct {
	self       string
	topo       Topology
	rt         *engine.Runtime
	batchBytes int
	// batchDelay, when positive, makes the writer linger once per batch for
	// this long before flushing, trading latency for bigger coalesced
	// writes. Zero (the default) flushes as soon as the outbox drains.
	batchDelay time.Duration

	mu       sync.Mutex
	senders  map[string]*peerSender
	outbound map[net.Conn]bool
	inbound  map[net.Conn]bool
	ln       net.Listener
	closed   bool
	wg       sync.WaitGroup

	// sendQueueCap bounds each peer outbox (0 = unbounded): when an enqueue
	// would exceed it, the OLDEST queued sheddable envelope is dropped to
	// make room and its BusyMsg NAK is injected back to the local sender —
	// the same refusal the engine delivers for a full mailbox, so the
	// issuer's attempt aborts (releasing its requests elsewhere) instead of
	// stranding in negotiation. Oldest-first is the right policy for this
	// protocol: a stale request is re-sent by its issuer's restart machinery
	// anyway, while the newest traffic is most likely to still matter. Only
	// sheddable messages
	// (model.Sheddable — new-work openers) are ever evicted, mirroring the
	// engine's mailbox policy: dropping a release or grant to a live-but-slow
	// peer would strand its locks forever, so completer traffic rides past
	// the cap (it is protocol-bounded by the in-flight work the openers
	// admitted). The cap counts only the outbox — a batch the writer has
	// already taken (and may be retrying across a reconnect) is in flight,
	// not queued, so a reconnect cannot double-shrink the budget or lose
	// accounting.
	sendQueueCap int

	// Batching observability (tests, diagnostics).
	sentEnvelopes atomic.Uint64
	flushes       atomic.Uint64
	// droppedSends counts every envelope the transport discarded — cap
	// evictions plus whole batches dropped on an unreachable peer;
	// queueHigh is the deepest any peer outbox has ever been.
	droppedSends atomic.Uint64
	queueHigh    atomic.Int64
}

// peerSender owns the outbox and the single writer goroutine for one peer.
// The writer is the only goroutine that ever touches the peer's connection
// or encoder, which is what makes reconnection safe: a retired connection's
// half-written frame dies with its socket and its encoder; the replacement
// gets a fresh socket, a fresh buffered writer, and a fresh gob stream, so
// no stale bytes can interleave with the new connection's first batch.
type peerSender struct {
	n    *Node
	peer string

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []engine.Envelope
	closed bool
	// shedHint is the index where the eviction scan for the oldest sheddable
	// envelope resumes. Everything before it is known non-sheddable: completers
	// are never evicted and only leave the queue when the writer takes the
	// whole backlog (which resets the hint), so the hint only moves forward
	// between takes and eviction is O(1) amortized instead of an O(n) scan per
	// enqueue at the cap.
	shedHint int
}

// NewNode wires rt's uplink into the topology and starts listening on
// listenAddr (empty string = outbound-only peer, e.g. a client that other
// peers never dial).
func NewNode(rt *engine.Runtime, self, listenAddr string, topo Topology) (*Node, error) {
	if topo.Assign == nil {
		return nil, fmt.Errorf("transport: topology needs an Assign function")
	}
	n := &Node{
		self: self, topo: topo, rt: rt,
		batchBytes: defaultBatchBytes,
		senders:    map[string]*peerSender{},
		outbound:   map[net.Conn]bool{},
		inbound:    map[net.Conn]bool{},
	}
	rt.SetUplink(n.forward)
	if listenAddr != "" {
		ln, err := net.Listen("tcp", listenAddr)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
		}
		n.ln = ln
		n.wg.Add(1)
		go n.acceptLoop()
	}
	return n, nil
}

// SetBatching overrides the outbound batching knobs: flushBytes is the
// mid-batch flush threshold (≤0 keeps the default), delay an optional linger
// before each flush. Call before traffic flows.
func (n *Node) SetBatching(flushBytes int, delay time.Duration) {
	if flushBytes > 0 {
		n.batchBytes = flushBytes
	}
	n.batchDelay = delay
}

// BatchStats reports (envelopes sent over the wire, flushes performed). The
// ratio is the coalescing factor; envelopes/flushes = 1 means no batching
// happened (idle traffic), larger means the pipelined encoder amortized
// syscalls across that many envelopes.
func (n *Node) BatchStats() (envelopes, flushes uint64) {
	return n.sentEnvelopes.Load(), n.flushes.Load()
}

// SetSendQueueCap bounds every peer outbox to cap envelopes; an enqueue at
// the cap drops the oldest queued sheddable envelope to make room (counted
// in QueueStats) and NAKs it back to the local sender with its BusyMsg, so
// the issuing attempt aborts instead of waiting forever on a reply that
// will never come. Completion traffic is never evicted and may ride past
// the cap. Zero (the default) keeps outboxes unbounded. Call before traffic
// flows.
func (n *Node) SetSendQueueCap(cap int) {
	n.mu.Lock()
	n.sendQueueCap = cap
	n.mu.Unlock()
}

// QueueStats reports (envelopes the transport discarded — send-queue-cap
// evictions plus batches dropped on an unreachable peer — and the deepest
// any peer outbox has ever been). With a cap configured, sheddable traffic
// can never push the high-water mark past it — including while a writer is
// stuck dialing a dead peer or retrying a batch across a reconnect, the
// exact regimes where unbounded outboxes used to melt the node; only
// protocol-completion messages (never evicted by design) can exceed it, by
// the protocol-bounded amount of work in flight.
func (n *Node) QueueStats() (dropped uint64, highWater int) {
	return n.droppedSends.Load(), int(n.queueHigh.Load())
}

// Addr returns the bound listen address (tests pass ":0").
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			c.Close()
			return
		}
		n.inbound[c] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(c)
	}
}

func (n *Node) readLoop(c net.Conn) {
	defer n.wg.Done()
	defer func() {
		c.Close()
		n.mu.Lock()
		delete(n.inbound, c)
		n.mu.Unlock()
	}()
	br := bufio.NewReader(c)
	ver, err := br.ReadByte()
	if err != nil || ver != WireVersion {
		return // wrong protocol era (or a port scanner); drop the conn
	}
	dec := gob.NewDecoder(br)
	for {
		var w WireEnvelope
		if err := dec.Decode(&w); err != nil {
			return
		}
		n.rt.Inject(fromWire(w))
	}
}

// forward routes an envelope produced by the local runtime: local
// destinations short-circuit into the runtime; remote ones enqueue on the
// destination peer's outbox for its writer goroutine to batch onto the wire.
func (n *Node) forward(env engine.Envelope) {
	peer := n.topo.Assign(env.To)
	if peer == n.self {
		n.rt.Inject(env)
		return
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	ps := n.senders[peer]
	if ps == nil {
		ps = &peerSender{n: n, peer: peer}
		ps.cond = sync.NewCond(&ps.mu)
		n.senders[peer] = ps
		n.wg.Add(1)
		go ps.run()
	}
	cap := n.sendQueueCap
	n.mu.Unlock()

	ps.mu.Lock()
	var nak engine.Envelope
	haveNak := false
	if !ps.closed {
		if cap > 0 && len(ps.queue) >= cap {
			// Evict the oldest SHEDDABLE envelope (in place, so the backing
			// array is reused), resuming the scan at shedHint — everything
			// before it is completers, which never leave except by a whole-
			// queue take. If the backlog is all completers, grow past the cap
			// instead — the bound is hard for openers, soft for completion
			// traffic whose loss would wedge the protocol.
			for i := ps.shedHint; i < len(ps.queue); i++ {
				if b, ok := busyNAK(ps.queue[i]); ok {
					nak = b
					haveNak = true
					copy(ps.queue[i:], ps.queue[i+1:])
					ps.queue = ps.queue[:len(ps.queue)-1]
					n.droppedSends.Add(1)
					ps.shedHint = i
					break
				}
				ps.shedHint = i + 1
			}
		}
		ps.queue = append(ps.queue, env)
		for d := int64(len(ps.queue)); ; {
			prev := n.queueHigh.Load()
			if d <= prev || n.queueHigh.CompareAndSwap(prev, d) {
				break
			}
		}
		ps.cond.Signal()
	}
	ps.mu.Unlock()
	if haveNak {
		// NAK the evicted envelope back to its (local) sender, exactly as the
		// engine NAKs a sheddable refused at a full mailbox (Runtime.nak):
		// silence here would strand the issuer's attempt in negotiation
		// forever — its already-admitted requests at other sites would hold
		// queue entries with no wait-cycle for the deadlock detector to break.
		// The BusyMsg is not itself sheddable, so Inject always delivers it.
		n.rt.Inject(nak)
	}
}

// take blocks until the outbox is non-empty (or the sender is closed) and
// returns the whole backlog.
func (ps *peerSender) take() ([]engine.Envelope, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for len(ps.queue) == 0 && !ps.closed {
		ps.cond.Wait()
	}
	if len(ps.queue) == 0 {
		return nil, false // closed and drained
	}
	batch := ps.queue
	ps.queue = nil
	ps.shedHint = 0
	return batch, true
}

// tryTake returns any backlog without blocking (batch growth between
// encoding and flushing).
func (ps *peerSender) tryTake() []engine.Envelope {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	batch := ps.queue
	ps.queue = nil
	ps.shedHint = 0
	return batch
}

// conn bundles the per-connection encoding state. It is rebuilt from scratch
// on every (re)dial — see peerSender for why reuse would corrupt the stream.
type peerConn struct {
	c   net.Conn
	bw  *bufio.Writer
	enc *gob.Encoder
}

// run is the writer loop: take the backlog, encode it all, flush once.
// A send that fails on a stale connection (the peer crashed and restarted
// since the dial) is retried once on a fresh dial: without retransmission in
// the protocol, a single lost request would leave its transaction hung
// holding locks for the rest of the run. A peer that is genuinely down still
// drops the batch — the protocol tolerates that as a crashed site — but the
// batch's sheddable envelopes are NAK'd back to their local senders first
// (nakBatch): a silently dropped RequestMsg would strand its attempt in
// negotiation forever, the same wedge the send-queue cap's eviction NAK
// closes. A batch that was partially received before its connection died is
// re-sent whole, so a reconnect may duplicate envelopes; the protocol's
// attempt tagging absorbs duplicates (queue managers drop stale re-requests
// defensively, and supersede a resident entry when a newer attempt's request
// arrives — which also retires any entry a NAK'd-but-partially-delivered
// request left behind once its restart re-requests the copy).
func (ps *peerSender) run() {
	defer ps.n.wg.Done()
	var pc *peerConn
	retire := func() {
		if pc != nil {
			pc.c.Close()
			ps.n.mu.Lock()
			delete(ps.n.outbound, pc.c)
			ps.n.mu.Unlock()
			pc = nil
		}
	}
	defer retire()
	for {
		batch, ok := ps.take()
		if !ok {
			return
		}
		if ps.n.batchDelay > 0 {
			// Optional linger: let the batch grow before it is framed. The
			// grown batch is still retried as a unit on a dead connection.
			time.Sleep(ps.n.batchDelay)
			batch = append(batch, ps.tryTake()...)
		}
		sent := false
		for attempt := 0; attempt < 2; attempt++ {
			if pc == nil {
				c, err := ps.n.dial(ps.peer)
				if err != nil {
					break // unreachable peer: drop the batch (NAK'd below)
				}
				pc = &peerConn{c: c, bw: bufio.NewWriterSize(c, ps.n.batchBytes)}
				pc.enc = gob.NewEncoder(pc.bw)
				pc.bw.WriteByte(WireVersion)
			}
			if err := ps.writeBatch(pc, batch); err == nil {
				sent = true
				break
			}
			// The connection is dead: retire it — along with its encoder and
			// any half-written frame buffered for it — and retry the whole
			// batch exactly once on a fresh dial.
			retire()
		}
		if !sent {
			ps.n.droppedSends.Add(uint64(len(batch)))
			ps.n.nakBatch(batch)
		}
	}
}

// nakBatch answers every sheddable envelope of a dropped batch with its
// BusyMsg NAK to the local sender, exactly as forward does for a cap
// eviction: the peer is unreachable (dead dial, or a write that failed twice)
// and the issuer has no attempt timeout, so silence would strand each
// dropped request's attempt forever while its admitted requests at other
// sites hold queue entries. Completers are dropped without a NAK — that is
// the crashed-site semantics the protocol tolerates, and they have no Busy
// form. The NAKs are best-effort abort triggers: if a request in a
// partially-received batch did reach the peer, the restarted attempt's
// re-request supersedes the resident entry at the queue manager.
func (n *Node) nakBatch(batch []engine.Envelope) {
	for _, env := range batch {
		if nak, ok := busyNAK(env); ok {
			n.rt.Inject(nak)
		}
	}
}

// busyNAK inverts a sheddable envelope into its BusyMsg NAK toward the
// sender (the same inversion engine.Runtime.nak performs for a refused
// mailbox push); ok is false for non-sheddable messages, which have no Busy
// form and are never refused.
func busyNAK(env engine.Envelope) (engine.Envelope, bool) {
	sh, ok := env.Msg.(model.Sheddable)
	if !ok {
		return engine.Envelope{}, false
	}
	return engine.Envelope{From: env.To, To: env.From, Msg: sh.Busy()}, true
}

// writeBatch encodes one batch through the connection's pipelined encoder
// and flushes once at the end, plus at BatchBytes boundaries so a huge
// backlog cannot buffer unboundedly. Envelopes that arrive while encoding
// simply form the next batch — the writer loop takes them on its next
// iteration, so they are never orphaned by a retry of the current batch.
// Stats are counted only on success, so a retried batch is not
// double-counted and the envelopes/flushes ratio keeps meaning "coalescing
// on the wire" even across reconnects.
func (ps *peerSender) writeBatch(pc *peerConn, batch []engine.Envelope) error {
	flushes := uint64(0)
	for _, env := range batch {
		if err := pc.enc.Encode(toWire(env)); err != nil {
			return err
		}
		if pc.bw.Buffered() >= ps.n.batchBytes {
			flushes++
			if err := pc.bw.Flush(); err != nil {
				return err
			}
		}
	}
	if err := pc.bw.Flush(); err != nil {
		return err
	}
	ps.n.sentEnvelopes.Add(uint64(len(batch)))
	ps.n.flushes.Add(flushes + 1)
	return nil
}

// dial opens a fresh connection to peer and starts the close-detection
// reader. Outbound connections carry no inbound traffic (each peer sends on
// its own dials), so a blocked read detects the peer closing — crash or
// restart — the moment it happens. Without it, writes into a dead connection
// keep "succeeding" until the kernel surfaces the RST, silently losing every
// message in between.
func (n *Node) dial(peer string) (net.Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("transport: node closed")
	}
	addr, ok := n.topo.Peers[peer]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: unknown peer %q", peer)
	}
	c, err := net.DialTimeout("tcp", addr, 3*time.Second)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("transport: node closed")
	}
	n.outbound[c] = true
	n.wg.Add(1)
	go n.drainLoop(c)
	n.mu.Unlock()
	return c, nil
}

// drainLoop blocks reading an outbound connection; EOF/RST closes it so the
// owning writer's next flush fails fast and redials the (possibly
// restarted) peer.
func (n *Node) drainLoop(c net.Conn) {
	defer n.wg.Done()
	buf := make([]byte, 256)
	for {
		if _, err := c.Read(buf); err != nil {
			break
		}
	}
	c.Close()
	n.mu.Lock()
	delete(n.outbound, c)
	n.mu.Unlock()
}

// Close shuts the node down, closing the listener and every outbound and
// inbound connection (read loops block in Decode until their connection
// closes, so inbound sockets must be closed too or Close would hang), and
// waking every writer goroutine so it can drain and exit.
func (n *Node) Close() {
	n.mu.Lock()
	n.closed = true
	if n.ln != nil {
		n.ln.Close()
	}
	senders := make([]*peerSender, 0, len(n.senders))
	for _, ps := range n.senders {
		senders = append(senders, ps)
	}
	for c := range n.outbound {
		c.Close()
	}
	for c := range n.inbound {
		c.Close()
	}
	n.mu.Unlock()
	for _, ps := range senders {
		ps.mu.Lock()
		ps.closed = true
		ps.queue = nil
		ps.cond.Broadcast()
		ps.mu.Unlock()
	}
	n.wg.Wait()
}
