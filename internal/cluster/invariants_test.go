package cluster

import (
	"testing"

	"ucc/internal/engine"
	"ucc/internal/model"
	"ucc/internal/workload"
)

// TestHeavyJitterReordering stresses the protocols under exponential
// latency (heavy reordering across sender pairs): more T/O rejections and
// PA back-offs, same correctness guarantees.
func TestHeavyJitterReordering(t *testing.T) {
	cfg := base(13)
	cfg.Items = 16
	cfg.Latency = engine.ExpLatency{MeanMicros: 3_000, LocalMicros: 50}
	cl, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < cfg.Sites; s++ {
		if err := cl.AddDriver(model.SiteID(s), workload.Spec{
			ArrivalPerSec: 25,
			HorizonMicros: 3_000_000,
			Items:         cfg.Items,
			Size:          3,
			ReadFrac:      0.5,
			Share2PL:      1, ShareTO: 1, SharePA: 1,
			ComputeMicros: 500,
		}); err != nil {
			t.Fatal(err)
		}
	}
	res := cl.Run(3_000_000, 8_000_000)
	checkRun(t, "jitter", res, 150)
	if cl.QMTotals().Rejects == 0 {
		t.Error("exponential jitter should cause T/O rejections")
	}
	if got := cl.RITotals().ReBackoffs; got != 0 {
		t.Errorf("PA re-backoffs under jitter: %d (Lemma 1)", got)
	}
}

// TestTOTimestampOrderInvariant checks the §3.3 enforcement result end to
// end: conflicting operations of committed T/O transactions appear in every
// log in timestamp order.
func TestTOTimestampOrderInvariant(t *testing.T) {
	cfg := base(21)
	cfg.Items = 12
	cl, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < cfg.Sites; s++ {
		if err := cl.AddDriver(model.SiteID(s), workload.Spec{
			ArrivalPerSec: 30,
			HorizonMicros: 3_000_000,
			Items:         cfg.Items,
			Size:          3,
			ReadFrac:      0.5,
			ShareTO:       1,
			ComputeMicros: 500,
		}); err != nil {
			t.Fatal(err)
		}
	}
	res := cl.Run(3_000_000, 5_000_000)
	checkRun(t, "to-order", res, 200)

	tsOf := func(id model.TxnID) (model.Timestamp, bool) {
		iss := cl.Issuers[id.Site]
		if iss == nil {
			return 0, false
		}
		return iss.FinalTimestamp(id)
	}
	if err := cl.Recorder.VerifyTimestampOrder(tsOf); err != nil {
		t.Fatalf("timestamp order violated: %v", err)
	}
}

// TestPAFinalTimestampsAgree checks PA's agreement property: after a run,
// every committed PA transaction has exactly one final timestamp recorded
// (the issuer's expectTS), and committed PA transactions with conflicting
// accesses appear in logs consistently with those timestamps.
func TestPAFinalTimestampsAgree(t *testing.T) {
	cfg := base(34)
	cfg.Items = 10
	cl, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < cfg.Sites; s++ {
		if err := cl.AddDriver(model.SiteID(s), workload.Spec{
			ArrivalPerSec: 30,
			HorizonMicros: 3_000_000,
			Items:         cfg.Items,
			Size:          3,
			ReadFrac:      0.4,
			SharePA:       1,
			ComputeMicros: 500,
		}); err != nil {
			t.Fatal(err)
		}
	}
	res := cl.Run(3_000_000, 5_000_000)
	checkRun(t, "pa-agree", res, 200)
	if cl.QMTotals().Backoffs == 0 {
		t.Error("workload produced no PA back-offs; agreement path unexercised")
	}
	tsOf := func(id model.TxnID) (model.Timestamp, bool) {
		return cl.Issuers[id.Site].FinalTimestamp(id)
	}
	if err := cl.Recorder.VerifyTimestampOrder(tsOf); err != nil {
		t.Fatalf("PA agreed-timestamp order violated: %v", err)
	}
}

// TestReplicatedWriteAll checks that under ROWA every write reaches every
// replica in the same serializable order: after quiescing, replicas agree.
func TestReplicatedWriteAll(t *testing.T) {
	cfg := base(55)
	cfg.Items = 12
	cfg.Replicas = 3
	cl, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < cfg.Sites; s++ {
		if err := cl.AddDriver(model.SiteID(s), workload.Spec{
			ArrivalPerSec: 20,
			HorizonMicros: 2_000_000,
			Items:         cfg.Items,
			Size:          3,
			ReadFrac:      0.3,
			Share2PL:      1, ShareTO: 1, SharePA: 1,
			ComputeMicros: 500,
		}); err != nil {
			t.Fatal(err)
		}
	}
	res := cl.Run(2_000_000, 6_000_000)
	checkRun(t, "rowa", res, 100)
	for item := 0; item < cfg.Items; item++ {
		var vals []int64
		for _, site := range cl.CurrentMap().Replicas(model.ItemID(item)) {
			v, _ := cl.Stores[site].Read(model.ItemID(item))
			vals = append(vals, v)
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] != vals[0] {
				t.Fatalf("item %d replicas diverged: %v", item, vals)
			}
		}
	}
}

// TestDetectorDisabledTimeouts: with detection disabled, 2PL deadlocks
// freeze the involved transactions; the run must still terminate (drain
// gives up) and report them as unfinished rather than hanging.
func TestDetectorDisabledLeavesDeadlocksVisible(t *testing.T) {
	cfg := base(66)
	cfg.Items = 6
	cfg.Detector.PeriodMicros = -1 // disabled
	cfg.Detector.PersistRounds = 1
	cl, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < cfg.Sites; s++ {
		if err := cl.AddDriver(model.SiteID(s), workload.Spec{
			ArrivalPerSec: 40,
			HorizonMicros: 2_000_000,
			Items:         cfg.Items,
			Size:          3,
			ReadFrac:      0.2, // write-heavy → deadlocks certain
			Share2PL:      1,
			ComputeMicros: 500,
		}); err != nil {
			t.Fatal(err)
		}
	}
	res := cl.Run(2_000_000, 2_000_000)
	if res.Unfinished == 0 {
		t.Skip("no deadlock materialized at this seed (rare)")
	}
	// The execution that did commit must still be serializable.
	if !res.Serializability.Serializable {
		t.Fatal("committed prefix not serializable")
	}
}
