package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// The `go vet -vettool` protocol, reimplemented from the x/tools
// unitchecker contract the go command expects:
//
//   - `tool -V=full` prints a single version line the go command hashes
//     into its action cache key (handled in cmd/ucclint).
//   - For every package, the go command invokes `tool <file>.cfg` where
//     the cfg is a JSON description of the unit: source files, the import
//     map, and the export-data file for every dependency, all already
//     built. The tool typechecks the unit, runs its analyzers, writes the
//     (possibly empty) facts file named by VetxOutput, prints diagnostics
//     to stderr, and exits 2 when it found any.
//
// This keeps `go vet -vettool=$(pwd)/ucclint ./...` working with full
// incremental caching even though this module cannot vendor x/tools.

// vetConfig mirrors the JSON the go command writes for each vet unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Unitcheck runs analyzers over the single vet unit described by cfgFile
// and returns the process exit code (0 clean, 1 internal error, 2 found
// diagnostics). Diagnostics and errors go to stderr, matching what the go
// command relays to the user.
func Unitcheck(cfgFile string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucclint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ucclint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The facts file must exist for the go command's caching even though
	// these analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "ucclint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// Test files are out of scope (tests stage invariant violations on
	// purpose); dropping them up front also skips external-test variants
	// entirely.
	var filenames []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			filenames = append(filenames, f)
		}
	}
	if len(filenames) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ucclint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := exportImporter(fset, func(path string) (string, bool) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	dir := cfg.Dir
	if dir == "" && len(filenames) > 0 {
		dir = filepath.Dir(filenames[0])
	}
	pkg, err := CheckFiles(fset, cfg.ImportPath, dir, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "ucclint: %v\n", err)
		return 1
	}

	diags, err := RunPackage(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucclint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, Format(fset, d))
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
