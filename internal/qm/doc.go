// Package qm implements the Data Queue and Data Queue Manager of the
// Precedence-Assignment Model (§3.1) with the unified precedence space
// (§4.1) and the semi-lock precedence enforcement protocol (§4.2) of
// Wang & Li (ICDE 1988).
//
// One Manager actor runs per data site and hosts a dataQueue per physical
// copy stored there. Each dataQueue keeps its entries sorted by unified
// precedence, tracks the R-TS/W-TS thresholds, assigns 2PL precedences from
// the biggest timestamp ever seen, rejects out-of-order T/O requests,
// computes PA back-off timestamps, and grants locks to HD(j) according to
// the semi-lock rules.
//
// Two paths never touch the queues at all:
//
//   - Snapshot reads (SnapReadMsg): read-only transactions are answered
//     straight from the store's version chain at their snapshot timestamp —
//     no entry, no lock, no threshold check — and recorded into the history
//     log at the position of the version they observed.
//   - Durability control (CrashMsg/RecoverMsg/FlushMsg): the manager drives
//     when the site's write-ahead log syncs (per delivery, or deferred by a
//     group-commit window) and how a crashed site defers traffic until its
//     store — version chains included — is rebuilt from snapshot + replay.
package qm
