package ucc

import (
	"strings"
	"testing"
	"time"
)

// TestFacadePlacementValidation: the facade rejects unknown placement
// policies and out-of-range DataSites at construction, and accepts every
// documented policy name (empty included — it means round-robin).
func TestFacadePlacementValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string
	}{
		{"default", Config{Sites: 3, Items: 8}, ""},
		{"round-robin", Config{Sites: 3, Items: 8, Placement: "round-robin"}, ""},
		{"range", Config{Sites: 3, Items: 8, Placement: "range"}, ""},
		{"hash", Config{Sites: 3, Items: 8, Placement: "hash"}, ""},
		{"unknown policy", Config{Sites: 3, Items: 8, Placement: "zigzag"}, "unknown policy"},
		{"data sites out of range", Config{Sites: 3, Items: 8, DataSites: 7}, "DataSites"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want one containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestFacadeOnlineRebalance moves items mid-run through the public API and
// reads the run's placement statistics off the Result: the move must publish
// one epoch, reach the issuers, and leave a serializable execution whose
// values are still readable through the facade (which resolves them against
// the final map).
func TestFacadeOnlineRebalance(t *testing.T) {
	c, err := New(Config{Sites: 3, Items: 12, Seed: 2, Placement: "range"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Workload(Workload{
		Rate: 30, Duration: 2 * time.Second, Mix: Mix{TwoPL: 1, TO: 1, PA: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.MoveItems([]ItemID{0, 1, 2}, 2, 900*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	res := c.Run()
	if !res.Serializable() {
		t.Fatalf("not serializable across the move: %v", res.ConflictCycle())
	}
	if res.Unfinished() != 0 {
		t.Fatalf("unfinished: %d", res.Unfinished())
	}
	ps := res.Placement()
	if ps.EpochsPublished != 1 {
		t.Fatalf("EpochsPublished = %d, want 1", ps.EpochsPublished)
	}
	if ps.ItemsMoved == 0 {
		t.Fatal("ItemsMoved = 0, want > 0")
	}
	if ps.MapUpdates == 0 {
		t.Fatal("MapUpdates = 0 — issuers never learned the new map")
	}
	// Reading a moved item resolves against the final map.
	_ = c.Value(0)
}
