// Banking: concurrent money transfers under mixed concurrency control.
//
// A fixed pool of accounts starts with $1000 each. Transfer transactions
// (read-modify-write on two accounts) and audit transactions (read a window
// of accounts) run concurrently, each under a different member protocol of
// the unified scheme. Because the unified system guarantees conflict
// serializability (Theorem 2), the total balance is conserved exactly and
// every audit observes a consistent snapshot — which this example checks.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"ucc"
)

const (
	accounts       = 32
	initialBalance = 1000
	transfers      = 300
)

func main() {
	c, err := ucc.New(ucc.Config{
		Sites:        4,
		Items:        accounts,
		InitialValue: initialBalance,
		Seed:         1988,
	})
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(99))
	protocols := []ucc.Protocol{ucc.TwoPL, ucc.TO, ucc.PA}
	for i := 0; i < transfers; i++ {
		from := ucc.ItemID(rng.Intn(accounts))
		to := ucc.ItemID(rng.Intn(accounts))
		for to == from {
			to = ucc.ItemID(rng.Intn(accounts))
		}
		amount := int64(1 + rng.Intn(50))
		p := protocols[i%len(protocols)]
		site := i % 4

		// A transfer: debit `from`, credit `to` — two read-modify-writes,
		// arriving spread over three seconds.
		t := c.NewTxn(site, p).
			Add(from, from, -amount).
			Add(to, to, +amount).
			Compute(500 * time.Microsecond).
			Class("transfer").
			Build()
		c.SubmitAt(t, time.Duration(rng.Intn(3000))*time.Millisecond)
	}

	res := c.Run()

	var total int64
	for i := 0; i < accounts; i++ {
		total += c.Value(ucc.ItemID(i))
	}
	want := int64(accounts * initialBalance)

	fmt.Printf("transfers committed: %d / %d\n", res.Committed(), transfers)
	fmt.Printf("serializable:        %v\n", res.Serializable())
	fmt.Printf("total balance:       $%d (expected $%d)\n", total, want)
	for _, p := range protocols {
		s := res.Stats(p)
		fmt.Printf("  %-4v commits=%-4d S=%v\n", p, s.Committed, s.MeanSystemTime.Round(100*time.Microsecond))
	}

	switch {
	case total != want:
		fmt.Println("MONEY LEAKED — serializability bug!")
	case !res.Serializable():
		fmt.Println("CONFLICT CYCLE — serializability bug!")
	default:
		fmt.Println("OK: conservation held under mixed 2PL/T-O/PA transfers")
	}
}
