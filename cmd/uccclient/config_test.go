package main

import (
	"testing"

	"ucc/internal/engine"
	"ucc/internal/model"
)

func TestParsePeerList(t *testing.T) {
	peers, err := parsePeerList(":7700, :7701")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0] != ":7700" || peers[1] != ":7701" {
		t.Fatalf("parsed %v", peers)
	}
	for _, bad := range []string{"", "  ", ":7700,,:7702"} {
		if _, err := parsePeerList(bad); err == nil {
			t.Errorf("parsePeerList(%q) accepted bad input", bad)
		}
	}
}

func TestParseMix(t *testing.T) {
	shares, err := parseMix("1,2,3")
	if err != nil {
		t.Fatal(err)
	}
	if shares != [4]float64{1, 2, 3, 0} {
		t.Fatalf("parsed %v", shares)
	}
	shares, err = parseMix("1,2,3,4")
	if err != nil {
		t.Fatal(err)
	}
	if shares != [4]float64{1, 2, 3, 4} {
		t.Fatalf("parsed 4-share mix %v", shares)
	}
	if _, err := parseMix("0,0,1"); err != nil {
		t.Errorf("single-protocol mix rejected: %v", err)
	}
	if _, err := parseMix("0,0,0,1"); err != nil {
		t.Errorf("read-only-only mix rejected: %v", err)
	}
	for _, bad := range []string{
		"", "1,2", "x,y,z", "0,0,0", "-1,1,1", "0,0,0,0", "1,1,1,-1",
		"1,1,1,x", "1,1,1,", "1,1,1,3garbage", "1,2,3,4,5",
	} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted bad input", bad)
		}
	}
}

func TestClientTopology(t *testing.T) {
	topo := clientTopology([]string{":7700", ":7701"}, ":7709")
	if got := topo.Peers[topo.Assign(engine.CollectorAddr())]; got != ":7709" {
		t.Errorf("collector at %q, want the client listen address", got)
	}
	// Drivers run on the client, their target QM/RI actors on the sites.
	if got := topo.Peers[topo.Assign(engine.QMAddr(model.SiteID(1)))]; got != ":7701" {
		t.Errorf("QM 1 at %q", got)
	}
}
