package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Media is the byte store under a write-ahead log: a flat namespace of
// append-written objects (log segments and snapshots). Names returned by
// List are sorted lexicographically, which the log's naming scheme makes
// chronological.
type Media interface {
	// List returns every stored object name in lexicographic order.
	List() ([]string, error)
	// ReadAll returns an object's full contents.
	ReadAll(name string) ([]byte, error)
	// Create starts a new object. Writes reach durable storage only after
	// Sync; a crash may lose anything unsynced (or tear a partial write).
	Create(name string) (Writer, error)
	// Remove deletes an object (log truncation after a snapshot).
	Remove(name string) error
}

// Writer is an append-only handle to one media object.
type Writer interface {
	io.Writer
	// Sync makes everything written so far durable.
	Sync() error
	// Close releases the handle. Close does not imply Sync.
	Close() error
}

// Crasher is implemented by media that can simulate a power cut: everything
// not yet synced is discarded. DirMedia does not implement it — for files
// the crash is the real process dying.
type Crasher interface {
	Crash()
}

// ---------------------------------------------------------------------------
// DirMedia: one directory of real files
// ---------------------------------------------------------------------------

// DirMedia stores objects as files in one directory.
type DirMedia struct {
	dir string
}

// NewDirMedia creates (if needed) and opens a directory medium.
func NewDirMedia(dir string) (*DirMedia, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: media dir: %w", err)
	}
	return &DirMedia{dir: dir}, nil
}

// Dir returns the backing directory.
func (m *DirMedia) Dir() string { return m.dir }

// List implements Media.
func (m *DirMedia) List() ([]string, error) {
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// ReadAll implements Media.
func (m *DirMedia) ReadAll(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(m.dir, name))
}

// Create implements Media. The directory is fsynced so the new entry is
// durable before any content is: a power cut must never persist the later
// removal of a superseded snapshot while losing its replacement's entry.
func (m *DirMedia) Create(name string) (Writer, error) {
	f, err := os.OpenFile(filepath.Join(m.dir, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := m.syncDir(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// Remove implements Media. The unlink is made durable with a directory
// fsync — callers remove objects only once their replacement is durable.
func (m *DirMedia) Remove(name string) error {
	if err := os.Remove(filepath.Join(m.dir, name)); err != nil {
		return err
	}
	return m.syncDir()
}

func (m *DirMedia) syncDir() error {
	d, err := os.Open(m.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ---------------------------------------------------------------------------
// MemMedia: deterministic in-memory medium for the simulator
// ---------------------------------------------------------------------------

// MemMedia keeps objects in memory and distinguishes synced from unsynced
// bytes, so a simulated crash (Crash) loses exactly what a power cut would:
// every write since the last Sync.
type MemMedia struct {
	mu   sync.Mutex
	objs map[string]*memObj
	// SyncCount counts Sync calls across all objects (test/benchmark
	// visibility into how well group commit batches).
	SyncCount uint64
	// SyncDelay, when positive, makes every Sync take this long — the
	// stand-in for fsync latency that group commit amortizes. Set it before
	// handing the media to writers.
	SyncDelay time.Duration
}

type memObj struct {
	synced  []byte
	pending []byte
}

// NewMemMedia builds an empty in-memory medium.
func NewMemMedia() *MemMedia {
	return &MemMedia{objs: map[string]*memObj{}}
}

// List implements Media.
func (m *MemMedia) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.objs))
	for n := range m.objs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// ReadAll implements Media. It returns synced plus still-pending bytes: an
// in-process reader sees its own unsynced writes (like the OS page cache);
// only a Crash discards them.
func (m *MemMedia) ReadAll(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o := m.objs[name]
	if o == nil {
		return nil, fmt.Errorf("wal: mem object %q does not exist", name)
	}
	out := make([]byte, 0, len(o.synced)+len(o.pending))
	out = append(out, o.synced...)
	return append(out, o.pending...), nil
}

// Create implements Media.
func (m *MemMedia) Create(name string) (Writer, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o := &memObj{}
	m.objs[name] = o
	return &memWriter{media: m, obj: o}, nil
}

// Remove implements Media.
func (m *MemMedia) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.objs, name)
	return nil
}

// Crash implements Crasher: every unsynced byte is lost, synced bytes
// survive.
func (m *MemMedia) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, o := range m.objs {
		o.pending = nil
	}
}

// Syncs returns the cumulative Sync count.
func (m *MemMedia) Syncs() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.SyncCount
}

type memWriter struct {
	media *MemMedia
	obj   *memObj
}

func (w *memWriter) Write(p []byte) (int, error) {
	w.media.mu.Lock()
	defer w.media.mu.Unlock()
	w.obj.pending = append(w.obj.pending, p...)
	return len(p), nil
}

func (w *memWriter) Sync() error {
	if d := w.media.SyncDelay; d > 0 {
		time.Sleep(d)
	}
	w.media.mu.Lock()
	defer w.media.mu.Unlock()
	w.obj.synced = append(w.obj.synced, w.obj.pending...)
	w.obj.pending = nil
	w.media.SyncCount++
	return nil
}

func (w *memWriter) Close() error { return nil }
