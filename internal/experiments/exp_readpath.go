package experiments

import (
	"fmt"

	"ucc/internal/cluster"
	"ucc/internal/deadlock"
	"ucc/internal/engine"
	"ucc/internal/metrics"
	"ucc/internal/model"
	"ucc/internal/ri"
	"ucc/internal/workload"
)

// Exp10 measures the read-only snapshot fast path (beyond the paper): a
// read-heavy closed-loop mix (90% read-only scans, 10% small updates, ≥90%
// of operations are reads) swept over per-site concurrency, run twice —
// with the fast path on (scans read versioned snapshots, no queueing) and
// off (the same scans demoted to PA read locks). The load is closed-loop
// because capacity is the question: an open loop drained to quiescence
// commits every arrival no matter how slow the path, hiding the difference.
// The claim under test: at fixed pressure the fast path at least doubles
// committed throughput, because scans stop serializing the data queues,
// while every execution stays conflict serializable (snapshot reads are
// recorded into the history logs at the version they observed).
func Exp10(cfg RunConfig) Result {
	horizon := int64(4_000_000)
	concurrency := []int{2, 4, 8, 16}
	if cfg.Quick {
		horizon = 2_000_000
		concurrency = []int{4, 16}
	}

	run := func(inflight int, fastPath bool) (cluster.Result, *cluster.Cluster) {
		cl, err := cluster.NewSim(cluster.Config{
			Sites:   4,
			Items:   16,
			Seed:    cfg.Seed,
			Record:  true,
			Latency: engine.UniformLatency{MinMicros: 1_000, MaxMicros: 5_000, LocalMicros: 50},
			RI: ri.Options{
				PAIntervalMicros:     2_000,
				RestartDelayMicros:   20_000,
				DefaultComputeMicros: 1_000,
				DisableROFastPath:    !fastPath,
			},
			Detector: deadlock.Options{PeriodMicros: 50_000, PersistRounds: 2},
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		scenario := workload.ReadHeavy(16, 0, 0.9, 8)
		for i := 0; i < 4; i++ {
			spec := scenario.PerSite(i)
			spec.ClosedLoop = inflight
			spec.HorizonMicros = horizon
			if err := cl.AddDriver(model.SiteID(i), spec); err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
		}
		return cl.Run(horizon, 4_000_000), cl
	}

	table := &metrics.Table{Header: []string{
		"inflight/site", "thr on (txn/s)", "thr off (txn/s)", "speedup",
		"RO mean S on (ms)", "RO mean S off (ms)", "snap reads", "stale", "serializable",
	}}
	var notes []string
	for _, inflight := range concurrency {
		on, clOn := run(inflight, true)
		off, _ := run(inflight, false)
		serOn := on.Serializability != nil && on.Serializability.Serializable
		serOff := off.Serializability != nil && off.Serializability.Serializable
		speedup := 0.0
		if off.Summary.Throughput() > 0 {
			speedup = on.Summary.Throughput() / off.Summary.Throughput()
		}
		qt := clOn.QMTotals()
		table.AddRow(
			fmt.Sprint(inflight),
			metrics.F(on.Summary.Throughput()),
			metrics.F(off.Summary.Throughput()),
			metrics.F(speedup),
			metrics.F(on.Summary.Protocols[model.ROSnapshot].SystemTime.Mean()/1000),
			metrics.F(off.Summary.Protocols[model.PA].SystemTime.Mean()/1000),
			fmt.Sprint(qt.SnapReads),
			fmt.Sprint(qt.SnapStale),
			yesNo(serOn)+"/"+yesNo(serOff),
		)
		if !serOn || !serOff {
			notes = append(notes, fmt.Sprintf("VIOLATION at inflight=%d (on=%v off=%v)", inflight, serOn, serOff))
		}
		if qt.SnapStale > 0 {
			notes = append(notes, fmt.Sprintf("STALE snapshot reads at inflight=%d: chain GC outran the staleness margin", inflight))
		}
	}
	notes = append(notes,
		"off = identical workload with ROSnapshot demoted to PA read locks (ri.Options.DisableROFastPath)",
		"with the fast path off, read-only scans hold read locks across their compute phase, convoying every queue they touch; on, they never enter a queue",
		"RO 'mean S off' reads the PA row because the demoted scans commit as PA transactions there")
	return Result{
		ID:     "EXP-10",
		Title:  "Read-only snapshot fast path on/off",
		Claim:  "beyond the paper: on a ≥90%-read mix, serving read-only transactions from bounded version chains at a site-local snapshot timestamp at least doubles committed throughput vs queueing them, with zero restarts and conflict serializability preserved",
		Tables: []*metrics.Table{table},
		Notes:  notes,
	}
}
