package history

import (
	"fmt"
	"sort"
	"sync"

	"ucc/internal/model"
)

// Entry is one implemented operation in a physical item's log.
type Entry struct {
	Txn  model.TxnID
	Kind model.OpKind
	// Seq is the global implementation sequence number (monotone across all
	// logs), useful for debugging interleavings.
	Seq uint64
}

// Recorder accumulates the logs of an execution. Safe for concurrent use
// (the real-time runtime implements operations from many goroutines).
type Recorder struct {
	mu        sync.Mutex
	seq       uint64
	logs      map[model.CopyID][]Entry
	committed map[model.TxnID]model.Protocol
	// writes counts the write entries in each copy's log, so the common
	// snapshot read — one that observed the newest version — appends in
	// O(1) instead of scanning the log to find its position.
	writes map[model.CopyID]uint64
}

// NewRecorder returns an empty execution record.
func NewRecorder() *Recorder {
	return &Recorder{
		logs:      map[model.CopyID][]Entry{},
		committed: map[model.TxnID]model.Protocol{},
		writes:    map[model.CopyID]uint64{},
	}
}

// Implemented appends an implemented operation to copy's log. Per §4.3,
// 2PL/PA operations are implemented when their locks are released; a T/O
// operation is implemented when its lock is converted to a semi-lock or
// released, whichever is first.
func (r *Recorder) Implemented(c model.CopyID, txn model.TxnID, kind model.OpKind) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	r.logs[c] = append(r.logs[c], Entry{Txn: txn, Kind: kind, Seq: r.seq})
	if kind == model.OpWrite {
		r.writes[c]++
	}
}

// ImplementedReadAt records a snapshot read of copy c positioned by the
// version it observed: the read entry is inserted into the log immediately
// before the (version+1)-th write (i.e. after the write that produced the
// version read, and after any reads already recorded against it), or
// appended when no newer write exists yet. Position is what the conflict
// graph is built from, so a snapshot read of an older version must sit
// before the writes it did not see — appending it at wall-clock order would
// fabricate inverted conflict edges.
//
// The correspondence used here — the k-th write entry in a copy's log is the
// write that produced version k — holds because every implemented write
// increments the copy's version by exactly one and is recorded exactly once
// (aborted attempts never implement writes).
func (r *Recorder) ImplementedReadAt(c model.CopyID, txn model.TxnID, version uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	entry := Entry{Txn: txn, Kind: model.OpRead, Seq: r.seq}
	log := r.logs[c]
	total := r.writes[c]
	if version >= total {
		// The common case — the read observed the newest version — appends
		// in O(1); anything else would scan the ever-growing log and make
		// read-heavy recorded runs quadratic.
		r.logs[c] = append(log, entry)
		return
	}
	// Older version: find the (version+1)-th write — the (total−version)-th
	// counting backward from the tail, so the cost scales with how stale
	// the read is, not with the log length.
	at := len(log)
	var behind uint64
	for i := len(log) - 1; i >= 0; i-- {
		if log[i].Kind == model.OpWrite {
			behind++
			if behind == total-version {
				at = i
				break
			}
		}
	}
	log = append(log, Entry{})
	copy(log[at+1:], log[at:])
	log[at] = entry
	r.logs[c] = log
}

// Discard removes txn's entries from one copy's log: an aborted T/O attempt
// whose read was recorded at grant time (see qm) never took effect, and
// leaving the stale entry would fabricate conflict edges.
func (r *Recorder) Discard(c model.CopyID, txn model.TxnID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	log := r.logs[c]
	out := log[:0]
	for _, e := range log {
		if e.Txn != txn {
			out = append(out, e)
		} else if e.Kind == model.OpWrite {
			r.writes[c]--
		}
	}
	r.logs[c] = out
}

// Committed marks txn as having executed to completion under protocol p.
// Only committed transactions participate in the serializability check;
// aborted attempts never implement operations (their writes are discarded at
// abort), so they cannot affect other transactions.
func (r *Recorder) Committed(txn model.TxnID, p model.Protocol) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.committed[txn] = p
}

// NumCommitted returns the number of committed transactions.
func (r *Recorder) NumCommitted() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.committed)
}

// Log returns a copy of one physical item's log.
func (r *Recorder) Log(c model.CopyID) []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, len(r.logs[c]))
	copy(out, r.logs[c])
	return out
}

// Copies returns every copy id with a non-empty log, sorted.
func (r *Recorder) Copies() []model.CopyID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]model.CopyID, 0, len(r.logs))
	for c := range r.logs {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Item != out[j].Item {
			return out[i].Item < out[j].Item
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// Result is the outcome of a serializability check.
type Result struct {
	// Serializable reports whether the conflict graph is acyclic.
	Serializable bool
	// Order is a witness serialization order over committed transactions
	// (valid only when Serializable).
	Order []model.TxnID
	// Cycle is a witness conflict cycle (valid only when !Serializable).
	Cycle []model.TxnID
	// Txns is the number of committed transactions considered.
	Txns int
	// Edges is the number of distinct conflict-graph edges.
	Edges int
}

// Check builds the conflict graph over committed transactions from the logs
// and verifies it is acyclic (Theorem 1). It returns a topological witness
// order when serializable and a concrete cycle when not.
func (r *Recorder) Check() Result {
	r.mu.Lock()
	defer r.mu.Unlock()

	adj := map[model.TxnID]map[model.TxnID]bool{}
	nodes := map[model.TxnID]bool{}
	for t := range r.committed {
		nodes[t] = true
		adj[t] = map[model.TxnID]bool{}
	}
	edges := 0
	for _, log := range r.logs {
		for i := 0; i < len(log); i++ {
			oi := log[i]
			if !nodes[oi.Txn] {
				continue
			}
			for j := i + 1; j < len(log); j++ {
				oj := log[j]
				if oj.Txn == oi.Txn || !nodes[oj.Txn] {
					continue
				}
				if !oi.Kind.Conflicts(oj.Kind) {
					continue
				}
				if !adj[oi.Txn][oj.Txn] {
					adj[oi.Txn][oj.Txn] = true
					edges++
				}
			}
		}
	}

	order, cycle := topoSort(nodes, adj)
	return Result{
		Serializable: cycle == nil,
		Order:        order,
		Cycle:        cycle,
		Txns:         len(nodes),
		Edges:        edges,
	}
}

// topoSort returns a topological order of nodes, or a witness cycle if one
// exists. Deterministic: ties broken by TxnID order.
func topoSort(nodes map[model.TxnID]bool, adj map[model.TxnID]map[model.TxnID]bool) (order, cycle []model.TxnID) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[model.TxnID]int{}
	var stack []model.TxnID
	var out []model.TxnID

	sorted := make([]model.TxnID, 0, len(nodes))
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })

	var visit func(n model.TxnID) []model.TxnID
	visit = func(n model.TxnID) []model.TxnID {
		color[n] = grey
		stack = append(stack, n)
		succs := make([]model.TxnID, 0, len(adj[n]))
		for s := range adj[n] {
			succs = append(succs, s)
		}
		sort.Slice(succs, func(i, j int) bool { return succs[i].Compare(succs[j]) < 0 })
		for _, s := range succs {
			switch color[s] {
			case white:
				if c := visit(s); c != nil {
					return c
				}
			case grey:
				// Found a cycle: slice the stack from s onward.
				for i, v := range stack {
					if v == s {
						c := make([]model.TxnID, len(stack)-i)
						copy(c, stack[i:])
						return c
					}
				}
			}
		}
		color[n] = black
		stack = stack[:len(stack)-1]
		out = append(out, n)
		return nil
	}
	for _, n := range sorted {
		if color[n] == white {
			if c := visit(n); c != nil {
				return nil, c
			}
		}
	}
	// out is reverse topological order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, nil
}

// VerifyTimestampOrder checks the T/O-specific invariant used in unit tests:
// within each log, operations implemented by T/O transactions appear in
// nondecreasing timestamp order when conflicting. tsOf maps a transaction to
// its final timestamp (or false if not a T/O transaction).
func (r *Recorder) VerifyTimestampOrder(tsOf func(model.TxnID) (model.Timestamp, bool)) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for copyID, log := range r.logs {
		for i := 0; i < len(log); i++ {
			ti, ok := tsOf(log[i].Txn)
			if !ok {
				continue
			}
			for j := i + 1; j < len(log); j++ {
				if log[j].Txn == log[i].Txn || !log[i].Kind.Conflicts(log[j].Kind) {
					continue
				}
				tj, ok := tsOf(log[j].Txn)
				if !ok {
					continue
				}
				if tj < ti {
					return fmt.Errorf("history: log %v implements %v(ts=%d) before %v(ts=%d)",
						copyID, log[i].Txn, ti, log[j].Txn, tj)
				}
			}
		}
	}
	return nil
}
