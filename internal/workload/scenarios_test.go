package workload

import (
	"testing"

	"ucc/internal/model"
)

func TestScenariosValidate(t *testing.T) {
	for _, sc := range Scenarios(64, 20) {
		for site := 0; site < 4; site++ {
			spec := sc.PerSite(site)
			spec.HorizonMicros = 1_000_000
			if err := spec.Validate(); err != nil {
				t.Errorf("%s site %d: %v", sc.Name, site, err)
			}
		}
	}
}

func TestTransfersAreRMW(t *testing.T) {
	spec := Transfers(32, 10).PerSite(0)
	txns := drive(t, spec, 100)
	for _, tx := range txns {
		if tx.NumReads() != 0 || tx.NumWrites() != 2 {
			t.Fatalf("transfer shape wrong: r=%d w=%d", tx.NumReads(), tx.NumWrites())
		}
	}
}

func TestMixedAnalyticsHeterogeneous(t *testing.T) {
	sc := MixedAnalytics(64, 20, 4)
	report := sc.PerSite(0)
	oltp := sc.PerSite(1)
	if report.ReadFrac != 1 || report.SizeMin < 8 {
		t.Fatalf("site 0 must be the reporting site: %+v", report)
	}
	if oltp.Class != "oltp" || oltp.Size != 3 {
		t.Fatalf("other sites must be OLTP: %+v", oltp)
	}
	// Reporting transactions are pure reads.
	txns := drive(t, report, 50)
	for _, tx := range txns {
		if tx.NumWrites() != 0 {
			t.Fatalf("report txn writes: %v", tx)
		}
		if tx.Size() < 8 {
			t.Fatalf("report txn too small: %d", tx.Size())
		}
	}
}

// TestHotShardConcentratesOnOneShard: every access the scenario generates
// must hash to shard 0 of the shard count it was built for — the premise of
// the "sharding cannot help skew" demonstration.
func TestHotShardConcentratesOnOneShard(t *testing.T) {
	const items, shards = 64, 4
	spec := HotShard(items, 20, shards).PerSite(0)
	txns := drive(t, spec, 200)
	accesses := 0
	for _, tx := range txns {
		for _, it := range append(append([]model.ItemID{}, tx.ReadSet...), tx.WriteSet...) {
			accesses++
			if s := model.ShardOfItem(it, shards); s != 0 {
				t.Fatalf("item %v landed in shard %d, want 0", it, s)
			}
		}
	}
	if accesses == 0 {
		t.Fatal("scenario generated no accesses")
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("flash-sale", 64, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope", 64, 10); err == nil {
		t.Fatal("phantom scenario")
	}
}
