package wire

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"runtime"
	"time"

	"ucc/internal/engine"
	"ucc/internal/model"
)

// Corpus returns a deterministic mixed-message envelope set: every wire-
// contract message type appears at least once, and the hot-path protocol
// messages (request/grant/release and friends) are weighted the way a real
// run weights them, so codec benchmarks over the corpus measure what the
// cluster actually pays per message.
func Corpus() []engine.Envelope {
	ri := engine.RIAddr(1)
	qm := engine.QMShardAddr(2, 3)
	det := engine.DetectorAddr()
	col := engine.CollectorAddr()
	txn := model.TxnID{Site: 1, Seq: 42}
	cp := model.CopyID{Item: 7, Site: 2}

	var out []engine.Envelope
	add := func(from, to engine.Addr, n int, m model.Message) {
		for i := 0; i < n; i++ {
			out = append(out, engine.Envelope{From: from, To: to, Msg: m})
		}
	}

	// Hot path: the request→grant→release cycle dominates wire traffic.
	add(ri, qm, 8, model.RequestMsg{Txn: txn, Attempt: 3, Protocol: model.PA, Kind: model.OpWrite, Copy: cp, TS: 123456789, Interval: 250, Site: 1})
	add(qm, ri, 8, model.GrantMsg{Txn: txn, Attempt: 3, Copy: cp, Lock: model.WL, TS: 123456789, Value: -987654321, Version: 17, CommitMicros: 1 << 38})
	add(ri, qm, 8, model.ReleaseMsg{Txn: txn, Attempt: 3, Copy: cp, HasWrite: true, Value: 5, CommitMicros: 1 << 40})
	add(ri, qm, 3, model.SnapReadMsg{Txn: txn, Attempt: 0, Copy: cp, SnapMicros: 1 << 41, Site: 1})
	add(qm, ri, 3, model.SnapReadReplyMsg{Txn: txn, Attempt: 0, Copy: cp, Value: 11, Version: 9, CommitMicros: 1 << 39, Exact: true})
	add(ri, qm, 2, model.FinalTSMsg{Txn: txn, Attempt: 1, Copy: cp, TS: 4242})
	add(ri, qm, 2, model.AbortMsg{Txn: txn, Attempt: 2, Copy: cp})
	add(qm, ri, 1, model.NormalGrantMsg{Txn: txn, Attempt: 3, Copy: cp})
	add(qm, ri, 1, model.RejectMsg{Txn: txn, Attempt: 1, Copy: cp, Threshold: 999})
	add(qm, ri, 1, model.BackoffMsg{Txn: txn, Attempt: 1, Copy: cp, NewTS: 777})
	add(qm, ri, 1, model.BusyMsg{Txn: txn, Attempt: 4, Copy: cp})
	add(det, ri, 1, model.VictimMsg{Txn: txn, Attempt: 2, Cycle: []model.TxnID{{Site: 1, Seq: 42}, {Site: 2, Seq: 7}, {Site: 3, Seq: 9}}})

	// Detection + control planes (rarer, bigger).
	add(qm, det, 1, model.WFGReportMsg{From: 2, Round: 5, Edges: []model.WaitEdge{
		{Waiter: txn, Holder: model.TxnID{Site: 2, Seq: 7}, Waiter2PL: true, Holder2PL: false, WaiterSite: 1, WaiterSeq: 3, Copy: cp, WaiterIssuer: 1},
		{Waiter: model.TxnID{Site: 3, Seq: 1}, Holder: txn, Holder2PL: true, WaiterSite: 3, Copy: model.CopyID{Item: 9, Site: 2}, WaiterIssuer: 3},
	}})
	add(det, qm, 1, model.ProbeWFGMsg{Round: 5})
	add(col, ri, 1, model.SubmitTxnMsg{Txn: model.NewTxn(txn, model.TwoPL, []model.ItemID{1, 2, 3}, []model.ItemID{4, 5}, 1500)})
	add(ri, col, 2, model.TxnDoneMsg{Txn: txn, Protocol: model.TO, Outcome: model.OutcomeCommitted, ArrivalMicros: 10, DoneMicros: 9000, FirstArrivalMicros: 10, Attempts: 2, Size: 5, Reads: 3, Writes: 2, Messages: 40, BackoffReads: 1, LockedMicros: 4000})
	add(qm, col, 1, model.QueueStatsMsg{From: 2, AtMicros: 1 << 42, ReadGrants: map[model.ItemID]uint64{1: 10, 2: 20, 3: 30}, WriteGrants: map[model.ItemID]uint64{1: 5, 4: 9}})
	add(col, ri, 1, model.EstimateMsg{AtMicros: 1 << 42, LambdaR: map[model.ItemID]float64{1: 1.5, 2: 2.25}, LambdaW: map[model.ItemID]float64{1: 0.5}, LambdaA: 4.25, Qr: 0.6, K: 4, U: [3]float64{0.01, 0.02, 0.03}, UPrime: [3]float64{0.005, 0.01, 0.015}, PAbort: 0.02, Pr: 0.1, PwR: 0.12, PB: 0.05, PBW: 0.06})
	add(ri, ri, 1, model.TickMsg{Tag: 3})
	add(ri, ri, 1, model.ComputeDoneMsg{Txn: txn, Attempt: 3})
	add(ri, ri, 1, model.RestartMsg{Txn: txn, Attempt: 4})
	add(ri, col, 1, model.TxnFinishedMsg{Txn: txn})
	add(col, ri, 1, model.StopMsg{})
	add(col, qm, 1, model.CrashMsg{})
	add(col, qm, 1, model.RecoverMsg{})
	add(qm, qm, 1, model.FlushMsg{Shard: 3})

	// Replication catch-up plane: the pull and a small framed record batch
	// (the frame bytes are opaque to this codec — internal/wal's framing —
	// so any deterministic byte string exercises the length-prefixed path).
	add(qm, qm, 1, model.ReplPullMsg{From: 3, AfterSeq: 1 << 20})
	add(qm, qm, 1, model.ReplRecordsMsg{From: 2, Frames: []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03}, NextAfterSeq: 1<<20 + 64, More: true})

	// Versioned placement / online rebalance plane.
	pm := model.PartitionMap{Epoch: 9, Assignments: [][]model.SiteID{{2, 0}, {1, 2}, {0, 1}, {2}}}
	add(qm, ri, 1, model.WrongEpochMsg{Txn: txn, Attempt: 2, Copy: cp, Map: pm})
	add(col, qm, 1, model.MapInstallMsg{Map: pm})
	add(col, ri, 1, model.MapUpdateMsg{Map: pm})
	add(qm, qm, 1, model.TransferPullMsg{From: 3, Epoch: 9, AfterSeq: 1 << 18})
	add(qm, qm, 1, model.TransferRecordsMsg{From: 2, Epoch: 9, Frames: []byte{0x05, 0x06, 0x07}, NextAfterSeq: 1<<18 + 12, More: true, Done: false})
	return out
}

// CodecNumbers are one codec's measured costs over the corpus.
type CodecNumbers struct {
	MsgsPerSec   float64 `json:"msgs_per_sec"`
	NsPerMsg     float64 `json:"ns_per_msg"`
	AllocsPerMsg float64 `json:"allocs_per_msg"`
	BytesPerMsg  float64 `json:"bytes_per_msg"`
}

// CodecReport compares the v3 codec against encoding/gob on the mixed
// corpus: a full encode→decode round trip per message, matching what the
// transport pays on each side of the wire.
type CodecReport struct {
	CorpusMsgs int          `json:"corpus_msgs"`
	Rounds     int          `json:"rounds"`
	V3         CodecNumbers `json:"v3"`
	Gob        CodecNumbers `json:"gob"`
	// Speedup is v3 msgs/sec over gob msgs/sec; AllocRatio is v3 allocs/msg
	// over gob allocs/msg (both encode+decode).
	Speedup    float64 `json:"speedup"`
	AllocRatio float64 `json:"alloc_ratio"`
}

// gobEnvelope mirrors transport's v2 WireEnvelope so the comparison measures
// the exact legacy encoding, without importing transport (which imports us).
type gobEnvelope struct {
	FromKind  uint8
	FromID    int32
	FromShard uint8
	ToKind    uint8
	ToID      int32
	ToShard   uint8
	Msg       model.Message
}

// CompareWithGob measures both codecs over rounds passes of the corpus.
// Deterministic enough for a ratio gate; absolute numbers are host-bound.
func CompareWithGob(rounds int) (CodecReport, error) {
	if rounds <= 0 {
		rounds = 200
	}
	corpus := Corpus()
	rep := CodecReport{CorpusMsgs: len(corpus), Rounds: rounds}

	v3, err := measureV3(corpus, rounds)
	if err != nil {
		return rep, err
	}
	g, err := measureGob(corpus, rounds)
	if err != nil {
		return rep, err
	}
	rep.V3, rep.Gob = v3, g
	if g.MsgsPerSec > 0 {
		rep.Speedup = v3.MsgsPerSec / g.MsgsPerSec
	}
	if g.AllocsPerMsg > 0 {
		rep.AllocRatio = v3.AllocsPerMsg / g.AllocsPerMsg
	}
	return rep, nil
}

// V3Harness holds reusable v3 codec state for repeated corpus passes: the
// writer, reader, and their pooled buffers live across passes exactly as
// they live across batches on a transport connection, so a measured pass is
// the codec's steady state. Shared by CompareWithGob (the TestWireCodecGate
// ratio gate and BENCH_wire.json) and BenchmarkWireCodec (the msgs/KB bench
// gate) — one round-trip loop, so the gates cannot drift apart.
type V3Harness struct {
	sink bytes.Buffer
	bw   *bufio.Writer
	w    *Writer
	src  bytes.Reader
	br   *bufio.Reader
	r    *Reader
}

// NewV3Harness builds the reusable state; call Release when done.
func NewV3Harness() *V3Harness {
	h := &V3Harness{}
	h.bw = bufio.NewWriter(&h.sink)
	h.w = NewWriter(h.bw)
	h.br = bufio.NewReader(&h.src)
	h.r = NewReader(h.br)
	return h
}

// Pass encodes the whole corpus into an in-memory stream and decodes it
// back — one full round trip per envelope — returning the stream size.
func (h *V3Harness) Pass(corpus []engine.Envelope) (streamBytes int, err error) {
	h.sink.Reset()
	h.bw.Reset(&h.sink)
	for _, env := range corpus {
		if _, err := h.w.WriteEnvelope(env); err != nil {
			return 0, err
		}
	}
	if err := h.bw.Flush(); err != nil {
		return 0, err
	}
	streamBytes = h.sink.Len()
	h.src.Reset(h.sink.Bytes())
	h.br.Reset(&h.src)
	for {
		if _, _, err := h.r.ReadEnvelope(); err != nil {
			if err == io.EOF {
				return streamBytes, nil
			}
			return 0, err
		}
	}
}

// PassPooled is Pass with the decode side going through the message struct
// pool: each decoded envelope's message is recycled immediately after the
// read, the dispatch-and-drop lifetime the pool is built for. The difference
// between Pass and PassPooled in BenchmarkWireCodec is exactly the per-
// message interface-boxing allocation.
func (h *V3Harness) PassPooled(corpus []engine.Envelope) (streamBytes int, err error) {
	h.sink.Reset()
	h.bw.Reset(&h.sink)
	for _, env := range corpus {
		if _, err := h.w.WriteEnvelope(env); err != nil {
			return 0, err
		}
	}
	if err := h.bw.Flush(); err != nil {
		return 0, err
	}
	streamBytes = h.sink.Len()
	h.src.Reset(h.sink.Bytes())
	h.br.Reset(&h.src)
	for {
		env, _, err := h.r.ReadEnvelopePooled()
		if err != nil {
			if err == io.EOF {
				return streamBytes, nil
			}
			return 0, err
		}
		model.RecycleMessage(env.Msg)
	}
}

// Release returns the harness's pooled buffers.
func (h *V3Harness) Release() {
	h.w.Release()
	h.r.Release()
}

// GobHarness is the legacy-codec counterpart of V3Harness: a fresh gob
// encoder/decoder pair per pass, matching how the v2 transport pays a fresh
// type dictionary per connection stream.
type GobHarness struct {
	sink bytes.Buffer
}

// NewGobHarness registers the gob types and builds the harness.
func NewGobHarness() *GobHarness {
	model.RegisterGob()
	return &GobHarness{}
}

// Pass round-trips the corpus through gob, returning the stream size.
func (h *GobHarness) Pass(corpus []engine.Envelope) (streamBytes int, err error) {
	h.sink.Reset()
	enc := gob.NewEncoder(&h.sink)
	for _, env := range corpus {
		ge := gobEnvelope{
			FromKind: uint8(env.From.Kind), FromID: int32(env.From.ID), FromShard: env.From.Shard,
			ToKind: uint8(env.To.Kind), ToID: int32(env.To.ID), ToShard: env.To.Shard,
			Msg: env.Msg,
		}
		if err := enc.Encode(ge); err != nil {
			return 0, err
		}
	}
	streamBytes = h.sink.Len()
	dec := gob.NewDecoder(bytes.NewReader(h.sink.Bytes()))
	for {
		var ge gobEnvelope
		if err := dec.Decode(&ge); err != nil {
			if err == io.EOF {
				return streamBytes, nil
			}
			return 0, err
		}
	}
}

func measureV3(corpus []engine.Envelope, rounds int) (CodecNumbers, error) {
	h := NewV3Harness()
	defer h.Release()
	// One warm pass sizes the sink and scratch, then measure steady state.
	bytesPerPass, err := h.Pass(corpus)
	if err != nil {
		return CodecNumbers{}, err
	}
	return timeCodec(len(corpus), rounds, bytesPerPass, func() error {
		_, err := h.Pass(corpus)
		return err
	})
}

func measureGob(corpus []engine.Envelope, rounds int) (CodecNumbers, error) {
	h := NewGobHarness()
	bytesPerPass, err := h.Pass(corpus)
	if err != nil {
		return CodecNumbers{}, err
	}
	return timeCodec(len(corpus), rounds, bytesPerPass, func() error {
		_, err := h.Pass(corpus)
		return err
	})
}

// timeCodec times rounds invocations of pass and samples allocations around
// them.
func timeCodec(corpusMsgs, rounds, bytesPerPass int, pass func() error) (CodecNumbers, error) {
	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := pass(); err != nil {
			return CodecNumbers{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&msAfter)

	msgs := float64(corpusMsgs * rounds)
	var n CodecNumbers
	if elapsed > 0 {
		n.MsgsPerSec = msgs / elapsed.Seconds()
		n.NsPerMsg = float64(elapsed.Nanoseconds()) / msgs
	}
	n.AllocsPerMsg = float64(msAfter.Mallocs-msBefore.Mallocs) / msgs
	n.BytesPerMsg = float64(bytesPerPass) / float64(corpusMsgs)
	return n, nil
}

// Verify round-trips the corpus once and errors on any mismatch in envelope
// count or decode failure — a cheap self-check for callers that are about to
// trust the measurement (uccbench -wire-json).
func Verify() error {
	corpus := Corpus()
	var sink bytes.Buffer
	bw := bufio.NewWriter(&sink)
	w := NewWriter(bw)
	defer w.Release()
	for _, env := range corpus {
		if _, err := w.WriteEnvelope(env); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	r := NewReader(bufio.NewReader(bytes.NewReader(sink.Bytes())))
	defer r.Release()
	got := 0
	for {
		_, _, err := r.ReadEnvelope()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		got++
	}
	if got != len(corpus) {
		return fmt.Errorf("wire: corpus round trip decoded %d of %d envelopes", got, len(corpus))
	}
	return nil
}
