package main

import (
	"fmt"

	"ucc/internal/transport"
)

// parsePeers parses -peers and enforces the node invariant: exactly one
// address per site, index = site id.
func parsePeers(csv string, sites int) ([]string, error) {
	peers, err := transport.ParsePeerList(csv)
	if err != nil {
		return nil, fmt.Errorf("-peers: %w", err)
	}
	if len(peers) != sites {
		return nil, fmt.Errorf("-peers must list exactly %d addresses, got %d", sites, len(peers))
	}
	return peers, nil
}

// siteTopology builds the node's topology; clientAddr may be empty until a
// client connects inbound.
func siteTopology(peers []string, clientAddr string) transport.Topology {
	return transport.StandardTopology(peers, clientAddr)
}
