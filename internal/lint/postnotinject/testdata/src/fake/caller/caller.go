// Package caller exercises the postnotinject analyzer: Inject calls on
// the engine Runtime outside the engine package are flagged, Post calls
// and unrelated Inject methods are not, and //ucclint:allow comments
// suppress the finding.
package caller

import "fake/internal/engine"

func flagged(rt *engine.Runtime) {
	rt.Inject(engine.Envelope{To: "remote"}) // want `use Runtime\.Post`
}

func fine(rt *engine.Runtime) {
	rt.Post(engine.Envelope{To: "remote"})
}

// decoy has an Inject method on a type that is not engine.Runtime; calls
// to it must not be flagged.
type decoy struct{}

func (decoy) Inject(env engine.Envelope) {}

func notTheRuntime(d decoy) {
	d.Inject(engine.Envelope{})
}

func allowListed(rt *engine.Runtime) {
	//ucclint:allow postnotinject -- self-addressed tick; this actor is always registered locally
	rt.Inject(engine.Envelope{To: "self"})
}

func allowListedSameLine(rt *engine.Runtime) {
	rt.Inject(engine.Envelope{To: "self"}) //ucclint:allow postnotinject -- local driver loop
}
