package ri

import (
	"testing"

	"ucc/internal/engine"
	"ucc/internal/model"
	"ucc/internal/placement"
)

func admissionIssuer(opts Options) (*Issuer, *fakeCtx) {
	siteIDs := []model.SiteID{0, 1}
	pm := placement.Build(placement.RoundRobin, 8, siteIDs, 1)
	if opts.PAIntervalMicros == 0 {
		opts.PAIntervalMicros = 10
	}
	if opts.RestartDelayMicros == 0 {
		opts.RestartDelayMicros = 100
	}
	if opts.DefaultComputeMicros == 0 {
		opts.DefaultComputeMicros = 50
	}
	return New(0, pm, nil, opts, nil), newCtx()
}

func submitSeq(iss *Issuer, c *fakeCtx, seq uint64, items ...model.ItemID) {
	t := model.NewTxn(model.TxnID{Site: 0, Seq: seq}, model.TO, nil, items, 50)
	iss.OnMessage(c, engine.DriverAddr(0), model.SubmitTxnMsg{Txn: t})
}

// TestRestartBackoffExponentialUntilCap is the restart-storm regression
// test: attempt N's pre-jitter delay must double from the base until the
// configured cap, then stay there — a flat delay re-collides every loser of
// a contention round at the same rate forever.
func TestRestartBackoffExponentialUntilCap(t *testing.T) {
	iss, _ := admissionIssuer(Options{
		RestartDelayMicros:    1_000,
		RestartDelayCapMicros: 8_000,
	})
	want := []int64{1_000, 2_000, 4_000, 8_000, 8_000, 8_000}
	for i, w := range want {
		if got := iss.rawRestartDelay(i + 1); got != w {
			t.Fatalf("attempt %d raw delay = %d, want %d", i+1, got, w)
		}
	}
	// Default cap = 32× base.
	iss2, _ := admissionIssuer(Options{RestartDelayMicros: 1_000})
	if got := iss2.rawRestartDelay(20); got != 32_000 {
		t.Fatalf("default cap delay = %d, want 32000", got)
	}
	if got := iss2.rawRestartDelay(1); got != 1_000 {
		t.Fatalf("first retry delay = %d, want the base 1000", got)
	}
}

// TestRestartBackoffJitteredTimerGrows drives real rejections through the
// issuer and asserts the scheduled timer delays grow with the attempts while
// staying inside the ±50% jitter envelope of the capped exponential.
func TestRestartBackoffJitteredTimerGrows(t *testing.T) {
	iss, c := admissionIssuer(Options{
		RestartDelayMicros:    1_000,
		RestartDelayCapMicros: 16_000,
	})
	submitSeq(iss, c, 1, 0)
	for attempt := 0; attempt < 6; attempt++ {
		reqs := take[model.RequestMsg](c)
		if len(reqs) != 1 {
			t.Fatalf("attempt %d: requests = %d", attempt, len(reqs))
		}
		c.timers, c.delays = nil, nil
		iss.OnMessage(c, engine.QMAddr(0), model.RejectMsg{
			Txn: reqs[0].Txn, Attempt: reqs[0].Attempt, Copy: reqs[0].Copy,
			Threshold: reqs[0].TS + 10,
		})
		if len(c.delays) != 1 {
			t.Fatalf("attempt %d: restart timers = %d", attempt, len(c.delays))
		}
		raw := int64(1_000) << attempt
		if raw > 16_000 {
			raw = 16_000
		}
		d := c.delays[0]
		if d < raw/2 || d >= raw+raw/2 {
			t.Fatalf("attempt %d: delay %d outside jitter envelope [%d,%d) of raw %d",
				attempt, d, raw/2, raw+raw/2, raw)
		}
		fireTimers(iss, c) // relaunch
	}
}

// TestAdmissionWindowSheds: arrivals beyond the in-flight window are shed —
// reported to the collector with OutcomeShed, counted, and (for closed-loop
// drivers) released immediately — and never issue a request.
func TestAdmissionWindowSheds(t *testing.T) {
	iss, c := admissionIssuer(Options{
		Admission: AdmissionOptions{Enabled: true, InitialWindow: 2},
	})
	iss.SetNotifyDriver(true)
	for seq := uint64(1); seq <= 4; seq++ {
		submitSeq(iss, c, seq, model.ItemID(seq%8))
	}
	reqs := take[model.RequestMsg](c)
	if len(reqs) != 2 {
		t.Fatalf("requests = %d, want 2 (window)", len(reqs))
	}
	dones := take[model.TxnDoneMsg](c)
	if len(dones) != 2 {
		t.Fatalf("shed reports = %d, want 2", len(dones))
	}
	for _, d := range dones {
		if d.Outcome != model.OutcomeShed {
			t.Fatalf("outcome = %v, want shed", d.Outcome)
		}
	}
	// Closed-loop slots freed immediately for the shed pair.
	if fins := take[model.TxnFinishedMsg](c); len(fins) != 2 {
		t.Fatalf("driver releases = %d, want 2", len(fins))
	}
	if s := iss.Snapshot(); s.Shed != 2 || s.Active != 2 || s.Submitted != 4 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestAdmissionTokenBucket: with a rate gate, starts beyond the bucket are
// shed even while the window has room; refill readmits.
func TestAdmissionTokenBucket(t *testing.T) {
	iss, c := admissionIssuer(Options{
		Admission: AdmissionOptions{
			Enabled:       true,
			InitialWindow: 100,
			TokensPerSec:  10,
			Burst:         2,
		},
	})
	for seq := uint64(1); seq <= 4; seq++ {
		submitSeq(iss, c, seq, model.ItemID(seq%8))
	}
	if reqs := take[model.RequestMsg](c); len(reqs) != 2 {
		t.Fatalf("requests = %d, want 2 (burst)", len(reqs))
	}
	if s := iss.Snapshot(); s.Shed != 2 {
		t.Fatalf("shed = %d, want 2", s.Shed)
	}
	// 100ms refills one token at 10/s.
	c.now += 100_000
	submitSeq(iss, c, 5, 3)
	if reqs := take[model.RequestMsg](c); len(reqs) != 1 {
		t.Fatalf("post-refill requests = %d, want 1", len(reqs))
	}
}

// TestBusyNAKAbortsRestartsAndShrinksWindow: a BusyMsg from a saturated
// queue manager aborts the attempt (withdrawing the other copies), schedules
// a backoff restart, and multiplicatively shrinks the admission window.
func TestBusyNAKAbortsRestartsAndShrinksWindow(t *testing.T) {
	iss, c := admissionIssuer(Options{
		Admission: AdmissionOptions{Enabled: true, InitialWindow: 64},
	})
	submitSeq(iss, c, 1, 0, 1)
	reqs := take[model.RequestMsg](c)
	if len(reqs) != 2 {
		t.Fatalf("requests = %d", len(reqs))
	}
	before := iss.Snapshot().Window
	c.now = 1_000_000 // past any cooldown ambiguity at t=0
	iss.OnMessage(c, engine.QMAddr(0), model.BusyMsg{
		Txn: reqs[0].Txn, Attempt: reqs[0].Attempt, Copy: reqs[0].Copy,
	})
	if aborts := take[model.AbortMsg](c); len(aborts) != 2 {
		// Both copies are withdrawn, including the NAK'd one: a transport-
		// synthesized NAK cannot know whether its request reached the queue
		// manager, and an abort for a never-queued entry is a QM no-op.
		t.Fatalf("aborts = %d, want 2 (every copy withdrawn)", len(aborts))
	}
	dones := take[model.TxnDoneMsg](c)
	if len(dones) != 1 || dones[0].Outcome != model.OutcomeBusy {
		t.Fatalf("dones = %+v", dones)
	}
	if len(c.timers) != 1 {
		t.Fatalf("restart timers = %d", len(c.timers))
	}
	after := iss.Snapshot()
	if after.BusyNAKs != 1 {
		t.Fatalf("busy NAK counter = %d", after.BusyNAKs)
	}
	if after.Window >= before {
		t.Fatalf("window did not shrink: %v -> %v", before, after.Window)
	}
	// The retry relaunches with a bumped attempt.
	fireTimers(iss, c)
	retry := take[model.RequestMsg](c)
	if len(retry) != 2 || retry[0].Attempt != 1 {
		t.Fatalf("retry = %+v", retry)
	}
	// A stale NAK for the aborted attempt is ignored — including by the
	// admission controller: well past the AIMD cooldown, a phantom NAK
	// (duplicated by a transport batch retry) must not shrink the window
	// for an attempt that no longer exists.
	c.now = 2_000_000
	windowBefore := iss.Snapshot().Window
	iss.OnMessage(c, engine.QMAddr(0), model.BusyMsg{
		Txn: reqs[0].Txn, Attempt: 0, Copy: reqs[0].Copy,
	})
	if aborts := take[model.AbortMsg](c); len(aborts) != 0 {
		t.Fatal("stale NAK aborted the new attempt")
	}
	if w := iss.Snapshot().Window; w != windowBefore {
		t.Fatalf("stale NAK moved the admission window: %v -> %v", windowBefore, w)
	}
}

// TestBusyNAKShedsReadOnlySnapshot: the RO fast path has no restart
// machinery — a busy NAK sheds the whole transaction and frees its slot.
func TestBusyNAKShedsReadOnlySnapshot(t *testing.T) {
	iss, c := admissionIssuer(Options{})
	iss.SetNotifyDriver(true)
	tx := model.NewTxn(model.TxnID{Site: 0, Seq: 1}, model.ROSnapshot, []model.ItemID{0, 1}, nil, 50)
	iss.OnMessage(c, engine.DriverAddr(0), model.SubmitTxnMsg{Txn: tx})
	snaps := take[model.SnapReadMsg](c)
	if len(snaps) != 2 {
		t.Fatalf("snap reads = %d", len(snaps))
	}
	iss.OnMessage(c, engine.QMAddr(0), model.BusyMsg{
		Txn: tx.ID, Copy: snaps[0].Copy,
	})
	dones := take[model.TxnDoneMsg](c)
	if len(dones) != 1 || dones[0].Outcome != model.OutcomeBusy || dones[0].Protocol != model.ROSnapshot {
		t.Fatalf("dones = %+v", dones)
	}
	if fins := take[model.TxnFinishedMsg](c); len(fins) != 1 {
		t.Fatalf("driver releases = %d, want 1", len(fins))
	}
	if s := iss.Snapshot(); s.Active != 0 || s.BusyNAKs != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// The straggler reply for the shed transaction is dropped silently.
	iss.OnMessage(c, engine.QMAddr(1), model.SnapReadReplyMsg{
		Txn: tx.ID, Copy: snaps[1].Copy, Exact: true,
	})
	if s := iss.Snapshot(); s.Committed != 0 {
		t.Fatal("shed RO transaction committed from a straggler reply")
	}
}

// TestAdmissionAIMDRecovers: after a decrease, in-target commits grow the
// window back additively.
func TestAdmissionAIMDRecovers(t *testing.T) {
	a := newAdmission(AdmissionOptions{Enabled: true, InitialWindow: 10, MinWindow: 2})
	a.onBusy(1_000_000)
	shrunk := a.window
	if shrunk >= 10 {
		t.Fatalf("window did not shrink: %v", shrunk)
	}
	for i := 0; i < 100; i++ {
		a.onCommit(2_000_000+int64(i), 1_000)
	}
	if a.window <= shrunk {
		t.Fatalf("window did not recover: %v -> %v", shrunk, a.window)
	}
	// The first congestion signal counts even within a cooldown of t=0
	// (virtual time starts at zero; lastDecrease=0 must not read as "just
	// decreased").
	early := newAdmission(AdmissionOptions{Enabled: true, InitialWindow: 100, CooldownMicros: 10_000})
	early.onBusy(5_000)
	if early.window >= 100 {
		t.Fatalf("first decrease within a cooldown of t=0 was swallowed: %v", early.window)
	}
	// Cooldown: a burst of NAKs in one episode decreases once.
	b := newAdmission(AdmissionOptions{Enabled: true, InitialWindow: 100, CooldownMicros: 10_000})
	b.onBusy(1_000_000)
	first := b.window
	b.onBusy(1_001_000) // inside the cooldown
	if b.window != first {
		t.Fatalf("cooldown violated: %v -> %v", first, b.window)
	}
	b.onBusy(1_020_000) // outside
	if b.window >= first {
		t.Fatalf("second episode did not decrease: %v", b.window)
	}
	// Latency signal: a slow commit also decreases.
	d := newAdmission(AdmissionOptions{Enabled: true, InitialWindow: 50, TargetLatencyMicros: 10_000})
	d.onCommit(5_000_000, 50_000)
	if d.window >= 50 {
		t.Fatalf("slow commit did not shrink the window: %v", d.window)
	}
}
