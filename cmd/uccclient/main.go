// Command uccclient drives a live uccnode cluster: it hosts the workload
// drivers and the metrics collector, submits transactions to every site's
// request issuer over TCP for the requested duration, then prints the
// per-protocol summary (mean system time S, restarts, back-offs, messages).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ucc/internal/engine"
	"ucc/internal/metrics"
	"ucc/internal/model"
	"ucc/internal/transport"
	"ucc/internal/workload"
)

func main() {
	var (
		sitesCSV = flag.String("peers", "", "comma-separated site TCP addresses, index = site id")
		listen   = flag.String("listen", ":7709", "TCP listen address for replies")
		rate     = flag.Float64("rate", 20, "arrival rate per site (txn/s)")
		duration = flag.Duration("duration", 5*time.Second, "workload duration")
		items    = flag.Int("items", 64, "number of logical items (must match uccnode)")
		size     = flag.Int("size", 4, "items per transaction")
		readFrac = flag.Float64("read-frac", 0.6, "fraction of accesses that are reads")
		mix      = flag.String("mix", "1,1,1", "protocol shares 2PL,T/O,PA[,RO-snapshot]")
		compute  = flag.Int64("compute-us", 1000, "local computing phase (µs)")
		sendCap  = flag.Int("send-queue-cap", 65536, "per-peer transport send-queue bound, drop-oldest beyond it (0 = unbounded)")
	)
	flag.Parse()

	peerList, err := parsePeerList(*sitesCSV)
	if err != nil {
		log.Fatalf("uccclient: %v", err)
	}
	shares, err := parseMix(*mix)
	if err != nil {
		log.Fatalf("uccclient: %v", err)
	}
	topo := clientTopology(peerList, *listen)

	rt := engine.NewRuntime(engine.FixedLatency{}, 42)
	collector := metrics.NewCollector(metrics.CollectorOptions{})
	rt.Register(engine.CollectorAddr(), collector)

	horizon := rt.NowMicros() + duration.Microseconds()
	for i := range peerList {
		site := model.SiteID(i)
		d, err := workload.NewDriver(site, workload.Spec{
			ArrivalPerSec: *rate,
			HorizonMicros: horizon,
			Items:         *items,
			Size:          *size,
			ReadFrac:      *readFrac,
			Share2PL:      shares[0],
			ShareTO:       shares[1],
			SharePA:       shares[2],
			ShareRO:       shares[3],
			ComputeMicros: *compute,
		})
		if err != nil {
			log.Fatalf("uccclient: %v", err)
		}
		rt.Register(engine.DriverAddr(site), d)
	}

	node, err := transport.NewNode(rt, "client", *listen, topo)
	if err != nil {
		log.Fatalf("uccclient: %v", err)
	}
	// The client's outboxes melt just like a node's when a site dies mid-run
	// (the writer blocks in a 3s dial while the drivers keep producing).
	node.SetSendQueueCap(*sendCap)
	log.Printf("uccclient: driving %d sites at %.0f txn/s/site for %s", len(peerList), *rate, *duration)
	for i := range peerList {
		rt.Post(engine.Envelope{
			From: engine.DriverAddr(model.SiteID(i)),
			To:   engine.DriverAddr(model.SiteID(i)),
			Msg:  model.TickMsg{},
		})
	}

	// Let the workload run, then allow in-flight transactions to settle.
	time.Sleep(*duration + 2*time.Second)

	sum := collector.Summarize()
	table := metrics.Table{Header: []string{
		"protocol", "commits", "S mean (ms)", "S p95 (ms)", "restarts", "victims", "msgs/commit",
	}}
	// Member protocols plus the read-only snapshot class (its row is all
	// zeros when the mix has no fourth share).
	for _, p := range append(append([]model.Protocol{}, model.Protocols...), model.ROSnapshot) {
		ps := sum.Protocols[p]
		if p == model.ROSnapshot && ps.Committed == 0 {
			continue
		}
		table.AddRow(p.String(),
			fmt.Sprint(ps.Committed),
			metrics.F(ps.SystemTime.Mean()/1000),
			metrics.F(ps.SystemTimeH.Quantile(0.95)/1000),
			fmt.Sprint(ps.Rejected),
			fmt.Sprint(ps.Victims),
			metrics.F(ps.Messages.Mean()))
	}
	fmt.Println()
	fmt.Print(table.String())
	fmt.Printf("\ntotal committed: %d, throughput: %.1f txn/s\n",
		sum.TotalCommitted(), sum.Throughput())
	if shed, busy := sum.TotalShed(), sum.TotalBusy(); shed+busy > 0 {
		fmt.Printf("overload: %d arrivals shed by admission control, %d attempts busy-NAK'd\n", shed, busy)
	}

	node.Close()
	rt.Shutdown()
}
