// Package experiments defines one registered, reproducible experiment per
// evaluation claim of the paper (see DESIGN.md §4 for the index), plus the
// beyond-the-paper experiments the repo has grown: EXP-9 (site crash, WAL
// recovery, group commit), EXP-10 (the read-only snapshot fast path
// on/off), EXP-11 (queue-manager shard scaling, uniform vs hot-shard),
// EXP-12 (overload defense), EXP-13 (the scenario library), and EXP-14
// (quorum replication surviving a dead site with log-shipping catch-up).
// Each experiment sweeps a parameter, runs seeded virtual-time clusters,
// and renders the table/series the evaluation describes — except EXP-11,
// which measures wall-clock throughput on a multi-goroutine harness
// (ShardThroughput) because the single-threaded simulator cannot express
// parallel speedup. EXPERIMENTS.md records paper-claim vs measured for
// each.
package experiments
