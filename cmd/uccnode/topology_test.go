package main

import (
	"testing"

	"ucc/internal/engine"
	"ucc/internal/model"
	"ucc/internal/placement"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers(" :7700, :7701,:7702 ", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{":7700", ":7701", ":7702"}
	for i := range want {
		if peers[i] != want[i] {
			t.Fatalf("peer %d = %q, want %q", i, peers[i], want[i])
		}
	}
}

func TestParsePeersErrors(t *testing.T) {
	cases := []struct {
		csv   string
		sites int
	}{
		{"", 3},                  // missing
		{":7700,:7701", 3},       // too few
		{":7700,:7701,:7702", 2}, // too many
		{":7700,,:7702", 3},      // empty entry
	}
	for _, c := range cases {
		if _, err := parsePeers(c.csv, c.sites); err == nil {
			t.Errorf("parsePeers(%q, %d) accepted bad input", c.csv, c.sites)
		}
	}
}

func TestSiteTopologyAssignment(t *testing.T) {
	topo := siteTopology([]string{":7700", ":7701", ":7702"}, ":7709")
	for i, addr := range []string{":7700", ":7701", ":7702"} {
		name := topo.Assign(engine.QMAddr(model.SiteID(i)))
		if got := topo.Peers[name]; got != addr {
			t.Errorf("QM %d assigned to %q (%s), want %s", i, name, got, addr)
		}
		if n2 := topo.Assign(engine.RIAddr(model.SiteID(i))); n2 != name {
			t.Errorf("RI %d on %q, QM on %q — must be co-resident", i, n2, name)
		}
	}
	// Detector lives on site 0; collector on the client peer.
	if name := topo.Assign(engine.DetectorAddr()); topo.Peers[name] != ":7700" {
		t.Errorf("detector assigned to %q", name)
	}
	if name := topo.Assign(engine.CollectorAddr()); topo.Peers[name] != ":7709" {
		t.Errorf("collector assigned to %q", name)
	}
}

func TestSiteTopologyWithoutClient(t *testing.T) {
	topo := siteTopology([]string{":7700"}, "")
	if _, ok := topo.Peers["client"]; ok {
		t.Error("client peer registered despite empty address")
	}
}

func TestQuorumFromFlags(t *testing.T) {
	cases := []struct {
		name       string
		n, w, r    int
		replicas   int
		durable    bool
		wantQuorum bool
		wantErr    bool
	}{
		{"all zero is off", 0, 0, 0, 3, false, false, false},
		{"valid 3-2-2", 3, 2, 2, 3, true, true, false},
		{"partial triple", 3, 0, 0, 3, true, false, true},
		{"W exceeds N", 3, 4, 2, 3, true, false, true},
		{"disjoint read-write", 3, 1, 2, 3, true, false, true},
		{"disjoint write-write", 3, 1, 3, 3, true, false, true},
		{"N vs replicas", 3, 2, 2, 2, true, false, true},
		{"no data-dir", 3, 2, 2, 3, false, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := quorumFromFlags(tc.n, tc.w, tc.r, tc.replicas, tc.durable)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("accepted n=%d w=%d r=%d replicas=%d durable=%v", tc.n, tc.w, tc.r, tc.replicas, tc.durable)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if (q != nil) != tc.wantQuorum {
				t.Fatalf("quorum = %+v, want present=%v", q, tc.wantQuorum)
			}
		})
	}
}

func TestPlacementFromFlag(t *testing.T) {
	cases := []struct {
		name    string
		flag    string
		want    placement.Policy
		wantErr bool
	}{
		{"empty defaults to round-robin", "", placement.RoundRobin, false},
		{"round-robin", "round-robin", placement.RoundRobin, false},
		{"range", "range", placement.Range, false},
		{"hash", "hash", placement.Hash, false},
		{"unknown policy", "zigzag", "", true},
		{"case sensitive", "Range", "", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := placementFromFlag(tc.flag)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("accepted -placement=%q", tc.flag)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("policy = %q, want %q", got, tc.want)
			}
		})
	}
}

func TestParseItems(t *testing.T) {
	items, err := parseItems(" 3, 1,8 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 || items[0] != 3 || items[1] != 1 || items[2] != 8 {
		t.Fatalf("items = %v, want [3 1 8]", items)
	}
	if got, err := parseItems(""); err != nil || got != nil {
		t.Fatalf("empty list = %v, %v; want nil, nil", got, err)
	}
	for _, bad := range []string{"a", "-1", "1,,2", "1,x"} {
		if _, err := parseItems(bad); err == nil {
			t.Errorf("parseItems(%q) accepted bad input", bad)
		}
	}
}

func TestReplPeersFor(t *testing.T) {
	sites := []model.SiteID{0, 1, 2, 3}
	// Full replication: everyone pulls from everyone else.
	full := placement.Build(placement.RoundRobin, 8, sites, 4)
	if got := replPeersFor(full, 1); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("full replication peers = %v, want [0 2 3]", got)
	}
	// Single copy: no shared items, no peers, quorum pull plane idle.
	single := placement.Build(placement.RoundRobin, 8, sites, 1)
	if got := replPeersFor(single, 0); len(got) != 0 {
		t.Fatalf("unreplicated map has peers: %v", got)
	}
	// Partial replication: peers are exactly the sites sharing an item.
	partial := placement.Build(placement.RoundRobin, 8, sites, 2)
	for _, self := range sites {
		peers := replPeersFor(partial, self)
		seen := map[model.SiteID]bool{}
		for item := 0; item < partial.Items(); item++ {
			reps := partial.Replicas(model.ItemID(item))
			mine := false
			for _, s := range reps {
				if s == self {
					mine = true
				}
			}
			if !mine {
				continue
			}
			for _, s := range reps {
				if s != self {
					seen[s] = true
				}
			}
		}
		if len(peers) != len(seen) {
			t.Fatalf("site %d peers = %v, want %v", self, peers, seen)
		}
		for _, p := range peers {
			if !seen[p] {
				t.Fatalf("site %d pulls from %d, which shares no item", self, p)
			}
		}
	}
}
