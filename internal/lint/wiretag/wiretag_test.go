package wiretag_test

import (
	"testing"

	"ucc/internal/lint/linttest"
	"ucc/internal/lint/wiretag"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, wiretag.Analyzer, "testdata", "wt/internal/model")
}
