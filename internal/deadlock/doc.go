// Package deadlock implements wait-for-graph deadlock detection for the 2PL
// member of the unified scheme.
//
// The paper cites distributed deadlock detection [1,6,11] without fixing an
// algorithm; we implement a coordinator that periodically probes every queue
// manager for its local wait-for edges (Obermarck-style global-graph
// aggregation with a central coordinator), requires a cycle to persist
// across two consecutive rounds before acting (PA negotiations and T/O
// queue waits form transient cycles that resolve by themselves — Corollary 1),
// and then aborts the youngest 2PL member of the cycle. Corollary 2
// guarantees every genuine deadlock cycle contains a 2PL transaction; the
// detector counts cycles without one (they must all be transient) so tests
// can assert the corollary empirically.
package deadlock
