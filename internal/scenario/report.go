package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"ucc/internal/metrics"
	"ucc/internal/qm"
	"ucc/internal/ri"
	"ucc/internal/wal"
)

// RunRecord is the machine-diffable record of one scenario run: per-phase
// metric deltas, every fault applied, and every check's verdict. Marshals to
// stable JSON (the CI smoke job archives these).
type RunRecord struct {
	Scenario    string `json:"scenario"`
	Description string `json:"description,omitempty"`
	Seed        int64  `json:"seed"`
	Sites       int    `json:"sites"`
	Items       int    `json:"items"`
	Replicas    int    `json:"replicas"`
	Shards      int    `json:"shards"`

	Phases []PhaseRecord `json:"phases"`
	Final  FinalRecord   `json:"final"`

	// Passed is true when every phase check and every final check passed.
	Passed bool `json:"passed"`
	// Failures flattens every failed check as "phase/check: detail" lines.
	Failures []string `json:"failures,omitempty"`
}

// PhaseRecord is one phase's outcome: metric deltas over exactly this
// phase's events, the faults applied, and the checkpoint verdicts.
type PhaseRecord struct {
	Name        string `json:"name"`
	StartMicros int64  `json:"start_micros"`
	EndMicros   int64  `json:"end_micros"`

	Committed         uint64  `json:"committed"`
	Shed              uint64  `json:"shed"`
	Busy              uint64  `json:"busy"`
	Rejected          uint64  `json:"rejected"`
	Victims           uint64  `json:"victims"`
	ThroughputPerSec  float64 `json:"throughput_per_sec"`
	MeanLatencyMicros float64 `json:"mean_latency_micros"`
	P50Micros         float64 `json:"p50_micros"`
	P99Micros         float64 `json:"p99_micros"`
	// DepthHighWater is the run-so-far high-water data-queue depth (a
	// monotone mark, not a per-phase delta).
	DepthHighWater int `json:"depth_high_water"`

	// RI, QM, and WAL are per-phase deltas of the issuer, queue-manager, and
	// durability counters (WAL all-zero without Config.Durability; RI.Active
	// is the instantaneous live count at the boundary, not a delta).
	RI  ri.Stats    `json:"ri"`
	QM  qm.Counters `json:"qm"`
	WAL wal.Stats   `json:"wal"`

	Faults []FaultRecord `json:"faults,omitempty"`
	Checks []CheckRecord `json:"checks,omitempty"`

	// delta is the phase's full metric delta (histograms included) for
	// checks; not serialized — the scalar fields above are the record.
	delta metrics.Summary
}

// Summary returns the phase's full metric delta (for custom checks).
func (p *PhaseRecord) Summary() metrics.Summary { return p.delta }

// FaultRecord notes one applied fault at its absolute engine time.
type FaultRecord struct {
	Name     string `json:"name"`
	AtMicros int64  `json:"at_micros"`
}

// CheckRecord is one checkpoint verdict.
type CheckRecord struct {
	Name   string `json:"name"`
	Passed bool   `json:"passed"`
	Detail string `json:"detail,omitempty"`
}

// FinalRecord is the post-drain view of the whole run.
type FinalRecord struct {
	Committed         uint64  `json:"committed"`
	Shed              uint64  `json:"shed"`
	Busy              uint64  `json:"busy"`
	ThroughputPerSec  float64 `json:"throughput_per_sec"`
	MeanLatencyMicros float64 `json:"mean_latency_micros"`
	Unfinished        int     `json:"unfinished"`
	Events            uint64  `json:"events"`
	// Serializable is nil when history recording was off.
	Serializable *bool         `json:"serializable,omitempty"`
	Checks       []CheckRecord `json:"checks,omitempty"`
}

// JSON marshals the record (indented, stable field order).
func (r *RunRecord) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteText renders the human-readable report.
func (r *RunRecord) WriteText(w io.Writer) {
	verdict := "PASS"
	if !r.Passed {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "scenario %s [%s] seed=%d sites=%d items=%d replicas=%d\n",
		r.Scenario, verdict, r.Seed, r.Sites, r.Items, r.Replicas)
	if r.Description != "" {
		fmt.Fprintf(w, "  %s\n", r.Description)
	}
	t := metrics.Table{Header: []string{
		"phase", "span(ms)", "commit", "shed", "busy", "tput/s", "mean(ms)", "p99(ms)", "checks",
	}}
	for i := range r.Phases {
		p := &r.Phases[i]
		t.AddRow(
			p.Name,
			fmt.Sprintf("%d", (p.EndMicros-p.StartMicros)/1000),
			fmt.Sprintf("%d", p.Committed),
			fmt.Sprintf("%d", p.Shed),
			fmt.Sprintf("%d", p.Busy),
			metrics.F(p.ThroughputPerSec),
			metrics.F(p.MeanLatencyMicros/1000),
			metrics.F(p.P99Micros/1000),
			checkSummary(p.Checks),
		)
	}
	fmt.Fprint(w, t.String())
	for i := range r.Phases {
		p := &r.Phases[i]
		for _, f := range p.Faults {
			fmt.Fprintf(w, "  fault @%dms [%s] %s\n", f.AtMicros/1000, p.Name, f.Name)
		}
	}
	ser := "off"
	if r.Final.Serializable != nil {
		if *r.Final.Serializable {
			ser = "yes"
		} else {
			ser = "NO"
		}
	}
	fmt.Fprintf(w, "  final: committed=%d unfinished=%d serializable=%s checks=%s\n",
		r.Final.Committed, r.Final.Unfinished, ser, checkSummary(r.Final.Checks))
	for _, f := range r.Failures {
		fmt.Fprintf(w, "  FAIL %s\n", f)
	}
}

func checkSummary(checks []CheckRecord) string {
	if len(checks) == 0 {
		return "-"
	}
	pass := 0
	for _, c := range checks {
		if c.Passed {
			pass++
		}
	}
	return fmt.Sprintf("%d/%d", pass, len(checks))
}
