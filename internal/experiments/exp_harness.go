package experiments

import (
	"fmt"

	"ucc/internal/metrics"
	"ucc/internal/scenario"
)

// Exp13 runs the declarative scenario library end to end: every named
// scenario executes its phases, faults, and checkpoints, and the experiment
// reports one row per scenario with its checkpoint verdict. Quick mode runs
// only the CI smoke pair (the fault-free overload scenario and the
// crash-and-recover scenario).
func Exp13(cfg RunConfig) Result {
	res := Result{
		ID:    "EXP-13",
		Title: "Scenario harness: phased workloads, fault scripts, invariant checkpoints",
		Claim: "beyond the paper: every library scenario — YCSB shapes, a TPC-C-like mix, a diurnal curve crossing the admission threshold twice, a flash crowd, a mid-spike site crash, a slow WAL window, a degraded link — passes its declared invariant checkpoints (serializability, replica agreement, bounded queues, shed/no-shed phases, SLO goodput) on a live cluster",
	}

	todo := scenario.Library()
	if cfg.Quick {
		todo = scenario.Smoke()
	}

	t := &metrics.Table{Header: []string{
		"scenario", "phases", "faults", "committed", "shed", "tput/s", "checks", "verdict",
	}}
	for _, sc := range todo {
		rec, err := scenario.Run(sc, scenario.Options{Seed: cfg.Seed})
		if err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("%s: %v", sc.Name, err))
			continue
		}
		var faults, checks, passed int
		for i := range rec.Phases {
			faults += len(rec.Phases[i].Faults)
			for _, c := range rec.Phases[i].Checks {
				checks++
				if c.Passed {
					passed++
				}
			}
		}
		for _, c := range rec.Final.Checks {
			checks++
			if c.Passed {
				passed++
			}
		}
		verdict := "PASS"
		if !rec.Passed {
			verdict = "FAIL"
		}
		t.AddRow(
			rec.Scenario,
			fmt.Sprintf("%d", len(rec.Phases)),
			fmt.Sprintf("%d", faults),
			fmt.Sprintf("%d", rec.Final.Committed),
			fmt.Sprintf("%d", rec.Final.Shed),
			metrics.F(rec.Final.ThroughputPerSec),
			fmt.Sprintf("%d/%d", passed, checks),
			verdict,
		)
		for _, f := range rec.Failures {
			res.Notes = append(res.Notes, fmt.Sprintf("%s: FAIL %s", rec.Scenario, f))
		}
	}
	res.Tables = append(res.Tables, t)
	return res
}
