// Package scenario is the declarative whole-system test harness: it turns
// "run this workload shape, break this, and assert these invariants" into
// data instead of per-experiment driver code.
//
// A Scenario names a cluster shape and a list of phases. Each phase holds a
// workload spec per site for a duration (reusing internal/workload's knobs —
// arrival rate, size and access distributions, protocol mix, read-only
// share), a list of scheduled faults (crash and recover a durable site,
// widen a WAL group-commit window, swap the network latency model), and a
// list of checkpoints evaluated at the phase boundary against exactly that
// phase's metric delta. Final checks run after the drain against the whole
// run: serializability of the recorded history, replica agreement after
// recovery, a balanced issuer ledger, nothing left unfinished.
//
// The runner (Run) executes phases against a live cluster on the
// virtual-time engine: it advances the engine to each fault instant, applies
// the fault between steps, snapshots the metrics collector at each phase
// boundary, and subtracts consecutive snapshots (metrics.Summary.Delta) so a
// phase's numbers describe that phase alone. Check failures are recorded,
// not fatal — one run reports every violated invariant. The result is a
// RunRecord that renders as a console table or marshals to stable JSON, so
// CI can archive and diff run records across commits.
//
// The library (Library) ships named scenarios modeled on standard shapes:
// YCSB A/B/C, a TPC-C-like heterogeneous mix, a diurnal curve that crosses
// the admission-control threshold twice, a flash-crowd hotspot spike, a
// site crash in mid-spike with recovery, a slow-disk WAL window excursion,
// an asymmetric degraded link, a quorum failover (N=3/W=2/R=2 loses a site
// mid-run and keeps committing), and a replica catch-up grind (a long
// outage under heavy writes that log shipping must converge). cmd/uccscenario
// is the CLI (-list, -run <name>, -all, -json, -seed); Smoke returns the
// fast trio CI runs on every PR.
package scenario
