package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one named check. The Run function inspects a single
// package and reports findings through the Pass; it must not retain the
// Pass after returning.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//ucclint:allow <name>" suppression comments. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description shown by `ucclint -help`.
	Doc string
	// Run performs the check.
	Run func(*Pass) error
}

// Pass carries one package's worth of inputs to an Analyzer.Run and
// collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the package's directory on disk ("" when unknown). Analyzers
	// that check on-disk artifacts next to the source — the wiretag
	// analyzer's fuzz-corpus seeds — resolve paths relative to it.
	Dir string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a fully-formed diagnostic (used when attaching suggested
// fixes).
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}

// Diagnostic is one finding: a position, a message, and optionally a
// mechanical fix.
type Diagnostic struct {
	Analyzer       string
	Pos            token.Pos
	Message        string
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is a human-described set of edits that would resolve the
// diagnostic. ucclint prints it; it does not apply it.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// allowRE matches suppression comments:
//
//	//ucclint:allow name1,name2 -- reason the invariant holds here
//
// A diagnostic is suppressed when a comment naming its analyzer sits on
// the flagged line or on the line directly above it. The "-- reason" tail
// is for the human reviewer; the analyzer only reads the name list.
var allowRE = regexp.MustCompile(`^//ucclint:allow\s+([A-Za-z0-9_,-]+)`)

// allowedLines maps file → line → set of analyzer names suppressed there.
func allowedLines(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := map[string]map[int]map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					out[pos.Filename] = byLine
				}
				names := byLine[pos.Line]
				if names == nil {
					names = map[string]bool{}
					byLine[pos.Line] = names
				}
				for _, n := range strings.Split(m[1], ",") {
					names[strings.TrimSpace(n)] = true
				}
			}
		}
	}
	return out
}

// RunPackage runs the analyzers over one package and returns the surviving
// diagnostics sorted by position. Diagnostics suppressed by an
// "//ucclint:allow" comment on (or directly above) the flagged line are
// dropped.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Dir:       pkg.Dir,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	allowed := allowedLines(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		byLine := allowed[pos.Filename]
		if byLine != nil && (byLine[pos.Line][d.Analyzer] || byLine[pos.Line-1][d.Analyzer]) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Pos != kept[j].Pos {
			return kept[i].Pos < kept[j].Pos
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// Format renders one diagnostic the way every Go tool does:
// file:line:col: message (analyzer).
func Format(fset *token.FileSet, d Diagnostic) string {
	pos := fset.Position(d.Pos)
	s := fmt.Sprintf("%s: %s (%s)", pos, d.Message, d.Analyzer)
	for _, fix := range d.SuggestedFixes {
		s += fmt.Sprintf("\n\tsuggested fix: %s", fix.Message)
	}
	return s
}

// PathHasSuffix reports whether the import path is exactly suffix or ends
// with "/"+suffix — the way analyzers recognise well-known packages
// ("internal/engine", "internal/model") without hard-coding the module
// name, so fixture modules under other names exercise the same code.
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
