package stl

import (
	"math"

	"ucc/internal/model"
)

// TxnProfile describes the transaction being costed: the per-item read/write
// lock-grant rates at the queues it will touch (λ_w(D(r_i)), λ_r(D(q_i))),
// split by whether the transaction reads or writes the item.
type TxnProfile struct {
	// ReadItemsLambdaW lists λ_w(D(r_i)) for each of the m read requests.
	ReadItemsLambdaW []float64
	// WriteItemsLambdaW/WriteItemsLambdaR list λ_w(D(q_i)) and λ_r(D(q_i))
	// for each of the n write requests.
	WriteItemsLambdaW []float64
	WriteItemsLambdaR []float64
}

// M returns m(t), the number of read requests.
func (t TxnProfile) M() int { return len(t.ReadItemsLambdaW) }

// N returns n(t), the number of write requests.
func (t TxnProfile) N() int { return len(t.WriteItemsLambdaW) }

// LambdaT returns λ_t, the throughput loss while t holds all its locks:
// each read lock blocks that queue's writes; each write lock blocks the
// queue's reads and writes.
func (t TxnProfile) LambdaT() float64 {
	var sum float64
	for _, lw := range t.ReadItemsLambdaW {
		sum += lw
	}
	for i, lw := range t.WriteItemsLambdaW {
		sum += lw + t.WriteItemsLambdaR[i]
	}
	return sum
}

// ProtocolParams carries the measured per-protocol parameters of §5.2.
// Times are in seconds.
type ProtocolParams struct {
	// U2PL/U2PLAborted: average lock time of a 2PL attempt that commits /
	// dies in a deadlock. PAbort: probability an attempt is aborted.
	U2PL, U2PLAborted, PAbort float64
	// UTO/UTOAborted: T/O lock times; Pr/Pw: per-request read/write
	// rejection probabilities.
	UTO, UTOAborted, Pr, Pw float64
	// UPA/UPABackoff: PA lock times (no back-off / backed off); PBr/PBw:
	// per-request read/write back-off probabilities.
	UPA, UPABackoff, PBr, PBw float64
}

// clampProb keeps an estimated probability numerically safe for the
// geometric-series denominators (restart loops diverge as p→1).
func clampProb(p float64) float64 {
	if math.IsNaN(p) || p < 0 {
		return 0
	}
	if p > 0.99 {
		return 0.99
	}
	return p
}

// STL2PL solves the paper's 2PL fixed point:
//
//	STL_2PL = (1−P_A)·STL'(λt, U_2PL) + P_A·(STL_2PL + STL'(λt, U'_2PL))
//	⇒ STL_2PL = [(1−P_A)·STL'(λt,U_2PL) + P_A·STL'(λt,U'_2PL)] / (1−P_A)
func STL2PL(e *Evaluator, t TxnProfile, pp ProtocolParams) float64 {
	pa := clampProb(pp.PAbort)
	lt := t.LambdaT()
	ok := e.Evaluate(lt, pp.U2PL)
	ab := e.Evaluate(lt, pp.U2PLAborted)
	return ((1-pa)*ok + pa*ab) / (1 - pa)
}

// STLTO solves the paper's T/O fixed point. With success probability
// p_s = (1−P_r)^m·(1−P_w)^n:
//
//	STL_T/O = p_s·STL'(λt, U_TO) + (1−p_s)·(STL'(λt*, U'_TO) + STL_T/O)
//	⇒ STL_T/O = [p_s·STL'(λt,U_TO) + (1−p_s)·STL'(λt*,U'_TO)] / p_s
//
// λt* is the conditional loss given at least one rejection, solved from
//
//	(1−P_r)·Σλw(D(r_i)) + (1−P_w)·Σ(λw+λr)(D(q_i))
//	    = (1−p_s)·λt* + p_s·λt
func STLTO(e *Evaluator, t TxnProfile, pp ProtocolParams) float64 {
	pr := clampProb(pp.Pr)
	pw := clampProb(pp.Pw)
	m, n := t.M(), t.N()
	ps := math.Pow(1-pr, float64(m)) * math.Pow(1-pw, float64(n))
	ps = math.Max(ps, 0.01)
	lt := t.LambdaT()

	if ps >= 1 {
		return e.Evaluate(lt, pp.UTO)
	}
	var expected float64
	for _, lw := range t.ReadItemsLambdaW {
		expected += (1 - pr) * lw
	}
	for i, lw := range t.WriteItemsLambdaW {
		expected += (1 - pw) * (lw + t.WriteItemsLambdaR[i])
	}
	ltStar := (expected - ps*lt) / (1 - ps)
	if ltStar < 0 {
		ltStar = 0
	}
	ok := e.Evaluate(lt, pp.UTO)
	ab := e.Evaluate(ltStar, pp.UTOAborted)
	return (ps*ok + (1-ps)*ab) / ps
}

// STLPA evaluates the paper's PA formula. With no-back-off probability
// p_B = (1−P_B)^m·(1−P'_B)^n:
//
//	STL_PA = p_B·STL'(λt, U_PA)
//	       + (1−p_B)·(STL'(λt†, U'_PA) + STL'(λt, U_PA))
//
// PA never restarts, so there is no fixed point: a backed-off transaction
// pays the back-off holding period and then the normal holding period. λt†
// is the conditional loss given at least one back-off, solved analogously
// to λt*.
func STLPA(e *Evaluator, t TxnProfile, pp ProtocolParams) float64 {
	pb := clampProb(pp.PBr)
	pbw := clampProb(pp.PBw)
	m, n := t.M(), t.N()
	ps := math.Pow(1-pb, float64(m)) * math.Pow(1-pbw, float64(n))
	lt := t.LambdaT()
	ok := e.Evaluate(lt, pp.UPA)
	if ps >= 1 {
		return ok
	}
	var expected float64
	for _, lw := range t.ReadItemsLambdaW {
		expected += (1 - pb) * lw
	}
	for i, lw := range t.WriteItemsLambdaW {
		expected += (1 - pbw) * (lw + t.WriteItemsLambdaR[i])
	}
	ltDagger := (expected - ps*lt) / (1 - ps)
	if ltDagger < 0 {
		ltDagger = 0
	}
	back := e.Evaluate(ltDagger, pp.UPABackoff)
	return ps*ok + (1-ps)*(back+ok)
}

// ForTxn computes the STL of every protocol for a transaction and returns
// the values indexed by model.Protocol.
func ForTxn(e *Evaluator, t TxnProfile, pp ProtocolParams) [3]float64 {
	var out [3]float64
	out[model.TwoPL] = STL2PL(e, t, pp)
	out[model.TO] = STLTO(e, t, pp)
	out[model.PA] = STLPA(e, t, pp)
	return out
}

// Best returns the protocol with the smallest STL (ties break toward 2PL,
// then T/O, matching the paper's presentation order).
func Best(v [3]float64) model.Protocol {
	best := model.TwoPL
	for _, p := range []model.Protocol{model.TO, model.PA} {
		if v[p] < v[best] {
			best = p
		}
	}
	return best
}
