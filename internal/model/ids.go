package model

import "fmt"

// SiteID identifies a physical site in the distributed system. User sites
// (hosting Request Issuers) and data sites (hosting Queue Managers) share the
// same identifier space, as in the paper's system model (§2).
type SiteID int32

// TxnID uniquely identifies a transaction attempt family. The Site component
// is the user site whose RI issued the transaction; Seq is that RI's local
// counter. Restarted transactions keep their TxnID (so metrics can attribute
// all attempts to one logical transaction) but carry a fresh Attempt number
// in messages.
type TxnID struct {
	Site SiteID
	Seq  uint64
}

func (t TxnID) String() string { return fmt.Sprintf("t%d.%d", t.Site, t.Seq) }

// IsZero reports whether the id is the zero value (no transaction).
func (t TxnID) IsZero() bool { return t.Site == 0 && t.Seq == 0 }

// Compare totally orders transaction ids (used as the final precedence
// tie-break for non-2PL requests, §4.1 step 3).
func (t TxnID) Compare(o TxnID) int {
	switch {
	case t.Site < o.Site:
		return -1
	case t.Site > o.Site:
		return 1
	case t.Seq < o.Seq:
		return -1
	case t.Seq > o.Seq:
		return 1
	default:
		return 0
	}
}

// ItemID names a logical data item (§2's D_i).
type ItemID int32

func (d ItemID) String() string { return fmt.Sprintf("D%d", d) }

// CopyID names one physical copy D_ij of logical item Item stored at Site.
type CopyID struct {
	Item ItemID
	Site SiteID
}

func (c CopyID) String() string { return fmt.Sprintf("D%d@%d", c.Item, c.Site) }

// ShardOfItem maps an item to one of shards queue-manager shards. Every
// component that routes per-item traffic — request issuers addressing shard
// mailboxes, the queue manager partitioning its queue tables, workload
// scenarios constructing shard-local hot sets — must agree on this function,
// which is why it lives in model rather than qm. The multiplicative hash
// spreads the (typically small, sequential) item space evenly so shard load
// is balanced even when items are accessed in ranges.
func ShardOfItem(item ItemID, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint64(uint32(item)) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(shards))
}

// Timestamp is a logical timestamp drawn from each RI's Lamport clock.
// Uniqueness across sites is not required of the raw value: the unified
// precedence order breaks ties by site id and transaction id (§4.1).
type Timestamp int64

// NoTimestamp marks requests (2PL) whose precedence timestamp is assigned at
// the data queue rather than by the issuer.
const NoTimestamp Timestamp = -1

// Protocol enumerates the member concurrency control algorithms of the
// unified scheme.
type Protocol uint8

const (
	// TwoPL is static two-phase locking: FCFS queue precedence plus the
	// locking protocol (§3.3). Subject to distributed deadlocks.
	TwoPL Protocol = iota
	// TO is Basic Timestamp Ordering: transaction-timestamp precedence with
	// rejection (restart) of out-of-order requests (§3.3).
	TO
	// PA is Precedence Agreement: timestamp precedence negotiated via
	// back-off intervals; deadlock- and restart-free (§3.4).
	PA
	// ROSnapshot is the read-only snapshot fast path (beyond the paper): a
	// pure-read transaction reads committed versions at a site-local
	// snapshot timestamp directly from the multi-version store, bypassing
	// the data queues entirely — no locks, no timestamps checks, no
	// restarts. Read-write transactions can never run under ROSnapshot.
	ROSnapshot
)

// Protocols lists the paper's member protocols in presentation order.
// ROSnapshot is deliberately absent: it is a transaction class layered on
// top of the unified scheme, not a member of the precedence space.
var Protocols = []Protocol{TwoPL, TO, PA}

// NumProtocols sizes per-protocol arrays that include the ROSnapshot class.
const NumProtocols = 4

func (p Protocol) String() string {
	switch p {
	case TwoPL:
		return "2PL"
	case TO:
		return "T/O"
	case PA:
		return "PA"
	case ROSnapshot:
		return "RO"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// OpKind distinguishes read and write operations.
type OpKind uint8

const (
	// OpRead is a (physical) read r(Dij).
	OpRead OpKind = iota
	// OpWrite is a (physical) write w(Dij).
	OpWrite
)

func (k OpKind) String() string {
	if k == OpRead {
		return "r"
	}
	return "w"
}

// Conflicts reports whether two operation kinds conflict: at least one write
// (§2).
func (k OpKind) Conflicts(o OpKind) bool { return k == OpWrite || o == OpWrite }

// LockKind enumerates the four lock types of the semi-lock protocol (§4.2).
type LockKind uint8

const (
	// RL is a read lock held by a 2PL or PA transaction.
	RL LockKind = iota
	// WL is a write lock (held by any protocol's writer).
	WL
	// SRL is a semi-read lock: unlocked as far as T/O is concerned, locked
	// for 2PL and PA.
	SRL
	// SWL is a semi-write lock (a T/O write already implemented, still
	// visible as a lock to 2PL/PA).
	SWL
)

func (k LockKind) String() string {
	switch k {
	case RL:
		return "RL"
	case WL:
		return "WL"
	case SRL:
		return "SRL"
	case SWL:
		return "SWL"
	default:
		return fmt.Sprintf("LockKind(%d)", uint8(k))
	}
}

// IsWrite reports whether the lock kind protects a write (WL or SWL).
func (k LockKind) IsWrite() bool { return k == WL || k == SWL }

// IsSemi reports whether the lock kind is a semi-lock (SRL or SWL).
func (k LockKind) IsSemi() bool { return k == SRL || k == SWL }

// LocksConflict implements §4.2's rule: two locks conflict if they lock the
// same data item and at least one is a WL or SWL. (Callers have already
// established the same-item condition.)
func LocksConflict(a, b LockKind) bool { return a.IsWrite() || b.IsWrite() }
