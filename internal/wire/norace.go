//go:build !race

package wire

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
