package ri

import (
	"testing"

	"ucc/internal/engine"
	"ucc/internal/history"
	"ucc/internal/model"
	"ucc/internal/placement"
)

// quorumIssuer builds an issuer over a 3-site, fully-replicated catalog in
// N=3/W=2/R=2 quorum mode.
func quorumIssuer() (*Issuer, *fakeCtx) {
	pm := placement.Build(placement.RoundRobin, 8, []model.SiteID{0, 1, 2}, 3)
	iss := New(0, pm, history.NewRecorder(), Options{
		PAIntervalMicros:     10,
		RestartDelayMicros:   100,
		DefaultComputeMicros: 50,
		Quorum:               &model.Quorum{N: 3, W: 2, R: 2},
	}, nil)
	return iss, newCtx()
}

func grantAll(iss *Issuer, c *fakeCtx, reqs []model.RequestMsg) {
	for _, r := range reqs {
		lock := model.RL
		if r.Kind == model.OpWrite {
			lock = model.WL
		}
		grant(iss, c, r, lock, false)
	}
}

// TestQuorumReadFansToAllReplicas: quorum reads go to every copy (any R
// grants win), where write-all mode reads the primary alone.
func TestQuorumReadFansToAllReplicas(t *testing.T) {
	iss, c := quorumIssuer()
	submit(iss, c, model.TwoPL, []model.ItemID{0}, []model.ItemID{1})
	reqs := take[model.RequestMsg](c)
	var reads, writes int
	for _, r := range reqs {
		if r.Kind == model.OpRead {
			reads++
		} else {
			writes++
		}
	}
	if reads != 3 || writes != 3 {
		t.Fatalf("reads=%d writes=%d, want 3/3 under N=3 quorum", reads, writes)
	}
}

// TestQuorumCommitsOnWGrants: W grants per item are enough — the straggler
// copy never answers, the transaction still commits, and release withdraws
// the straggler with an abort (it converges via log shipping, not via a
// write it did not accept).
func TestQuorumCommitsOnWGrants(t *testing.T) {
	iss, c := quorumIssuer()
	submit(iss, c, model.TwoPL, nil, []model.ItemID{1})
	reqs := take[model.RequestMsg](c)
	if len(reqs) != 3 {
		t.Fatalf("requests = %d want 3", len(reqs))
	}
	grantAll(iss, c, reqs[:2]) // sites of first two copies grant; third silent
	fireTimers(iss, c)         // compute done
	rels := take[model.ReleaseMsg](c)
	if len(rels) != 2 {
		t.Fatalf("releases = %d want 2 (granted copies only)", len(rels))
	}
	aborts := take[model.AbortMsg](c)
	if len(aborts) != 1 || aborts[0].Copy != reqs[2].Copy {
		t.Fatalf("aborts = %+v, want exactly the silent straggler withdrawn", aborts)
	}
	dones := take[model.TxnDoneMsg](c)
	if len(dones) != 1 || dones[0].Outcome != model.OutcomeCommitted {
		t.Fatalf("done = %+v", dones)
	}
	if s := iss.Snapshot(); s.Active != 0 || s.Committed != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestQuorumGrantNAKRaceEitherOrder is the ordering race the quorum gate
// must absorb: the W-th ack and a busy NAK from the remaining copy arrive in
// both orders. Either way the attempt commits without a restart and the
// straggler copy is withdrawn with exactly one abort — immediately when the
// NAK lands first, at release time when the W-th ack already moved the
// attempt into compute (a NAK for an attempt past its commit gate is moot).
func TestQuorumGrantNAKRaceEitherOrder(t *testing.T) {
	for _, order := range []string{"grants-then-nak", "nak-then-grants"} {
		t.Run(order, func(t *testing.T) {
			iss, c := quorumIssuer()
			submit(iss, c, model.TwoPL, nil, []model.ItemID{2})
			reqs := take[model.RequestMsg](c)
			if len(reqs) != 3 {
				t.Fatalf("requests = %d", len(reqs))
			}
			nak := model.BusyMsg{Txn: reqs[2].Txn, Attempt: reqs[2].Attempt, Copy: reqs[2].Copy}
			if order == "grants-then-nak" {
				grantAll(iss, c, reqs[:2])
				iss.OnMessage(c, engine.QMAddr(reqs[2].Copy.Site), nak)
			} else {
				iss.OnMessage(c, engine.QMAddr(reqs[2].Copy.Site), nak)
				grantAll(iss, c, reqs[:2])
			}
			preRelease := take[model.AbortMsg](c)
			fireTimers(iss, c) // compute done
			atRelease := take[model.AbortMsg](c)
			if got := len(preRelease) + len(atRelease); got != 1 {
				t.Fatalf("aborts = %d (%+v / %+v), want exactly one withdrawal",
					got, preRelease, atRelease)
			}
			all := append(preRelease, atRelease...)
			if all[0].Copy != reqs[2].Copy {
				t.Fatalf("withdrew %+v, want the NAK'd copy %+v", all[0].Copy, reqs[2].Copy)
			}
			if rels := take[model.ReleaseMsg](c); len(rels) != 2 {
				t.Fatalf("releases = %d want 2", len(rels))
			}
			dones := take[model.TxnDoneMsg](c)
			if len(dones) != 1 || dones[0].Outcome != model.OutcomeCommitted {
				t.Fatalf("done = %+v (quorum must absorb a single NAK, not restart)", dones)
			}
			s := iss.Snapshot()
			if s.Committed != 1 || s.ReBackoffs != 0 {
				t.Fatalf("stats = %+v, want 1 committed / 0 re-backoffs", s)
			}
			if order == "nak-then-grants" {
				if s.BusyNAKs != 1 || s.QuorumExcluded != 1 {
					t.Fatalf("stats = %+v, want 1 NAK / 1 excluded", s)
				}
				// A duplicate NAK for the already-excluded copy is a no-op.
				iss.OnMessage(c, engine.QMAddr(reqs[2].Copy.Site), nak)
				if aborts := take[model.AbortMsg](c); len(aborts) != 0 {
					t.Fatal("duplicate NAK re-aborted an excluded copy")
				}
			}
		})
	}
}

// TestQuorumBelowQuorumRestarts: losing enough copies that W is out of reach
// is overload, not progress — the attempt aborts everywhere, reports Busy,
// and schedules a backed-off restart.
func TestQuorumBelowQuorumRestarts(t *testing.T) {
	iss, c := quorumIssuer()
	submit(iss, c, model.TwoPL, nil, []model.ItemID{3})
	reqs := take[model.RequestMsg](c)
	nak := func(i int) {
		iss.OnMessage(c, engine.QMAddr(reqs[i].Copy.Site),
			model.BusyMsg{Txn: reqs[i].Txn, Attempt: reqs[i].Attempt, Copy: reqs[i].Copy})
	}
	nak(0) // one down: still satisfiable (2 of 3 left, W=2) — absorbed
	if dones := take[model.TxnDoneMsg](c); len(dones) != 0 {
		t.Fatalf("first NAK already terminal: %+v", dones)
	}
	nak(1) // two down: W unreachable — overload path
	dones := take[model.TxnDoneMsg](c)
	if len(dones) != 1 || dones[0].Outcome != model.OutcomeBusy {
		t.Fatalf("done = %+v, want Busy", dones)
	}
	if len(c.timers) != 1 {
		t.Fatalf("restart timers = %d, want 1", len(c.timers))
	}
	s := iss.Snapshot()
	if s.BusyNAKs != 2 || s.QuorumExcluded < 1 {
		t.Fatalf("stats = %+v", s)
	}
	// The retry relaunches against all three copies with a bumped attempt.
	fireTimers(iss, c)
	retry := take[model.RequestMsg](c)
	if len(retry) != 3 || retry[0].Attempt != 1 {
		t.Fatalf("retry = %+v", retry)
	}
}

// TestQuorumWritePicksHighestStampPreImage: when the granted W copies carry
// diverged pre-images (one is a laggard the catch-up plane has not reached
// yet), a read-modify-write must build on the newest stamp — the 2W>N
// overlap guarantees at least one granted copy holds the latest committed
// version.
func TestQuorumWritePicksHighestStampPreImage(t *testing.T) {
	iss, c := quorumIssuer()
	tx := model.NewTxn(model.TxnID{Site: 0, Seq: 5}, model.TwoPL, nil, []model.ItemID{5}, 50)
	tx.Specs = []model.WriteSpec{{Item: 5, UseSource: true, Source: 5, AddConst: 1}}
	iss.OnMessage(c, engine.DriverAddr(0), model.SubmitTxnMsg{Txn: tx})
	reqs := take[model.RequestMsg](c)
	if len(reqs) != 3 {
		t.Fatalf("fanout %d, want 3", len(reqs))
	}
	// Grant two copies with diverged pre-images: the laggard (value 11,
	// stamp 100) and the fresh copy (value 77, stamp 900).
	stamps := []struct {
		value int64
		at    int64
	}{{11, 100}, {77, 900}}
	for i, r := range reqs[:2] {
		iss.OnMessage(c, engine.QMAddr(r.Copy.Site), model.GrantMsg{
			Txn: r.Txn, Attempt: r.Attempt, Copy: r.Copy,
			Lock: model.WL, TS: r.TS,
			Value: stamps[i].value, CommitMicros: stamps[i].at,
		})
	}
	fireTimers(iss, c) // compute done
	rels := take[model.ReleaseMsg](c)
	var wrote *int64
	for _, r := range rels {
		if r.HasWrite {
			v := r.Value
			wrote = &v
		}
	}
	if wrote == nil {
		t.Fatalf("no write release: %+v", rels)
	}
	if *wrote != 78 {
		t.Fatalf("wrote %d, want 78 (pre-image 77 from the highest-stamp grant, +1)", *wrote)
	}
}
