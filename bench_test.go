// Benchmarks: one testing.B target per experiment in DESIGN.md's index
// (each regenerates its table in Quick mode and logs it), plus
// microbenchmarks for the hot paths (precedence comparison, queue
// operations, the STL' evaluator, the serializability checker, and the
// virtual-time engine).
//
// Full-scale tables (the ones recorded in EXPERIMENTS.md) come from
// `go run ./cmd/uccbench`.
package ucc

import (
	"fmt"
	"testing"
	"time"

	"ucc/internal/experiments"
	"ucc/internal/history"
	"ucc/internal/model"
	"ucc/internal/stl"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		res := e.Run(experiments.RunConfig{Quick: true, Seed: int64(i) + 1988})
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

func BenchmarkExp1SystemTimeVsLambda(b *testing.B) { benchExperiment(b, "EXP-1") }
func BenchmarkExp2SystemTimeVsSize(b *testing.B)   { benchExperiment(b, "EXP-2") }
func BenchmarkExp3DeadlockVsBlocking(b *testing.B) { benchExperiment(b, "EXP-3") }
func BenchmarkExp4RestartsBackoffs(b *testing.B)   { benchExperiment(b, "EXP-4") }
func BenchmarkExp5UnifiedMixed(b *testing.B)       { benchExperiment(b, "EXP-5") }
func BenchmarkExp6DynamicSelection(b *testing.B)   { benchExperiment(b, "EXP-6") }
func BenchmarkExp7STLEvaluation(b *testing.B)      { benchExperiment(b, "EXP-7") }
func BenchmarkExp8Scenarios(b *testing.B)          { benchExperiment(b, "EXP-8") }
func BenchmarkExp9CrashRecovery(b *testing.B)      { benchExperiment(b, "EXP-9") }
func BenchmarkExp10ReadPath(b *testing.B)          { benchExperiment(b, "EXP-10") }
func BenchmarkExp11ShardScaling(b *testing.B)      { benchExperiment(b, "EXP-11") }
func BenchmarkExp12Overload(b *testing.B)          { benchExperiment(b, "EXP-12") }
func BenchmarkAbl1SemiLocks(b *testing.B)          { benchExperiment(b, "ABL-1") }
func BenchmarkAbl2BackoffInterval(b *testing.B)    { benchExperiment(b, "ABL-2") }
func BenchmarkAbl3DetectionPeriod(b *testing.B)    { benchExperiment(b, "ABL-3") }

// BenchmarkClusterThroughput measures end-to-end simulated transactions per
// wall-clock second on a mixed workload (the engine's macro speed).
func BenchmarkClusterThroughput(b *testing.B) {
	var committed uint64
	var allocs float64
	for i := 0; i < b.N; i++ {
		c, err := New(Config{Sites: 4, Items: 48, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Workload(Workload{
			Rate:     40,
			Duration: 2 * time.Second,
			Mix:      Mix{TwoPL: 1, TO: 1, PA: 1},
		}); err != nil {
			b.Fatal(err)
		}
		res := c.Run()
		if !res.Serializable() {
			b.Fatal("non-serializable execution")
		}
		committed += res.Committed()
		allocs += res.AllocsPerCommittedTxn()
	}
	b.ReportMetric(float64(committed)/float64(b.N), "txns/op")
	b.ReportMetric(allocs/float64(b.N), "allocs/committed_txn")
}

// BenchmarkReadPathThroughput measures the closed-loop read-heavy capacity
// of the snapshot fast path itself (the CI bench smoke target): committed
// transactions per second of simulated time at fixed pressure.
func BenchmarkReadPathThroughput(b *testing.B) {
	var thr float64
	for i := 0; i < b.N; i++ {
		c, err := New(Config{Sites: 4, Items: 16, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Workload(Workload{
			Concurrency:  8,
			Duration:     2 * time.Second,
			Size:         3,
			ReadOnlySize: 8,
			ReadFrac:     0.2,
			Mix:          Mix{PA: 0.1, ReadOnly: 0.9},
		}); err != nil {
			b.Fatal(err)
		}
		res := c.Run()
		if !res.Serializable() {
			b.Fatal("non-serializable execution")
		}
		thr += res.Throughput()
	}
	b.ReportMetric(thr/float64(b.N), "txn/s")
}

// BenchmarkReadWriteThroughput measures the sharded queue manager's uniform
// read-write capacity on the wall-clock harness: 4 issuer goroutines, items
// hashed across shards, size-4 half-write transactions, full history
// recording. The shards=1 vs shards=4 pair is the EXP-11 headline number —
// on 4+ cores the sharded run should be ≥1.5x — and both are gated in CI
// against BENCH_baseline.json.
func BenchmarkReadWriteThroughput(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var thr, allocs float64
			for i := 0; i < b.N; i++ {
				res := experiments.ShardThroughput(shards, 4, 3000, false, int64(i)+7)
				if !res.Serializable {
					b.Fatal("non-serializable execution")
				}
				thr += res.Throughput
				allocs += res.AllocsPerTxn
			}
			b.ReportMetric(thr/float64(b.N), "txn/s")
			// Heap allocations per committed transaction across the worker
			// phase — the zero-alloc hot-path scorecard, gated lower-is-better
			// in BENCH_baseline.json (allocs/op would also count the
			// serializability checker, which is not hot-path).
			b.ReportMetric(allocs/float64(b.N), "allocs/committed_txn")
		})
	}
}

// BenchmarkPrecedenceCompare exercises the §4.1 total order.
func BenchmarkPrecedenceCompare(b *testing.B) {
	ps := make([]model.Precedence, 64)
	for i := range ps {
		ps[i] = model.Precedence{
			TS:    model.Timestamp(i % 7),
			Is2PL: i%3 == 0,
			Site:  model.SiteID(i % 5),
			Txn:   model.TxnID{Site: model.SiteID(i % 5), Seq: uint64(i)},
		}
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += ps[i%64].Compare(ps[(i+7)%64])
	}
	_ = sink
}

// BenchmarkSTLEvaluate measures one STL' dynamic program.
func BenchmarkSTLEvaluate(b *testing.B) {
	ev, err := stl.NewEvaluator(stl.Params{
		LambdaA: 400, LambdaW: 4, LambdaR: 6, Qr: 0.6, K: 4,
	}, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += ev.Evaluate(float64(i%200), 0.02)
	}
	_ = sink
}

// BenchmarkSTLSelection measures a full 3-protocol STL comparison (the
// per-transaction cost of dynamic selection on a cache miss).
func BenchmarkSTLSelection(b *testing.B) {
	ev, err := stl.NewEvaluator(stl.Params{
		LambdaA: 400, LambdaW: 4, LambdaR: 6, Qr: 0.6, K: 4,
	}, 32)
	if err != nil {
		b.Fatal(err)
	}
	prof := stl.TxnProfile{
		ReadItemsLambdaW:  []float64{2, 2},
		WriteItemsLambdaW: []float64{2, 2},
		WriteItemsLambdaR: []float64{3, 3},
	}
	pp := stl.ProtocolParams{
		U2PL: 0.01, U2PLAborted: 0.02, PAbort: 0.05,
		UTO: 0.01, UTOAborted: 0.005, Pr: 0.03, Pw: 0.05,
		UPA: 0.011, UPABackoff: 0.004, PBr: 0.05, PBw: 0.08,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals := stl.ForTxn(ev, prof, pp)
		_ = stl.Best(vals)
	}
}

// BenchmarkConflictGraphCheck measures the serializability oracle on a
// 1000-transaction history.
func BenchmarkConflictGraphCheck(b *testing.B) {
	rec := history.NewRecorder()
	for t := 1; t <= 1000; t++ {
		id := model.TxnID{Site: 1, Seq: uint64(t)}
		for o := 0; o < 4; o++ {
			kind := model.OpRead
			if (t+o)%2 == 0 {
				kind = model.OpWrite
			}
			rec.Implemented(model.CopyID{Item: model.ItemID((t*7 + o) % 64)}, id, kind)
		}
		rec.Committed(id, model.TwoPL)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := rec.Check(); !res.Serializable {
			b.Fatal("serial history flagged")
		}
	}
}
