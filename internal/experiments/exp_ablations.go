package experiments

import (
	"fmt"

	"ucc/internal/metrics"
	"ucc/internal/model"
)

// Abl1 compares the semi-lock enforcement (§4.2) against the paper's
// simpler "use locking for all requests" unification on a T/O-heavy mix.
// Semi-locks let an executed T/O transaction hand its items to younger T/O
// transactions immediately (pre-scheduled grants), so T/O keeps its
// concurrency.
func Abl1(cfg RunConfig) Result {
	table := &metrics.Table{Header: []string{
		"workload", "enforcement", "commits", "S T/O (ms)", "S all (ms)", "pre-grants", "conversions",
	}}
	workloads := []struct {
		name  string
		share [3]float64
	}{
		// Pure T/O is where the §4.2 concession bites: under
		// lock-everything a T/O writer must wait for earlier readers'
		// release round-trips that basic T/O never waits for.
		{"pure T/O", [3]float64{0, 1, 0}},
		{"mixed 1:4:1", [3]float64{1, 4, 1}},
	}
	for _, w := range workloads {
		for _, semi := range []bool{true, false} {
			spec := defaultSpec(cfg.Seed)
			spec.share = w.share
			spec.items = 20
			spec.arrival = 40
			spec.readFrac = 0.6
			spec.semiLocks = semi
			if cfg.Quick {
				spec.horizonUs = 2_000_000
			}
			out := mustExecute(spec)
			name := "lock-everything"
			if semi {
				name = "semi-locks"
			}
			qmc := out.cl.QMTotals()
			var sAll float64
			var n uint64
			for _, ps := range out.res.Summary.Protocols {
				sAll += ps.SystemTime.Mean() * float64(ps.SystemTime.N())
				n += ps.SystemTime.N()
			}
			if n > 0 {
				sAll /= float64(n)
			}
			table.AddRow(w.name, name,
				fmt.Sprint(out.res.Summary.TotalCommitted()),
				metrics.F(meanS(out, model.TO)),
				metrics.F(sAll/1000),
				fmt.Sprint(qmc.PreGrants),
				fmt.Sprint(qmc.Conversion))
		}
	}
	return Result{
		ID: "ABL-1", Title: "Semi-locks vs lock-everything enforcement",
		Claim:  "semi-locks preserve T/O concurrency that full locking sacrifices",
		Tables: []*metrics.Table{table},
	}
}

// Abl2 sweeps PA's back-off interval INT (§3.4): too small an interval
// re-queues the request barely above the threshold (more re-negotiations
// under churn), too large an interval parks it far in the future behind
// unrelated later arrivals.
func Abl2(cfg RunConfig) Result {
	ints := []model.Timestamp{500, 1_000, 2_000, 5_000, 10_000, 20_000}
	if cfg.Quick {
		ints = []model.Timestamp{500, 5_000, 20_000}
	}
	table := &metrics.Table{Header: []string{"INT (µs)", "S PA (ms)", "backoffs/commit", "msgs/commit"}}
	var series metrics.Series
	series.Label = "S PA vs INT"
	for _, iv := range ints {
		spec := defaultSpec(cfg.Seed + int64(iv))
		spec.share = pureShare(model.PA)
		spec.items = 24
		spec.arrival = 35
		spec.paInt = iv
		if cfg.Quick {
			spec.horizonUs = 2_000_000
		}
		out := mustExecute(spec)
		ps := out.res.Summary.Protocols[model.PA]
		boc := 0.0
		if ps.Committed > 0 {
			boc = float64(ps.BackoffReads+ps.BackoffWrites) / float64(ps.Committed)
		}
		table.AddRow(fmt.Sprint(iv), metrics.F(meanS(out, model.PA)),
			metrics.F(boc), metrics.F(ps.Messages.Mean()))
		series.Add(float64(iv), meanS(out, model.PA))
	}
	return Result{
		ID: "ABL-2", Title: "PA back-off interval sensitivity",
		Claim:  "INT trades re-queue positioning against spurious waiting",
		Tables: []*metrics.Table{table},
		Series: []metrics.Series{series},
	}
}

// Abl3 sweeps the deadlock-detection period for a contended 2PL workload:
// the victim's wait (and everyone blocked behind it) is bounded below by
// PersistRounds detection periods, so S under contention tracks the period.
func Abl3(cfg RunConfig) Result {
	periods := []int64{10_000, 25_000, 50_000, 100_000, 200_000}
	if cfg.Quick {
		periods = []int64{10_000, 50_000, 200_000}
	}
	table := &metrics.Table{Header: []string{"period (ms)", "S 2PL (ms)", "S p95 (ms)", "victims", "commits"}}
	var series metrics.Series
	series.Label = "S 2PL vs detection period"
	for _, per := range periods {
		spec := defaultSpec(cfg.Seed + per)
		spec.share = pureShare(model.TwoPL)
		spec.items = 16
		spec.arrival = 30
		spec.readFrac = 0.3 // write-heavy → deadlock-prone
		spec.detPeriod = per
		if cfg.Quick {
			spec.horizonUs = 2_000_000
		}
		out := mustExecute(spec)
		ps := out.res.Summary.Protocols[model.TwoPL]
		table.AddRow(metrics.F(float64(per)/1000), metrics.F(meanS(out, model.TwoPL)),
			metrics.F(ps.SystemTimeH.Quantile(0.95)/1000),
			fmt.Sprint(ps.Victims), fmt.Sprint(ps.Committed))
		series.Add(float64(per)/1000, meanS(out, model.TwoPL))
	}
	return Result{
		ID: "ABL-3", Title: "Deadlock detection period sensitivity",
		Claim:  "2PL's contended system time is dominated by detection latency",
		Tables: []*metrics.Table{table},
		Series: []metrics.Series{series},
	}
}
