package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"ucc/internal/engine"
	"ucc/internal/model"
)

// MaxFrameBytes bounds one frame's payload. Protocol messages are tens of
// bytes; the biggest legitimate frames are control-plane maps (queue stats,
// estimates) over the item space, which stay far below this. The cap's job
// is to make a corrupt or hostile length prefix fail fast instead of driving
// a giant allocation.
const MaxFrameBytes = 8 << 20

// ErrFrameTooLarge reports a length prefix beyond MaxFrameBytes.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameBytes")

// ErrTrailingBytes reports a frame whose payload did not decode exactly.
var ErrTrailingBytes = errors.New("wire: trailing bytes after message")

// EncodeError wraps a per-envelope encoding failure (a message type outside
// the wire contract, or a frame over MaxFrameBytes). Nothing was written, so
// the stream is still intact: a writer may skip the envelope and continue,
// where an I/O error would require retiring the connection.
type EncodeError struct{ Err error }

func (e *EncodeError) Error() string { return "wire: encode: " + e.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *EncodeError) Unwrap() error { return e.Err }

// bufPool recycles scratch buffers across Writers and one-shot encodes. 1 KiB
// starting capacity covers every protocol message; control-plane maps grow a
// buffer once and the grown buffer is what returns to the pool.
var bufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 1024); return &b },
}

func getBuf() []byte {
	return (*(bufPool.Get().(*[]byte)))[:0]
}

func putBuf(b []byte) {
	if cap(b) > MaxFrameBytes {
		return // don't pin a pathological buffer in the pool
	}
	bufPool.Put(&b)
}

// AppendEnvelope encodes one envelope payload (addresses + tagged message)
// onto b.
func AppendEnvelope(b []byte, env engine.Envelope) ([]byte, error) {
	b = append(b, byte(env.From.Kind))
	b = model.AppendVarint(b, int64(env.From.ID))
	b = append(b, env.From.Shard)
	b = append(b, byte(env.To.Kind))
	b = model.AppendVarint(b, int64(env.To.ID))
	b = append(b, env.To.Shard)
	return model.AppendMessage(b, env.Msg)
}

// DecodeEnvelope decodes exactly one envelope from payload; anything short,
// long, or unknown errors.
func DecodeEnvelope(payload []byte) (engine.Envelope, error) {
	r := model.NewWireReader(payload)
	var env engine.Envelope
	env.From.Kind = engine.ActorKind(r.Byte())
	env.From.ID = model.SiteID(r.Varint32())
	env.From.Shard = r.Byte()
	env.To.Kind = engine.ActorKind(r.Byte())
	env.To.ID = model.SiteID(r.Varint32())
	env.To.Shard = r.Byte()
	tag := model.WireTag(r.Byte())
	if err := r.Err(); err != nil {
		return engine.Envelope{}, err
	}
	msg, err := model.DecodeMessage(tag, &r)
	if err != nil {
		return engine.Envelope{}, err
	}
	if r.Remaining() != 0 {
		return engine.Envelope{}, fmt.Errorf("%w: %d", ErrTrailingBytes, r.Remaining())
	}
	env.Msg = msg
	return env, nil
}

// DecodeEnvelopePooled is DecodeEnvelope with the decode-side struct pool:
// the hot fixed-size protocol messages come back as pooled pointers
// (*model.RequestMsg, *model.GrantMsg, ...) instead of boxed values,
// eliminating the per-message interface allocation. The caller owns the
// message only until model.RecycleMessage(env.Msg); callers that retain or
// forward messages must use DecodeEnvelope. Non-pooled message types decode
// exactly as in DecodeEnvelope and recycle as a no-op, so a mixed stream
// needs no per-type handling.
func DecodeEnvelopePooled(payload []byte) (engine.Envelope, error) {
	r := model.NewWireReader(payload)
	var env engine.Envelope
	env.From.Kind = engine.ActorKind(r.Byte())
	env.From.ID = model.SiteID(r.Varint32())
	env.From.Shard = r.Byte()
	env.To.Kind = engine.ActorKind(r.Byte())
	env.To.ID = model.SiteID(r.Varint32())
	env.To.Shard = r.Byte()
	tag := model.WireTag(r.Byte())
	if err := r.Err(); err != nil {
		return engine.Envelope{}, err
	}
	msg, err := model.DecodeMessagePooled(tag, &r)
	if err != nil {
		return engine.Envelope{}, err
	}
	if r.Remaining() != 0 {
		model.RecycleMessage(msg)
		return engine.Envelope{}, fmt.Errorf("%w: %d", ErrTrailingBytes, r.Remaining())
	}
	env.Msg = msg
	return env, nil
}

// EncodeEnvelope is the one-shot form: a fresh pooled buffer holding
// uvarint-length-prefixed frame bytes. The caller returns it with
// ReleaseFrame when done (tests, seed-corpus generation).
func EncodeEnvelope(env engine.Envelope) ([]byte, error) {
	payload, err := AppendEnvelope(getBuf(), env)
	if err != nil {
		putBuf(payload)
		return nil, err
	}
	b := getBuf()
	b = binary.AppendUvarint(b, uint64(len(payload)))
	b = append(b, payload...)
	putBuf(payload)
	return b, nil
}

// ReleaseFrame returns a buffer from EncodeEnvelope to the pool.
func ReleaseFrame(b []byte) { putBuf(b) }

// Writer frames envelopes onto a buffered writer. Not safe for concurrent
// use: in the transport each peer's single writer goroutine owns one Writer.
type Writer struct {
	bw      *bufio.Writer
	scratch []byte
}

// NewWriter wraps bw. Release returns the scratch buffer to the pool when
// the connection retires.
func NewWriter(bw *bufio.Writer) *Writer {
	return &Writer{bw: bw, scratch: getBuf()}
}

// WriteEnvelope encodes env as one frame and writes it to the buffered
// writer (no flush). It returns the frame size in bytes.
//
// The frame is assembled entirely inside the writer's persistent scratch —
// payload encoded after a reserved header area, the uvarint length then
// written backwards against the payload — so the write is one contiguous
// slice of already-heap-resident memory and the steady-state path allocates
// nothing (a stack-local header array would escape through the io.Writer
// interface on every call).
func (w *Writer) WriteEnvelope(env engine.Envelope) (int, error) {
	const hdrMax = binary.MaxVarintLen64
	var hdrZero [hdrMax]byte
	buf, err := AppendEnvelope(append(w.scratch[:0], hdrZero[:]...), env)
	if err != nil {
		return 0, &EncodeError{Err: err}
	}
	w.scratch = buf[:0] // keep the grown buffer
	payloadLen := len(buf) - hdrMax
	if payloadLen > MaxFrameBytes {
		// Don't pin the pathological buffer for the connection's lifetime
		// (the pool would refuse it at Release for the same reason).
		w.scratch = getBuf()
		return 0, &EncodeError{Err: ErrFrameTooLarge}
	}
	start := hdrMax - uvarintLen(uint64(payloadLen))
	binary.PutUvarint(buf[start:], uint64(payloadLen))
	if _, err := w.bw.Write(buf[start:]); err != nil {
		return 0, err
	}
	return len(buf) - start, nil
}

// Release returns the writer's scratch buffer to the pool. The Writer must
// not be used afterwards.
func (w *Writer) Release() {
	if w.scratch != nil {
		putBuf(w.scratch)
		w.scratch = nil
	}
}

// Reader decodes frames from a buffered reader. The payload buffer grows to
// the largest frame seen and is reused for every subsequent frame; decoded
// messages never alias it (slice-carrying messages copy out during decode).
type Reader struct {
	br  *bufio.Reader
	buf []byte
}

// NewReader wraps br.
func NewReader(br *bufio.Reader) *Reader {
	return &Reader{br: br, buf: getBuf()}
}

// ReadEnvelope reads and decodes one frame, returning the envelope and the
// frame's size in bytes. io.EOF is returned ONLY at a frame boundary (a
// clean stream end); a stream that dies inside the length prefix or the
// payload returns io.ErrUnexpectedEOF, and a malformed payload a decode
// error. I/O errors lose framing and the stream must be abandoned, but a
// DECODE error does not: the payload was fully consumed before decoding, so
// the reader is still at a frame boundary and the caller may skip the frame
// and continue — the transport does exactly that for model.ErrWireUnknownTag,
// so a newer peer's appended message types don't sever mixed-version v3
// streams.
func (r *Reader) ReadEnvelope() (engine.Envelope, int, error) {
	n, err := readFrameLen(r.br)
	if err != nil {
		return engine.Envelope{}, 0, err
	}
	if n > MaxFrameBytes {
		return engine.Envelope{}, 0, ErrFrameTooLarge
	}
	if uint64(cap(r.buf)) < n {
		putBuf(r.buf) // growth, not a leak: the old buffer goes back
		r.buf = make([]byte, n)
	}
	payload := r.buf[:n]
	if _, err := io.ReadFull(r.br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // a frame died mid-payload
		}
		return engine.Envelope{}, 0, err
	}
	env, err := DecodeEnvelope(payload)
	if err != nil {
		// Frame fully consumed; the error is per-frame, not per-stream.
		return engine.Envelope{}, uvarintLen(n) + int(n), err
	}
	return env, uvarintLen(n) + int(n), nil
}

// ReadEnvelopePooled is ReadEnvelope through the decode-side struct pool:
// identical framing and error contract, but hot fixed-size messages return
// as pooled pointers. See DecodeEnvelopePooled for the lifetime rules.
func (r *Reader) ReadEnvelopePooled() (engine.Envelope, int, error) {
	n, err := readFrameLen(r.br)
	if err != nil {
		return engine.Envelope{}, 0, err
	}
	if n > MaxFrameBytes {
		return engine.Envelope{}, 0, ErrFrameTooLarge
	}
	if uint64(cap(r.buf)) < n {
		putBuf(r.buf)
		r.buf = make([]byte, n)
	}
	payload := r.buf[:n]
	if _, err := io.ReadFull(r.br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return engine.Envelope{}, 0, err
	}
	env, err := DecodeEnvelopePooled(payload)
	if err != nil {
		return engine.Envelope{}, uvarintLen(n) + int(n), err
	}
	return env, uvarintLen(n) + int(n), nil
}

// Release returns the reader's payload buffer to the pool.
func (r *Reader) Release() {
	if r.buf != nil {
		putBuf(r.buf)
		r.buf = nil
	}
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// readFrameLen reads a frame's uvarint length prefix. Unlike
// binary.ReadUvarint — which surfaces a bare io.EOF even after consuming
// prefix bytes — a stream that ends mid-prefix reports io.ErrUnexpectedEOF,
// so "clean end of stream" is unambiguous for callers.
func readFrameLen(br *bufio.Reader) (uint64, error) {
	var v uint64
	var s uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			if i > 0 && err == io.EOF {
				err = io.ErrUnexpectedEOF // the prefix itself was torn
			}
			return 0, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, ErrFrameTooLarge // 64-bit overflow: beyond any cap
			}
			return v | uint64(b)<<s, nil
		}
		if i == binary.MaxVarintLen64-1 {
			return 0, ErrFrameTooLarge
		}
		v |= uint64(b&0x7f) << s
		s += 7
	}
}
