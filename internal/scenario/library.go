package scenario

import (
	"sort"

	"ucc/internal/cluster"
	"ucc/internal/engine"
	"ucc/internal/model"
	"ucc/internal/ri"
	"ucc/internal/workload"
)

// flat lifts one spec into a per-site workload function (homogeneous sites).
func flat(spec workload.Spec) func(int) workload.Spec {
	return func(int) workload.Spec { return spec }
}

// baseLatency is the library's explicit network model (the cluster default,
// written out so latency faults can restore it).
var baseLatency = engine.UniformLatency{MinMicros: 1_000, MaxMicros: 3_000, LocalMicros: 50}

// Library returns every named scenario, sorted by name. Each entry is pure
// data: run one with Run, list them with `uccscenario -list`.
func Library() []Scenario {
	out := []Scenario{
		ycsbA(),
		ycsbB(),
		ycsbC(),
		tpccMix(),
		diurnal(),
		flashCrowd(),
		crashMidSpike(),
		slowDiskWAL(),
		degradedLink(),
		quorumFailover(),
		replicaCatchup(),
		liveRebalance(),
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName finds one scenario.
func ByName(name string) (Scenario, bool) {
	for _, s := range Library() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Smoke returns the fast set CI runs on every PR: one fault-free overload
// scenario, one write-all crash-and-recover scenario, one quorum failover
// scenario, and one online-rebalance scenario.
func Smoke() []Scenario {
	a, _ := ByName("flash-crowd")
	b, _ := ByName("crash-mid-spike")
	c, _ := ByName("quorum-failover")
	d, _ := ByName("live-rebalance")
	return []Scenario{a, b, c, d}
}

// ycsbA is the YCSB-A shape: update-heavy (50/50 read/write), Zipf-skewed
// access, all three queued protocols sharing the mix.
func ycsbA() Scenario {
	spec := workload.Spec{
		ArrivalPerSec: 30,
		Items:         256,
		Size:          4,
		ReadFrac:      0.5,
		Access:        workload.AccessZipf,
		Share2PL:      1, ShareTO: 1, SharePA: 1,
		ComputeMicros: 1_000,
	}
	return Scenario{
		Name:        "ycsb-a",
		Description: "YCSB-A: 50/50 read/write, Zipf-skewed, 2PL/TO/PA mix",
		Cluster:     cluster.Config{Sites: 4, Items: 256, Seed: 1, Latency: baseLatency},
		Phases: []Phase{
			{Name: "warm", DurationMicros: 2_000_000, Workload: flat(spec)},
			{Name: "measure", DurationMicros: 6_000_000, Workload: flat(spec), Checks: []Check{
				MinCommitted(400),
				P99Below(500_000),
			}},
		},
		Final: []Check{Serializable(), NoUnfinished(), OfferedAccounted()},
	}
}

// ycsbB is the YCSB-B shape: read-mostly — 95% reads inside locked
// transactions plus a read-only snapshot share on the no-lock fast path.
func ycsbB() Scenario {
	spec := workload.Spec{
		ArrivalPerSec: 40,
		Items:         256,
		Size:          4,
		ReadFrac:      0.95,
		Access:        workload.AccessZipf,
		Share2PL:      0.7, ShareRO: 0.3,
		ROSize:        8,
		ComputeMicros: 1_000,
	}
	return Scenario{
		Name:        "ycsb-b",
		Description: "YCSB-B: read-mostly, 30% read-only snapshot scans on the fast path",
		Cluster:     cluster.Config{Sites: 4, Items: 256, Seed: 1, Latency: baseLatency},
		Phases: []Phase{
			{Name: "warm", DurationMicros: 2_000_000, Workload: flat(spec)},
			{Name: "measure", DurationMicros: 6_000_000, Workload: flat(spec), Checks: []Check{
				MinCommitted(500),
				ROFastPathUsed(100),
				P99Below(400_000),
			}},
		},
		Final: []Check{Serializable(), NoUnfinished(), OfferedAccounted()},
	}
}

// ycsbC is the YCSB-C shape: 100% reads, all on the snapshot fast path —
// the lock-free ceiling.
func ycsbC() Scenario {
	spec := workload.Spec{
		ArrivalPerSec: 60,
		Items:         256,
		ShareRO:       1,
		ROSize:        8,
		ComputeMicros: 500,
	}
	return Scenario{
		Name:        "ycsb-c",
		Description: "YCSB-C: pure read-only snapshot traffic (no-lock fast path ceiling)",
		Cluster:     cluster.Config{Sites: 4, Items: 256, Seed: 1, Latency: baseLatency},
		Phases: []Phase{
			{Name: "warm", DurationMicros: 1_000_000, Workload: flat(spec)},
			{Name: "measure", DurationMicros: 5_000_000, Workload: flat(spec), Checks: []Check{
				MinCommitted(800),
				ROFastPathUsed(800),
				P99Below(100_000),
			}},
		},
		Final: []Check{Serializable(), NoUnfinished(), OfferedAccounted()},
	}
}

// tpccMix is a TPC-C-shaped heterogeneous graph: each site runs a different
// transaction class against the shared database — big read-write new-orders,
// small hot payments, and two read-only classes of very different size.
func tpccMix() Scenario {
	perSite := func(site int) workload.Spec {
		switch site % 4 {
		case 0: // new-order: large read-write
			return workload.Spec{
				ArrivalPerSec: 20, Items: 512,
				SizeDist: workload.SizeUniform, SizeMin: 5, SizeMax: 15,
				ReadFrac: 0.4, Share2PL: 1, ComputeMicros: 2_000, Class: "new-order",
			}
		case 1: // payment: small, hot, PA
			return workload.Spec{
				ArrivalPerSec: 40, Items: 512, Size: 2,
				ReadFrac: 0.25, SharePA: 1,
				Access: workload.AccessHotspot, HotItems: 32, HotFrac: 0.8,
				ComputeMicros: 500, Class: "payment",
			}
		case 2: // order-status: small read-only lookups
			return workload.Spec{
				ArrivalPerSec: 30, Items: 512, ShareRO: 1, ROSize: 6,
				ComputeMicros: 500, Class: "order-status",
			}
		default: // stock-level: big read-only scans
			return workload.Spec{
				ArrivalPerSec: 10, Items: 512, ShareRO: 1, ROSize: 24,
				ROComputeMicros: 3_000, ComputeMicros: 1_000, Class: "stock-level",
			}
		}
	}
	return Scenario{
		Name:        "tpcc-mix",
		Description: "TPC-C-shaped heterogeneous mix: new-order/payment/order-status/stock-level, one class per site",
		Cluster:     cluster.Config{Sites: 4, Items: 512, Seed: 1, Latency: baseLatency},
		Phases: []Phase{
			{Name: "warm", DurationMicros: 2_000_000, Workload: perSite},
			{Name: "steady", DurationMicros: 6_000_000, Workload: perSite, Checks: []Check{
				MinCommitted(400),
				ROFastPathUsed(150),
			}},
		},
		Final: []Check{Serializable(), NoUnfinished(), OfferedAccounted()},
	}
}

// diurnal is a day-shaped arrival curve that crosses the admission-control
// token rate twice: both peaks must shed, the opening trough must not.
func diurnal() Scenario {
	at := func(rate float64) workload.Spec {
		return workload.Spec{
			ArrivalPerSec: rate,
			Items:         256,
			Size:          4,
			ReadFrac:      0.6,
			Share2PL:      1, ShareTO: 1,
			ComputeMicros: 1_000,
		}
	}
	cfg := cluster.Config{Sites: 4, Items: 256, Seed: 1, Latency: baseLatency}
	cfg.RI.Admission = ri.AdmissionOptions{Enabled: true, TokensPerSec: 60}
	return Scenario{
		Name:        "diurnal",
		Description: "day-shaped load crossing the 60/s admission token rate twice: peaks shed, troughs don't",
		Cluster:     cfg,
		Phases: []Phase{
			{Name: "night", DurationMicros: 1_500_000, Workload: flat(at(20)), Checks: []Check{
				ShedsNone(),
			}},
			{Name: "morning-peak", DurationMicros: 2_000_000, Workload: flat(at(110)), Checks: []Check{
				ShedsSome(20),
			}},
			{Name: "midday", DurationMicros: 1_500_000, Workload: flat(at(35)), Checks: []Check{
				MinCommitted(100),
			}},
			{Name: "evening-peak", DurationMicros: 2_000_000, Workload: flat(at(120)), Checks: []Check{
				ShedsSome(20),
			}},
			{Name: "late-night", DurationMicros: 1_000_000, Workload: flat(at(15)), Checks: []Check{
				MinCommitted(30),
			}},
		},
		Final: []Check{Serializable(), NoUnfinished(), OfferedAccounted()},
	}
}

// flashCrowd is a sudden 8× hotspot spike against a capped, admission-
// controlled cluster: the spike must shed (not queue without bound), queue
// depths must stay under the cap, and service must recover afterwards.
func flashCrowd() Scenario {
	calm := workload.Spec{
		ArrivalPerSec: 20, Items: 256, Size: 4, ReadFrac: 0.6,
		Share2PL: 1, ShareTO: 1, ComputeMicros: 1_000,
	}
	spike := workload.Spec{
		ArrivalPerSec: 160, Items: 256, Size: 4, ReadFrac: 0.6,
		Share2PL: 1, ShareTO: 1, ComputeMicros: 1_000,
		Access: workload.AccessHotspot, HotItems: 16, HotFrac: 0.9,
	}
	cfg := cluster.Config{Sites: 4, Items: 256, Seed: 1, Latency: baseLatency}
	cfg.QM.MaxQueueDepth = 64
	cfg.RI.Admission = ri.AdmissionOptions{Enabled: true, TokensPerSec: 80}
	return Scenario{
		Name:        "flash-crowd",
		Description: "8x hotspot spike against admission control + bounded queues; sheds, stays capped, recovers",
		Cluster:     cfg,
		Phases: []Phase{
			{Name: "calm", DurationMicros: 2_000_000, Workload: flat(calm), Checks: []Check{
				ShedsNone(),
				MinCommitted(80),
			}},
			{Name: "spike", DurationMicros: 2_000_000, Workload: flat(spike), Checks: []Check{
				ShedsSome(20),
				DepthWithinCap(),
			}},
			{Name: "aftermath", DurationMicros: 3_000_000, Workload: flat(calm), Checks: []Check{
				MinCommitted(100),
				DepthWithinCap(),
			}},
		},
		Final: []Check{Serializable(), NoUnfinished(), OfferedAccounted()},
	}
}

// crashMidSpike crashes a replicated durable site in the middle of a load
// spike and recovers it two virtual seconds later: the run must stay
// serializable, drain clean, and end with every replica pair agreeing.
func crashMidSpike() Scenario {
	normal := workload.Spec{
		ArrivalPerSec: 25, Items: 24, Size: 3, ReadFrac: 0.5,
		Share2PL: 1, ShareTO: 1, SharePA: 1, ComputeMicros: 1_000,
	}
	spike := normal
	spike.ArrivalPerSec = 50
	cooldown := normal
	cooldown.ArrivalPerSec = 15
	cfg := cluster.Config{
		Sites: 4, Items: 24, Replicas: 2, Seed: 1, Latency: baseLatency,
		// In-memory media, sync-per-commit-batch: the checked crash envelope
		// (see cluster.Durability.GroupCommitMicros).
		Durability: &cluster.Durability{},
	}
	return Scenario{
		Name:         "crash-mid-spike",
		Description:  "site crash in the middle of a 2x spike, recovery 2s later; replicas must re-converge",
		Cluster:      cfg,
		SettleMicros: 10_000_000,
		Phases: []Phase{
			{Name: "normal", DurationMicros: 2_000_000, Workload: flat(normal), Checks: []Check{
				MinCommitted(100),
			}},
			{Name: "spike", DurationMicros: 3_000_000, Workload: flat(spike), Faults: []Fault{
				CrashSite(3, 500_000),
				RecoverSite(3, 2_500_000),
			}},
			{Name: "cooldown", DurationMicros: 2_000_000, Workload: flat(cooldown), Checks: []Check{
				MinCommitted(50),
			}},
		},
		Final: []Check{
			Serializable(),
			NoUnfinished(),
			ReplicasAgree(),
			OfferedAccounted(),
			TotalCommittedAtLeast(300),
		},
	}
}

// quorumFailover is the tentpole failover story as a declarative scenario: a
// 3-site, 3-way-replicated quorum cluster (N=3, W=2, R=2) loses a site for a
// full virtual second in the middle of steady load. The dead-site phase has
// its own commit floor — the surviving pair forms every quorum, so the dip
// must stay bounded, not stall — and the finals require serializability,
// full replica convergence (the dead site catches up via WAL log shipping),
// and the offered-load accounting identity.
func quorumFailover() Scenario {
	spec := workload.Spec{
		ArrivalPerSec: 25, Items: 24, Size: 3, ReadFrac: 0.5,
		Share2PL: 1, ShareTO: 1, SharePA: 1, ComputeMicros: 1_000,
	}
	cfg := cluster.Config{
		Sites: 3, Items: 24, Replicas: 3, Seed: 1, Latency: baseLatency,
		Durability: &cluster.Durability{},
		Quorum:     &model.Quorum{N: 3, W: 2, R: 2},
	}
	return Scenario{
		Name:        "quorum-failover",
		Description: "N=3/W=2/R=2 quorum loses a site for 1s mid-run; commits continue on the surviving pair, dead site converges via log shipping",
		Cluster:     cfg,
		// The settle window must cover several 150ms pull periods so the
		// recovered site's final catch-up batches land before the checks.
		SettleMicros: 10_000_000,
		Phases: []Phase{
			{Name: "steady", DurationMicros: 2_000_000, Workload: flat(spec), Checks: []Check{
				MinCommitted(100),
			}},
			{Name: "dead-site", DurationMicros: 2_000_000, Workload: flat(spec), Faults: []Fault{
				CrashSite(1, 100_000),
			}, Checks: []Check{
				MinCommitted(60),
			}},
			{Name: "recovered", DurationMicros: 2_000_000, Workload: flat(spec), Faults: []Fault{
				RecoverSite(1, 100_000),
			}, Checks: []Check{
				MinCommitted(80),
			}},
		},
		Final: []Check{
			Serializable(),
			NoUnfinished(),
			ReplicasAgree(),
			OfferedAccounted(),
			TotalCommittedAtLeast(300),
		},
	}
}

// liveRebalance is the versioned-placement tentpole as a declarative
// scenario: a replicated cluster under a hotspot workload moves a quarter of
// its items — the entire hot set included — to one site in the middle of
// steady load. Commits must keep flowing in the move phase (the refusal
// window while the transferred state is in flight is the only allowed dip),
// the post-move phase must recover, and the finals require serializability
// (no transaction committed twice or half-applied across the flip) plus
// replica agreement resolved against the FINAL map.
func liveRebalance() Scenario {
	spec := workload.Spec{
		ArrivalPerSec: 25, Items: 24, Size: 3, ReadFrac: 0.5,
		Share2PL: 1, ShareTO: 1, SharePA: 1, ComputeMicros: 1_000,
		Access: workload.AccessHotspot, HotItems: 6, HotFrac: 0.7,
	}
	cfg := cluster.Config{
		Sites: 3, Items: 24, Replicas: 2, Seed: 1, Latency: baseLatency,
		Durability: &cluster.Durability{},
	}
	// A quarter of the items, covering the whole hot set (items 0..5).
	moved := []model.ItemID{0, 1, 2, 3, 4, 5}
	return Scenario{
		Name:        "live-rebalance",
		Description: "25% of items (incl. the hot set) move to one site mid-run; commits continue, serializability and replica agreement survive the flip",
		Cluster:     cfg,
		// The settle window covers the transfer retry period several times
		// over, so late sessions finish before the finals.
		SettleMicros: 10_000_000,
		Phases: []Phase{
			{Name: "steady", DurationMicros: 2_000_000, Workload: flat(spec), Checks: []Check{
				MinCommitted(100),
			}},
			{Name: "move", DurationMicros: 2_000_000, Workload: flat(spec), Faults: []Fault{
				MoveItems(500_000, moved, 2),
			}, Checks: []Check{
				MinCommitted(60),
			}},
			{Name: "after", DurationMicros: 2_000_000, Workload: flat(spec), Checks: []Check{
				MinCommitted(80),
			}},
		},
		Final: []Check{
			Serializable(),
			NoUnfinished(),
			ReplicasAgree(),
			OfferedAccounted(),
			TotalCommittedAtLeast(300),
		},
	}
}

// replicaCatchup stresses the catch-up plane rather than the failover dip: a
// long outage under write-heavy load builds a deep replication lag, then the
// scenario gives the recovered site a quiet cooldown phase in which log
// shipping must close the whole gap before the final convergence check.
func replicaCatchup() Scenario {
	heavy := workload.Spec{
		ArrivalPerSec: 35, Items: 16, Size: 3, ReadFrac: 0.2,
		Share2PL: 1, ShareTO: 1, SharePA: 1, ComputeMicros: 500,
	}
	light := heavy
	light.ArrivalPerSec = 10
	cfg := cluster.Config{
		Sites: 3, Items: 16, Replicas: 3, Seed: 1, Latency: baseLatency,
		Durability: &cluster.Durability{},
		Quorum:     &model.Quorum{N: 3, W: 2, R: 2},
	}
	return Scenario{
		Name:         "replica-catchup",
		Description:  "write-heavy load through a 2.5s outage builds deep lag; the recovered site must close the gap by log shipping alone",
		Cluster:      cfg,
		SettleMicros: 10_000_000,
		Phases: []Phase{
			{Name: "warm", DurationMicros: 1_000_000, Workload: flat(heavy), Checks: []Check{
				MinCommitted(50),
			}},
			{Name: "lag-building", DurationMicros: 3_000_000, Workload: flat(heavy), Faults: []Fault{
				CrashSite(2, 500_000),
			}, Checks: []Check{
				MinCommitted(100),
			}},
			{Name: "cooldown", DurationMicros: 2_000_000, Workload: flat(light), Faults: []Fault{
				RecoverSite(2, 100_000),
			}, Checks: []Check{
				MinCommitted(30),
			}},
		},
		Final: []Check{
			Serializable(),
			NoUnfinished(),
			ReplicasAgree(),
			OfferedAccounted(),
		},
	}
}

// slowDiskWAL widens every site's group-commit window mid-run — the slow
// disk that batches harder — then restores it: syncs-per-commit must drop
// during the wide window and recover after.
func slowDiskWAL() Scenario {
	spec := workload.Spec{
		ArrivalPerSec: 30, Items: 128, Size: 3, ReadFrac: 0.4,
		Share2PL: 1, ComputeMicros: 1_000,
	}
	cfg := cluster.Config{
		Sites: 4, Items: 128, Seed: 1, Latency: baseLatency,
		Durability: &cluster.Durability{},
	}
	return Scenario{
		Name:        "slow-disk-wal",
		Description: "group-commit window widened to 20ms mid-run (slow disk), then restored; sync rate must track",
		Cluster:     cfg,
		Phases: []Phase{
			{Name: "baseline", DurationMicros: 2_000_000, Workload: flat(spec), Checks: []Check{
				MinCommitted(100),
				WALBatchingAtMost(1.2),
			}},
			{Name: "degraded", DurationMicros: 3_000_000, Workload: flat(spec), Faults: []Fault{
				SlowWALAll(0, 20_000),
			}, Checks: []Check{
				MinCommitted(100),
				WALBatchingAtLeast(1.5),
			}},
			{Name: "restored", DurationMicros: 2_000_000, Workload: flat(spec), Faults: []Fault{
				SlowWALAll(0, 0),
			}, Checks: []Check{
				MinCommitted(100),
			}},
		},
		Final: []Check{Serializable(), NoUnfinished(), OfferedAccounted()},
	}
}

// degradedLink makes one site's network asymmetric and slow mid-run: tail
// latency must visibly degrade, then heal when the link does.
func degradedLink() Scenario {
	spec := workload.Spec{
		ArrivalPerSec: 30, Items: 256, Size: 4, ReadFrac: 0.6,
		Share2PL: 1, ShareTO: 1, ComputeMicros: 1_000,
	}
	cfg := cluster.Config{Sites: 4, Items: 256, Seed: 1, Latency: baseLatency}
	return Scenario{
		Name:        "degraded-link",
		Description: "one site's link gains +15ms each way mid-run, then heals; p99 must degrade and recover",
		Cluster:     cfg,
		Phases: []Phase{
			{Name: "healthy", DurationMicros: 2_000_000, Workload: flat(spec), Checks: []Check{
				MinCommitted(100),
				P99Below(200_000),
			}},
			{Name: "degraded", DurationMicros: 3_000_000, Workload: flat(spec), Faults: []Fault{
				DegradeLink(2, 0, baseLatency, 15_000, 15_000),
			}, Checks: []Check{
				MinCommitted(100),
				P99Above(30_000),
			}},
			{Name: "healed", DurationMicros: 2_000_000, Workload: flat(spec), Faults: []Fault{
				RestoreLatency(0, baseLatency),
			}, Checks: []Check{
				MinCommitted(100),
			}},
		},
		Final: []Check{Serializable(), NoUnfinished(), OfferedAccounted()},
	}
}
