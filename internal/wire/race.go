//go:build race

package wire

// raceEnabled reports whether the race detector is compiled in (timing- and
// allocation-ratio gates skip themselves under -race).
const raceEnabled = true
