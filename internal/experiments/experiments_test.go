package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// TestAllExperimentsQuick smoke-runs every registered experiment in Quick
// mode: each must complete, produce at least one non-empty table, and
// render.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run(RunConfig{Quick: true, Seed: 1})
			if res.ID != e.ID {
				t.Fatalf("result id %q", res.ID)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables")
			}
			for i, tb := range res.Tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("table %d empty", i)
				}
			}
			s := res.String()
			if !strings.Contains(s, e.ID) || !strings.Contains(s, "paper claim") {
				t.Fatalf("rendering broken:\n%s", s)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("EXP-1"); !ok {
		t.Fatal("EXP-1 missing")
	}
	if _, ok := ByID("exp-1"); !ok {
		t.Fatal("lookup must be case-insensitive")
	}
	if _, ok := ByID("EXP-99"); ok {
		t.Fatal("phantom experiment")
	}
}

// TestExp10ReadPathSpeedup is the acceptance gate for the read-only
// snapshot fast path: on the ≥90%-read closed-loop mix, every sweep point
// must show at least 2x committed throughput with the path on vs off, stay
// conflict serializable both ways, and never serve a stale (GC'd-past)
// snapshot read. The sim is virtual-time deterministic, so asserting on a
// throughput ratio is seed-stable, not flaky.
func TestExp10ReadPathSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	res := Exp10(RunConfig{Quick: true, Seed: 1988})
	for _, n := range res.Notes {
		if strings.Contains(n, "VIOLATION") || strings.Contains(n, "STALE") {
			t.Fatalf("invariant violated: %v", res.Notes)
		}
	}
	for _, row := range res.Tables[0].Rows {
		var speedup float64
		if _, err := fmt.Sscanf(row[3], "%f", &speedup); err != nil {
			t.Fatalf("unparseable speedup %q: %v", row[3], err)
		}
		if speedup < 2 {
			t.Fatalf("speedup %.2f < 2 at inflight=%s (row %v)", speedup, row[0], row)
		}
	}
}

func TestExp5SerializabilityGate(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	res := Exp5(RunConfig{Quick: true, Seed: 3})
	for _, n := range res.Notes {
		if strings.Contains(n, "VIOLATION") {
			t.Fatalf("serializability violation: %v", res.Notes)
		}
	}
	// Every row must say "yes" in the serializable column.
	for _, row := range res.Tables[0].Rows {
		if row[2] != "yes" {
			t.Fatalf("row not serializable: %v", row)
		}
	}
}
