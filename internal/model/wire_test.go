package model

import (
	"bytes"
	"errors"
	"testing"
)

// TestWireReaderPrimitives: the error-latching reader must reject exactly
// the malformed shapes (truncation, overlong varints, non-canonical bools,
// bomb-sized counts) and latch the first failure.
func TestWireReaderPrimitives(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 300)
	b = AppendVarint(b, -7)
	b = AppendWireBool(b, true)
	b = AppendWireF64(b, 3.5)
	b = AppendWireString(b, "class-A")
	r := NewWireReader(b)
	if v := r.Uvarint(); v != 300 {
		t.Fatalf("uvarint: %d", v)
	}
	if v := r.Varint(); v != -7 {
		t.Fatalf("varint: %d", v)
	}
	if !r.Bool() {
		t.Fatal("bool lost")
	}
	if v := r.F64(); v != 3.5 {
		t.Fatalf("f64: %v", v)
	}
	if s := r.String(); s != "class-A" {
		t.Fatalf("string: %q", s)
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("clean decode errored: %v, %d left", r.Err(), r.Remaining())
	}

	// Truncation latches and sticks.
	r2 := NewWireReader(nil)
	if r2.Uvarint() != 0 || !errors.Is(r2.Err(), ErrWireTruncated) {
		t.Fatalf("empty read: %v", r2.Err())
	}
	r2.Byte() // further reads must not clear the latched error
	if !errors.Is(r2.Err(), ErrWireTruncated) {
		t.Fatalf("latched error lost: %v", r2.Err())
	}

	// A bool byte other than 0/1 is corrupt (canonical encoding).
	r3 := NewWireReader([]byte{2})
	r3.Bool()
	if !errors.Is(r3.Err(), ErrWireCorrupt) {
		t.Fatalf("bool 2 accepted: %v", r3.Err())
	}

	// A 64-bit-overflowing varint is corrupt, not a hang or a panic.
	r4 := NewWireReader(bytes.Repeat([]byte{0xff}, 11))
	r4.Uvarint()
	if !errors.Is(r4.Err(), ErrWireCorrupt) {
		t.Fatalf("overflowing varint accepted: %v", r4.Err())
	}

	// An overlong (non-canonical) varint is corrupt too: 0x80 0x00 encodes
	// zero in two bytes where one is canonical. Accepting it would make
	// decode non-injective (two byte strings, one message).
	r4b := NewWireReader([]byte{0x80, 0x00})
	if v := r4b.Uvarint(); v != 0 || !errors.Is(r4b.Err(), ErrWireCorrupt) {
		t.Fatalf("overlong uvarint accepted: v=%d err=%v", v, r4b.Err())
	}
	r4c := NewWireReader([]byte{0x81, 0x80, 0x00})
	if r4c.Varint(); !errors.Is(r4c.Err(), ErrWireCorrupt) {
		t.Fatalf("overlong varint accepted: %v", r4c.Err())
	}

	// A count larger than the remaining bytes could back errors immediately
	// (the decompression-bomb guard).
	r5 := NewWireReader(AppendUvarint(nil, 1<<40))
	r5.Count(1)
	if !errors.Is(r5.Err(), ErrWireCorrupt) {
		t.Fatalf("bomb count accepted: %v", r5.Err())
	}
}

// TestMessageTagsStable pins every tag value: renumbering a tag is a wire-
// contract break that must fail a test, not slip through review.
func TestMessageTagsStable(t *testing.T) {
	want := map[WireTag]Message{
		1:  RequestMsg{},
		2:  FinalTSMsg{},
		3:  ReleaseMsg{},
		4:  AbortMsg{},
		5:  GrantMsg{},
		6:  NormalGrantMsg{},
		7:  RejectMsg{},
		8:  BackoffMsg{},
		9:  BusyMsg{},
		10: VictimMsg{},
		11: SnapReadMsg{},
		12: SnapReadReplyMsg{},
		13: WFGReportMsg{},
		14: ProbeWFGMsg{},
		15: SubmitTxnMsg{},
		16: TxnDoneMsg{},
		17: QueueStatsMsg{},
		18: EstimateMsg{},
		19: TickMsg{},
		20: ComputeDoneMsg{},
		21: RestartMsg{},
		22: TxnFinishedMsg{},
		23: StopMsg{},
		24: CrashMsg{},
		25: RecoverMsg{},
		26: FlushMsg{},
		27: ReplPullMsg{},
		28: ReplRecordsMsg{},
		29: WrongEpochMsg{},
		30: MapInstallMsg{},
		31: MapUpdateMsg{},
		32: TransferPullMsg{},
		33: TransferRecordsMsg{},
	}
	for tag, msg := range want {
		got, ok := MessageTag(msg)
		if !ok || got != tag {
			t.Errorf("%T: tag %d (ok=%v), want %d", msg, got, ok, tag)
		}
	}
	if _, ok := MessageTag(nil); ok {
		t.Error("nil message must have no tag")
	}
}
