// Package lk exercises the lockorder analyzer: pairwise and deferred
// single-lock use is clean, a second shard lock while holding one is
// flagged, the lockAll accumulation shape is flagged (and suppressible),
// and function literals are independent lock scopes.
package lk

type mutex struct{}

func (*mutex) Lock()   {}
func (*mutex) Unlock() {}

type shard struct {
	mu mutex
}

type manager struct {
	shards []*shard
}

// other is not a shard type; its mutex is out of scope for the analyzer.
type other struct {
	mu mutex
}

func okPair(sh *shard) {
	sh.mu.Lock()
	sh.mu.Unlock()
}

func okDefer(sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
}

func okPerIteration(m *manager) {
	for _, sh := range m.shards {
		sh.mu.Lock()
		sh.mu.Unlock()
	}
}

func okBranches(a, b *shard, cold bool) {
	if cold {
		a.mu.Lock()
		a.mu.Unlock()
	} else {
		b.mu.Lock()
		b.mu.Unlock()
	}
	a.mu.Lock()
	a.mu.Unlock()
}

func okNonShard(a *shard, o *other) {
	a.mu.Lock()
	o.mu.Lock() // not a shard mutex: no finding
	o.mu.Unlock()
	a.mu.Unlock()
}

func second(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() // want `second shard lock`
	b.mu.Unlock()
	a.mu.Unlock()
}

func secondUnderDefer(a, b *shard) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `second shard lock b\.mu acquired while holding a\.mu`
	b.mu.Unlock()
}

func secondByIndex(m *manager) {
	m.shards[0].mu.Lock()
	m.shards[1].mu.Lock() // want `second shard lock`
	m.shards[1].mu.Unlock()
	m.shards[0].mu.Unlock()
}

func lockAll(m *manager) {
	for _, sh := range m.shards {
		sh.mu.Lock() // want `acquired inside a loop`
	}
}

func lockAllAllowed(m *manager) {
	for _, sh := range m.shards {
		//ucclint:allow lockorder -- index-order acquisition under the sequencer drain
		sh.mu.Lock()
	}
}

// callbackScope: the literal is a separate body — lock state does not
// flow in, and its own pairwise use is clean.
func callbackScope(m *manager) {
	m.shards[0].mu.Lock()
	fn := func(sh *shard) {
		sh.mu.Lock()
		sh.mu.Unlock()
	}
	m.shards[0].mu.Unlock()
	fn(m.shards[1])
}
