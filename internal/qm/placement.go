package qm

import (
	"fmt"
	"sort"

	"ucc/internal/engine"
	"ucc/internal/model"
	"ucc/internal/repl"
	"ucc/internal/storage"
	"ucc/internal/wal"
)

// TransferTickTag is the TickMsg.Tag of the snapshot-transfer retry timer:
// while this site has incomplete transfer sessions, the timer re-pulls each
// one (covering NotReady answers and lost pulls) and re-arms itself. Posted
// one-shot by the cluster's settle loop too, which — like ReplSettleTickTag
// — fans out one round without re-arming after StopMsg.
const TransferTickTag = 3

// transferRetryMicros is the pull retry period while a transfer session is
// incomplete. Shorter than the repl pull period: a transfer gates an item
// opening for traffic, so the refusal window is latency we want bounded.
const transferRetryMicros = 100_000

// transferSession tracks one in-progress snapshot transfer: the items this
// site gained at epoch whose state streams from peer (their old primary).
// Guarded by the manager's ctlMu.
type transferSession struct {
	peer     model.SiteID
	epoch    uint64
	afterSeq uint64
	items    []model.ItemID
	done     bool
}

// SetPartitionMap installs the initial partition map before the engine starts
// delivering messages (the store and queues were seeded to match it, so no
// transition runs). Later maps arrive as MapInstallMsg.
func (m *Manager) SetPartitionMap(pm *model.PartitionMap) {
	m.pmap.Store(pm)
}

// CurrentMap returns the installed partition map (nil when the manager runs
// in legacy mode and owns exactly the items its store was seeded with).
func (m *Manager) CurrentMap() *model.PartitionMap {
	return m.pmap.Load()
}

// TransfersPending reports whether any snapshot-transfer session is still
// incomplete (the cluster's settle loop keeps posting transfer rounds until
// this goes false).
func (m *Manager) TransfersPending() bool {
	m.ctlMu.Lock()
	defer m.ctlMu.Unlock()
	for _, s := range m.sessions {
		if !s.done {
			return true
		}
	}
	return false
}

// GrantCounts returns the cumulative per-item grant counts (reads + writes)
// at this site — the hotness signal the rebalancer ranks items by.
func (m *Manager) GrantCounts() map[model.ItemID]uint64 {
	out := map[model.ItemID]uint64{}
	for _, sh := range m.shards {
		sh.mu.Lock()
		for item, q := range sh.queues {
			out[item] += q.readGrants + q.writeGrants
		}
		sh.mu.Unlock()
	}
	return out
}

// wrongEpoch NAKs one operation whose routing disagreed with the installed
// map, attaching that map so the sender repairs itself. Callers hold sh.mu.
func (sh *shard) wrongEpoch(ctx engine.Context, to model.SiteID, txn model.TxnID, at model.Attempt, copy model.CopyID) {
	sh.counters.WrongEpoch++
	pm := sh.m.pmap.Load()
	if pm == nil {
		// Legacy mode has no map to attach; an empty map (epoch 0) tells the
		// issuer only that the attempt must restart.
		pm = &model.PartitionMap{}
	}
	ctx.Send(engine.RIAddr(to), model.WrongEpochMsg{Txn: txn, Attempt: at, Copy: copy, Map: *pm})
}

// owns reports whether this site holds item under the installed map (legacy
// nil map: ownership is queue existence, the pre-placement behaviour).
func (sh *shard) owns(item model.ItemID) bool {
	pm := sh.m.pmap.Load()
	if pm == nil {
		return sh.queues[item] != nil
	}
	return pm.Owns(item, sh.m.site)
}

// maybeRetire deletes a drained retiring queue: the item moved away at a map
// install while transactions were still resident, the last one just left,
// and from here on completions for it get the wrong-epoch NAK. Callers hold
// sh.mu and pass the queue already looked up.
func (sh *shard) maybeRetire(item model.ItemID, q *dataQueue) {
	if sh.retiring[item] && len(q.entries) == 0 {
		delete(sh.queues, item)
		delete(sh.retiring, item)
	}
}

// onMapInstall runs the ownership transition for a newer map: items this
// site lost stop admitting new work (their queues drain, then delete); items
// it gained are created sealed ("pending") and filled by snapshot transfer
// from their old primary; the catch-up puller's peer set follows the new
// sharing graph. Site-wide critical section, same discipline as crash.
func (m *Manager) onMapInstall(ctx engine.Context, v model.MapInstallMsg) {
	m.ctlMu.Lock()
	defer m.ctlMu.Unlock()
	cur := m.pmap.Load()
	if cur != nil && v.Map.Epoch <= cur.Epoch {
		return // stale or duplicate publish
	}
	// Clone: under the simulator one message value (and its backing arrays)
	// fans out to every site; the installed map must be this site's own.
	next := v.Map.Clone()

	m.lockAll()
	var gained []model.ItemID
	for i := 0; i < next.Items(); i++ {
		item := model.ItemID(i)
		sh := m.shardFor(item)
		hasQueue := sh.queues[item] != nil
		ownsNow := next.Owns(item, m.site)
		switch {
		case ownsNow && !hasQueue:
			gained = append(gained, item)
		case !ownsNow && hasQueue:
			if len(sh.queues[item].entries) == 0 {
				delete(sh.queues, item)
				delete(sh.retiring, item)
				delete(sh.pending, item)
			} else {
				sh.retiring[item] = true
			}
		case ownsNow && hasQueue:
			// Still owned; if it was mid-retirement under a previous epoch
			// that has now been superseded, keep it.
			delete(sh.retiring, item)
		}
	}
	for _, item := range gained {
		sh := m.shardFor(item)
		if !m.store.Has(item) {
			// Fresh copy at the initial value, stamp 0: every shipped record
			// with a real commit stamp supersedes it, and if the old owner
			// never wrote the item the stamp-gated apply skips harmlessly —
			// the values are identical by construction.
			m.store.Create(item, m.opts.InitialValue)
		}
		sh.queues[item] = newDataQueue(model.CopyID{Item: item, Site: m.site}, !m.opts.DisableSemiLocks)
		if cur != nil {
			sh.pending[item] = true
		}
	}
	m.shards[0].counters.MapInstalls++
	m.shards[0].counters.ItemsGained += uint64(len(gained))
	m.unlockAll()

	if len(gained) > 0 && m.dur != nil {
		// The WAL's last snapshot predates the gained items; a crash after
		// transfer records are journaled would replay writes to items the
		// snapshot does not know. Re-snapshot now so recovery always finds
		// them.
		if snap, ok := m.dur.(interface{ Snapshot() error }); ok {
			if err := snap.Snapshot(); err != nil {
				panic(fmt.Sprintf("qm: site %d: snapshot at map install: %v", m.site, err))
			}
		}
	}

	// One transfer session per old primary of the gained items. No previous
	// map means no old owner to stream from — the items open immediately
	// (fresh copies, the bootstrap path).
	if cur != nil && len(gained) > 0 {
		byPeer := map[model.SiteID][]model.ItemID{}
		for _, item := range gained {
			byPeer[cur.Primary(item)] = append(byPeer[cur.Primary(item)], item)
		}
		peers := make([]model.SiteID, 0, len(byPeer))
		for p := range byPeer {
			peers = append(peers, p)
		}
		sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
		for _, p := range peers {
			if p == m.site {
				// This site already held a non-primary copy... cannot happen
				// for gained items (no queue existed), but guard anyway: no
				// self-transfer.
				m.clearPending(byPeer[p])
				continue
			}
			m.sessions = append(m.sessions, &transferSession{peer: p, epoch: next.Epoch, items: byPeer[p]})
			ctx.Send(engine.QMAddr(p), model.TransferPullMsg{From: m.site, Epoch: next.Epoch})
		}
		if !m.transferTickArmed && len(m.sessions) > 0 {
			m.transferTickArmed = true
			ctx.SetTimer(transferRetryMicros, model.TickMsg{Tag: TransferTickTag})
		}
	}

	// The catch-up peer set follows the sharing graph of the new map.
	if m.puller != nil {
		m.puller.SetPeers(replSharing(next, m.site))
	}
	m.pmap.Store(next)
}

// replSharing lists the sites (ascending) sharing at least one item with
// site under pm — the catch-up pull targets.
func replSharing(pm *model.PartitionMap, site model.SiteID) []model.SiteID {
	seen := map[model.SiteID]bool{}
	for _, reps := range pm.Assignments {
		mine := false
		for _, s := range reps {
			if s == site {
				mine = true
				break
			}
		}
		if !mine {
			continue
		}
		for _, s := range reps {
			if s != site {
				seen[s] = true
			}
		}
	}
	out := make([]model.SiteID, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// clearPending opens items for traffic (their transfer completed, or never
// needed). Caller holds ctlMu; takes shard locks itself.
func (m *Manager) clearPending(items []model.ItemID) {
	for _, item := range items {
		sh := m.shardFor(item)
		sh.mu.Lock()
		delete(sh.pending, item)
		sh.mu.Unlock()
	}
}

// retiringAny reports whether any item is still draining out of this site.
// Caller holds ctlMu.
func (m *Manager) retiringAny() bool {
	for _, sh := range m.shards {
		sh.mu.Lock()
		n := len(sh.retiring)
		sh.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

// onTransferPull serves one new owner's pull from this site's durable log
// (volatile sites serve a synthetic snapshot image of the live store). The
// server answers NotReady until it has installed the transfer's epoch and
// drained every item it lost under it — the handoff discipline that makes
// the flip atomic per item: transfer state is only served after the last
// in-flight transaction's writes are in it.
func (m *Manager) onTransferPull(ctx engine.Context, v model.TransferPullMsg) {
	m.ctlMu.Lock()
	defer m.ctlMu.Unlock()
	if m.Down() {
		return // silent; the puller's retry tick covers the outage
	}
	cur := m.pmap.Load()
	if cur == nil || cur.Epoch < v.Epoch || m.retiringAny() {
		ctx.Send(engine.QMAddr(v.From), model.TransferRecordsMsg{From: m.site, Epoch: v.Epoch, NotReady: true})
		return
	}
	src := m.replSrc
	if src == nil {
		src = storeSource{m.store}
	}
	max := repl.DefaultBatchRecords
	if m.puller != nil {
		max = m.puller.BatchRecords()
	}
	batch, err := repl.BuildBatch(m.site, src, v.AfterSeq, max)
	if err != nil {
		panic(fmt.Sprintf("qm: site %d: transfer pull from site %d after seq %d: %v", m.site, v.From, v.AfterSeq, err))
	}
	m.shards[0].mu.Lock()
	m.shards[0].counters.TransferPulls++
	m.shards[0].mu.Unlock()
	ctx.Send(engine.QMAddr(v.From), model.TransferRecordsMsg{
		From:         m.site,
		Epoch:        v.Epoch,
		Frames:       batch.Frames,
		NextAfterSeq: batch.NextAfterSeq,
		Reset:        batch.Reset,
		More:         batch.More,
		Done:         !batch.More,
	})
}

// onTransferRecords replays one transfer batch through the same stamp-gated
// apply as catch-up (records for items this site does not hold skip — the
// old owner streams its whole log, the new owner keeps what it owns), then
// advances the session and, on Done, opens the items for traffic.
func (m *Manager) onTransferRecords(ctx engine.Context, v model.TransferRecordsMsg) {
	m.ctlMu.Lock()
	defer m.ctlMu.Unlock()
	if m.Down() {
		return // applies would be wiped; the session re-pulls after recovery
	}
	var sess *transferSession
	for _, s := range m.sessions {
		if s.peer == v.From && s.epoch == v.Epoch && !s.done {
			sess = s
			break
		}
	}
	if sess == nil {
		return // stale reply for a completed or unknown session
	}
	if v.NotReady {
		return // the retry tick re-pulls
	}
	st := repl.Apply(v.Frames, func(r wal.Record) bool {
		sh := m.shardFor(r.Item)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if sh.queues[r.Item] == nil || !m.store.ApplyShipped(r.Item, r.Txn, r.Value, r.CommitMicros) {
			return false
		}
		sh.dirty = true
		return true
	})
	for _, sh := range m.shards {
		sh.mu.Lock()
		sh.maybeFlush(ctx)
		sh.mu.Unlock()
	}
	m.shards[0].mu.Lock()
	m.shards[0].counters.TransferApplied += uint64(st.Applied)
	m.shards[0].counters.TransferBytes += uint64(len(v.Frames))
	m.shards[0].mu.Unlock()
	if st.Torn > 0 {
		return // intact prefix applied; the tail re-ships on the retry tick
	}
	if v.NextAfterSeq > sess.afterSeq {
		sess.afterSeq = v.NextAfterSeq
	}
	switch {
	case v.More:
		ctx.Send(engine.QMAddr(sess.peer), model.TransferPullMsg{From: m.site, Epoch: sess.epoch, AfterSeq: sess.afterSeq})
	case v.Done:
		sess.done = true
		m.clearPending(sess.items)
		if m.dur != nil {
			// Make the transferred state snapshot-durable and truncate the
			// shipped tail out of the local log.
			if snap, ok := m.dur.(interface{ Snapshot() error }); ok {
				if err := snap.Snapshot(); err != nil {
					panic(fmt.Sprintf("qm: site %d: snapshot after transfer: %v", m.site, err))
				}
			}
		}
	}
}

// onTransferTick re-pulls every incomplete session (NotReady answers and
// in-flight losses resolve here) and re-arms while any remains — unless the
// run is stopping, in which case each posted tick is one settle round, the
// same contract as ReplSettleTickTag.
func (m *Manager) onTransferTick(ctx engine.Context) {
	m.ctlMu.Lock()
	defer m.ctlMu.Unlock()
	live := m.sessions[:0]
	for _, s := range m.sessions {
		if !s.done {
			live = append(live, s)
		}
	}
	m.sessions = live
	if len(m.sessions) == 0 {
		m.transferTickArmed = false
		return
	}
	if !m.replStopped {
		ctx.SetTimer(transferRetryMicros, model.TickMsg{Tag: TransferTickTag})
	} else {
		m.transferTickArmed = false
	}
	if m.Down() {
		return
	}
	for _, s := range m.sessions {
		ctx.Send(engine.QMAddr(s.peer), model.TransferPullMsg{From: m.site, Epoch: s.epoch, AfterSeq: s.afterSeq})
	}
}

// storeSource adapts a volatile store to the repl.Source contract for
// transfer serving: any pull below sequence 1 takes the Reset path and gets
// a synthetic snapshot image of every copy's latest version (appliedSeq 1);
// above it the log is empty — volatile sites have no tail to stream.
type storeSource struct {
	store *storage.Store
}

func (s storeSource) RecordsSince(afterSeq uint64, max int) (frames []byte, next uint64, more, gap bool, err error) {
	if afterSeq < 1 {
		return nil, 0, false, true, nil
	}
	return nil, afterSeq, false, false, nil
}

func (s storeSource) SnapshotRecords() (frames []byte, appliedSeq uint64, err error) {
	for _, item := range s.store.Items() {
		ver := s.store.Latest(item)
		frames = wal.AppendRecordFrame(frames, wal.Record{
			Item:         item,
			Txn:          ver.Writer,
			Value:        ver.Value,
			Version:      ver.Version,
			CommitMicros: ver.CommitMicros,
		})
	}
	return frames, 1, nil
}
