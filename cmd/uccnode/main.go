// Command uccnode runs one data/user site of the distributed system as a
// real process: the site's queue manager (with its storage partition), its
// request issuer, and — on site 0 — the deadlock-detection coordinator. The
// metrics collector and workload drivers live in cmd/uccclient.
//
// Example 3-site cluster on one machine:
//
//	uccnode -site 0 -sites 3 -listen :7700 -peers :7700,:7701,:7702 &
//	uccnode -site 1 -sites 3 -listen :7701 -peers :7700,:7701,:7702 &
//	uccnode -site 2 -sites 3 -listen :7702 -peers :7700,:7701,:7702 &
//	uccclient -peers :7700,:7701,:7702 -listen :7709 -rate 50 -duration 5s
//
// Every process must agree on -sites/-items/-replicas (they derive the same
// static catalog).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"ucc/internal/deadlock"
	"ucc/internal/engine"
	"ucc/internal/model"
	"ucc/internal/qm"
	"ucc/internal/ri"
	"ucc/internal/storage"
	"ucc/internal/transport"
)

func main() {
	var (
		site     = flag.Int("site", 0, "this node's site id (0-based)")
		sites    = flag.Int("sites", 3, "total number of sites")
		items    = flag.Int("items", 64, "number of logical data items")
		replicas = flag.Int("replicas", 1, "physical copies per item")
		initial  = flag.Int64("initial", 100, "initial value of every item")
		listen   = flag.String("listen", ":7700", "TCP listen address")
		peers    = flag.String("peers", "", "comma-separated site TCP addresses, index = site id")
		client   = flag.String("client", "", "client peer TCP address (collector/driver host); may be empty until a client connects inbound")
		detector = flag.Int64("detector-period-ms", 50, "deadlock detection period (site 0 only)")
		paInt    = flag.Int64("pa-interval-us", 2000, "PA back-off interval INT (µs)")
		restart  = flag.Int64("restart-delay-us", 10000, "mean restart delay after rejection/victim (µs)")
	)
	flag.Parse()

	peerList := strings.Split(*peers, ",")
	if len(peerList) != *sites {
		log.Fatalf("uccnode: -peers must list exactly %d addresses, got %d", *sites, len(peerList))
	}
	topo := transport.Topology{
		Peers:  map[string]string{},
		Assign: transport.StandardAssign("client"),
	}
	for i, addr := range peerList {
		topo.Peers[fmt.Sprintf("site%d", i)] = strings.TrimSpace(addr)
	}
	if *client != "" {
		topo.Peers["client"] = *client
	}

	// Build this site's slice of the system. Latency is the real network;
	// the runtime adds nothing on top.
	rt := engine.NewRuntime(engine.FixedLatency{}, int64(*site)+1)

	siteIDs := make([]model.SiteID, *sites)
	for i := range siteIDs {
		siteIDs[i] = model.SiteID(i)
	}
	catalog := storage.NewCatalog(*items, siteIDs, *replicas)
	self := model.SiteID(*site)

	store := storage.NewStore(self)
	for _, item := range catalog.CopiesAt(self) {
		store.Create(item, *initial)
	}
	mgr := qm.New(self, store, nil, qm.Options{StatsPeriodMicros: 200_000})
	rt.Register(engine.QMAddr(self), mgr)

	issuer := ri.New(self, catalog, nil, ri.Options{
		PAIntervalMicros:     model.Timestamp(*paInt),
		RestartDelayMicros:   *restart,
		DefaultComputeMicros: 1000,
	}, nil)
	rt.Register(engine.RIAddr(self), issuer)

	if self == 0 {
		det := deadlock.New(siteIDs, deadlock.Options{
			PeriodMicros:  *detector * 1000,
			PersistRounds: 2,
		})
		rt.Register(engine.DetectorAddr(), det)
		rt.Inject(engine.Envelope{From: engine.DetectorAddr(), To: engine.DetectorAddr(), Msg: model.TickMsg{}})
	}
	// Start the QM stats push (reports flow to the client's collector).
	rt.Inject(engine.Envelope{From: engine.QMAddr(self), To: engine.QMAddr(self), Msg: model.TickMsg{}})

	node, err := transport.NewNode(rt, fmt.Sprintf("site%d", *site), *listen, topo)
	if err != nil {
		log.Fatalf("uccnode: %v", err)
	}
	log.Printf("uccnode: site %d up on %s (%d items stored, %d sites, %d replicas)",
		*site, node.Addr(), store.Len(), *sites, *replicas)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("uccnode: site %d shutting down", *site)
	node.Close()
	rt.Shutdown()
}
