package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"ucc/internal/model"
	"ucc/internal/storage"
)

// chainAt builds a test version chain of depth versions for one copy.
func chainAt(site model.SiteID, item int, depth int) storage.CopyChain {
	cc := storage.CopyChain{ID: model.CopyID{Item: model.ItemID(item), Site: site}}
	for v := 0; v < depth; v++ {
		cc.Versions = append(cc.Versions, storage.Version{
			Value:        int64(item*100 + v),
			Version:      uint64(v),
			Writer:       model.TxnID{Site: site, Seq: uint64(v)},
			CommitMicros: int64(v) * 1_000,
		})
	}
	return cc
}

func rec(seq uint64, item int, value int64) Record {
	return Record{
		Seq:   seq, // assigned by Append; kept for expectations
		Item:  model.ItemID(item),
		Txn:   model.TxnID{Site: 1, Seq: seq},
		Value: value, Version: seq,
	}
}

func replayAll(t *testing.T, media Media, after uint64) []Record {
	t.Helper()
	var out []Record
	if _, err := Replay(media, after, func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestLogAppendFlushReplay(t *testing.T) {
	media := NewMemMedia()
	l, err := NewLog(media, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		l.Append(rec(0, i, int64(100+i)))
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, media, 0)
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || r.Item != model.ItemID(i+1) || r.Value != int64(101+i) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
	// afterSeq filters the snapshot-covered prefix.
	if got := replayAll(t, media, 7); len(got) != 3 || got[0].Seq != 8 {
		t.Fatalf("tail replay after 7: %+v", got)
	}
}

func TestLogUnflushedRecordsAreVolatile(t *testing.T) {
	media := NewMemMedia()
	l, _ := NewLog(media, 1<<20, 1)
	l.Append(rec(0, 1, 1))
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	l.Append(rec(0, 2, 2)) // buffered, never flushed
	media.Crash()
	if got := replayAll(t, media, 0); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("after crash want exactly the flushed record, got %+v", got)
	}
}

func TestLogSegmentRollover(t *testing.T) {
	media := NewMemMedia()
	l, _ := NewLog(media, 30, 1) // tiny segments (~2 varint records each)
	for i := 1; i <= 9; i++ {
		l.Append(rec(0, i, int64(i)))
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	names, _ := media.List()
	var segs int
	for _, n := range names {
		if isSeg(n) {
			segs++
		}
	}
	if segs < 3 {
		t.Fatalf("expected multiple segments, got %d (%v)", segs, names)
	}
	if got := replayAll(t, media, 0); len(got) != 9 {
		t.Fatalf("replay across segments: %d records, want 9", len(got))
	}
}

// TestTornWriteRecoversPrefix is acceptance criterion (b): a file-backed log
// truncated mid-record replays exactly the checksummed prefix.
func TestTornWriteRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	media, err := NewDirMedia(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLog(media, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		l.Append(rec(0, i, int64(i)))
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	seg := l.SegmentName()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop 13 bytes off the file (mid-payload).
	path := filepath.Join(dir, seg)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-13); err != nil {
		t.Fatal(err)
	}

	got := replayAll(t, media, 0)
	if len(got) != 19 {
		t.Fatalf("torn log replayed %d records, want exactly the 19 intact ones", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
}

func TestCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	media, _ := NewDirMedia(dir)
	l, _ := NewLog(media, 1<<20, 1)
	for i := 1; i <= 5; i++ {
		l.Append(rec(0, i, int64(i)))
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	seg := l.SegmentName()
	l.Close()

	// Flip one byte in the middle of record 4's payload (frames are varint-
	// sized now, so walk the first three frames to find it).
	path := filepath.Join(dir, seg)
	data, _ := os.ReadFile(path)
	off := 0
	for i := 0; i < 3; i++ {
		n := int(binary.LittleEndian.Uint32(data[off+4:]) &^ varintFlag)
		off += frameHeader + n
	}
	off += frameHeader + 2
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Records 1..3 are the intact prefix; 4 is corrupt; 5 must NOT replay
	// (no replaying past damage).
	if got := replayAll(t, media, 0); len(got) != 3 {
		t.Fatalf("replayed %d records past corruption, want 3", len(got))
	}
}

func TestReplayStopsAtSequenceGap(t *testing.T) {
	media := NewMemMedia()
	l, _ := NewLog(media, 60, 1) // roll roughly every flush
	for i := 1; i <= 6; i++ {
		l.Append(rec(0, i, int64(i)))
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Drop a middle segment.
	names, _ := media.List()
	var segs []string
	for _, n := range names {
		if isSeg(n) {
			segs = append(segs, n)
		}
	}
	if len(segs) < 3 {
		t.Skipf("need ≥3 segments, got %v", segs)
	}
	if err := media.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, media, 0)
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("replay crossed the gap: %+v", got)
		}
	}
	if len(got) >= 6 {
		t.Fatalf("replayed %d records despite a missing segment", len(got))
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	s := snapshot{AppliedSeq: 42, Site: 3}
	for i := 0; i < 5; i++ {
		// Varying chain depth exercises the variable-length encoding.
		s.Chains = append(s.Chains, chainAt(3, i, i+1))
	}
	got, err := decodeSnapshot(encodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.AppliedSeq != 42 || got.Site != 3 || len(got.Chains) != 5 {
		t.Fatalf("round trip: %+v", got)
	}
	for i, c := range got.Chains {
		if c.ID != s.Chains[i].ID || len(c.Versions) != len(s.Chains[i].Versions) {
			t.Fatalf("chain %d: got %+v want %+v", i, c, s.Chains[i])
		}
		for j, v := range c.Versions {
			if v != s.Chains[i].Versions[j] {
				t.Fatalf("chain %d version %d: got %+v want %+v", i, j, v, s.Chains[i].Versions[j])
			}
		}
	}
	// Corruption is detected.
	enc := encodeSnapshot(s)
	enc[len(enc)-1] ^= 1
	if _, err := decodeSnapshot(enc); err == nil {
		t.Fatal("corrupt snapshot decoded without error")
	}
}

// appendLegacyRecord writes the fixed-width frame format of pre-wire-v3
// builds, byte-for-byte (the old appendRecord implementation, kept here as
// the upgrade-compat oracle).
func appendLegacyRecord(buf []byte, r Record) []byte {
	var p [recordPayload]byte
	binary.LittleEndian.PutUint64(p[0:], r.Seq)
	binary.LittleEndian.PutUint32(p[8:], uint32(r.Item))
	binary.LittleEndian.PutUint32(p[12:], uint32(r.Txn.Site))
	binary.LittleEndian.PutUint64(p[16:], r.Txn.Seq)
	binary.LittleEndian.PutUint64(p[24:], uint64(r.Value))
	binary.LittleEndian.PutUint64(p[32:], r.Version)
	binary.LittleEndian.PutUint64(p[40:], uint64(r.CommitMicros))
	var h [frameHeader]byte
	binary.LittleEndian.PutUint32(h[0:], crc32.Checksum(p[:], crcTable))
	binary.LittleEndian.PutUint32(h[4:], uint32(len(p)))
	buf = append(buf, h[:]...)
	return append(buf, p[:]...)
}

// TestReplayLegacyRecords: a segment written by an older build (fixed-width
// frames) must replay exactly after an in-place upgrade — the WAL analogue
// of the transport's v2 fallback.
func TestReplayLegacyRecords(t *testing.T) {
	media := NewMemMedia()
	w, err := media.Create(segName(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for i := 1; i <= 10; i++ {
		buf = appendLegacyRecord(buf, Record{
			Seq: uint64(i), Item: model.ItemID(i % 3), Txn: model.TxnID{Site: 1, Seq: uint64(i)},
			Value: int64(-i), Version: uint64(i), CommitMicros: int64(i) * 1000,
		})
	}
	if _, err := w.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	got := replayAll(t, media, 0)
	if len(got) != 10 {
		t.Fatalf("replayed %d legacy records, want 10", len(got))
	}
	for i, r := range got {
		want := Record{
			Seq: uint64(i + 1), Item: model.ItemID((i + 1) % 3), Txn: model.TxnID{Site: 1, Seq: uint64(i + 1)},
			Value: int64(-(i + 1)), Version: uint64(i + 1), CommitMicros: int64(i+1) * 1000,
		}
		if r != want {
			t.Fatalf("legacy record %d: got %+v want %+v", i, r, want)
		}
	}
}

// TestReplayMixedEraSegments: legacy frames in an old segment followed by
// varint frames in a newer one — exactly what media looks like after an
// upgraded node appends to surviving history.
func TestReplayMixedEraSegments(t *testing.T) {
	media := NewMemMedia()
	// Old build wrote segment 1 (legacy frames).
	w, _ := media.Create(segName(1))
	var buf []byte
	for i := 1; i <= 5; i++ {
		buf = appendLegacyRecord(buf, Record{Seq: uint64(i), Item: 1, Txn: model.TxnID{Site: 1, Seq: uint64(i)}, Value: int64(i)})
	}
	w.Write(buf)
	w.Sync()
	w.Close()

	// Upgraded build appends segment 2 (varint frames) via the real Log.
	l, err := NewLog(media, 1<<20, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 6; i <= 9; i++ {
		l.Append(Record{Item: 1, Txn: model.TxnID{Site: 1, Seq: uint64(i)}, Value: int64(i)})
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	got := replayAll(t, media, 0)
	if len(got) != 9 {
		t.Fatalf("replayed %d records across eras, want 9", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || r.Value != int64(i+1) {
			t.Fatalf("record %d: got %+v", i, r)
		}
	}
}

// TestRecordRoundTripExtremes: varint payloads must round-trip the field
// extremes (negative values, max versions) and reject truncation at every
// byte.
func TestRecordRoundTripExtremes(t *testing.T) {
	recs := []Record{
		{},
		{Seq: 1<<64 - 1, Item: -1, Txn: model.TxnID{Site: -1, Seq: 1<<64 - 1}, Value: -1 << 62, Version: 1<<64 - 1, CommitMicros: -1},
		{Seq: 7, Item: 1<<31 - 1, Txn: model.TxnID{Site: 1<<31 - 1, Seq: 9}, Value: 1<<62 - 1, Version: 3, CommitMicros: 1 << 50},
	}
	for i, r := range recs {
		p := appendRecordPayload(nil, r)
		if len(p) > maxRecordPayload {
			t.Fatalf("record %d payload is %d bytes, over maxRecordPayload", i, len(p))
		}
		got, ok := decodeRecordPayload(p)
		if !ok || got != r {
			t.Fatalf("record %d: round trip got %+v ok=%v, want %+v", i, got, ok, r)
		}
		for cut := 0; cut < len(p); cut++ {
			if _, ok := decodeRecordPayload(p[:cut]); ok {
				t.Fatalf("record %d: truncated payload (%d/%d bytes) decoded", i, cut, len(p))
			}
		}
		if _, ok := decodeRecordPayload(append(append([]byte{}, p...), 0)); ok {
			t.Fatalf("record %d: trailing byte accepted", i)
		}
	}
}

// TestFlippedEraFlagStopsReplay: the era flag lives in the length word, so
// a flipped flag bit must fail the frame's checksum in whichever decode
// branch it lands — replay stops, never misdecodes.
func TestFlippedEraFlagStopsReplay(t *testing.T) {
	flip := func(frame []byte) []byte {
		out := append([]byte{}, frame...)
		out[7] ^= 0x80 // bit 31 of the little-endian length word
		return out
	}
	write := func(t *testing.T, media Media, frames []byte) {
		t.Helper()
		w, err := media.Create(segName(1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(frames); err != nil {
			t.Fatal(err)
		}
		w.Sync()
		w.Close()
	}
	r1 := Record{Seq: 1, Item: 1, Txn: model.TxnID{Site: 1, Seq: 1}, Value: 7}

	// Varint frame with the flag cleared: lands in the legacy branch, whose
	// payload-only crc cannot match a crc that covered the length word.
	media := NewMemMedia()
	write(t, media, flip(appendRecord(nil, r1)))
	if got := replayAll(t, media, 0); len(got) != 0 {
		t.Fatalf("flag-stripped varint frame replayed %d records, want 0", len(got))
	}

	// Legacy frame with the flag set: lands in the varint branch, whose
	// lenword+payload crc cannot match a payload-only crc.
	media2 := NewMemMedia()
	write(t, media2, flip(appendLegacyRecord(nil, r1)))
	if got := replayAll(t, media2, 0); len(got) != 0 {
		t.Fatalf("flag-set legacy frame replayed %d records, want 0", len(got))
	}
}
