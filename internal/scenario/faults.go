package scenario

import (
	"fmt"
	"math/rand"

	"ucc/internal/cluster"
	"ucc/internal/engine"
	"ucc/internal/model"
)

// CrashSite is a fault that destroys site's volatile state atMicros into the
// phase (the store and unsynced WAL tail are lost; until recovery the site
// defers every message). The scenario's cluster must set Durability, and —
// when history checking is on — a zero group-commit window (see
// cluster.Durability.GroupCommitMicros for why a crash inside a deferred
// sync window is outside the checked envelope).
func CrashSite(site model.SiteID, atMicros int64) Fault {
	return Fault{
		Name:     fmt.Sprintf("crash-site-%d", site),
		AtMicros: atMicros,
		Apply: func(cl *cluster.Cluster) {
			// The runner advanced the engine to the fault instant; an offset
			// of 0 posts the crash at the current virtual time.
			cl.CrashSite(site, 0)
		},
	}
}

// RecoverSite is a fault that rebuilds site from snapshot + WAL replay
// atMicros into the phase; deferred messages are then processed in arrival
// order.
func RecoverSite(site model.SiteID, atMicros int64) Fault {
	return Fault{
		Name:     fmt.Sprintf("recover-site-%d", site),
		AtMicros: atMicros,
		Apply: func(cl *cluster.Cluster) {
			cl.RecoverSite(site, 0)
		},
	}
}

// SlowWAL is a fault that widens site's group-commit window to windowMicros
// atMicros into the phase — the "disk got slow, batch harder" model: commits
// wait up to the window for their sync, and each sync covers more of them.
// Restore with another SlowWAL carrying window 0.
func SlowWAL(site model.SiteID, atMicros, windowMicros int64) Fault {
	name := fmt.Sprintf("slow-wal-site-%d", site)
	if windowMicros == 0 {
		name = fmt.Sprintf("restore-wal-site-%d", site)
	}
	return Fault{
		Name:     name,
		AtMicros: atMicros,
		Apply: func(cl *cluster.Cluster) {
			cl.SetGroupCommitWindow(site, windowMicros)
		},
	}
}

// SlowWALAll applies SlowWAL to every site at once.
func SlowWALAll(atMicros, windowMicros int64) Fault {
	name := "slow-wal-all"
	if windowMicros == 0 {
		name = "restore-wal-all"
	}
	return Fault{
		Name:     name,
		AtMicros: atMicros,
		Apply: func(cl *cluster.Cluster) {
			for s := 0; s < cl.Cfg.Sites; s++ {
				cl.SetGroupCommitWindow(model.SiteID(s), windowMicros)
			}
		},
	}
}

// MoveItems is a fault that publishes a new partition-map epoch atMicros into
// the phase, re-homing items so dst is their primary: the online-rebalance
// intervention. In-flight transactions drain at the old owners while the new
// owner fills by snapshot transfer; traffic routed by the stale map gets the
// wrong-epoch NAK and restarts against the new one.
func MoveItems(atMicros int64, items []model.ItemID, dst model.SiteID) Fault {
	return Fault{
		Name:     fmt.Sprintf("move-%d-items-to-site-%d", len(items), dst),
		AtMicros: atMicros,
		Apply: func(cl *cluster.Cluster) {
			// The runner advanced the engine to the fault instant; offset 0
			// publishes at the current virtual time.
			if err := cl.MoveItems(0, items, dst); err != nil {
				panic(fmt.Sprintf("scenario: move fault: %v", err))
			}
		},
	}
}

// AddSite is a fault that brings a standby site (empty under the epoch-0
// layout, see cluster.Config.DataSites) into the active placement atMicros
// into the phase.
func AddSite(site model.SiteID, atMicros int64) Fault {
	return Fault{
		Name:     fmt.Sprintf("add-site-%d", site),
		AtMicros: atMicros,
		Apply: func(cl *cluster.Cluster) {
			if err := cl.AddSite(0, site); err != nil {
				panic(fmt.Sprintf("scenario: add-site fault: %v", err))
			}
		},
	}
}

// DrainSite is a fault that evacuates a site from the active placement
// atMicros into the phase: its copies re-home to the surviving sites.
func DrainSite(site model.SiteID, atMicros int64) Fault {
	return Fault{
		Name:     fmt.Sprintf("drain-site-%d", site),
		AtMicros: atMicros,
		Apply: func(cl *cluster.Cluster) {
			if err := cl.DrainSite(0, site); err != nil {
				panic(fmt.Sprintf("scenario: drain-site fault: %v", err))
			}
		},
	}
}

// RebalanceHot is a fault that moves the hottest frac of items — ranked by
// observed grant counts — to the least-loaded site atMicros into the phase.
func RebalanceHot(atMicros int64, frac float64) Fault {
	return Fault{
		Name:     fmt.Sprintf("rebalance-hot-%.0f%%", frac*100),
		AtMicros: atMicros,
		Apply: func(cl *cluster.Cluster) {
			if _, err := cl.RebalanceHot(0, frac, -1); err != nil {
				panic(fmt.Sprintf("scenario: hot-rebalance fault: %v", err))
			}
		},
	}
}

// DegradeLink is a fault that swaps the cluster's latency model atMicros
// into the phase for one where every message into or out of site pays an
// extra asymmetric delay on top of base (messages in flight keep their
// already-scheduled delivery times). Restore with RestoreLatency.
func DegradeLink(site model.SiteID, atMicros int64, base engine.LatencyModel, extraToMicros, extraFromMicros int64) Fault {
	return Fault{
		Name:     fmt.Sprintf("degrade-link-site-%d", site),
		AtMicros: atMicros,
		Apply: func(cl *cluster.Cluster) {
			cl.SetLatency(AsymmetricLatency{
				Base:            base,
				SlowSite:        site,
				ExtraToMicros:   extraToMicros,
				ExtraFromMicros: extraFromMicros,
			})
		},
	}
}

// RestoreLatency is a fault that puts the given latency model back atMicros
// into the phase.
func RestoreLatency(atMicros int64, m engine.LatencyModel) Fault {
	return Fault{
		Name:     "restore-latency",
		AtMicros: atMicros,
		Apply: func(cl *cluster.Cluster) {
			cl.SetLatency(m)
		},
	}
}

// AsymmetricLatency wraps a base latency model and adds directional delay
// for one slow site — the degraded-link fault shape: a congested uplink
// (ExtraFromMicros), a congested downlink (ExtraToMicros), or both. Local
// (same-site) delivery is never penalized.
type AsymmetricLatency struct {
	Base            engine.LatencyModel
	SlowSite        model.SiteID
	ExtraToMicros   int64
	ExtraFromMicros int64
}

// DelayMicros implements engine.LatencyModel.
func (a AsymmetricLatency) DelayMicros(src, dst engine.Addr, rng *rand.Rand) int64 {
	d := a.Base.DelayMicros(src, dst, rng)
	if src.ID == dst.ID {
		return d
	}
	if dst.ID == a.SlowSite {
		d += a.ExtraToMicros
	}
	if src.ID == a.SlowSite {
		d += a.ExtraFromMicros
	}
	return d
}
