package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"ucc/internal/model"
	"ucc/internal/storage"
)

// snapshot is a point-in-time image of one site's store: the full retained
// version chain of every physical copy, plus the sequence number of the last
// journaled record already reflected in those chains. Records with
// Seq > AppliedSeq form the log tail that replays on top. Chains (not just
// latest values) are imaged so that a recovered site can keep serving
// snapshot reads at timestamps that predate the crash.
type snapshot struct {
	AppliedSeq uint64
	Site       model.SiteID
	Chains     []storage.CopyChain
}

// snapVersionBytes encodes one storage.Version:
// value | version | writer site | writer seq | commit micros.
const snapVersionBytes = 8 + 8 + 4 + 8 + 8

// encodeSnapshot renders: crc32C(body) | body, where body is
// appliedSeq | site | copyCount | copyCount × (item | versionCount |
// versionCount × version).
func encodeSnapshot(s snapshot) []byte {
	size := 8 + 4 + 4
	for _, c := range s.Chains {
		size += 4 + 4 + len(c.Versions)*snapVersionBytes
	}
	body := make([]byte, 0, size)
	var u8 [8]byte
	var u4 [4]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u8[:], v)
		body = append(body, u8[:]...)
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u4[:], v)
		body = append(body, u4[:]...)
	}
	put64(s.AppliedSeq)
	put32(uint32(s.Site))
	put32(uint32(len(s.Chains)))
	for _, c := range s.Chains {
		put32(uint32(c.ID.Item))
		put32(uint32(len(c.Versions)))
		for _, v := range c.Versions {
			put64(uint64(v.Value))
			put64(v.Version)
			put32(uint32(v.Writer.Site))
			put64(v.Writer.Seq)
			put64(uint64(v.CommitMicros))
		}
	}
	out := make([]byte, 4, 4+len(body))
	binary.LittleEndian.PutUint32(out, crc32.Checksum(body, crcTable))
	return append(out, body...)
}

// decodeSnapshot validates the checksum and decodes; a torn or corrupt
// snapshot returns an error (recovery then falls back to an older one).
func decodeSnapshot(data []byte) (snapshot, error) {
	var s snapshot
	if len(data) < 4+8+4+4 {
		return s, fmt.Errorf("wal: snapshot truncated (%d bytes)", len(data))
	}
	crc := binary.LittleEndian.Uint32(data)
	body := data[4:]
	if crc32.Checksum(body, crcTable) != crc {
		return s, fmt.Errorf("wal: snapshot checksum mismatch")
	}
	s.AppliedSeq = binary.LittleEndian.Uint64(body)
	s.Site = model.SiteID(binary.LittleEndian.Uint32(body[8:]))
	copies := int(binary.LittleEndian.Uint32(body[12:]))
	body = body[16:]
	s.Chains = make([]storage.CopyChain, 0, copies)
	for i := 0; i < copies; i++ {
		if len(body) < 8 {
			return s, fmt.Errorf("wal: snapshot truncated at copy %d", i)
		}
		item := model.ItemID(binary.LittleEndian.Uint32(body))
		nv := int(binary.LittleEndian.Uint32(body[4:]))
		body = body[8:]
		if nv < 1 || len(body) < nv*snapVersionBytes {
			return s, fmt.Errorf("wal: snapshot chain for item %d malformed (%d versions, %d bytes left)", item, nv, len(body))
		}
		cc := storage.CopyChain{
			ID:       model.CopyID{Item: item, Site: s.Site},
			Versions: make([]storage.Version, nv),
		}
		for j := 0; j < nv; j++ {
			b := body[j*snapVersionBytes:]
			cc.Versions[j] = storage.Version{
				Value:   int64(binary.LittleEndian.Uint64(b)),
				Version: binary.LittleEndian.Uint64(b[8:]),
				Writer: model.TxnID{
					Site: model.SiteID(binary.LittleEndian.Uint32(b[16:])),
					Seq:  binary.LittleEndian.Uint64(b[20:]),
				},
				CommitMicros: int64(binary.LittleEndian.Uint64(b[28:])),
			}
		}
		body = body[nv*snapVersionBytes:]
		s.Chains = append(s.Chains, cc)
	}
	if len(body) != 0 {
		return s, fmt.Errorf("wal: snapshot has %d trailing bytes", len(body))
	}
	return s, nil
}

// writeSnapshot persists a snapshot durably (create, write, sync, close).
func writeSnapshot(media Media, s snapshot) error {
	w, err := media.Create(snapName(s.AppliedSeq))
	if err != nil {
		return fmt.Errorf("wal: create snapshot: %w", err)
	}
	if _, err := w.Write(encodeSnapshot(s)); err != nil {
		w.Close()
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return fmt.Errorf("wal: sync snapshot: %w", err)
	}
	return w.Close()
}

// newestSnapshot loads the newest decodable snapshot, skipping damaged ones.
// ok is false when no valid snapshot exists.
func newestSnapshot(media Media) (snapshot, bool, error) {
	names, err := media.List()
	if err != nil {
		return snapshot{}, false, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		if !isSnap(names[i]) {
			continue
		}
		data, err := media.ReadAll(names[i])
		if err != nil {
			return snapshot{}, false, err
		}
		s, err := decodeSnapshot(data)
		if err != nil {
			continue // torn snapshot: fall back to an older one
		}
		return s, true, nil
	}
	return snapshot{}, false, nil
}

// pruneBefore removes every snapshot and sealed segment made obsolete by a
// new snapshot: snapshots other than snapName(appliedSeq) and segments whose
// name (first seq) precedes the current open segment — the snapshot covers
// all of them because it was taken after a roll.
func pruneBefore(media Media, appliedSeq uint64, keepSegment string) error {
	names, err := media.List()
	if err != nil {
		return err
	}
	keepSnap := snapName(appliedSeq)
	for _, n := range names {
		switch {
		case isSnap(n) && n != keepSnap:
			if err := media.Remove(n); err != nil {
				return err
			}
		case isSeg(n) && n < keepSegment:
			if err := media.Remove(n); err != nil {
				return err
			}
		}
	}
	return nil
}
