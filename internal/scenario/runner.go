package scenario

import (
	"fmt"
	"sort"

	"ucc/internal/cluster"
	"ucc/internal/metrics"
	"ucc/internal/model"
	"ucc/internal/qm"
	"ucc/internal/ri"
	"ucc/internal/wal"
)

// Options tune one run of a scenario.
type Options struct {
	// Seed overrides the scenario's cluster seed when nonzero (same scenario
	// + same seed = bit-identical run record).
	Seed int64
}

// Run executes a scenario: build the cluster, attach a phased driver per
// site, walk the phases (advancing the engine to each fault instant and
// applying it), snapshot per-phase metric deltas at every boundary, evaluate
// phase checkpoints, then settle, drain, and evaluate the final checks.
//
// An error means the scenario could not run (invalid config); check failures
// are not errors — they are recorded in the returned RunRecord with
// Passed=false, and every phase still executes so one report shows every
// violated invariant.
func Run(sc Scenario, opt Options) (*RunRecord, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	cfg := sc.Cluster
	cfg.Record = !sc.NoHistory
	if opt.Seed != 0 {
		cfg.Seed = opt.Seed
	}
	cl, err := cluster.NewSim(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	for site := 0; site < cfg.Sites; site++ {
		if err := cl.AddPhasedDriver(model.SiteID(site), sc.sitePhases(site)); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
	}

	rec := &RunRecord{
		Scenario:    sc.Name,
		Description: sc.Description,
		Seed:        cfg.Seed,
		Sites:       cfg.Sites,
		Items:       cfg.Items,
		Replicas:    cl.Cfg.Replicas, // post-Validate (defaulted) values
		Shards:      cl.Cfg.Shards,
		Passed:      true,
	}

	cl.Start()
	var (
		now     int64
		prevSum metrics.Summary
		prevRI  ri.Stats
		prevQM  qm.Counters
		prevWAL wal.Stats
	)
	for i := range sc.Phases {
		p := &sc.Phases[i]
		start, end := now, now+p.DurationMicros

		// Apply faults in offset order, advancing the engine to each instant.
		faults := make([]Fault, len(p.Faults))
		copy(faults, p.Faults)
		sort.SliceStable(faults, func(a, b int) bool { return faults[a].AtMicros < faults[b].AtMicros })
		var applied []FaultRecord
		for _, f := range faults {
			at := start + f.AtMicros
			if at < start {
				at = start
			}
			if at > end {
				at = end
			}
			cl.Eng.RunUntil(at)
			f.Apply(cl)
			applied = append(applied, FaultRecord{Name: f.Name, AtMicros: at})
		}
		cl.Eng.RunUntil(end)
		now = end

		// Snapshot the boundary; the phase's events are the deltas.
		curSum := cl.Collector.Summarize()
		curRI, curQM, curWAL := cl.RITotals(), cl.QMTotals(), cl.WALTotals()
		delta := curSum.Delta(prevSum)
		// Throughput over the phase wall-clock, not the collector's
		// first-arrival span.
		delta.SpanMicros = p.DurationMicros
		pr := PhaseRecord{
			Name:           p.Name,
			StartMicros:    start,
			EndMicros:      end,
			DepthHighWater: cl.DepthHighWater(),
			RI:             subRI(curRI, prevRI),
			QM:             subQM(curQM, prevQM),
			WAL:            subWAL(curWAL, prevWAL),
			Faults:         applied,
			delta:          delta,
		}
		fillPhaseScalars(&pr)
		prevSum, prevRI, prevQM, prevWAL = curSum, curRI, curQM, curWAL
		rec.Phases = append(rec.Phases, pr)
		phaseRec := &rec.Phases[len(rec.Phases)-1]

		ctx := &Ctx{Scenario: &sc, Cluster: cl, Run: rec, Phase: phaseRec}
		for _, chk := range p.Checks {
			runCheck(rec, phaseRec, nil, ctx, p.Name, chk)
		}
	}

	settle := sc.SettleMicros
	if settle <= 0 {
		settle = 5_000_000
	}
	cl.Eng.RunUntil(now + settle)
	res := cl.Finish()

	rec.Final = FinalRecord{
		Committed:         res.Summary.TotalCommitted(),
		Shed:              res.Summary.TotalShed(),
		Busy:              res.Summary.TotalBusy(),
		ThroughputPerSec:  res.Summary.Throughput(),
		MeanLatencyMicros: res.Summary.MeanSystemTimeMicros(),
		Unfinished:        res.Unfinished,
		Events:            res.Events,
	}
	if res.Serializability != nil {
		ok := res.Serializability.Serializable
		rec.Final.Serializable = &ok
	}
	ctx := &Ctx{Scenario: &sc, Cluster: cl, Run: rec, Final: &res}
	for _, chk := range sc.Final {
		runCheck(rec, nil, &rec.Final, ctx, "final", chk)
	}
	return rec, nil
}

// runCheck evaluates one checkpoint and files its verdict.
func runCheck(rec *RunRecord, phase *PhaseRecord, final *FinalRecord, ctx *Ctx, where string, chk Check) {
	cr := CheckRecord{Name: chk.Name, Passed: true}
	if err := chk.Eval(ctx); err != nil {
		cr.Passed = false
		cr.Detail = err.Error()
		rec.Passed = false
		rec.Failures = append(rec.Failures, fmt.Sprintf("%s/%s: %s", where, chk.Name, cr.Detail))
	}
	if phase != nil {
		phase.Checks = append(phase.Checks, cr)
	} else {
		final.Checks = append(final.Checks, cr)
	}
}

// fillPhaseScalars derives the report scalars from the phase delta.
func fillPhaseScalars(p *PhaseRecord) {
	d := p.delta
	var rejected, victims uint64
	for i := range d.Protocols {
		rejected += d.Protocols[i].Rejected
		victims += d.Protocols[i].Victims
	}
	p.Committed = d.TotalCommitted()
	p.Shed = d.TotalShed()
	p.Busy = d.TotalBusy()
	p.Rejected = rejected
	p.Victims = victims
	p.ThroughputPerSec = d.Throughput()
	h := mergedLatency(d)
	p.MeanLatencyMicros = h.Mean()
	if h.Count() > 0 {
		p.P50Micros = h.Quantile(0.50)
		p.P99Micros = h.Quantile(0.99)
	}
}

// subRI returns cur-prev field-wise (Active is instantaneous, kept as-is).
func subRI(cur, prev ri.Stats) ri.Stats {
	return ri.Stats{
		Submitted:      cur.Submitted - prev.Submitted,
		Committed:      cur.Committed - prev.Committed,
		ROCommitted:    cur.ROCommitted - prev.ROCommitted,
		ROStale:        cur.ROStale - prev.ROStale,
		Rejects:        cur.Rejects - prev.Rejects,
		Victims:        cur.Victims - prev.Victims,
		Dropped:        cur.Dropped - prev.Dropped,
		Shed:           cur.Shed - prev.Shed,
		BusyNAKs:       cur.BusyNAKs - prev.BusyNAKs,
		ROBusyShed:     cur.ROBusyShed - prev.ROBusyShed,
		ReBackoffs:     cur.ReBackoffs - prev.ReBackoffs,
		QuorumExcluded: cur.QuorumExcluded - prev.QuorumExcluded,
		WrongEpochNAKs: cur.WrongEpochNAKs - prev.WrongEpochNAKs,
		MapUpdates:     cur.MapUpdates - prev.MapUpdates,
		Active:         cur.Active,
	}
}

// subQM returns cur-prev field-wise.
func subQM(cur, prev qm.Counters) qm.Counters {
	return qm.Counters{
		Requests:        cur.Requests - prev.Requests,
		Grants:          cur.Grants - prev.Grants,
		PreGrants:       cur.PreGrants - prev.PreGrants,
		Promotions:      cur.Promotions - prev.Promotions,
		Rejects:         cur.Rejects - prev.Rejects,
		Backoffs:        cur.Backoffs - prev.Backoffs,
		Revokes:         cur.Revokes - prev.Revokes,
		Releases:        cur.Releases - prev.Releases,
		Conversion:      cur.Conversion - prev.Conversion,
		Aborts:          cur.Aborts - prev.Aborts,
		SnapReads:       cur.SnapReads - prev.SnapReads,
		SnapStale:       cur.SnapStale - prev.SnapStale,
		Busy:            cur.Busy - prev.Busy,
		WALSyncs:        cur.WALSyncs - prev.WALSyncs,
		Commits:         cur.Commits - prev.Commits,
		Crashes:         cur.Crashes - prev.Crashes,
		Recoveries:      cur.Recoveries - prev.Recoveries,
		Deferred:        cur.Deferred - prev.Deferred,
		ReplPulls:       cur.ReplPulls - prev.ReplPulls,
		ReplApplied:     cur.ReplApplied - prev.ReplApplied,
		ReplSkipped:     cur.ReplSkipped - prev.ReplSkipped,
		ReplResets:      cur.ReplResets - prev.ReplResets,
		WrongEpoch:      cur.WrongEpoch - prev.WrongEpoch,
		MapInstalls:     cur.MapInstalls - prev.MapInstalls,
		ItemsGained:     cur.ItemsGained - prev.ItemsGained,
		TransferPulls:   cur.TransferPulls - prev.TransferPulls,
		TransferApplied: cur.TransferApplied - prev.TransferApplied,
		TransferBytes:   cur.TransferBytes - prev.TransferBytes,
	}
}

// subWAL returns cur-prev field-wise.
func subWAL(cur, prev wal.Stats) wal.Stats {
	return wal.Stats{
		Appends:         cur.Appends - prev.Appends,
		Syncs:           cur.Syncs - prev.Syncs,
		Snapshots:       cur.Snapshots - prev.Snapshots,
		Replayed:        cur.Replayed - prev.Replayed,
		RecoveredCopies: cur.RecoveredCopies - prev.RecoveredCopies,
		Recoveries:      cur.Recoveries - prev.Recoveries,
	}
}
