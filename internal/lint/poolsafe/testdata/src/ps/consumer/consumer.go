// Package consumer exercises the poolsafe analyzer: every retention
// vector is flagged, while the wire package's own idioms — returning the
// pooled value, recycling on an error path, staging through a local value
// struct, reusing a variable after a fresh decode — stay clean.
package consumer

import "ps/internal/model"

type sink struct{ last model.Message }

type envelope struct{ Msg model.Message }

var global model.Message

func use(m model.Message) {}

func fieldEscape(s *sink) {
	m, _ := model.DecodeMessagePooled(1)
	s.last = m // want `stored into s\.last`
	model.RecycleMessage(m)
}

func globalEscape() {
	m, _ := model.DecodeMessagePooled(1)
	global = m // want `stored into package-level variable global`
	model.RecycleMessage(m)
}

func chanEscape(ch chan model.Message) {
	m, _ := model.DecodeMessagePooled(1)
	ch <- m // want `sent on a channel`
}

func goEscape() {
	m, _ := model.DecodeMessagePooled(1)
	go func() { use(m) }() // want `captured by a goroutine`
}

func appendEscape(buf []model.Message) []model.Message {
	m, _ := model.DecodeMessagePooled(1)
	return append(buf, m) // want `appended to a slice`
}

func useAfterRecycle() {
	m, _ := model.DecodeMessagePooled(1)
	model.RecycleMessage(m)
	use(m) // want `used after RecycleMessage`
}

// ok is the canonical lifetime: decode, use, recycle.
func ok() {
	m, _ := model.DecodeMessagePooled(1)
	use(m)
	model.RecycleMessage(m)
}

// okErrPath recycles on the error branch and transfers ownership to the
// caller on the happy path — both allowed.
func okErrPath() (model.Message, error) {
	m, err := model.DecodeMessagePooled(1)
	if err != nil {
		model.RecycleMessage(m)
		return nil, err
	}
	return m, nil
}

// okLocalValue stages the pooled message through a function-local value
// struct, the wire package's DecodeEnvelopePooled idiom.
func okLocalValue() {
	m, _ := model.DecodeMessagePooled(1)
	var env envelope
	env.Msg = m
	use(env.Msg)
	model.RecycleMessage(env.Msg)
}

// okLoop is the corpus-replay shape: one pooled message per iteration,
// recycled before the next.
func okLoop(n int) {
	for i := 0; i < n; i++ {
		m, _ := model.DecodeMessagePooled(1)
		use(m)
		model.RecycleMessage(m)
	}
}

// okReuse overwrites the variable with a fresh decode after recycling:
// the name is valid again.
func okReuse() {
	m, _ := model.DecodeMessagePooled(1)
	model.RecycleMessage(m)
	m, _ = model.DecodeMessagePooled(2)
	use(m)
	model.RecycleMessage(m)
}

func allowListed(s *sink) {
	m, _ := model.DecodeMessagePooled(1)
	//ucclint:allow poolsafe -- sink is drained synchronously before the recycle below
	s.last = m
	model.RecycleMessage(m)
}

// --- send-side pooled constructors (model.PooledX family) ---

func send(to int, m model.Message) {}

// okPooledSend is the canonical hot-path shape: box, hand to Send (ownership
// transfers by call — the delivery layer recycles), never touch again.
func okPooledSend() {
	send(1, model.PooledRequest(model.RequestMsg{Item: "a"}))
	g := model.PooledGrant(model.GrantMsg{Item: "b"})
	send(2, g)
}

// okPooledHarness is the bench-harness delivery-layer shape: box, deliver
// synchronously, recycle.
func okPooledHarness() {
	m := model.PooledRequest(model.RequestMsg{Item: "a"})
	use(m)
	model.RecycleMessage(m)
}

func pooledSendFieldEscape(s *sink) {
	m := model.PooledRequest(model.RequestMsg{Item: "a"})
	s.last = m // want `stored into s\.last`
	model.RecycleMessage(m)
}

func pooledSendChanEscape(ch chan model.Message) {
	g := model.PooledGrant(model.GrantMsg{Item: "b"})
	ch <- g // want `sent on a channel`
}

func pooledSendGoEscape() {
	m := model.PooledRequest(model.RequestMsg{Item: "a"})
	go func() { use(m) }() // want `captured by a goroutine`
}

func pooledSendAppendEscape(buf []model.Message) []model.Message {
	g := model.PooledGrant(model.GrantMsg{Item: "b"})
	return append(buf, g) // want `appended to a slice`
}

func pooledSendUseAfterRecycle() {
	m := model.PooledRequest(model.RequestMsg{Item: "a"})
	model.RecycleMessage(m)
	use(m) // want `used after RecycleMessage`
}
