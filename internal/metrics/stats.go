package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Welford is a numerically stable streaming mean/variance accumulator.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one sample.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the sample mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample (0 with no samples).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max returns the largest sample (0 with no samples).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// Histogram is a log₂-bucketed histogram over non-negative values, sized for
// microsecond latencies up to ~73 hours. Quantiles are approximate within a
// factor of the bucket width (≤2×).
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     float64
}

func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	b := int(math.Log2(v)) + 1
	if b > 63 {
		b = 63
	}
	return b
}

// Add records one non-negative sample.
func (h *Histogram) Add(v float64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Merge folds another histogram's samples into this one (bucket-wise sum;
// quantiles of the merge are exact at the shared bucket resolution).
func (h *Histogram) Merge(o Histogram) {
	for b, n := range o.buckets {
		h.buckets[b] += n
	}
	h.count += o.count
	h.sum += o.sum
}

// Sub returns the histogram of samples recorded since prev, where prev is an
// earlier snapshot of the same monotonically growing histogram (bucket-wise
// subtraction, clamped at zero so a mismatched pair degrades to nonsense
// counts rather than uint64 wraparound). This is how the scenario harness
// turns cumulative run histograms into per-phase latency distributions.
func (h Histogram) Sub(prev Histogram) Histogram {
	var out Histogram
	for b := range h.buckets {
		if h.buckets[b] > prev.buckets[b] {
			out.buckets[b] = h.buckets[b] - prev.buckets[b]
		}
	}
	if h.count > prev.count {
		out.count = h.count - prev.count
	}
	if h.sum > prev.sum {
		out.sum = h.sum - prev.sum
	}
	return out
}

// Mean returns the exact sample mean.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// CountAtMost returns (approximately) how many samples were ≤ v: every
// sample in a bucket whose upper edge is ≤ v, plus the fraction of the
// bucket containing v below v (linear interpolation within the bucket,
// assuming samples spread uniformly across it — the same resolution
// compromise Quantile makes with its midpoint). Counting the containing
// bucket whole would overshoot by up to one bucket width — e.g. an SLO of
// 400ms would admit everything up to 524ms, a ~31% overhang. One
// consequence of the continuous-uniform model: when v sits exactly on a
// bucket edge (a power of two) the result is the exact count of samples
// strictly below v — samples exactly equal to v landed in the bucket above
// the cut and are excluded, so the edge behaves as "< v" rather than "≤ v"
// for that measure-zero-under-the-model value. Used for SLO accounting —
// "commits that finished within the latency budget".
func (h *Histogram) CountAtMost(v float64) uint64 {
	if v < 0 {
		return 0
	}
	top := bucketOf(v)
	var n uint64
	for b := 0; b < top; b++ {
		n += h.buckets[b]
	}
	lo := 0.0
	if top > 0 {
		lo = math.Exp2(float64(top - 1))
	}
	hi := math.Exp2(float64(top))
	frac := 1.0
	if v < hi {
		frac = (v - lo) / (hi - lo)
	}
	return n + uint64(float64(h.buckets[top])*frac+0.5)
}

// Quantile returns an approximate q-quantile (q in [0,1]) using the
// geometric midpoint of the containing bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var cum uint64
	for b, n := range h.buckets {
		cum += n
		if cum > target {
			if b == 0 {
				return 0.5
			}
			lo := math.Exp2(float64(b - 1))
			hi := math.Exp2(float64(b))
			return math.Sqrt(lo * hi)
		}
	}
	return h.sum / float64(h.count)
}

// Series is a labelled sequence of (x, y) points — one figure line.
type Series struct {
	Label  string
	Points []Point
}

// Point is one measurement in a Series.
type Point struct {
	X float64
	Y float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Table is a simple column-aligned text table (the bench harness prints the
// paper's "rows" with it).
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		out := ""
		for i, c := range cells {
			if i >= len(widths) {
				break
			}
			out += fmt.Sprintf("%-*s", widths[i]+2, c)
		}
		return out
	}
	s := line(t.Header) + "\n"
	for _, r := range t.Rows {
		s += line(r) + "\n"
	}
	return s
}

// F formats a float64 compactly for table cells.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// SortedKeys returns map keys in ascending order (generic helper for
// deterministic iteration in reports).
func SortedKeys[K ~int32 | ~int | ~int64, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
