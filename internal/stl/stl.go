package stl

import (
	"fmt"
	"math"
)

// Params are the system parameters of the STL model, all in events per
// second of engine time.
type Params struct {
	// LambdaA is the total system throughput λ_A (sum of all queues' read
	// and write lock-grant rates).
	LambdaA float64
	// LambdaW and LambdaR are the average per-queue write/read throughputs
	// λ_w, λ_r.
	LambdaW float64
	LambdaR float64
	// Qr is the fraction of read requests among all requests.
	Qr float64
	// K is the average number of requests per transaction.
	K float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.LambdaA < 0 || p.LambdaW < 0 || p.LambdaR < 0 {
		return fmt.Errorf("stl: negative rate")
	}
	if p.Qr < 0 || p.Qr > 1 {
		return fmt.Errorf("stl: Qr out of [0,1]")
	}
	if p.K < 1 {
		return fmt.Errorf("stl: K must be >= 1")
	}
	return nil
}

// LambdaNew returns λnew = λw + (1−Qr)·λr, the expected additional
// throughput loss contributed by one average blocking lock grant (a read
// lock blocks writes: λw; a write lock blocks everything: λw+λr).
func (p Params) LambdaNew() float64 {
	return p.LambdaW + (1-p.Qr)*p.LambdaR
}

// LambdaBlock returns λb(λloss): the rate at which newly granted requests
// belong to transactions that also have a blocked request. The per-request
// blocking probability is λloss/λA (the blocked fraction of throughput); a
// transaction issues K requests, so a granted request blocks a queue with
// probability 1−(1−λloss/λA)^(K−1), assuming independence across sites (the
// paper's approximation).
func (p Params) LambdaBlock(lambdaLoss float64) float64 {
	if p.LambdaA <= 0 {
		return 0
	}
	frac := lambdaLoss / p.LambdaA
	if frac > 1 {
		frac = 1
	}
	if frac < 0 {
		frac = 0
	}
	return (p.LambdaA - lambdaLoss) * (1 - math.Pow(1-frac, p.K-1))
}

// Evaluator computes STL' by dynamic programming over the loss ladder and a
// uniform time grid. Construction is cheap; one evaluation costs
// O(levels · grid).
type Evaluator struct {
	p Params
	// grid is the number of time steps (resolution of the integral).
	grid int
}

// NewEvaluator builds an evaluator with the given time-grid resolution
// (0 → 64 steps, plenty for the smooth integrand).
func NewEvaluator(p Params, grid int) (*Evaluator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if grid <= 0 {
		grid = 64
	}
	return &Evaluator{p: p, grid: grid}, nil
}

// Params returns the evaluator's parameters.
func (e *Evaluator) Params() Params { return e.p }

// Evaluate returns STL'(lambdaLoss, U) with U in seconds.
func (e *Evaluator) Evaluate(lambdaLoss, U float64) float64 {
	if U <= 0 || lambdaLoss < 0 {
		return 0
	}
	if lambdaLoss >= e.p.LambdaA {
		return e.p.LambdaA * U
	}
	lnew := e.p.LambdaNew()
	if lnew <= 0 {
		// No loss accretion: blocking changes nothing, so the loss is flat.
		return lambdaLoss * U
	}
	// Number of ladder levels until the loss saturates at λA.
	levels := int(math.Ceil((e.p.LambdaA-lambdaLoss)/lnew)) + 1
	const maxLevels = 4096
	if levels > maxLevels {
		levels = maxLevels
	}

	// f[level][j] = STL'(λ + level·λnew, t_j), t_j = j·U/grid.
	//
	// Each row is computed by a probability-mass-exact one-step
	// decomposition over [0, h], h = U/grid: with probability q = e^{−λb·h}
	// no grant blocks during the step (loss λ·h, stay at this level); with
	// probability 1−q the first block lands at the conditional mean
	// x̄ = 1/λb − h·q/(1−q) and the process continues one level up with the
	// remaining horizon (linear interpolation between grid nodes). Unlike a
	// naive quadrature of the b·e^{−bx} kernel this keeps the step's
	// probability mass exactly 1, so λ·U ≤ STL' ≤ λA·U holds by
	// construction.
	f := make([][]float64, levels+1)
	h := U / float64(e.grid)

	// Top level: saturated.
	top := make([]float64, e.grid+1)
	for j := 0; j <= e.grid; j++ {
		top[j] = e.p.LambdaA * float64(j) * h
	}
	f[levels] = top

	interp := func(row []float64, tRem float64) float64 {
		pos := tRem / h
		if pos <= 0 {
			return 0
		}
		if pos >= float64(e.grid) {
			return row[e.grid]
		}
		j := int(pos)
		frac := pos - float64(j)
		return row[j]*(1-frac) + row[j+1]*frac
	}

	for lvl := levels - 1; lvl >= 0; lvl-- {
		lam := lambdaLoss + float64(lvl)*lnew
		if lam >= e.p.LambdaA {
			f[lvl] = top
			continue
		}
		b := e.p.LambdaBlock(lam)
		next := f[lvl+1]
		row := make([]float64, e.grid+1)
		if b <= 0 {
			for j := 0; j <= e.grid; j++ {
				row[j] = lam * float64(j) * h
			}
			f[lvl] = row
			continue
		}
		q := math.Exp(-b * h)
		// Conditional mean of the first-block position within the step.
		var xbar float64
		if 1-q > 1e-15 {
			xbar = 1/b - h*q/(1-q)
		} else {
			xbar = h / 2
		}
		for j := 1; j <= e.grid; j++ {
			Uj := float64(j) * h
			stay := lam*h + row[j-1]
			jump := lam*xbar + interp(next, Uj-xbar)
			row[j] = q*stay + (1-q)*jump
		}
		f[lvl] = row
	}
	return f[0][e.grid]
}
