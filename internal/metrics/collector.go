package metrics

import (
	"fmt"
	"sync"

	"ucc/internal/engine"
	"ucc/internal/model"
)

// CollectorOptions configure the metrics collector actor.
type CollectorOptions struct {
	// EstimatePeriodMicros, when positive, makes the collector broadcast
	// model.EstimateMsg to every RI on this period (required for dynamic
	// selection).
	EstimatePeriodMicros int64
	// RISites is the broadcast audience.
	RISites []model.SiteID
	// EWMAAlpha blends windowed queue rates into the running estimates.
	EWMAAlpha float64
}

// ProtoStats aggregates per-protocol measurements.
type ProtoStats struct {
	Committed uint64
	Rejected  uint64
	Victims   uint64
	// Shed counts arrivals refused by admission control (never launched);
	// Busy counts attempts aborted by a queue manager's BusyMsg NAK. Both
	// are the overload outcomes: offered = committed + shed (+ the busy-shed
	// read-only transactions); goodput counts only Committed.
	Shed          uint64
	Busy          uint64
	Attempts      uint64
	SystemTime    Welford   // S per committed txn (µs, from first arrival)
	SystemTimeH   Histogram // quantiles for S
	LockedOK      Welford   // U: lock time of successful attempts (µs)
	LockedAborted Welford   // U': lock time of aborted attempts (µs)
	Messages      Welford   // messages per committed txn (all attempts)
	AttemptsPerTx Welford   // attempts per committed txn
	BackoffReads  uint64
	BackoffWrites uint64
	ReadReqs      uint64 // logical read requests issued (all attempts)
	WriteReqs     uint64 // logical write requests issued (all attempts)
	ReadRejects   uint64
	WriteRejects  uint64
}

// Collector is the measurement-plane actor: it absorbs TxnDoneMsg and
// QueueStatsMsg streams and periodically broadcasts parameter estimates.
type Collector struct {
	mu   sync.Mutex
	opts CollectorOptions

	protos [model.NumProtocols]*ProtoStats
	sizeW  Welford // K estimator: requests per committed transaction

	// Per-site last cumulative queue stats, for rate differencing.
	lastStats map[model.SiteID]model.QueueStatsMsg
	lambdaR   map[model.ItemID]float64
	lambdaW   map[model.ItemID]float64

	startMicros int64
	lastMicros  int64
	stopped     bool
}

// NewCollector creates a collector.
func NewCollector(opts CollectorOptions) *Collector {
	if opts.EWMAAlpha <= 0 || opts.EWMAAlpha > 1 {
		opts.EWMAAlpha = 0.4
	}
	c := &Collector{
		opts:      opts,
		lastStats: map[model.SiteID]model.QueueStatsMsg{},
		lambdaR:   map[model.ItemID]float64{},
		lambdaW:   map[model.ItemID]float64{},
	}
	for i := range c.protos {
		c.protos[i] = &ProtoStats{}
	}
	return c
}

// OnMessage implements engine.Actor. The cluster posts the first TickMsg to
// start estimate broadcasting.
func (c *Collector) OnMessage(ctx engine.Context, from engine.Addr, msg model.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch v := msg.(type) {
	case model.TxnDoneMsg:
		c.onDone(v)
	case model.QueueStatsMsg:
		c.onQueueStats(v)
	case model.TickMsg:
		c.broadcast(ctx)
	case model.StopMsg:
		c.stopped = true
	default:
		panic(fmt.Sprintf("metrics: unexpected message %T", msg))
	}
	c.lastMicros = ctx.NowMicros()
}

func (c *Collector) onDone(v model.TxnDoneMsg) {
	p := c.protos[v.Protocol]
	if v.Outcome == model.OutcomeShed {
		// A shed arrival never launched an attempt or issued a request; it
		// must not dilute the request-probability estimators.
		p.Shed++
		return
	}
	p.Attempts++
	p.ReadReqs += uint64(v.Reads)
	p.WriteReqs += uint64(v.Writes)
	p.BackoffReads += uint64(v.BackoffReads)
	p.BackoffWrites += uint64(v.BackoffWrites)
	switch v.Outcome {
	case model.OutcomeCommitted:
		p.Committed++
		s := float64(v.DoneMicros - v.FirstArrivalMicros)
		p.SystemTime.Add(s)
		p.SystemTimeH.Add(s)
		p.LockedOK.Add(float64(v.LockedMicros))
		p.Messages.Add(float64(v.Messages))
		p.AttemptsPerTx.Add(float64(v.Attempts))
		if v.Protocol != model.ROSnapshot {
			// K feeds the §5 STL model, which describes queued (lock-taking)
			// traffic; snapshot reads never enter a queue.
			c.sizeW.Add(float64(v.Size))
		}
		if c.startMicros == 0 {
			c.startMicros = v.FirstArrivalMicros
		}
	case model.OutcomeRejected:
		p.Rejected++
		p.LockedAborted.Add(float64(v.LockedMicros))
		if v.RejectKind == model.OpRead {
			p.ReadRejects++
		} else {
			p.WriteRejects++
		}
	case model.OutcomeDeadlockVictim:
		p.Victims++
		p.LockedAborted.Add(float64(v.LockedMicros))
	case model.OutcomeBusy:
		p.Busy++
	}
}

func (c *Collector) onQueueStats(v model.QueueStatsMsg) {
	prev, ok := c.lastStats[v.From]
	c.lastStats[v.From] = v
	if !ok || v.AtMicros <= prev.AtMicros {
		return
	}
	window := float64(v.AtMicros-prev.AtMicros) / 1e6 // seconds
	a := c.opts.EWMAAlpha
	for item, cum := range v.ReadGrants {
		rate := float64(cum-prev.ReadGrants[item]) / window
		c.lambdaR[item] = a*rate + (1-a)*c.lambdaR[item]
	}
	for item, cum := range v.WriteGrants {
		rate := float64(cum-prev.WriteGrants[item]) / window
		c.lambdaW[item] = a*rate + (1-a)*c.lambdaW[item]
	}
}

// Estimates assembles the current model.EstimateMsg (also used directly by
// the experiment harness).
func (c *Collector) Estimates(nowMicros int64) model.EstimateMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.estimatesLocked(nowMicros)
}

func (c *Collector) estimatesLocked(nowMicros int64) model.EstimateMsg {
	est := model.EstimateMsg{
		AtMicros: nowMicros,
		LambdaR:  map[model.ItemID]float64{},
		LambdaW:  map[model.ItemID]float64{},
	}
	for k, v := range c.lambdaR {
		est.LambdaR[k] = v
		est.LambdaA += v
	}
	for k, v := range c.lambdaW {
		est.LambdaW[k] = v
		est.LambdaA += v
	}
	// Estimates describe the queued (lock-taking) traffic the STL model is
	// about, so the ROSnapshot class is excluded throughout.
	var reads, writes uint64
	for _, p := range c.protos[:len(model.Protocols)] {
		reads += p.ReadReqs
		writes += p.WriteReqs
	}
	if reads+writes > 0 {
		est.Qr = float64(reads) / float64(reads+writes)
	} else {
		est.Qr = 0.5
	}
	est.K = c.sizeW.Mean()
	if est.K == 0 {
		est.K = 4
	}
	for i, p := range c.protos[:len(model.Protocols)] {
		est.U[i] = p.LockedOK.Mean() / 1e6
		est.UPrime[i] = p.LockedAborted.Mean() / 1e6
	}
	if tw := c.protos[model.TwoPL]; tw.Victims+tw.Committed > 0 {
		est.PAbort = float64(tw.Victims) / float64(tw.Victims+tw.Committed)
	}
	if to := c.protos[model.TO]; to.ReadReqs > 0 {
		est.Pr = float64(to.ReadRejects) / float64(to.ReadReqs)
	}
	if to := c.protos[model.TO]; to.WriteReqs > 0 {
		est.PwR = float64(to.WriteRejects) / float64(to.WriteReqs)
	}
	if pa := c.protos[model.PA]; pa.ReadReqs > 0 {
		est.PB = float64(pa.BackoffReads) / float64(pa.ReadReqs)
	}
	if pa := c.protos[model.PA]; pa.WriteReqs > 0 {
		est.PBW = float64(pa.BackoffWrites) / float64(pa.WriteReqs)
	}
	return est
}

func (c *Collector) broadcast(ctx engine.Context) {
	if c.stopped || c.opts.EstimatePeriodMicros <= 0 {
		return
	}
	est := c.estimatesLocked(ctx.NowMicros())
	for _, s := range c.opts.RISites {
		ctx.Send(engine.RIAddr(s), est)
	}
	ctx.SetTimer(c.opts.EstimatePeriodMicros, model.TickMsg{})
}

// Summary is a read-only view of everything the collector measured.
type Summary struct {
	// Protocols indexes ProtoStats by model.Protocol, including the
	// ROSnapshot read-only class at index model.ROSnapshot.
	Protocols [model.NumProtocols]ProtoStats
	// SpanMicros is the measurement span (first arrival → last event).
	SpanMicros int64
	// K is the mean transaction size among committed transactions.
	K float64
}

// Summarize snapshots the collector.
func (c *Collector) Summarize() Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s Summary
	for i, p := range c.protos {
		s.Protocols[i] = *p
	}
	s.SpanMicros = c.lastMicros - c.startMicros
	s.K = c.sizeW.Mean()
	return s
}

// Delta returns the events recorded between an earlier snapshot of the same
// run and this one — the per-phase view the scenario harness reports.
// Counters and histograms subtract exactly (clamped at zero against a
// mismatched pair); the Welford accumulators (SystemTime, LockedOK,
// LockedAborted, Messages, AttemptsPerTx) are NOT delta-able — a streaming
// mean/variance cannot be unwound — so they are zeroed in the delta: phase
// latency statistics come from SystemTimeH (mean and quantiles at histogram
// resolution), which subtracts cleanly.
func (s Summary) Delta(prev Summary) Summary {
	sub := func(a, b uint64) uint64 {
		if a > b {
			return a - b
		}
		return 0
	}
	var out Summary
	for i := range s.Protocols {
		cur, old := s.Protocols[i], prev.Protocols[i]
		d := ProtoStats{
			Committed:     sub(cur.Committed, old.Committed),
			Rejected:      sub(cur.Rejected, old.Rejected),
			Victims:       sub(cur.Victims, old.Victims),
			Shed:          sub(cur.Shed, old.Shed),
			Busy:          sub(cur.Busy, old.Busy),
			Attempts:      sub(cur.Attempts, old.Attempts),
			BackoffReads:  sub(cur.BackoffReads, old.BackoffReads),
			BackoffWrites: sub(cur.BackoffWrites, old.BackoffWrites),
			ReadReqs:      sub(cur.ReadReqs, old.ReadReqs),
			WriteReqs:     sub(cur.WriteReqs, old.WriteReqs),
			ReadRejects:   sub(cur.ReadRejects, old.ReadRejects),
			WriteRejects:  sub(cur.WriteRejects, old.WriteRejects),
			SystemTimeH:   cur.SystemTimeH.Sub(old.SystemTimeH),
		}
		out.Protocols[i] = d
	}
	out.SpanMicros = s.SpanMicros - prev.SpanMicros
	if out.SpanMicros < 0 {
		out.SpanMicros = 0
	}
	out.K = s.K
	return out
}

// TotalCommitted sums commits across protocols.
func (s Summary) TotalCommitted() uint64 {
	var n uint64
	for _, p := range s.Protocols {
		n += p.Committed
	}
	return n
}

// CommittedWithin counts commits whose system time was ≤ sloMicros across
// all protocols (histogram-resolution approximate; an sloMicros exactly on
// a log₂ bucket edge is counted exactly but excludes commits at precisely
// that edge value — see Histogram.CountAtMost). Goodput under overload is
// this divided by the arrival window: a commit that took seconds is not
// good service, however eventually it drained.
func (s Summary) CommittedWithin(sloMicros int64) uint64 {
	var n uint64
	for _, p := range s.Protocols {
		n += p.SystemTimeH.CountAtMost(float64(sloMicros))
	}
	return n
}

// TotalShed sums admission-refused arrivals across protocols.
func (s Summary) TotalShed() uint64 {
	var n uint64
	for _, p := range s.Protocols {
		n += p.Shed
	}
	return n
}

// TotalBusy sums busy-NAK'd attempts across protocols.
func (s Summary) TotalBusy() uint64 {
	var n uint64
	for _, p := range s.Protocols {
		n += p.Busy
	}
	return n
}

// Throughput returns committed transactions per second of engine time.
func (s Summary) Throughput() float64 {
	if s.SpanMicros <= 0 {
		return 0
	}
	return float64(s.TotalCommitted()) / (float64(s.SpanMicros) / 1e6)
}

// MeanSystemTimeMicros returns S averaged across all committed transactions.
func (s Summary) MeanSystemTimeMicros() float64 {
	var n uint64
	var sum float64
	for _, p := range s.Protocols {
		n += p.SystemTime.N()
		sum += p.SystemTime.Mean() * float64(p.SystemTime.N())
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
