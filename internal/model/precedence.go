package model

import "fmt"

// Precedence is an element of the unified precedence space (UPS) of §4.1.
// The space is the timestamp space extended with tie-break coordinates so
// that the per-item order is total:
//
//  1. compare the timestamp values;
//  2. if tied, compare the site ids of the transactions, with a 2PL
//     controlled transaction regarded as having the biggest site id;
//  3. if still tied, both requests are 2PL or both are not: two 2PL requests
//     compare by arrival order at the data queue; otherwise by transaction
//     id.
//
// For T/O and PA requests TS is the transaction's (possibly backed-off)
// timestamp. For 2PL requests TS is assigned by the data queue on arrival:
// the biggest timestamp that has ever appeared in that queue (so the request
// joins at the FCFS tail).
type Precedence struct {
	// TS is the timestamp coordinate.
	TS Timestamp
	// Is2PL marks 2PL-controlled requests, which compare as having the
	// biggest site id among equal timestamps.
	Is2PL bool
	// Site is the issuing transaction's user site (tie-break for non-2PL).
	Site SiteID
	// Arrival is the per-queue arrival sequence number (tie-break for 2PL
	// pairs). It is assigned by the queue manager on insertion.
	Arrival uint64
	// Txn is the issuing transaction (final tie-break for non-2PL pairs).
	Txn TxnID
}

// Compare totally orders two precedences per §4.1. It returns a negative
// number, zero, or a positive number as p sorts before, equal to, or after o.
// Zero only occurs for a precedence compared with itself (same transaction's
// request in the same queue).
func (p Precedence) Compare(o Precedence) int {
	// Step 1: the timestamp values.
	if p.TS != o.TS {
		if p.TS < o.TS {
			return -1
		}
		return 1
	}
	// Step 2: site ids, with 2PL as the biggest site id.
	if p.Is2PL != o.Is2PL {
		if p.Is2PL {
			return 1
		}
		return -1
	}
	if p.Is2PL {
		// Step 3, both 2PL: arrival order at this data queue.
		switch {
		case p.Arrival < o.Arrival:
			return -1
		case p.Arrival > o.Arrival:
			return 1
		default:
			return 0
		}
	}
	// Step 2 continued for non-2PL: site ids…
	if p.Site != o.Site {
		if p.Site < o.Site {
			return -1
		}
		return 1
	}
	// Step 3, both non-2PL: transaction ids.
	return p.Txn.Compare(o.Txn)
}

// Less reports whether p precedes o in the unified order.
func (p Precedence) Less(o Precedence) bool { return p.Compare(o) < 0 }

func (p Precedence) String() string {
	tag := "ts"
	if p.Is2PL {
		tag = "2pl"
	}
	return fmt.Sprintf("%s(%d,s%d,a%d,%s)", tag, p.TS, p.Site, p.Arrival, p.Txn)
}
