package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"ucc/internal/engine"
	"ucc/internal/history"
	"ucc/internal/metrics"
	"ucc/internal/model"
	"ucc/internal/qm"
	"ucc/internal/storage"
)

// ---------------------------------------------------------------------------
// Wall-clock shard-scaling harness
//
// The virtual-time simulator delivers every event on one goroutine, so it
// can prove sharding is CORRECT but never that it is FAST. This harness
// measures the real thing: W issuer goroutines drive one site's sharded
// queue manager concurrently — exactly the shape the runtime engine
// produces, where each shard address owns a mailbox goroutine and the shard
// mutex is the only serialization. Each worker owns a disjoint slice of the
// item space (its transactions conflict with nobody), so with S shards the
// site's lock table splits S ways and conflict-free throughput should scale
// with min(S, W, cores). The hot-shard mode restricts every worker to items
// hashing to shard 0: the same worker count then collides on one shard
// mutex no matter how many shards exist — the workload where sharding does
// not help.
// ---------------------------------------------------------------------------

// ShardBenchResult is one harness measurement.
type ShardBenchResult struct {
	Shards     int
	Workers    int
	Txns       uint64
	ElapsedSec float64
	// Throughput is committed transactions per wall-clock second.
	Throughput float64
	// AllocsPerTxn is the heap-allocation cost of one committed transaction:
	// the runtime.MemStats.Mallocs delta across the worker phase divided by
	// committed transactions. It is the number the bench gate holds a
	// lower-is-better baseline against — the zero-alloc hot path's scorecard.
	AllocsPerTxn float64
	// Serializable is the conflict-graph checker's verdict over the full
	// recorded history (it must hold at any shard count).
	Serializable bool
}

// shardBenchCtx is the engine.Context a harness worker hands the manager:
// sends are captured synchronously (the worker IS the issuer), timers are
// dropped (the harness runs no group-commit window or stats period).
type shardBenchCtx struct {
	self engine.Addr
	rng  *rand.Rand
	sent []engine.Envelope
}

func (c *shardBenchCtx) NowMicros() int64  { return time.Now().UnixMicro() }
func (c *shardBenchCtx) Self() engine.Addr { return c.self }
func (c *shardBenchCtx) Rand() *rand.Rand  { return c.rng }
func (c *shardBenchCtx) Send(to engine.Addr, msg model.Message) {
	c.sent = append(c.sent, engine.Envelope{From: c.self, To: to, Msg: msg})
}
func (c *shardBenchCtx) SetTimer(delayMicros int64, msg model.Message) {}

// recycleSent returns every captured outbound message to its pool and resets
// the capture buffer. The harness is the delivery layer for the shard's
// replies, so recycling here is what the runtime mailbox loop does after
// OnMessage in production.
func (c *shardBenchCtx) recycleSent() {
	for i := range c.sent {
		model.RecycleMessage(c.sent[i].Msg)
		c.sent[i] = engine.Envelope{}
	}
	c.sent = c.sent[:0]
}

// ShardThroughput measures one site's queue manager under W concurrent
// issuer workers, each committing txnsPerWorker uniform read-write
// transactions (size 4, half the operations writes) against its own slice
// of the item space. hotShard restricts every worker to items hashing to
// shard 0. The full history is recorded and conflict-graph checked.
func ShardThroughput(shards, workers, txnsPerWorker int, hotShard bool, seed int64) ShardBenchResult {
	if shards < 1 {
		shards = 1
	}
	if workers < 1 {
		workers = 1
	}
	const txnSize = 4
	items := workers * 64

	st := storage.NewStore(0)
	for i := 0; i < items; i++ {
		st.Create(model.ItemID(i), 100)
	}
	rec := history.NewRecorder()
	m := qm.New(0, st, rec, qm.Options{Shards: shards})

	// Disjoint per-worker item universes: the admissible items (all of them,
	// or just the hot shard's) are dealt round-robin across workers.
	// Disjointness means requests grant synchronously — the harness measures
	// the manager's capacity, not a contention profile (the sim experiments
	// own that question).
	universes := make([][]model.ItemID, workers)
	dealt := 0
	for i := 0; i < items; i++ {
		if hotShard && model.ShardOfItem(model.ItemID(i), shards) != 0 {
			continue
		}
		universes[dealt%workers] = append(universes[dealt%workers], model.ItemID(i))
		dealt++
	}
	for w, u := range universes {
		if len(u) < txnSize {
			panic(fmt.Sprintf("experiments: worker %d universe too small (%d items)", w, len(u)))
		}
	}

	var wg sync.WaitGroup
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			site := model.SiteID(w + 1)
			ctx := &shardBenchCtx{
				self: engine.RIAddr(site),
				rng:  rand.New(rand.NewSource(seed ^ int64(w)<<20)),
			}
			universe := universes[w]
			ts := model.Timestamp(1)
			chosen := make([]model.ItemID, 0, txnSize)
			kinds := make([]model.OpKind, 0, txnSize)
			for n := 0; n < txnsPerWorker; n++ {
				txn := model.TxnID{Site: site, Seq: uint64(n + 1)}
				ts++
				chosen = chosen[:0]
				kinds = kinds[:0]
				for len(chosen) < txnSize {
					it := universe[ctx.rng.Intn(len(universe))]
					dup := false
					for _, c := range chosen {
						if c == it {
							dup = true
							break
						}
					}
					if dup {
						continue
					}
					chosen = append(chosen, it)
					kind := model.OpRead
					if ctx.rng.Intn(2) == 0 {
						kind = model.OpWrite
					}
					kinds = append(kinds, kind)
				}
				for i, it := range chosen {
					// Pooled request, recycled once OnMessage returns: the
					// worker is issuer and delivery layer in one, so it owns
					// both ends of the Send contract.
					req := model.PooledRequest(model.RequestMsg{
						Txn: txn, Protocol: model.PA, Kind: kinds[i],
						Copy: model.CopyID{Item: it, Site: 0},
						TS:   ts, Interval: 1, Site: site,
					})
					m.OnMessage(ctx, ctx.self, req)
					model.RecycleMessage(req)
				}
				grants := 0
				for _, env := range ctx.sent {
					if _, ok := env.Msg.(*model.GrantMsg); ok {
						grants++
					}
				}
				if grants != txnSize {
					panic(fmt.Sprintf("experiments: worker %d txn %d got %d/%d grants (universes not disjoint?)",
						w, n, grants, txnSize))
				}
				ctx.recycleSent()
				commit := time.Now().UnixMicro()
				for i, it := range chosen {
					rel := model.PooledRelease(model.ReleaseMsg{
						Txn: txn, Copy: model.CopyID{Item: it, Site: 0},
						HasWrite: kinds[i] == model.OpWrite, Value: int64(n),
						CommitMicros: commit,
					})
					m.OnMessage(ctx, ctx.self, rel)
					model.RecycleMessage(rel)
				}
				ctx.recycleSent()
				rec.Committed(txn, model.PA)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	check := rec.Check()
	total := uint64(workers * txnsPerWorker)
	return ShardBenchResult{
		Shards:       shards,
		Workers:      workers,
		Txns:         total,
		ElapsedSec:   elapsed,
		Throughput:   float64(total) / elapsed,
		AllocsPerTxn: float64(memAfter.Mallocs-memBefore.Mallocs) / float64(total),
		Serializable: check.Serializable &&
			check.Txns == workers*txnsPerWorker,
	}
}

// Exp11 sweeps the shard count on the wall-clock harness, uniform vs
// hot-shard mix, and reports throughput scaling. Unlike every other
// experiment this one measures wall time and so depends on the host's
// cores; the claim gate (≥1.5x at shards=4) applies on 4+ core machines.
func Exp11(cfg RunConfig) Result {
	sweep := []int{1, 2, 4, 8}
	txns := 4000
	if cfg.Quick {
		sweep = []int{1, 4}
		txns = 1500
	}
	const workers = 4

	table := &metrics.Table{Header: []string{
		"shards", "uniform (txn/s)", "speedup", "hot-shard (txn/s)", "speedup", "serializable",
	}}
	var baseUniform, baseHot float64
	var notes []string
	for _, s := range sweep {
		u := ShardThroughput(s, workers, txns, false, cfg.Seed)
		h := ShardThroughput(s, workers, txns, true, cfg.Seed+1)
		if s == sweep[0] {
			baseUniform, baseHot = u.Throughput, h.Throughput
		}
		table.AddRow(
			fmt.Sprint(s),
			metrics.F(u.Throughput),
			metrics.F(u.Throughput/baseUniform),
			metrics.F(h.Throughput),
			metrics.F(h.Throughput/baseHot),
			yesNo(u.Serializable)+"/"+yesNo(h.Serializable),
		)
		if !u.Serializable || !h.Serializable {
			notes = append(notes, fmt.Sprintf("VIOLATION at shards=%d (uniform=%v hot=%v)",
				s, u.Serializable, h.Serializable))
		}
	}
	notes = append(notes,
		fmt.Sprintf("wall-clock harness: %d issuer workers, GOMAXPROCS=%d, %d cores — speedups need cores ≥ shards",
			workers, runtime.GOMAXPROCS(0), runtime.NumCPU()),
		"uniform: each worker's items spread across every shard (hash), so S shards split the site's lock table S ways",
		"hot-shard: every access hashes to shard 0 — sharding cannot help a skewed key space; spread the keys instead",
	)
	return Result{
		ID:     "EXP-11",
		Title:  "Queue-manager sharding: throughput scaling",
		Claim:  "beyond the paper: partitioning a site's queue manager by item hash scales conflict-free read-write throughput with cores (≥1.5x at 4 shards on 4+ cores), while a hot-shard skew defeats it — and every execution stays conflict serializable",
		Tables: []*metrics.Table{table},
		Notes:  notes,
	}
}
