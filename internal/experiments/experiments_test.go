package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// TestAllExperimentsQuick smoke-runs every registered experiment in Quick
// mode: each must complete, produce at least one non-empty table, and
// render.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run(RunConfig{Quick: true, Seed: 1})
			if res.ID != e.ID {
				t.Fatalf("result id %q", res.ID)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables")
			}
			for i, tb := range res.Tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("table %d empty", i)
				}
			}
			s := res.String()
			if !strings.Contains(s, e.ID) || !strings.Contains(s, "paper claim") {
				t.Fatalf("rendering broken:\n%s", s)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("EXP-1"); !ok {
		t.Fatal("EXP-1 missing")
	}
	if _, ok := ByID("exp-1"); !ok {
		t.Fatal("lookup must be case-insensitive")
	}
	if _, ok := ByID("EXP-99"); ok {
		t.Fatal("phantom experiment")
	}
}

// TestExp10ReadPathSpeedup is the acceptance gate for the read-only
// snapshot fast path: on the ≥90%-read closed-loop mix, every sweep point
// must show at least 2x committed throughput with the path on vs off, stay
// conflict serializable both ways, and never serve a stale (GC'd-past)
// snapshot read. The sim is virtual-time deterministic, so asserting on a
// throughput ratio is seed-stable, not flaky.
func TestExp10ReadPathSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	res := Exp10(RunConfig{Quick: true, Seed: 1988})
	for _, n := range res.Notes {
		if strings.Contains(n, "VIOLATION") || strings.Contains(n, "STALE") {
			t.Fatalf("invariant violated: %v", res.Notes)
		}
	}
	for _, row := range res.Tables[0].Rows {
		var speedup float64
		if _, err := fmt.Sscanf(row[3], "%f", &speedup); err != nil {
			t.Fatalf("unparseable speedup %q: %v", row[3], err)
		}
		if speedup < 2 {
			t.Fatalf("speedup %.2f < 2 at inflight=%s (row %v)", speedup, row[0], row)
		}
	}
}

// TestExp11ShardScaling is the acceptance gate for queue-manager sharding:
// on a 4+ core machine, shards=4 must deliver ≥1.5x the uniform read-write
// throughput of shards=1 at the same worker count, with the conflict-graph
// checker passing at every point. The wall-clock ratio needs real cores, so
// the speedup assertion only runs where the hardware can express it; the
// serializability half of the gate runs everywhere.
func TestExp11ShardScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	base := ShardThroughput(1, 4, 3000, false, 11)
	sharded := ShardThroughput(4, 4, 3000, false, 11)
	if !base.Serializable || !sharded.Serializable {
		t.Fatalf("conflict-graph check failed (shards=1: %v, shards=4: %v)",
			base.Serializable, sharded.Serializable)
	}
	if runtime.NumCPU() < 4 || runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("speedup gate needs 4+ cores (have NumCPU=%d GOMAXPROCS=%d); correctness half passed",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	speedup := sharded.Throughput / base.Throughput
	t.Logf("shards=1: %.0f txn/s, shards=4: %.0f txn/s (%.2fx)",
		base.Throughput, sharded.Throughput, speedup)
	if speedup < 1.5 {
		// One retry absorbs a noisy neighbour on shared CI runners before
		// declaring a real scaling regression.
		base = ShardThroughput(1, 4, 3000, false, 13)
		sharded = ShardThroughput(4, 4, 3000, false, 13)
		speedup = sharded.Throughput / base.Throughput
		t.Logf("retry: shards=1: %.0f txn/s, shards=4: %.0f txn/s (%.2fx)",
			base.Throughput, sharded.Throughput, speedup)
	}
	if speedup < 1.5 {
		t.Fatalf("shards=4 speedup %.2fx < 1.5x", speedup)
	}
}

// TestExp12OverloadGoodput is the acceptance gate for the backpressure
// stack: at 4x the measured capacity, the defended system (bounded data
// queues + AIMD admission control) must keep SLO-goodput at ≥80% of its
// sweep peak with a bounded tail and every data queue within its configured
// cap, while the undefended run proves the counterfactual — queues past the
// bound and a diverging p99. Virtual-time deterministic, so the assertions
// are seed-stable.
func TestExp12OverloadGoodput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	points := OverloadSweep(RunConfig{Quick: true, Seed: 1988}, []float64{1, 4}, 2_000_000)
	var peak float64
	for _, p := range points {
		if !p.SerializableOn || !p.SerializableOff {
			t.Fatalf("serializability violated at %.1fx (on=%v off=%v)",
				p.Multiple, p.SerializableOn, p.SerializableOff)
		}
		if p.DepthOn > p.QueueBound {
			t.Fatalf("data queue exceeded its bound at %.1fx: depth %d > %d",
				p.Multiple, p.DepthOn, p.QueueBound)
		}
		if p.GoodputOn > peak {
			peak = p.GoodputOn
		}
	}
	last := points[len(points)-1]
	if last.Multiple < 4 {
		t.Fatalf("sweep did not reach 4x saturation: %+v", last)
	}
	t.Logf("4x: goodput on %.0f/s (peak %.0f), p99 on %.0fms, shed %d, busy %d, depth on/off %d/%d",
		last.GoodputOn, peak, last.P99OnMs, last.Shed, last.Busy, last.DepthOn, last.DepthOff)
	if last.GoodputOn < 0.8*peak {
		t.Fatalf("goodput at 4x = %.0f/s, below 80%% of peak %.0f/s", last.GoodputOn, peak)
	}
	if last.Shed == 0 {
		t.Fatal("admission control shed nothing at 4x saturation; the controller is not engaging")
	}
	if last.P99OnMs > 1000 {
		t.Fatalf("defended p99 %.0fms not bounded at 4x", last.P99OnMs)
	}
	if last.DepthOff <= last.QueueBound {
		t.Fatalf("undefended queues stayed at %d ≤ bound %d: the sweep is not actually overloading",
			last.DepthOff, last.QueueBound)
	}
}

// TestExp14QuorumFailover is the acceptance gate for quorum replication
// with log-shipping catch-up: on every swept outage length, the outage-window
// commit rate must hold at least 30% of the pre-crash rate (a bounded dip,
// never a stall), the run must stay conflict serializable, all three copies
// of every item must agree after recovery + catch-up, and the recovered
// site's watermarks must have advanced against both peers. Virtual-time
// deterministic, so the thresholds are seed-stable.
func TestExp14QuorumFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	points := QuorumFailoverSweep(RunConfig{Quick: true, Seed: 1988}, []int64{-1, 500_000, 1_000_000})
	for _, p := range points {
		if !p.Serializable {
			t.Fatalf("serializability violated at outage %dus", p.OutageUs)
		}
		if !p.ReplicasAgree {
			t.Fatalf("replicas diverged after catch-up at outage %dus", p.OutageUs)
		}
		if p.OutageRate < 0.3*p.PreRate {
			t.Fatalf("outage %dus: commit rate %.0f/s fell below 30%% of pre-crash %.0f/s — quorum did not mask the dead site",
				p.OutageUs, p.OutageRate, p.PreRate)
		}
		if p.ReplApplied == 0 {
			t.Fatalf("outage %dus: no shipped records applied; the catch-up plane never ran", p.OutageUs)
		}
		if p.OutageUs >= 0 && p.DeadSiteMarks != 2 {
			t.Fatalf("outage %dus: recovered site advanced %d peer watermarks, want 2", p.OutageUs, p.DeadSiteMarks)
		}
		t.Logf("outage=%dus pre=%.0f/s during=%.0f/s committed=%d applied=%d partialRounds=%d",
			p.OutageUs, p.PreRate, p.OutageRate, p.Committed, p.ReplApplied, p.PartialRounds)
	}
}

// TestExp15RebalanceDip is the acceptance gate for online rebalance over the
// versioned partition map: while a quarter of the items — the whole hot set —
// change owner mid-run, the move-window commit rate must hold at least 50% of
// the steady (pre-move) rate, the run must stay conflict serializable, the
// replicas of every item must agree under the FINAL map, and the snapshot
// transfer plane must actually have streamed records into the gained copies.
// Virtual-time deterministic, so the thresholds are seed-stable.
func TestExp15RebalanceDip(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	points := RebalanceSweep(RunConfig{Quick: true, Seed: 1988}, []float64{0, 0.25})
	for _, p := range points {
		if !p.Serializable {
			t.Fatalf("serializability violated at moved frac %.2f", p.Frac)
		}
		if !p.ReplicasAgree {
			t.Fatalf("replicas diverged under the final map at moved frac %.2f", p.Frac)
		}
		if p.Frac > 0 {
			if p.MoveRate < 0.5*p.PreRate {
				t.Fatalf("moved frac %.2f: move-window rate %.0f/s fell below 50%% of steady %.0f/s — the rebalance stalled traffic",
					p.Frac, p.MoveRate, p.PreRate)
			}
			if p.MapInstalls == 0 {
				t.Fatalf("moved frac %.2f: no map installs; the epoch was never published", p.Frac)
			}
			if p.TransferRecs == 0 {
				t.Fatalf("moved frac %.2f: no transfer records applied; the gained copies were never filled", p.Frac)
			}
		}
		t.Logf("frac=%.2f moved=%d pre=%.0f/s move=%.0f/s post=%.0f/s naks=%d installs=%d transferRecs=%d",
			p.Frac, p.MovedItems, p.PreRate, p.MoveRate, p.PostRate, p.WrongEpoch, p.MapInstalls, p.TransferRecs)
	}
}

func TestExp5SerializabilityGate(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	res := Exp5(RunConfig{Quick: true, Seed: 3})
	for _, n := range res.Notes {
		if strings.Contains(n, "VIOLATION") {
			t.Fatalf("serializability violation: %v", res.Notes)
		}
	}
	// Every row must say "yes" in the serializable column.
	for _, row := range res.Tables[0].Rows {
		if row[2] != "yes" {
			t.Fatalf("row not serializable: %v", row)
		}
	}
}
