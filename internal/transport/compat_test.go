package transport

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ucc/internal/engine"
	"ucc/internal/model"
	"ucc/internal/wire"
)

// The codec-compat matrix: every pairing of a wire-v3 node with a legacy
// wire-v2 (gob) peer must interoperate, because rolling upgrades run mixed
// fleets. The legacy side is simulated faithfully by test doubles that speak
// exactly what the pre-v3 implementation spoke: a version byte 2, then a
// pipelined gob stream of WireEnvelope values, and a listener that closes
// any connection whose version byte is not 2 — which is precisely the
// behavior the v3 dialer's fallback negotiation relies on.

// legacyListener mimics an old node's accept side: version byte must be 2,
// then gob WireEnvelopes, delivered to got. It never writes — old listeners
// sent no negotiation ack.
type legacyListener struct {
	ln    net.Listener
	mu    sync.Mutex
	conns []net.Conn
	got   []engine.Envelope
	done  chan struct{}
	want  int
}

func newLegacyListener(t *testing.T, want int) *legacyListener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := &legacyListener{ln: ln, done: make(chan struct{}), want: want}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			l.mu.Lock()
			l.conns = append(l.conns, c)
			l.mu.Unlock()
			go l.serve(c)
		}
	}()
	return l
}

func (l *legacyListener) serve(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	ver, err := br.ReadByte()
	if err != nil || ver != WireVersionV2 {
		return // exactly the old readLoop: unknown era, close the conn
	}
	dec := gob.NewDecoder(br)
	for {
		var w WireEnvelope
		if err := dec.Decode(&w); err != nil {
			return
		}
		l.mu.Lock()
		l.got = append(l.got, fromWire(w))
		if len(l.got) == l.want {
			close(l.done)
		}
		l.mu.Unlock()
	}
}

// Close kills the listener and every accepted connection — the whole legacy
// process going away, as a node replacement does.
func (l *legacyListener) Close() {
	l.ln.Close()
	l.mu.Lock()
	for _, c := range l.conns {
		c.Close()
	}
	l.mu.Unlock()
}

// dialLegacyV2 mimics an old node's writer: version byte 2 raw, then a
// pipelined gob stream.
func dialLegacyV2(t *testing.T, addr string) (net.Conn, *gob.Encoder) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte{WireVersionV2}); err != nil {
		t.Fatal(err)
	}
	return c, gob.NewEncoder(c)
}

func siteAssign(a engine.Addr) string { return fmt.Sprintf("site%d", a.ID) }

func waitRecorder(t *testing.T, r *recorder, what string) {
	t.Helper()
	select {
	case <-r.done:
	case <-time.After(10 * time.Second):
		r.mu.Lock()
		n := len(r.got)
		r.mu.Unlock()
		t.Fatalf("%s: timed out with %d/%d messages", what, n, r.want)
	}
}

// TestCompatV3ToV3: two current nodes negotiate v3 — no gob anywhere — and
// the codec counters show framed traffic both ways.
func TestCompatV3ToV3(t *testing.T) {
	rtA := engine.NewRuntime(engine.FixedLatency{}, 1)
	rtB := engine.NewRuntime(engine.FixedLatency{}, 2)
	defer rtA.Shutdown()
	defer rtB.Shutdown()

	nodeB, err := NewNode(rtB, "site1", "127.0.0.1:0", Topology{Peers: map[string]string{}, Assign: siteAssign})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	nodeA, err := NewNode(rtA, "site0", "", Topology{Peers: map[string]string{"site1": nodeB.Addr()}, Assign: siteAssign})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()

	const total = 50
	recv := &recorder{done: make(chan struct{}), want: total}
	rtB.Register(engine.QMAddr(1), recv)
	for i := 0; i < total; i++ {
		nodeA.forward(engine.Envelope{
			From: engine.RIAddr(0), To: engine.QMAddr(1),
			Msg: model.RequestMsg{Txn: model.TxnID{Site: 0, Seq: uint64(i)}, TS: model.Timestamp(i)},
		})
	}
	waitRecorder(t, recv, "v3→v3")

	a, b := nodeA.Wire().Snapshot(), nodeB.Wire().Snapshot()
	if a.V3Conns == 0 || a.V2Fallbacks != 0 {
		t.Fatalf("dialer negotiated v3Conns=%d v2Fallbacks=%d, want v3 only", a.V3Conns, a.V2Fallbacks)
	}
	if a.MsgsOut != total || b.MsgsIn != total {
		t.Fatalf("codec counters: out=%d in=%d, want %d both", a.MsgsOut, b.MsgsIn, total)
	}
	if a.BytesOut == 0 || b.BytesIn == 0 {
		t.Fatalf("byte counters stayed zero: out=%d in=%d", a.BytesOut, b.BytesIn)
	}
	// The density win is the codec's point: a RequestMsg envelope frame is
	// ~20 bytes where gob's per-message overhead alone is several times that.
	if perMsg := a.BytesPerMsgOut(); perMsg > 64 {
		t.Fatalf("v3 stream averages %.1f B/msg for small requests — suspiciously gob-sized", perMsg)
	}
}

// TestCompatV3DialerToV2Listener: a current node sending to an old node must
// detect the missing ack, fall back to the v2 gob stream, and deliver every
// message — a rolling upgrade's new→old direction.
func TestCompatV3DialerToV2Listener(t *testing.T) {
	rtA := engine.NewRuntime(engine.FixedLatency{}, 1)
	defer rtA.Shutdown()

	const total = 40
	legacy := newLegacyListener(t, total)
	defer legacy.Close()

	nodeA, err := NewNode(rtA, "site0", "", Topology{Peers: map[string]string{"site1": legacy.ln.Addr().String()}, Assign: siteAssign})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()

	for i := 0; i < total; i++ {
		nodeA.forward(engine.Envelope{
			From: engine.RIAddr(0), To: engine.QMAddr(1),
			Msg: model.ReleaseMsg{Txn: model.TxnID{Site: 0, Seq: uint64(i)}, HasWrite: true, Value: int64(i), CommitMicros: int64(i) * 10},
		})
	}
	select {
	case <-legacy.done:
	case <-time.After(10 * time.Second):
		legacy.mu.Lock()
		n := len(legacy.got)
		legacy.mu.Unlock()
		t.Fatalf("legacy listener timed out with %d/%d messages", n, total)
	}
	legacy.mu.Lock()
	first := legacy.got[0]
	legacy.mu.Unlock()
	if m, ok := first.Msg.(model.ReleaseMsg); !ok || !m.HasWrite {
		t.Fatalf("legacy side decoded %T %+v, want the ReleaseMsg", first.Msg, first.Msg)
	}
	s := nodeA.Wire().Snapshot()
	if s.V2Fallbacks == 0 {
		t.Fatalf("no v2 fallback recorded (v3Conns=%d) — what did the legacy peer speak?", s.V3Conns)
	}
	if s.V3Conns != 0 {
		t.Fatalf("v3Conns=%d against a legacy-only peer", s.V3Conns)
	}
}

// TestCompatV2DialerToV3Listener: an old node sending to a current node — a
// rolling upgrade's old→new direction. The v2 gob stream must decode and
// inject exactly as it did before the upgrade.
func TestCompatV2DialerToV3Listener(t *testing.T) {
	rtB := engine.NewRuntime(engine.FixedLatency{}, 2)
	defer rtB.Shutdown()

	nodeB, err := NewNode(rtB, "site1", "127.0.0.1:0", Topology{Peers: map[string]string{}, Assign: siteAssign})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()

	const total = 40
	recv := &recorder{done: make(chan struct{}), want: total}
	rtB.Register(engine.QMAddr(1), recv)

	c, enc := dialLegacyV2(t, nodeB.Addr())
	defer c.Close()
	for i := 0; i < total; i++ {
		env := engine.Envelope{
			From: engine.RIAddr(0), To: engine.QMAddr(1),
			Msg: model.RequestMsg{Txn: model.TxnID{Site: 0, Seq: uint64(i)}, Kind: model.OpWrite, TS: model.Timestamp(i)},
		}
		if err := enc.Encode(toWire(env)); err != nil {
			t.Fatal(err)
		}
	}
	waitRecorder(t, recv, "v2→v3")
	recv.mu.Lock()
	defer recv.mu.Unlock()
	for i, m := range recv.got {
		req, ok := m.(model.RequestMsg)
		if !ok || req.TS != model.Timestamp(i) {
			t.Fatalf("message %d decoded as %T %+v, want ordered RequestMsg", i, m, m)
		}
	}
	if in := nodeB.Wire().Snapshot().MsgsIn; in != total {
		t.Fatalf("v3 listener counted %d inbound msgs over the v2 stream, want %d", in, total)
	}
}

// TestCompatRenegotiatesPerDial: version choice is per connection, not per
// peer — after a fallback conn dies, the next dial re-probes, so a peer that
// restarts upgraded is spoken to in v3 without the sender restarting.
func TestCompatRenegotiatesPerDial(t *testing.T) {
	rtA := engine.NewRuntime(engine.FixedLatency{}, 1)
	rtB := engine.NewRuntime(engine.FixedLatency{}, 2)
	defer rtA.Shutdown()
	defer rtB.Shutdown()

	legacy := newLegacyListener(t, 1)
	legacyAddr := legacy.ln.Addr().String()

	nodeA, err := NewNode(rtA, "site0", "", Topology{Peers: map[string]string{"site1": legacyAddr}, Assign: siteAssign})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()

	nodeA.forward(engine.Envelope{
		From: engine.RIAddr(0), To: engine.QMAddr(1),
		Msg: model.RequestMsg{Txn: model.TxnID{Site: 0, Seq: 1}},
	})
	select {
	case <-legacy.done:
	case <-time.After(10 * time.Second):
		t.Fatal("legacy peer never got the first message")
	}
	if s := nodeA.Wire().Snapshot(); s.V2Fallbacks == 0 {
		t.Fatalf("expected a v2 fallback against the legacy peer, got %+v", s)
	}

	// "Upgrade" the peer: the legacy process goes away and a v3 node takes
	// over its address.
	legacy.Close()
	time.Sleep(50 * time.Millisecond) // let the port release
	ln, err := net.Listen("tcp", legacyAddr)
	if err != nil {
		t.Skipf("could not rebind the legacy address (%v); upgrade half of the matrix skipped", err)
	}
	ln.Close()
	nodeB, err := NewNode(rtB, "site1", legacyAddr, Topology{Peers: map[string]string{}, Assign: siteAssign})
	if err != nil {
		t.Skipf("could not rebind the legacy address (%v); upgrade half of the matrix skipped", err)
	}
	defer nodeB.Close()
	recv := &recorder{done: make(chan struct{}), want: 1}
	rtB.Register(engine.QMAddr(1), recv)

	// The old fallback conn is dead (its listener closed); the writer's
	// retry dials fresh and must re-probe to v3 against the upgraded peer.
	deadline := time.Now().Add(10 * time.Second)
	for {
		nodeA.forward(engine.Envelope{
			From: engine.RIAddr(0), To: engine.QMAddr(1),
			Msg: model.RequestMsg{Txn: model.TxnID{Site: 0, Seq: 2}},
		})
		select {
		case <-recv.done:
		case <-time.After(200 * time.Millisecond):
			if time.Now().Before(deadline) {
				continue
			}
			t.Fatal("upgraded peer never received a message")
		}
		break
	}
	if s := nodeA.Wire().Snapshot(); s.V3Conns == 0 {
		t.Fatalf("sender never renegotiated v3 after the peer upgraded: %+v", s)
	}
}

// rogueReq embeds RequestMsg (so it is Sheddable via the promoted Busy) but
// is a distinct type with no wire tag — an unencodable sheddable envelope.
type rogueReq struct{ model.RequestMsg }

// TestEncodeFailureNAKsSheddable: a v3 per-envelope encode failure must
// behave like every other transport drop — BusyMsg NAK'd back to the local
// sender (silence would strand the attempt in negotiation forever), counted
// dropped and NOT counted sent — while the stream stays alive for the rest
// of the batch.
func TestEncodeFailureNAKsSheddable(t *testing.T) {
	rtA := engine.NewRuntime(engine.FixedLatency{}, 1)
	rtB := engine.NewRuntime(engine.FixedLatency{}, 2)
	defer rtA.Shutdown()
	defer rtB.Shutdown()

	nodeB, err := NewNode(rtB, "site1", "127.0.0.1:0", Topology{Peers: map[string]string{}, Assign: siteAssign})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	nodeA, err := NewNode(rtA, "site0", "", Topology{Peers: map[string]string{"site1": nodeB.Addr()}, Assign: siteAssign})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()

	nakRecv := &recorder{done: make(chan struct{}), want: 1}
	rtA.Register(engine.RIAddr(0), nakRecv)
	okRecv := &recorder{done: make(chan struct{}), want: 1}
	rtB.Register(engine.QMAddr(1), okRecv)

	txn := model.TxnID{Site: 0, Seq: 9}
	nodeA.forward(engine.Envelope{
		From: engine.RIAddr(0), To: engine.QMAddr(1),
		Msg: rogueReq{model.RequestMsg{Txn: txn, Attempt: 2, Copy: model.CopyID{Item: 3, Site: 1}}},
	})
	nodeA.forward(engine.Envelope{
		From: engine.RIAddr(0), To: engine.QMAddr(1),
		Msg: model.RequestMsg{Txn: model.TxnID{Site: 0, Seq: 10}},
	})

	waitRecorder(t, okRecv, "good envelope after the encode drop")
	waitRecorder(t, nakRecv, "NAK for the unencodable envelope")
	nakRecv.mu.Lock()
	nak, ok := nakRecv.got[0].(model.BusyMsg)
	nakRecv.mu.Unlock()
	if !ok || nak.Txn != txn || nak.Attempt != 2 {
		t.Fatalf("NAK is %T %+v, want the rogue request's BusyMsg", nakRecv.got[0], nakRecv.got[0])
	}
	if dropped, _ := nodeA.QueueStats(); dropped != 1 {
		t.Fatalf("droppedSends=%d, want 1", dropped)
	}
	if s := nodeA.Wire().Snapshot(); s.MsgsOut != 1 {
		t.Fatalf("MsgsOut=%d counted the dropped envelope as sent", s.MsgsOut)
	}
	if envs, _ := nodeA.BatchStats(); envs != 1 {
		t.Fatalf("BatchStats envelopes=%d counted the dropped envelope as sent", envs)
	}
}

// TestUnknownTagFrameSkipped: a v3 frame carrying a message tag from a NEWER
// build must be skipped — frames are length-prefixed precisely so the stream
// survives — with the surrounding known frames delivered in order. Severing
// would drop whole batches and redial-loop a mixed-version v3 fleet during a
// rolling upgrade.
func TestUnknownTagFrameSkipped(t *testing.T) {
	rtB := engine.NewRuntime(engine.FixedLatency{}, 2)
	defer rtB.Shutdown()
	nodeB, err := NewNode(rtB, "site1", "127.0.0.1:0", Topology{Peers: map[string]string{}, Assign: siteAssign})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()

	recv := &recorder{done: make(chan struct{}), want: 2}
	rtB.Register(engine.QMAddr(1), recv)

	// Speak v3 by hand: version byte, consume the ack, then three frames —
	// known, unknown-tag (a future build's message), known.
	c, err := net.Dial("tcp", nodeB.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte{WireVersion}); err != nil {
		t.Fatal(err)
	}
	var ack [1]byte
	if _, err := c.Read(ack[:]); err != nil || ack[0] != wireAckV3 {
		t.Fatalf("no v3 ack: %v %x", err, ack)
	}
	frame := func(payload []byte) []byte {
		out := model.AppendUvarint(nil, uint64(len(payload)))
		return append(out, payload...)
	}
	known := func(seq uint64) []byte {
		p, err := wire.AppendEnvelope(nil, engine.Envelope{
			From: engine.RIAddr(0), To: engine.QMAddr(1),
			Msg: model.RequestMsg{Txn: model.TxnID{Site: 0, Seq: seq}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return frame(p)
	}
	// The future frame: valid addresses, tag 200, arbitrary body.
	future := frame([]byte{0, 2, 0, 1, 4, 0, 200, 0xde, 0xad, 0xbe, 0xef})
	var stream []byte
	stream = append(stream, known(1)...)
	stream = append(stream, future...)
	stream = append(stream, known(2)...)
	if _, err := c.Write(stream); err != nil {
		t.Fatal(err)
	}
	waitRecorder(t, recv, "frames around the unknown tag")
	recv.mu.Lock()
	defer recv.mu.Unlock()
	for i, m := range recv.got {
		if req, ok := m.(model.RequestMsg); !ok || req.Txn.Seq != uint64(i+1) {
			t.Fatalf("message %d: %T %+v, want ordered RequestMsg", i, m, m)
		}
	}
	s := nodeB.Wire().Snapshot()
	if s.UnknownIn != 1 {
		t.Fatalf("UnknownIn=%d, want 1", s.UnknownIn)
	}
	if s.MsgsIn != 2 {
		t.Fatalf("MsgsIn=%d counted the skipped frame", s.MsgsIn)
	}
}

// TestFallbackConnReprobes: a fallback (gob) connection is retired at a
// batch boundary once reprobeInterval elapses, so the next batch redials and
// re-negotiates — a v3 peer that merely stalled through one negotiation is
// not pinned to the legacy codec for the connection's lifetime.
func TestFallbackConnReprobes(t *testing.T) {
	oldInterval := reprobeInterval
	reprobeInterval = time.Millisecond
	defer func() { reprobeInterval = oldInterval }()

	rtA := engine.NewRuntime(engine.FixedLatency{}, 1)
	defer rtA.Shutdown()
	legacy := newLegacyListener(t, 3)
	defer legacy.Close()
	nodeA, err := NewNode(rtA, "site0", "", Topology{Peers: map[string]string{"site1": legacy.ln.Addr().String()}, Assign: siteAssign})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()

	for i := 0; i < 3; i++ {
		nodeA.forward(engine.Envelope{
			From: engine.RIAddr(0), To: engine.QMAddr(1),
			Msg: model.RequestMsg{Txn: model.TxnID{Site: 0, Seq: uint64(i)}},
		})
		// Space the batches out past the re-probe interval so each lands on
		// its own writer iteration with the previous conn aged out.
		time.Sleep(50 * time.Millisecond)
	}
	select {
	case <-legacy.done:
	case <-time.After(10 * time.Second):
		t.Fatal("legacy peer did not receive all messages")
	}
	if s := nodeA.Wire().Snapshot(); s.V2Fallbacks < 2 {
		t.Fatalf("V2Fallbacks=%d — the fallback conn was never retired for a re-probe", s.V2Fallbacks)
	}
}
