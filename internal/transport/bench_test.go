package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"ucc/internal/engine"
	"ucc/internal/model"
)

// countActor counts deliveries and signals when a target is reached.
type countActor struct {
	n      atomic.Int64
	target int64
	done   chan struct{}
}

func (a *countActor) OnMessage(ctx engine.Context, from engine.Addr, msg model.Message) {
	if a.n.Add(1) == a.target {
		close(a.done)
	}
}

// BenchmarkTransportThroughput is the end-to-end wire cost: request-sized
// envelopes pushed through two real nodes over loopback TCP, encode → frame
// → kernel → decode → inject. The v2 sub-benchmark pins the sender to the
// legacy gob stream (the pre-v3 deployment, byte-identical), so the pair of
// numbers is the deployment-level speedup of the codec swap — the in-process
// shard harness (BenchmarkReadWriteThroughput) never crosses the wire and
// cannot show it. Wall-clock and loopback-bound, so the numbers are
// host-local (not in BENCH_baseline.json); the codec-level ratios are gated
// by TestWireCodecGate instead.
func BenchmarkTransportThroughput(b *testing.B) {
	run := func(b *testing.B, forceV2 bool) {
		rtA := engine.NewRuntime(engine.FixedLatency{}, 1)
		rtB := engine.NewRuntime(engine.FixedLatency{}, 2)
		defer rtA.Shutdown()
		defer rtB.Shutdown()
		nodeB, err := NewNode(rtB, "site1", "127.0.0.1:0", Topology{Peers: map[string]string{}, Assign: siteAssign})
		if err != nil {
			b.Fatal(err)
		}
		defer nodeB.Close()
		nodeA, err := NewNode(rtA, "site0", "", Topology{Peers: map[string]string{"site1": nodeB.Addr()}, Assign: siteAssign})
		if err != nil {
			b.Fatal(err)
		}
		defer nodeA.Close()
		if forceV2 {
			nodeA.preferVersion = WireVersionV2
		}

		recv := &countActor{target: int64(b.N), done: make(chan struct{})}
		rtB.Register(engine.QMAddr(1), recv)
		env := engine.Envelope{
			From: engine.RIAddr(0), To: engine.QMAddr(1),
			Msg: model.RequestMsg{Txn: model.TxnID{Site: 0, Seq: 1}, Protocol: model.PA, Kind: model.OpWrite,
				Copy: model.CopyID{Item: 7, Site: 1}, TS: 123456, Interval: 250},
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nodeA.forward(env)
		}
		select {
		case <-recv.done:
		case <-time.After(60 * time.Second):
			b.Fatalf("delivered %d/%d", recv.n.Load(), b.N)
		}
		b.StopTimer()
		if b.Elapsed() > 0 {
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
		}
		ws := nodeA.Wire().Snapshot()
		if forceV2 && ws.V3Conns > 0 {
			b.Fatalf("v2 pin leaked a v3 conn: %+v", ws)
		}
		if !forceV2 && ws.BytesOut > 0 {
			b.ReportMetric(ws.BytesPerMsgOut(), "B/msg")
		}
	}
	b.Run("v3", func(b *testing.B) { run(b, false) })
	b.Run("gob", func(b *testing.B) { run(b, true) })
}
