// Package postnotinject flags calls to engine.Runtime.Inject outside the
// engine package itself.
//
// Inject is mailbox-only: an envelope addressed to an actor that is not
// registered on the local runtime is silently dropped. That is exactly the
// bug class PR 8 caught only during end-to-end TCP verification — the
// epoch publication loop Injected MapInstall envelopes for remote sites
// and they never left the authoring node. Runtime.Post is the correct
// primitive for anything that may be remote: it delivers locally when the
// actor is registered and otherwise forwards through the transport uplink.
//
// The transport package's own delivery paths are legitimate Inject callers
// (Post would recurse straight back into the transport for a remote
// address); they carry //ucclint:allow postnotinject comments stating the
// local-only argument.
package postnotinject

import (
	"go/ast"
	"go/types"

	"ucc/internal/lint"
)

// Analyzer flags engine.Runtime.Inject calls outside internal/engine.
var Analyzer = &lint.Analyzer{
	Name: "postnotinject",
	Doc: "flag engine.Runtime.Inject outside internal/engine: Inject drops envelopes for " +
		"unregistered (remote) actors; use Runtime.Post, or state the local-only argument " +
		"in a //ucclint:allow postnotinject comment",
	Run: run,
}

func run(pass *lint.Pass) error {
	if lint.PathHasSuffix(pass.Pkg.Path(), "internal/engine") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Inject" {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || !isEngineRuntimeMethod(fn) {
				return true
			}
			pass.Report(lint.Diagnostic{
				Pos: sel.Sel.Pos(),
				Message: "engine.Runtime.Inject drops envelopes for actors not registered locally; " +
					"use Runtime.Post so remote addresses travel the transport uplink",
				SuggestedFixes: []lint.SuggestedFix{{
					Message: "replace .Inject with .Post",
					TextEdits: []lint.TextEdit{{
						Pos:     sel.Sel.Pos(),
						End:     sel.Sel.End(),
						NewText: []byte("Post"),
					}},
				}},
			})
			return true
		})
	}
	return nil
}

// isEngineRuntimeMethod reports whether fn is a method on the Runtime type
// of a package whose import path ends in internal/engine.
func isEngineRuntimeMethod(fn *types.Func) bool {
	if fn.Pkg() == nil || !lint.PathHasSuffix(fn.Pkg().Path(), "internal/engine") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Runtime"
}
