package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ucc/internal/engine"
	"ucc/internal/model"
)

type recorder struct {
	mu   sync.Mutex
	got  []model.Message
	done chan struct{}
	want int
}

func (r *recorder) OnMessage(ctx engine.Context, from engine.Addr, msg model.Message) {
	r.mu.Lock()
	r.got = append(r.got, msg)
	if len(r.got) == r.want {
		close(r.done)
	}
	r.mu.Unlock()
}

type relay struct{ to engine.Addr }

func (s *relay) OnMessage(ctx engine.Context, from engine.Addr, msg model.Message) {
	ctx.Send(s.to, msg)
}

// TestCrossProcessDelivery wires two runtimes over real TCP sockets and
// checks ordered delivery of typed messages in both directions.
func TestCrossProcessDelivery(t *testing.T) {
	rtA := engine.NewRuntime(engine.FixedLatency{}, 1)
	rtB := engine.NewRuntime(engine.FixedLatency{}, 2)
	defer rtA.Shutdown()
	defer rtB.Shutdown()

	// Peer A hosts RI(0)+QM(0); peer B hosts RI(1)+QM(1).
	assign := func(a engine.Addr) string {
		return fmt.Sprintf("site%d", a.ID)
	}
	topoA := Topology{Peers: map[string]string{}, Assign: assign}
	nodeA, err := NewNode(rtA, "site0", "127.0.0.1:0", topoA)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	topoB := Topology{Peers: map[string]string{"site0": nodeA.Addr()}, Assign: assign}
	nodeB, err := NewNode(rtB, "site1", "127.0.0.1:0", topoB)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	topoA.Peers["site1"] = nodeB.Addr()

	recv := &recorder{done: make(chan struct{}), want: 50}
	rtA.Register(engine.QMAddr(0), recv)
	rtB.Register(engine.RIAddr(1), &relay{to: engine.QMAddr(0)})

	// Drive 50 typed messages from B's actor to A's actor over the wire.
	for i := 0; i < 50; i++ {
		rtB.Inject(engine.Envelope{
			From: engine.RIAddr(1), To: engine.RIAddr(1),
			Msg: model.RequestMsg{
				Txn:      model.TxnID{Site: 1, Seq: uint64(i)},
				Protocol: model.PA,
				Kind:     model.OpWrite,
				Copy:     model.CopyID{Item: 3, Site: 0},
				TS:       model.Timestamp(i),
				Site:     1,
			},
		})
	}
	select {
	case <-recv.done:
	case <-time.After(10 * time.Second):
		recv.mu.Lock()
		n := len(recv.got)
		recv.mu.Unlock()
		t.Fatalf("timed out: got %d/50", n)
	}
	recv.mu.Lock()
	defer recv.mu.Unlock()
	for i, m := range recv.got {
		req, ok := m.(model.RequestMsg)
		if !ok {
			t.Fatalf("message %d has type %T", i, m)
		}
		if req.Txn.Seq != uint64(i) || req.TS != model.Timestamp(i) {
			t.Fatalf("order/content broken at %d: %+v", i, req)
		}
		if req.Copy != (model.CopyID{Item: 3, Site: 0}) {
			t.Fatalf("copy id corrupted: %+v", req.Copy)
		}
	}
}

func TestLocalAssignShortCircuits(t *testing.T) {
	rt := engine.NewRuntime(engine.FixedLatency{}, 1)
	defer rt.Shutdown()
	topo := Topology{
		Peers:  map[string]string{},
		Assign: func(engine.Addr) string { return "self" },
	}
	node, err := NewNode(rt, "self", "", topo) // outbound-only, no listener
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	recv := &recorder{done: make(chan struct{}), want: 1}
	rt.Register(engine.QMAddr(5), recv)
	rt.Register(engine.RIAddr(1), &relay{to: engine.QMAddr(5)})
	rt.Inject(engine.Envelope{From: engine.RIAddr(1), To: engine.RIAddr(1), Msg: model.TickMsg{}})
	select {
	case <-recv.done:
	case <-time.After(5 * time.Second):
		t.Fatal("local short-circuit failed")
	}
}

func TestUnknownPeerDropsSilently(t *testing.T) {
	rt := engine.NewRuntime(engine.FixedLatency{}, 1)
	defer rt.Shutdown()
	topo := Topology{
		Peers:  map[string]string{},
		Assign: func(engine.Addr) string { return "ghost" },
	}
	node, err := NewNode(rt, "self", "", topo)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	rt.Register(engine.RIAddr(1), &relay{to: engine.QMAddr(5)})
	rt.Inject(engine.Envelope{From: engine.RIAddr(1), To: engine.RIAddr(1), Msg: model.TickMsg{}})
	time.Sleep(50 * time.Millisecond) // must not panic or block
}

func TestStandardAssign(t *testing.T) {
	f := StandardAssign("client")
	if f(engine.QMAddr(2)) != "site2" || f(engine.RIAddr(0)) != "site0" {
		t.Fatal("site assignment wrong")
	}
	if f(engine.DetectorAddr()) != "site0" {
		t.Fatal("detector must live on site0")
	}
	if f(engine.CollectorAddr()) != "client" || f(engine.DriverAddr(3)) != "client" {
		t.Fatal("client-side assignment wrong")
	}
}

func TestWireRoundTrip(t *testing.T) {
	env := engine.Envelope{
		From: engine.RIAddr(3),
		To:   engine.QMShardAddr(7, 5),
		Msg:  model.GrantMsg{Txn: model.TxnID{Site: 3, Seq: 9}, Lock: model.SWL, TS: 42},
	}
	got := fromWire(toWire(env))
	if got.From != env.From || got.To != env.To {
		t.Fatalf("addresses corrupted: %+v", got)
	}
	if got.To.Shard != 5 {
		t.Fatalf("shard index lost on the wire: %+v", got.To)
	}
	if g, ok := got.Msg.(model.GrantMsg); !ok || g.TS != 42 || g.Lock != model.SWL {
		t.Fatalf("payload corrupted: %+v", got.Msg)
	}
}

// TestWireVersionRejected: a peer speaking the wrong framing era must be
// dropped before any gob bytes reach the decoder, not fed as a misframed
// stream.
func TestWireVersionRejected(t *testing.T) {
	rt := engine.NewRuntime(engine.FixedLatency{}, 1)
	defer rt.Shutdown()
	topo := Topology{Peers: map[string]string{}, Assign: func(engine.Addr) string { return "x" }}
	node, err := NewNode(rt, "self", "127.0.0.1:0", topo)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	recv := &recorder{done: make(chan struct{}), want: 1}
	rt.Register(engine.QMAddr(0), recv)

	c, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Version byte 1 (the pre-batching era), then bytes that would decode as
	// an envelope if the reader ignored the version.
	c.Write([]byte{1})
	enc := gob.NewEncoder(c)
	enc.Encode(toWire(engine.Envelope{From: engine.RIAddr(1), To: engine.QMAddr(0), Msg: model.TickMsg{}}))
	select {
	case <-recv.done:
		t.Fatal("envelope delivered despite version mismatch")
	case <-time.After(200 * time.Millisecond):
	}
}

// TestBatchCoalesces: a backlog accumulated while the writer is busy must go
// out in far fewer flushes than envelopes — the pipelined-encoder batching
// the wire format exists for.
func TestBatchCoalesces(t *testing.T) {
	rtA := engine.NewRuntime(engine.FixedLatency{}, 1)
	rtB := engine.NewRuntime(engine.FixedLatency{}, 2)
	defer rtA.Shutdown()
	defer rtB.Shutdown()
	assign := func(a engine.Addr) string { return fmt.Sprintf("site%d", a.ID) }

	nodeB, err := NewNode(rtB, "site1", "127.0.0.1:0", Topology{Peers: map[string]string{}, Assign: assign})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	nodeA, err := NewNode(rtA, "site0", "", Topology{
		Peers: map[string]string{"site1": nodeB.Addr()}, Assign: assign,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	// A small linger guarantees the backlog accumulates before the first
	// flush even on a fast loopback.
	nodeA.SetBatching(0, 20*time.Millisecond)

	const total = 400
	recv := &recorder{done: make(chan struct{}), want: total}
	rtB.Register(engine.QMAddr(1), recv)

	for i := 0; i < total; i++ {
		nodeA.forward(engine.Envelope{
			From: engine.RIAddr(0), To: engine.QMAddr(1),
			Msg: model.RequestMsg{Txn: model.TxnID{Site: 0, Seq: uint64(i)}, TS: model.Timestamp(i)},
		})
	}
	select {
	case <-recv.done:
	case <-time.After(10 * time.Second):
		recv.mu.Lock()
		n := len(recv.got)
		recv.mu.Unlock()
		t.Fatalf("timed out: got %d/%d", n, total)
	}
	envs, flushes := nodeA.BatchStats()
	if envs != total {
		t.Fatalf("sent %d envelopes, want %d", envs, total)
	}
	if flushes*4 > envs {
		t.Fatalf("batching barely coalesced: %d flushes for %d envelopes", flushes, envs)
	}
	// Order must survive batching.
	recv.mu.Lock()
	defer recv.mu.Unlock()
	for i, m := range recv.got {
		if req := m.(model.RequestMsg); req.Txn.Seq != uint64(i) {
			t.Fatalf("order broken at %d: %+v", i, req)
		}
	}
}

// TestSendQueueCapDropsOldest: while a peer's writer is busy (a long linger
// stands in for a stuck dial or a slow peer), the outbox must stay at its
// cap by discarding the OLDEST envelopes, and the survivors must be the
// newest ones, delivered in order.
func TestSendQueueCapDropsOldest(t *testing.T) {
	assign := func(a engine.Addr) string { return fmt.Sprintf("site%d", a.ID) }
	rtA := engine.NewRuntime(engine.FixedLatency{}, 1)
	rtB := engine.NewRuntime(engine.FixedLatency{}, 2)
	defer rtA.Shutdown()
	defer rtB.Shutdown()

	nodeB, err := NewNode(rtB, "site1", "127.0.0.1:0", Topology{Peers: map[string]string{}, Assign: assign})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	nodeA, err := NewNode(rtA, "site0", "", Topology{
		Peers: map[string]string{"site1": nodeB.Addr()}, Assign: assign,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()

	const cap = 16
	const total = 200
	nodeA.SetSendQueueCap(cap)
	// The writer lingers long enough for the whole burst to hit the outbox
	// while it sleeps; only the first (taken) envelope and the newest `cap`
	// can survive.
	nodeA.SetBatching(0, 300*time.Millisecond)

	recv := &recorder{done: make(chan struct{}), want: cap + 1}
	rtB.Register(engine.QMAddr(1), recv)
	send := func(i int) {
		nodeA.forward(engine.Envelope{
			From: engine.RIAddr(0), To: engine.QMAddr(1),
			Msg: model.RequestMsg{Txn: model.TxnID{Site: 0, Seq: uint64(i)}, TS: model.Timestamp(i)},
		})
	}
	// First envelope alone, and a beat for the writer to take it and enter
	// its linger — then the burst lands entirely in the capped outbox.
	send(0)
	time.Sleep(50 * time.Millisecond)
	for i := 1; i < total; i++ {
		send(i)
	}
	select {
	case <-recv.done:
	case <-time.After(10 * time.Second):
		recv.mu.Lock()
		n := len(recv.got)
		recv.mu.Unlock()
		t.Fatalf("timed out: got %d/%d", n, cap+1)
	}
	// Give any stragglers a beat, then check nothing beyond cap+1 arrived.
	time.Sleep(100 * time.Millisecond)
	recv.mu.Lock()
	defer recv.mu.Unlock()
	if len(recv.got) != cap+1 {
		t.Fatalf("delivered %d envelopes, want %d (cap + the one the writer already held)", len(recv.got), cap+1)
	}
	// Envelope 0 was taken by the writer before the cap engaged; the rest
	// must be the NEWEST cap envelopes, in order.
	if first := recv.got[0].(model.RequestMsg); first.Txn.Seq != 0 {
		t.Fatalf("first delivered = %+v, want seq 0", first)
	}
	for i := 1; i < len(recv.got); i++ {
		want := uint64(total - cap + i - 1)
		if got := recv.got[i].(model.RequestMsg).Txn.Seq; got != want {
			t.Fatalf("survivor %d has seq %d, want %d (drop-oldest violated)", i, got, want)
		}
	}
	dropped, high := nodeA.QueueStats()
	if want := uint64(total - 1 - cap); dropped != want {
		t.Fatalf("dropped = %d, want %d", dropped, want)
	}
	if high > cap {
		t.Fatalf("queue high-water %d exceeded cap %d", high, cap)
	}
}

// TestSendQueueCapEvictionNAKs: an envelope evicted by the send-queue cap
// must not vanish silently — the LOCAL sender receives the evicted message's
// BusyMsg NAK, exactly as if the remote mailbox had refused it
// (engine.Runtime.nak), so the issuing attempt aborts and releases its
// requests at other sites instead of stranding in negotiation forever.
func TestSendQueueCapEvictionNAKs(t *testing.T) {
	assign := func(a engine.Addr) string { return fmt.Sprintf("site%d", a.ID) }
	rtA := engine.NewRuntime(engine.FixedLatency{}, 1)
	rtB := engine.NewRuntime(engine.FixedLatency{}, 2)
	defer rtA.Shutdown()
	defer rtB.Shutdown()

	nodeB, err := NewNode(rtB, "site1", "127.0.0.1:0", Topology{Peers: map[string]string{}, Assign: assign})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	nodeA, err := NewNode(rtA, "site0", "", Topology{
		Peers: map[string]string{"site1": nodeB.Addr()}, Assign: assign,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()

	const cap = 16
	const total = 200
	const evictions = total - 1 - cap // writer holds #0; the newest cap survive
	nodeA.SetSendQueueCap(cap)
	nodeA.SetBatching(0, 300*time.Millisecond)

	rtB.Register(engine.QMAddr(1), &recorder{done: make(chan struct{}), want: 1 << 30})
	// The sender's actor on A receives the NAKs.
	naks := &recorder{done: make(chan struct{}), want: evictions}
	rtA.Register(engine.RIAddr(0), naks)

	send := func(i int) {
		nodeA.forward(engine.Envelope{
			From: engine.RIAddr(0), To: engine.QMAddr(1),
			Msg: model.RequestMsg{Txn: model.TxnID{Site: 0, Seq: uint64(i)}, TS: model.Timestamp(i)},
		})
	}
	send(0)
	time.Sleep(50 * time.Millisecond)
	for i := 1; i < total; i++ {
		send(i)
	}
	select {
	case <-naks.done:
	case <-time.After(10 * time.Second):
		naks.mu.Lock()
		n := len(naks.got)
		naks.mu.Unlock()
		t.Fatalf("timed out: %d/%d NAKs delivered to the sender", n, evictions)
	}
	naks.mu.Lock()
	defer naks.mu.Unlock()
	// Every eviction NAK'd, oldest first, carrying the evicted identity. The
	// expected count is `evictions`, plus one if the writer had not yet taken
	// envelope 0 when the burst landed (then 0 was evicted too) — a timing
	// window the 50ms primer usually, but not provably, closes.
	dropped, _ := nodeA.QueueStats()
	if got := uint64(len(naks.got)); got != dropped {
		t.Fatalf("NAKs delivered = %d, evictions counted = %d (one NAK per eviction)", got, dropped)
	}
	if dropped != uint64(evictions) && dropped != uint64(evictions+1) {
		t.Fatalf("dropped = %d, want %d (or %d if the writer missed envelope 0)",
			dropped, evictions, evictions+1)
	}
	prev := int64(-1)
	for i, m := range naks.got {
		busy, ok := m.(model.BusyMsg)
		if !ok {
			t.Fatalf("sender received %T, want model.BusyMsg", m)
		}
		if seq := int64(busy.Txn.Seq); seq <= prev {
			t.Fatalf("NAK %d carries seq %d after seq %d (oldest-first eviction violated)", i, seq, prev)
		} else {
			prev = seq
		}
	}
	// The newest `cap` envelopes survived: none of them may have been NAK'd.
	if prev >= int64(total-cap) {
		t.Fatalf("NAK for seq %d: a surviving (newest-%d) envelope was evicted", prev, cap)
	}
}

// TestUnreachablePeerNAKsSheddables: a batch dropped because its peer is
// unreachable (dead dial) must NAK its sheddable envelopes back to the
// local sender, just like a cap eviction — a silently dropped RequestMsg
// strands its attempt forever. Completers in the dropped batch stay silent
// (crashed-site semantics).
func TestUnreachablePeerNAKsSheddables(t *testing.T) {
	assign := func(a engine.Addr) string { return fmt.Sprintf("site%d", a.ID) }
	rtA := engine.NewRuntime(engine.FixedLatency{}, 1)
	defer rtA.Shutdown()

	// A port that refuses connections: listen, note the address, close.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	nodeA, err := NewNode(rtA, "site0", "", Topology{
		Peers: map[string]string{"site1": deadAddr}, Assign: assign,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()

	naks := &recorder{done: make(chan struct{}), want: 1}
	rtA.Register(engine.RIAddr(0), naks)

	nodeA.forward(engine.Envelope{
		From: engine.RIAddr(0), To: engine.QMAddr(1),
		Msg: model.RequestMsg{Txn: model.TxnID{Site: 0, Seq: 7}},
	})
	nodeA.forward(engine.Envelope{
		From: engine.RIAddr(0), To: engine.QMAddr(1),
		Msg: model.ReleaseMsg{Txn: model.TxnID{Site: 0, Seq: 8}},
	})
	select {
	case <-naks.done:
	case <-time.After(10 * time.Second):
		t.Fatal("no NAK for a request dropped on an unreachable peer")
	}
	// Let any (wrong) release NAK trail in before checking.
	time.Sleep(200 * time.Millisecond)
	naks.mu.Lock()
	defer naks.mu.Unlock()
	if len(naks.got) != 1 {
		t.Fatalf("sender received %d NAKs, want exactly 1 (only the request is sheddable)", len(naks.got))
	}
	busy, ok := naks.got[0].(model.BusyMsg)
	if !ok || busy.Txn.Seq != 7 {
		t.Fatalf("NAK = %+v, want BusyMsg for the dropped request (seq 7)", naks.got[0])
	}
	// Both dropped envelopes — the NAK'd request and the silent release —
	// count in the drop stats the operator reads.
	if dropped, _ := nodeA.QueueStats(); dropped != 2 {
		t.Fatalf("dropped = %d, want 2 (both envelopes of the dropped batches)", dropped)
	}
}

// TestSendQueueCapSparesCompleters: the cap must never evict
// protocol-completion traffic — a dropped release to a live-but-slow peer
// would strand its locks forever. Requests interleaved with releases are
// evicted; the releases all arrive, even past the cap.
func TestSendQueueCapSparesCompleters(t *testing.T) {
	assign := func(a engine.Addr) string { return fmt.Sprintf("site%d", a.ID) }
	rtA := engine.NewRuntime(engine.FixedLatency{}, 1)
	rtB := engine.NewRuntime(engine.FixedLatency{}, 2)
	defer rtA.Shutdown()
	defer rtB.Shutdown()

	nodeB, err := NewNode(rtB, "site1", "127.0.0.1:0", Topology{Peers: map[string]string{}, Assign: assign})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	nodeA, err := NewNode(rtA, "site0", "", Topology{
		Peers: map[string]string{"site1": nodeB.Addr()}, Assign: assign,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()

	const cap = 8
	const releases = 40
	nodeA.SetSendQueueCap(cap)
	nodeA.SetBatching(0, 300*time.Millisecond)

	recv := &recorder{done: make(chan struct{}), want: 1 << 30}
	rtB.Register(engine.QMAddr(1), recv)

	// Prime the writer with one envelope, then burst releases (completers,
	// never evicted) interleaved with twice as many requests (sheddable).
	nodeA.forward(engine.Envelope{
		From: engine.RIAddr(0), To: engine.QMAddr(1),
		Msg: model.RequestMsg{Txn: model.TxnID{Site: 0, Seq: 9999}},
	})
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < releases; i++ {
		nodeA.forward(engine.Envelope{
			From: engine.RIAddr(0), To: engine.QMAddr(1),
			Msg: model.ReleaseMsg{Txn: model.TxnID{Site: 0, Seq: uint64(i)}},
		})
		for j := 0; j < 2; j++ {
			nodeA.forward(engine.Envelope{
				From: engine.RIAddr(0), To: engine.QMAddr(1),
				Msg: model.RequestMsg{Txn: model.TxnID{Site: 0, Seq: uint64(1000 + i*2 + j)}},
			})
		}
	}
	// Every release must arrive, however many requests were evicted.
	deadline := time.Now().Add(10 * time.Second)
	for {
		recv.mu.Lock()
		got := 0
		for _, m := range recv.got {
			if _, ok := m.(model.ReleaseMsg); ok {
				got++
			}
		}
		recv.mu.Unlock()
		if got == releases {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("releases delivered = %d, want %d (completers must never be evicted)", got, releases)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if dropped, _ := nodeA.QueueStats(); dropped == 0 {
		t.Fatal("no requests were evicted; the cap never engaged and the test proved nothing")
	}
}

// TestSendDuringReconnect is the regression test for the retired-connection
// interleaving hazard: while a sender hammers envelopes, the receiving node
// is torn down and rebuilt on the same address. A retired connection's
// half-written frame must never corrupt the replacement connection's
// stream — every envelope that arrives (on either incarnation) must decode
// intact; losses are allowed (the peer was down), corruption is not. Run
// under -race this also hammers the writer/dialer/close interleavings.
//
// The sender also runs with a send-queue cap: the cap must hold across the
// bounce — the outage is exactly when an unbounded outbox would balloon —
// without breaking redelivery to the replacement incarnation.
func TestSendDuringReconnect(t *testing.T) {
	const sendCap = 256
	assign := func(a engine.Addr) string { return fmt.Sprintf("site%d", a.ID) }
	rtA := engine.NewRuntime(engine.FixedLatency{}, 1)
	defer rtA.Shutdown()

	// First incarnation of the receiver, on a kernel-chosen port we reuse.
	rtB1 := engine.NewRuntime(engine.FixedLatency{}, 2)
	nodeB1, err := NewNode(rtB1, "site1", "127.0.0.1:0", Topology{Peers: map[string]string{}, Assign: assign})
	if err != nil {
		t.Fatal(err)
	}
	addr := nodeB1.Addr()
	recv1 := &recorder{done: make(chan struct{}), want: 1 << 30}
	rtB1.Register(engine.QMAddr(1), recv1)

	nodeA, err := NewNode(rtA, "site0", "", Topology{
		Peers: map[string]string{"site1": addr}, Assign: assign,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	nodeA.SetSendQueueCap(sendCap)

	// Hammer from several goroutines through the node's uplink while the
	// receiver bounces; they keep sending until the replacement has provably
	// received traffic. Each sender tags its envelopes so intactness is
	// checkable per message.
	const senders = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				nodeA.forward(engine.Envelope{
					From: engine.RIAddr(0), To: engine.QMAddr(1),
					Msg: model.RequestMsg{
						Txn:  model.TxnID{Site: model.SiteID(s), Seq: uint64(i)},
						TS:   model.Timestamp(i),
						Copy: model.CopyID{Item: model.ItemID(i % 7), Site: 1},
					},
				})
				if i%64 == 0 {
					time.Sleep(time.Millisecond) // let batches form and the dialer breathe
				}
			}
		}(s)
	}

	// Bounce the receiver mid-stream.
	time.Sleep(30 * time.Millisecond)
	nodeB1.Close()
	rtB1.Shutdown()

	var nodeB2 *Node
	var rtB2 *engine.Runtime
	recv2 := &recorder{done: make(chan struct{}), want: 1 << 30}
	for retry := 0; retry < 50; retry++ {
		rtB2 = engine.NewRuntime(engine.FixedLatency{}, 3)
		nodeB2, err = NewNode(rtB2, "site1", addr, Topology{Peers: map[string]string{}, Assign: assign})
		if err == nil {
			break
		}
		rtB2.Shutdown()
		time.Sleep(20 * time.Millisecond) // TIME_WAIT on the fixed port
	}
	if err != nil {
		t.Fatalf("could not rebind %s: %v", addr, err)
	}
	defer nodeB2.Close()
	defer rtB2.Shutdown()
	rtB2.Register(engine.QMAddr(1), recv2)

	// Keep hammering until the replacement incarnation has received a real
	// burst (proof the sender redialed and restarted a clean stream).
	deadline := time.After(15 * time.Second)
	for {
		recv2.mu.Lock()
		n := len(recv2.got)
		recv2.mu.Unlock()
		if n >= 500 {
			break
		}
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Fatalf("replacement node received only %d envelopes", n)
		case <-time.After(10 * time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
	// Let in-flight batches land.
	time.Sleep(300 * time.Millisecond)

	check := func(name string, r *recorder) int {
		r.mu.Lock()
		defer r.mu.Unlock()
		lastSeq := map[model.SiteID]uint64{}
		for i, m := range r.got {
			req, ok := m.(model.RequestMsg)
			if !ok {
				t.Fatalf("%s: message %d has type %T (stream corrupted)", name, i, m)
			}
			if req.Copy != (model.CopyID{Item: model.ItemID(req.TS % 7), Site: 1}) ||
				uint64(req.TS) != req.Txn.Seq {
				t.Fatalf("%s: envelope corrupted: %+v", name, req)
			}
			// Per-sender FIFO must hold within one incarnation: batching and
			// reconnection may drop or (across the bounce) duplicate, but
			// never reorder one sender's stream.
			if prev, ok := lastSeq[req.Txn.Site]; ok && req.Txn.Seq < prev {
				t.Fatalf("%s: sender %d reordered: %d after %d", name, req.Txn.Site, req.Txn.Seq, prev)
			}
			lastSeq[req.Txn.Site] = req.Txn.Seq
		}
		return len(r.got)
	}
	n1 := check("incarnation1", recv1)
	n2 := check("incarnation2", recv2)
	if n2 == 0 {
		t.Fatal("replacement node received nothing; reconnect path unexercised")
	}
	// The cap must have held throughout — including while the peer was down
	// and the writer was redialing, the window where the outbox grows
	// fastest. Drop accounting keeps meaning across the reconnect.
	dropped, high := nodeA.QueueStats()
	if high > sendCap {
		t.Fatalf("send-queue high-water %d exceeded cap %d across the bounce", high, sendCap)
	}
	t.Logf("reconnect hammer: %d envelopes before bounce, %d after, %d dropped at the cap (high %d)",
		n1, n2, dropped, high)
}
