// Package wal is the durability subsystem: an append-only, checksummed,
// segmented write-ahead log of implemented writes plus periodic snapshots of
// a site's storage.Store, and a recovery path that reconstructs the store
// from the newest valid snapshot and the checksummed log tail.
//
// The paper's model (§2) assumes failure-free sites; this package lifts that
// assumption so the system — and the simulator — can express site crashes.
// The log is layered over a Media abstraction with two implementations: a
// directory of real files (cmd/uccnode, `kill -9` recovery) and a
// deterministic in-memory medium (simulated fault injection, where a crash
// discards exactly the bytes that were never synced).
//
// Both the log records and the snapshots are version-aware: a Record carries
// the write's version ordinal and commit stamp, and a snapshot images each
// copy's full retained version chain, not just its latest value. Recovery
// therefore rebuilds the multi-version store exactly — a requirement of the
// read-only snapshot fast path, whose reads deferred across an outage carry
// pre-crash snapshot timestamps and still need their exact versions.
//
// Record payloads use the wire-v3 varint codec (the same model primitives
// the transport's message encoders use), shrinking a typical payload from
// the legacy fixed 48 bytes to ~15 (framed: 56 → ~23, the 8-byte
// crc+length header unchanged). Frames remain crc32C | len | payload; the
// length word's high bit marks the varint era, and the legacy fixed-width
// format is still decoded so media written by an older build replays exactly
// after an in-place upgrade (a downgraded build stops replay at the first
// flagged frame — the tail is lost, never misread).
package wal
