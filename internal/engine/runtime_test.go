package engine

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ucc/internal/model"
)

type collect struct {
	mu   sync.Mutex
	tags []uint64
	done chan struct{}
	want int
}

func (c *collect) OnMessage(ctx Context, from Addr, msg model.Message) {
	c.mu.Lock()
	c.tags = append(c.tags, msg.(model.TickMsg).Tag)
	if len(c.tags) == c.want {
		close(c.done)
	}
	c.mu.Unlock()
}

type sender struct {
	to Addr
	n  int
}

func (s *sender) OnMessage(ctx Context, from Addr, msg model.Message) {
	for i := 0; i < s.n; i++ {
		ctx.Send(s.to, model.TickMsg{Tag: uint64(i)})
	}
}

func TestRuntimeDeliveryAndFIFO(t *testing.T) {
	rt := NewRuntime(UniformLatency{MinMicros: 0, MaxMicros: 2_000}, 1)
	defer rt.Shutdown()
	recv := &collect{done: make(chan struct{}), want: 100}
	rt.Register(RIAddr(2), recv)
	rt.Register(RIAddr(1), &sender{to: RIAddr(2), n: 100})
	rt.Inject(Envelope{From: RIAddr(1), To: RIAddr(1), Msg: model.TickMsg{}})
	select {
	case <-recv.done:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for deliveries")
	}
	recv.mu.Lock()
	defer recv.mu.Unlock()
	for i, tag := range recv.tags {
		if tag != uint64(i) {
			t.Fatalf("FIFO violated at %d: got %d", i, tag)
		}
	}
}

type timerActor struct {
	fired chan int64
	start time.Time
}

func (a *timerActor) OnMessage(ctx Context, from Addr, msg model.Message) {
	if msg.(model.TickMsg).Tag == 0 {
		a.start = time.Now()
		ctx.SetTimer(20_000, model.TickMsg{Tag: 1}) // 20ms
		return
	}
	a.fired <- time.Since(a.start).Microseconds()
}

func TestRuntimeTimers(t *testing.T) {
	rt := NewRuntime(FixedLatency{}, 1)
	defer rt.Shutdown()
	a := &timerActor{fired: make(chan int64, 1)}
	rt.Register(RIAddr(1), a)
	rt.Inject(Envelope{From: RIAddr(1), To: RIAddr(1), Msg: model.TickMsg{Tag: 0}})
	select {
	case elapsed := <-a.fired:
		if elapsed < 15_000 {
			t.Fatalf("timer fired after %dµs, want ≈20ms", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
}

type uplinkCounter struct{ n atomic.Int64 }

func TestRuntimeUplinkForUnknownActors(t *testing.T) {
	rt := NewRuntime(FixedLatency{}, 1)
	defer rt.Shutdown()
	var up uplinkCounter
	got := make(chan Envelope, 1)
	rt.SetUplink(func(e Envelope) {
		up.n.Add(1)
		got <- e
	})
	rt.Register(RIAddr(1), &sender{to: QMAddr(9), n: 1}) // QM 9 not local
	rt.Inject(Envelope{From: RIAddr(1), To: RIAddr(1), Msg: model.TickMsg{}})
	select {
	case e := <-got:
		if e.To != QMAddr(9) {
			t.Fatalf("uplinked to %v", e.To)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("uplink never called")
	}
}

func TestRuntimeShutdownStopsDelivery(t *testing.T) {
	rt := NewRuntime(FixedLatency{}, 1)
	recv := &collect{done: make(chan struct{}), want: 1}
	rt.Register(RIAddr(1), recv)
	rt.Shutdown()
	rt.Inject(Envelope{From: RIAddr(1), To: RIAddr(1), Msg: model.TickMsg{}})
	select {
	case <-recv.done:
		t.Fatal("delivery after shutdown")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestLatencyModels(t *testing.T) {
	fixed := FixedLatency{RemoteMicros: 100, LocalMicros: 5}
	if fixed.DelayMicros(RIAddr(1), QMAddr(1), nil) != 5 {
		t.Fatal("same-site must be local")
	}
	if fixed.DelayMicros(RIAddr(1), QMAddr(2), nil) != 100 {
		t.Fatal("remote delay wrong")
	}
	rt := NewRuntime(FixedLatency{}, 7)
	defer rt.Shutdown()
	// UniformLatency bounds.
	u := UniformLatency{MinMicros: 10, MaxMicros: 20}
	rng := newTestRand()
	for i := 0; i < 100; i++ {
		d := u.DelayMicros(RIAddr(1), QMAddr(2), rng)
		if d < 10 || d > 20 {
			t.Fatalf("uniform delay %d out of bounds", d)
		}
	}
	// ExpLatency truncation at 10× mean.
	e := ExpLatency{MeanMicros: 100}
	for i := 0; i < 1000; i++ {
		d := e.DelayMicros(RIAddr(1), QMAddr(2), rng)
		if d < 0 || d > 1000 {
			t.Fatalf("exp delay %d out of [0,1000]", d)
		}
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(5)) }
