// Package model is a miniature stand-in for ucc/internal/model with a
// deliberately incomplete wire contract: one clean type, one missing its
// fuzz seed, one missing its decode case, one missing its encode arm, one
// whose decode case produces the wrong type, and a stale TagLast.
package model

// Message mirrors the real sealed message interface.
type Message interface{ isMessage() }

// WireTag identifies a message type on the wire.
type WireTag byte

// Wire tags. TagLast is stale on purpose: the highest pinned tag is 4.
const (
	TagInvalid  WireTag = 0
	TagPing     WireTag = 1
	TagPong     WireTag = 2
	TagOrphan   WireTag = 3
	TagMismatch WireTag = 4

	TagLast = TagPong // want `TagLast is 2 but the highest tag pinned in AppendMessage is 4`
)

// PingMsg has the full contract: encode arm, decode case, and a seed.
type PingMsg struct{}

func (PingMsg) isMessage() {}

// PongMsg round-trips but has no committed fuzz seed.
type PongMsg struct{} // want `no fuzz corpus seed`

func (PongMsg) isMessage() {}

// OrphanMsg encodes but can never be decoded, and has no seed either.
type OrphanMsg struct{} // want `no case for that tag` `no fuzz corpus seed`

func (OrphanMsg) isMessage() {}

// LostMsg implements Message but was never added to the encode switch.
type LostMsg struct{} // want `no AppendMessage case`

func (LostMsg) isMessage() {}

// MismatchMsg encodes as TagMismatch but that tag decodes into PingMsg.
type MismatchMsg struct{} // want `decodes that tag into PingMsg`

func (MismatchMsg) isMessage() {}

// notAMessage is ignored: it does not implement Message.
type notAMessage struct{}

// AppendMessage mirrors the real encode switch.
func AppendMessage(b []byte, m Message) ([]byte, error) {
	switch v := m.(type) {
	case PingMsg:
		_ = v
		return append(b, byte(TagPing)), nil
	case *PingMsg:
		// Pooled pointer arm: folds into the value type's pin.
		return append(b, byte(TagPing)), nil
	case PongMsg:
		return append(b, byte(TagPong)), nil
	case OrphanMsg:
		return append(b, byte(TagOrphan)), nil
	case MismatchMsg:
		return append(b, byte(TagMismatch)), nil
	default:
		return b, nil
	}
}

// DecodeMessage mirrors the real decode switch.
func DecodeMessage(tag WireTag) (Message, error) {
	var m Message
	switch tag {
	case TagPing:
		m = PingMsg{}
	case TagPong:
		m = PongMsg{}
	case TagMismatch:
		m = PingMsg{}
	}
	return m, nil
}
