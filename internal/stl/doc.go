// Package stl implements §5 of Wang & Li (ICDE 1988): the System Throughput
// Loss cost function used to select the most profitable concurrency control
// protocol per transaction.
//
// STL'(λloss, U) is the expected throughput loss over a period of U seconds
// that starts with throughput loss λloss and accretes additional loss
// whenever a new lock grant blocks a data queue. It satisfies the renewal
// equation (with the no-blocking case and the first-block decomposition the
// paper describes in prose):
//
//	STL'(λ, U) = e^(−λb·U)·λ·U
//	           + ∫₀ᵁ λb·e^(−λb·x)·(λ·x + STL'(λ+λnew, U−x)) dx
//	STL'(λ, U) = λA·U                     when λ ≥ λA (everything is lost)
//
// with
//
//	λb   = (λA − λ)·(1 − (1 − λ/λA)^(K−1))   — rate of blocking grants
//	λnew = λw + (1−Qr)·λr                    — mean loss added per block
//
// (The proceedings scan garbles the first term of the printed recurrence;
// see DESIGN.md for the OCR note. The form above matches the paper's two
// prose cases exactly.)
//
// Evaluate solves the recursion by dynamic programming over the loss ladder
// λ, λ+λnew, λ+2λnew, … (capped at λA) and a uniform time grid, exactly the
// "evaluated efficiently through Dynamic Programming techniques [7]"
// strategy the paper prescribes.
package stl
