package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"ucc/internal/engine"
	"ucc/internal/model"
)

func init() { model.RegisterGob() }

// WireEnvelope is the on-the-wire form of engine.Envelope.
type WireEnvelope struct {
	FromKind uint8
	FromID   int32
	ToKind   uint8
	ToID     int32
	Msg      model.Message
}

func toWire(e engine.Envelope) WireEnvelope {
	return WireEnvelope{
		FromKind: uint8(e.From.Kind), FromID: int32(e.From.ID),
		ToKind: uint8(e.To.Kind), ToID: int32(e.To.ID),
		Msg: e.Msg,
	}
}

func fromWire(w WireEnvelope) engine.Envelope {
	return engine.Envelope{
		From: engine.Addr{Kind: engine.ActorKind(w.FromKind), ID: model.SiteID(w.FromID)},
		To:   engine.Addr{Kind: engine.ActorKind(w.ToKind), ID: model.SiteID(w.ToID)},
		Msg:  w.Msg,
	}
}

// Topology statically assigns every actor address to a named peer.
type Topology struct {
	// Peers maps peer name → TCP address.
	Peers map[string]string
	// Assign returns the peer name hosting an actor address.
	Assign func(engine.Addr) string
}

// ParsePeerList splits a comma-separated site address list (index = site
// id): at least one entry, none empty, whitespace trimmed.
func ParsePeerList(csv string) ([]string, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, fmt.Errorf("transport: peer list is empty")
	}
	parts := strings.Split(csv, ",")
	out := make([]string, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("transport: peer list entry %d is empty", i)
		}
		out[i] = p
	}
	return out, nil
}

// StandardTopology builds the topology cmd/uccnode and cmd/uccclient share:
// site i's actors on peer "site<i>", the collector (plus drivers and
// anything unknown) on "client". clientAddr may be empty for a node that
// has not yet learned the client's address (the client connects inbound).
func StandardTopology(peers []string, clientAddr string) Topology {
	topo := Topology{
		Peers:  map[string]string{},
		Assign: StandardAssign("client"),
	}
	for i, addr := range peers {
		topo.Peers[fmt.Sprintf("site%d", i)] = addr
	}
	if clientAddr != "" {
		topo.Peers["client"] = clientAddr
	}
	return topo
}

// StandardAssign places QM(i)/RI(i)/Driver(i) on peer "site<i>", the
// deadlock detector on "site0", and the collector (plus anything unknown) on
// clientPeer — the layout cmd/uccnode and cmd/uccclient use.
func StandardAssign(clientPeer string) func(engine.Addr) string {
	return func(a engine.Addr) string {
		switch a.Kind {
		case engine.KindQM, engine.KindRI:
			return fmt.Sprintf("site%d", a.ID)
		case engine.KindDetector:
			return "site0"
		default:
			return clientPeer
		}
	}
}

// Node connects one process's runtime to the topology.
type Node struct {
	self string
	topo Topology
	rt   *engine.Runtime

	mu      sync.Mutex
	conns   map[string]*peerConn
	inbound map[net.Conn]bool
	ln      net.Listener
	closed  bool
	wg      sync.WaitGroup
}

type peerConn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *gob.Encoder
}

// NewNode wires rt's uplink into the topology and starts listening on
// listenAddr (empty string = outbound-only peer, e.g. a client that other
// peers never dial).
func NewNode(rt *engine.Runtime, self, listenAddr string, topo Topology) (*Node, error) {
	if topo.Assign == nil {
		return nil, fmt.Errorf("transport: topology needs an Assign function")
	}
	n := &Node{
		self: self, topo: topo, rt: rt,
		conns:   map[string]*peerConn{},
		inbound: map[net.Conn]bool{},
	}
	rt.SetUplink(n.forward)
	if listenAddr != "" {
		ln, err := net.Listen("tcp", listenAddr)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
		}
		n.ln = ln
		n.wg.Add(1)
		go n.acceptLoop()
	}
	return n, nil
}

// Addr returns the bound listen address (tests pass ":0").
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			c.Close()
			return
		}
		n.inbound[c] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(c)
	}
}

func (n *Node) readLoop(c net.Conn) {
	defer n.wg.Done()
	defer func() {
		c.Close()
		n.mu.Lock()
		delete(n.inbound, c)
		n.mu.Unlock()
	}()
	dec := gob.NewDecoder(c)
	for {
		var w WireEnvelope
		if err := dec.Decode(&w); err != nil {
			return
		}
		n.rt.Inject(fromWire(w))
	}
}

// forward routes an envelope produced by the local runtime. A send that
// fails on a stale connection (the peer crashed and restarted since the
// dial) is retried once on a fresh dial: without retransmission in the
// protocol, a single lost request would leave its transaction hung holding
// locks for the rest of the run. A peer that is genuinely down still drops
// the message — the protocol tolerates that as a crashed site.
func (n *Node) forward(env engine.Envelope) {
	peer := n.topo.Assign(env.To)
	if peer == n.self {
		n.rt.Inject(env)
		return
	}
	for attempt := 0; attempt < 2; attempt++ {
		pc, err := n.conn(peer)
		if err != nil {
			return // unreachable peer
		}
		pc.mu.Lock()
		err = pc.enc.Encode(toWire(env))
		pc.mu.Unlock()
		if err == nil {
			return
		}
		pc.c.Close()
		n.mu.Lock()
		if n.conns[peer] == pc {
			delete(n.conns, peer)
		}
		n.mu.Unlock()
	}
}

// conn returns (dialing if needed) the persistent connection to peer.
func (n *Node) conn(peer string) (*peerConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("transport: node closed")
	}
	if pc, ok := n.conns[peer]; ok {
		n.mu.Unlock()
		return pc, nil
	}
	addr, ok := n.topo.Peers[peer]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: unknown peer %q", peer)
	}
	c, err := net.DialTimeout("tcp", addr, 3*time.Second)
	if err != nil {
		return nil, err
	}
	pc := &peerConn{c: c, enc: gob.NewEncoder(c)}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("transport: node closed")
	}
	if existing, ok := n.conns[peer]; ok {
		n.mu.Unlock()
		c.Close()
		return existing, nil
	}
	n.conns[peer] = pc
	// Outbound connections carry no inbound traffic (each peer sends on its
	// own dials), so a blocked read detects the peer closing — crash or
	// restart — the moment it happens. Without it, writes into a dead
	// connection keep "succeeding" until the kernel surfaces the RST,
	// silently losing every message in between.
	n.wg.Add(1)
	go n.drainLoop(peer, pc)
	n.mu.Unlock()
	return pc, nil
}

// drainLoop blocks reading an outbound connection; EOF/RST retires it so the
// next forward redials the (possibly restarted) peer.
func (n *Node) drainLoop(peer string, pc *peerConn) {
	defer n.wg.Done()
	buf := make([]byte, 256)
	for {
		if _, err := pc.c.Read(buf); err != nil {
			break
		}
	}
	pc.c.Close()
	n.mu.Lock()
	if n.conns[peer] == pc {
		delete(n.conns, peer)
	}
	n.mu.Unlock()
}

// Close shuts the node down, closing the listener and every outbound and
// inbound connection (read loops block in Decode until their connection
// closes, so inbound sockets must be closed too or Close would hang).
func (n *Node) Close() {
	n.mu.Lock()
	n.closed = true
	if n.ln != nil {
		n.ln.Close()
	}
	for _, pc := range n.conns {
		pc.c.Close()
	}
	n.conns = map[string]*peerConn{}
	for c := range n.inbound {
		c.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
}
