package main

import (
	"fmt"
	"strconv"
	"strings"

	"ucc/internal/transport"
)

// parsePeerList parses -peers: at least one site address, index = site id.
func parsePeerList(csv string) ([]string, error) {
	peers, err := transport.ParsePeerList(csv)
	if err != nil {
		return nil, fmt.Errorf("-peers: %w", err)
	}
	return peers, nil
}

// parseMix parses "a,b,c" or "a,b,c,d" protocol shares (2PL, T/O, PA, and
// optionally the read-only snapshot class). Shares are relative weights; at
// least one must be positive. Parsing is strict — a malformed or extra
// field is an error, never silently dropped.
func parseMix(s string) ([4]float64, error) {
	var shares [4]float64
	fields := strings.Split(s, ",")
	if len(fields) != 3 && len(fields) != 4 {
		return shares, fmt.Errorf("bad -mix %q: want 3 or 4 comma-separated shares", s)
	}
	var total float64
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return shares, fmt.Errorf("bad -mix %q: share %d: %w", s, i+1, err)
		}
		if v < 0 {
			return shares, fmt.Errorf("bad -mix %q: negative share", s)
		}
		shares[i] = v
		total += v
	}
	if total <= 0 {
		return shares, fmt.Errorf("bad -mix %q: all shares zero", s)
	}
	return shares, nil
}

// clientTopology builds the driving client's view of the cluster: the
// client itself (collector + drivers) on "client" at listenAddr, site i on
// peer "site<i>".
func clientTopology(peers []string, listenAddr string) transport.Topology {
	return transport.StandardTopology(peers, listenAddr)
}
