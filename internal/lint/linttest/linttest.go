// Package linttest runs internal/lint analyzers over fixture packages and
// checks their diagnostics against expectations written in the fixtures
// themselves — the analysistest convention, reimplemented on the standard
// library:
//
//	rt.Inject(env) // want `use Runtime\.Post`
//
// Each `// want` comment carries one or more backquoted or quoted regular
// expressions that must each match a diagnostic reported on that line; a
// diagnostic with no matching expectation, or an expectation with no
// matching diagnostic, fails the test. Fixtures live under
// testdata/src/<importpath>/ and may import each other by those paths;
// standard-library imports fall back to a source importer.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"ucc/internal/lint"
)

// Run loads each fixture package path from testdataDir/src, runs the
// analyzer over it, and matches diagnostics against the fixtures'
// `// want` expectations.
func Run(t *testing.T, a *lint.Analyzer, testdataDir string, paths ...string) {
	t.Helper()
	abs, err := filepath.Abs(testdataDir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	fix := &fixtureImporter{root: filepath.Join(abs, "src"), fset: fset, cache: map[string]*types.Package{}}
	for _, path := range paths {
		pkg, err := loadFixture(fset, fix, path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := lint.RunPackage(pkg, []*lint.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s over %s: %v", a.Name, path, err)
		}
		match(t, fset, pkg, diags)
	}
}

// loadFixture parses and typechecks one fixture package, keeping its AST
// for analysis.
func loadFixture(fset *token.FileSet, fix *fixtureImporter, path string) (*lint.Package, error) {
	dir := filepath.Join(fix.root, filepath.FromSlash(path))
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	return lint.CheckFiles(fset, path, dir, files, fix)
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

// fixtureImporter resolves fixture import paths from the testdata tree and
// everything else (the standard library) from GOROOT source.
type fixtureImporter struct {
	root   string
	fset   *token.FileSet
	cache  map[string]*types.Package
	stdlib types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := fi.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		if fi.stdlib == nil {
			fi.stdlib = importer.ForCompiler(fi.fset, "source", nil)
		}
		return fi.stdlib.Import(path)
	}
	files, err := parseDir(fi.fset, dir)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: fi}
	pkg, err := conf.Check(path, fi.fset, files, nil)
	if err != nil {
		return nil, err
	}
	fi.cache[path] = pkg
	return pkg, nil
}

// expectation is one `// want` regexp awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants extracts expectations from a package's comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitPatterns(m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
					}
					exps = append(exps, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return exps
}

// splitPatterns parses the tail of a want comment: a space-separated list
// of `backquoted` or "quoted" patterns.
func splitPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for len(s) > 0 {
		quote := s[0]
		if quote != '`' && quote != '"' {
			break
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			break
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}

func match(t *testing.T, fset *token.FileSet, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	exps := collectWants(t, fset, pkg.Files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, e := range exps {
			if e.matched || e.file != pos.Filename || e.line != pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", pos, d.Message)
		}
	}
	for _, e := range exps {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
		}
	}
}
