package placement

import (
	"fmt"
	"sort"

	"ucc/internal/model"
)

// Policy names an epoch-0 placement strategy.
type Policy string

const (
	// RoundRobin places item i's r-th copy at sites[(i+r) mod len(sites)] —
	// the historical storage.Catalog layout, and the default.
	RoundRobin Policy = "round-robin"
	// Range places items in contiguous equal ranges, one range per site,
	// with additional copies at the following sites (wrapping).
	Range Policy = "range"
	// Hash places item i's primary at sites[fnv(i) mod len(sites)], copies
	// at the following sites (wrapping).
	Hash Policy = "hash"
)

// ParsePolicy maps a config string to a Policy; empty selects RoundRobin.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "":
		return RoundRobin, nil
	case RoundRobin, Range, Hash:
		return Policy(s), nil
	default:
		return "", fmt.Errorf("placement: unknown policy %q (want round-robin, range, or hash)", s)
	}
}

// Validate rejects unknown policies (empty is allowed and means RoundRobin —
// mirrors how other optional config knobs default).
func (p Policy) Validate() error {
	_, err := ParsePolicy(string(p))
	return err
}

// fnv32 is FNV-1a over the item id's four little-endian bytes.
func fnv32(item model.ItemID) uint32 {
	h := uint32(2166136261)
	v := uint32(item)
	for i := 0; i < 4; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= 16777619
	}
	return h
}

// Build constructs the epoch-0 partition map: items copies over sites under
// policy, replicas copies per item (clamped to [1, len(sites)], matching the
// historical catalog). Panics on an empty site list or unknown policy —
// callers validate config first.
func Build(policy Policy, items int, sites []model.SiteID, replicas int) *model.PartitionMap {
	if len(sites) == 0 {
		panic("placement: no sites")
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(sites) {
		replicas = len(sites)
	}
	pm := &model.PartitionMap{Assignments: make([][]model.SiteID, items)}
	for i := 0; i < items; i++ {
		var base int
		switch policy {
		case RoundRobin, "":
			base = i
		case Range:
			// Contiguous ranges, first (items mod sites) ranges one larger —
			// the usual balanced split.
			n := len(sites)
			per, extra := items/n, items%n
			acc := 0
			for s := 0; s < n; s++ {
				size := per
				if s < extra {
					size++
				}
				if i < acc+size {
					base = s
					break
				}
				acc += size
			}
		case Hash:
			base = int(fnv32(model.ItemID(i)) % uint32(len(sites)))
		default:
			panic(fmt.Sprintf("placement: unknown policy %q", policy))
		}
		reps := make([]model.SiteID, replicas)
		for r := 0; r < replicas; r++ {
			reps[r] = sites[(base+r)%len(sites)]
		}
		pm.Assignments[i] = reps
	}
	return pm
}

// activeSites returns the ascending sites owning at least one copy in pm.
func activeSites(pm *model.PartitionMap) []model.SiteID { return pm.Sites() }

// PlanMove returns epoch N+1 with every item in items re-homed so dst is its
// primary. The new assignment is dst followed by the old copy list minus dst,
// truncated to the old copy count — so per-item replication degree is
// preserved and (unless dst already held a copy) the last old copy is the one
// given up. Items already primaried at dst are untouched. Errors on an item
// outside the map.
func PlanMove(cur *model.PartitionMap, items []model.ItemID, dst model.SiteID) (*model.PartitionMap, error) {
	next := cur.Clone()
	next.Epoch = cur.Epoch + 1
	for _, it := range items {
		if int(it) < 0 || int(it) >= len(next.Assignments) {
			return nil, fmt.Errorf("placement: move of item %d outside map (%d items)", it, len(next.Assignments))
		}
		old := next.Assignments[it]
		if old[0] == dst {
			continue
		}
		reps := make([]model.SiteID, 0, len(old))
		reps = append(reps, dst)
		for _, s := range old {
			if s != dst && len(reps) < len(old) {
				reps = append(reps, s)
			}
		}
		next.Assignments[it] = reps
	}
	return next, nil
}

// PlanAdd returns epoch N+1 with site owning an even share of primaries: the
// items whose id ≡ (active) mod (active+1), where active is the count of
// sites currently owning copies. A site already active is a no-op plan (epoch
// still bumps — publishing it is harmless but callers usually check first).
func PlanAdd(cur *model.PartitionMap, site model.SiteID) (*model.PartitionMap, error) {
	act := activeSites(cur)
	for _, s := range act {
		if s == site {
			// Already active: nothing to carve out.
			next := cur.Clone()
			next.Epoch = cur.Epoch + 1
			return next, nil
		}
	}
	n := len(act) + 1
	var move []model.ItemID
	for i := 0; i < cur.Items(); i++ {
		if i%n == n-1 {
			move = append(move, model.ItemID(i))
		}
	}
	return PlanMove(cur, move, site)
}

// PlanDrain returns epoch N+1 with site evacuated: every copy it holds is
// re-assigned to a remaining active site not already holding that item,
// chosen round-robin for balance. Primaries it held promote the next copy
// and append the replacement at the tail. Errors when no site can take a
// copy (replication degree equals the surviving site count... minus none).
func PlanDrain(cur *model.PartitionMap, site model.SiteID) (*model.PartitionMap, error) {
	next := cur.Clone()
	next.Epoch = cur.Epoch + 1
	var survivors []model.SiteID
	for _, s := range activeSites(cur) {
		if s != site {
			survivors = append(survivors, s)
		}
	}
	if len(survivors) == 0 {
		return nil, fmt.Errorf("placement: cannot drain site %d — it is the only active site", site)
	}
	rr := 0
	for i, old := range next.Assignments {
		idx := -1
		for j, s := range old {
			if s == site {
				idx = j
				break
			}
		}
		if idx < 0 {
			continue
		}
		// Drop the draining site (promoting the next copy when it was
		// primary), then append a replacement survivor for the lost copy.
		reps := make([]model.SiteID, 0, len(old))
		for _, s := range old {
			if s != site {
				reps = append(reps, s)
			}
		}
		replaced := false
		for tries := 0; tries < len(survivors); tries++ {
			cand := survivors[rr%len(survivors)]
			rr++
			dup := false
			for _, s := range reps {
				if s == cand {
					dup = true
					break
				}
			}
			if !dup {
				reps = append(reps, cand)
				replaced = true
				break
			}
		}
		if !replaced {
			return nil, fmt.Errorf("placement: cannot drain site %d — item %d needs %d copies but only %d other sites exist", site, i, len(old), len(survivors))
		}
		next.Assignments[i] = reps
	}
	return next, nil
}

// PlanHotMoves picks the hottest ceil(frac·items) items by observed grant
// count (ties by ascending item id) together with the least-loaded
// destination site — fewest copies in cur, ties by lowest id. The returned
// item list feeds PlanMove; empty when counts are empty or frac ≤ 0.
func PlanHotMoves(counts map[model.ItemID]uint64, cur *model.PartitionMap, frac float64) (items []model.ItemID, dst model.SiteID) {
	act := activeSites(cur)
	if len(counts) == 0 || frac <= 0 || len(act) == 0 {
		return nil, -1
	}
	type hot struct {
		item  model.ItemID
		count uint64
	}
	hs := make([]hot, 0, len(counts))
	for it, c := range counts {
		hs = append(hs, hot{it, c})
	}
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].count != hs[j].count {
			return hs[i].count > hs[j].count
		}
		return hs[i].item < hs[j].item
	})
	n := int(frac*float64(cur.Items()) + 0.999999)
	if n < 1 {
		n = 1
	}
	if n > len(hs) {
		n = len(hs)
	}
	for _, h := range hs[:n] {
		items = append(items, h.item)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })

	load := map[model.SiteID]int{}
	for _, s := range act {
		load[s] = 0
	}
	for _, reps := range cur.Assignments {
		for _, s := range reps {
			load[s]++
		}
	}
	dst = act[0]
	for _, s := range act[1:] {
		if load[s] < load[dst] {
			dst = s
		}
	}
	return items, dst
}
