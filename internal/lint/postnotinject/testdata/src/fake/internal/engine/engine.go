// Package engine is a miniature stand-in for ucc/internal/engine: the
// analyzer recognises it by import-path suffix, so the fixture exercises
// the exact matching logic used against the real package.
package engine

// Envelope mirrors the real addressed-message wrapper.
type Envelope struct{ To string }

// Runtime mirrors the real actor runtime.
type Runtime struct{}

// Inject is mailbox-only local delivery.
func (r *Runtime) Inject(env Envelope) {}

// Post delivers locally or forwards through the transport uplink.
func (r *Runtime) Post(env Envelope) {}

// tick calls Inject from inside the engine package itself, which is
// always legitimate.
func (r *Runtime) tick() {
	r.Inject(Envelope{To: "self"})
}
