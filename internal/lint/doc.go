// Package lint is a self-contained static-analysis framework plus the
// domain analyzers that machine-check this codebase's cross-cutting
// invariants. It deliberately mirrors the golang.org/x/tools/go/analysis
// API surface — Analyzer, Pass, Diagnostic, SuggestedFix — but is built on
// the standard library alone, because this module carries no third-party
// dependencies: packages are loaded with `go list -export` and typechecked
// against gc export data (load.go), and cmd/ucclint speaks the
// `go vet -vettool` unitchecker protocol by hand (unitchecker.go).
//
// # The analyzer catalogue
//
// Each analyzer lives in its own subpackage and pins one invariant that
// the type system cannot express:
//
//   - wiretag: every model.Message implementation has a pinned WireTag in
//     the AppendMessage encode switch, a matching DecodeMessage case, and
//     a committed fuzz-corpus seed file; TagLast tracks the highest tag.
//   - postnotinject: engine.Runtime.Inject outside internal/engine is
//     flagged with a suggested fix to Post — Inject silently drops
//     envelopes for actors not registered locally (the bug class PR 8
//     caught only during end-to-end TCP verification).
//   - sheddable: no completer/withdraw/release message type may implement
//     model.Sheddable; shedding completion traffic strands locks forever
//     (the PR 4 deadlock-freedom argument). New openers opt in with a
//     "//ucclint:sheddable" marker stating the shed-safety argument.
//   - poolsafe: values from DecodeMessagePooled/DecodeEnvelopePooled are
//     valid only until RecycleMessage — no stores that outlive the frame,
//     channel sends, goroutine captures, appends, or use-after-recycle.
//   - lockorder: per-item code paths hold at most one shard lock at a
//     time; the all-shard crash/recovery critical section is allow-listed
//     in place with its index-order argument.
//
// # Running the suite
//
//	make lint                                   # build + run over ./...
//	go run ./cmd/ucclint ./...                  # the same, directly
//	go vet -vettool=$(pwd)/bin/ucclint ./...    # incremental, via the go command
//
// # Suppressions
//
// A finding that is correct-but-intended is silenced in place, never
// globally, with a comment on the flagged line or the line above:
//
//	//ucclint:allow lockorder -- index-order acquisition under the sequencer drain
//
// The "-- reason" tail is mandatory by convention: the reviewer reads it,
// the analyzer only parses the name list. Test files are never analyzed —
// tests legitimately stage invariant violations.
//
// # Adding an analyzer
//
// Create internal/lint/<name>/<name>.go declaring a package-level
// `var Analyzer = &lint.Analyzer{...}` whose Run inspects one Pass.
// Match well-known packages by import-path suffix (lint.PathHasSuffix)
// rather than the full module path, so fixture modules exercise the same
// code. Add fixture packages under <name>/testdata/src/<importpath>/ with
// `// want "regexp"` expectations, a test calling linttest.Run, and a
// violation in cmd/ucclint/testdata/badmod so the smoke test proves the
// multichecker surfaces it. Finally, register the analyzer in
// cmd/ucclint/main.go and document it here and in docs/ARCHITECTURE.md.
package lint
