module ucc

go 1.23
