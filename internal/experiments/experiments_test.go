package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick smoke-runs every registered experiment in Quick
// mode: each must complete, produce at least one non-empty table, and
// render.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run(RunConfig{Quick: true, Seed: 1})
			if res.ID != e.ID {
				t.Fatalf("result id %q", res.ID)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables")
			}
			for i, tb := range res.Tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("table %d empty", i)
				}
			}
			s := res.String()
			if !strings.Contains(s, e.ID) || !strings.Contains(s, "paper claim") {
				t.Fatalf("rendering broken:\n%s", s)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("EXP-1"); !ok {
		t.Fatal("EXP-1 missing")
	}
	if _, ok := ByID("exp-1"); !ok {
		t.Fatal("lookup must be case-insensitive")
	}
	if _, ok := ByID("EXP-99"); ok {
		t.Fatal("phantom experiment")
	}
}

func TestExp5SerializabilityGate(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	res := Exp5(RunConfig{Quick: true, Seed: 3})
	for _, n := range res.Notes {
		if strings.Contains(n, "VIOLATION") {
			t.Fatalf("serializability violation: %v", res.Notes)
		}
	}
	// Every row must say "yes" in the serializable column.
	for _, row := range res.Tables[0].Rows {
		if row[2] != "yes" {
			t.Fatalf("row not serializable: %v", row)
		}
	}
}
