// Package badmod is a deliberately invariant-violating module: the
// cmd/ucclint smoke test asserts the multichecker exits nonzero over it
// with findings from every analyzer.
package badmod

import (
	"badmod/internal/engine"
	"badmod/internal/model"
)

var retained model.Message

// Kick injects an envelope that may be addressed to a remote actor.
func Kick(rt *engine.Runtime) {
	rt.Inject(engine.Envelope{To: "remote"})
}

// Retain stores a pooled message into a package-level variable.
func Retain() {
	m, _ := model.DecodeMessagePooled(1)
	retained = m
	model.RecycleMessage(m)
}
