package cluster

import (
	"testing"

	"ucc/internal/model"
	"ucc/internal/workload"
)

// base returns a small recording cluster config.
func base(seed int64) Config {
	return Config{
		Sites:    4,
		Items:    40,
		Replicas: 1,
		Seed:     seed,
		Record:   true,
	}
}

// runMix runs a mixed-share workload and returns the result.
func runMix(t *testing.T, cfg Config, share2pl, shareTO, sharePA, arrival float64, size int, horizon int64) Result {
	t.Helper()
	cl, err := NewSim(cfg)
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	for s := 0; s < cfg.Sites; s++ {
		err := cl.AddDriver(model.SiteID(s), workload.Spec{
			ArrivalPerSec: arrival,
			HorizonMicros: horizon,
			Items:         cfg.Items,
			Size:          size,
			ReadFrac:      0.6,
			Share2PL:      share2pl,
			ShareTO:       shareTO,
			SharePA:       sharePA,
			ComputeMicros: 500,
		})
		if err != nil {
			t.Fatalf("AddDriver: %v", err)
		}
	}
	return cl.Run(horizon, 4_000_000)
}

func checkRun(t *testing.T, name string, res Result, wantMinCommits uint64) {
	t.Helper()
	if res.Serializability == nil {
		t.Fatalf("%s: no serializability result", name)
	}
	if !res.Serializability.Serializable {
		t.Fatalf("%s: execution NOT serializable; cycle=%v", name, res.Serializability.Cycle)
	}
	got := res.Summary.TotalCommitted()
	if got < wantMinCommits {
		t.Errorf("%s: committed %d < want >= %d", name, got, wantMinCommits)
	}
	if res.Unfinished > 0 {
		t.Errorf("%s: %d transactions unfinished after drain", name, res.Unfinished)
	}
}

func TestPure2PL(t *testing.T) {
	res := runMix(t, base(1), 1, 0, 0, 20, 4, 2_000_000)
	checkRun(t, "2PL", res, 100)
}

func TestPureTO(t *testing.T) {
	res := runMix(t, base(2), 0, 1, 0, 20, 4, 2_000_000)
	checkRun(t, "T/O", res, 100)
}

func TestPurePA(t *testing.T) {
	res := runMix(t, base(3), 0, 0, 1, 20, 4, 2_000_000)
	checkRun(t, "PA", res, 100)
	if v := res.Summary.Protocols[model.PA].Victims; v != 0 {
		t.Errorf("PA: %d deadlock victims, want 0 (Corollary 1)", v)
	}
	if r := res.Summary.Protocols[model.PA].Rejected; r != 0 {
		t.Errorf("PA: %d rejections, want 0 (Corollary 1)", r)
	}
}

func TestMixedProtocols(t *testing.T) {
	res := runMix(t, base(4), 1, 1, 1, 25, 4, 2_000_000)
	checkRun(t, "mixed", res, 120)
}

func TestMixedHighContention(t *testing.T) {
	cfg := base(5)
	cfg.Items = 8 // few items → heavy conflicts
	res := runMix(t, cfg, 1, 1, 1, 25, 3, 2_000_000)
	checkRun(t, "hot-mixed", res, 80)
}

// TestShardedMixedProtocols: the same mixed workload with the queue manager
// split four ways per site — sharding changes which mailbox serves an item,
// never what commits; the full-protocol mix must stay serializable and
// productive at any shard count.
func TestShardedMixedProtocols(t *testing.T) {
	cfg := base(4)
	cfg.Shards = 4
	res := runMix(t, cfg, 1, 1, 1, 25, 4, 2_000_000)
	checkRun(t, "sharded-mixed", res, 120)
}

// TestShardedHotShardSkew: the HotShard scenario (every access hashes to
// shard 0 of the cluster's OWN shard count) must stay correct — the shard
// the traffic lands on serializes it exactly like the unsharded manager
// would, and the other shards idle without breaking anything.
func TestShardedHotShardSkew(t *testing.T) {
	cfg := base(9)
	cfg.Items = 32
	cfg.Shards = 4
	cl, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := workload.HotShard(cfg.Items, 25, cfg.Shards)
	for s := 0; s < cfg.Sites; s++ {
		spec := sc.PerSite(s)
		spec.HorizonMicros = 2_000_000
		if err := cl.AddDriver(model.SiteID(s), spec); err != nil {
			t.Fatal(err)
		}
	}
	res := cl.Run(2_000_000, 6_000_000)
	checkRun(t, "hot-shard-skew", res, 80)
}

// TestShardedHighContention: conflicts concentrated on 8 items still
// resolve correctly when those items span multiple shards (deadlock
// detection aggregates wait-edges across shards into one site report).
func TestShardedHighContention(t *testing.T) {
	cfg := base(5)
	cfg.Items = 8
	cfg.Shards = 3
	res := runMix(t, cfg, 1, 1, 1, 25, 3, 2_000_000)
	checkRun(t, "sharded-hot", res, 80)
}

// TestShardsOver256Rejected is the shard-address wraparound regression test:
// engine.Addr carries the shard index in one byte, so Shards=300 would
// silently alias shards 256..299 onto mailboxes 0..43 and misroute traffic.
// The knob must be refused loudly, and 256 itself (the last representable
// count) must still validate.
func TestShardsOver256Rejected(t *testing.T) {
	cfg := base(1)
	cfg.Shards = 300
	if _, err := NewSim(cfg); err == nil {
		t.Fatal("Shards=300 accepted; shard addresses would wrap around uint8")
	}
	ok := base(1)
	ok.Shards = 256
	if _, err := NewSim(ok); err != nil {
		t.Fatalf("Shards=256 must be accepted: %v", err)
	}
}

// TestValidatePreservesNonTimingRIOptions: leaving every protocol-timing
// knob unset fills the timing defaults, but an RI option configured on its
// own — admission control, a backoff cap, the RO fast-path toggle, an
// explicit snapshot staleness — must survive the reset (regression: the
// defaults pass used to replace the whole Options struct and hand-preserve
// a hardcoded subset of fields).
func TestValidatePreservesNonTimingRIOptions(t *testing.T) {
	cfg := base(1)
	cfg.RI.Admission.Enabled = true
	cfg.RI.Admission.InitialWindow = 16
	cfg.RI.RestartDelayCapMicros = 123_000
	cfg.RI.DisableROFastPath = true
	cfg.RI.SnapshotStalenessMicros = 77_000
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if !cfg.RI.Admission.Enabled || cfg.RI.Admission.InitialWindow != 16 {
		t.Fatalf("Admission clobbered by the timing-defaults reset: %+v", cfg.RI.Admission)
	}
	if cfg.RI.RestartDelayCapMicros != 123_000 {
		t.Fatalf("RestartDelayCapMicros = %d, want 123000", cfg.RI.RestartDelayCapMicros)
	}
	if !cfg.RI.DisableROFastPath {
		t.Fatal("DisableROFastPath clobbered by the timing-defaults reset")
	}
	if cfg.RI.SnapshotStalenessMicros != 77_000 {
		t.Fatalf("SnapshotStalenessMicros = %d, want the explicit 77000", cfg.RI.SnapshotStalenessMicros)
	}
	// The timing defaults themselves must still be filled.
	if cfg.RI.RestartDelayMicros == 0 || cfg.RI.PAIntervalMicros == 0 || cfg.RI.DefaultComputeMicros == 0 {
		t.Fatalf("timing defaults not filled: %+v", cfg.RI)
	}
	// And an unset staleness still gets the default.
	cfg2 := base(2)
	if err := cfg2.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg2.RI.SnapshotStalenessMicros == 0 {
		t.Fatal("default SnapshotStalenessMicros not filled when unset")
	}
}

// TestOverloadShedsAndBoundsQueues: a cluster with the backpressure knobs on
// survives 10x-capacity open-loop arrivals with every data queue inside its
// bound, a busy-NAK/shed trail proving the machinery engaged, and the
// execution still serializable.
func TestOverloadShedsAndBoundsQueues(t *testing.T) {
	cfg := base(7)
	cfg.Items = 12
	cfg.QM.MaxQueueDepth = 8
	cfg.RI.Admission.Enabled = true
	cfg.RI.Admission.InitialWindow = 16
	cl, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < cfg.Sites; s++ {
		if err := cl.AddDriver(model.SiteID(s), workload.Spec{
			ArrivalPerSec: 400,
			HorizonMicros: 2_000_000,
			Items:         cfg.Items,
			Size:          3,
			ReadFrac:      0.6,
			SharePA:       1,
			ComputeMicros: 500,
		}); err != nil {
			t.Fatal(err)
		}
	}
	res2 := cl.Run(2_000_000, 4_000_000)
	if res2.Serializability == nil || !res2.Serializability.Serializable {
		t.Fatal("overloaded run not serializable")
	}
	if high := cl.DepthHighWater(); high > cfg.QM.MaxQueueDepth {
		t.Fatalf("queue depth %d exceeded bound %d", high, cfg.QM.MaxQueueDepth)
	}
	rt := cl.RITotals()
	if rt.Shed == 0 {
		t.Fatal("admission shed nothing at 10x load")
	}
	if rt.Submitted <= rt.Shed {
		t.Fatalf("everything shed (%d of %d): admission over-rotated", rt.Shed, rt.Submitted)
	}
	if cl.QMTotals().Busy == 0 {
		t.Fatal("no busy NAKs at 10x load with depth-8 queues")
	}
}
