package workload

import (
	"fmt"

	"ucc/internal/model"
)

// Scenario names a reusable workload shape: a per-site Spec generator, so
// heterogeneous sites (e.g. a reporting site among OLTP sites) are
// expressible. Scenarios capture the workload archetypes the paper's
// introduction motivates for dynamic concurrency control.
type Scenario struct {
	Name string
	// PerSite builds the spec for one user site.
	PerSite func(site int) Spec
}

// OLTP is a uniform small-transaction update mix: the generic benchmark
// workload (size 3, 60% reads).
func OLTP(items int, rate float64) Scenario {
	return Scenario{
		Name: "oltp",
		PerSite: func(int) Spec {
			return Spec{
				ArrivalPerSec: rate,
				Items:         items,
				Size:          3,
				ReadFrac:      0.6,
				ComputeMicros: 1_000,
				Class:         "oltp",
			}
		},
	}
}

// Transfers is the banking shape: two-item read-modify-write transactions
// (debit/credit), no pure reads — the workload where 2PL's single-item
// superiority disappears and deadlocks become possible.
func Transfers(accounts int, rate float64) Scenario {
	return Scenario{
		Name: "transfers",
		PerSite: func(int) Spec {
			return Spec{
				ArrivalPerSec: rate,
				Items:         accounts,
				Size:          2,
				ReadFrac:      0, // RMW: items land in the write set
				ComputeMicros: 500,
				Class:         "transfer",
			}
		},
	}
}

// FlashSale is the inventory shape: write-heavy traffic concentrated on a
// few hot items (size 3, 40% reads, 80% of accesses on hotItems).
func FlashSale(items, hotItems int, rate float64) Scenario {
	return Scenario{
		Name: "flash-sale",
		PerSite: func(int) Spec {
			return Spec{
				ArrivalPerSec: rate,
				Items:         items,
				Size:          3,
				ReadFrac:      0.4,
				Access:        AccessHotspot,
				HotItems:      hotItems,
				HotFrac:       0.8,
				ComputeMicros: 800,
				Class:         "order",
			}
		},
	}
}

// MixedAnalytics models one reporting site issuing large read-only
// transactions among OLTP sites — the individual-differences argument of
// §1: the reporting transactions want a different protocol than the small
// updates.
func MixedAnalytics(items int, oltpRate, reportRate float64) Scenario {
	return Scenario{
		Name: "mixed-analytics",
		PerSite: func(site int) Spec {
			if site == 0 {
				return Spec{
					ArrivalPerSec: reportRate,
					Items:         items,
					SizeDist:      SizeUniform,
					SizeMin:       8,
					SizeMax:       16,
					ReadFrac:      1,
					ComputeMicros: 5_000,
					Class:         "report",
				}
			}
			return Spec{
				ArrivalPerSec: oltpRate,
				Items:         items,
				Size:          3,
				ReadFrac:      0.5,
				ComputeMicros: 1_000,
				Class:         "oltp",
			}
		},
	}
}

// ReadHeavy is the dashboard/read-mostly shape the RO snapshot fast path
// exists for: roShare of the traffic is read-only scans (size roSize, run
// under model.ROSnapshot), the rest are small updates whose accessed items
// are mostly written (so the read-only traffic is what the queues would
// otherwise choke on). roShare 0.9 gives the ≥90%-read mix of EXP-10.
func ReadHeavy(items int, rate float64, roShare float64, roSize int) Scenario {
	if roShare <= 0 || roShare > 1 {
		roShare = 0.9 // roShare == 1 (a pure read-only mix) is legal
	}
	if roSize <= 0 {
		roSize = 6
	}
	return Scenario{
		Name: "read-heavy",
		PerSite: func(int) Spec {
			return Spec{
				ArrivalPerSec:   rate,
				Items:           items,
				Size:            3,
				ROSize:          roSize,
				ReadFrac:        0.2, // the non-RO remainder is update-heavy
				SharePA:         1 - roShare,
				ShareRO:         roShare,
				ComputeMicros:   1_000,
				ROComputeMicros: 5_000, // scans crunch what they read
				Class:           "read-heavy",
			}
		},
	}
}

// HotShard is the anti-sharding shape: every access lands on items that all
// hash to ONE queue-manager shard (shard 0 of shards), so partitioning the
// queue manager buys nothing — the hot shard's mutex and mailbox stay the
// serial bottleneck however many shards exist. It is the workload EXP-11
// uses to show where sharding does NOT help: skew, not core count, is the
// limit, and the fix is spreading the keys (or the hotspot) — not more
// shards. Update-heavy so the hot queues actually serialize.
func HotShard(items int, rate float64, shards int) Scenario {
	if shards < 1 {
		shards = 1
	}
	var hot []model.ItemID
	for i := 0; i < items; i++ {
		if model.ShardOfItem(model.ItemID(i), shards) == 0 {
			hot = append(hot, model.ItemID(i))
		}
	}
	if len(hot) == 0 {
		hot = []model.ItemID{0} // degenerate hash split; keep the spec valid
	}
	return Scenario{
		Name: "hot-shard",
		PerSite: func(int) Spec {
			return Spec{
				ArrivalPerSec: rate,
				Items:         items,
				Size:          3,
				ReadFrac:      0.4,
				Access:        AccessFixedSet,
				ItemSet:       hot,
				ComputeMicros: 800,
				Class:         "hot-shard",
			}
		},
	}
}

// Overload is the saturation shape for EXP-12: open-loop Poisson arrivals at
// `multiple` times a measured per-site capacity, so the offered load exceeds
// what the system can commit and something has to give. An open loop is the
// point — a closed loop self-throttles at its concurrency and can never
// offer more than the system absorbs, while real clients keep arriving
// whether or not the system keeps up. Small update-heavy transactions: the
// overload question is about queueing, not about any single hot item.
func Overload(items int, capacityPerSite, multiple float64) Scenario {
	if multiple <= 0 {
		multiple = 1
	}
	if capacityPerSite <= 0 {
		capacityPerSite = 1
	}
	return Scenario{
		Name: "overload",
		PerSite: func(int) Spec {
			return Spec{
				ArrivalPerSec: capacityPerSite * multiple,
				Items:         items,
				Size:          3,
				ReadFrac:      0.5,
				SharePA:       1,
				ComputeMicros: 1_000,
				Class:         "overload",
			}
		},
	}
}

// Scenarios lists the named scenarios (CLI discovery). HotShard is
// deliberately absent: its item set is a function of the cluster's actual
// shard count, so callers must construct it with that count rather than
// have a hardcoded split silently disagree with the cluster under test.
// Overload is absent for the same reason: its rate is a multiple of a
// capacity the caller must measure first.
func Scenarios(items int, rate float64) []Scenario {
	return []Scenario{
		OLTP(items, rate),
		Transfers(items, rate),
		FlashSale(items, max(1, items/8), rate),
		MixedAnalytics(items, rate, rate/5),
		ReadHeavy(items, rate, 0.9, 6),
	}
}

// ByName finds a named scenario.
func ByName(name string, items int, rate float64) (Scenario, error) {
	for _, s := range Scenarios(items, rate) {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("workload: unknown scenario %q", name)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
