package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleBenchOutput = `
goos: linux
goarch: amd64
pkg: ucc
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkReadPathThroughput-4         	       3	 512345678 ns/op	       500.0 txn/s
BenchmarkReadWriteThroughput/shards=1-4 	       1	1844275177 ns/op	    274599 txn/s
BenchmarkReadWriteThroughput/shards=4-4 	       1	 922137588 ns/op	    549198 txn/s
BenchmarkCommitGroup16-4              	    2000	    240193 ns/op	         4.706 commits/sync
PASS
ok  	ucc	3.753s
`

func parsedSamples(t *testing.T) []benchSample {
	t.Helper()
	samples, err := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestParseBenchOutput(t *testing.T) {
	samples := parsedSamples(t)
	if len(samples) != 4 {
		t.Fatalf("parsed %d samples, want 4: %+v", len(samples), samples)
	}
	byName := map[string]benchSample{}
	for _, s := range samples {
		byName[s.Name] = s
	}
	rp, ok := byName["BenchmarkReadPathThroughput"]
	if !ok {
		t.Fatalf("proc-count suffix not stripped: %+v", samples)
	}
	if rp.Metrics["txn_per_s"] != 500.0 {
		t.Fatalf("metric not normalized: %+v", rp.Metrics)
	}
	sub, ok := byName["BenchmarkReadWriteThroughput/shards=4"]
	if !ok || sub.Metrics["txn_per_s"] != 549198 {
		t.Fatalf("sub-benchmark parse wrong: %+v", sub)
	}
	if byName["BenchmarkCommitGroup16"].Metrics["commits_per_sync"] != 4.706 {
		t.Fatalf("ratio metric lost: %+v", byName["BenchmarkCommitGroup16"])
	}
}

func TestCheckPassesAgainstHonestBaseline(t *testing.T) {
	base := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkReadPathThroughput", NsPerOp: 500_000_000,
			Metrics: map[string]float64{"txn_per_s": 480}}, // we measure 500: improvement
		{Name: "BenchmarkCommitGroup16", NsPerOp: 250_000,
			Metrics: map[string]float64{"commits_per_sync": 4.5}},
		{Name: "BenchmarkNotRunThisTime", NsPerOp: 1, // scoped out by -require below
			Metrics: map[string]float64{"txn_per_s": 1e9}},
	}}
	results, err := runCheck(base, parsedSamples(t), 0.20, false,
		regexp.MustCompile("ReadPathThroughput|CommitGroup16"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.failed {
			t.Fatalf("unexpected failure: %+v", r)
		}
	}
}

// TestCheckFailsAgainstDegradedBaseline is the gate's own acceptance
// criterion: fed a baseline that claims much higher throughput than
// measured (equivalently: a PR that regressed throughput >20%), the check
// must fail.
func TestCheckFailsAgainstDegradedBaseline(t *testing.T) {
	base := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkReadPathThroughput",
			Metrics: map[string]float64{"txn_per_s": 1000}}, // measured 500 → −50%
	}}
	results, err := runCheck(base, parsedSamples(t), 0.20, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	for _, r := range results {
		if r.failed && r.name == "BenchmarkReadPathThroughput" && r.what == "txn_per_s" {
			failed = true
		}
	}
	if !failed {
		t.Fatalf("50%% throughput drop passed the 20%% gate: %+v", results)
	}
}

// TestCheckToleranceBoundary: a drop inside the tolerance passes, one just
// beyond fails.
func TestCheckToleranceBoundary(t *testing.T) {
	mk := func(baselineTxn float64) []checkResult {
		base := baselineFile{Benchmarks: []baselineEntry{
			{Name: "BenchmarkReadPathThroughput", Metrics: map[string]float64{"txn_per_s": baselineTxn}},
		}}
		res, err := runCheck(base, parsedSamples(t), 0.20, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, r := range mk(600) { // measured 500 = −16.7%: inside
		if r.failed {
			t.Fatalf("−16.7%% drop failed a 20%% gate: %+v", r)
		}
	}
	var sawFail bool
	for _, r := range mk(640) { // measured 500 = −21.9%: beyond
		if r.failed {
			sawFail = true
		}
	}
	if !sawFail {
		t.Fatal("−21.9% drop passed a 20% gate")
	}
}

// TestCheckNsOptIn: ns/op regressions are informational unless -gate-ns.
func TestCheckNsOptIn(t *testing.T) {
	base := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkCommitGroup16", NsPerOp: 100_000}, // measured 240193: 2.4x slower
	}}
	res, err := runCheck(base, parsedSamples(t), 0.20, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.failed {
			t.Fatalf("ns/op gated without -gate-ns: %+v", r)
		}
	}
	res, err = runCheck(base, parsedSamples(t), 0.20, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sawFail bool
	for _, r := range res {
		sawFail = sawFail || r.failed
	}
	if !sawFail {
		t.Fatal("-gate-ns did not gate a 2.4x ns/op regression")
	}
}

// TestCheckEmptyIntersectionFails: a typo'd -bench regex must not produce a
// silently green gate.
func TestCheckEmptyIntersectionFails(t *testing.T) {
	base := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkSomethingElse", NsPerOp: 1},
	}}
	if _, err := runCheck(base, parsedSamples(t), 0.20, false, nil); err == nil {
		t.Fatal("empty baseline∩output intersection must error")
	}
}

// TestCheckMissingBaselineFailsLoudly: a baseline entry absent from the
// candidate run must FAIL the gate by default — a silently skipped benchmark
// is a silently ungated one (the renamed-benchmark / typo'd-regex trap).
func TestCheckMissingBaselineFailsLoudly(t *testing.T) {
	base := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkReadPathThroughput",
			Metrics: map[string]float64{"txn_per_s": 480}},
		{Name: "BenchmarkRenamedAway",
			Metrics: map[string]float64{"txn_per_s": 100}},
	}}
	results, err := runCheck(base, parsedSamples(t), 0.20, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	var missFailed bool
	for _, r := range results {
		if r.name == "BenchmarkRenamedAway" {
			if !r.failed || r.what != "missing" {
				t.Fatalf("missing baseline not failed: %+v", r)
			}
			missFailed = true
		}
	}
	if !missFailed {
		t.Fatal("missing baseline entry was silently skipped")
	}
}

// TestCheckRequireScopesMissing: -require lets a deliberate-subset CI job
// name what it owes; baseline entries outside the scope may be absent, ones
// inside may not.
func TestCheckRequireScopesMissing(t *testing.T) {
	base := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkReadPathThroughput",
			Metrics: map[string]float64{"txn_per_s": 480}},
		{Name: "BenchmarkNightlyOnly",
			Metrics: map[string]float64{"txn_per_s": 100}},
	}}
	results, err := runCheck(base, parsedSamples(t), 0.20, false,
		regexp.MustCompile("^BenchmarkReadPath"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.failed {
			t.Fatalf("out-of-scope absence failed the gate: %+v", r)
		}
	}
	// The same scope with the required benchmark absent must fail.
	base2 := baselineFile{Benchmarks: []baselineEntry{
		{Name: "BenchmarkReadPathGone",
			Metrics: map[string]float64{"txn_per_s": 480}},
		{Name: "BenchmarkCommitGroup16",
			Metrics: map[string]float64{"commits_per_sync": 4.5}},
	}}
	results, err = runCheck(base2, parsedSamples(t), 0.20, false,
		regexp.MustCompile("^BenchmarkReadPath"))
	if err != nil {
		t.Fatal(err)
	}
	var sawMiss bool
	for _, r := range results {
		sawMiss = sawMiss || (r.failed && r.what == "missing")
	}
	if !sawMiss {
		t.Fatal("in-scope missing benchmark did not fail")
	}
}
