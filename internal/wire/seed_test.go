package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"ucc/internal/model"
)

const seedDir = "testdata/fuzz/FuzzWireRoundTrip"

// TestWriteSeedCorpus regenerates the committed fuzz seed corpus (one file
// per wire tag, first corpus envelope carrying it) when WIRE_WRITE_CORPUS=1.
// Run after adding a message type:
//
//	WIRE_WRITE_CORPUS=1 go test ./internal/wire -run TestWriteSeedCorpus
func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("WIRE_WRITE_CORPUS") == "" {
		t.Skip("set WIRE_WRITE_CORPUS=1 to regenerate the seed corpus")
	}
	if err := os.MkdirAll(seedDir, 0o755); err != nil {
		t.Fatal(err)
	}
	written := map[model.WireTag]bool{}
	for _, env := range Corpus() {
		tag, _ := model.MessageTag(env.Msg)
		if written[tag] {
			continue
		}
		written[tag] = true
		payload, err := AppendEnvelope(nil, env)
		if err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(payload)))
		name := filepath.Join(seedDir, fmt.Sprintf("tag-%02d-%T", tag, env.Msg))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("wrote %d seed inputs to %s", len(written), seedDir)
}

// TestSeedCorpusCommitted fails if the checked-in corpus is missing or
// stale-empty — the CI fuzz job depends on seeds existing so the first fuzz
// iteration exercises every message type.
func TestSeedCorpusCommitted(t *testing.T) {
	entries, err := os.ReadDir(seedDir)
	if err != nil {
		t.Fatalf("seed corpus missing (run WIRE_WRITE_CORPUS=1 go test -run TestWriteSeedCorpus ./internal/wire): %v", err)
	}
	want := int(model.TagLast-model.TagRequest) + 1
	if len(entries) < want {
		t.Fatalf("seed corpus has %d entries, want ≥ %d (one per wire tag)", len(entries), want)
	}
}
