// Package qm implements the Data Queue and Data Queue Manager of the
// Precedence-Assignment Model (§3.1) with the unified precedence space
// (§4.1) and the semi-lock precedence enforcement protocol (§4.2) of
// Wang & Li (ICDE 1988).
//
// One Manager runs per data site, partitioned into Options.Shards
// independent shards (hash of item → shard, model.ShardOfItem). Each shard
// owns a dataQueue per physical copy hashed to it, its own lock state and
// counters, and its own group-commit batch, behind its own mutex — and may
// be registered at its own engine address (engine.QMShardAddr), giving it a
// private mailbox goroutine on the real-time runtime. Conflict-free
// operations at one site therefore execute in parallel; operations on one
// item are always serialized by its owning shard, which is all the protocol
// requires. Each dataQueue keeps its entries sorted by unified precedence,
// tracks the R-TS/W-TS thresholds, assigns 2PL precedences from the biggest
// timestamp ever seen, rejects out-of-order T/O requests, computes PA
// back-off timestamps, and grants locks to HD(j) according to the semi-lock
// rules.
//
// Site-wide concerns deliberately stay un-sharded at the Manager:
//
//   - The commit sequencer (sequencer.go): a transaction's writes may span
//     shards, but its commit point is one atomic site-wide WAL sync. Shards
//     drain their dirty batches through a per-site leader/follower
//     sequencer, so concurrently expiring shard batches coalesce into one
//     media sync (cross-shard group commit) while each shard's write-ahead
//     guarantee — sync before the grant exposing the write — is preserved.
//   - Crash and recovery (CrashMsg/RecoverMsg): a site fails as a unit;
//     every shard goes down together, defers its traffic, and drains in
//     per-shard arrival order after the store is rebuilt once from
//     snapshot + replay.
//   - Deadlock probes and the stats tick: aggregated across shards into
//     one per-site report.
//
// Two paths never touch the queues at all:
//
//   - Snapshot reads (SnapReadMsg): read-only transactions are answered
//     straight from the store's version chain at their snapshot timestamp —
//     no entry, no lock, no threshold check — and recorded into the history
//     log at the position of the version they observed.
//   - Durability control (CrashMsg/RecoverMsg/FlushMsg): the manager drives
//     when the site's write-ahead log syncs (per delivery, or deferred by a
//     group-commit window) and how a crashed site defers traffic until its
//     store — version chains included — is rebuilt from snapshot + replay.
//
// Backpressure: Options.MaxQueueDepth bounds every data queue. A request
// landing on a full queue — unless its transaction is already resident —
// is refused with a model.BusyMsg NAK (counted in Counters.Busy) rather
// than admitted, so overload stops at the queue bound and the refusal
// feeds the issuers' admission controllers instead of growing memory.
package qm
